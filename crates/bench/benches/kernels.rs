//! Criterion micro-benches of the host-side hot kernels: the pairwise
//! force/jerk evaluation, the j-sweep accumulation, the Hermite
//! predictor/corrector, and the block scheduler.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grape6_core::blockstep::BlockScheduler;
use grape6_core::engine::ForceEngine;
use grape6_core::force::{accumulate_on, pair_force_jerk, DirectEngine};
use grape6_core::hermite::{correct, predict};
use grape6_core::lanes::LaneWidth;
use grape6_core::particle::{ForceResult, IParticle};
use grape6_core::vec3::Vec3;
use grape6_disk::DiskBuilder;

fn bench_pair_kernel(c: &mut Criterion) {
    let dx = Vec3::new(1.3, -0.4, 0.2);
    let dv = Vec3::new(-0.01, 0.02, 0.005);
    c.bench_function("pair_force_jerk", |b| {
        b.iter(|| pair_force_jerk(black_box(dx), black_box(dv), black_box(1e-9), black_box(6.4e-5)))
    });
}

fn bench_j_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("j_sweep");
    for &n in &[1024usize, 8192, 65536] {
        let sys = DiskBuilder::paper(n).build();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                accumulate_on(
                    black_box(sys.pos[0]),
                    black_box(sys.vel[0]),
                    &sys.pos,
                    &sys.vel,
                    &sys.mass,
                    6.4e-5,
                    0,
                )
            })
        });
    }
    group.finish();
}

fn bench_engine_block(c: &mut Criterion) {
    // A realistic block-force call: 64 i-particles against 8k j-particles,
    // once per AoSoA lane width (the results are bitwise identical; only
    // the kernel differs).
    let sys = DiskBuilder::paper(8192).build();
    let ips: Vec<IParticle> = (0..64)
        .map(|k| {
            let i = k * 128;
            IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }
        })
        .collect();
    let mut out = vec![ForceResult::default(); ips.len()];
    let mut group = c.benchmark_group("direct_engine");
    group.throughput(Throughput::Elements(64 * 8194));
    for lanes in LaneWidth::ALL {
        let mut engine = DirectEngine::with_lane_width(lanes);
        engine.load(&sys);
        group.bench_function(format!("block64_n8k_{lanes}"), |b| {
            b.iter(|| engine.compute(black_box(0.0), &ips, &mut out))
        });
    }
    group.finish();
}

fn bench_hermite(c: &mut Criterion) {
    let x = Vec3::new(20.0, 1.0, 0.0);
    let v = Vec3::new(0.0, 0.22, 0.0);
    let a0 = Vec3::new(-2e-3, 0.0, 0.0);
    let j0 = Vec3::new(0.0, -5e-6, 0.0);
    let a1 = Vec3::new(-1.9e-3, -1e-5, 0.0);
    let j1 = Vec3::new(1e-7, -5e-6, 0.0);
    c.bench_function("hermite_predict", |b| {
        b.iter(|| {
            predict(black_box(x), black_box(v), black_box(a0), black_box(j0), black_box(0.125))
        })
    });
    c.bench_function("hermite_correct", |b| {
        b.iter(|| {
            let (xp, vp) = predict(x, v, a0, j0, 0.125);
            correct(black_box(xp), black_box(vp), a0, j0, black_box(a1), black_box(j1), 0.125)
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let n = 16384usize;
    c.bench_function("scheduler_push_pop_16k", |b| {
        b.iter(|| {
            let mut s = BlockScheduler::new();
            for i in 0..n {
                s.push(i, ((i % 11) as f64 + 1.0) * 0.125);
            }
            let mut block = Vec::new();
            let mut total = 0usize;
            while s.pop_block(&mut block).is_some() {
                total += block.len();
            }
            black_box(total)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pair_kernel, bench_j_sweep, bench_engine_block, bench_hermite, bench_scheduler
}
criterion_main!(benches);
