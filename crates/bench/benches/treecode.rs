//! Criterion benches of the Barnes-Hut baseline: tree build, single
//! traversals at several opening angles, and the per-blockstep cost that the
//! §3 argument turns on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grape6_core::engine::ForceEngine;
use grape6_core::particle::{ForceResult, IParticle};
use grape6_disk::DiskBuilder;
use grape6_tree::{Octree, TreeEngine};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    for &n in &[2048usize, 16384] {
        let sys = DiskBuilder::paper(n).build();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| Octree::build(black_box(&sys.pos), &sys.vel, &sys.mass))
        });
    }
    group.finish();
}

fn bench_traverse(c: &mut Criterion) {
    let sys = DiskBuilder::paper(16384).build();
    let tree = Octree::build(&sys.pos, &sys.vel, &sys.mass);
    let mut group = c.benchmark_group("tree_traverse_n16k");
    for &theta in &[0.3f64, 0.5, 0.9] {
        group.bench_with_input(BenchmarkId::from_parameter(theta), &theta, |b, &th| {
            b.iter(|| tree.force_on(black_box(sys.pos[100]), sys.vel[100], th, 6.4e-5, 100))
        });
    }
    group.finish();
}

fn bench_small_block_cost(c: &mut Criterion) {
    // The §3 killer: a single-particle force request at a fresh time forces
    // a full rebuild. Compare against a same-time request that reuses the
    // tree.
    let sys = DiskBuilder::paper(8192).build();
    let mut engine = TreeEngine::new(0.5);
    engine.load(&sys);
    let ips = [IParticle { index: 0, pos: sys.pos[0], vel: sys.vel[0] }];
    let mut out = [ForceResult::default()];
    let mut t = 0.0f64;
    c.bench_function("tree_block1_fresh_time", |b| {
        b.iter(|| {
            t += 1e-9; // force a rebuild each call
            engine.compute(black_box(t), &ips, &mut out)
        })
    });
    engine.compute(1e6, &ips, &mut out);
    c.bench_function("tree_block1_cached_tree", |b| {
        b.iter(|| engine.compute(black_box(1e6), &ips, &mut out))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_build, bench_traverse, bench_small_block_cost
}
criterion_main!(benches);
