//! Criterion benches of the force kernels across worker-pool sizes.
//!
//! One group per kernel shape, one benchmark per thread count, so the
//! criterion history tracks the pool's speedup (and its single-thread
//! regression risk) release over release. Thread counts are pinned with
//! `rayon::with_num_threads`, not the environment, so runs are hermetic.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grape6_core::energy::pairwise_potential_energy;
use grape6_core::engine::ForceEngine;
use grape6_core::force::DirectEngine;
use grape6_core::particle::{ForceResult, IParticle};
use grape6_disk::DiskBuilder;

const THREADS: [usize; 3] = [1, 2, 4];

/// Large block: 256 i-particles against 8k j — the tiled, 4-wide,
/// i-parallel path.
fn bench_large_block(c: &mut Criterion) {
    let sys = DiskBuilder::paper(8192).build();
    let mut engine = DirectEngine::new();
    engine.load(&sys);
    let ips: Vec<IParticle> = (0..256)
        .map(|k| {
            let i = k * 32;
            IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }
        })
        .collect();
    let mut out = vec![ForceResult::default(); ips.len()];
    let mut group = c.benchmark_group("force_large_block");
    group.throughput(Throughput::Elements(ips.len() as u64 * sys.len() as u64));
    for &t in &THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| rayon::with_num_threads(t, || engine.compute(black_box(0.0), &ips, &mut out)))
        });
    }
    group.finish();
}

/// Small block: 4 i-particles against 8k j — the fused, j-parallel path.
fn bench_small_block(c: &mut Criterion) {
    let sys = DiskBuilder::paper(8192).build();
    let mut engine = DirectEngine::new();
    engine.load(&sys);
    let ips: Vec<IParticle> = (0..4)
        .map(|k| {
            let i = k * 512;
            IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }
        })
        .collect();
    let mut out = vec![ForceResult::default(); ips.len()];
    let mut group = c.benchmark_group("force_small_block");
    group.throughput(Throughput::Elements(ips.len() as u64 * sys.len() as u64));
    for &t in &THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| rayon::with_num_threads(t, || engine.compute(black_box(0.0), &ips, &mut out)))
        });
    }
    group.finish();
}

/// The O(N²/2) energy pair sum over the deterministic chunked reduction.
fn bench_energy_sum(c: &mut Criterion) {
    let sys = DiskBuilder::paper(2048).build();
    let mut group = c.benchmark_group("energy_pair_sum");
    let n = sys.len() as u64;
    group.throughput(Throughput::Elements(n * (n - 1) / 2));
    for &t in &THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| rayon::with_num_threads(t, || pairwise_potential_energy(black_box(&sys))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_large_block, bench_small_block, bench_energy_sum);
criterion_main!(benches);
