//! Criterion benches of the GRAPE-6 simulator: the emulated pipeline
//! interaction, the on-chip predictor, a chip-level force call, and the
//! full-machine functional engine, plus the analytic timing model itself.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grape6_core::engine::ForceEngine;
use grape6_core::particle::{ForceResult, IParticle};
use grape6_core::vec3::Vec3;
use grape6_disk::DiskBuilder;
use grape6_hw::chip::HwIParticle;
use grape6_hw::pipeline::pipeline_interaction;
use grape6_hw::predictor::{predict_j, JParticle};
use grape6_hw::{
    ChipGeometry, FixedPointFormat, Grape6Chip, Grape6Config, Grape6Engine, Precision, TimingModel,
};

fn bench_pipeline_interaction(c: &mut Criterion) {
    let fmt = FixedPointFormat::default();
    let qi = fmt.encode_vec(Vec3::new(20.0, 0.0, 0.0));
    let qj = fmt.encode_vec(Vec3::new(21.0, 0.5, -0.1));
    let vi = Vec3::new(0.0, 0.22, 0.0);
    let vj = Vec3::new(-0.01, 0.21, 0.0);
    for (name, prec) in [("exact", Precision::Exact), ("grape6", Precision::grape6())] {
        c.bench_function(&format!("pipeline_interaction_{name}"), |b| {
            b.iter(|| {
                pipeline_interaction(
                    &fmt,
                    prec,
                    black_box(qi),
                    black_box(qj),
                    black_box(vi),
                    black_box(vj),
                    black_box(1e-9),
                    black_box(6.4e-5),
                )
            })
        });
    }
}

fn bench_predictor(c: &mut Criterion) {
    let fmt = FixedPointFormat::default();
    let j = JParticle::encode(
        &fmt,
        Precision::grape6(),
        Vec3::new(20.0, 1.0, 0.0),
        Vec3::new(0.0, 0.22, 0.0),
        Vec3::new(-2e-3, 0.0, 0.0),
        Vec3::new(0.0, -5e-6, 0.0),
        1e-9,
        0.0,
    );
    c.bench_function("predictor_pipeline", |b| {
        b.iter(|| predict_j(&fmt, Precision::grape6(), black_box(&j), black_box(0.25)))
    });
}

fn bench_chip(c: &mut Criterion) {
    let fmt = FixedPointFormat::default();
    let sys = DiskBuilder::paper(1024).build();
    let js: Vec<JParticle> = (0..1024)
        .map(|i| {
            JParticle::encode(
                &fmt,
                Precision::grape6(),
                sys.pos[i],
                sys.vel[i],
                Vec3::zero(),
                Vec3::zero(),
                sys.mass[i],
                0.0,
            )
        })
        .collect();
    let mut chip = Grape6Chip::new(ChipGeometry::default(), fmt, Precision::grape6());
    chip.load_j(&js).unwrap();
    let ips: Vec<HwIParticle> = (0..48)
        .map(|k| HwIParticle::encode(&fmt, Precision::grape6(), sys.pos[k * 20], sys.vel[k * 20]))
        .collect();
    let mut group = c.benchmark_group("chip");
    group.throughput(Throughput::Elements(48 * 1024));
    group.bench_function("sweep_48i_1kj", |b| {
        b.iter(|| chip.compute(black_box(0.125), &ips, 6.4e-5))
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("grape6_engine");
    for &n in &[4096usize, 16384] {
        let sys = DiskBuilder::paper(n).build();
        let mut engine = Grape6Engine::new(Grape6Config::sc2002());
        engine.load(&sys);
        let ips: Vec<IParticle> = (0..128)
            .map(|k| {
                let i = k * (n / 128);
                IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }
            })
            .collect();
        let mut out = vec![ForceResult::default(); ips.len()];
        group.throughput(Throughput::Elements(128 * (n as u64 + 2)));
        group.bench_with_input(BenchmarkId::new("block128", n), &n, |b, _| {
            b.iter(|| engine.compute(black_box(0.0), &ips, &mut out))
        });
    }
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    use grape6_hw::predictor::JParticle;
    use grape6_hw::wire;
    let fmt = FixedPointFormat::default();
    let js: Vec<JParticle> = (0..1024)
        .map(|k| {
            JParticle::encode(
                &fmt,
                Precision::grape6(),
                Vec3::new(20.0 + k as f64 * 0.01, 0.3, 0.0),
                Vec3::new(0.0, 0.21, 0.0),
                Vec3::zero(),
                Vec3::zero(),
                1e-9,
                0.5,
            )
        })
        .collect();
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes((js.len() * wire::J_PACKET_BYTES) as u64));
    group.bench_function("encode_j_block_1k", |b| b.iter(|| wire::encode_j_block(black_box(&js))));
    let stream = wire::encode_j_block(&js);
    group.bench_function("decode_j_block_1k", |b| {
        b.iter(|| wire::decode_j_block(black_box(stream.clone())))
    });
    group.finish();
}

fn bench_format(c: &mut Criterion) {
    let fmt = FixedPointFormat::default();
    c.bench_function("fixed_encode_vec", |b| {
        b.iter(|| fmt.encode_vec(black_box(Vec3::new(23.456, -12.3, 0.07))))
    });
    c.bench_function("round_mantissa_24", |b| {
        b.iter(|| grape6_hw::format::round_mantissa(black_box(0.1234567890123), 24))
    });
}

fn bench_timing_model(c: &mut Criterion) {
    let model = TimingModel::sc2002();
    c.bench_function("timing_model_block_step", |b| {
        b.iter(|| model.block_step(black_box(2048), black_box(1_800_000)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline_interaction, bench_predictor, bench_chip, bench_engine, bench_wire, bench_format, bench_timing_model
}
criterion_main!(benches);
