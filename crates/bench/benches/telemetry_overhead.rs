//! Overhead of the telemetry observer on the integrator hot path.
//!
//! The null observer `()` must monomorphize to nothing; a `Telemetry`
//! attached adds a handful of `Instant::now()` calls per block step. The
//! acceptance bar is telemetry-on within 5 % of telemetry-off on the
//! block-step force path.

use criterion::{criterion_group, criterion_main, Criterion};
use grape6_bench::{experiment_config, paper_disk};
use grape6_core::force::DirectEngine;
use grape6_core::integrator::BlockHermite;
use grape6_sim::Telemetry;

const N: usize = 256;
const SEED: u64 = 11;

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");

    group.bench_function("block_step/observer_off", |b| {
        let mut sys = paper_disk(N, SEED);
        let mut engine = DirectEngine::new();
        let mut integ = BlockHermite::new(experiment_config());
        integ.initialize(&mut sys, &mut engine);
        b.iter(|| {
            integ.step(&mut sys, &mut engine);
        });
    });

    group.bench_function("block_step/observer_on", |b| {
        let mut sys = paper_disk(N, SEED);
        let mut engine = DirectEngine::new();
        let mut integ = BlockHermite::new(experiment_config());
        let mut tele = Telemetry::new();
        integ.initialize_observed(&mut sys, &mut engine, &mut tele);
        b.iter(|| {
            integ.step_observed(&mut sys, &mut engine, &mut tele);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
