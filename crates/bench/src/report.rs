//! The `bench_report` harness: fixed seeded workloads, schema-stable JSON.
//!
//! Each workload runs a deterministic scaled-down paper disk through one
//! engine with [`grape6_sim::Telemetry`] attached, and reports wall seconds
//! per host phase, work counters, interaction rates and the modeled machine
//! speed. The counters are exactly reproducible run-to-run (fixed seeds,
//! deterministic engines); only the wall-clock fields vary.
//!
//! The `paper_check` section derives the §5.2/§6 self-check numbers from
//! [`TimingModel::sc2002`] — the same single source of truth that
//! `tests/paper_numbers.rs::efficiency_regime_attainable` asserts against —
//! so a timing-model regression shows up in both places at once.

use crate::experiment_config;
use grape6_core::engine::ForceEngine;
use grape6_core::force::FLOPS_PER_INTERACTION;
use grape6_disk::DiskBuilder;
use grape6_hw::{FaultPlan, FaultTolerantEngine, Grape6Config, Grape6Engine, TimingModel};
use grape6_sim::{Simulation, TelemetryReport};
use grape6_tree::TreeEngine;
use serde::{Deserialize, Serialize};

/// Bumped whenever a field of [`BenchReport`] changes meaning or name.
/// Version 2 added the `thread_scaling` section and the per-workload
/// `telemetry.host_threads` field. Version 3 added the `telemetry.faults`
/// counters, the `checkpoint` phase, and the `grape6_ft_faulty` workload.
pub const SCHEMA_VERSION: u64 = 3;

/// Host thread counts the scaling section sweeps.
pub const SCALING_THREADS: [usize; 3] = [1, 2, 4];

/// Which force engine a workload exercises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineKind {
    /// CPU direct summation.
    Direct,
    /// The GRAPE-6 functional + timing simulator (full SC2002 machine).
    Grape6,
    /// The Barnes-Hut baseline at the given opening angle.
    Tree(f64),
    /// The dual-modular fault-tolerant GRAPE-6 running a seeded random
    /// [`FaultPlan`] (the given seed; 8 events over the first 40 blocks).
    Grape6Faulty(u64),
}

/// One fixed, seeded benchmark workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Stable identifier (JSON `id` field).
    pub id: &'static str,
    /// Planetesimal count (two protoplanets are added on top).
    pub n: usize,
    /// Disk realization seed.
    pub seed: u64,
    /// Integration span in simulation time units.
    pub t_end: f64,
    /// Engine under test.
    pub engine: EngineKind,
}

/// The standard workload set: small direct-summation disk, a GRAPE-emulated
/// node, and the tree-code baseline, all on the same disk realization.
pub fn standard_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            id: "small_disk_direct",
            n: 256,
            seed: 20020616,
            t_end: 2.0,
            engine: EngineKind::Direct,
        },
        WorkloadSpec {
            id: "grape6_node",
            n: 512,
            seed: 20020616,
            t_end: 2.0,
            engine: EngineKind::Grape6,
        },
        WorkloadSpec {
            id: "tree_baseline",
            n: 512,
            seed: 20020616,
            t_end: 2.0,
            engine: EngineKind::Tree(0.5),
        },
        WorkloadSpec {
            id: "grape6_ft_faulty",
            n: 256,
            seed: 20020616,
            t_end: 1.0,
            engine: EngineKind::Grape6Faulty(2002),
        },
    ]
}

/// Result of one workload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Workload identifier.
    pub id: String,
    /// Total bodies integrated (planetesimals + protoplanets).
    pub n_bodies: u64,
    /// Disk realization seed.
    pub seed: u64,
    /// Integration span in simulation time units.
    pub t_end: f64,
    /// Full host telemetry (phase wall seconds, counters, rates).
    pub telemetry: TelemetryReport,
    /// Modeled sustained machine speed, Tflops (57 flops per interaction
    /// over modeled seconds; 0 for engines without a timing model).
    pub modeled_tflops: f64,
}

/// §5.2/§6 self-check numbers derived from [`TimingModel::sc2002`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperCheck {
    /// Machine peak, Tflops (§1: 63.4).
    pub peak_tflops: f64,
    /// The paper's sustained fraction of peak (§6: 29.5/63.4 = 46.5 %).
    pub gordon_bell_efficiency: f64,
    /// Modeled sustained Tflops for 512-particle blocks at N = 1.8 M.
    pub sustained_tflops_block_512: f64,
    /// Modeled sustained Tflops for 16384-particle blocks at N = 1.8 M.
    pub sustained_tflops_block_16384: f64,
    /// `sustained_tflops_block_512 / peak_tflops`.
    pub efficiency_block_512: f64,
    /// `sustained_tflops_block_16384 / peak_tflops`.
    pub efficiency_block_16384: f64,
}

impl PaperCheck {
    /// Compute the check numbers from the production timing model.
    pub fn sc2002() -> Self {
        let model = TimingModel::sc2002();
        let peak = model.geometry.peak_flops();
        let lo = model.sustained_flops(512, 1_800_000);
        let hi = model.sustained_flops(16384, 1_800_000);
        Self {
            peak_tflops: peak / 1e12,
            gordon_bell_efficiency: 0.465,
            sustained_tflops_block_512: lo / 1e12,
            sustained_tflops_block_16384: hi / 1e12,
            efficiency_block_512: lo / peak,
            efficiency_block_16384: hi / peak,
        }
    }
}

/// One thread count of one workload's scaling sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadScalingEntry {
    /// Host worker threads the run used.
    pub threads: usize,
    /// Wall seconds in the force phase (the parallelized hot path).
    pub force_seconds: f64,
    /// Total recorded host wall seconds.
    pub total_host_seconds: f64,
    /// Total pairwise interactions — must be identical across the sweep
    /// (the determinism contract; [`build_report`] asserts it).
    pub interactions: u64,
    /// Completed block steps — likewise thread-count invariant.
    pub block_steps: u64,
    /// `force_seconds(1 thread) / force_seconds(this run)`.
    pub speedup_force_vs_1: f64,
}

/// The scaling sweep of one workload across [`SCALING_THREADS`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadScalingResult {
    /// Workload identifier (matches a `workloads` entry).
    pub id: String,
    /// One entry per thread count, in [`SCALING_THREADS`] order.
    pub entries: Vec<ThreadScalingEntry>,
}

/// The complete `BENCH_report.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Git commit the report was produced from (`"unknown"` outside a repo).
    pub git_sha: String,
    /// One entry per workload, in [`standard_workloads`] order.
    pub workloads: Vec<WorkloadResult>,
    /// Host thread-scaling sweep of every workload (wall clocks vary with
    /// the thread count; work counters must not).
    pub thread_scaling: Vec<ThreadScalingResult>,
    /// Timing-model self-check against the paper's headline numbers.
    pub paper_check: PaperCheck,
}

fn run_with<E: ForceEngine>(spec: &WorkloadSpec, engine: E) -> WorkloadResult {
    let sys = DiskBuilder::paper(spec.n).with_seed(spec.seed).build();
    let n_bodies = sys.len() as u64;
    let mut sim = Simulation::with_telemetry(sys, experiment_config(), engine);
    sim.run_to(spec.t_end, spec.t_end / 4.0);
    let telemetry = sim.telemetry_report().expect("telemetry enabled");
    let modeled_tflops = if telemetry.modeled_seconds > 0.0 {
        FLOPS_PER_INTERACTION as f64 * telemetry.interactions as f64
            / telemetry.modeled_seconds
            / 1e12
    } else {
        0.0
    };
    WorkloadResult {
        id: spec.id.to_string(),
        n_bodies,
        seed: spec.seed,
        t_end: spec.t_end,
        telemetry,
        modeled_tflops,
    }
}

/// Run one workload to completion.
pub fn run_workload(spec: &WorkloadSpec) -> WorkloadResult {
    match spec.engine {
        EngineKind::Direct => run_with(spec, grape6_core::force::DirectEngine::new()),
        EngineKind::Grape6 => run_with(spec, Grape6Engine::sc2002()),
        EngineKind::Tree(theta) => run_with(spec, TreeEngine::new(theta)),
        EngineKind::Grape6Faulty(seed) => {
            let plan = FaultPlan::random(seed, 8, 40);
            run_with(spec, FaultTolerantEngine::new(Grape6Config::sc2002(), &plan))
        }
    }
}

/// Run one workload's scaling sweep across [`SCALING_THREADS`], asserting
/// the determinism contract: work counters must be bit-identical at every
/// thread count (only wall clocks may differ).
pub fn run_thread_scaling(spec: &WorkloadSpec) -> ThreadScalingResult {
    let runs: Vec<WorkloadResult> = SCALING_THREADS
        .iter()
        .map(|&t| rayon::with_num_threads(t, || run_workload(spec)))
        .collect();
    let base = &runs[0].telemetry;
    for r in &runs[1..] {
        assert_eq!(r.telemetry.interactions, base.interactions, "{}: counter drift", spec.id);
        assert_eq!(r.telemetry.block_steps, base.block_steps, "{}: counter drift", spec.id);
        assert_eq!(r.telemetry.wire_bytes, base.wire_bytes, "{}: counter drift", spec.id);
    }
    let t1_force = base.phase_seconds.force;
    ThreadScalingResult {
        id: spec.id.to_string(),
        entries: SCALING_THREADS
            .iter()
            .zip(&runs)
            .map(|(&threads, r)| ThreadScalingEntry {
                threads,
                force_seconds: r.telemetry.phase_seconds.force,
                total_host_seconds: r.telemetry.total_host_seconds,
                interactions: r.telemetry.interactions,
                block_steps: r.telemetry.block_steps,
                speedup_force_vs_1: if r.telemetry.phase_seconds.force > 0.0 {
                    t1_force / r.telemetry.phase_seconds.force
                } else {
                    0.0
                },
            })
            .collect(),
    }
}

/// Run every standard workload and assemble the full report.
pub fn build_report(git_sha: String) -> BenchReport {
    let specs = standard_workloads();
    BenchReport {
        schema_version: SCHEMA_VERSION,
        git_sha,
        workloads: specs.iter().map(run_workload).collect(),
        thread_scaling: specs.iter().map(run_thread_scaling).collect(),
        paper_check: PaperCheck::sc2002(),
    }
}

/// Best-effort short git SHA of the source tree, `"unknown"` when git or
/// the repository is unavailable. Anchored to the build-time source
/// directory so the answer does not depend on the caller's cwd.
pub fn detect_git_sha() -> String {
    std::process::Command::new("git")
        .args(["-C", env!("CARGO_MANIFEST_DIR"), "rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_ids_are_unique() {
        let specs = standard_workloads();
        assert!(specs.len() >= 3, "at least three fixed workloads");
        let mut ids: Vec<&str> = specs.iter().map(|s| s.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), specs.len());
    }

    #[test]
    fn direct_workload_counters_are_rerun_identical() {
        let spec = standard_workloads()[0];
        let a = run_workload(&spec);
        let b = run_workload(&spec);
        assert_eq!(a.telemetry.interactions, b.telemetry.interactions);
        assert_eq!(a.telemetry.block_steps, b.telemetry.block_steps);
        assert_eq!(a.telemetry.particle_steps, b.telemetry.particle_steps);
        assert_eq!(a.telemetry.wire_bytes, b.telemetry.wire_bytes);
        assert_eq!(a.telemetry.modeled_seconds, b.telemetry.modeled_seconds);
        assert_eq!(a.n_bodies, spec.n as u64 + 2);
    }

    #[test]
    fn paper_check_brackets_gordon_bell_efficiency() {
        let c = PaperCheck::sc2002();
        assert!((c.peak_tflops - 63.4).abs() < 0.5);
        assert!(c.efficiency_block_512 < c.gordon_bell_efficiency);
        assert!(c.efficiency_block_16384 > c.gordon_bell_efficiency);
    }

    #[test]
    fn report_round_trips_through_json() {
        // A miniature spec keeps this fast; schema is identical.
        let spec =
            WorkloadSpec { id: "mini", n: 32, seed: 7, t_end: 0.25, engine: EngineKind::Grape6 };
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            git_sha: "deadbeef".to_string(),
            workloads: vec![run_workload(&spec)],
            thread_scaling: vec![run_thread_scaling(&spec)],
            paper_check: PaperCheck::sc2002(),
        };
        assert!(report.workloads[0].modeled_tflops > 0.0);
        assert_eq!(report.thread_scaling[0].entries.len(), SCALING_THREADS.len());
        assert!((report.thread_scaling[0].entries[0].speedup_force_vs_1 - 1.0).abs() < 1e-12);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, report.schema_version);
        assert_eq!(back.git_sha, "deadbeef");
        assert_eq!(
            back.workloads[0].telemetry.interactions,
            report.workloads[0].telemetry.interactions
        );
    }
}
