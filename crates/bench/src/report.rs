//! The `bench_report` harness: fixed seeded workloads, schema-stable JSON.
//!
//! Each workload runs a deterministic scaled-down paper disk through one
//! engine with [`grape6_sim::Telemetry`] attached, and reports wall seconds
//! per host phase, work counters, interaction rates and the modeled machine
//! speed. The counters are exactly reproducible run-to-run (fixed seeds,
//! deterministic engines); only the wall-clock fields vary.
//!
//! The `paper_check` section derives the §5.2/§6 self-check numbers from
//! [`TimingModel::sc2002`] — the same single source of truth that
//! `tests/paper_numbers.rs::efficiency_regime_attainable` asserts against —
//! so a timing-model regression shows up in both places at once.

use crate::experiment_config;
use grape6_core::engine::ForceEngine;
use grape6_core::force::FLOPS_PER_INTERACTION;
use grape6_core::lanes::LaneWidth;
use grape6_core::particle::ParticleSystem;
use grape6_disk::DiskBuilder;
use grape6_hw::{FaultPlan, FaultTolerantEngine, Grape6Config, Grape6Engine, TimingModel};
use grape6_sim::{Simulation, TelemetryReport};
use grape6_tree::{HybridTreeEngine, TreeEngine};
use serde::{Deserialize, Serialize};

/// Bumped whenever a field of [`BenchReport`] changes meaning or name.
/// Version 2 added the `thread_scaling` section and the per-workload
/// `telemetry.host_threads` field. Version 3 added the `telemetry.faults`
/// counters, the `checkpoint` phase, and the `grape6_ft_faulty` workload.
/// Version 4 added the per-workload `lane_width` field and the
/// `kernel_microbench` section (per-kernel `interactions_per_second_real`
/// at every AoSoA lane width, with speedups over the scalar reference).
/// Version 5 added the `host_phase` section: per-block-step
/// Schedule/Predict/JUpdate nanoseconds on zero-force disks up to the
/// paper-scale 131 072-body workload, for both block schedulers.
/// Version 6 added the `service_latency` section: the seeded 256-job /
/// 4-tenant load-generator pass through the `grape6-serve` job service
/// (submit-to-complete latency percentiles, throughput, preemption count,
/// cache hit rate, and the exactness-verification counters).
/// Version 7 added the `hybrid_disk` workload, the per-workload
/// `telemetry.tree` walk counters, and the `hybrid` section (near/far
/// interaction split and measured interaction rates of the hybrid
/// tree+direct engine against the direct reference at matched N).
pub const SCHEMA_VERSION: u64 = 7;

/// Host thread counts the scaling section sweeps.
pub const SCALING_THREADS: [usize; 3] = [1, 2, 4];

/// Which force engine a workload exercises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineKind {
    /// CPU direct summation.
    Direct,
    /// The GRAPE-6 functional + timing simulator (full SC2002 machine).
    Grape6,
    /// The Barnes-Hut baseline at the given opening angle.
    Tree(f64),
    /// The dual-modular fault-tolerant GRAPE-6 running a seeded random
    /// [`FaultPlan`] (the given seed; 8 events over the first 40 blocks).
    Grape6Faulty(u64),
    /// The hybrid tree+direct engine: Barnes-Hut far field at the given
    /// opening angle, exact near field inside the given neighbour radius.
    Hybrid {
        /// Opening angle θ of the far-field walk.
        theta: f64,
        /// Neighbour-sphere radius summed directly at full precision.
        r_near: f64,
    },
}

/// One fixed, seeded benchmark workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Stable identifier (JSON `id` field).
    pub id: &'static str,
    /// Planetesimal count (two protoplanets are added on top).
    pub n: usize,
    /// Disk realization seed.
    pub seed: u64,
    /// Integration span in simulation time units.
    pub t_end: f64,
    /// Engine under test.
    pub engine: EngineKind,
}

/// The standard workload set: small direct-summation disk, a GRAPE-emulated
/// node, and the tree-code baseline, all on the same disk realization.
pub fn standard_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            id: "small_disk_direct",
            n: 256,
            seed: 20020616,
            t_end: 2.0,
            engine: EngineKind::Direct,
        },
        WorkloadSpec {
            id: "grape6_node",
            n: 512,
            seed: 20020616,
            t_end: 2.0,
            engine: EngineKind::Grape6,
        },
        WorkloadSpec {
            id: "tree_baseline",
            n: 512,
            seed: 20020616,
            t_end: 2.0,
            engine: EngineKind::Tree(0.5),
        },
        WorkloadSpec {
            id: "grape6_ft_faulty",
            n: 256,
            seed: 20020616,
            t_end: 1.0,
            engine: EngineKind::Grape6Faulty(2002),
        },
        WorkloadSpec {
            id: "hybrid_disk",
            n: 512,
            seed: 20020616,
            t_end: 2.0,
            engine: EngineKind::Hybrid { theta: 0.5, r_near: 3.0 },
        },
    ]
}

/// Result of one workload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Workload identifier.
    pub id: String,
    /// Total bodies integrated (planetesimals + protoplanets).
    pub n_bodies: u64,
    /// Disk realization seed.
    pub seed: u64,
    /// Integration span in simulation time units.
    pub t_end: f64,
    /// Full host telemetry (phase wall seconds, counters, rates).
    pub telemetry: TelemetryReport,
    /// Modeled sustained machine speed, Tflops (57 flops per interaction
    /// over modeled seconds; 0 for engines without a timing model).
    pub modeled_tflops: f64,
    /// AoSoA lane width of the force kernels the workload ran with
    /// (`"scalar"`, `"w4"`, `"w8"`; engines without a lane path report
    /// `"scalar"`). Results are bitwise lane-width-invariant — this field
    /// records which kernel produced them, not what they contain.
    pub lane_width: String,
}

/// §5.2/§6 self-check numbers derived from [`TimingModel::sc2002`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperCheck {
    /// Machine peak, Tflops (§1: 63.4).
    pub peak_tflops: f64,
    /// The paper's sustained fraction of peak (§6: 29.5/63.4 = 46.5 %).
    pub gordon_bell_efficiency: f64,
    /// Modeled sustained Tflops for 512-particle blocks at N = 1.8 M.
    pub sustained_tflops_block_512: f64,
    /// Modeled sustained Tflops for 16384-particle blocks at N = 1.8 M.
    pub sustained_tflops_block_16384: f64,
    /// `sustained_tflops_block_512 / peak_tflops`.
    pub efficiency_block_512: f64,
    /// `sustained_tflops_block_16384 / peak_tflops`.
    pub efficiency_block_16384: f64,
}

impl PaperCheck {
    /// Compute the check numbers from the production timing model.
    pub fn sc2002() -> Self {
        let model = TimingModel::sc2002();
        let peak = model.geometry.peak_flops();
        let lo = model.sustained_flops(512, 1_800_000);
        let hi = model.sustained_flops(16384, 1_800_000);
        Self {
            peak_tflops: peak / 1e12,
            gordon_bell_efficiency: 0.465,
            sustained_tflops_block_512: lo / 1e12,
            sustained_tflops_block_16384: hi / 1e12,
            efficiency_block_512: lo / peak,
            efficiency_block_16384: hi / peak,
        }
    }
}

/// One thread count of one workload's scaling sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadScalingEntry {
    /// Host worker threads the run used.
    pub threads: usize,
    /// Wall seconds in the force phase (the parallelized hot path).
    pub force_seconds: f64,
    /// Total recorded host wall seconds.
    pub total_host_seconds: f64,
    /// Total pairwise interactions — must be identical across the sweep
    /// (the determinism contract; [`build_report`] asserts it).
    pub interactions: u64,
    /// Completed block steps — likewise thread-count invariant.
    pub block_steps: u64,
    /// `force_seconds(1 thread) / force_seconds(this run)`.
    pub speedup_force_vs_1: f64,
}

/// The scaling sweep of one workload across [`SCALING_THREADS`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadScalingResult {
    /// Workload identifier (matches a `workloads` entry).
    pub id: String,
    /// One entry per thread count, in [`SCALING_THREADS`] order.
    pub entries: Vec<ThreadScalingEntry>,
}

/// The complete `BENCH_report.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Git commit the report was produced from (`"unknown"` outside a repo).
    pub git_sha: String,
    /// One entry per workload, in [`standard_workloads`] order.
    pub workloads: Vec<WorkloadResult>,
    /// Host thread-scaling sweep of every workload (wall clocks vary with
    /// the thread count; work counters must not).
    pub thread_scaling: Vec<ThreadScalingResult>,
    /// Per-kernel interaction rates at every AoSoA lane width
    /// (scalar / W = 4 / W = 8), with speedups over the scalar reference.
    pub kernel_microbench: Vec<KernelRate>,
    /// Per-block-step host-phase nanoseconds (Schedule / Predict / JUpdate)
    /// on zero-force disks, for both block schedulers, up to the
    /// paper-scale 131 072-body workload.
    pub host_phase: Vec<HostPhaseRow>,
    /// The seeded load-generator pass through the `grape6-serve` job
    /// service (256 jobs / 4 tenants): latency percentiles, throughput,
    /// cache hit rate, and the deterministic work counters. Optional at the
    /// parse level so `bench_compare` can *name* a report that dropped the
    /// section instead of dying on a deserialization error; every produced
    /// report carries it.
    #[serde(default)]
    pub service_latency: Option<crate::loadgen::ServiceLatencyResult>,
    /// Hybrid tree+direct engine vs the direct reference at matched N:
    /// exact near/far interaction split and measured sweep rates. Optional
    /// at the parse level for the same reason as `service_latency`; every
    /// produced report carries it.
    #[serde(default)]
    pub hybrid: Option<HybridBench>,
    /// Timing-model self-check against the paper's headline numbers.
    pub paper_check: PaperCheck,
}

/// One timed kernel microbenchmark point: a fixed blocked force sweep at a
/// fixed lane width. The interaction count is deterministic; the wall clock
/// (and hence the rate) tracks the host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelRate {
    /// Which force kernel (`"direct"` or `"grape6"`).
    pub kernel: String,
    /// AoSoA lane width (`"scalar"`, `"w4"`, `"w8"`).
    pub lane_width: String,
    /// Bodies in the j-memory.
    pub n_bodies: u64,
    /// i-particles per force call.
    pub block: u64,
    /// Total pairwise interactions timed (reps × block × n).
    pub interactions: u64,
    /// Wall seconds over all repetitions.
    pub wall_seconds: f64,
    /// `interactions / wall_seconds`.
    pub interactions_per_second_real: f64,
    /// This width's rate over the same kernel's scalar rate (1.0 for the
    /// scalar rows themselves).
    pub speedup_vs_scalar: f64,
}

/// The `hybrid` section: full-block force sweeps of the hybrid tree+direct
/// engine against the direct reference on the same seeded disk at matched
/// N. The interaction counters (near/far split included) are exact walk
/// output — deterministic, gated bit-for-bit by `bench_compare` — while the
/// wall clocks and derived rates track the host and gate slowdown-only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridBench {
    /// Total bodies in the seeded disk (planetesimals + protoplanets).
    pub n_bodies: u64,
    /// Opening angle θ of the far-field walk.
    pub theta: f64,
    /// Neighbour-sphere radius summed directly at full precision.
    pub r_near: f64,
    /// Timed full-block sweeps (after an untimed warm-up that builds the
    /// tree; the steady-state sweeps reuse it).
    pub sweeps: u64,
    /// Exact near-field pair evaluations over the timed sweeps.
    pub near_interactions: u64,
    /// Far-field (accepted cell + far leaf body) evaluations over the
    /// timed sweeps.
    pub far_interactions: u64,
    /// `near_interactions + far_interactions` (the hybrid engine's own
    /// interaction counter).
    pub hybrid_interactions: u64,
    /// Direct-summation evaluations over the same sweeps (`sweeps · N²`).
    pub direct_interactions: u64,
    /// Hybrid wall seconds over the timed sweeps (fastest rep × sweeps).
    pub hybrid_wall_seconds: f64,
    /// Direct wall seconds over the same sweeps.
    pub direct_wall_seconds: f64,
    /// `hybrid_interactions / hybrid_wall_seconds`.
    pub hybrid_interactions_per_second: f64,
    /// `direct_interactions / direct_wall_seconds`.
    pub direct_interactions_per_second: f64,
    /// Wall-clock sweep speedup of the hybrid over the direct reference
    /// (`direct_wall_seconds / hybrid_wall_seconds`).
    pub speedup_vs_direct: f64,
}

/// Time `reps` full-block sweeps of the hybrid engine and the direct
/// reference on the same seeded disk. Both engines get one untimed warm-up
/// sweep (pools spawned, j-memory paged, tree built); the hybrid's counters
/// are reset after it so the reported near/far split covers exactly the
/// timed sweeps. Each rep is timed alone and the fastest extrapolates the
/// wall (preemption only ever slows a rep down).
pub fn run_hybrid_bench(n: usize, seed: u64, theta: f64, r_near: f64, reps: usize) -> HybridBench {
    use grape6_core::particle::{ForceResult, IParticle};
    let sys = DiskBuilder::paper(n).with_seed(seed).build();
    let nb = sys.len();
    let ips: Vec<IParticle> =
        (0..nb).map(|i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect();
    let mut out = vec![ForceResult::default(); nb];

    let mut hybrid = HybridTreeEngine::new(theta, r_near);
    hybrid.load(&sys);
    hybrid.compute(0.0, &ips, &mut out); // warm-up: builds the tree
    hybrid.reset_counters();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        hybrid.compute(0.0, &ips, &mut out);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(&out);
    let work = hybrid.tree_work().expect("hybrid engine reports walk counters");
    let hybrid_interactions = hybrid.interaction_count();
    let hybrid_wall_seconds = best * reps as f64;

    let (direct_interactions, direct_wall_seconds) =
        time_kernel(grape6_core::force::DirectEngine::new(), &sys, reps);

    let rate = |inter: u64, wall: f64| if wall > 0.0 { inter as f64 / wall } else { 0.0 };
    HybridBench {
        n_bodies: nb as u64,
        theta,
        r_near,
        sweeps: reps as u64,
        near_interactions: work.near_interactions,
        far_interactions: work.far_interactions,
        hybrid_interactions,
        direct_interactions,
        hybrid_wall_seconds,
        direct_wall_seconds,
        hybrid_interactions_per_second: rate(hybrid_interactions, hybrid_wall_seconds),
        direct_interactions_per_second: rate(direct_interactions, direct_wall_seconds),
        speedup_vs_direct: if hybrid_wall_seconds > 0.0 {
            direct_wall_seconds / hybrid_wall_seconds
        } else {
            0.0
        },
    }
}

/// The standard hybrid-vs-direct comparison the shipped report uses: the
/// `hybrid_disk` workload's opening angle and neighbour radius at a disk
/// size where the walk meaningfully undercuts N² (the lane-vectorized
/// direct kernel holds a ~10x per-interaction rate edge over the scalar
/// walk+sum, so the interaction ratio has to clear that before the wall
/// clock crosses over).
pub fn standard_hybrid_bench() -> HybridBench {
    run_hybrid_bench(8192, 20020616, 0.5, 3.0, 3)
}

/// A force engine that computes no pairwise forces: every result is zero,
/// so the Sun's central potential (applied host-side by the integrator) is
/// the only acceleration and still spreads particles across realistic
/// timestep rungs. With the O(N²) force sweep gone, the *host* paths —
/// scheduling, prediction, correction, j-update batching — are the entire
/// cost of a block step, which is exactly what the `host_phase` section and
/// the large-N smoke binary need to time at paper-scale N.
#[derive(Debug, Default, Clone)]
pub struct NullForceEngine {
    n_j: usize,
    interactions: u64,
}

impl ForceEngine for NullForceEngine {
    fn load(&mut self, sys: &ParticleSystem) {
        self.n_j = sys.len();
    }

    fn update_j(&mut self, _sys: &ParticleSystem, _indices: &[usize]) {}

    fn compute(
        &mut self,
        _t: f64,
        ips: &[grape6_core::particle::IParticle],
        out: &mut [grape6_core::particle::ForceResult],
    ) {
        // Count with the hardware convention so the workload's interaction
        // counter stays deterministic and comparable across schedulers.
        self.interactions += (ips.len() as u64) * (self.n_j as u64);
        out.fill(grape6_core::particle::ForceResult::default());
    }

    fn interaction_count(&self) -> u64 {
        self.interactions
    }

    fn reset_counters(&mut self) {
        self.interactions = 0;
    }

    fn name(&self) -> &'static str {
        "null"
    }
}

/// One row of the `host_phase` table: a fixed budget of block steps on a
/// seeded zero-force disk, timed per integrator host phase. Counters are
/// deterministic; the per-phase nanoseconds track the host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostPhaseRow {
    /// Block scheduler the row ran with (`"tick"` or `"heap"`).
    pub scheduler: String,
    /// Total bodies (planetesimals + protoplanets).
    pub n_bodies: u64,
    /// Block steps timed (after an untimed initialization).
    pub block_steps: u64,
    /// Active-particle steps over the timed span — scheduler-invariant
    /// (the two schedulers are bitwise-equivalent; [`run_host_phase_bench`]
    /// asserts it).
    pub particle_steps: u64,
    /// Mean wall nanoseconds per block step extracting the block from the
    /// scheduler.
    pub schedule_ns_per_block: f64,
    /// Mean wall nanoseconds per block step predicting the i-particles.
    pub predict_ns_per_block: f64,
    /// Mean wall nanoseconds per block step flushing batched j-updates.
    pub jupdate_ns_per_block: f64,
    /// Wall seconds over the whole timed span (all phases).
    pub wall_seconds: f64,
}

/// Block steps each host-phase row times.
pub const HOST_PHASE_BLOCK_STEPS: u64 = 256;

/// Planetesimal counts of the standard host-phase rows (two protoplanets
/// ride on top of each): a small 514-body disk and the paper-scale
/// 131 072-body workload. Host scheduling cost must grow sublinearly
/// between them — that is the point of the table.
pub const HOST_PHASE_SIZES: [usize; 2] = [512, 131_070];

/// Timed repetitions per host-phase cell; the fastest is reported. Wall
/// time is one-sided noise (preemption, frequency dips only ever slow a
/// run down), so the minimum is the stable estimator — single-shot rows
/// were seen drifting 3× run-to-run on a busy core.
pub const HOST_PHASE_REPS: usize = 3;

/// Time `block_steps` block steps per scheduler on zero-force disks of the
/// given planetesimal counts, keeping the fastest of [`HOST_PHASE_REPS`]
/// repetitions. Initialization (O(N), untimed) uses the same seeded disk
/// for every scheduler and repetition; the timed span asserts that both
/// schedulers do bit-identical work (equal particle-step counts).
pub fn run_host_phase_bench(sizes: &[usize], block_steps: u64) -> Vec<HostPhaseRow> {
    use grape6_core::blockstep::SchedulerKind;
    use grape6_core::integrator::BlockHermite;
    use grape6_core::observer::HostPhase;
    let mut rows: Vec<HostPhaseRow> = Vec::new();
    for &n in sizes {
        let sys0 = DiskBuilder::paper(n).with_seed(20020616).build();
        let mut steps_per_scheduler: Vec<u64> = Vec::new();
        for kind in [SchedulerKind::TickBucket, SchedulerKind::Heap] {
            let mut best: Option<HostPhaseRow> = None;
            for _ in 0..HOST_PHASE_REPS {
                let mut sys = sys0.clone();
                let mut engine = NullForceEngine::default();
                let mut integ = BlockHermite::with_scheduler(crate::experiment_config(), kind);
                integ.initialize(&mut sys, &mut engine);
                let mut tel = grape6_sim::Telemetry::new();
                let t0 = std::time::Instant::now();
                for _ in 0..block_steps {
                    integ.step_observed(&mut sys, &mut engine, &mut tel);
                }
                let wall_seconds = t0.elapsed().as_secs_f64();
                let per_block = |p: HostPhase| tel.phase_seconds(p) * 1e9 / block_steps as f64;
                let row = HostPhaseRow {
                    scheduler: kind.name().to_string(),
                    n_bodies: sys.len() as u64,
                    block_steps,
                    particle_steps: integ.stats().particle_steps,
                    schedule_ns_per_block: per_block(HostPhase::Schedule),
                    predict_ns_per_block: per_block(HostPhase::Predict),
                    jupdate_ns_per_block: per_block(HostPhase::JUpdate),
                    wall_seconds,
                };
                if best.as_ref().is_none_or(|b| row.wall_seconds < b.wall_seconds) {
                    best = Some(row);
                }
            }
            let row = best.expect("HOST_PHASE_REPS >= 1");
            steps_per_scheduler.push(row.particle_steps);
            rows.push(row);
        }
        assert!(
            steps_per_scheduler.windows(2).all(|w| w[0] == w[1]),
            "schedulers diverged on the n = {n} host-phase workload: {steps_per_scheduler:?}"
        );
    }
    rows
}

/// The standard host-phase table the shipped report uses.
pub fn standard_host_phase_bench() -> Vec<HostPhaseRow> {
    run_host_phase_bench(&HOST_PHASE_SIZES, HOST_PHASE_BLOCK_STEPS)
}

fn time_kernel<E: ForceEngine>(mut engine: E, sys: &ParticleSystem, reps: usize) -> (u64, f64) {
    engine.load(sys);
    let n = sys.len();
    let ips: Vec<grape6_core::particle::IParticle> = (0..n)
        .map(|i| grape6_core::particle::IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] })
        .collect();
    let mut out = vec![grape6_core::particle::ForceResult::default(); n];
    engine.compute(0.0, &ips, &mut out); // warm-up: page in j-memory, spawn pools

    // Time each repetition on its own and extrapolate from the fastest:
    // preemption and steal only ever slow a rep down, so the minimum is
    // the stable per-sweep estimate on a contended core. The interaction
    // counter still reflects all `reps` issued sweeps.
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        engine.compute(0.0, &ips, &mut out);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(&out);
    ((reps * n * n) as u64, best * reps as f64)
}

/// Time the direct and GRAPE-6 force kernels at every lane width on fixed
/// seeded disks (`n_direct` / `n_grape6` planetesimals, `reps` full-block
/// sweeps each) and derive per-width speedups over the scalar reference.
pub fn run_kernel_microbench(n_direct: usize, n_grape6: usize, reps: usize) -> Vec<KernelRate> {
    let mut rates = Vec::new();
    for (kernel, n) in [("direct", n_direct), ("grape6", n_grape6)] {
        let sys = DiskBuilder::paper(n).with_seed(20020616).build();
        let mut scalar_rate = 0.0;
        for lanes in LaneWidth::ALL {
            let (interactions, wall_seconds) = match kernel {
                "direct" => time_kernel(
                    grape6_core::force::DirectEngine::with_lane_width(lanes),
                    &sys,
                    reps,
                ),
                _ => time_kernel(
                    Grape6Engine::new(Grape6Config { lanes, ..Grape6Config::sc2002() }),
                    &sys,
                    reps,
                ),
            };
            let rate = if wall_seconds > 0.0 { interactions as f64 / wall_seconds } else { 0.0 };
            if lanes == LaneWidth::Scalar {
                scalar_rate = rate;
            }
            rates.push(KernelRate {
                kernel: kernel.to_string(),
                lane_width: lanes.label().to_string(),
                n_bodies: sys.len() as u64,
                block: sys.len() as u64,
                interactions,
                wall_seconds,
                interactions_per_second_real: rate,
                speedup_vs_scalar: if scalar_rate > 0.0 { rate / scalar_rate } else { 0.0 },
            });
        }
    }
    rates
}

/// The standard microbench configuration the shipped report uses: blocks
/// large enough that the tiled j-sweep dominates, small enough that the
/// full sweep stays under a few seconds per width.
pub fn standard_kernel_microbench() -> Vec<KernelRate> {
    run_kernel_microbench(4096, 512, 3)
}

fn run_with<E: ForceEngine>(spec: &WorkloadSpec, engine: E) -> WorkloadResult {
    let sys = DiskBuilder::paper(spec.n).with_seed(spec.seed).build();
    let n_bodies = sys.len() as u64;
    let mut sim = Simulation::with_telemetry(sys, experiment_config(), engine);
    sim.run_to(spec.t_end, spec.t_end / 4.0);
    let telemetry = sim.telemetry_report().expect("telemetry enabled");
    let modeled_tflops = if telemetry.modeled_seconds > 0.0 {
        FLOPS_PER_INTERACTION as f64 * telemetry.interactions as f64
            / telemetry.modeled_seconds
            / 1e12
    } else {
        0.0
    };
    WorkloadResult {
        id: spec.id.to_string(),
        n_bodies,
        seed: spec.seed,
        t_end: spec.t_end,
        telemetry,
        modeled_tflops,
        lane_width: String::new(),
    }
}

/// Run one workload to completion.
pub fn run_workload(spec: &WorkloadSpec) -> WorkloadResult {
    // Direct and GRAPE-6 run their default AoSoA lane width; the tree
    // engines have no lane path and report the scalar kernel.
    let lanes = match spec.engine {
        EngineKind::Tree(_) | EngineKind::Hybrid { .. } => LaneWidth::Scalar,
        _ => LaneWidth::default(),
    };
    let mut out = match spec.engine {
        EngineKind::Direct => run_with(spec, grape6_core::force::DirectEngine::new()),
        EngineKind::Grape6 => run_with(spec, Grape6Engine::sc2002()),
        EngineKind::Tree(theta) => run_with(spec, TreeEngine::new(theta)),
        EngineKind::Grape6Faulty(seed) => {
            let plan = FaultPlan::random(seed, 8, 40);
            run_with(spec, FaultTolerantEngine::new(Grape6Config::sc2002(), &plan))
        }
        EngineKind::Hybrid { theta, r_near } => {
            run_with(spec, HybridTreeEngine::new(theta, r_near))
        }
    };
    out.lane_width = lanes.label().to_string();
    out
}

/// Run one workload's scaling sweep across [`SCALING_THREADS`], asserting
/// the determinism contract: work counters must be bit-identical at every
/// thread count (only wall clocks may differ).
pub fn run_thread_scaling(spec: &WorkloadSpec) -> ThreadScalingResult {
    let runs: Vec<WorkloadResult> = SCALING_THREADS
        .iter()
        .map(|&t| rayon::with_num_threads(t, || run_workload(spec)))
        .collect();
    let base = &runs[0].telemetry;
    for r in &runs[1..] {
        assert_eq!(r.telemetry.interactions, base.interactions, "{}: counter drift", spec.id);
        assert_eq!(r.telemetry.block_steps, base.block_steps, "{}: counter drift", spec.id);
        assert_eq!(r.telemetry.wire_bytes, base.wire_bytes, "{}: counter drift", spec.id);
    }
    let t1_force = base.phase_seconds.force;
    ThreadScalingResult {
        id: spec.id.to_string(),
        entries: SCALING_THREADS
            .iter()
            .zip(&runs)
            .map(|(&threads, r)| ThreadScalingEntry {
                threads,
                force_seconds: r.telemetry.phase_seconds.force,
                total_host_seconds: r.telemetry.total_host_seconds,
                interactions: r.telemetry.interactions,
                block_steps: r.telemetry.block_steps,
                speedup_force_vs_1: if r.telemetry.phase_seconds.force > 0.0 {
                    t1_force / r.telemetry.phase_seconds.force
                } else {
                    0.0
                },
            })
            .collect(),
    }
}

/// Run every standard workload and assemble the full report.
pub fn build_report(git_sha: String) -> BenchReport {
    let specs = standard_workloads();
    BenchReport {
        schema_version: SCHEMA_VERSION,
        git_sha,
        workloads: specs.iter().map(run_workload).collect(),
        thread_scaling: specs.iter().map(run_thread_scaling).collect(),
        kernel_microbench: standard_kernel_microbench(),
        host_phase: standard_host_phase_bench(),
        service_latency: Some(crate::loadgen::standard_service_latency()),
        hybrid: Some(standard_hybrid_bench()),
        paper_check: PaperCheck::sc2002(),
    }
}

/// Best-effort short git SHA of the source tree, `"unknown"` when git or
/// the repository is unavailable. Anchored to the build-time source
/// directory so the answer does not depend on the caller's cwd.
pub fn detect_git_sha() -> String {
    std::process::Command::new("git")
        .args(["-C", env!("CARGO_MANIFEST_DIR"), "rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_ids_are_unique() {
        let specs = standard_workloads();
        assert!(specs.len() >= 3, "at least three fixed workloads");
        let mut ids: Vec<&str> = specs.iter().map(|s| s.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), specs.len());
    }

    #[test]
    fn direct_workload_counters_are_rerun_identical() {
        let spec = standard_workloads()[0];
        let a = run_workload(&spec);
        let b = run_workload(&spec);
        assert_eq!(a.telemetry.interactions, b.telemetry.interactions);
        assert_eq!(a.telemetry.block_steps, b.telemetry.block_steps);
        assert_eq!(a.telemetry.particle_steps, b.telemetry.particle_steps);
        assert_eq!(a.telemetry.wire_bytes, b.telemetry.wire_bytes);
        assert_eq!(a.telemetry.modeled_seconds, b.telemetry.modeled_seconds);
        assert_eq!(a.n_bodies, spec.n as u64 + 2);
    }

    #[test]
    fn kernel_microbench_covers_both_kernels_at_every_width() {
        let rates = run_kernel_microbench(48, 32, 1);
        assert_eq!(rates.len(), 2 * LaneWidth::ALL.len());
        for kernel in ["direct", "grape6"] {
            let rows: Vec<&KernelRate> = rates.iter().filter(|r| r.kernel == kernel).collect();
            assert_eq!(rows.len(), LaneWidth::ALL.len(), "{kernel}");
            // The scalar row leads and anchors the speedup column.
            assert_eq!(rows[0].lane_width, "scalar");
            assert_eq!(rows[0].speedup_vs_scalar, 1.0);
            for r in rows {
                assert!(r.interactions > 0);
                assert_eq!(r.interactions, r.block * r.n_bodies);
                assert!(r.interactions_per_second_real > 0.0, "{kernel}/{}", r.lane_width);
                assert!(r.speedup_vs_scalar > 0.0);
            }
        }
    }

    #[test]
    fn host_phase_rows_cover_both_schedulers_with_identical_counters() {
        let rows = run_host_phase_bench(&[40, 96], 12);
        assert_eq!(rows.len(), 4, "two sizes x two schedulers");
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].scheduler, "tick");
            assert_eq!(pair[1].scheduler, "heap");
            assert_eq!(pair[0].n_bodies, pair[1].n_bodies);
            assert_eq!(pair[0].block_steps, 12);
            // Bitwise scheduler equivalence shows up here as identical work.
            assert_eq!(pair[0].particle_steps, pair[1].particle_steps);
            for r in pair {
                assert!(r.particle_steps >= r.block_steps);
                assert!(r.schedule_ns_per_block >= 0.0);
                assert!(r.wall_seconds > 0.0);
            }
        }
    }

    #[test]
    fn null_engine_reports_zero_forces_and_hardware_counters() {
        use grape6_core::particle::{ForceResult, IParticle};
        let sys = DiskBuilder::paper(8).with_seed(1).build();
        let mut e = NullForceEngine::default();
        e.load(&sys);
        let ips: Vec<IParticle> = (0..sys.len())
            .map(|i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] })
            .collect();
        let mut out = vec![ForceResult::default(); sys.len()];
        e.compute(0.0, &ips, &mut out);
        assert_eq!(e.interaction_count(), (sys.len() * sys.len()) as u64);
        assert!(out.iter().all(|r| r.acc == grape6_core::vec3::Vec3::zero() && r.nn.is_none()));
    }

    #[test]
    fn hybrid_bench_counters_are_exact_and_split_adds_up() {
        let a = run_hybrid_bench(192, 7, 0.5, 3.0, 2);
        assert_eq!(a.n_bodies, 194, "two protoplanets ride on the 192 planetesimals");
        assert_eq!(a.sweeps, 2);
        assert!(a.near_interactions > 0, "r_near = 3 must capture neighbours");
        assert!(a.far_interactions > 0, "θ = 0.5 must accept cells");
        assert_eq!(a.hybrid_interactions, a.near_interactions + a.far_interactions);
        assert_eq!(a.direct_interactions, a.sweeps * a.n_bodies * a.n_bodies);
        assert!(a.hybrid_wall_seconds > 0.0 && a.direct_wall_seconds > 0.0);
        assert!(a.hybrid_interactions_per_second > 0.0);
        // Re-run: the walk counters are deterministic to the bit; only the
        // wall clocks may move.
        let b = run_hybrid_bench(192, 7, 0.5, 3.0, 2);
        assert_eq!(a.near_interactions, b.near_interactions);
        assert_eq!(a.far_interactions, b.far_interactions);
        assert_eq!(a.direct_interactions, b.direct_interactions);
    }

    #[test]
    fn paper_check_brackets_gordon_bell_efficiency() {
        let c = PaperCheck::sc2002();
        assert!((c.peak_tflops - 63.4).abs() < 0.5);
        assert!(c.efficiency_block_512 < c.gordon_bell_efficiency);
        assert!(c.efficiency_block_16384 > c.gordon_bell_efficiency);
    }

    #[test]
    fn report_round_trips_through_json() {
        // A miniature spec keeps this fast; schema is identical.
        let spec =
            WorkloadSpec { id: "mini", n: 32, seed: 7, t_end: 0.25, engine: EngineKind::Grape6 };
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            git_sha: "deadbeef".to_string(),
            workloads: vec![run_workload(&spec)],
            thread_scaling: vec![run_thread_scaling(&spec)],
            kernel_microbench: run_kernel_microbench(64, 48, 1),
            host_phase: run_host_phase_bench(&[48], 16),
            service_latency: Some(
                crate::loadgen::run_load_gen(&{
                    crate::loadgen::LoadGenConfig {
                        jobs: 6,
                        tenants: 2,
                        clients_per_tenant: 1,
                        pool_specs: 3,
                        verify_fresh: 1,
                        n_min: 6,
                        n_max: 10,
                        t_end: 1.0,
                        ..crate::loadgen::LoadGenConfig::smoke()
                    }
                })
                .expect("tiny load pass holds its contracts"),
            ),
            hybrid: Some(run_hybrid_bench(48, 7, 0.5, 3.0, 1)),
            paper_check: PaperCheck::sc2002(),
        };
        assert!(report.workloads[0].modeled_tflops > 0.0);
        assert_eq!(report.workloads[0].lane_width, LaneWidth::default().label());
        assert_eq!(report.thread_scaling[0].entries.len(), SCALING_THREADS.len());
        assert!((report.thread_scaling[0].entries[0].speedup_force_vs_1 - 1.0).abs() < 1e-12);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, report.schema_version);
        assert_eq!(back.git_sha, "deadbeef");
        assert_eq!(
            back.workloads[0].telemetry.interactions,
            report.workloads[0].telemetry.interactions
        );
    }
}
