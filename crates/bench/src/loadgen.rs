//! Seeded closed-loop load generator for the `grape6-serve` job service.
//!
//! Drives hundreds of small jobs through an in-process TCP server with one
//! connection per client thread, measures submit-to-complete latency
//! client-side, and verifies the service's exactness contracts after the
//! run:
//!
//! * zero lost or wedged jobs — every submission settles `Completed`;
//! * every duplicate spec is a cache hit (exactly one non-cached primary
//!   per distinct spec) with **byte-identical** result snapshots;
//! * a sample of results matches fresh single-simulation reruns (via
//!   [`grape6_sim::ensemble::run_ensemble`]) byte for byte.
//!
//! The workload itself is fully seeded: the spec pool, the duplicate
//! pattern, and the job→client assignment derive from `seed`, so the work
//! counters in [`ServiceLatencyResult`] are deterministic and exact-gated
//! by `bench_compare`; only the latency/throughput fields (and the
//! preemption count and cache-hit/coalesce split, which depend on thread
//! interleaving) track the host.

use grape6_serve::job::{JobSpec, RunnerSim};
use grape6_serve::protocol::{hex_decode, JobState, Request, Response};
use grape6_serve::service::{ServeConfig, TenantQuota};
use grape6_serve::TcpServer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Load-generator configuration. Everything that shapes the *work* is
/// seeded and deterministic; only measured times vary run-to-run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenConfig {
    /// Total jobs submitted across all tenants.
    pub jobs: u64,
    /// Tenants (named `tenant-0` …).
    pub tenants: u64,
    /// Closed-loop client threads per tenant (each submits its share of
    /// jobs sequentially: submit, wait, record, next).
    pub clients_per_tenant: u64,
    /// Server worker threads.
    pub workers: u64,
    /// Server preemption quantum in block steps.
    pub slice_blocks: u64,
    /// Master seed for the spec pool and job sequence.
    pub seed: u64,
    /// Distinct specs in the pool; jobs draw from the pool with wraparound,
    /// so `jobs > pool_specs` guarantees duplicates.
    pub pool_specs: u64,
    /// Smallest planetesimal count in the pool.
    pub n_min: u64,
    /// Largest planetesimal count in the pool.
    pub n_max: u64,
    /// Integration span of every job.
    pub t_end: f64,
    /// Distinct specs re-run locally (fresh, uninterrupted) and compared
    /// byte-for-byte against the service's results.
    pub verify_fresh: u64,
}

impl LoadGenConfig {
    /// The standard configuration the shipped `BENCH_report.json` uses:
    /// 256 jobs across 4 tenants (the acceptance-scale run).
    pub fn standard() -> Self {
        Self {
            jobs: 256,
            tenants: 4,
            clients_per_tenant: 2,
            workers: 2,
            slice_blocks: 8,
            seed: 20020616,
            pool_specs: 96,
            n_min: 24,
            n_max: 48,
            // Heavy enough that a primary job costs ~10 ms of simulation
            // across several slices: latencies are compute-dominated (stable
            // under the slowdown gate, well above its 1 ms noise floor) and
            // the fair-share preemption path runs under real load, not just
            // in the unit tests.
            t_end: 8.0,
            verify_fresh: 4,
        }
    }

    /// The CI smoke configuration: 64 jobs, 2 tenants.
    pub fn smoke() -> Self {
        Self { jobs: 64, tenants: 2, pool_specs: 24, verify_fresh: 2, ..Self::standard() }
    }

    /// Total client threads.
    pub fn clients(&self) -> u64 {
        self.tenants * self.clients_per_tenant
    }
}

/// The `service_latency` section of `BENCH_report.json` (schema v6).
///
/// Work counters (`jobs` through `block_steps`) are deterministic for a
/// given config and exact-gated by `bench_compare`. The latency and
/// throughput fields track the host and are gated slowdown-only; the
/// preemption count and the cache-hit/coalesce split depend on thread
/// interleaving and are informational (their *sum*, `duplicate_hits`, is
/// deterministic and exact-gated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceLatencyResult {
    /// Jobs submitted.
    pub jobs: u64,
    /// Tenants.
    pub tenants: u64,
    /// Client threads.
    pub clients: u64,
    /// Server worker threads.
    pub workers: u64,
    /// Server preemption quantum (block steps).
    pub slice_blocks: u64,
    /// Distinct specs actually submitted.
    pub unique_specs: u64,
    /// Jobs whose spec was also submitted by an earlier job.
    pub duplicate_jobs: u64,
    /// Duplicates that settled as cache hits (must equal `duplicate_jobs`).
    pub duplicate_hits: u64,
    /// Jobs that settled `Completed` (must equal `jobs`).
    pub completed: u64,
    /// Jobs that settled `Failed` or `Cancelled` (must be 0).
    pub failed: u64,
    /// Submit-time exact-cache hits (interleaving-dependent split).
    pub cache_hits: u64,
    /// In-flight coalesced duplicates (interleaving-dependent split).
    pub coalesced: u64,
    /// `duplicate_hits / jobs`.
    pub cache_hit_rate: f64,
    /// Preemptions across all jobs (interleaving-dependent).
    pub preemptions: u64,
    /// Block steps executed across all tenants (each distinct spec runs
    /// exactly once to completion, so this is deterministic).
    pub block_steps: u64,
    /// Duplicate groups whose snapshots were verified byte-identical.
    pub dup_groups_verified: u64,
    /// Specs verified byte-identical against fresh local reruns.
    pub fresh_verified: u64,
    /// Median submit-to-complete latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile submit-to-complete latency, milliseconds.
    pub p99_ms: f64,
    /// Mean submit-to-complete latency, milliseconds.
    pub mean_ms: f64,
    /// Worst submit-to-complete latency, milliseconds.
    pub max_ms: f64,
    /// Wall seconds from first submit to last settle.
    pub wall_seconds: f64,
    /// `jobs / wall_seconds`.
    pub jobs_per_second: f64,
}

/// The seeded spec pool: pool entry `k` is a small paper disk whose size
/// and realization seed derive from the master seed. Entries are distinct
/// by canonical cache key — a colliding draw is redrawn — so pool index
/// and cache key identify the same duplicate groups and the
/// one-primary-per-group contract checks cannot trip on an unlucky
/// `(n, seed)` repeat.
fn spec_pool(cfg: &LoadGenConfig) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let span = cfg.n_max - cfg.n_min + 1;
    let mut keys = std::collections::BTreeSet::new();
    let mut pool = Vec::with_capacity(cfg.pool_specs as usize);
    let mut attempts = 0u64;
    while (pool.len() as u64) < cfg.pool_specs {
        attempts += 1;
        assert!(
            attempts < 1000 * cfg.pool_specs,
            "spec pool of {} cannot be filled with distinct specs from n in {}..={}",
            cfg.pool_specs,
            cfg.n_min,
            cfg.n_max,
        );
        let spec = JobSpec {
            n: cfg.n_min + rng.gen::<u64>() % span,
            seed: rng.gen::<u64>() % 1_000_000,
            t_end: cfg.t_end,
            dt_max: 0.0,
            eta: 0.0,
            engine: String::new(),
        };
        if keys.insert(spec.canonical_key().expect("pool specs are valid")) {
            pool.push(spec);
        }
    }
    pool
}

/// The seeded job sequence: job `j` draws pool index `j % pool` for the
/// first full pass (covering the pool) and a seeded random index after —
/// so every pool spec is submitted at least once and every job beyond the
/// pool is a guaranteed duplicate.
fn job_sequence(cfg: &LoadGenConfig) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6c6f6164);
    let pool = cfg.pool_specs.min(cfg.jobs).max(1);
    (0..cfg.jobs)
        .map(|j| if j < pool { j as usize } else { (rng.gen::<u64>() % pool) as usize })
        .collect()
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn open(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: BufWriter::new(stream) })
    }

    fn rpc(&mut self, req: &Request) -> Result<Response, String> {
        let line = serde_json::to_string(req).map_err(|e| e.to_string())?;
        writeln!(self.writer, "{line}").map_err(|e| e.to_string())?;
        self.writer.flush().map_err(|e| e.to_string())?;
        let mut resp = String::new();
        self.reader.read_line(&mut resp).map_err(|e| e.to_string())?;
        serde_json::from_str(&resp).map_err(|e| format!("bad response {resp:?}: {e}"))
    }
}

/// One client's record of one job.
struct JobRecord {
    pool_idx: usize,
    id: u64,
    state: JobState,
    submit_cached: bool,
    latency_ms: f64,
}

fn client_loop(
    addr: std::net::SocketAddr,
    tenant: String,
    assigned: Vec<(usize, JobSpec)>,
) -> Result<Vec<JobRecord>, String> {
    let mut conn = Conn::open(addr).map_err(|e| e.to_string())?;
    let mut records = Vec::with_capacity(assigned.len());
    for (pool_idx, spec) in assigned {
        let t0 = Instant::now();
        let (id, submit_cached) =
            match conn.rpc(&Request::Submit { tenant: tenant.clone(), job: spec })? {
                Response::Submitted { id, cached, .. } => (id, cached),
                other => return Err(format!("unexpected submit response {other:?}")),
            };
        let state = match conn.rpc(&Request::Wait { id })? {
            Response::Status { status } => status.state,
            other => return Err(format!("unexpected wait response {other:?}")),
        };
        let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
        records.push(JobRecord { pool_idx, id, state, submit_cached, latency_ms });
    }
    Ok(records)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Run the full load-generation pass against an in-process TCP server and
/// verify every exactness contract. Returns the report section; `Err` is a
/// contract violation (lost job, non-identical duplicate, …).
pub fn run_load_gen(cfg: &LoadGenConfig) -> Result<ServiceLatencyResult, String> {
    assert!(cfg.jobs >= 1 && cfg.tenants >= 1 && cfg.clients_per_tenant >= 1);
    let pool = spec_pool(cfg);
    let sequence = job_sequence(cfg);

    let server = TcpServer::start(
        ServeConfig {
            workers: cfg.workers,
            slice_blocks: cfg.slice_blocks,
            max_bodies: 4096,
            // Unlimited budget and a generous per-tenant concurrency cap:
            // the load run must be rejection-free so its counters are
            // deterministic (quota-failure paths have their own tests).
            quota: TenantQuota { max_running: cfg.clients_per_tenant.max(2), block_budget: 0 },
            preempt_always: false,
        },
        "127.0.0.1:0",
    )
    .map_err(|e| format!("starting server: {e}"))?;
    let addr = server.addr();

    // Deal jobs round-robin to clients; client c of tenant t gets every
    // (t * clients_per_tenant + c)-th job of the seeded sequence.
    let clients = cfg.clients() as usize;
    let mut assignments: Vec<Vec<(usize, JobSpec)>> = vec![Vec::new(); clients];
    for (j, &pool_idx) in sequence.iter().enumerate() {
        assignments[j % clients].push((pool_idx, pool[pool_idx].clone()));
    }

    let wall_start = Instant::now();
    let mut joins = Vec::with_capacity(clients);
    for (c, assigned) in assignments.into_iter().enumerate() {
        let tenant = format!("tenant-{}", c as u64 / cfg.clients_per_tenant);
        joins.push(std::thread::spawn(move || client_loop(addr, tenant, assigned)));
    }
    let mut records: Vec<JobRecord> = Vec::with_capacity(cfg.jobs as usize);
    for j in joins {
        records.extend(j.join().map_err(|_| "client thread panicked".to_string())??);
    }
    let wall_seconds = wall_start.elapsed().as_secs_f64();

    // ---- contract checks ---------------------------------------------------
    if records.len() as u64 != cfg.jobs {
        return Err(format!("lost jobs: {} of {} recorded", records.len(), cfg.jobs));
    }
    let completed = records.iter().filter(|r| r.state == JobState::Completed).count() as u64;
    let failed = cfg.jobs - completed;
    if failed > 0 {
        return Err(format!("{failed} job(s) did not complete"));
    }

    // Group jobs by pool spec: exactly one primary (non-cached submit) per
    // group, every duplicate a cache hit, all snapshots byte-identical.
    let mut verify = Conn::open(addr).map_err(|e| e.to_string())?;
    let used: std::collections::BTreeSet<usize> = records.iter().map(|r| r.pool_idx).collect();
    let unique_specs = used.len() as u64;
    let duplicate_jobs = cfg.jobs - unique_specs;
    let mut duplicate_hits = 0u64;
    let mut dup_groups_verified = 0u64;
    let mut group_snapshot: std::collections::BTreeMap<usize, Vec<u8>> =
        std::collections::BTreeMap::new();
    for r in &records {
        let snapshot = match verify.rpc(&Request::Result { id: r.id })? {
            Response::ResultData { snapshot_hex, .. } => hex_decode(&snapshot_hex)?,
            other => return Err(format!("unexpected result response {other:?}")),
        };
        match group_snapshot.get(&r.pool_idx) {
            None => {
                group_snapshot.insert(r.pool_idx, snapshot);
            }
            Some(first) => {
                if *first != snapshot {
                    return Err(format!(
                        "duplicate of pool spec {} returned different bytes",
                        r.pool_idx
                    ));
                }
                dup_groups_verified += 1;
            }
        }
        if r.submit_cached {
            duplicate_hits += 1;
        }
    }
    if duplicate_hits != duplicate_jobs {
        return Err(format!(
            "every duplicate must be a cache hit: {duplicate_hits} hits, \
             {duplicate_jobs} duplicates"
        ));
    }
    let primaries = records.iter().filter(|r| !r.submit_cached).count() as u64;
    if primaries != unique_specs {
        return Err(format!("{primaries} primaries for {unique_specs} distinct specs"));
    }

    // Fresh-rerun verification: recompute a sample of pool specs locally,
    // uninterrupted, through the ensemble machinery, and compare bytes.
    let sample: Vec<u64> = used.iter().take(cfg.verify_fresh as usize).map(|&i| i as u64).collect();
    let members = grape6_sim::ensemble::run_ensemble(&sample, 2, |pool_idx| {
        let spec = &pool[pool_idx as usize];
        let mut sim = RunnerSim::fresh(spec).expect("pool specs are valid");
        sim.run_slice(spec.t_end, u64::MAX);
        sim.result().snapshot
    });
    for m in &members {
        let served = &group_snapshot[&(m.seed as usize)];
        if served != &m.value[..] {
            return Err(format!("service result for pool spec {} != fresh rerun", m.seed));
        }
    }
    let fresh_verified = members.len() as u64;

    // Telemetry: the deterministic totals plus the informational split.
    let rows = match verify.rpc(&Request::Tenants)? {
        Response::Tenants { tenants } => tenants,
        other => return Err(format!("unexpected tenants response {other:?}")),
    };
    if rows.len() as u64 != cfg.tenants {
        return Err(format!("{} tenant rows for {} tenants", rows.len(), cfg.tenants));
    }
    let cache_hits: u64 = rows.iter().map(|t| t.cache_hits).sum();
    let coalesced: u64 = rows.iter().map(|t| t.coalesced).sum();
    let preemptions: u64 = rows.iter().map(|t| t.preemptions).sum();
    let block_steps: u64 = rows.iter().map(|t| t.block_steps).sum();
    if cache_hits + coalesced != duplicate_hits {
        return Err(format!(
            "telemetry split {cache_hits}+{coalesced} != {duplicate_hits} duplicate hits"
        ));
    }

    let _ = verify.rpc(&Request::Shutdown);
    server.stop();

    let mut latencies: Vec<f64> = records.iter().map(|r| r.latency_ms).collect();
    latencies.sort_by(f64::total_cmp);
    let mean_ms = latencies.iter().sum::<f64>() / latencies.len() as f64;
    Ok(ServiceLatencyResult {
        jobs: cfg.jobs,
        tenants: cfg.tenants,
        clients: cfg.clients(),
        workers: cfg.workers,
        slice_blocks: cfg.slice_blocks,
        unique_specs,
        duplicate_jobs,
        duplicate_hits,
        completed,
        failed,
        cache_hits,
        coalesced,
        cache_hit_rate: duplicate_hits as f64 / cfg.jobs as f64,
        preemptions,
        block_steps,
        dup_groups_verified,
        fresh_verified,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        mean_ms,
        max_ms: latencies.last().copied().unwrap_or(0.0),
        wall_seconds,
        jobs_per_second: cfg.jobs as f64 / wall_seconds,
    })
}

/// The standard (256-job / 4-tenant) section the shipped report uses.
///
/// Min-of-reps on the tail: the pass runs twice and the rep with the lower
/// p99 is kept. Closed-loop tail latency on an oversubscribed host is
/// queueing-dominated and spiky; the minimum absorbs one-off scheduler
/// stalls (same reasoning as the host-phase microbench reps) while the
/// work counters are identical across reps by determinism — asserted here.
pub fn standard_service_latency() -> ServiceLatencyResult {
    let cfg = LoadGenConfig::standard();
    let a = run_load_gen(&cfg).expect("service latency contracts hold");
    let b = run_load_gen(&cfg).expect("service latency contracts hold (rep 2)");
    assert_eq!(
        (a.unique_specs, a.duplicate_hits, a.completed, a.block_steps),
        (b.unique_specs, b.duplicate_hits, b.completed, b.block_steps),
        "work counters must be rep-identical"
    );
    if b.p99_ms < a.p99_ms {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LoadGenConfig {
        LoadGenConfig {
            jobs: 12,
            tenants: 2,
            clients_per_tenant: 1,
            pool_specs: 5,
            verify_fresh: 2,
            n_min: 6,
            n_max: 10,
            t_end: 1.0,
            ..LoadGenConfig::smoke()
        }
    }

    #[test]
    fn spec_pool_and_sequence_are_seeded_and_duplicate_bearing() {
        let cfg = tiny();
        assert_eq!(spec_pool(&cfg), spec_pool(&cfg));
        // Pool entries are distinct by cache key (collisions are redrawn),
        // so per-pool-index duplicate accounting equals per-key accounting
        // — for the test config and the shipped standard/smoke configs.
        for c in [&cfg, &LoadGenConfig::standard(), &LoadGenConfig::smoke()] {
            let keys: std::collections::BTreeSet<String> =
                spec_pool(c).iter().map(|s| s.canonical_key().unwrap()).collect();
            assert_eq!(keys.len() as u64, c.pool_specs);
        }
        assert_eq!(job_sequence(&cfg), job_sequence(&cfg));
        let seq = job_sequence(&cfg);
        assert_eq!(seq.len() as u64, cfg.jobs);
        // The first pool-sized prefix covers every spec; the rest duplicate.
        let first: std::collections::BTreeSet<usize> =
            seq[..cfg.pool_specs as usize].iter().copied().collect();
        assert_eq!(first.len() as u64, cfg.pool_specs);
        assert!(seq.iter().all(|&i| (i as u64) < cfg.pool_specs));
        let other = LoadGenConfig { seed: 1, ..cfg };
        assert_ne!(spec_pool(&cfg), spec_pool(&other));
    }

    #[test]
    fn tiny_load_run_passes_every_contract() {
        let out = run_load_gen(&tiny()).expect("contracts hold");
        assert_eq!(out.jobs, 12);
        assert_eq!(out.completed, 12);
        assert_eq!(out.failed, 0);
        assert_eq!(out.unique_specs, 5);
        assert_eq!(out.duplicate_jobs, 7);
        assert_eq!(out.duplicate_hits, 7);
        assert_eq!(out.cache_hits + out.coalesced, 7);
        assert!((out.cache_hit_rate - 7.0 / 12.0).abs() < 1e-12);
        assert_eq!(out.fresh_verified, 2);
        assert!(out.dup_groups_verified >= 1);
        assert!(out.block_steps > 0);
        assert!(out.p50_ms > 0.0 && out.p99_ms >= out.p50_ms && out.max_ms >= out.p99_ms);
        assert!(out.jobs_per_second > 0.0);
    }

    #[test]
    fn work_counters_are_rerun_identical() {
        let a = run_load_gen(&tiny()).unwrap();
        let b = run_load_gen(&tiny()).unwrap();
        // Deterministic work; only clocks (and the hit/coalesce split) vary.
        assert_eq!(a.unique_specs, b.unique_specs);
        assert_eq!(a.duplicate_hits, b.duplicate_hits);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.block_steps, b.block_steps);
    }

    #[test]
    fn percentile_picks_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
