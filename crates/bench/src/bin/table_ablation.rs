//! Hardware-design ablations: what the GRAPE-6 design choices buy.
//!
//! Four sweeps:
//! 1. pipeline mantissa width (the 24-bit word vs narrower/wider) → force
//!    error and energy drift;
//! 2. fixed-point position width → close-encounter force error (why
//!    positions are 64-bit fixed point);
//! 3. virtual-multipipeline depth → cycles per interaction (why VMP = 8);
//! 4. accumulator type → bitwise reproducibility across summation orders
//!    (why force accumulation is fixed point).

use grape6_bench::{arg_or, fmt, print_header, print_row};
use grape6_core::energy::synchronized_total_energy;
use grape6_core::engine::ForceEngine;
use grape6_core::force::DirectEngine;
use grape6_core::integrator::{BlockHermite, HermiteConfig};
use grape6_core::particle::{ForceResult, IParticle};
use grape6_core::vec3::Vec3;
use grape6_disk::{DiskBuilder, PowerLawMass};
use grape6_hw::{
    ChipGeometry, FixedPointFormat, Grape6Config, Grape6Engine, Precision, TimingModel,
};

fn accuracy_disk(n: usize) -> grape6_core::particle::ParticleSystem {
    let mut b = DiskBuilder::paper(n);
    b.total_mass = PowerLawMass::paper().mean() * n as f64;
    b.build()
}

fn main() {
    let t_end: f64 = arg_or("--t", 32.0);
    println!("ablations of the GRAPE-6 design choices\n");

    // --- 1. mantissa width ---
    println!("1. pipeline mantissa width (N = 256, T = {t_end}, eta = 0.02):");
    print_header(&["mantissa bits", "worst force err", "|dE/E|", "block steps"], 16);
    let sys0 = accuracy_disk(256);
    let ips: Vec<IParticle> = (0..sys0.len())
        .map(|i| IParticle { index: i, pos: sys0.pos[i], vel: sys0.vel[i] })
        .collect();
    let mut exact = vec![ForceResult::default(); ips.len()];
    let mut cpu = DirectEngine::new();
    cpu.load(&sys0);
    cpu.compute(0.0, &ips, &mut exact);
    for bits in [16u32, 20, 24, 32, 53] {
        let precision =
            if bits >= 53 { Precision::Exact } else { Precision::Grape6 { mantissa_bits: bits } };
        let config = Grape6Config { precision, ..Grape6Config::sc2002() };
        let mut hw = Grape6Engine::new(config);
        hw.load(&sys0);
        let mut out = vec![ForceResult::default(); ips.len()];
        hw.compute(0.0, &ips, &mut out);
        let mut worst: f64 = 0.0;
        for k in 0..ips.len() {
            worst = worst.max((out[k].acc - exact[k].acc).norm() / exact[k].acc.norm());
        }
        // Short integration for the drift column.
        let mut sys = accuracy_disk(256);
        let mut engine = Grape6Engine::new(config);
        let mut integ =
            BlockHermite::new(HermiteConfig { dt_max: 8.0, ..HermiteConfig::default() });
        integ.initialize(&mut sys, &mut engine);
        let e0 = synchronized_total_energy(&sys, 0.0);
        integ.evolve(&mut sys, &mut engine, t_end);
        let drift = ((synchronized_total_energy(&sys, sys.t) - e0) / e0).abs();
        print_row(
            &[bits.to_string(), fmt(worst), fmt(drift), integ.stats().block_steps.to_string()],
            16,
        );
    }

    // --- 2. fixed-point position width ---
    println!("\n2. position format: force between bodies 1e-6 AU apart at 20 AU from the Sun:");
    print_header(&["frac bits", "resolution (AU)", "rel force err"], 18);
    let sep = 1e-6;
    let m = 1e-9;
    let exact_force = m / (sep * sep);
    for frac in [30u32, 40, 48, 54] {
        let f = FixedPointFormat::new(frac);
        let qa = f.encode_vec(Vec3::new(20.0, 0.0, 0.0));
        let qb = f.encode_vec(Vec3::new(20.0 + sep, 0.0, 0.0));
        let (a, _, _) = grape6_hw::pipeline::pipeline_interaction(
            &f,
            Precision::grape6(),
            qa,
            qb,
            Vec3::zero(),
            Vec3::zero(),
            m,
            0.0,
        );
        let err = (a.x - exact_force).abs() / exact_force;
        print_row(&[frac.to_string(), fmt(f.resolution()), fmt(err)], 18);
    }
    println!("(f32 positions would have a 1.2e-7 AU grid at r = 20 — the pair above");
    println!(" would not even be distinguishable; 64-bit fixed point resolves it exactly)");

    // --- 3. VMP depth ---
    println!("\n3. virtual-multipipeline depth (full 48-i load, 16384 j):");
    print_header(&["vmp", "cycles/interaction", "vs ideal"], 18);
    for vmp in [1usize, 2, 4, 8] {
        let g = ChipGeometry { vmp, ..ChipGeometry::default() };
        let n_i = g.i_parallel().max(48);
        let c = g.compute_cycles(n_i, 16384) as f64 / (n_i * 16384) as f64;
        print_row(&[vmp.to_string(), fmt(c), fmt(c / (1.0 / 6.0))], 18);
    }

    // --- 4. accumulation determinism ---
    println!("\n4. reduction-order sensitivity of 10_000 pairwise terms:");
    let terms: Vec<f64> = (0..10_000)
        .map(|k| {
            let x = (k as f64 * 0.7368) % 1.0 - 0.5;
            x * 1e-6
        })
        .collect();
    let mut fsum_f = 0.0f64;
    for &x in &terms {
        fsum_f += x;
    }
    let mut rsum_f = 0.0f64;
    for &x in terms.iter().rev() {
        rsum_f += x;
    }
    let mut fsum_q = grape6_hw::format::FixedAccumulator::new();
    for &x in &terms {
        fsum_q.add(x);
    }
    let mut rsum_q = grape6_hw::format::FixedAccumulator::new();
    for &x in terms.iter().rev() {
        rsum_q.add(x);
    }
    println!("  f64 float sum:   forward - reverse = {:e}", fsum_f - rsum_f);
    println!(
        "  fixed-point sum: forward - reverse = {:e} (bit-identical: {})",
        fsum_q.to_f64() - rsum_q.to_f64(),
        fsum_q == rsum_q
    );
    println!("  (the fixed-point accumulators make the 2048-chip reduction tree");
    println!("   order-free — `tests/routed_vs_flat.rs` proves it end-to-end)");

    // Context: what each choice costs at the machine level.
    let model = TimingModel::sc2002();
    println!(
        "\nmachine context: one 2048-particle block on N = 1.8e6 costs {:.2} ms ({:.1} Tflops)",
        model.block_step(2048, 1_800_000).total() * 1e3,
        57.0 * 2048.0 * 1.8e6 / model.block_step(2048, 1_800_000).total() / 1e12
    );
}
