//! `bench_report` — run the fixed seeded benchmark workloads and emit a
//! schema-stable `BENCH_report.json` (see `grape6_bench::report`).
//!
//! Usage: `bench_report [--out BENCH_report.json]`
//!
//! Counters in the report are exactly reproducible run-to-run; wall-clock
//! fields track the host this runs on.

use grape6_bench::report::{build_report, detect_git_sha};
use grape6_bench::{arg_or, fmt, print_header, print_row};

fn main() -> std::process::ExitCode {
    let out: String = arg_or("--out", "BENCH_report.json".to_string());
    let report = build_report(detect_git_sha());

    print_header(&["workload", "bodies", "blocks", "inter/s real", "Tflops model"], 14);
    for w in &report.workloads {
        print_row(
            &[
                w.id.clone(),
                w.n_bodies.to_string(),
                w.telemetry.block_steps.to_string(),
                fmt(w.telemetry.interactions_per_second_real),
                fmt(w.modeled_tflops),
            ],
            14,
        );
    }
    println!("\nthread scaling (force-phase wall seconds):");
    print_header(&["workload", "threads", "force s", "total s", "speedup"], 14);
    for ts in &report.thread_scaling {
        for e in &ts.entries {
            print_row(
                &[
                    ts.id.clone(),
                    e.threads.to_string(),
                    fmt(e.force_seconds),
                    fmt(e.total_host_seconds),
                    format!("{:.2}x", e.speedup_force_vs_1),
                ],
                14,
            );
        }
    }

    println!("\nkernel microbench (AoSoA lane widths, full-block j-sweep):");
    print_header(&["kernel", "lanes", "bodies", "inter/s real", "vs scalar"], 14);
    for k in &report.kernel_microbench {
        print_row(
            &[
                k.kernel.clone(),
                k.lane_width.clone(),
                k.n_bodies.to_string(),
                fmt(k.interactions_per_second_real),
                format!("{:.2}x", k.speedup_vs_scalar),
            ],
            14,
        );
    }

    println!("\nhost phase (zero-force disks, ns per block step):");
    print_header(&["sched", "bodies", "schedule", "predict", "jupdate", "wall s"], 12);
    for h in &report.host_phase {
        print_row(
            &[
                h.scheduler.clone(),
                h.n_bodies.to_string(),
                fmt(h.schedule_ns_per_block),
                fmt(h.predict_ns_per_block),
                fmt(h.jupdate_ns_per_block),
                fmt(h.wall_seconds),
            ],
            12,
        );
    }

    // Host-scaling check (ROADMAP item 2): the tick scheduler at the
    // largest N against the heap baseline at the old N = 514 cap —
    // per-block Schedule+Predict host time must grow slower than N does.
    let tick_big =
        report.host_phase.iter().filter(|h| h.scheduler == "tick").max_by_key(|h| h.n_bodies);
    let heap_small =
        report.host_phase.iter().filter(|h| h.scheduler == "heap").min_by_key(|h| h.n_bodies);
    if let (Some(t), Some(h)) = (tick_big, heap_small) {
        if h.n_bodies < t.n_bodies {
            let grow = (t.schedule_ns_per_block + t.predict_ns_per_block)
                / (h.schedule_ns_per_block + h.predict_ns_per_block);
            let nfac = t.n_bodies as f64 / h.n_bodies as f64;
            println!(
                "host scaling: schedule+predict {:.0}x per block step while N grew {:.0}x vs \
                 the heap N={} baseline ({})",
                grow,
                nfac,
                h.n_bodies,
                if grow < nfac { "sublinear" } else { "SUPERLINEAR" }
            );
        }
    }

    let c = &report.paper_check;
    println!(
        "\npaper check: peak {:.1} Tflops, sustained {:.1}–{:.1} Tflops \
         (efficiency {:.3}–{:.3}, paper 0.465)",
        c.peak_tflops,
        c.sustained_tflops_block_512,
        c.sustained_tflops_block_16384,
        c.efficiency_block_512,
        c.efficiency_block_16384
    );

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: writing {out}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    println!("report -> {out} (git {})", report.git_sha);
    std::process::ExitCode::SUCCESS
}
