//! Experiment E1 — the headline result (paper §6): sustained Tflops of the
//! 2048-chip GRAPE-6 on the Uranus-Neptune disk, as a function of N up to
//! the production 1.8 million planetesimals.
//!
//! Method: integrate a scaled disk (default N_ref = 8192) with the real
//! block-timestep code, recording the *fraction of particles active per
//! block step* — an intensive quantity set by the timestep distribution, not
//! by N. For each target N the recorded block-fraction sequence is rescaled
//! (n_act = fraction × N) and every block is charged to the full-machine
//! timing model. The paper's comparison row: 29.5 Tflops sustained, 63.4
//! peak (46.5 %).

use grape6_bench::{arg_or, experiment_config, fmt, paper_disk, print_header, print_row};
use grape6_core::force::DirectEngine;
use grape6_hw::perf::PerfReport;
use grape6_hw::timing::{StepBreakdown, TimingModel};
use grape6_sim::Simulation;

fn main() {
    let n_ref: usize = arg_or("--n-ref", 8192);
    let warmup: f64 = arg_or("--warmup", 16.0);
    let t_run: f64 = arg_or("--t", 48.0);
    println!("E1: headline performance (paper §6)");
    println!("reference integration: N = {n_ref}, warmup {warmup} + window {t_run} units\n");

    // 1. Measure the block-size sequence on a real integration, after a
    // warmup that lets the startup-synchronized blocks decorrelate.
    let sys = paper_disk(n_ref, 42);
    let mut sim = Simulation::new(sys, experiment_config(), DirectEngine::new());
    sim.run_to(warmup, 0.0);
    let mut fractions: Vec<f64> = Vec::new();
    while sim.integrator.next_time().is_some_and(|t| t <= warmup + t_run) {
        let info = sim.step();
        fractions.push(info.n_active as f64 / (n_ref + 2) as f64);
    }
    let mean_frac = fractions.iter().sum::<f64>() / fractions.len() as f64;
    println!(
        "measured {} block steps, mean active fraction {:.3e} (mean block {:.1} particles)\n",
        fractions.len(),
        mean_frac,
        mean_frac * (n_ref + 2) as f64
    );

    // 2. Replay the block sequence through the machine model at each N.
    let model = TimingModel::sc2002();
    let peak = model.geometry.peak_flops();
    print_header(&["N", "mean block", "ms/step", "pipe %", "comm %", "Tflops", "eff %"], 12);
    let ns = [10_000usize, 50_000, 100_000, 450_000, 900_000, 1_800_000];
    for &n in &ns {
        let mut total = StepBreakdown::default();
        let mut interactions = 0u64;
        let mut blocks = 0.0;
        for &f in &fractions {
            let n_act = ((f * n as f64).round() as usize).max(1);
            total.accumulate(&model.block_step(n_act, n));
            interactions += (n_act as u64) * (n as u64);
            blocks += n_act as f64;
        }
        let report = PerfReport::new(interactions, total.total(), peak);
        let comm = total.send_i + total.receive + total.jshare_intra + total.jshare_inter;
        print_row(
            &[
                n.to_string(),
                fmt(blocks / fractions.len() as f64),
                fmt(total.total() / fractions.len() as f64 * 1e3),
                fmt(100.0 * total.pipeline / total.total()),
                fmt(100.0 * comm / total.total()),
                fmt(report.tflops()),
                fmt(100.0 * report.efficiency),
            ],
            12,
        );
    }
    // The overlapped (firsthalf/lasthalf) variant at the production N.
    let fast = TimingModel::sc2002_overlapped();
    let mut total = StepBreakdown::default();
    let mut interactions = 0u64;
    for &f in &fractions {
        let n_act = ((f * 1_800_000.0).round() as usize).max(1);
        total.accumulate(&fast.block_step(n_act, 1_800_000));
        interactions += (n_act as u64) * 1_800_000;
    }
    let fast_report = PerfReport::new(interactions, total.total(), peak);
    println!();
    println!(
        "with g6calc firsthalf/lasthalf overlap at N = 1.8e6:  {} Tflops ({} % of peak)",
        fmt(fast_report.tflops()),
        fmt(100.0 * fast_report.efficiency)
    );
    println!("paper (N = 1.8e6):                                      29.5 Tflops,  46.5 % of 63.4 Tflops peak");
    println!("model peak: {} Tflops", fmt(peak / 1e12));
}
