//! Experiment E9 — integration accuracy (implied throughout §3/§6): the
//! Hermite + block-timestep scheme holds energy at the level its accuracy
//! parameter promises, and GRAPE-6's reduced-precision arithmetic does not
//! degrade it.
//!
//! Sweeps η for three engines: CPU double precision, the GRAPE-6 simulator
//! in exact mode (fixed-point positions only), and the GRAPE-6 simulator
//! with hardware arithmetic (24-bit pipeline words). The disk uses
//! *production* per-particle masses (no mass rescaling), so the dynamics is
//! gentle enough that all engines follow the same trajectory and the
//! arithmetic differences are isolated from N-body chaos. Energies are
//! measured on states synchronized to a common time.

use grape6_bench::{arg_or, fmt, print_header, print_row};
use grape6_core::energy::synchronized_total_energy;
use grape6_core::engine::ForceEngine;
use grape6_core::force::DirectEngine;
use grape6_core::integrator::{BlockHermite, HermiteConfig};
use grape6_core::particle::ParticleSystem;
use grape6_disk::{DiskBuilder, PowerLawMass};
use grape6_hw::{Grape6Config, Grape6Engine};

fn accuracy_disk(n: usize) -> ParticleSystem {
    let mut b = DiskBuilder::paper(n);
    // Production-mass planetesimals: each body keeps its sampled ~1e-10
    // M_sun mass instead of inheriting the full ring mass.
    b.total_mass = PowerLawMass::paper().mean() * n as f64;
    b.build()
}

fn run_with<E: ForceEngine>(mut engine: E, eta: f64, t_end: f64) -> (f64, u64) {
    let mut sys = accuracy_disk(256);
    let config = HermiteConfig {
        eta,
        eta_start: eta / 8.0,
        dt_max: 2.0f64.powi(3),
        dt_min: 2.0f64.powi(-40),
    };
    let mut integ = BlockHermite::new(config);
    integ.initialize(&mut sys, &mut engine);
    let e0 = synchronized_total_energy(&sys, 0.0);
    integ.evolve(&mut sys, &mut engine, t_end);
    let e1 = synchronized_total_energy(&sys, sys.t);
    (((e1 - e0) / e0).abs(), integ.stats().block_steps)
}

fn main() {
    let t_end: f64 = arg_or("--t", 64.0);
    println!("E9: energy conservation vs accuracy parameter (N = 256, T = {t_end})\n");
    print_header(&["eta", "engine", "|dE/E|", "block steps"], 16);
    for &eta in &[0.08, 0.04, 0.02, 0.01] {
        let cases: [(&str, (f64, u64)); 3] = [
            ("cpu-f64", run_with(DirectEngine::new(), eta, t_end)),
            ("grape6-exact", run_with(Grape6Engine::new(Grape6Config::sc2002_exact()), eta, t_end)),
            ("grape6-hw", run_with(Grape6Engine::new(Grape6Config::sc2002()), eta, t_end)),
        ];
        for (kind, (err, steps)) in cases {
            print_row(&[fmt(eta), kind.to_string(), fmt(err), steps.to_string()], 16);
        }
        println!();
    }
    println!("expected shape: error falls steeply with eta (4th-order scheme, dt ∝ √eta,");
    println!("so dE ∝ eta²); the hardware-arithmetic rows track the f64 rows until the");
    println!("24-bit pipeline floor (~1e-7 relative per force) becomes visible.");
}
