//! `bench_compare` — the bench-regression gate: compare a freshly produced
//! `BENCH_report.json` against the committed baseline and fail loudly on
//! any regression.
//!
//! Usage: `bench_compare --baseline BENCH_report.json --fresh fresh.json
//!         [--tolerance 0.15]`
//!
//! Two classes of check, matched per workload id:
//!
//! * **Counters** (interactions, block/particle steps, wire bytes, modeled
//!   seconds, fault statistics) are deterministic — fixed seeds,
//!   bit-reproducible engines — so ANY difference from the baseline is a
//!   failure, in either direction. A counter that moved means the physics,
//!   the wire accounting, or the fault model changed.
//! * **Wall clock** (`total_host_seconds`) is machine-dependent: only a
//!   slowdown beyond `--tolerance` (default 15 %) fails; speedups pass.
//!
//! Exit status is nonzero when any check fails, so CI can gate on it.

use grape6_bench::arg_or;
use grape6_bench::report::{BenchReport, HostPhaseRow, KernelRate, WorkloadResult};
use std::process::ExitCode;

struct Gate {
    tolerance: f64,
    failures: u64,
}

impl Gate {
    fn counter(&mut self, workload: &str, name: &str, baseline: u64, fresh: u64) {
        let ok = baseline == fresh;
        if !ok {
            self.failures += 1;
        }
        println!(
            "  {:<18} {:<16} {:>14} {:>14}  {}",
            workload,
            name,
            baseline,
            fresh,
            if ok { "ok" } else { "FAIL (counters must match exactly)" }
        );
    }

    fn exact_f64(&mut self, workload: &str, name: &str, baseline: f64, fresh: f64) {
        let ok = baseline.to_bits() == fresh.to_bits();
        if !ok {
            self.failures += 1;
        }
        println!(
            "  {:<18} {:<16} {:>14.6e} {:>14.6e}  {}",
            workload,
            name,
            baseline,
            fresh,
            if ok { "ok" } else { "FAIL (modeled time must match exactly)" }
        );
    }

    fn kernel_rate(&mut self, label: &str, baseline: f64, fresh: f64) {
        // Rates: higher is better. Only a slowdown beyond the tolerance
        // fails; a faster fresh kernel always passes.
        let ok = fresh >= baseline * (1.0 - self.tolerance);
        if !ok {
            self.failures += 1;
        }
        println!(
            "  {:<18} {:<16} {:>14.4e} {:>14.4e}  {}",
            label,
            "inter/s real",
            baseline,
            fresh,
            if ok {
                format!("ok ({:+.1} %)", (fresh / baseline - 1.0) * 100.0)
            } else {
                format!(
                    "FAIL ({:.1} % slower > {:.0} % budget)",
                    (1.0 - fresh / baseline) * 100.0,
                    self.tolerance * 100.0
                )
            }
        );
    }

    fn phase_ns(&mut self, label: &str, name: &str, baseline: f64, fresh: f64) {
        // Per-block-step phase times: lower is better. Sub-microsecond
        // baselines are timer noise; otherwise only a slowdown beyond the
        // host-phase budget fails. That budget is twice the wall-clock
        // tolerance: phase slices are single-core microbenches where
        // scheduler steal shows up undiluted (min-of-reps absorbs spikes,
        // not sustained contention), so the same 15 % that holds for
        // multi-second aggregate workloads is flaky here.
        if baseline < 1_000.0 {
            println!("  {label:<18} {name:<16} (baseline < 1 µs/block, skipped)");
            return;
        }
        let ratio = fresh / baseline;
        let ok = ratio <= 1.0 + 2.0 * self.tolerance;
        if !ok {
            self.failures += 1;
        }
        println!(
            "  {:<18} {:<16} {:>14.1} {:>14.1}  {}",
            label,
            name,
            baseline,
            fresh,
            if ok {
                format!("ok ({:+.1} %)", (ratio - 1.0) * 100.0)
            } else {
                format!(
                    "FAIL (+{:.1} % > {:.0} % budget)",
                    (ratio - 1.0) * 100.0,
                    2.0 * self.tolerance * 100.0
                )
            }
        );
    }

    fn latency_ms(&mut self, label: &str, name: &str, baseline: f64, fresh: f64) {
        // Service latency / wall readings: lower is better, and the budget
        // is four times the wall-clock tolerance. Closed-loop percentiles
        // are queueing-dominated — on an oversubscribed host the tail moves
        // ±35 % between back-to-back identical runs (measured), so the
        // 15 %-class budgets of the compute benches would fail on noise; a
        // real p99 regression (a lost wakeup, a serialized scheduler) shows
        // up as 2x-plus and still trips this gate. Sub-millisecond
        // baselines are pure syscall jitter and are skipped outright.
        if baseline < 1.0 {
            println!("  {label:<18} {name:<16} (baseline < 1 ms, skipped)");
            return;
        }
        let ratio = fresh / baseline;
        let ok = ratio <= 1.0 + 4.0 * self.tolerance;
        if !ok {
            self.failures += 1;
        }
        println!(
            "  {:<18} {:<16} {:>14.2} {:>14.2}  {}",
            label,
            name,
            baseline,
            fresh,
            if ok {
                format!("ok ({:+.1} %)", (ratio - 1.0) * 100.0)
            } else {
                format!(
                    "FAIL (+{:.1} % > {:.0} % budget)",
                    (ratio - 1.0) * 100.0,
                    4.0 * self.tolerance * 100.0
                )
            }
        );
    }

    fn wall_clock(&mut self, workload: &str, baseline: f64, fresh: f64) {
        // Short baselines are all scheduling noise; skip the ratio test.
        if baseline < 1e-2 {
            println!("  {workload:<18} {:<16} (baseline < 10 ms, skipped)", "wall_seconds");
            return;
        }
        let ratio = fresh / baseline;
        let ok = ratio <= 1.0 + self.tolerance;
        if !ok {
            self.failures += 1;
        }
        println!(
            "  {:<18} {:<16} {:>14.4} {:>14.4}  {}",
            workload,
            "wall_seconds",
            baseline,
            fresh,
            if ok {
                format!("ok ({:+.1} %)", (ratio - 1.0) * 100.0)
            } else {
                format!(
                    "FAIL (+{:.1} % > {:.0} % budget)",
                    (ratio - 1.0) * 100.0,
                    self.tolerance * 100.0
                )
            }
        );
    }
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn compare_workload(gate: &mut Gate, base: &WorkloadResult, fresh: &WorkloadResult) {
    let (b, f) = (&base.telemetry, &fresh.telemetry);
    gate.counter(&base.id, "interactions", b.interactions, f.interactions);
    gate.counter(&base.id, "block_steps", b.block_steps, f.block_steps);
    gate.counter(&base.id, "particle_steps", b.particle_steps, f.particle_steps);
    gate.counter(&base.id, "wire_bytes", b.wire_bytes, f.wire_bytes);
    gate.counter(&base.id, "faults_injected", b.faults.injected, f.faults.injected);
    gate.counter(&base.id, "dmr_mismatches", b.faults.dmr_mismatches, f.faults.dmr_mismatches);
    gate.counter(&base.id, "checksum_errors", b.faults.checksum_errors, f.faults.checksum_errors);
    gate.counter(&base.id, "retries", b.faults.retries, f.faults.retries);
    gate.counter(&base.id, "scrubs", b.faults.scrubs, f.faults.scrubs);
    gate.counter(&base.id, "words_scrubbed", b.faults.words_scrubbed, f.faults.words_scrubbed);
    gate.counter(&base.id, "boards_failed", b.faults.boards_failed, f.faults.boards_failed);
    gate.exact_f64(&base.id, "modeled_seconds", b.modeled_seconds, f.modeled_seconds);
    gate.wall_clock(&base.id, b.total_host_seconds, f.total_host_seconds);
}

fn main() -> ExitCode {
    let baseline_path: String = arg_or("--baseline", "BENCH_report.json".to_string());
    let fresh_path: String = arg_or("--fresh", "fresh_report.json".to_string());
    let tolerance: f64 = arg_or("--tolerance", 0.15);

    let (baseline, fresh) = match (load(&baseline_path), load(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for r in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("error: {r}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut gate = Gate { tolerance, failures: 0 };
    println!(
        "bench_compare: baseline {} (git {}) vs fresh {} (git {})",
        baseline_path, baseline.git_sha, fresh_path, fresh.git_sha
    );
    println!(
        "bench_compare: schema v{} (baseline) vs v{} (fresh)",
        baseline.schema_version, fresh.schema_version
    );
    if baseline.schema_version != fresh.schema_version {
        eprintln!(
            "error: schema version mismatch: baseline {} vs fresh {} — regenerate the baseline",
            baseline.schema_version, fresh.schema_version
        );
        return ExitCode::FAILURE;
    }
    println!("  {:<18} {:<16} {:>14} {:>14}  status", "workload", "metric", "baseline", "fresh");

    for base in &baseline.workloads {
        match fresh.workloads.iter().find(|w| w.id == base.id) {
            Some(f) => compare_workload(&mut gate, base, f),
            None => {
                gate.failures += 1;
                println!("  {:<18} MISSING from fresh report", base.id);
            }
        }
    }
    for w in &fresh.workloads {
        if !baseline.workloads.iter().any(|b| b.id == w.id) {
            println!("  {:<18} new workload (not in baseline, not gated)", w.id);
        }
    }

    // Kernel microbenchmarks, matched per (kernel, lane width): the
    // interaction count is deterministic (exact match required); the
    // measured rate may only regress within the wall-clock tolerance.
    let find = |rows: &[KernelRate], k: &KernelRate| -> Option<KernelRate> {
        rows.iter().find(|r| r.kernel == k.kernel && r.lane_width == k.lane_width).cloned()
    };
    for base in &baseline.kernel_microbench {
        let label = format!("{}/{}", base.kernel, base.lane_width);
        match find(&fresh.kernel_microbench, base) {
            Some(f) => {
                gate.counter(&label, "interactions", base.interactions, f.interactions);
                gate.kernel_rate(
                    &label,
                    base.interactions_per_second_real,
                    f.interactions_per_second_real,
                );
            }
            None => {
                gate.failures += 1;
                println!("  {label:<18} MISSING from fresh kernel microbench");
            }
        }
    }

    // Host-phase rows, matched per (scheduler, body count): the work
    // counters are deterministic (exact match required); the per-phase
    // nanoseconds may only regress within the wall-clock tolerance.
    let find_hp = |rows: &[HostPhaseRow], k: &HostPhaseRow| -> Option<HostPhaseRow> {
        rows.iter().find(|r| r.scheduler == k.scheduler && r.n_bodies == k.n_bodies).cloned()
    };
    for base in &baseline.host_phase {
        let label = format!("host/{}/{}", base.scheduler, base.n_bodies);
        match find_hp(&fresh.host_phase, base) {
            Some(f) => {
                gate.counter(&label, "block_steps", base.block_steps, f.block_steps);
                gate.counter(&label, "particle_steps", base.particle_steps, f.particle_steps);
                gate.phase_ns(
                    &label,
                    "schedule ns/blk",
                    base.schedule_ns_per_block,
                    f.schedule_ns_per_block,
                );
                gate.phase_ns(
                    &label,
                    "predict ns/blk",
                    base.predict_ns_per_block,
                    f.predict_ns_per_block,
                );
                gate.phase_ns(
                    &label,
                    "jupdate ns/blk",
                    base.jupdate_ns_per_block,
                    f.jupdate_ns_per_block,
                );
                gate.phase_ns(
                    &label,
                    "wall ns (total)",
                    base.wall_seconds * 1e9,
                    f.wall_seconds * 1e9,
                );
            }
            None => {
                gate.failures += 1;
                println!("  {label:<18} MISSING from fresh host_phase section");
            }
        }
    }

    // Hybrid tree+direct vs direct at matched N: the near/far interaction
    // split is exact walk output (fixed seed, deterministic tree) and must
    // match bit-for-bit; the measured sweep rates are wall-clock and gate
    // slowdown-only, like the kernel microbench.
    {
        let label = "hybrid";
        match (&baseline.hybrid, &fresh.hybrid) {
            (Some(b), Some(f)) => {
                gate.counter(label, "n_bodies", b.n_bodies, f.n_bodies);
                gate.counter(label, "sweeps", b.sweeps, f.sweeps);
                gate.counter(label, "near_inter", b.near_interactions, f.near_interactions);
                gate.counter(label, "far_inter", b.far_interactions, f.far_interactions);
                gate.counter(label, "hybrid_inter", b.hybrid_interactions, f.hybrid_interactions);
                gate.counter(label, "direct_inter", b.direct_interactions, f.direct_interactions);
                gate.kernel_rate(
                    "hybrid/sweep",
                    b.hybrid_interactions_per_second,
                    f.hybrid_interactions_per_second,
                );
                gate.kernel_rate(
                    "direct/sweep",
                    b.direct_interactions_per_second,
                    f.direct_interactions_per_second,
                );
                println!(
                    "  {:<18} {:<16} {:>14.3} {:>14.3}  (wall-clock ratio, not gated)",
                    label, "speedup_vs_dir", b.speedup_vs_direct, f.speedup_vs_direct
                );
            }
            (b, f) => {
                // A report that dropped the section must not read as a pass.
                gate.failures += 1;
                for (which, row) in [("baseline", b), ("fresh", f)] {
                    if row.is_none() {
                        println!("  {label:<18} MISSING hybrid section in the {which} report");
                    }
                }
            }
        }
    }

    // Service latency: the load mix is fully seeded, so the job/spec/
    // duplicate accounting and the total block-step count are exact
    // counters (each distinct spec is simulated exactly once regardless of
    // scheduling). Latency percentiles are wall-clock and gate
    // slowdown-only; preemption counts and the cache-hit/coalesced split of
    // the (exact) duplicate total depend on thread interleaving and are
    // informational only.
    {
        let label = "service";
        let (b, f) = match (&baseline.service_latency, &fresh.service_latency) {
            (Some(b), Some(f)) => (b, f),
            (b, f) => {
                // A report without the section is itself a regression: the
                // service gate silently vanishing must not read as a pass.
                gate.failures += 1;
                for (which, row) in [("baseline", b), ("fresh", f)] {
                    if row.is_none() {
                        println!(
                            "  {label:<18} MISSING service_latency section in the {which} report"
                        );
                    }
                }
                return finish(&gate);
            }
        };
        gate.counter(label, "jobs", b.jobs, f.jobs);
        gate.counter(label, "tenants", b.tenants, f.tenants);
        gate.counter(label, "clients", b.clients, f.clients);
        gate.counter(label, "workers", b.workers, f.workers);
        gate.counter(label, "slice_blocks", b.slice_blocks, f.slice_blocks);
        gate.counter(label, "unique_specs", b.unique_specs, f.unique_specs);
        gate.counter(label, "duplicate_jobs", b.duplicate_jobs, f.duplicate_jobs);
        gate.counter(label, "duplicate_hits", b.duplicate_hits, f.duplicate_hits);
        gate.counter(label, "completed", b.completed, f.completed);
        gate.counter(label, "failed", b.failed, f.failed);
        gate.counter(label, "block_steps", b.block_steps, f.block_steps);
        gate.latency_ms(label, "p50_ms", b.p50_ms, f.p50_ms);
        gate.latency_ms(label, "p99_ms", b.p99_ms, f.p99_ms);
        // The service wall is the slowest client chain — the same queueing
        // tail as p99, so it shares the latency budget, not the 15 %-class
        // workload wall budget.
        gate.latency_ms(label, "wall_ms", b.wall_seconds * 1e3, f.wall_seconds * 1e3);
        println!(
            "  {:<18} {:<16} {:>14} {:>14}  (interleaving-dependent, not gated)",
            label, "preemptions", b.preemptions, f.preemptions
        );
        println!(
            "  {:<18} {:<16} {:>14} {:>14}  (split of duplicate_hits, not gated)",
            label,
            "cache/coalesced",
            format!("{}/{}", b.cache_hits, b.coalesced),
            format!("{}/{}", f.cache_hits, f.coalesced)
        );
    }

    finish(&gate)
}

fn finish(gate: &Gate) -> ExitCode {
    if gate.failures > 0 {
        eprintln!("bench_compare: {} check(s) FAILED", gate.failures);
        ExitCode::FAILURE
    } else {
        println!("bench_compare: all checks passed");
        ExitCode::SUCCESS
    }
}
