//! `large_n_smoke` — the paper-scale host-path smoke test (weekly CI cron).
//!
//! Builds the §6 headline disk (N = 1,799,998 planetesimals + 2
//! protoplanets by default), initializes the block-timestep integrator,
//! runs a few hundred block steps and writes one chunked G6CK v2
//! checkpoint — all through the zero-force [`NullForceEngine`], so the
//! run isolates exactly the O(N) host terms this harness guards: tick
//! scheduling, block prediction, lazy j-update flushes and the streamed
//! checkpoint writer. Logs RSS and per-phase wall times, and writes a
//! JSON telemetry artifact for the CI upload.
//!
//! Usage: `large_n_smoke [--n 1799998] [--steps 200]
//!         [--out large_n_smoke.json] [--checkpoint large_n_smoke.g6ck]`
//!
//! Exit status is nonzero if the run produces no work or the checkpoint
//! cannot be written/reloaded.

use grape6_bench::report::NullForceEngine;
use grape6_bench::{arg_or, experiment_config, fmt, paper_disk, print_header, print_row};
use grape6_core::blockstep::SchedulerKind;
use grape6_core::energy::EnergyLedger;
use grape6_core::integrator::BlockHermite;
use grape6_sim::checkpoint::{checkpoint_now, load_checkpoint};
use grape6_sim::stats::BlockSizeHistogram;
use grape6_sim::{Simulation, Telemetry, TelemetryReport};
use serde::Serialize;
use std::path::Path;
use std::time::Instant;

/// The telemetry artifact the weekly cron uploads.
#[derive(Debug, Serialize)]
struct SmokeReport {
    n_bodies: u64,
    scheduler: &'static str,
    block_steps: u64,
    particle_steps: u64,
    build_seconds: f64,
    init_seconds: f64,
    step_seconds: f64,
    checkpoint_seconds: f64,
    checkpoint_bytes: u64,
    reload_seconds: f64,
    rss_mib: f64,
    peak_rss_mib: f64,
    telemetry: TelemetryReport,
}

/// Current and peak resident set size in MiB, from `/proc/self/status`
/// (0.0 when unavailable, e.g. off Linux).
fn rss_mib() -> (f64, f64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0.0, 0.0);
    };
    let grab = |key: &str| {
        status
            .lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|kb| kb.parse::<f64>().ok())
            .map_or(0.0, |kb| kb / 1024.0)
    };
    (grab("VmRSS:"), grab("VmHWM:"))
}

fn main() -> std::process::ExitCode {
    let n: usize = arg_or("--n", 1_799_998);
    let steps: u64 = arg_or("--steps", 200);
    let out: String = arg_or("--out", "large_n_smoke.json".to_string());
    let ckpt: String = arg_or("--checkpoint", "large_n_smoke.g6ck".to_string());

    let t_build = Instant::now();
    let sys = paper_disk(n, 20020616);
    let n_bodies = sys.len() as u64;
    let build_seconds = t_build.elapsed().as_secs_f64();
    println!("disk: {n_bodies} bodies in {build_seconds:.1} s");

    let kind = SchedulerKind::TickBucket;
    let mut sim = Simulation {
        sys,
        integrator: BlockHermite::with_scheduler(experiment_config(), kind),
        engine: NullForceEngine::default(),
        // The pairwise energy reference is O(N²) — 1.6e12 pair sums at this
        // N — and the smoke never reads it; open a zeroed ledger instead.
        ledger: EnergyLedger { e0: 0.0, l0: 0.0 },
        block_hist: BlockSizeHistogram::new(),
        diagnostics: Vec::new(),
        radius_model: None,
        accretion_log: Default::default(),
        encounter_log: None,
        telemetry: Some(Telemetry::new()),
    };

    let t_init = Instant::now();
    match &mut sim.telemetry {
        Some(t) => sim.integrator.initialize_observed(&mut sim.sys, &mut sim.engine, t),
        None => unreachable!("telemetry attached above"),
    }
    let init_seconds = t_init.elapsed().as_secs_f64();
    println!("init: forces + schedule in {init_seconds:.1} s");

    let t_steps = Instant::now();
    for _ in 0..steps {
        sim.step();
    }
    let step_seconds = t_steps.elapsed().as_secs_f64();
    let stats = sim.stats();
    println!(
        "steps: {} block steps / {} particle steps in {step_seconds:.1} s \
         ({:.1} ms per block step)",
        stats.block_steps,
        stats.particle_steps,
        1e3 * step_seconds / stats.block_steps.max(1) as f64
    );

    let t_ckpt = Instant::now();
    if let Err(e) = checkpoint_now(&mut sim, Path::new(&ckpt)) {
        eprintln!("error: writing checkpoint {ckpt}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    let checkpoint_seconds = t_ckpt.elapsed().as_secs_f64();
    let checkpoint_bytes = std::fs::metadata(&ckpt).map(|m| m.len()).unwrap_or(0);
    println!(
        "checkpoint: {:.1} MiB chunked G6CK v2 in {checkpoint_seconds:.1} s -> {ckpt}",
        checkpoint_bytes as f64 / (1024.0 * 1024.0)
    );

    // The artifact must round-trip: reload it and spot-check the header.
    let t_reload = Instant::now();
    let reloaded = match load_checkpoint(Path::new(&ckpt), NullForceEngine::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: reloading checkpoint {ckpt}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let reload_seconds = t_reload.elapsed().as_secs_f64();
    if reloaded.sys.len() as u64 != n_bodies || reloaded.sys.t.to_bits() != sim.sys.t.to_bits() {
        eprintln!("error: reloaded checkpoint does not match the live run");
        return std::process::ExitCode::FAILURE;
    }
    println!("reload: checkpoint resumes at t = {} in {reload_seconds:.1} s", reloaded.sys.t);
    drop(reloaded);

    let (rss, peak) = rss_mib();
    let telemetry = sim.telemetry_report().expect("telemetry attached");
    println!("\nper-phase host seconds:");
    print_header(&["schedule", "predict", "force", "correct", "jupdate", "ckpt"], 11);
    let p = &telemetry.phase_seconds;
    print_row(
        &[
            fmt(p.schedule),
            fmt(p.predict),
            fmt(p.force),
            fmt(p.correct),
            fmt(p.j_update),
            fmt(p.checkpoint),
        ],
        11,
    );
    println!("rss: {rss:.0} MiB (peak {peak:.0} MiB)");

    if stats.block_steps == 0 || stats.particle_steps == 0 {
        eprintln!("error: the smoke run did no work");
        return std::process::ExitCode::FAILURE;
    }

    let report = SmokeReport {
        n_bodies,
        scheduler: kind.name(),
        block_steps: stats.block_steps,
        particle_steps: stats.particle_steps,
        build_seconds,
        init_seconds,
        step_seconds,
        checkpoint_seconds,
        checkpoint_bytes,
        reload_seconds,
        rss_mib: rss,
        peak_rss_mib: peak,
        telemetry,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize smoke report");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: writing {out}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    println!("report -> {out}");
    std::process::ExitCode::SUCCESS
}
