//! Experiment E3 — hardware self-check table (paper §5.2–5.3).
//!
//! Regenerates every quantitative hardware claim: 30.7 Gflops per chip,
//! 57 flops per interaction (38 force + 19 jerk), 2048 chips, 63.4 Tflops
//! system peak, 90 MB/s LVDS links, and the 16-host / 64-board / 4-cluster
//! organization.

use grape6_bench::{fmt, print_header, print_row};
use grape6_hw::network::NetworkBoardGeometry;
use grape6_hw::{ChipGeometry, Link, MachineGeometry, NetworkTree};

fn main() {
    println!("E3: GRAPE-6 hardware self-check (paper §5.2-5.3)\n");
    let chip = ChipGeometry::default();
    let machine = MachineGeometry::sc2002();

    print_header(&["quantity", "paper", "model", "unit"], 22);
    let rows: Vec<[String; 4]> = vec![
        ["pipelines / chip".into(), "6".into(), chip.pipelines.to_string(), "-".into()],
        ["clock".into(), "90".into(), fmt(chip.clock_hz / 1e6), "MHz".into()],
        [
            "flops / interaction".into(),
            "57 (38+19)".into(),
            grape6_core::force::FLOPS_PER_INTERACTION.to_string(),
            "flops".into(),
        ],
        ["chip peak".into(), "30.7".into(), fmt(chip.peak_flops() / 1e9), "Gflops".into()],
        ["chips / board".into(), "32".into(), machine.board.chips.to_string(), "-".into()],
        [
            "board peak".into(),
            "~0.98".into(),
            fmt(machine.board.peak_flops() / 1e12),
            "Tflops".into(),
        ],
        ["boards / host".into(), "4".into(), machine.boards_per_host.to_string(), "-".into()],
        ["hosts".into(), "16".into(), machine.hosts().to_string(), "-".into()],
        ["clusters".into(), "4".into(), machine.clusters.to_string(), "-".into()],
        ["total chips".into(), "2048".into(), machine.chips().to_string(), "-".into()],
        ["system peak".into(), "63.4".into(), fmt(machine.peak_flops() / 1e12), "Tflops".into()],
        [
            "LVDS link rate".into(),
            "90".into(),
            fmt(Link::lvds().bytes_per_second / 1e6),
            "MB/s".into(),
        ],
        [
            "i-parallel / chip".into(),
            "48 (6x8 VMP)".into(),
            chip.i_parallel().to_string(),
            "-".into(),
        ],
        [
            "node j-memory".into(),
            ">= 1.8M".into(),
            machine.node_jmem_capacity().to_string(),
            "particles".into(),
        ],
    ];
    for r in &rows {
        print_row(r.as_ref(), 22);
    }

    // NB tree structure (§4.3: 4 NBs connect 4 hosts to 16 boards).
    let tree = NetworkTree::spanning(16, NetworkBoardGeometry::default());
    println!(
        "\nNB tree spanning 16 boards: {} levels, {} network boards (paper: 1 root + 4)",
        tree.levels(),
        tree.board_count()
    );
    println!(
        "broadcast of 1 MB through the tree: {:.3} ms (link-limited, levels add only µs)",
        tree.broadcast_time(1_000_000) * 1e3
    );
}
