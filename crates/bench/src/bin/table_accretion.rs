//! Experiment E11 (extension) — planetary accretion (paper §2): "While
//! orbiting the sun, planetesimals accrete to form terrestrial (rocky) and
//! uranian (icy) planets… This process is called planetary accretion."
//!
//! Collisions are detected through the hardware nearest-neighbour reports
//! and merge perfectly; the observable is the mass spectrum: the m^-2.5 law
//! is stationary for the *small* bodies while the high-mass tail grows —
//! the onset of runaway growth. Radii are inflated to bring the collision
//! rate into CPU range (standard practice; the mechanism is unchanged).

use grape6_bench::{arg_or, fmt, print_header, print_row};
use grape6_core::force::DirectEngine;
use grape6_core::integrator::HermiteConfig;
use grape6_disk::{DiskBuilder, MassSpectrum};
use grape6_sim::{RadiusModel, Simulation};

fn main() {
    let n: usize = arg_or("--n", 768);
    let inflation: f64 = arg_or("--inflation", 400.0);
    let t_end: f64 = arg_or("--t", 600.0);
    println!("E11 (extension): planetary accretion (paper §2)");
    println!("N = {n}, radius inflation ×{inflation}, T = {t_end}\n");

    let mut builder = DiskBuilder::paper(n).without_protoplanets();
    builder.sigma_e = 0.003;
    builder.sigma_i = 0.0015;
    let sys = builder.build();
    let idx: Vec<usize> = (0..n).collect();
    let m0_max = sys.mass.iter().cloned().fold(0.0, f64::max);

    let config = HermiteConfig { dt_max: 8.0, ..HermiteConfig::default() };
    let mut sim = Simulation::new(sys, config, DirectEngine::new());
    sim.enable_accretion(RadiusModel::icy_inflated(inflation));

    print_header(&["t", "bodies", "mergers", "dN/dm slope", "m_max/m0"], 14);
    let spec0 = MassSpectrum::from_system(&sim.sys, &idx, 10);
    print_row(&["0".into(), n.to_string(), "0".into(), fmt(spec0.slope), "1".into()], 14);
    for k in 1..=6 {
        sim.run_to(t_end * k as f64 / 6.0, 0.0);
        let alive = sim.sys.mass.iter().filter(|&&m| m > 0.0).count();
        let spec = MassSpectrum::from_system(&sim.sys, &idx, 10);
        let m_max = sim.sys.mass.iter().cloned().fold(0.0, f64::max);
        print_row(
            &[
                fmt(sim.t()),
                alive.to_string(),
                sim.accretion_log.count().to_string(),
                fmt(spec.slope),
                fmt(m_max / m0_max),
            ],
            14,
        );
    }
    sim.record_diagnostics();
    println!();
    println!(
        "mass conserved: total = {:.6e} M_sun; |dE/E| = {:.2e}",
        sim.sys.total_mass(),
        sim.diagnostics.last().unwrap().energy_error
    );
    println!("expected shape: merger count grows steadily; the fitted slope stays near");
    println!("-2.5 for the bulk while the largest body pulls away (runaway growth onset).");
}
