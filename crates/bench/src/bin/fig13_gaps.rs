//! Experiment E2 — Fig 13: the planetesimal distribution at an early and a
//! late time, with gaps forming near the protoplanet radii (20 and 30 AU).
//!
//! The paper integrated 1.8 M planetesimals for thousands of time units on
//! 63 Tflops of hardware; on a CPU we scale down: fewer planetesimals
//! (default 2048) and heavier protoplanets (default 10× the production
//! mass), which accelerates gap clearing — the clearing rate scales as the
//! square of the protoplanet mass — while leaving the mechanism (scattering
//! out of the feeding zone) untouched. See DESIGN.md §3.

use grape6_bench::{arg_or, experiment_config, fmt, print_header, print_row};
use grape6_core::force::DirectEngine;
use grape6_core::integrator::BlockHermite;
use grape6_disk::{DiskBuilder, DiskSnapshot, RadialHistogram};
use grape6_sim::Simulation;

fn main() {
    let n: usize = arg_or("--n", 2048);
    let mass_boost: f64 = arg_or("--mass-boost", 10.0);
    let t_early: f64 = arg_or("--t-early", 800.0);
    let t_late: f64 = arg_or("--t-late", 2400.0);
    println!("E2 / Fig 13: gap formation near the protoplanets");
    println!(
        "N = {n}, protoplanet mass boost ×{mass_boost}, snapshots at T = {t_early} and {t_late}\n"
    );

    let mut builder = DiskBuilder::paper(n);
    for p in &mut builder.protoplanets {
        p.mass *= mass_boost;
    }
    // Keep the *production* per-particle planetesimal masses rather than
    // concentrating the full ring mass in n bodies: the paper's §3 mass-ratio
    // requirement (protoplanet scattering must dominate mutual relaxation)
    // would otherwise be violated at CPU-scale n, and self-stirring would
    // bury the gap signal.
    builder.total_mass = grape6_disk::PowerLawMass::paper().mean() * n as f64;
    let sys = builder.build();
    let planetesimals: Vec<usize> = (0..n).collect();
    let mut sim = Simulation::new(sys, experiment_config(), DirectEngine::new());

    let profile_q = builder.profile.exponent;
    // A protoplanet clears its *feeding zone*, the annulus within ~2.5 Hill
    // radii of its orbit — except for the co-orbital (horseshoe) population
    // that survives at the protoplanet radius itself. Probe the zone edges.
    let m_boosted = grape6_core::units::paper::M_PROTOPLANET * mass_boost;
    let probes: Vec<(f64, f64)> = [20.0, 30.0]
        .iter()
        .flat_map(|&a| {
            let rh = grape6_core::units::hill_radius(a, m_boosted, 1.0);
            [(a, a - 2.2 * rh), (a, a + 2.2 * rh)]
        })
        .collect();

    let report = |sim: &Simulation<DirectEngine>, label: &str, t: f64| {
        // Synchronize all particles to a common time for the snapshot.
        let (pos, _) = BlockHermite::synchronized_state(&sim.sys, t);
        let mut snap_sys = sim.sys.clone();
        snap_sys.pos = pos;
        let hist = RadialHistogram::from_system(&snap_sys, &planetesimals, 14.0, 36.0, 44);
        let snap = DiskSnapshot::capture(&snap_sys, &planetesimals, t);
        // Optional CSV dump of the scatter data (the actual Fig 13 panels).
        if let Some(dir) = std::env::args().skip_while(|a| a != "--csv").nth(1) {
            let path = format!("{dir}/fig13_t{t:.0}.csv");
            let mut out = String::from("r_au,phi_rad,z_au\n");
            for k in 0..snap.r.len() {
                out.push_str(&format!("{},{},{}\n", snap.r[k], snap.phi[k], snap.z[k]));
            }
            if std::fs::write(&path, out).is_ok() {
                println!("(scatter data -> {path})");
            }
        }
        println!("--- {label}: T = {t} ({} particles captured) ---", snap.r.len());
        print_header(&["r (AU)", "sigma (rel)", "count"], 14);
        let s0 = hist.sigma.iter().cloned().fold(0.0f64, f64::max).max(1e-300);
        for b in (0..hist.bins()).step_by(2) {
            print_row(
                &[fmt(hist.center(b)), fmt(hist.sigma[b] / s0), hist.counts[b].to_string()],
                14,
            );
        }
        // Mean feeding-zone-edge depletion per protoplanet.
        let mut zone = [0.0f64; 2];
        for (k, &a) in [20.0, 30.0].iter().enumerate() {
            let ds: Vec<f64> = probes
                .iter()
                .filter(|&&(pa, _)| pa == a)
                .map(|&(_, r)| hist.depletion_at(r, 4.0, profile_q))
                .collect();
            zone[k] = ds.iter().sum::<f64>() / ds.len() as f64;
        }
        println!(
            "feeding-zone depletion: proto-Uranus (20 AU) = {} | proto-Neptune (30 AU) = {}\n",
            fmt(zone[0]),
            fmt(zone[1])
        );
        zone
    };

    report(&sim, "initial", 0.0);
    sim.run_to(t_early, 0.0);
    let early = report(&sim, "early (paper: left panel)", sim.t());
    sim.run_to(t_late, 0.0);
    let late = report(&sim, "late (paper: right panel)", sim.t());
    sim.record_diagnostics();

    println!("paper: 'gap of the distribution is formed near the radius of protoplanets'");
    println!(
        "reproduced: feeding zones empty over time — 20 AU: {} -> {} | 30 AU: {} -> {}",
        fmt(early[0]),
        fmt(late[0]),
        fmt(early[1]),
        fmt(late[1])
    );
    println!("(surviving density at exactly 20/30 AU is the co-orbital horseshoe population;");
    println!(" the pileups between the zones are planetesimals scattered out of them)");
    let d = sim.diagnostics.last().unwrap();
    println!(
        "integration quality: |dE/E| = {} after {} block steps ({} particle steps)",
        fmt(d.energy_error),
        d.block_steps,
        d.particle_steps
    );
}
