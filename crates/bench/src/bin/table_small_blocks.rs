//! Experiment E7 — pipeline efficiency at small block sizes (paper §4.2,
//! Fig 2): "the entire hardware must be designed so that it can deliver
//! reasonable performance when asked to evaluate the forces on relatively
//! small number of particles."
//!
//! Two levers make that possible and are swept here: the virtual
//! multipipeline (8 i-particle register sets per physical pipeline) and the
//! splitting of the j-set over many chips with a hardware reduction tree.

use grape6_bench::{fmt, print_header, print_row};
use grape6_hw::timing::TimingModel;
use grape6_hw::ChipGeometry;

fn main() {
    println!("E7: efficiency vs active-block size (paper §4.2)\n");
    let n_total = 1_800_000usize;
    let model = TimingModel::sc2002();
    let peak = model.geometry.peak_flops();

    println!("full machine (N = {n_total}):");
    print_header(&["n_active", "ms/step", "Tflops", "eff %"], 14);
    for &n_act in &[16usize, 64, 256, 768, 1536, 3072, 12288, 49152] {
        let b = model.block_step(n_act, n_total);
        let flops = 57.0 * n_act as f64 * n_total as f64;
        print_row(
            &[
                n_act.to_string(),
                fmt(b.total() * 1e3),
                fmt(flops / b.total() / 1e12),
                fmt(100.0 * flops / b.total() / peak),
            ],
            14,
        );
    }

    // The VMP ablation: same chip without virtual pipelines (each physical
    // pipeline handles one i-particle per sweep, so a sweep covers 6 i's and
    // every j is fetched every cycle).
    println!("\nchip-level ablation: cycles per interaction for a 16384-particle j-memory");
    print_header(&["n_i", "VMP=8 (GRAPE-6)", "VMP=1", "penalty"], 18);
    let g8 = ChipGeometry::default();
    let g1 = ChipGeometry { vmp: 1, ..ChipGeometry::default() };
    for &n_i in &[6usize, 12, 48, 96, 192] {
        let n_j = 16384;
        let inter = (n_i * n_j) as f64;
        let c8 = g8.compute_cycles(n_i, n_j) as f64 / inter;
        let c1 = g1.compute_cycles(n_i, n_j) as f64 / inter;
        print_row(&[n_i.to_string(), fmt(c8), fmt(c1), fmt(c1 / c8)], 18);
    }
    println!();
    println!("(cycles/interaction: the GRAPE-6 ideal is 1/6 ≈ 0.167; without the 8-deep");
    println!(" virtual multipipeline the SSRAM fetch stalls the pipelines ~8×)");
}
