//! Experiment E4 — the individual-timestep structure (paper §3, §4.2):
//! the timestep distribution spans many octaves ("the timescale ranges six
//! orders of magnitudes") and the mean active block is a tiny fraction of N
//! ("might be as few as one hundred or less, even for N = 10⁵ or larger").

use grape6_bench::{arg_or, experiment_config, fmt, paper_disk, print_header, print_row};
use grape6_core::force::DirectEngine;
use grape6_sim::Simulation;

fn main() {
    let t_run: f64 = arg_or("--t", 64.0);
    let warmup: f64 = arg_or("--warmup", 16.0);
    println!("E4: block-timestep structure (paper §3, §4.2)");
    println!("window: warmup {warmup} + {t_run} time units\n");

    print_header(
        &["N", "rungs", "dt range", "orders", "mean block", "encounters", "t_orb/t_enc"],
        12,
    );
    for &n in &[1024usize, 4096, 16384] {
        let sys = paper_disk(n, 7);
        let mut sim = Simulation::new(sys, experiment_config(), DirectEngine::new());
        sim.enable_encounter_log(3.0);
        sim.run_to(warmup, 0.0);
        // Fresh statistics for the measurement window.
        sim.block_hist = grape6_sim::BlockSizeHistogram::new();
        sim.run_to(warmup + t_run, 0.0);
        let ts = sim.timestep_histogram();
        let enc = sim.encounter_log.as_ref().unwrap();
        print_row(
            &[
                n.to_string(),
                ts.occupied_rungs().to_string(),
                fmt(ts.dynamic_range()),
                fmt(ts.orders_of_magnitude()),
                fmt(sim.block_hist.mean()),
                enc.count().to_string(),
                enc.timescale_range(20.0).map_or("-".into(), fmt),
            ],
            12,
        );
    }
    println!();
    println!("paper §3: close encounters push timescales from ~100 yr orbits down to hours");
    println!("          (6 orders of magnitude at production N; encounter rate grows with N)");
    println!("paper §4.2: mean block 'might be as few as one hundred or less, even for N = 10^5'");
}
