//! Experiment E6 — the host-parallelization argument of §4.3 (Figs 3–6):
//! per-host communication volume and exchange time for the naive layout,
//! the network-board tree, and the 2-D host grid, as a function of host
//! count.

use grape6_bench::{arg_or, fmt, print_header, print_row};
use grape6_hw::{ParallelModel, Strategy};

fn main() {
    let n_active: usize = arg_or("--block", 8192);
    println!("E6: host-parallelization scaling (paper §4.3, figs 3-6)");
    println!("block size n = {n_active} particles updated per step\n");

    let model = ParallelModel::default();
    print_header(&["hosts", "strategy", "NIC in (kB)", "exch (ms)", "speedup"], 18);
    for &p in &[1usize, 2, 4, 8, 16] {
        for strategy in Strategy::ALL {
            if p == 1 && strategy != Strategy::Naive {
                continue;
            }
            let inbound = model.inbound_bytes_per_host(strategy, p, n_active);
            let t = model.exchange_time(strategy, p, n_active);
            let s = model.exchange_speedup(strategy, p, n_active);
            print_row(
                &[
                    p.to_string(),
                    strategy.label().to_string(),
                    fmt(inbound as f64 / 1e3),
                    fmt(t * 1e3),
                    fmt(s),
                ],
                18,
            );
        }
        println!();
    }
    println!("paper §4.3: the naive layout's per-host traffic does not shrink with p");
    println!("('no better than a single host'); the NB tree removes host-to-host");
    println!("particle exchange entirely; the 2-D grid needs only row+column traffic.");
}
