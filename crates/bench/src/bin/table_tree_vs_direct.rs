//! Experiment E5 — the §3 algorithm argument: tree codes vs direct
//! summation under individual timesteps.
//!
//! Two tables:
//! 1. force accuracy of the Barnes-Hut approximation vs opening angle —
//!    direct summation is the accuracy reference the paper requires;
//! 2. cost per *block step* under the block individual-timestep driver:
//!    the tree pays an O(N log N) rebuild for every block no matter how
//!    small, so its advantage evaporates exactly as §3 claims.

use grape6_bench::{arg_or, experiment_config, fmt, paper_disk, print_header, print_row};
use grape6_core::engine::ForceEngine;
use grape6_core::force::DirectEngine;
use grape6_core::particle::{ForceResult, IParticle};
use grape6_sim::Simulation;
use grape6_tree::TreeEngine;
use std::time::Instant;

fn main() {
    let n: usize = arg_or("--n", 8192);
    println!("E5: tree vs direct (paper §3), N = {n}\n");

    // --- Table 1: accuracy vs opening angle ---
    let sys = paper_disk(n, 3);
    let ips: Vec<IParticle> = (0..256)
        .map(|k| {
            let i = k * (n / 256);
            IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }
        })
        .collect();
    let mut direct = DirectEngine::new();
    direct.load(&sys);
    let mut exact = vec![ForceResult::default(); ips.len()];
    direct.compute(0.0, &ips, &mut exact);

    print_header(&["theta", "median err", "99% err", "evals/N"], 14);
    for &theta in &[0.9, 0.7, 0.5, 0.3] {
        let mut tree = TreeEngine::new(theta);
        tree.load(&sys);
        let mut out = vec![ForceResult::default(); ips.len()];
        tree.compute(0.0, &ips, &mut out);
        let mut errs: Vec<f64> =
            exact.iter().zip(&out).map(|(e, t)| (t.acc - e.acc).norm() / e.acc.norm()).collect();
        errs.sort_by(f64::total_cmp);
        print_row(
            &[
                fmt(theta),
                fmt(errs[errs.len() / 2]),
                fmt(errs[errs.len() * 99 / 100]),
                fmt(tree.interaction_count() as f64 / ips.len() as f64 / n as f64),
            ],
            14,
        );
    }

    // --- Table 2: wall time per block step under individual timesteps ---
    println!("\ncost under the block individual-timestep driver (same trajectory length):");
    print_header(&["engine", "blocks", "mean block", "wall (s)", "s/blockstep"], 14);
    let t_run: f64 = arg_or("--t", 24.0);
    for engine_name in ["direct", "tree"] {
        let sys = paper_disk(n, 3);
        let start = Instant::now();
        let (blocks, mean_block) = match engine_name {
            "direct" => {
                let mut sim = Simulation::new(sys, experiment_config(), DirectEngine::new());
                sim.run_to(t_run, 0.0);
                (sim.block_hist.blocks, sim.block_hist.mean())
            }
            _ => {
                let mut sim = Simulation::new(sys, experiment_config(), TreeEngine::new(0.5));
                sim.run_to(t_run, 0.0);
                (sim.block_hist.blocks, sim.block_hist.mean())
            }
        };
        let wall = start.elapsed().as_secs_f64();
        print_row(
            &[
                engine_name.to_string(),
                blocks.to_string(),
                fmt(mean_block),
                fmt(wall),
                fmt(wall / blocks.max(1) as f64),
            ],
            14,
        );
    }
    println!();
    println!("paper §3: 'it is very difficult to achieve high efficiency with these");
    println!("algorithms when the timesteps of particles vary widely' — the tree's");
    println!("O(N log N) rebuild is paid per block, the direct sum only per i-particle.");
}
