//! `load_gen` — drive the `grape6-serve` job service with a seeded
//! closed-loop load and verify its exactness contracts.
//!
//! ```text
//! load_gen [--smoke] [--jobs N] [--tenants T] [--clients-per-tenant C]
//!          [--workers W] [--slice-blocks B] [--pool-specs P] [--seed S]
//!          [--out service_latency.json]
//! ```
//!
//! Default is the standard 256-job / 4-tenant pass (the configuration the
//! shipped `BENCH_report.json` embeds); `--smoke` is the 64-job / 2-tenant
//! CI gate. Explicit flags override either base. The process exits
//! nonzero if any contract fails: a lost or wedged job, a duplicate that
//! is not a cache hit, or any result byte differing from a fresh rerun.

use grape6_bench::arg_or;
use grape6_bench::loadgen::{run_load_gen, LoadGenConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let base = if std::env::args().any(|a| a == "--smoke") {
        LoadGenConfig::smoke()
    } else {
        LoadGenConfig::standard()
    };
    let cfg = LoadGenConfig {
        jobs: arg_or("--jobs", base.jobs),
        tenants: arg_or("--tenants", base.tenants),
        clients_per_tenant: arg_or("--clients-per-tenant", base.clients_per_tenant),
        workers: arg_or("--workers", base.workers),
        slice_blocks: arg_or("--slice-blocks", base.slice_blocks),
        pool_specs: arg_or("--pool-specs", base.pool_specs),
        seed: arg_or("--seed", base.seed),
        ..base
    };
    let out_path: String = arg_or("--out", String::new());

    println!(
        "load_gen: {} jobs, {} tenants x {} clients, {} workers, {} distinct specs, seed {}",
        cfg.jobs, cfg.tenants, cfg.clients_per_tenant, cfg.workers, cfg.pool_specs, cfg.seed
    );
    let result = match run_load_gen(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load_gen: FAIL: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "  completed {}/{} (0 lost), {} distinct specs, {} duplicates all cache hits \
         ({} cache + {} coalesced), {} dup groups byte-verified, {} fresh reruns byte-verified",
        result.completed,
        result.jobs,
        result.unique_specs,
        result.duplicate_hits,
        result.cache_hits,
        result.coalesced,
        result.dup_groups_verified,
        result.fresh_verified,
    );
    println!(
        "  latency ms: p50 {:.2}  p99 {:.2}  mean {:.2}  max {:.2}",
        result.p50_ms, result.p99_ms, result.mean_ms, result.max_ms
    );
    println!(
        "  throughput {:.1} jobs/s over {:.2} s wall; {} block steps, {} preemptions, \
         cache hit rate {:.3}",
        result.jobs_per_second,
        result.wall_seconds,
        result.block_steps,
        result.preemptions,
        result.cache_hit_rate
    );

    if !out_path.is_empty() {
        let json = match serde_json::to_string_pretty(&result) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("load_gen: serializing report: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&out_path, json + "\n") {
            eprintln!("load_gen: writing {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  wrote {out_path}");
    }
    println!("load_gen: all contracts verified");
    ExitCode::SUCCESS
}
