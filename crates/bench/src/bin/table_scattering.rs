//! Experiment E8 — dynamical heating and scattering by the protoplanets
//! (paper §2): "some planetesimals are accreted and others are scattered
//! away from the solar system by Neptune… The gravitational relaxation of
//! planetesimal orbits due to mutual gravitational interaction is an
//! elementary process that controls the planetesimal evolution."
//!
//! We integrate a scaled disk and report (a) the growth of the eccentricity
//! dispersion, strongest near the protoplanet radii, and (b) the census of
//! fates (retained / scattered in / scattered out / ejected).

use grape6_bench::{arg_or, experiment_config, fmt, print_header, print_row};
use grape6_core::force::DirectEngine;
use grape6_disk::{DiskBuilder, RadialHistogram, ScatteringCensus};
use grape6_sim::Simulation;

fn main() {
    let n: usize = arg_or("--n", 1024);
    let mass_boost: f64 = arg_or("--mass-boost", 10.0);
    let t_end: f64 = arg_or("--t", 1200.0);
    println!("E8: excitation and scattering by the protoplanets (paper §2)");
    println!("N = {n}, mass boost ×{mass_boost}, T = {t_end}\n");

    let mut builder = DiskBuilder::paper(n);
    for p in &mut builder.protoplanets {
        p.mass *= mass_boost;
    }
    // Production per-particle masses (see fig13_gaps): the protoplanets, not
    // mutual relaxation, must drive the evolution — the paper's §3 point.
    builder.total_mass = grape6_disk::PowerLawMass::paper().mean() * n as f64;
    let sys = builder.build();
    let planetesimals: Vec<usize> = (0..n).collect();
    let mut sim = Simulation::new(sys, experiment_config(), DirectEngine::new());

    let census0 = ScatteringCensus::classify(&sim.sys, &planetesimals, 14.0, 36.0);
    let hist0 = RadialHistogram::from_system(&sim.sys, &planetesimals, 14.0, 36.0, 11);

    sim.run_to(t_end, 0.0);

    let census1 = ScatteringCensus::classify(&sim.sys, &planetesimals, 14.0, 36.0);
    let hist1 = RadialHistogram::from_system(&sim.sys, &planetesimals, 14.0, 36.0, 11);

    println!("eccentricity dispersion by radius (heating profile):");
    print_header(&["r (AU)", "rms e (t=0)", "rms e (end)", "growth"], 14);
    for b in 0..hist0.bins() {
        let g = if hist0.rms_e[b] > 0.0 { hist1.rms_e[b] / hist0.rms_e[b] } else { 0.0 };
        print_row(&[fmt(hist0.center(b)), fmt(hist0.rms_e[b]), fmt(hist1.rms_e[b]), fmt(g)], 14);
    }

    println!("\nfate census (annulus 14-36 AU):");
    print_header(&["epoch", "retained", "inward", "outward", "ejected", "disturbed %"], 12);
    for (label, c) in [("t = 0", census0), ("end", census1)] {
        print_row(
            &[
                label.to_string(),
                c.retained.to_string(),
                c.scattered_inward.to_string(),
                c.scattered_outward.to_string(),
                c.ejected.to_string(),
                fmt(100.0 * c.disturbed_fraction()),
            ],
            12,
        );
    }
    println!();
    println!(
        "rms e of retained planetesimals: {} -> {}",
        fmt(census0.rms_e_retained),
        fmt(census1.rms_e_retained)
    );
    println!("paper §2: scattering by proto-Neptune feeds the Oort cloud; heating is");
    println!("concentrated near the protoplanet orbits (20 / 30 AU rows above).");
}
