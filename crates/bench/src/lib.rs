//! # grape6-bench
//!
//! The benchmark harness: one binary per experiment of DESIGN.md §4
//! (`table_headline`, `fig13_gaps`, `table_hardware`, `table_blockstep`,
//! `table_tree_vs_direct`, `table_network_scaling`, `table_small_blocks`,
//! `table_scattering`, `table_accuracy`), plus Criterion micro-benches of
//! the hot kernels. This library holds the shared table-printing and
//! workload helpers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
pub mod loadgen;
pub mod report;

use grape6_core::integrator::HermiteConfig;
use grape6_core::particle::ParticleSystem;
use grape6_disk::DiskBuilder;

/// Print a table header row followed by a separator, padding each column to
/// `width`.
pub fn print_header(cols: &[&str], width: usize) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join("  "));
    println!("{}", "-".repeat((width + 2) * cols.len()));
}

/// Print a data row of preformatted cells at the same width.
pub fn print_row(cells: &[String], width: usize) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join("  "));
}

/// Format a float compactly for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e4 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// The standard scaled-down paper workload used across experiments: an
/// `n`-planetesimal Uranus-Neptune disk with the paper's geometry, masses
/// and softening.
pub fn paper_disk(n: usize, seed: u64) -> ParticleSystem {
    DiskBuilder::paper(n).with_seed(seed).build()
}

/// The integrator configuration used by the experiments: η = 0.02 accuracy
/// class with dt_max = 2³ (≈1.3 yr, a small fraction of the 90–160 yr
/// orbital periods), leaving the Aarseth criterion free to spread particles
/// across many rungs — the individual-timestep structure the paper exploits.
pub fn experiment_config() -> HermiteConfig {
    HermiteConfig { dt_max: 2.0f64.powi(3), ..HermiteConfig::default() }
}

/// Parse a `--key value` style argument from the command line, with a
/// default. Accepts integers and floats via `FromStr`.
pub fn arg_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == key {
            if let Ok(v) = w[1].parse() {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_picks_sensible_notation() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(1.5).starts_with("1.5"));
        assert!(fmt(1.0e7).contains('e'));
        assert!(fmt(1.0e-9).contains('e'));
    }

    #[test]
    fn paper_disk_builds() {
        let sys = paper_disk(100, 1);
        assert_eq!(sys.len(), 102);
        assert_eq!(sys.softening, 0.008);
    }

    #[test]
    fn arg_or_returns_default_without_flag() {
        assert_eq!(arg_or("--nonexistent-flag", 42usize), 42);
        assert_eq!(arg_or("--nonexistent-flag", 2.5f64), 2.5);
    }
}
