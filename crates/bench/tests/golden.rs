//! Golden-number checks on the `bench_report` harness.
//!
//! The paper-check numbers in `BENCH_report.json` must reproduce the §5.2/§6
//! self-check of `tests/paper_numbers.rs::efficiency_regime_attainable`:
//! both derive from the single source of truth `TimingModel::sc2002()`, so
//! they are compared bit-for-bit here rather than against copied constants.

use grape6_bench::loadgen::ServiceLatencyResult;
use grape6_bench::report::{
    standard_workloads, BenchReport, HybridBench, KernelRate, PaperCheck, ThreadScalingEntry,
    ThreadScalingResult, SCALING_THREADS, SCHEMA_VERSION,
};
use grape6_hw::TimingModel;

/// A schema-complete `service_latency` literal for structure-only tests.
fn service_latency_fixture() -> ServiceLatencyResult {
    ServiceLatencyResult {
        jobs: 64,
        tenants: 2,
        clients: 4,
        workers: 2,
        slice_blocks: 16,
        unique_specs: 24,
        duplicate_jobs: 40,
        duplicate_hits: 40,
        completed: 64,
        failed: 0,
        cache_hits: 30,
        coalesced: 10,
        cache_hit_rate: 40.0 / 64.0,
        preemptions: 12,
        block_steps: 4096,
        dup_groups_verified: 20,
        fresh_verified: 2,
        p50_ms: 12.0,
        p99_ms: 80.0,
        mean_ms: 18.0,
        max_ms: 95.0,
        wall_seconds: 1.5,
        jobs_per_second: 64.0 / 1.5,
    }
}

/// A schema-complete `hybrid` literal for structure-only tests.
fn hybrid_fixture() -> HybridBench {
    HybridBench {
        n_bodies: 100,
        theta: 0.5,
        r_near: 3.0,
        sweeps: 3,
        near_interactions: 900,
        far_interactions: 2100,
        hybrid_interactions: 3000,
        direct_interactions: 30000,
        hybrid_wall_seconds: 0.1,
        direct_wall_seconds: 0.5,
        hybrid_interactions_per_second: 30000.0,
        direct_interactions_per_second: 60000.0,
        speedup_vs_direct: 5.0,
    }
}

#[test]
fn paper_check_matches_timing_model_bit_for_bit() {
    let check = PaperCheck::sc2002();
    let model = TimingModel::sc2002();
    let peak = model.geometry.peak_flops();
    // Same single source of truth as tests/paper_numbers.rs — no copied
    // constants, the exact same expressions.
    assert_eq!(check.peak_tflops, peak / 1e12);
    assert_eq!(check.sustained_tflops_block_512, model.sustained_flops(512, 1_800_000) / 1e12);
    assert_eq!(check.sustained_tflops_block_16384, model.sustained_flops(16384, 1_800_000) / 1e12);
    assert_eq!(check.efficiency_block_512, model.sustained_flops(512, 1_800_000) / peak);
    assert_eq!(check.efficiency_block_16384, model.sustained_flops(16384, 1_800_000) / peak);
}

#[test]
fn paper_check_brackets_the_gordon_bell_number() {
    // §6: 29.5 Tflops sustained = 46.5 % of peak. The modeled efficiency
    // range for plausible production block sizes must bracket it (the same
    // invariant tests/paper_numbers.rs asserts on the timing model).
    let check = PaperCheck::sc2002();
    assert_eq!(check.gordon_bell_efficiency, 0.465);
    assert!((check.peak_tflops - 63.4).abs() < 0.5, "peak {}", check.peak_tflops);
    assert!(
        check.efficiency_block_512 < check.gordon_bell_efficiency,
        "block 512 efficiency {} must be below 0.465",
        check.efficiency_block_512
    );
    assert!(
        check.efficiency_block_16384 > check.gordon_bell_efficiency,
        "block 16384 efficiency {} must be above 0.465",
        check.efficiency_block_16384
    );
    // Sustained Tflops are consistent with their own efficiencies.
    let r512 = check.sustained_tflops_block_512 / check.peak_tflops;
    assert!((r512 - check.efficiency_block_512).abs() < 1e-12);
}

#[test]
fn report_json_schema_is_stable() {
    // Top-level and per-workload key sets are part of the harness contract:
    // downstream tooling parses BENCH_report.json by name.
    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        git_sha: "test".to_string(),
        workloads: vec![],
        thread_scaling: vec![],
        kernel_microbench: vec![],
        host_phase: vec![],
        service_latency: Some(service_latency_fixture()),
        hybrid: Some(hybrid_fixture()),
        paper_check: PaperCheck::sc2002(),
    };
    let v = serde_json::to_value(&report).unwrap();
    let obj = v.as_object().unwrap();
    let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "schema_version",
            "git_sha",
            "workloads",
            "thread_scaling",
            "kernel_microbench",
            "host_phase",
            "service_latency",
            "hybrid",
            "paper_check"
        ]
    );
    let pc = v.get("paper_check").unwrap().as_object().unwrap();
    let pc_keys: Vec<&str> = pc.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        pc_keys,
        [
            "peak_tflops",
            "gordon_bell_efficiency",
            "sustained_tflops_block_512",
            "sustained_tflops_block_16384",
            "efficiency_block_512",
            "efficiency_block_16384",
        ]
    );
}

#[test]
fn thread_scaling_schema_is_stable() {
    assert_eq!(SCALING_THREADS, [1, 2, 4]);
    let entry = ThreadScalingEntry {
        threads: 1,
        force_seconds: 0.5,
        total_host_seconds: 1.0,
        interactions: 10,
        block_steps: 2,
        speedup_force_vs_1: 1.0,
    };
    let result = ThreadScalingResult { id: "w".to_string(), entries: vec![entry] };
    let v = serde_json::to_value(&result).unwrap();
    let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["id", "entries"]);
    let e = v.get("entries").unwrap().as_array().unwrap()[0].clone();
    let e_keys: Vec<&str> = e.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        e_keys,
        [
            "threads",
            "force_seconds",
            "total_host_seconds",
            "interactions",
            "block_steps",
            "speedup_force_vs_1",
        ]
    );
}

#[test]
fn kernel_microbench_schema_is_stable() {
    let k = KernelRate {
        kernel: "direct".to_string(),
        lane_width: "w8".to_string(),
        n_bodies: 10,
        block: 10,
        interactions: 100,
        wall_seconds: 0.5,
        interactions_per_second_real: 200.0,
        speedup_vs_scalar: 2.0,
    };
    let v = serde_json::to_value(&k).unwrap();
    let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "kernel",
            "lane_width",
            "n_bodies",
            "block",
            "interactions",
            "wall_seconds",
            "interactions_per_second_real",
            "speedup_vs_scalar",
        ]
    );
}

#[test]
fn service_latency_schema_is_stable() {
    let v = serde_json::to_value(&service_latency_fixture()).unwrap();
    let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "jobs",
            "tenants",
            "clients",
            "workers",
            "slice_blocks",
            "unique_specs",
            "duplicate_jobs",
            "duplicate_hits",
            "completed",
            "failed",
            "cache_hits",
            "coalesced",
            "cache_hit_rate",
            "preemptions",
            "block_steps",
            "dup_groups_verified",
            "fresh_verified",
            "p50_ms",
            "p99_ms",
            "mean_ms",
            "max_ms",
            "wall_seconds",
            "jobs_per_second",
        ]
    );
}

#[test]
fn hybrid_schema_is_stable() {
    let v = serde_json::to_value(&hybrid_fixture()).unwrap();
    let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "n_bodies",
            "theta",
            "r_near",
            "sweeps",
            "near_interactions",
            "far_interactions",
            "hybrid_interactions",
            "direct_interactions",
            "hybrid_wall_seconds",
            "direct_wall_seconds",
            "hybrid_interactions_per_second",
            "direct_interactions_per_second",
            "speedup_vs_direct",
        ]
    );
}

#[test]
fn workload_set_is_the_documented_quintet() {
    let ids: Vec<&str> = standard_workloads().iter().map(|s| s.id).collect();
    assert_eq!(
        ids,
        ["small_disk_direct", "grape6_node", "tree_baseline", "grape6_ft_faulty", "hybrid_disk"]
    );
    for s in standard_workloads() {
        assert!(s.t_end > 0.0);
        assert!(s.n >= 64, "workloads must be non-trivial");
    }
}
