//! The `bench_compare` regression gate, end to end: an identical fresh
//! report passes, and a doctored report whose lane kernel slowed beyond
//! the tolerance budget fails with a nonzero exit status.

#![forbid(unsafe_code)]

use grape6_bench::report::{
    run_host_phase_bench, run_kernel_microbench, run_thread_scaling, run_workload, BenchReport,
    EngineKind, PaperCheck, WorkloadSpec, SCHEMA_VERSION,
};
use std::path::{Path, PathBuf};
use std::process::Command;

/// A miniature but schema-complete report (one small workload, one
/// microbench repetition) — bench_compare sees the same shape as the
/// shipped baseline.
fn mini_report() -> BenchReport {
    let spec = WorkloadSpec { id: "mini", n: 32, seed: 7, t_end: 0.25, engine: EngineKind::Direct };
    BenchReport {
        schema_version: SCHEMA_VERSION,
        git_sha: "test".to_string(),
        workloads: vec![run_workload(&spec)],
        thread_scaling: vec![run_thread_scaling(&spec)],
        kernel_microbench: run_kernel_microbench(48, 32, 1),
        host_phase: run_host_phase_bench(&[32], 8),
        paper_check: PaperCheck::sc2002(),
    }
}

fn write_json(dir: &Path, name: &str, report: &BenchReport) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, serde_json::to_string_pretty(report).unwrap()).unwrap();
    path
}

fn run_compare(baseline: &Path, fresh: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg("--baseline")
        .arg(baseline)
        .arg("--fresh")
        .arg(fresh)
        .output()
        .expect("run bench_compare");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn kernel_rate_regression_fails_and_identical_report_passes() {
    let report = mini_report();
    let dir = std::env::temp_dir().join(format!("g6-bench-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = write_json(&dir, "baseline.json", &report);

    // Identical fresh report: every counter matches, every rate ratio is
    // exactly 1.0 — the gate must pass.
    let fresh_ok = write_json(&dir, "fresh_ok.json", &report);
    let (ok, stdout) = run_compare(&baseline, &fresh_ok);
    assert!(ok, "identical reports must pass the gate:\n{stdout}");

    // Simulated kernel regression: the W=8 direct kernel runs at half its
    // baseline rate (wall clock doubled, counters untouched). That is far
    // outside the 15 % default budget and must fail the gate.
    let mut doctored = report.clone();
    let row = doctored
        .kernel_microbench
        .iter_mut()
        .find(|r| r.kernel == "direct" && r.lane_width == "w8")
        .expect("microbench has a direct/w8 row");
    row.wall_seconds *= 2.0;
    row.interactions_per_second_real /= 2.0;
    row.speedup_vs_scalar /= 2.0;
    let fresh_bad = write_json(&dir, "fresh_bad.json", &doctored);
    let (ok, stdout) = run_compare(&baseline, &fresh_bad);
    assert!(!ok, "a 2x kernel slowdown must fail the gate:\n{stdout}");
    assert!(
        stdout.contains("direct/w8") && stdout.contains("FAIL"),
        "failure must name the regressed kernel row:\n{stdout}"
    );

    // A missing kernel row is also a failure (a width silently dropped
    // from the microbench is itself a regression).
    let mut dropped = report.clone();
    dropped.kernel_microbench.retain(|r| r.lane_width != "w4");
    let fresh_dropped = write_json(&dir, "fresh_dropped.json", &dropped);
    let (ok, stdout) = run_compare(&baseline, &fresh_dropped);
    assert!(!ok, "dropping a lane width from the microbench must fail:\n{stdout}");
    assert!(stdout.contains("MISSING"), "missing-row diagnostic expected:\n{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}
