//! The `bench_compare` regression gate, end to end: an identical fresh
//! report passes, and a doctored report whose lane kernel slowed beyond
//! the tolerance budget fails with a nonzero exit status.

#![forbid(unsafe_code)]

use grape6_bench::loadgen::ServiceLatencyResult;
use grape6_bench::report::{
    run_host_phase_bench, run_hybrid_bench, run_kernel_microbench, run_thread_scaling,
    run_workload, BenchReport, EngineKind, PaperCheck, WorkloadSpec, SCHEMA_VERSION,
};
use std::path::{Path, PathBuf};
use std::process::Command;

/// A miniature but schema-complete report (one small workload, one
/// microbench repetition, a hand-built service section with a baseline
/// p99 safely above the 1 ms noise floor) — bench_compare sees the same
/// shape as the shipped baseline.
fn mini_report() -> BenchReport {
    let spec = WorkloadSpec { id: "mini", n: 32, seed: 7, t_end: 0.25, engine: EngineKind::Direct };
    BenchReport {
        schema_version: SCHEMA_VERSION,
        git_sha: "test".to_string(),
        workloads: vec![run_workload(&spec)],
        thread_scaling: vec![run_thread_scaling(&spec)],
        kernel_microbench: run_kernel_microbench(48, 32, 1),
        host_phase: run_host_phase_bench(&[32], 8),
        service_latency: Some(ServiceLatencyResult {
            jobs: 64,
            tenants: 2,
            clients: 4,
            workers: 2,
            slice_blocks: 16,
            unique_specs: 24,
            duplicate_jobs: 40,
            duplicate_hits: 40,
            completed: 64,
            failed: 0,
            cache_hits: 30,
            coalesced: 10,
            cache_hit_rate: 40.0 / 64.0,
            preemptions: 12,
            block_steps: 4096,
            dup_groups_verified: 20,
            fresh_verified: 2,
            p50_ms: 12.0,
            p99_ms: 80.0,
            mean_ms: 18.0,
            max_ms: 95.0,
            wall_seconds: 1.5,
            jobs_per_second: 64.0 / 1.5,
        }),
        hybrid: Some(run_hybrid_bench(48, 7, 0.5, 3.0, 1)),
        paper_check: PaperCheck::sc2002(),
    }
}

/// The service section of a mini report (always present there).
fn svc(report: &mut BenchReport) -> &mut ServiceLatencyResult {
    report.service_latency.as_mut().expect("mini report carries a service section")
}

fn write_json(dir: &Path, name: &str, report: &BenchReport) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, serde_json::to_string_pretty(report).unwrap()).unwrap();
    path
}

fn run_compare(baseline: &Path, fresh: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg("--baseline")
        .arg(baseline)
        .arg("--fresh")
        .arg(fresh)
        .output()
        .expect("run bench_compare");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn kernel_rate_regression_fails_and_identical_report_passes() {
    let report = mini_report();
    let dir = std::env::temp_dir().join(format!("g6-bench-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = write_json(&dir, "baseline.json", &report);

    // Identical fresh report: every counter matches, every rate ratio is
    // exactly 1.0 — the gate must pass.
    let fresh_ok = write_json(&dir, "fresh_ok.json", &report);
    let (ok, stdout) = run_compare(&baseline, &fresh_ok);
    assert!(ok, "identical reports must pass the gate:\n{stdout}");

    // Simulated kernel regression: the W=8 direct kernel runs at half its
    // baseline rate (wall clock doubled, counters untouched). That is far
    // outside the 15 % default budget and must fail the gate.
    let mut doctored = report.clone();
    let row = doctored
        .kernel_microbench
        .iter_mut()
        .find(|r| r.kernel == "direct" && r.lane_width == "w8")
        .expect("microbench has a direct/w8 row");
    row.wall_seconds *= 2.0;
    row.interactions_per_second_real /= 2.0;
    row.speedup_vs_scalar /= 2.0;
    let fresh_bad = write_json(&dir, "fresh_bad.json", &doctored);
    let (ok, stdout) = run_compare(&baseline, &fresh_bad);
    assert!(!ok, "a 2x kernel slowdown must fail the gate:\n{stdout}");
    assert!(
        stdout.contains("direct/w8") && stdout.contains("FAIL"),
        "failure must name the regressed kernel row:\n{stdout}"
    );

    // A missing kernel row is also a failure (a width silently dropped
    // from the microbench is itself a regression).
    let mut dropped = report.clone();
    dropped.kernel_microbench.retain(|r| r.lane_width != "w4");
    let fresh_dropped = write_json(&dir, "fresh_dropped.json", &dropped);
    let (ok, stdout) = run_compare(&baseline, &fresh_dropped);
    assert!(!ok, "dropping a lane width from the microbench must fail:\n{stdout}");
    assert!(stdout.contains("MISSING"), "missing-row diagnostic expected:\n{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn service_latency_regression_fails_and_noise_passes() {
    let report = mini_report();
    let dir = std::env::temp_dir().join(format!("g6-svc-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = write_json(&dir, "baseline.json", &report);

    // A p99 wobble inside the 4x-tolerance budget (default 15 % wall
    // tolerance → 60 % latency budget; closed-loop tails are queueing
    // noise) must pass, as must interleaving-dependent drift in the ungated
    // preemption count and cache-hit/coalesced split.
    let mut noisy = report.clone();
    svc(&mut noisy).p99_ms *= 1.50;
    svc(&mut noisy).p50_ms *= 0.90;
    svc(&mut noisy).preemptions = 99;
    svc(&mut noisy).cache_hits = 25;
    svc(&mut noisy).coalesced = 15;
    let fresh_noisy = write_json(&dir, "fresh_noisy.json", &noisy);
    let (ok, stdout) = run_compare(&baseline, &fresh_noisy);
    assert!(ok, "p99 within the latency budget must pass the gate:\n{stdout}");

    // Doctored p99 regression: submit-to-complete tail latency triples.
    // That is far beyond the 60 % budget and must fail the gate, naming the
    // service row.
    let mut doctored = report.clone();
    svc(&mut doctored).p99_ms *= 3.0;
    let fresh_bad = write_json(&dir, "fresh_bad.json", &doctored);
    let (ok, stdout) = run_compare(&baseline, &fresh_bad);
    assert!(!ok, "a 3x p99 latency regression must fail the gate:\n{stdout}");
    assert!(
        stdout.contains("service") && stdout.contains("p99_ms") && stdout.contains("FAIL"),
        "failure must name the service p99 row:\n{stdout}"
    );

    // A lost job is an exact-counter failure regardless of latency: the
    // completed count is deterministic, so any shortfall fails.
    let mut lost = report.clone();
    svc(&mut lost).completed -= 1;
    svc(&mut lost).failed += 1;
    let fresh_lost = write_json(&dir, "fresh_lost.json", &lost);
    let (ok, stdout) = run_compare(&baseline, &fresh_lost);
    assert!(!ok, "a lost job must fail the exact counter gate:\n{stdout}");
    assert!(
        stdout.contains("completed") && stdout.contains("FAIL"),
        "failure must name the completed counter:\n{stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hybrid_counter_drift_fails_and_rate_gates_slowdown_only() {
    let report = mini_report();
    let dir = std::env::temp_dir().join(format!("g6-hybrid-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = write_json(&dir, "baseline.json", &report);

    // The near/far split is exact walk output: a single drifted near
    // interaction means the tree, the MAC, or the neighbour criterion
    // changed, and must fail in either direction.
    let mut drifted = report.clone();
    {
        let h = drifted.hybrid.as_mut().expect("mini report carries a hybrid section");
        h.near_interactions += 1;
        h.hybrid_interactions += 1;
    }
    let fresh_drift = write_json(&dir, "fresh_drift.json", &drifted);
    let (ok, stdout) = run_compare(&baseline, &fresh_drift);
    assert!(!ok, "a drifted near counter must fail the gate:\n{stdout}");
    assert!(
        stdout.contains("near_inter") && stdout.contains("FAIL"),
        "failure must name the drifted hybrid counter:\n{stdout}"
    );

    // Rates gate slowdown-only: a 2x faster hybrid sweep passes, a 2x
    // slower one fails.
    let mut faster = report.clone();
    faster.hybrid.as_mut().unwrap().hybrid_interactions_per_second *= 2.0;
    let fresh_fast = write_json(&dir, "fresh_fast.json", &faster);
    let (ok, stdout) = run_compare(&baseline, &fresh_fast);
    assert!(ok, "a faster hybrid sweep must pass the gate:\n{stdout}");

    let mut slower = report.clone();
    slower.hybrid.as_mut().unwrap().hybrid_interactions_per_second /= 2.0;
    let fresh_slow = write_json(&dir, "fresh_slow.json", &slower);
    let (ok, stdout) = run_compare(&baseline, &fresh_slow);
    assert!(!ok, "a 2x hybrid sweep slowdown must fail the gate:\n{stdout}");
    assert!(stdout.contains("hybrid/sweep") && stdout.contains("FAIL"));

    // A dropped hybrid section must not read as a pass.
    let mut gone = report.clone();
    gone.hybrid = None;
    let fresh_gone = write_json(&dir, "fresh_gone.json", &gone);
    let (ok, stdout) = run_compare(&baseline, &fresh_gone);
    assert!(!ok, "a dropped hybrid section must fail the gate:\n{stdout}");
    assert!(stdout.contains("MISSING hybrid section"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_service_section_fails_with_a_named_row() {
    let report = mini_report();
    let dir = std::env::temp_dir().join(format!("g6-svc-missing-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = write_json(&dir, "baseline.json", &report);

    // A fresh report with the service_latency key deleted outright — the
    // shape an older bench_report (or a misconfigured run that skipped the
    // load generator) would produce. `#[serde(default)]` keeps the parse
    // alive so the gate can name the dropped section instead of dying on a
    // deserialization error.
    let mut v = serde_json::to_value(&report).unwrap();
    match &mut v {
        serde_json::Value::Object(fields) => {
            let before = fields.len();
            fields.retain(|(k, _)| k != "service_latency");
            assert_eq!(fields.len(), before - 1, "key present in mini report");
        }
        other => panic!("report serializes to an object, got {}", other.kind()),
    }
    struct Raw(serde_json::Value);
    impl serde::Serialize for Raw {
        fn serialize_value(&self) -> serde_json::Value {
            self.0.clone()
        }
    }
    let fresh_path = dir.join("fresh_missing.json");
    std::fs::write(&fresh_path, serde_json::to_string_pretty(&Raw(v)).unwrap()).unwrap();

    let (ok, stdout) = run_compare(&baseline, &fresh_path);
    assert!(!ok, "a missing service_latency section must fail the gate:\n{stdout}");
    assert!(
        stdout.contains("MISSING") && stdout.contains("service_latency"),
        "failure must name the dropped section:\n{stdout}"
    );
    // The compared schema versions are printed before any verdict, so a
    // version skew is visible in the same log as the failure it explains.
    assert!(stdout.contains("schema v"), "schema versions must be printed:\n{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}
