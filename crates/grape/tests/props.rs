//! Property-based tests on the hardware formats and pipelines.

use grape6_core::force::pair_force_jerk;
use grape6_core::vec3::Vec3;
use grape6_hw::format::{
    round_mantissa, round_mantissa_lanes, FixedAccumulator, FixedPointFormat, Precision,
    VecAccumulator,
};
use grape6_hw::pipeline::{pipeline_interaction, PipelineRegisters};
use grape6_hw::predictor::{predict_j, JParticle};
use proptest::prelude::*;

proptest! {
    // ---------- mantissa rounding ----------

    #[test]
    fn round_mantissa_relative_error_bound(x in -1e20..1e20f64, bits in 8u32..53) {
        prop_assume!(x != 0.0);
        let r = round_mantissa(x, bits);
        prop_assert!(((r - x) / x).abs() <= 2.0f64.powi(-(bits as i32)));
    }

    #[test]
    fn round_mantissa_is_idempotent(x in -1e10..1e10f64, bits in 8u32..53) {
        let r = round_mantissa(x, bits);
        prop_assert_eq!(round_mantissa(r, bits), r);
    }

    #[test]
    fn round_mantissa_is_monotone(a in -1e6..1e6f64, b in -1e6..1e6f64, bits in 8u32..53) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(round_mantissa(lo, bits) <= round_mantissa(hi, bits));
    }

    #[test]
    fn round_mantissa_24_equals_f32_rounding(x in -1e30..1e30f64) {
        // Where f32 doesn't overflow/underflow, 24-bit rounding = f32 cast.
        prop_assume!(x.abs() > 1e-30);
        let r = round_mantissa(x, 24);
        prop_assert_eq!(r, r as f32 as f64);
    }

    // ---------- fixed-point positions ----------

    #[test]
    fn fixed_roundtrip_within_half_ulp(x in -500.0..500.0f64) {
        let f = FixedPointFormat::default();
        prop_assert!((f.decode(f.encode(x)) - x).abs() <= f.resolution() / 2.0 + 1e-300);
    }

    #[test]
    fn fixed_subtraction_exact(a in -250.0..250.0f64, b in -250.0..250.0f64) {
        // (a ⊖ b) in the integer domain equals decode(a) − decode(b) exactly
        // whenever the difference is representable (|a − b| ≤ 500 < 512 AU
        // range; beyond that the hardware wraps, as two's complement does).
        let f = FixedPointFormat::default();
        let qa = f.encode(a);
        let qb = f.encode(b);
        let diff = f.decode(qa.wrapping_sub(qb));
        prop_assert_eq!(diff, f.decode(qa) - f.decode(qb));
    }

    #[test]
    fn fixed_encode_is_monotone(a in -400.0..400.0f64, b in -400.0..400.0f64) {
        let f = FixedPointFormat::default();
        if a <= b {
            prop_assert!(f.encode(a) <= f.encode(b));
        }
    }

    // ---------- fixed-point accumulation ----------

    #[test]
    fn accumulator_permutation_invariant(xs in prop::collection::vec(-1e-3..1e-3f64, 1..200), rot in 0usize..200) {
        let mut fwd = FixedAccumulator::new();
        for &x in &xs { fwd.add(x); }
        let k = rot % xs.len();
        let mut rotated = FixedAccumulator::new();
        for &x in xs[k..].iter().chain(xs[..k].iter()) { rotated.add(x); }
        prop_assert_eq!(fwd, rotated);
    }

    #[test]
    fn accumulator_split_merge_invariant(xs in prop::collection::vec(-1.0..1.0f64, 2..128), split in 1usize..127) {
        let s = split.min(xs.len() - 1);
        let mut whole = VecAccumulator::new();
        for &x in &xs { whole.add(Vec3::splat(x)); }
        let mut a = VecAccumulator::new();
        let mut b = VecAccumulator::new();
        for &x in &xs[..s] { a.add(Vec3::splat(x)); }
        for &x in &xs[s..] { b.add(Vec3::splat(x)); }
        a.merge(b);
        prop_assert_eq!(whole.to_vec3(), a.to_vec3());
    }

    // ---------- pipeline vs reference kernel ----------

    #[test]
    fn pipeline_tracks_reference_within_word_precision(
        xi in -40.0..40.0f64, yi in -40.0..40.0f64,
        xj in -40.0..40.0f64, yj in -40.0..40.0f64,
        vx in -0.5..0.5f64, vy in -0.5..0.5f64,
        m in 1e-10..1e-4f64,
    ) {
        let f = FixedPointFormat::default();
        let pi = Vec3::new(xi, yi, 0.1);
        let pj = Vec3::new(xj, yj, -0.2);
        prop_assume!((pj - pi).norm() > 1e-2);
        let vi = Vec3::new(vx, vy, 0.0);
        let vj = Vec3::new(-vy, vx, 0.01);
        let eps2 = 0.008 * 0.008;
        let (a_hw, j_hw, p_hw) = pipeline_interaction(
            &f, Precision::grape6(), f.encode_vec(pi), f.encode_vec(pj), vi, vj, m, eps2,
        );
        let (a, j, p) = pair_force_jerk(pj - pi, vj - vi, m, eps2);
        prop_assert!((a_hw - a).norm() <= 1e-5 * a.norm().max(1e-300), "acc err");
        prop_assert!((j_hw - j).norm() <= 1e-4 * j.norm() + 1e-6 * a.norm(), "jerk err");
        prop_assert!((p_hw - p).abs() <= 1e-5 * p.abs(), "pot err");
    }

    #[test]
    fn register_reduction_bit_exact_under_any_partition(
        n in 2usize..40,
        parts in 2usize..6,
        seed in 0u64..500,
    ) {
        let f = FixedPointFormat::default();
        let prec = Precision::grape6();
        let eps2 = 1e-4;
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let xi = f.encode_vec(Vec3::new(20.0, 0.0, 0.0));
        let vi = Vec3::new(0.0, 0.2, 0.0);
        let js: Vec<(Vec3, Vec3, f64)> = (0..n)
            .map(|_| (
                Vec3::new(20.0 + rnd() * 5.0, rnd() * 5.0, rnd()),
                Vec3::new(rnd() * 0.1, 0.2 + rnd() * 0.1, 0.0),
                1e-9 * (1.0 + rnd().abs()),
            ))
            .collect();
        let mut whole = PipelineRegisters::new();
        for (pj, vj, mj) in &js {
            whole.accumulate(&f, prec, xi, f.encode_vec(*pj), vi, *vj, *mj, eps2);
        }
        let mut split = vec![PipelineRegisters::new(); parts];
        for (k, (pj, vj, mj)) in js.iter().enumerate() {
            split[k % parts].accumulate(&f, prec, xi, f.encode_vec(*pj), vi, *vj, *mj, eps2);
        }
        let mut merged = PipelineRegisters::new();
        for r in &split {
            merged.merge(r);
        }
        prop_assert_eq!(whole.read().0, merged.read().0);
        prop_assert_eq!(whole.read().2, merged.read().2);
    }

    // ---------- predictor ----------

    #[test]
    fn predictor_matches_host_polynomial_in_exact_mode(
        x in -40.0..40.0f64,
        v in -0.5..0.5f64,
        a in -1e-3..1e-3f64,
        jk in -1e-5..1e-5f64,
        t0 in 0.0..10.0f64,
        dt in 0.0..4.0f64,
    ) {
        let f = FixedPointFormat::default();
        let jp = JParticle::encode(
            &f, Precision::Exact,
            Vec3::new(x, 1.0, -1.0),
            Vec3::new(v, -v, 0.1),
            Vec3::new(a, a, 0.0),
            Vec3::new(jk, 0.0, jk),
            1e-9,
            t0,
        );
        let pred = predict_j(&f, Precision::Exact, &jp, t0 + dt);
        let expect = f.decode_vec(jp.qpos)
            + jp.vel * dt + jp.acc * (dt * dt / 2.0) + jp.jerk * (dt * dt * dt / 6.0);
        let got = f.decode_vec(pred.qpos);
        prop_assert!((got - expect).norm() <= 1e-12 * expect.norm().max(1.0));
    }
}

// ---------------------------------------------------------------------------
// The documented half-ulp bounds ARE the conformance oracle's constants:
// `rel_half_ulp`, `FixedPointFormat::half_ulp` and `accum_quantum` feed the
// tolerance budget in `grape6-conformance`. These properties pin the format
// implementations to exactly those exported bounds, so the oracle can never
// silently drift away from the arithmetic it models.
// ---------------------------------------------------------------------------

use grape6_hw::format::{accum_quantum, rel_half_ulp};

proptest! {
    #[test]
    fn round_mantissa_error_never_exceeds_rel_half_ulp(
        x in -1e30..1e30f64,
        bits in 8u32..54,
    ) {
        prop_assume!(x != 0.0);
        let r = round_mantissa(x, bits);
        prop_assert!(
            (r - x).abs() <= rel_half_ulp(bits) * x.abs(),
            "x = {x:e}, bits = {bits}: error {:e} > bound {:e}",
            (r - x).abs(),
            rel_half_ulp(bits) * x.abs()
        );
    }

    #[test]
    fn rel_half_ulp_is_tight_for_the_pipeline_word(x in 1.0..2.0f64) {
        // Not just an upper bound: some inputs in every binade reach at
        // least half of it (round-to-nearest achieves u/2 .. u).
        let bits = 24u32;
        let worst = (0..64)
            .map(|k| {
                let y = x + k as f64 * 2.0f64.powi(-30);
                (round_mantissa(y, bits) - y).abs() / y
            })
            .fold(0.0f64, f64::max);
        prop_assert!(worst >= rel_half_ulp(bits) / 4.0, "bound is vacuously loose: {worst:e}");
    }

    #[test]
    fn fixed_roundtrip_error_never_exceeds_half_ulp(x in -511.0..511.0f64) {
        let f = FixedPointFormat::default();
        let err = (f.decode(f.encode(x)) - x).abs();
        prop_assert!(err <= f.half_ulp(), "x = {x}: {err:e} > {:e}", f.half_ulp());
    }

    #[test]
    fn accumulator_roundtrip_error_never_exceeds_quantum(x in -1e-3..1e-3f64) {
        // One add into the wide accumulator quantizes by at most one grid
        // step (the conformance oracle charges `accum_quantum` per partial).
        let mut acc = FixedAccumulator::new();
        acc.add(x);
        prop_assert!((acc.to_f64() - x).abs() <= accum_quantum());
    }

    // ---------- lane-parallel rounding vs the scalar reference ----------

    #[test]
    fn round_lanes_match_scalar_on_raw_bit_patterns(
        raw in prop::collection::vec(0u64..u64::MAX, 8),
        bits in 1u32..60,
    ) {
        // Arbitrary bit patterns cover every class at once: normals,
        // subnormals, ±0, ±∞, and NaNs with arbitrary payloads. The lane
        // kernel must reproduce the scalar routine bit for bit on all of
        // them (including NaN payload and −0.0 sign preservation).
        let mut xs = [0.0f64; 8];
        for k in 0..8 {
            xs[k] = f64::from_bits(raw[k]);
        }
        let w8 = round_mantissa_lanes::<8>(xs, bits);
        for k in 0..8 {
            let want = round_mantissa(xs[k], bits).to_bits();
            prop_assert_eq!(
                w8[k].to_bits(), want,
                "W=8 lane {}: x = {:e} ({:#018x}), bits = {}", k, xs[k], raw[k], bits
            );
        }
        let w4a = round_mantissa_lanes::<4>([xs[0], xs[1], xs[2], xs[3]], bits);
        let w4b = round_mantissa_lanes::<4>([xs[4], xs[5], xs[6], xs[7]], bits);
        for k in 0..4 {
            prop_assert_eq!(w4a[k].to_bits(), round_mantissa(xs[k], bits).to_bits());
            prop_assert_eq!(w4b[k].to_bits(), round_mantissa(xs[k + 4], bits).to_bits());
        }
    }

    #[test]
    fn round_lanes_match_scalar_on_subnormals(
        raw in prop::collection::vec(0u64..u64::MAX, 4),
        bits in 1u32..53,
    ) {
        // Force the biased exponent to zero: every lane is a subnormal (or
        // ±0), the regime where the integer round-up can carry into the
        // exponent field and promote to the smallest normal.
        let mut xs = [0.0f64; 4];
        for k in 0..4 {
            xs[k] = f64::from_bits(raw[k] & 0x800F_FFFF_FFFF_FFFF);
        }
        let got = round_mantissa_lanes::<4>(xs, bits);
        for k in 0..4 {
            let want = round_mantissa(xs[k], bits).to_bits();
            prop_assert_eq!(
                got[k].to_bits(), want,
                "subnormal lane {}: x = {:e}, bits = {}", k, xs[k], bits
            );
        }
    }

    #[test]
    fn exact_precision_rounds_nothing(x in -1e15..1e15f64) {
        // `Precision::Exact` is mantissa_bits ≥ 53, where the oracle's
        // relative half-ulp collapses to the f64 epsilon and rounding is
        // the identity.
        prop_assert_eq!(round_mantissa(x, Precision::Exact.mantissa_bits()), x);
        prop_assert_eq!(rel_half_ulp(Precision::Exact.mantissa_bits()), 2.0f64.powi(-53));
    }
}

#[test]
fn round_lanes_edge_cases_bit_exact() {
    // The specific values the lane kernel's per-lane selects exist for:
    // signed zeros (sign bit must survive), infinities and NaNs (payload
    // must survive), subnormals at both ends, and exact round-to-even ties.
    let edges: [f64; 8] = [
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::from_bits(0x7FF8_0000_DEAD_BEEF), // NaN with a payload
        5e-324,                                // smallest positive subnormal
        -f64::MIN_POSITIVE,                    // largest-magnitude negative normal boundary
        f64::MAX,
    ];
    for bits in [1u32, 8, 24, 45, 52, 53, 60] {
        let got = round_mantissa_lanes::<8>(edges, bits);
        for k in 0..8 {
            assert_eq!(
                got[k].to_bits(),
                round_mantissa(edges[k], bits).to_bits(),
                "edge lane {k}: x = {:e}, bits = {bits}",
                edges[k]
            );
        }
    }
    // Exact ties: mantissa fraction exactly half an ulp of the short word,
    // one with an even target mantissa (stays) and one odd (rounds up).
    for bits in [8u32, 24, 52] {
        let shift = 53 - bits;
        let even = f64::from_bits((0x3FF0_0000_0000_0000u64) | (1u64 << (shift - 1)));
        let odd =
            f64::from_bits((0x3FF0_0000_0000_0000u64 | (1u64 << shift)) | (1u64 << (shift - 1)));
        let ties = [even, odd, -even, -odd];
        let got = round_mantissa_lanes::<4>(ties, bits);
        for k in 0..4 {
            assert_eq!(
                got[k].to_bits(),
                round_mantissa(ties[k], bits).to_bits(),
                "tie lane {k}: x = {:e}, bits = {bits}",
                ties[k]
            );
        }
    }
}
