//! `Grape6Engine`: the full machine as a [`ForceEngine`].
//!
//! Functionally it computes exactly what the hardware computes — fixed-point
//! position subtraction, short-mantissa pipeline arithmetic, wide fixed-point
//! accumulation, on-device prediction — while a [`HardwareClock`] records how
//! long the modeled 2048-chip installation would have taken for every call.
//!
//! One simplification keeps memory sane: all 16 nodes of the real machine
//! hold *identical* j-memories (that is the entire point of the NB data-
//! exchange network, §4.3), and the fixed-point reduction is exactly
//! associative, so simulating a single shared j-memory produces bit-identical
//! forces to simulating all 2048 chip memories separately. The per-chip
//! partitioning enters only through the (analytic) timing model.

use crate::chip::HwIParticle;
use crate::format::{FixedPointFormat, Precision};
use crate::lanes::{partial_to_force, GrapeLaneTile, SweepPartial};
use crate::perf::HardwareClock;
use crate::pipeline::PipelineRegisters;
use crate::predictor::{predict_j, JParticle, PredictedJ};
use crate::timing::TimingModel;
use grape6_core::engine::ForceEngine;
use grape6_core::lanes::LaneWidth;
use grape6_core::particle::{ForceResult, IParticle, Neighbor, ParticleSystem};
use grape6_core::sweep::{chunked_jsweep, j_chunk_size, SMALL_BLOCK_MAX};
use rayon::prelude::*;

/// Sweep every predicted j-particle for up to `W` i-particles through one
/// AoSoA lane tile (large-block path) and read the results out, including
/// the host-side self-potential correction.
// grape6-lint: hot
fn sweep_group_lanes<const W: usize>(
    fmt: &FixedPointFormat,
    precision: Precision,
    os: &mut [ForceResult],
    ips: &[IParticle],
    pred: &[PredictedJ],
    jmem: &[JParticle],
    eps2: f64,
) {
    let fresh = [SweepPartial::default(); W];
    let mut tile = GrapeLaneTile::<W>::load(fmt, precision, ips, &fresh[..ips.len()]);
    for (j, pj) in pred.iter().enumerate() {
        tile.interact(fmt, precision, j, pj, eps2);
    }
    let mut parts = [SweepPartial::default(); W];
    tile.store(&mut parts[..ips.len()]);
    for ((o, p), ip) in os.iter_mut().zip(&parts).zip(ips) {
        let m = (ip.index < jmem.len()).then(|| jmem[ip.index].mass);
        *o = partial_to_force(p, m, eps2);
    }
}

/// One j-chunk of the small-block sweep through the AoSoA lane kernel:
/// groups of `W` i-particles share a tile, each group predicting the
/// chunk's j-particles on the fly (prediction is a pure function of
/// `(j, t)`, so re-evaluating it per group cannot change any bit).
#[allow(clippy::too_many_arguments)]
// grape6-lint: hot
fn small_fill_lanes<const W: usize>(
    fmt: &FixedPointFormat,
    precision: Precision,
    js: std::ops::Range<usize>,
    row: &mut [SweepPartial],
    ips: &[IParticle],
    jmem: &[JParticle],
    t: f64,
    eps2: f64,
) {
    for (rs, is) in row.chunks_mut(W).zip(ips.chunks(W)) {
        let mut tile = GrapeLaneTile::<W>::load(fmt, precision, is, rs);
        for j in js.clone() {
            let pj = predict_j(fmt, precision, &jmem[j], t);
            tile.interact(fmt, precision, j, &pj, eps2);
        }
        tile.store(rs);
    }
}

/// Configuration of a simulated GRAPE-6 installation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grape6Config {
    /// Timing model (geometry, links, host costs).
    pub timing: TimingModel,
    /// Position format.
    pub format: FixedPointFormat,
    /// Pipeline arithmetic emulation.
    pub precision: Precision,
    /// Refuse particle sets that exceed one node's j-memory (on by default;
    /// the real machine simply cannot run them).
    pub enforce_memory_limit: bool,
    /// Lane width of the host-side pipeline emulation kernels (the virtual
    /// multiple pipelines of §5.2). Bitwise-neutral: every width produces
    /// identical output bits; only throughput changes.
    pub lanes: LaneWidth,
}

impl Grape6Config {
    /// The SC2002 production machine with hardware-faithful arithmetic.
    pub fn sc2002() -> Self {
        Self {
            timing: TimingModel::sc2002(),
            format: FixedPointFormat::default(),
            precision: Precision::grape6(),
            enforce_memory_limit: true,
            lanes: LaneWidth::default(),
        }
    }

    /// The production machine with exact arithmetic (isolates algorithmic
    /// error from hardware arithmetic in experiment E9).
    pub fn sc2002_exact() -> Self {
        Self { precision: Precision::Exact, ..Self::sc2002() }
    }

    /// Single-host development box.
    pub fn single_host() -> Self {
        Self { timing: TimingModel::single_host(), ..Self::sc2002() }
    }
}

/// The GRAPE-6 machine as a force engine.
#[derive(Debug, Clone)]
pub struct Grape6Engine {
    /// Configuration.
    pub config: Grape6Config,
    jmem: Vec<JParticle>,
    eps2: f64,
    clock: HardwareClock,
    interactions: u64,
    // Bytes across the host interface, charged at the wire-format packet
    // sizes (i-particles up, forces down, j-particles on every write-back).
    wire_bytes: u64,
    // Predicted j-particles, refreshed per compute call (large blocks).
    pred: Vec<crate::predictor::PredictedJ>,
    // Per-chunk partial rows of the small-block sweep (capacity reused).
    partials: Vec<SweepPartial>,
    // Encoded i-particles of the current small block (capacity reused).
    hws: Vec<HwIParticle>,
    // Merged sweep results of the current small block (capacity reused).
    swept: Vec<SweepPartial>,
}

impl Grape6Engine {
    /// Build an engine for the given machine configuration.
    pub fn new(config: Grape6Config) -> Self {
        Self {
            config,
            jmem: Vec::new(),
            eps2: 0.0,
            clock: HardwareClock::new(),
            interactions: 0,
            wire_bytes: 0,
            pred: Vec::new(),
            partials: Vec::new(),
            hws: Vec::new(),
            swept: Vec::new(),
        }
    }

    /// The production machine.
    pub fn sc2002() -> Self {
        Self::new(Grape6Config::sc2002())
    }

    /// Modeled hardware clock accumulated so far.
    pub fn clock(&self) -> &HardwareClock {
        &self.clock
    }

    /// Reset the modeled clock (keeps j-memory).
    pub fn reset_clock(&mut self) {
        self.clock.reset();
    }

    /// Resident j-particles.
    pub fn n_j(&self) -> usize {
        self.jmem.len()
    }

    /// Performance report over everything charged since the last reset.
    pub fn perf_report(&self) -> crate::perf::PerfReport {
        crate::perf::PerfReport::new(
            self.interactions,
            self.clock.seconds(),
            self.config.timing.geometry.peak_flops(),
        )
    }

    /// Read-only view of resident j-memory. The fault-tolerant wrapper
    /// clones this right after `load` as the host's authoritative copy for
    /// memory scrubbing.
    pub fn jmem(&self) -> &[JParticle] {
        &self.jmem
    }

    /// Fault injection: XOR one bit of the resident j-particle `index`'s
    /// fixed-point x-position word (an SSRAM soft error). `index` wraps
    /// modulo the loaded count, `bit` modulo 64, so any seeded address is
    /// valid.
    pub fn corrupt_j_word(&mut self, index: usize, bit: usize) {
        assert!(!self.jmem.is_empty(), "no j-particles loaded");
        let i = index % self.jmem.len();
        self.jmem[i].qpos[0] ^= 1i64 << (bit % 64);
    }

    /// Memory scrub: compare every resident j-word against the host's
    /// authoritative copy, rewrite the ones that differ, and charge the
    /// write-back traffic. Returns the repaired indices.
    pub fn scrub_jmem(&mut self, authoritative: &[JParticle]) -> Vec<usize> {
        assert_eq!(authoritative.len(), self.jmem.len(), "scrub copy length mismatch");
        let mut repaired = Vec::new();
        for (i, (res, truth)) in self.jmem.iter_mut().zip(authoritative).enumerate() {
            if res != truth {
                *res = *truth;
                repaired.push(i);
            }
        }
        self.wire_bytes += (repaired.len() * crate::wire::J_PACKET_BYTES) as u64;
        repaired
    }

    fn encode_j(&self, sys: &ParticleSystem, i: usize) -> JParticle {
        JParticle::encode(
            &self.config.format,
            self.config.precision,
            sys.pos[i],
            sys.vel[i],
            sys.acc[i],
            sys.jerk[i],
            sys.mass[i],
            sys.time[i],
        )
    }
}

impl ForceEngine for Grape6Engine {
    fn load(&mut self, sys: &ParticleSystem) {
        if self.config.enforce_memory_limit {
            let cap = self.config.timing.geometry.node_jmem_capacity();
            assert!(
                sys.len() <= cap,
                "particle set ({}) exceeds node j-memory capacity ({cap})",
                sys.len()
            );
        }
        assert!(
            sys.softening > 0.0,
            "GRAPE-6 requires a positive softening length (the pipeline has no \
             self-interaction cutoff)"
        );
        self.eps2 = sys.softening * sys.softening;
        self.jmem = (0..sys.len()).map(|i| self.encode_j(sys, i)).collect();
        self.wire_bytes += (sys.len() * crate::wire::J_PACKET_BYTES) as u64;
    }

    /// Write back a batch of j-particles. The integrator defers corrector
    /// and accretion write-backs and flushes them here as one sorted,
    /// deduplicated batch per block step (see
    /// `BlockHermite::flush_j_updates`), so a particle touched by both the
    /// corrector and a merge crosses the wire once, not twice. Encoding is a
    /// pure function of the particle's own system state, so batching never
    /// changes the bits that land in j-memory.
    // grape6-lint: hot
    fn update_j(&mut self, sys: &ParticleSystem, indices: &[usize]) {
        let fmt = self.config.format;
        let precision = self.config.precision;
        for &i in indices {
            self.jmem[i] = JParticle::encode(
                &fmt,
                precision,
                sys.pos[i],
                sys.vel[i],
                sys.acc[i],
                sys.jerk[i],
                sys.mass[i],
                sys.time[i],
            );
        }
        self.wire_bytes += (indices.len() * crate::wire::J_PACKET_BYTES) as u64;
    }

    // grape6-lint: hot
    fn compute(&mut self, t: f64, ips: &[IParticle], out: &mut [ForceResult]) {
        assert_eq!(ips.len(), out.len());
        let n_j = self.jmem.len();
        // Charge the modeled hardware time for this block step.
        let step = self.config.timing.block_step(ips.len(), n_j);
        self.clock.charge(&step);
        self.interactions += (ips.len() as u64) * (n_j as u64);
        self.wire_bytes +=
            (ips.len() * (crate::wire::I_PACKET_BYTES + crate::wire::F_PACKET_BYTES)) as u64;

        let fmt = self.config.format;
        let precision = self.config.precision;
        let eps2 = self.eps2;
        if ips.len() > SMALL_BLOCK_MAX {
            // Predictor pipelines: every chip predicts its resident
            // j-particles, then i-particles sweep the shared prediction in
            // parallel.
            self.pred.clear();
            self.jmem
                .par_iter()
                .map(|j| predict_j(&fmt, precision, j, t))
                .collect_into_vec(&mut self.pred);

            // Force pipelines + reduction tree. The fixed-point accumulators
            // make the reduction order irrelevant, so a flat parallel sweep
            // is bit-identical to the hardware's chip/board/NB tree.
            let pred = &self.pred;
            let jmem = &self.jmem;
            match self.config.lanes {
                LaneWidth::Scalar => {
                    out.par_iter_mut().zip(ips.par_iter()).for_each(|(o, ip)| {
                        let hw = HwIParticle::encode(&fmt, precision, ip.pos, ip.vel);
                        let mut regs = PipelineRegisters::new();
                        // The hardware also reports the nearest neighbour of
                        // each i-particle (for collision/accretion detection).
                        let mut nn: Option<Neighbor> = None;
                        for (j, pj) in pred.iter().enumerate() {
                            regs.accumulate(
                                &fmt, precision, hw.qpos, pj.qpos, hw.vel, pj.vel, pj.mass, eps2,
                            );
                            if j != ip.index {
                                let dx = fmt.decode_vec([
                                    pj.qpos[0].wrapping_sub(hw.qpos[0]),
                                    pj.qpos[1].wrapping_sub(hw.qpos[1]),
                                    pj.qpos[2].wrapping_sub(hw.qpos[2]),
                                ]);
                                let r2 = dx.norm2();
                                if nn.is_none_or(|n| r2 < n.r2) {
                                    nn = Some(Neighbor { index: j, r2 });
                                }
                            }
                        }
                        let (acc, jerk, mut pot) = regs.read();
                        // The pipeline sums over *all* j including the
                        // particle itself; the self term contributes no force
                        // but −m/ε of potential, which the host removes
                        // (paper convention).
                        if ip.index < jmem.len() {
                            pot += jmem[ip.index].mass / eps2.sqrt();
                        }
                        *o = ForceResult { acc, jerk, pot, nn };
                    });
                }
                LaneWidth::W4 => {
                    out.par_chunks_mut(4).zip(ips.par_chunks(4)).for_each(|(os, is)| {
                        sweep_group_lanes::<4>(&fmt, precision, os, is, pred, jmem, eps2)
                    });
                }
                LaneWidth::W8 => {
                    out.par_chunks_mut(8).zip(ips.par_chunks(8)).for_each(|(os, is)| {
                        sweep_group_lanes::<8>(&fmt, precision, os, is, pred, jmem, eps2)
                    });
                }
            }
        } else {
            // Small block: split j-space across the pool instead, prediction
            // fused into each chunk (the chip predicts the j-particle right
            // before feeding its pipelines). Exact fixed-point associativity
            // makes the chunked merge bit-identical to the flat sweep above.
            self.swept.clear();
            self.swept.resize(ips.len(), SweepPartial::default());
            let jmem = &self.jmem;
            match self.config.lanes {
                LaneWidth::Scalar => {
                    self.hws.clear();
                    self.hws.extend(
                        ips.iter().map(|ip| HwIParticle::encode(&fmt, precision, ip.pos, ip.vel)),
                    );
                    let hws = &self.hws;
                    chunked_jsweep(
                        n_j,
                        j_chunk_size(n_j),
                        &mut self.partials,
                        &mut self.swept,
                        |js, row| {
                            for j in js {
                                let pj = predict_j(&fmt, precision, &jmem[j], t);
                                for (r, (hw, ip)) in row.iter_mut().zip(hws.iter().zip(ips)) {
                                    r.regs.accumulate(
                                        &fmt, precision, hw.qpos, pj.qpos, hw.vel, pj.vel, pj.mass,
                                        eps2,
                                    );
                                    if j != ip.index {
                                        let dx = fmt.decode_vec([
                                            pj.qpos[0].wrapping_sub(hw.qpos[0]),
                                            pj.qpos[1].wrapping_sub(hw.qpos[1]),
                                            pj.qpos[2].wrapping_sub(hw.qpos[2]),
                                        ]);
                                        let r2 = dx.norm2();
                                        if r.nn.is_none_or(|n| r2 < n.r2) {
                                            r.nn = Some(Neighbor { index: j, r2 });
                                        }
                                    }
                                }
                            }
                        },
                        SweepPartial::merge,
                    );
                }
                LaneWidth::W4 => chunked_jsweep(
                    n_j,
                    j_chunk_size(n_j),
                    &mut self.partials,
                    &mut self.swept,
                    |js, row| small_fill_lanes::<4>(&fmt, precision, js, row, ips, jmem, t, eps2),
                    SweepPartial::merge,
                ),
                LaneWidth::W8 => chunked_jsweep(
                    n_j,
                    j_chunk_size(n_j),
                    &mut self.partials,
                    &mut self.swept,
                    |js, row| small_fill_lanes::<8>(&fmt, precision, js, row, ips, jmem, t, eps2),
                    SweepPartial::merge,
                ),
            }
            for ((o, p), ip) in out.iter_mut().zip(&self.swept).zip(ips) {
                let m = (ip.index < self.jmem.len()).then(|| self.jmem[ip.index].mass);
                *o = partial_to_force(p, m, eps2);
            }
        }
    }

    fn interaction_count(&self) -> u64 {
        self.interactions
    }

    fn reset_counters(&mut self) {
        self.interactions = 0;
        self.wire_bytes = 0;
    }

    fn bytes_transferred(&self) -> u64 {
        self.wire_bytes
    }

    fn modeled_seconds(&self) -> f64 {
        self.clock.seconds()
    }

    fn checkpoint_state(&self) -> Vec<u8> {
        // j-memory itself is NOT carried: `load` on the checkpointed system
        // reproduces it bit-identically (each j-entry is the encoding of
        // the owning particle's state as of its last correction). Only the
        // accumulated counters and the modeled clock need to survive.
        let mut s = Vec::with_capacity(81);
        s.extend_from_slice(&self.interactions.to_le_bytes());
        s.extend_from_slice(&self.wire_bytes.to_le_bytes());
        s.extend_from_slice(&self.clock.steps.to_le_bytes());
        let b = &self.clock.breakdown;
        for v in [b.host, b.send_i, b.pipeline, b.receive, b.jshare_intra, b.jshare_inter, b.sync] {
            s.extend_from_slice(&v.to_le_bytes());
        }
        s.push(b.overlapped as u8);
        s
    }

    fn restore_checkpoint_state(&mut self, state: &[u8]) -> Result<(), String> {
        if state.len() != 81 {
            return Err(format!("grape6 checkpoint state: expected 81 bytes, got {}", state.len()));
        }
        let u64_at = |k: usize| u64::from_le_bytes(state[k..k + 8].try_into().unwrap());
        let f64_at = |k: usize| f64::from_le_bytes(state[k..k + 8].try_into().unwrap());
        self.interactions = u64_at(0);
        self.wire_bytes = u64_at(8);
        self.clock.steps = u64_at(16);
        let b = &mut self.clock.breakdown;
        b.host = f64_at(24);
        b.send_i = f64_at(32);
        b.pipeline = f64_at(40);
        b.receive = f64_at(48);
        b.jshare_intra = f64_at(56);
        b.jshare_inter = f64_at(64);
        b.sync = f64_at(72);
        b.overlapped = state[80] != 0;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "grape6"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::force::DirectEngine;
    use grape6_core::vec3::Vec3;

    fn ring_system(n: usize) -> ParticleSystem {
        let mut sys = ParticleSystem::new(0.008, 1.0);
        for k in 0..n {
            let theta = k as f64 * std::f64::consts::TAU / n as f64;
            let r = 15.0 + 20.0 * (k as f64 / n as f64);
            let v = grape6_core::units::circular_speed(r, 1.0);
            sys.push(
                Vec3::new(r * theta.cos(), r * theta.sin(), 0.01 * (k as f64).sin()),
                Vec3::new(-v * theta.sin(), v * theta.cos(), 0.0),
                1e-9 * (1.0 + (k % 13) as f64),
            );
        }
        sys
    }

    fn ips_for(sys: &ParticleSystem, idx: &[usize]) -> Vec<IParticle> {
        idx.iter().map(|&i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect()
    }

    #[test]
    fn matches_direct_engine_in_exact_mode() {
        let sys = ring_system(64);
        let mut hw = Grape6Engine::new(Grape6Config::sc2002_exact());
        let mut cpu = DirectEngine::new();
        hw.load(&sys);
        cpu.load(&sys);
        let idx: Vec<usize> = (0..64).collect();
        let ips = ips_for(&sys, &idx);
        let mut out_hw = vec![ForceResult::default(); 64];
        let mut out_cpu = vec![ForceResult::default(); 64];
        hw.compute(0.0, &ips, &mut out_hw);
        cpu.compute(0.0, &ips, &mut out_cpu);
        for k in 0..64 {
            let da = (out_hw[k].acc - out_cpu[k].acc).norm() / out_cpu[k].acc.norm().max(1e-300);
            // Exact arithmetic but fixed-point position quantization at 2⁻⁵⁴ AU.
            assert!(da < 1e-11, "particle {k}: rel acc error {da:e}");
            let dp = (out_hw[k].pot - out_cpu[k].pot).abs() / out_cpu[k].pot.abs();
            assert!(dp < 1e-9, "particle {k}: rel pot error {dp:e}");
        }
    }

    #[test]
    fn grape6_precision_error_is_bounded() {
        let sys = ring_system(128);
        let mut hw = Grape6Engine::new(Grape6Config::sc2002());
        let mut cpu = DirectEngine::new();
        hw.load(&sys);
        cpu.load(&sys);
        let idx: Vec<usize> = (0..128).collect();
        let ips = ips_for(&sys, &idx);
        let mut out_hw = vec![ForceResult::default(); 128];
        let mut out_cpu = vec![ForceResult::default(); 128];
        hw.compute(0.0, &ips, &mut out_hw);
        cpu.compute(0.0, &ips, &mut out_cpu);
        for k in 0..128 {
            let rel = (out_hw[k].acc - out_cpu[k].acc).norm() / out_cpu[k].acc.norm();
            assert!(rel < 1e-4, "particle {k}: rel error {rel:e}");
            assert!(rel > 0.0, "particle {k}: implausibly exact");
        }
    }

    #[test]
    fn compute_is_deterministic_despite_parallelism() {
        let sys = ring_system(200);
        let mut hw = Grape6Engine::sc2002();
        hw.load(&sys);
        let idx: Vec<usize> = (0..200).collect();
        let ips = ips_for(&sys, &idx);
        let mut out1 = vec![ForceResult::default(); 200];
        let mut out2 = vec![ForceResult::default(); 200];
        hw.compute(0.0, &ips, &mut out1);
        hw.compute(0.0, &ips, &mut out2);
        for k in 0..200 {
            assert_eq!(out1[k].acc, out2[k].acc, "particle {k} nondeterministic");
            assert_eq!(out1[k].jerk, out2[k].jerk);
            assert_eq!(out1[k].pot, out2[k].pot);
        }
    }

    #[test]
    fn small_block_sweep_matches_flat_sweep_bitwise() {
        // The chunked j-parallel path (small blocks) must read out the exact
        // bits of the flat per-i sweep (large blocks): fixed-point
        // accumulation is associative, NN keeps the first minimum either way.
        let sys = ring_system(200);
        let mut hw = Grape6Engine::sc2002();
        hw.load(&sys);
        let idx: Vec<usize> = (0..200).collect();
        let ips = ips_for(&sys, &idx);
        let mut all = vec![ForceResult::default(); 200];
        hw.compute(0.0, &ips, &mut all);
        for &i in &[0usize, 7, 63, 199] {
            let one = ips_for(&sys, &[i]);
            let mut out = vec![ForceResult::default(); 1];
            hw.compute(0.0, &one, &mut out);
            assert_eq!(out[0].acc, all[i].acc, "particle {i}");
            assert_eq!(out[0].jerk, all[i].jerk, "particle {i}");
            assert_eq!(out[0].pot, all[i].pot, "particle {i}");
            assert_eq!(out[0].nn.map(|n| n.index), all[i].nn.map(|n| n.index));
        }
    }

    #[test]
    fn lane_widths_bit_identical_on_both_paths() {
        // Scalar / W4 / W8 pipeline emulation must agree bit for bit on the
        // small-block (j-parallel) and large-block (per-i) paths, including
        // ragged blocks not divisible by either lane width.
        let sys = ring_system(61);
        let force = |lanes: LaneWidth, b: usize| {
            let mut hw = Grape6Engine::new(Grape6Config { lanes, ..Grape6Config::sc2002() });
            hw.load(&sys);
            let idx: Vec<usize> = (0..b).collect();
            let ips = ips_for(&sys, &idx);
            let mut out = vec![ForceResult::default(); b];
            hw.compute(0.0, &ips, &mut out);
            out
        };
        for b in [1usize, 3, 7, 13, 16, 17, 21, 61] {
            let reference = force(LaneWidth::Scalar, b);
            for lanes in [LaneWidth::W4, LaneWidth::W8] {
                let got = force(lanes, b);
                for (k, (g, r)) in got.iter().zip(&reference).enumerate() {
                    assert_eq!(g.acc, r.acc, "{lanes} b={b} k={k} acc");
                    assert_eq!(g.jerk, r.jerk, "{lanes} b={b} k={k} jerk");
                    assert_eq!(g.pot.to_bits(), r.pot.to_bits(), "{lanes} b={b} k={k} pot");
                    assert_eq!(
                        g.nn.map(|n| (n.index, n.r2.to_bits())),
                        r.nn.map(|n| (n.index, n.r2.to_bits())),
                        "{lanes} b={b} k={k} nn"
                    );
                }
            }
        }
    }

    #[test]
    fn clock_charges_every_call() {
        let sys = ring_system(32);
        let mut hw = Grape6Engine::sc2002();
        hw.load(&sys);
        assert_eq!(hw.clock().steps, 0);
        let ips = ips_for(&sys, &[0, 5, 9]);
        let mut out = vec![ForceResult::default(); 3];
        hw.compute(0.0, &ips, &mut out);
        assert_eq!(hw.clock().steps, 1);
        assert!(hw.clock().seconds() > 0.0);
        assert_eq!(hw.interaction_count(), 3 * 32);
        let report = hw.perf_report();
        assert!(report.tflops() > 0.0);
        assert!(report.efficiency < 1.0);
    }

    #[test]
    fn partitioned_machine_is_slower_but_identical() {
        // A quarter machine (one cluster) computes the same bits but its
        // modeled hardware time per call is larger.
        let sys = ring_system(64);
        let full = Grape6Config::sc2002();
        let mut quarter = full;
        quarter.timing.geometry = full.timing.geometry.partition(4).unwrap();
        let mut e_full = Grape6Engine::new(full);
        let mut e_quarter = Grape6Engine::new(quarter);
        e_full.load(&sys);
        e_quarter.load(&sys);
        let ips = ips_for(&sys, &[0, 1, 2, 3]);
        let mut out_f = vec![ForceResult::default(); 4];
        let mut out_q = vec![ForceResult::default(); 4];
        e_full.compute(0.0, &ips, &mut out_f);
        e_quarter.compute(0.0, &ips, &mut out_q);
        for k in 0..4 {
            assert_eq!(out_f[k].acc, out_q[k].acc);
        }
        // (For tiny blocks a partition can actually be *faster* — it skips
        // the inter-cluster exchange. The pipeline disadvantage shows at
        // production block sizes:)
        let t_full = full.timing.block_step(8192, 1_800_000).pipeline;
        let t_quarter = quarter.timing.block_step(8192, 1_800_000).pipeline;
        assert!((t_quarter / t_full - 4.0).abs() < 0.1, "ratio {}", t_quarter / t_full);
        assert!(
            e_quarter.perf_report().peak < e_full.perf_report().peak / 3.0,
            "quarter peak should be ~1/4"
        );
    }

    #[test]
    fn wire_bytes_match_packet_sizes() {
        use crate::wire::{F_PACKET_BYTES, I_PACKET_BYTES, J_PACKET_BYTES};
        let sys = ring_system(32);
        let mut hw = Grape6Engine::sc2002();
        assert_eq!(hw.bytes_transferred(), 0);
        hw.load(&sys);
        let load = (32 * J_PACKET_BYTES) as u64;
        assert_eq!(hw.bytes_transferred(), load);
        let ips = ips_for(&sys, &[0, 5, 9]);
        let mut out = vec![ForceResult::default(); 3];
        hw.compute(0.0, &ips, &mut out);
        let round_trip = (3 * (I_PACKET_BYTES + F_PACKET_BYTES)) as u64;
        assert_eq!(hw.bytes_transferred(), load + round_trip);
        hw.update_j(&sys, &[0, 5]);
        assert_eq!(hw.bytes_transferred(), load + round_trip + (2 * J_PACKET_BYTES) as u64);
        assert!(hw.modeled_seconds() > 0.0);
        hw.reset_counters();
        assert_eq!(hw.bytes_transferred(), 0);
    }

    #[test]
    #[should_panic(expected = "positive softening")]
    fn rejects_zero_softening() {
        let mut sys = ring_system(4);
        sys.softening = 0.0;
        let mut hw = Grape6Engine::sc2002();
        hw.load(&sys);
    }

    #[test]
    fn update_j_changes_subsequent_forces() {
        let mut sys = ring_system(16);
        let mut hw = Grape6Engine::sc2002();
        hw.load(&sys);
        let ips = ips_for(&sys, &[0]);
        let mut before = vec![ForceResult::default(); 1];
        hw.compute(0.0, &ips, &mut before);
        // Move particle 8 far away and write it back.
        sys.pos[8] = Vec3::new(500.0, 0.0, 0.0);
        hw.update_j(&sys, &[8]);
        let mut after = vec![ForceResult::default(); 1];
        hw.compute(0.0, &ips, &mut after);
        assert_ne!(before[0].acc, after[0].acc);
    }

    #[test]
    fn potential_excludes_self_term() {
        // A lone pair: potential on each must be just the partner's −m/r̃.
        let mut sys = ParticleSystem::new(0.01, 0.0);
        sys.push(Vec3::new(0.0, 0.0, 0.0), Vec3::zero(), 1e-6);
        sys.push(Vec3::new(1.0, 0.0, 0.0), Vec3::zero(), 2e-6);
        let mut hw = Grape6Engine::new(Grape6Config::sc2002_exact());
        hw.load(&sys);
        let ips = ips_for(&sys, &[0]);
        let mut out = vec![ForceResult::default(); 1];
        hw.compute(0.0, &ips, &mut out);
        let expect = -2e-6 / (1.0f64 + 0.0001).sqrt();
        assert!((out[0].pot - expect).abs() < 1e-12, "pot {} expect {expect}", out[0].pot);
    }
}
