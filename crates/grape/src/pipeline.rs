//! The force pipeline: functional model of the unit that evaluates one
//! pairwise interaction per clock cycle (paper §5.2, Fig 9).
//!
//! Each arithmetic stage of the real pipeline works in a short word format;
//! we emulate this by rounding every intermediate quantity to a configurable
//! mantissa width. Positions enter in 64-bit fixed point; the coordinate
//! *difference* is formed by exact integer subtraction before conversion to
//! the short float — the property that lets the hardware resolve close
//! encounters at 10⁻¹⁶ AU despite 24-bit arithmetic.

use crate::format::{
    round_mantissa, round_vec, FixedAccumulator, FixedPointFormat, Precision, VecAccumulator,
};
use grape6_core::vec3::Vec3;

/// One pairwise evaluation in pipeline arithmetic.
///
/// `qxi`/`qxj` are fixed-point positions; velocities arrive already rounded
/// to the pipeline word. Returns the (acc, jerk, pot) contribution in
/// pipeline precision.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the hardware port list
pub fn pipeline_interaction(
    fmt: &FixedPointFormat,
    precision: Precision,
    qxi: [i64; 3],
    qxj: [i64; 3],
    vi: Vec3,
    vj: Vec3,
    mj: f64,
    eps2: f64,
) -> (Vec3, Vec3, f64) {
    let bits = precision.mantissa_bits();
    // Exact fixed-point subtraction, then conversion to the short float.
    let dx = round_vec(
        Vec3::new(
            fmt.decode(qxj[0].wrapping_sub(qxi[0])),
            fmt.decode(qxj[1].wrapping_sub(qxi[1])),
            fmt.decode(qxj[2].wrapping_sub(qxi[2])),
        ),
        bits,
    );
    let dv = round_vec(vj - vi, bits);
    let r2 = round_mantissa(dx.norm2() + eps2, bits);
    let rinv = round_mantissa(1.0 / r2.sqrt(), bits);
    let rinv2 = round_mantissa(rinv * rinv, bits);
    let mr3inv = round_mantissa(mj * round_mantissa(rinv2 * rinv, bits), bits);
    let rv = round_mantissa(dx.dot(dv), bits);
    let alpha = round_mantissa(3.0 * rv * rinv2, bits);
    let acc = round_vec(dx * mr3inv, bits);
    let jerk = round_vec((dv - dx * alpha) * mr3inv, bits);
    let pot = round_mantissa(-mj * rinv, bits);
    (acc, jerk, pot)
}

/// Accumulated output registers of one (virtual) pipeline for one i-particle.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineRegisters {
    /// Acceleration accumulator.
    pub acc: VecAccumulator,
    /// Jerk accumulator.
    pub jerk: VecAccumulator,
    /// Potential accumulator.
    pub pot: FixedAccumulator,
    /// Interactions accumulated.
    pub count: u64,
}

impl PipelineRegisters {
    /// Zeroed registers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one j-particle through the pipeline for this register set.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn accumulate(
        &mut self,
        fmt: &FixedPointFormat,
        precision: Precision,
        qxi: [i64; 3],
        qxj: [i64; 3],
        vi: Vec3,
        vj: Vec3,
        mj: f64,
        eps2: f64,
    ) {
        let (a, j, p) = pipeline_interaction(fmt, precision, qxi, qxj, vi, vj, mj, eps2);
        self.acc.add(a);
        self.jerk.add(j);
        self.pot.add(p);
        self.count += 1;
    }

    /// Hardware reduction-tree merge.
    #[inline]
    pub fn merge(&mut self, other: &Self) {
        self.acc.merge(other.acc);
        self.jerk.merge(other.jerk);
        self.pot.merge(other.pot);
        self.count += other.count;
    }

    /// Read out (acc, jerk, pot).
    #[inline]
    pub fn read(&self) -> (Vec3, Vec3, f64) {
        (self.acc.to_vec3(), self.jerk.to_vec3(), self.pot.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::force::pair_force_jerk;

    fn fmt() -> FixedPointFormat {
        FixedPointFormat::default()
    }

    #[test]
    fn exact_precision_matches_reference_kernel() {
        let f = fmt();
        let xi = Vec3::new(20.0, 1.0, -0.5);
        let xj = Vec3::new(20.5, 0.0, 0.25);
        let vi = Vec3::new(0.1, 0.2, 0.0);
        let vj = Vec3::new(-0.1, 0.15, 0.05);
        let (a, j, p) = pipeline_interaction(
            &f,
            Precision::Exact,
            f.encode_vec(xi),
            f.encode_vec(xj),
            vi,
            vj,
            3e-5,
            0.008 * 0.008,
        );
        let (ar, jr, pr) = pair_force_jerk(
            f.decode_vec(f.encode_vec(xj)) - f.decode_vec(f.encode_vec(xi)),
            vj - vi,
            3e-5,
            0.008 * 0.008,
        );
        assert!((a - ar).norm() <= 1e-18);
        assert!((j - jr).norm() <= 1e-18);
        assert!((p - pr).abs() <= 1e-18);
    }

    #[test]
    fn grape6_precision_single_precision_class_error() {
        let f = fmt();
        let xi = Vec3::new(20.0, 1.0, -0.5);
        let xj = Vec3::new(21.3, 0.4, 0.2);
        let vi = Vec3::new(0.1, 0.2, 0.0);
        let vj = Vec3::new(-0.1, 0.15, 0.05);
        let (a, _, _) = pipeline_interaction(
            &f,
            Precision::grape6(),
            f.encode_vec(xi),
            f.encode_vec(xj),
            vi,
            vj,
            1e-8,
            0.008 * 0.008,
        );
        let (ar, _, _) = pair_force_jerk(xj - xi, vj - vi, 1e-8, 0.008 * 0.008);
        let rel = (a - ar).norm() / ar.norm();
        assert!(rel < 1e-5, "relative error {rel:e} too large");
        assert!(rel > 1e-12, "suspiciously exact for 24-bit arithmetic");
    }

    #[test]
    fn close_encounter_separation_resolved_exactly() {
        // Two particles 1e-12 AU apart at 20 AU from the Sun: an f32 position
        // could not even represent the difference, fixed point can.
        let f = fmt();
        let xi = Vec3::new(20.0, 0.0, 0.0);
        let xj = Vec3::new(20.0 + 1e-12, 0.0, 0.0);
        let (a, _, _) = pipeline_interaction(
            &f,
            Precision::grape6(),
            f.encode_vec(xi),
            f.encode_vec(xj),
            Vec3::zero(),
            Vec3::zero(),
            1e-10,
            0.0,
        );
        let dx = f.decode(f.encode(xj.x) - f.encode(xi.x));
        let expect = 1e-10 / (dx * dx);
        assert!((a.x - expect).abs() / expect < 1e-6, "a = {}, expect {}", a.x, expect);
    }

    #[test]
    fn self_interaction_contributes_nothing_to_force() {
        let f = fmt();
        let x = Vec3::new(17.0, 3.0, 0.1);
        let v = Vec3::new(0.0, 0.23, 0.0);
        let (a, j, p) = pipeline_interaction(
            &f,
            Precision::grape6(),
            f.encode_vec(x),
            f.encode_vec(x),
            v,
            v,
            5e-9,
            0.008 * 0.008,
        );
        assert_eq!(a, Vec3::zero());
        assert_eq!(j, Vec3::zero());
        assert!((p + 5e-9 / 0.008).abs() < 1e-12); // the self potential the host corrects
    }

    #[test]
    fn registers_merge_is_bit_exact() {
        let f = fmt();
        let prec = Precision::grape6();
        let eps2 = 1e-4;
        let js: Vec<(Vec3, Vec3, f64)> = (0..64)
            .map(|k| {
                let t = k as f64 * 0.37;
                (
                    Vec3::new(20.0 + t.sin(), t.cos() * 2.0, 0.1 * t.sin()),
                    Vec3::new(0.01 * t.cos(), -0.02 * t.sin(), 0.0),
                    1e-9 * (1.0 + (k % 7) as f64),
                )
            })
            .collect();
        let xi = f.encode_vec(Vec3::new(20.0, 0.0, 0.0));
        let vi = Vec3::new(0.0, 0.22, 0.0);
        let mut whole = PipelineRegisters::new();
        for (xj, vj, mj) in &js {
            whole.accumulate(&f, prec, xi, f.encode_vec(*xj), vi, *vj, *mj, eps2);
        }
        // Split across 4 "pipelines" and merge in a different order.
        let mut parts = vec![PipelineRegisters::new(); 4];
        for (k, (xj, vj, mj)) in js.iter().enumerate() {
            parts[k % 4].accumulate(&f, prec, xi, f.encode_vec(*xj), vi, *vj, *mj, eps2);
        }
        let mut merged = PipelineRegisters::new();
        for p in [3usize, 0, 2, 1] {
            merged.merge(&parts[p]);
        }
        assert_eq!(whole.read().0, merged.read().0);
        assert_eq!(whole.read().1, merged.read().1);
        assert_eq!(whole.read().2, merged.read().2);
        assert_eq!(whole.count, merged.count);
    }
}
