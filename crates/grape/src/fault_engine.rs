//! `FaultTolerantEngine`: dual-modular GRAPE-6 with a detect → retry →
//! scrub → degrade recovery ladder.
//!
//! The wrapper drives two complete [`Grape6Engine`] units in lockstep —
//! DESIGN.md item 30's dual-modular redundancy made operational. Every
//! force block is computed twice and compared bit-for-bit; the force
//! readout additionally crosses a modeled checksummed link
//! ([`crate::wire::encode_force_checked`]). A seeded [`FaultPlan`]
//! schedules SSRAM bit flips, link corruption and board deaths, and the
//! recovery ladder answers each:
//!
//! 1. **detect** — DMR mismatch or packet-checksum failure;
//! 2. **retry** — recompute the block / retransmit the packet (the modeled
//!    clock is charged again: throughput lost to recovery);
//! 3. **scrub** — if the retry still disagrees the fault is resident, so
//!    both units' j-memories are scrubbed against the host's authoritative
//!    copy and the block recomputed once more;
//! 4. **degrade** — a dead board is removed from the afflicted unit's
//!    timing geometry; the survivors absorb its share and the clock runs
//!    slower for the rest of the run.
//!
//! **Why recovery is bit-exact.** Per-board partitioning enters the force
//! sum only through the timing model, and at most one unit is corrupted
//! per upset. If the units agree, the untouched unit's bits — which equal
//! the delivered bits — are the true answer; if they disagree, scrubbing
//! restores both to the authoritative encoding and the recomputation
//! matches a fault-free run exactly. Either way the integrator sees the
//! same bits as with a plain [`Grape6Engine`], which is what the
//! fault-matrix CI job pins down.

use crate::engine::{Grape6Config, Grape6Engine};
use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::predictor::JParticle;
use crate::wire::{
    decode_force_checked, encode_force_checked, flip_packet_bit, F_PACKET_BYTES,
    F_PACKET_CHECKED_BYTES,
};
use bytes::BytesMut;
use grape6_core::engine::{FaultStats, ForceEngine};
use grape6_core::particle::{ForceResult, IParticle, ParticleSystem};

/// Dual-modular redundant GRAPE-6 with fault injection and recovery.
#[derive(Debug, Clone)]
pub struct FaultTolerantEngine {
    unit_a: Grape6Engine,
    unit_b: Grape6Engine,
    // Host-authoritative j-memory copy (what `load`/`update_j` wrote);
    // scrub target for both units.
    shadow: Vec<JParticle>,
    injector: FaultInjector,
    stats: FaultStats,
    // Force-call ordinal driving the fault schedule.
    step: u64,
    // A pending link corruption: the next force readout flips this bit.
    armed_link_flip: Option<usize>,
    // Checksum trailers + retransmissions, on top of unit A's traffic.
    extra_wire_bytes: u64,
    out_b: Vec<ForceResult>,
}

impl FaultTolerantEngine {
    /// Build two identical units for `config` and arm the fault plan.
    pub fn new(config: Grape6Config, plan: &FaultPlan) -> Self {
        Self {
            unit_a: Grape6Engine::new(config),
            unit_b: Grape6Engine::new(config),
            shadow: Vec::new(),
            injector: FaultInjector::new(plan),
            stats: FaultStats::default(),
            step: 0,
            armed_link_flip: None,
            extra_wire_bytes: 0,
            out_b: Vec::new(),
        }
    }

    /// The two units' degraded board counts `(a, b)` — equal to the
    /// configured `boards_per_host` until a `BoardFail` event fires.
    pub fn boards_per_host(&self) -> (usize, usize) {
        (
            self.unit_a.config.timing.geometry.boards_per_host,
            self.unit_b.config.timing.geometry.boards_per_host,
        )
    }

    fn unit_mut(&mut self, unit: usize) -> &mut Grape6Engine {
        if unit.is_multiple_of(2) {
            &mut self.unit_a
        } else {
            &mut self.unit_b
        }
    }

    fn apply_due_faults(&mut self) {
        for ev in self.injector.take_due(self.step) {
            self.stats.injected += 1;
            match ev.kind {
                FaultKind::JMemFlip { unit, index, bit } => {
                    self.unit_mut(unit).corrupt_j_word(index, bit);
                }
                FaultKind::LinkFlip { bit } => {
                    self.armed_link_flip = Some(bit);
                }
                FaultKind::BoardFail { unit } => {
                    self.stats.boards_failed += 1;
                    let g = &mut self.unit_mut(unit).config.timing.geometry;
                    // The last board of a host cannot be repartitioned away;
                    // the real operators would swap hardware at that point.
                    if g.boards_per_host > 1 {
                        g.boards_per_host -= 1;
                    }
                }
            }
        }
    }

    fn outputs_agree(a: &[ForceResult], b: &[ForceResult]) -> bool {
        a.iter().zip(b).all(|(x, y)| x.acc == y.acc && x.jerk == y.jerk && x.pot == y.pot)
    }

    /// Model the checksummed force readout: each result crosses the link
    /// as a [`F_PACKET_CHECKED_BYTES`] packet; a corrupted packet is
    /// caught by its Fletcher-32 trailer and retransmitted. The delivered
    /// bits always equal the computed bits (the neighbour report travels
    /// on the separate neighbour-memory readout, not this wire).
    fn readout_through_link(&mut self, out: &mut [ForceResult]) {
        self.extra_wire_bytes += (out.len() * (F_PACKET_CHECKED_BYTES - F_PACKET_BYTES)) as u64;
        for (k, o) in out.iter_mut().enumerate() {
            let mut buf = BytesMut::with_capacity(F_PACKET_CHECKED_BYTES);
            encode_force_checked(&mut buf, o);
            if k == 0 {
                if let Some(bit) = self.armed_link_flip.take() {
                    flip_packet_bit(&mut buf[..F_PACKET_BYTES], bit);
                }
            }
            let decoded = match decode_force_checked(&mut buf.clone().freeze()) {
                Ok(f) => f,
                Err(_) => {
                    self.stats.checksum_errors += 1;
                    self.stats.retries += 1;
                    self.extra_wire_bytes += F_PACKET_CHECKED_BYTES as u64;
                    let mut retx = BytesMut::with_capacity(F_PACKET_CHECKED_BYTES);
                    encode_force_checked(&mut retx, o);
                    decode_force_checked(&mut retx.freeze())
                        .expect("retransmitted packet must verify")
                }
            };
            o.acc = decoded.acc;
            o.jerk = decoded.jerk;
            o.pot = decoded.pot;
        }
    }
}

impl ForceEngine for FaultTolerantEngine {
    fn load(&mut self, sys: &ParticleSystem) {
        self.unit_a.load(sys);
        self.unit_b.load(sys);
        self.shadow = self.unit_a.jmem().to_vec();
    }

    fn update_j(&mut self, sys: &ParticleSystem, indices: &[usize]) {
        self.unit_a.update_j(sys, indices);
        self.unit_b.update_j(sys, indices);
        // The freshly encoded words are clean by construction; mirror them
        // into the authoritative copy.
        for &i in indices {
            self.shadow[i] = self.unit_a.jmem()[i];
        }
    }

    fn compute(&mut self, t: f64, ips: &[IParticle], out: &mut [ForceResult]) {
        self.apply_due_faults();
        self.out_b.clear();
        self.out_b.resize(out.len(), ForceResult::default());
        let mut out_b = std::mem::take(&mut self.out_b);
        self.unit_a.compute(t, ips, out);
        self.unit_b.compute(t, ips, &mut out_b);

        if !Self::outputs_agree(out, &out_b) {
            // Detect → retry: recompute the whole block on both units. Both
            // clocks charge again — that is the throughput lost to recovery.
            self.stats.dmr_mismatches += 1;
            self.stats.retries += 1;
            self.unit_a.compute(t, ips, out);
            self.unit_b.compute(t, ips, &mut out_b);
            if !Self::outputs_agree(out, &out_b) {
                // Retry → scrub: the fault is resident in some j-memory.
                // Rewrite both units from the authoritative copy, then the
                // recomputation must agree bit-for-bit.
                self.stats.scrubs += 1;
                let shadow = std::mem::take(&mut self.shadow);
                self.stats.words_scrubbed += self.unit_a.scrub_jmem(&shadow).len() as u64;
                self.stats.words_scrubbed += self.unit_b.scrub_jmem(&shadow).len() as u64;
                self.shadow = shadow;
                self.stats.retries += 1;
                self.unit_a.compute(t, ips, out);
                self.unit_b.compute(t, ips, &mut out_b);
                assert!(
                    Self::outputs_agree(out, &out_b),
                    "units still disagree after a scrub — fault model broken"
                );
            }
        }
        self.out_b = out_b;
        self.readout_through_link(out);
        self.step += 1;
    }

    fn interaction_count(&self) -> u64 {
        // Unit A's count includes recovery recomputations — real work the
        // machine performed.
        self.unit_a.interaction_count()
    }

    fn reset_counters(&mut self) {
        self.unit_a.reset_counters();
        self.unit_b.reset_counters();
        self.extra_wire_bytes = 0;
    }

    fn bytes_transferred(&self) -> u64 {
        self.unit_a.bytes_transferred() + self.extra_wire_bytes
    }

    fn modeled_seconds(&self) -> f64 {
        // The block completes when the slower (possibly degraded) unit does.
        self.unit_a.modeled_seconds().max(self.unit_b.modeled_seconds())
    }

    fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    fn checkpoint_state(&self) -> Vec<u8> {
        let mut s = Vec::new();
        for v in [
            self.stats.injected,
            self.stats.dmr_mismatches,
            self.stats.checksum_errors,
            self.stats.retries,
            self.stats.scrubs,
            self.stats.words_scrubbed,
            self.stats.boards_failed,
            self.step,
            self.injector.cursor() as u64,
            self.extra_wire_bytes,
            self.unit_a.config.timing.geometry.boards_per_host as u64,
            self.unit_b.config.timing.geometry.boards_per_host as u64,
        ] {
            s.extend_from_slice(&v.to_le_bytes());
        }
        // An armed link flip is consumed by the next readout; carry it.
        match self.armed_link_flip {
            Some(bit) => {
                s.push(1);
                s.extend_from_slice(&(bit as u64).to_le_bytes());
            }
            None => {
                s.push(0);
                s.extend_from_slice(&0u64.to_le_bytes());
            }
        }
        for unit in [&self.unit_a, &self.unit_b] {
            let u = unit.checkpoint_state();
            s.extend_from_slice(&(u.len() as u32).to_le_bytes());
            s.extend_from_slice(&u);
        }
        s
    }

    fn restore_checkpoint_state(&mut self, state: &[u8]) -> Result<(), String> {
        let fixed = 12 * 8 + 1 + 8;
        if state.len() < fixed {
            return Err(format!("grape6-ft checkpoint state too short: {} bytes", state.len()));
        }
        let u64_at = |k: usize| u64::from_le_bytes(state[k..k + 8].try_into().unwrap());
        self.stats.injected = u64_at(0);
        self.stats.dmr_mismatches = u64_at(8);
        self.stats.checksum_errors = u64_at(16);
        self.stats.retries = u64_at(24);
        self.stats.scrubs = u64_at(32);
        self.stats.words_scrubbed = u64_at(40);
        self.stats.boards_failed = u64_at(48);
        self.step = u64_at(56);
        self.injector.set_cursor(u64_at(64) as usize)?;
        self.extra_wire_bytes = u64_at(72);
        self.unit_a.config.timing.geometry.boards_per_host = u64_at(80) as usize;
        self.unit_b.config.timing.geometry.boards_per_host = u64_at(88) as usize;
        self.armed_link_flip = if state[96] == 1 { Some(u64_at(97) as usize) } else { None };
        let mut k = fixed;
        for unit in [&mut self.unit_a, &mut self.unit_b] {
            if state.len() < k + 4 {
                return Err("grape6-ft checkpoint state truncated at unit header".into());
            }
            let len = u32::from_le_bytes(state[k..k + 4].try_into().unwrap()) as usize;
            k += 4;
            if state.len() < k + len {
                return Err("grape6-ft checkpoint state truncated at unit payload".into());
            }
            unit.restore_checkpoint_state(&state[k..k + len])?;
            k += len;
        }
        if k != state.len() {
            return Err(format!("grape6-ft checkpoint state: {} trailing bytes", state.len() - k));
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "grape6-ft"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;
    use grape6_core::vec3::Vec3;

    fn ring_system(n: usize) -> ParticleSystem {
        let mut sys = ParticleSystem::new(0.008, 1.0);
        for k in 0..n {
            let theta = k as f64 * std::f64::consts::TAU / n as f64;
            let r = 15.0 + 20.0 * (k as f64 / n as f64);
            let v = grape6_core::units::circular_speed(r, 1.0);
            sys.push(
                Vec3::new(r * theta.cos(), r * theta.sin(), 0.01 * (k as f64).sin()),
                Vec3::new(-v * theta.sin(), v * theta.cos(), 0.0),
                1e-9 * (1.0 + (k % 13) as f64),
            );
        }
        sys
    }

    fn ips_for(sys: &ParticleSystem, idx: &[usize]) -> Vec<IParticle> {
        idx.iter().map(|&i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect()
    }

    fn plan_of(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { seed: 0, events }
    }

    /// Reference bits: a plain engine over the same calls.
    fn reference(sys: &ParticleSystem, calls: &[Vec<usize>]) -> Vec<Vec<ForceResult>> {
        let mut e = Grape6Engine::new(Grape6Config::single_host());
        e.load(sys);
        calls
            .iter()
            .map(|idx| {
                let ips = ips_for(sys, idx);
                let mut out = vec![ForceResult::default(); ips.len()];
                e.compute(0.0, &ips, &mut out);
                out
            })
            .collect()
    }

    fn faulty(
        sys: &ParticleSystem,
        calls: &[Vec<usize>],
        plan: FaultPlan,
    ) -> (Vec<Vec<ForceResult>>, FaultTolerantEngine) {
        let mut e = FaultTolerantEngine::new(Grape6Config::single_host(), &plan);
        e.load(sys);
        let outs = calls
            .iter()
            .map(|idx| {
                let ips = ips_for(sys, idx);
                let mut out = vec![ForceResult::default(); ips.len()];
                e.compute(0.0, &ips, &mut out);
                out
            })
            .collect();
        (outs, e)
    }

    #[test]
    fn fault_free_matches_plain_engine_bitwise() {
        let sys = ring_system(48);
        let calls: Vec<Vec<usize>> = vec![(0..48).collect(), vec![3, 7], vec![0]];
        let clean = reference(&sys, &calls);
        let (outs, e) = faulty(&sys, &calls, FaultPlan::empty());
        assert_eq!(clean, outs);
        assert!(e.fault_stats().is_zero());
    }

    #[test]
    fn jmem_flip_detected_and_recovered_bitwise() {
        let sys = ring_system(48);
        let calls: Vec<Vec<usize>> = vec![(0..48).collect(), vec![3, 7], vec![0, 1, 2]];
        let clean = reference(&sys, &calls);
        // A high-order position-bit flip in unit B before the second call.
        let plan = plan_of(vec![FaultEvent {
            at_step: 1,
            kind: FaultKind::JMemFlip { unit: 1, index: 3, bit: 40 },
        }]);
        let (outs, e) = faulty(&sys, &calls, plan);
        assert_eq!(clean, outs, "recovered output must be bit-identical");
        let st = e.fault_stats();
        assert_eq!(st.injected, 1);
        assert!(st.dmr_mismatches >= 1, "flip must be caught by DMR");
        assert_eq!(st.scrubs, 1);
        assert_eq!(st.words_scrubbed, 1, "exactly the corrupted word is rewritten");
        assert!(st.retries >= 2, "one failed retry + one post-scrub recompute");
    }

    #[test]
    fn link_flip_caught_by_checksum_and_retransmitted() {
        let sys = ring_system(32);
        let calls: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![5]];
        let clean = reference(&sys, &calls);
        let plan = plan_of(vec![FaultEvent { at_step: 0, kind: FaultKind::LinkFlip { bit: 77 } }]);
        let (outs, e) = faulty(&sys, &calls, plan);
        assert_eq!(clean, outs);
        let st = e.fault_stats();
        assert_eq!(st.checksum_errors, 1);
        assert_eq!(st.retries, 1);
        assert_eq!(st.dmr_mismatches, 0, "a link flip never reaches the DMR compare");
    }

    #[test]
    fn board_failure_degrades_timing_but_not_bits() {
        let sys = ring_system(48);
        let calls: Vec<Vec<usize>> = vec![(0..48).collect(), (0..48).collect()];
        let clean = reference(&sys, &calls);
        // A two-board host so there is a board to lose.
        let mut config = Grape6Config::single_host();
        config.timing.geometry.boards_per_host = 2;
        let plan = plan_of(vec![FaultEvent { at_step: 1, kind: FaultKind::BoardFail { unit: 0 } }]);
        let run = |plan: &FaultPlan| {
            let mut e = FaultTolerantEngine::new(config, plan);
            e.load(&sys);
            let outs: Vec<Vec<ForceResult>> = calls
                .iter()
                .map(|idx| {
                    let ips = ips_for(&sys, idx);
                    let mut out = vec![ForceResult::default(); ips.len()];
                    e.compute(0.0, &ips, &mut out);
                    out
                })
                .collect();
            (outs, e)
        };
        let (outs, e) = run(&plan);
        assert_eq!(clean, outs, "a board death must not change the physics");
        assert_eq!(e.fault_stats().boards_failed, 1);
        assert_eq!(e.boards_per_host(), (1, 2));
        // The degraded machine is slower than a fault-free one over the
        // same calls.
        let (_, e_clean) = run(&FaultPlan::empty());
        assert!(e.modeled_seconds() > e_clean.modeled_seconds());
    }

    #[test]
    fn checkpoint_state_roundtrip() {
        let sys = ring_system(32);
        let plan = FaultPlan::random(11, 6, 4);
        let calls: Vec<Vec<usize>> = (0..4).map(|_| (0..32).collect()).collect();
        let (_, e) = faulty(&sys, &calls, plan.clone());
        let state = e.checkpoint_state();
        let mut resumed = FaultTolerantEngine::new(Grape6Config::single_host(), &plan);
        resumed.load(&sys);
        resumed.restore_checkpoint_state(&state).unwrap();
        assert_eq!(resumed.fault_stats(), e.fault_stats());
        assert_eq!(resumed.step, e.step);
        assert_eq!(resumed.boards_per_host(), e.boards_per_host());
        assert_eq!(resumed.bytes_transferred(), e.bytes_transferred());
        assert_eq!(resumed.modeled_seconds().to_bits(), e.modeled_seconds().to_bits());
        assert!(resumed.restore_checkpoint_state(&state[..10]).is_err());
    }
}
