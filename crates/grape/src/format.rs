//! GRAPE-6 number formats.
//!
//! The GRAPE-6 pipeline does not compute in IEEE double precision. Following
//! the hardware (Makino & Taiji 1998; paper §5.2):
//!
//! * **positions** are stored and subtracted in 64-bit *fixed point* — the
//!   subtraction `x_j − x_i` is exact even when the two operands are close,
//!   which is the reason the format was chosen;
//! * **pipeline arithmetic** (the force/jerk evaluation proper) runs in a
//!   short floating-point format, comparable to IEEE single precision;
//! * **accumulation** of the ~N partial forces happens in wide fixed point,
//!   which makes the sum *exactly associative* — the hardware reduction tree
//!   over pipelines, chips and boards produces bit-identical results
//!   regardless of the reduction order.
//!
//! The emulation here reproduces those three properties with configurable
//! widths, so accuracy experiments (E9) can compare "exact f64" against
//! "hardware" arithmetic.

use grape6_core::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Round an `f64` to a reduced-precision binary mantissa of `bits` bits
/// (including the implicit leading bit), round-to-nearest-even. The exponent
/// range is left untouched (the hardware formats had ample exponent range for
/// this problem).
#[inline]
pub fn round_mantissa(x: f64, bits: u32) -> f64 {
    if bits >= 53 || x == 0.0 || !x.is_finite() {
        return x;
    }
    let shift = 53 - bits;
    let b = x.to_bits();
    let mask = (1u64 << shift) - 1;
    let half = 1u64 << (shift - 1);
    let frac = b & mask;
    let mut base = b & !mask;
    // Round to nearest, ties to even.
    if frac > half || (frac == half && (base >> shift) & 1 == 1) {
        base = base.wrapping_add(1u64 << shift);
    }
    f64::from_bits(base)
}

/// Round each component of a vector to `bits` of mantissa.
#[inline]
pub fn round_vec(v: Vec3, bits: u32) -> Vec3 {
    Vec3::new(round_mantissa(v.x, bits), round_mantissa(v.y, bits), round_mantissa(v.z, bits))
}

/// Lane-parallel [`round_mantissa`]: round `W` values at once, bit-identical
/// to the scalar routine in every lane.
///
/// The loop body is branch-free — the `bits ≥ 53` early-out is hoisted (it
/// depends only on the format, not the data), and the scalar routine's
/// zero/non-finite early-outs become per-lane selects of the *input* value
/// (for `x = ±0.0` the untouched input preserves the sign bit; for
/// NaN/infinity it preserves the payload, exactly as the scalar early
/// return does). Everything else is integer mask/compare/add on the raw
/// bit patterns, which the autovectorizer lowers to packed SIMD.
#[inline]
// grape6-lint: hot
pub fn round_mantissa_lanes<const W: usize>(xs: [f64; W], bits: u32) -> [f64; W] {
    if bits >= 53 {
        return xs;
    }
    let shift = 53 - bits;
    let mask = (1u64 << shift) - 1;
    let half = 1u64 << (shift - 1);
    let mut out = [0.0f64; W];
    for k in 0..W {
        let x = xs[k];
        let b = x.to_bits();
        let frac = b & mask;
        let mut base = b & !mask;
        // Round to nearest, ties to even — same predicate as the scalar path.
        let up = frac > half || (frac == half && (base >> shift) & 1 == 1);
        base = if up { base.wrapping_add(1u64 << shift) } else { base };
        out[k] = if x == 0.0 || !x.is_finite() { x } else { f64::from_bits(base) };
    }
    out
}

/// Documented half-ulp *relative* error bound of [`round_mantissa`]:
/// for every finite `x`, `|round_mantissa(x, bits) − x| ≤ rel_half_ulp(bits)·|x|`.
///
/// Round-to-nearest on a `bits`-bit mantissa (implicit leading bit included)
/// perturbs a value with exponent `e` by at most half an ulp, `2^(e−bits)`;
/// since `|x| ≥ 2^e`, the relative error is at most `2^−bits`. This constant
/// is the foundation of the conformance harness's precision oracle and is
/// pinned by property tests against the actual rounding code.
#[inline]
pub fn rel_half_ulp(bits: u32) -> f64 {
    2.0f64.powi(-(bits.min(53) as i32))
}

/// Quantization step of the wide force accumulator: contributions are
/// rounded to multiples of `2^−ACCUM_FRAC_BITS`, so a sum of `n` terms can
/// drift from the exact f64 result by at most `n/2` steps (half a step per
/// [`FixedAccumulator::add`]).
#[inline]
pub fn accum_quantum() -> f64 {
    2.0f64.powi(-(ACCUM_FRAC_BITS as i32))
}

/// 64-bit fixed-point position format.
///
/// Coordinates are stored as `i64` in units of `2^-frac_bits` length units;
/// `frac_bits = 54` gives a representable range of ±512 AU with a resolution
/// of 5.6×10⁻¹⁷ AU — far below the softening length, and wide enough for any
/// planetesimal scattered by the protoplanets short of solar-system escape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedPointFormat {
    /// Number of fractional bits.
    pub frac_bits: u32,
}

impl Default for FixedPointFormat {
    fn default() -> Self {
        Self { frac_bits: 54 }
    }
}

impl FixedPointFormat {
    /// Create a format with the given fractional-bit count (≤ 62).
    pub fn new(frac_bits: u32) -> Self {
        assert!(frac_bits <= 62, "frac_bits {frac_bits} too large for i64");
        Self { frac_bits }
    }

    /// Smallest representable increment.
    pub fn resolution(&self) -> f64 {
        2.0f64.powi(-(self.frac_bits as i32))
    }

    /// Documented half-ulp *absolute* round-trip bound: away from
    /// saturation, `|decode(encode(x)) − x| ≤ half_ulp()` (half the grid
    /// resolution). Like [`rel_half_ulp`] this is an oracle constant of the
    /// conformance harness, pinned by property tests.
    pub fn half_ulp(&self) -> f64 {
        self.resolution() / 2.0
    }

    /// Largest representable magnitude.
    pub fn range(&self) -> f64 {
        (i64::MAX as f64) * self.resolution()
    }

    /// Encode, rounding to the nearest representable value. Saturates at the
    /// format's range (the hardware clamps; an escaping particle pegged at
    /// the boundary is detected by the host).
    #[inline]
    pub fn encode(&self, x: f64) -> i64 {
        let scaled = x * 2.0f64.powi(self.frac_bits as i32);
        if scaled >= i64::MAX as f64 {
            i64::MAX
        } else if scaled <= i64::MIN as f64 {
            i64::MIN
        } else {
            scaled.round_ties_even() as i64
        }
    }

    /// Decode back to `f64`.
    #[inline]
    pub fn decode(&self, q: i64) -> f64 {
        q as f64 * self.resolution()
    }

    /// Encode a vector.
    #[inline]
    pub fn encode_vec(&self, v: Vec3) -> [i64; 3] {
        [self.encode(v.x), self.encode(v.y), self.encode(v.z)]
    }

    /// Decode a vector.
    #[inline]
    pub fn decode_vec(&self, q: [i64; 3]) -> Vec3 {
        Vec3::new(self.decode(q[0]), self.decode(q[1]), self.decode(q[2]))
    }
}

/// Wide fixed-point accumulator (one per output word in the hardware).
///
/// Partial forces are converted to `i128` fixed point and summed; integer
/// addition is associative, so any reduction order — per-pipeline, per-chip,
/// per-board, host-side — yields the same bits. `frac_bits = 96` puts the
/// quantization floor (≈1.3×10⁻²⁹) ten orders below the smallest
/// planetesimal-on-planetesimal accelerations in the paper's units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixedAccumulator {
    value: i128,
}

/// Fractional bits of the force accumulator format.
pub const ACCUM_FRAC_BITS: u32 = 96;

impl FixedAccumulator {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a real-valued contribution (quantized to the accumulator grid).
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.value += Self::quantize(x);
    }

    /// Merge another accumulator (the hardware reduction-tree operation).
    #[inline]
    pub fn merge(&mut self, other: Self) {
        self.value += other.value;
    }

    /// Read out as `f64`.
    #[inline]
    pub fn to_f64(&self) -> f64 {
        self.value as f64 * 2.0f64.powi(-(ACCUM_FRAC_BITS as i32))
    }

    #[inline]
    fn quantize(x: f64) -> i128 {
        let scaled = x * 2.0f64.powi(ACCUM_FRAC_BITS as i32);
        debug_assert!(scaled.abs() < i128::MAX as f64 / 4.0, "accumulator overflow risk: {x}");
        scaled.round_ties_even() as i128
    }
}

/// Accumulator triple for a vector quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VecAccumulator {
    x: FixedAccumulator,
    y: FixedAccumulator,
    z: FixedAccumulator,
}

impl VecAccumulator {
    /// A zeroed vector accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a vector contribution.
    #[inline]
    pub fn add(&mut self, v: Vec3) {
        self.x.add(v.x);
        self.y.add(v.y);
        self.z.add(v.z);
    }

    /// Merge another vector accumulator.
    #[inline]
    pub fn merge(&mut self, other: Self) {
        self.x.merge(other.x);
        self.y.merge(other.y);
        self.z.merge(other.z);
    }

    /// Read out as a `Vec3`.
    #[inline]
    pub fn to_vec3(&self) -> Vec3 {
        Vec3::new(self.x.to_f64(), self.y.to_f64(), self.z.to_f64())
    }
}

/// Arithmetic precision of the simulated pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// Full IEEE double precision end to end (a "perfect GRAPE"; useful for
    /// isolating algorithmic from arithmetic error).
    Exact,
    /// Hardware emulation: fixed-point position subtraction, short-mantissa
    /// pipeline arithmetic, fixed-point accumulation.
    Grape6 {
        /// Mantissa bits of the pipeline arithmetic (GRAPE-6 class ≈ 24).
        mantissa_bits: u32,
    },
}

impl Precision {
    /// The default hardware emulation (24-bit mantissa pipelines).
    pub fn grape6() -> Self {
        Precision::Grape6 { mantissa_bits: 24 }
    }

    /// Mantissa width used for pipeline arithmetic.
    pub fn mantissa_bits(&self) -> u32 {
        match self {
            Precision::Exact => 53,
            Precision::Grape6 { mantissa_bits } => *mantissa_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_mantissa_identity_at_53_bits() {
        let x = std::f64::consts::PI;
        assert_eq!(round_mantissa(x, 53), x);
        assert_eq!(round_mantissa(x, 60), x);
    }

    #[test]
    fn round_mantissa_preserves_powers_of_two() {
        for bits in [8, 16, 24, 32] {
            assert_eq!(round_mantissa(0.5, bits), 0.5);
            assert_eq!(round_mantissa(-4.0, bits), -4.0);
        }
    }

    #[test]
    fn round_mantissa_matches_f32_at_24_bits() {
        for &x in &[std::f64::consts::PI, 1.0 / 3.0, -std::f64::consts::E, 1e-12, 123456.789] {
            let r = round_mantissa(x, 24);
            assert_eq!(r as f32 as f64, r, "{x} → {r} not exactly representable in f32");
            assert!(((r - x) / x).abs() < 2.0f64.powi(-24), "rounding error too large for {x}");
        }
    }

    #[test]
    fn round_mantissa_error_bound() {
        let x = 1.0 + 1.0 / 3.0;
        for bits in [10, 16, 24, 40] {
            let err = (round_mantissa(x, bits) - x).abs() / x;
            assert!(err <= 2.0f64.powi(-(bits as i32)), "bits={bits} err={err:e}");
        }
    }

    #[test]
    fn round_mantissa_zero_and_nonfinite() {
        assert_eq!(round_mantissa(0.0, 24), 0.0);
        assert!(round_mantissa(f64::NAN, 24).is_nan());
        assert_eq!(round_mantissa(f64::INFINITY, 24), f64::INFINITY);
    }

    #[test]
    fn fixed_point_roundtrip_error_below_resolution() {
        let f = FixedPointFormat::default();
        for &x in &[0.0, 20.0, -35.0, 17.123456789, 1e-10, 500.0] {
            let err = (f.decode(f.encode(x)) - x).abs();
            assert!(err <= f.resolution() / 2.0 + 1e-300, "x={x} err={err:e}");
        }
    }

    #[test]
    fn fixed_point_range_covers_solar_system() {
        let f = FixedPointFormat::default();
        assert!(f.range() > 500.0, "range {} AU too small", f.range());
        assert!(f.resolution() < 1e-15);
    }

    #[test]
    fn fixed_point_saturates() {
        let f = FixedPointFormat::new(54);
        assert_eq!(f.encode(1e300), i64::MAX);
        assert_eq!(f.encode(-1e300), i64::MIN);
    }

    #[test]
    fn fixed_point_subtraction_is_exact() {
        // The motivating property: nearby positions subtract without
        // catastrophic cancellation *in the fixed-point domain*.
        let f = FixedPointFormat::default();
        let a = 20.000000000000004;
        let b = 20.000000000000001;
        let qa = f.encode(a);
        let qb = f.encode(b);
        let dx = f.decode(qa - qb); // exact integer subtraction
        let expect = f.decode(qa) - f.decode(qb);
        assert_eq!(dx, expect);
    }

    #[test]
    fn fixed_vec_roundtrip() {
        let f = FixedPointFormat::default();
        let v = Vec3::new(15.5, -35.0, 0.001);
        let r = f.decode_vec(f.encode_vec(v));
        assert!((r - v).norm() < 3.0 * f.resolution());
    }

    #[test]
    fn accumulator_is_order_independent() {
        let xs: Vec<f64> =
            (0..1000).map(|i| ((i * 2654435761u64 as usize) % 997) as f64 * 1e-7 - 5e-5).collect();
        let mut fwd = FixedAccumulator::new();
        for &x in &xs {
            fwd.add(x);
        }
        let mut rev = FixedAccumulator::new();
        for &x in xs.iter().rev() {
            rev.add(x);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.to_f64(), rev.to_f64());
    }

    #[test]
    fn accumulator_merge_equals_sequential() {
        let xs: Vec<f64> = (0..256).map(|i| (i as f64 - 128.0) * 1e-9).collect();
        let mut whole = FixedAccumulator::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = FixedAccumulator::new();
        let mut b = FixedAccumulator::new();
        for &x in &xs[..100] {
            a.add(x);
        }
        for &x in &xs[100..] {
            b.add(x);
        }
        a.merge(b);
        assert_eq!(a, whole);
    }

    #[test]
    fn accumulator_accuracy() {
        let mut acc = FixedAccumulator::new();
        let n = 10_000;
        for _ in 0..n {
            acc.add(1e-10);
        }
        let err = (acc.to_f64() - n as f64 * 1e-10).abs();
        assert!(err < n as f64 * 2.0f64.powi(-(ACCUM_FRAC_BITS as i32)));
    }

    #[test]
    fn vec_accumulator_matches_componentwise() {
        let mut va = VecAccumulator::new();
        va.add(Vec3::new(1e-3, -2e-3, 3e-3));
        va.add(Vec3::new(1.0, 2.0, -3.0));
        let v = va.to_vec3();
        assert!((v - Vec3::new(1.001, 1.998, -2.997)).norm() < 1e-12);
    }

    #[test]
    fn precision_presets() {
        assert_eq!(Precision::Exact.mantissa_bits(), 53);
        assert_eq!(Precision::grape6().mantissa_bits(), 24);
    }
}
