//! The GRAPE-6 network board (NB) and the tree network it builds
//! (paper §4.3, §5.2, Figs 5, 7, 10).
//!
//! An NB has one uplink (toward the host), four downlinks (toward processor
//! boards or further NBs), and cascade links to sibling NBs. Its internal
//! network is configurable in three modes — broadcast, 2-way multicast and
//! point-to-point — which lets a 4-host × 16-board cluster run as one unit,
//! two halves, or four independent nodes. Data moving down the tree is
//! streamed (wormhole-style), so a multi-level broadcast costs one link
//! serialization plus per-level latency; partial forces moving up are merged
//! by the reduction hardware at each level.

use crate::link::Link;
use serde::{Deserialize, Serialize};

/// Routing mode of a network board (paper §4.3: "The network can be
/// configured in three modes, broadcast, 2-way multicast and
/// point-to-point").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkMode {
    /// All downlinks receive every word: the whole sub-tree acts as one unit.
    Broadcast,
    /// Downlinks split into two groups: the sub-tree acts as two units.
    TwoWayMulticast,
    /// Each downlink is independent: four separate units.
    PointToPoint,
}

impl NetworkMode {
    /// Number of independent partitions the mode yields on one NB.
    pub fn partitions(&self) -> usize {
        match self {
            NetworkMode::Broadcast => 1,
            NetworkMode::TwoWayMulticast => 2,
            NetworkMode::PointToPoint => 4,
        }
    }

    /// Downlinks available to each partition (of the NB's four).
    pub fn links_per_partition(&self) -> usize {
        4 / self.partitions()
    }
}

/// Geometry of one network board.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkBoardGeometry {
    /// Downlinks per board (4 on GRAPE-6).
    pub downlinks: usize,
    /// The LVDS link used on every port.
    pub link: Link,
    /// Per-board forwarding latency (pipeline registers in the FPGA path).
    pub forward_latency: f64,
}

impl Default for NetworkBoardGeometry {
    fn default() -> Self {
        Self { downlinks: 4, link: Link::lvds(), forward_latency: 1.0e-6 }
    }
}

/// A tree of network boards connecting one host port to `leaves` processor
/// boards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkTree {
    /// Processor boards at the leaves.
    pub leaves: usize,
    /// NB geometry at every level.
    pub board: NetworkBoardGeometry,
}

impl NetworkTree {
    /// Build a tree spanning `leaves` processor boards.
    pub fn spanning(leaves: usize, board: NetworkBoardGeometry) -> Self {
        assert!(leaves >= 1);
        Self { leaves, board }
    }

    /// Tree depth (number of NB levels between host and processor boards).
    pub fn levels(&self) -> u32 {
        let mut levels = 0u32;
        let mut reach = 1usize;
        while reach < self.leaves {
            reach *= self.board.downlinks;
            levels += 1;
        }
        levels.max(1)
    }

    /// Number of network boards required.
    pub fn board_count(&self) -> usize {
        let mut total = 0usize;
        let mut width = 1usize;
        for _ in 0..self.levels() {
            total += width;
            width *= self.board.downlinks;
        }
        total
    }

    /// Time to broadcast `bytes` from the host port to every leaf: the
    /// stream crosses one link serialization plus per-level forwarding.
    pub fn broadcast_time(&self, bytes: u64) -> f64 {
        self.board.link.transfer_time(bytes) + self.levels() as f64 * self.board.forward_latency
    }

    /// Time to gather-and-reduce `bytes` of partial results from every leaf
    /// to the host port. The reduction units merge streams at wire speed, so
    /// the cost is symmetric with broadcast.
    pub fn reduce_time(&self, bytes: u64) -> f64 {
        self.broadcast_time(bytes)
    }

    /// Time to deliver distinct payloads of `bytes` each to every leaf
    /// (point-to-point mode): the uplink serializes all of them.
    pub fn scatter_time(&self, bytes_per_leaf: u64) -> f64 {
        self.board.link.transfer_time(bytes_per_leaf * self.leaves as u64)
            + self.levels() as f64 * self.board.forward_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_partitions() {
        assert_eq!(NetworkMode::Broadcast.partitions(), 1);
        assert_eq!(NetworkMode::TwoWayMulticast.partitions(), 2);
        assert_eq!(NetworkMode::PointToPoint.partitions(), 4);
        assert_eq!(NetworkMode::Broadcast.links_per_partition(), 4);
        assert_eq!(NetworkMode::PointToPoint.links_per_partition(), 1);
    }

    #[test]
    fn single_nb_spans_four_boards() {
        let t = NetworkTree::spanning(4, NetworkBoardGeometry::default());
        assert_eq!(t.levels(), 1);
        assert_eq!(t.board_count(), 1);
    }

    #[test]
    fn two_levels_span_sixteen_boards() {
        // §4.3: "Using four NBs, we can connect four host computers to 16
        // processor boards" — one root + four second-level boards.
        let t = NetworkTree::spanning(16, NetworkBoardGeometry::default());
        assert_eq!(t.levels(), 2);
        assert_eq!(t.board_count(), 1 + 4);
    }

    #[test]
    fn broadcast_time_is_one_serialization_plus_latency() {
        let t = NetworkTree::spanning(16, NetworkBoardGeometry::default());
        let bytes = 9_000_000; // 0.1 s at 90 MB/s
        let time = t.broadcast_time(bytes);
        let serial = Link::lvds().transfer_time(bytes);
        assert!(time >= serial);
        assert!(time < serial + 1e-5, "tree overhead too high: {time}");
    }

    #[test]
    fn scatter_costs_scale_with_leaves() {
        let t = NetworkTree::spanning(4, NetworkBoardGeometry::default());
        let b = t.broadcast_time(1000);
        let s = t.scatter_time(1000);
        assert!(s > 2.0 * b || s > b, "scatter {s} vs broadcast {b}");
        // 4 distinct payloads serialize through the uplink.
        assert!((s - Link::lvds().transfer_time(4000) - t.board.forward_latency).abs() < 1e-12);
    }

    #[test]
    fn reduce_symmetric_with_broadcast() {
        let t = NetworkTree::spanning(16, NetworkBoardGeometry::default());
        assert_eq!(t.reduce_time(4096), t.broadcast_time(4096));
    }

    #[test]
    fn deeper_trees_add_only_latency() {
        let shallow = NetworkTree::spanning(4, NetworkBoardGeometry::default());
        let deep = NetworkTree::spanning(64, NetworkBoardGeometry::default());
        let b = 1_000_000;
        let d = deep.broadcast_time(b) - shallow.broadcast_time(b);
        assert!(d > 0.0);
        assert!(d < 1e-4, "per-level cost should be microseconds, got {d}");
    }
}
