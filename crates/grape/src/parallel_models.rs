//! Communication models for the three host-parallelization strategies of
//! paper §4.3 (Figs 3–6):
//!
//! 1. **Naive**: p hosts, each with its own GRAPE, exchanging particle data
//!    over a commodity network (Fig 3). Every host must receive *all*
//!    particles updated in the step, so per-host traffic does not shrink
//!    with p — "the parallel system configured in the way shown in figure 3
//!    is no better than a single host".
//! 2. **NB tree**: the GRAPE hardware exchanges j-data itself through the
//!    network boards (Figs 4–5); hosts send only their own block and "do not
//!    have to exchange any particle data".
//! 3. **2-D host grid**: hosts arranged in a √p × √p matrix, one row doing
//!    integration and the others emulating network boards (Fig 6); traffic
//!    per host scales with n/√p.

use crate::link::{Link, WireFormat};
use serde::{Deserialize, Serialize};

/// A host-parallelization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Fig 3: hosts exchange all updated particles over the host network.
    Naive,
    /// Figs 4–5: dedicated network boards move j-data between GRAPEs.
    NetworkBoards,
    /// Fig 6: 2-D grid of host–GRAPE pairs emulating the NB function.
    HostGrid2D,
}

impl Strategy {
    /// All strategies, for sweeps.
    pub const ALL: [Strategy; 3] = [Strategy::Naive, Strategy::NetworkBoards, Strategy::HostGrid2D];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Naive => "naive (fig 3)",
            Strategy::NetworkBoards => "NB tree (figs 4-5)",
            Strategy::HostGrid2D => "2-D grid (fig 6)",
        }
    }
}

/// Parameters of the scaling study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelModel {
    /// Host-to-host commodity network.
    pub host_net: Link,
    /// Host-to-GRAPE (PCI) link.
    pub pci: Link,
    /// GRAPE-to-GRAPE hardware link (LVDS).
    pub lvds: Link,
    /// Wire sizes.
    pub wire: WireFormat,
}

impl Default for ParallelModel {
    fn default() -> Self {
        Self {
            host_net: Link::gigabit_ethernet(),
            pci: Link::pci(),
            lvds: Link::lvds(),
            wire: WireFormat::default(),
        }
    }
}

impl ParallelModel {
    /// Bytes of j-data each host must *receive* per block step of size
    /// `n_active`, under the given strategy with `p` hosts.
    pub fn inbound_bytes_per_host(&self, strategy: Strategy, p: usize, n_active: usize) -> u64 {
        assert!(p >= 1);
        let jb = self.wire.j_particle_bytes;
        let n_host = n_active.div_ceil(p);
        match strategy {
            // Everyone needs everyone else's block, over the host NIC.
            Strategy::Naive => ((p - 1) * n_host) as u64 * jb,
            // The hardware network moves the data; the host NIC carries none.
            Strategy::NetworkBoards => 0,
            // Row + column broadcasts: each node receives the blocks of its
            // row and its column (√p − 1 each).
            Strategy::HostGrid2D => {
                let side = (p as f64).sqrt().round().max(1.0) as usize;
                (2 * side.saturating_sub(1) * n_host) as u64 * jb
            }
        }
    }

    /// Per-step communication time for the j-exchange phase.
    pub fn exchange_time(&self, strategy: Strategy, p: usize, n_active: usize) -> f64 {
        let jb = self.wire.j_particle_bytes;
        let n_host = n_active.div_ceil(p);
        match strategy {
            Strategy::Naive => {
                // The NIC serializes the inbound stream.
                self.host_net.transfer_time(self.inbound_bytes_per_host(strategy, p, n_active))
            }
            Strategy::NetworkBoards => {
                // Host writes only its own block over PCI; each GRAPE has
                // p−1 data-in ports (§4.3), so the peer streams arrive in
                // parallel at LVDS speed.
                let own = self.pci.transfer_time(n_host as u64 * jb);
                let hw = if p > 1 { self.lvds.transfer_time(n_host as u64 * jb) } else { 0.0 };
                own.max(hw)
            }
            Strategy::HostGrid2D => {
                self.host_net.transfer_time(self.inbound_bytes_per_host(strategy, p, n_active))
            }
        }
    }

    /// Parallel speedup of the exchange phase relative to one host doing the
    /// GRAPE write-back alone (higher is better; the naive strategy should
    /// flatline — the paper's point).
    pub fn exchange_speedup(&self, strategy: Strategy, p: usize, n_active: usize) -> f64 {
        let single = self.pci.transfer_time(n_active as u64 * self.wire.j_particle_bytes);
        let parallel = self
            .exchange_time(strategy, p, n_active)
            .max(self.pci.transfer_time(n_active.div_ceil(p) as u64 * self.wire.j_particle_bytes));
        single / parallel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N_ACT: usize = 8192;

    #[test]
    fn naive_inbound_does_not_shrink_with_p() {
        // §4.3: "the amount of communication is not reduced when we increase
        // the number of host computers".
        let m = ParallelModel::default();
        let b2 = m.inbound_bytes_per_host(Strategy::Naive, 2, N_ACT);
        let b16 = m.inbound_bytes_per_host(Strategy::Naive, 16, N_ACT);
        // Inbound stays within a factor ~2 of the full block, regardless of p.
        assert!(b16 as f64 > 0.8 * b2 as f64, "b2={b2} b16={b16}");
    }

    #[test]
    fn network_boards_offload_the_host_nic() {
        let m = ParallelModel::default();
        assert_eq!(m.inbound_bytes_per_host(Strategy::NetworkBoards, 16, N_ACT), 0);
    }

    #[test]
    fn grid_inbound_scales_with_sqrt_p() {
        let m = ParallelModel::default();
        let b4 = m.inbound_bytes_per_host(Strategy::HostGrid2D, 4, N_ACT);
        let b16 = m.inbound_bytes_per_host(Strategy::HostGrid2D, 16, N_ACT);
        // p: 4→16 means side 2→4: inbound per host ∝ (side−1)·n/p → ×(3/1)·(1/4)
        let ratio = b16 as f64 / b4 as f64;
        assert!((ratio - 0.75).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn nb_strategy_scales_naive_does_not() {
        let m = ParallelModel::default();
        let s_naive = m.exchange_speedup(Strategy::Naive, 16, N_ACT);
        let s_nb = m.exchange_speedup(Strategy::NetworkBoards, 16, N_ACT);
        let s_grid = m.exchange_speedup(Strategy::HostGrid2D, 16, N_ACT);
        assert!(s_naive < 2.0, "naive speedup {s_naive} should flatline");
        assert!(s_nb > 8.0, "NB speedup {s_nb} should approach p");
        assert!(s_grid > s_naive, "grid {s_grid} should beat naive {s_naive}");
    }

    #[test]
    fn exchange_time_positive_and_ordered() {
        let m = ParallelModel::default();
        for p in [1usize, 4, 16] {
            let t_naive = m.exchange_time(Strategy::Naive, p, N_ACT);
            let t_nb = m.exchange_time(Strategy::NetworkBoards, p, N_ACT);
            assert!(t_nb >= 0.0 && t_naive >= 0.0);
            if p > 1 {
                assert!(t_nb <= t_naive * 2.0, "p={p}: NB {t_nb} vs naive {t_naive}");
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = Strategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.windows(2).all(|w| w[0] != w[1]));
    }
}
