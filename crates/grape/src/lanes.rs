//! AoSoA lane tiles for the simulated GRAPE-6 force pipelines.
//!
//! The real chip feeds one j-particle to eight *virtual multiple pipelines*
//! per physical pipeline (paper §5.2); [`GrapeLaneTile`] is the software
//! analogue: `W` i-particle register sets in structure-of-arrays lanes,
//! one broadcast j-particle per [`GrapeLaneTile::interact`] call. Every
//! pipeline stage runs as a fixed-width array operation — exact fixed-point
//! subtraction, decode, then [`round_mantissa_lanes`] after each arithmetic
//! stage — so the autovectorizer can emit packed SIMD while each lane
//! computes *exactly* the scalar [`crate::pipeline::pipeline_interaction`]
//! expression tree. The wide fixed-point accumulators stay scalar per lane
//! (`i128` adds are exactly associative, so they never limit bit equality).
//!
//! Determinism: lanes span i-particles only, the j-stream is never split or
//! reordered, and every stage is either exact integer arithmetic or a
//! correctly-rounded IEEE f64 operation followed by the same rounding step
//! the scalar path applies. Lane width therefore cannot change any output
//! bit — the contract pinned by the conformance runner's `lanes/*` checks.
//!
//! Ragged tails follow the core remainder-lane rule: the tile is padded by
//! replicating lane 0 (position, velocity and self-index); padding lanes run
//! real arithmetic whose results are never stored.

use crate::format::{round_mantissa_lanes, FixedPointFormat, Precision};
use crate::pipeline::PipelineRegisters;
use crate::predictor::PredictedJ;
use grape6_core::particle::{ForceResult, IParticle, Neighbor};
use grape6_core::vec3::Vec3;

/// Partial pipeline state for one i-particle over one j-chunk. The
/// fixed-point accumulators merge exactly associatively (the hardware
/// reduction-tree property), so chunked partials read out bit-identically
/// to one flat sweep — for any chunking, on any thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepPartial {
    /// Accumulated pipeline output registers.
    pub regs: PipelineRegisters,
    /// Running nearest-neighbour candidate.
    pub nn: Option<Neighbor>,
}

impl SweepPartial {
    /// Hardware reduction-tree merge (ascending chunk order keeps the
    /// first-minimum nearest-neighbour tie-break deterministic).
    pub fn merge(&mut self, other: &Self) {
        self.regs.merge(&other.regs);
        if let Some(nb) = other.nn {
            if self.nn.is_none_or(|t| nb.r2 < t.r2) {
                self.nn = Some(nb);
            }
        }
    }
}

/// Sentinel for "no neighbour seen yet" in the lane registers.
const NONE: u64 = u64::MAX;

/// `W` virtual-pipeline register sets in structure-of-arrays lanes.
#[derive(Debug, Clone)]
pub struct GrapeLaneTile<const W: usize> {
    /// Fixed-point i-positions (lanes).
    qx: [i64; W],
    qy: [i64; W],
    qz: [i64; W],
    /// Pipeline-word i-velocities (lanes).
    vx: [f64; W],
    vy: [f64; W],
    vz: [f64; W],
    /// j-index excluded from the nearest-neighbour search per lane (the
    /// force sum runs unmasked over all j, exactly like the hardware).
    skip: [u64; W],
    /// Wide fixed-point accumulators, one register set per lane.
    regs: [PipelineRegisters; W],
    /// Nearest-neighbour r² (valid only when `nn_j != NONE`).
    nn_r2: [f64; W],
    /// Nearest-neighbour j-index, [`NONE`] until the first candidate.
    nn_j: [u64; W],
}

impl<const W: usize> GrapeLaneTile<W> {
    /// Encode up to `W` i-particles into a tile, seeding accumulators and
    /// neighbour registers from `prior` (zeroed partials for a fresh sweep).
    /// Ragged tails are padded by replicating lane 0.
    pub fn load(
        fmt: &FixedPointFormat,
        precision: Precision,
        ips: &[IParticle],
        prior: &[SweepPartial],
    ) -> Self {
        assert!(!ips.is_empty() && ips.len() <= W);
        assert_eq!(ips.len(), prior.len());
        let mut t = Self {
            qx: [0; W],
            qy: [0; W],
            qz: [0; W],
            vx: [0.0; W],
            vy: [0.0; W],
            vz: [0.0; W],
            skip: [NONE; W],
            regs: [PipelineRegisters::new(); W],
            nn_r2: [f64::INFINITY; W],
            nn_j: [NONE; W],
        };
        for k in 0..W {
            let (ip, p) = if k < ips.len() { (&ips[k], &prior[k]) } else { (&ips[0], &prior[0]) };
            let hw = crate::chip::HwIParticle::encode(fmt, precision, ip.pos, ip.vel);
            t.qx[k] = hw.qpos[0];
            t.qy[k] = hw.qpos[1];
            t.qz[k] = hw.qpos[2];
            t.vx[k] = hw.vel.x;
            t.vy[k] = hw.vel.y;
            t.vz[k] = hw.vel.z;
            t.skip[k] = ip.index as u64;
            t.regs[k] = p.regs;
            if let Some(nb) = p.nn {
                t.nn_r2[k] = nb.r2;
                t.nn_j[k] = nb.index as u64;
            }
        }
        t
    }

    /// Feed one predicted j-particle through all `W` lanes: the pipeline
    /// stages of [`crate::pipeline::pipeline_interaction`] as fixed-width
    /// array arithmetic, each stage rounded by [`round_mantissa_lanes`].
    ///
    /// The force accumulates *unmasked* over every j, the own slot included
    /// (its self term contributes no force but −m/ε of potential, removed by
    /// the host at readout) — exactly the hardware convention the scalar
    /// path follows. Only the nearest-neighbour search masks the own slot,
    /// using the **unrounded** fixed-point difference like the scalar path.
    #[inline(always)]
    // grape6-lint: hot
    pub fn interact(
        &mut self,
        fmt: &FixedPointFormat,
        precision: Precision,
        j: usize,
        pj: &PredictedJ,
        eps2: f64,
    ) {
        let bits = precision.mantissa_bits();
        let res = fmt.resolution();
        let j64 = j as u64;

        // Stage 1: exact fixed-point subtraction, decode to f64 (unrounded).
        let mut dxu = [0.0f64; W];
        let mut dyu = [0.0f64; W];
        let mut dzu = [0.0f64; W];
        for k in 0..W {
            dxu[k] = pj.qpos[0].wrapping_sub(self.qx[k]) as f64 * res;
            dyu[k] = pj.qpos[1].wrapping_sub(self.qy[k]) as f64 * res;
            dzu[k] = pj.qpos[2].wrapping_sub(self.qz[k]) as f64 * res;
        }

        // Nearest neighbour uses the unrounded difference (same association
        // order as Vec3::norm2) and masks the own slot.
        for k in 0..W {
            let r2u = dxu[k] * dxu[k] + dyu[k] * dyu[k] + dzu[k] * dzu[k];
            let take = (self.skip[k] != j64) & ((self.nn_j[k] == NONE) | (r2u < self.nn_r2[k]));
            self.nn_r2[k] = if take { r2u } else { self.nn_r2[k] };
            self.nn_j[k] = if take { j64 } else { self.nn_j[k] };
        }

        // Stage 2: conversion to the short pipeline word.
        let dx = round_mantissa_lanes(dxu, bits);
        let dy = round_mantissa_lanes(dyu, bits);
        let dz = round_mantissa_lanes(dzu, bits);
        let mut dvx = [0.0f64; W];
        let mut dvy = [0.0f64; W];
        let mut dvz = [0.0f64; W];
        for k in 0..W {
            dvx[k] = pj.vel.x - self.vx[k];
            dvy[k] = pj.vel.y - self.vy[k];
            dvz[k] = pj.vel.z - self.vz[k];
        }
        let dvx = round_mantissa_lanes(dvx, bits);
        let dvy = round_mantissa_lanes(dvy, bits);
        let dvz = round_mantissa_lanes(dvz, bits);

        // Stage 3: the arithmetic pipeline, one rounding per stage.
        let mut r2 = [0.0f64; W];
        for k in 0..W {
            r2[k] = dx[k] * dx[k] + dy[k] * dy[k] + dz[k] * dz[k] + eps2;
        }
        let r2 = round_mantissa_lanes(r2, bits);
        let mut rinv = [0.0f64; W];
        for k in 0..W {
            rinv[k] = 1.0 / r2[k].sqrt();
        }
        let rinv = round_mantissa_lanes(rinv, bits);
        let mut rinv2 = [0.0f64; W];
        for k in 0..W {
            rinv2[k] = rinv[k] * rinv[k];
        }
        let rinv2 = round_mantissa_lanes(rinv2, bits);
        let mut r3 = [0.0f64; W];
        for k in 0..W {
            r3[k] = rinv2[k] * rinv[k];
        }
        let r3 = round_mantissa_lanes(r3, bits);
        let mut mr3inv = [0.0f64; W];
        for k in 0..W {
            mr3inv[k] = pj.mass * r3[k];
        }
        let mr3inv = round_mantissa_lanes(mr3inv, bits);
        let mut rv = [0.0f64; W];
        for k in 0..W {
            rv[k] = dx[k] * dvx[k] + dy[k] * dvy[k] + dz[k] * dvz[k];
        }
        let rv = round_mantissa_lanes(rv, bits);
        let mut alpha = [0.0f64; W];
        for k in 0..W {
            alpha[k] = 3.0 * rv[k] * rinv2[k];
        }
        let alpha = round_mantissa_lanes(alpha, bits);
        let mut ax = [0.0f64; W];
        let mut ay = [0.0f64; W];
        let mut az = [0.0f64; W];
        for k in 0..W {
            ax[k] = dx[k] * mr3inv[k];
            ay[k] = dy[k] * mr3inv[k];
            az[k] = dz[k] * mr3inv[k];
        }
        let ax = round_mantissa_lanes(ax, bits);
        let ay = round_mantissa_lanes(ay, bits);
        let az = round_mantissa_lanes(az, bits);
        let mut jx = [0.0f64; W];
        let mut jy = [0.0f64; W];
        let mut jz = [0.0f64; W];
        for k in 0..W {
            jx[k] = (dvx[k] - dx[k] * alpha[k]) * mr3inv[k];
            jy[k] = (dvy[k] - dy[k] * alpha[k]) * mr3inv[k];
            jz[k] = (dvz[k] - dz[k] * alpha[k]) * mr3inv[k];
        }
        let jx = round_mantissa_lanes(jx, bits);
        let jy = round_mantissa_lanes(jy, bits);
        let jz = round_mantissa_lanes(jz, bits);
        let mut pot = [0.0f64; W];
        for k in 0..W {
            pot[k] = -pj.mass * rinv[k];
        }
        let pot = round_mantissa_lanes(pot, bits);

        // Stage 4: wide fixed-point accumulation (exact, scalar per lane).
        for k in 0..W {
            self.regs[k].acc.add(Vec3::new(ax[k], ay[k], az[k]));
            self.regs[k].jerk.add(Vec3::new(jx[k], jy[k], jz[k]));
            self.regs[k].pot.add(pot[k]);
            self.regs[k].count += 1;
        }
    }

    /// Write the first `out.len()` lanes back as partials (padding dropped).
    pub fn store(&self, out: &mut [SweepPartial]) {
        debug_assert!(out.len() <= W);
        for (k, o) in out.iter_mut().enumerate() {
            o.regs = self.regs[k];
            o.nn = if self.nn_j[k] == NONE {
                None
            } else {
                Some(Neighbor { index: self.nn_j[k] as usize, r2: self.nn_r2[k] })
            };
        }
    }
}

/// Read a swept partial out as a [`ForceResult`], applying the host-side
/// self-potential correction (the pipeline sums over *all* j including the
/// particle itself, which contributes −m/ε of potential and nothing else).
pub fn partial_to_force(p: &SweepPartial, self_mass: Option<f64>, eps2: f64) -> ForceResult {
    let (acc, jerk, mut pot) = p.regs.read();
    if let Some(m) = self_mass {
        pot += m / eps2.sqrt();
    }
    ForceResult { acc, jerk, pot, nn: p.nn }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::HwIParticle;
    use crate::pipeline::PipelineRegisters;
    use crate::predictor::{predict_j, JParticle};

    fn jmem(fmt: &FixedPointFormat, precision: Precision, n: usize) -> Vec<JParticle> {
        let mut seed = 31u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n)
            .map(|_| {
                JParticle::encode(
                    fmt,
                    precision,
                    Vec3::new(rng() * 30.0, rng() * 30.0, rng()),
                    Vec3::new(rng(), rng(), rng()),
                    Vec3::new(rng(), rng(), rng()) * 1e-3,
                    Vec3::new(rng(), rng(), rng()) * 1e-5,
                    1e-9 * (1.0 + rng().abs()),
                    0.0,
                )
            })
            .collect()
    }

    fn scalar_reference(
        fmt: &FixedPointFormat,
        precision: Precision,
        ip: &IParticle,
        pred: &[PredictedJ],
        eps2: f64,
    ) -> SweepPartial {
        let hw = HwIParticle::encode(fmt, precision, ip.pos, ip.vel);
        let mut regs = PipelineRegisters::new();
        let mut nn: Option<Neighbor> = None;
        for (j, pj) in pred.iter().enumerate() {
            regs.accumulate(fmt, precision, hw.qpos, pj.qpos, hw.vel, pj.vel, pj.mass, eps2);
            if j != ip.index {
                let dx = fmt.decode_vec([
                    pj.qpos[0].wrapping_sub(hw.qpos[0]),
                    pj.qpos[1].wrapping_sub(hw.qpos[1]),
                    pj.qpos[2].wrapping_sub(hw.qpos[2]),
                ]);
                let r2 = dx.norm2();
                if nn.is_none_or(|n| r2 < n.r2) {
                    nn = Some(Neighbor { index: j, r2 });
                }
            }
        }
        SweepPartial { regs, nn }
    }

    fn assert_tile_matches_scalar<const W: usize>(precision: Precision, b: usize) {
        let fmt = FixedPointFormat::default();
        let mem = jmem(&fmt, precision, 41);
        let pred: Vec<PredictedJ> =
            mem.iter().map(|j| predict_j(&fmt, precision, j, 0.125)).collect();
        let eps2 = 0.008 * 0.008;
        let ips: Vec<IParticle> = (0..b)
            .map(|i| IParticle { index: i, pos: fmt.decode_vec(mem[i].qpos), vel: mem[i].vel })
            .collect();
        let mut out = vec![SweepPartial::default(); b];
        // Two j-segments to exercise the accumulator reload between tiles.
        let mut tile = GrapeLaneTile::<W>::load(&fmt, precision, &ips, &out);
        for (j, pj) in pred.iter().enumerate().take(23) {
            tile.interact(&fmt, precision, j, pj, eps2);
        }
        tile.store(&mut out);
        let mut tile = GrapeLaneTile::<W>::load(&fmt, precision, &ips, &out);
        for (j, pj) in pred.iter().enumerate().skip(23) {
            tile.interact(&fmt, precision, j, pj, eps2);
        }
        tile.store(&mut out);
        for (k, ip) in ips.iter().enumerate() {
            let want = scalar_reference(&fmt, precision, ip, &pred, eps2);
            let (ga, gj, gp) = out[k].regs.read();
            let (wa, wj, wp) = want.regs.read();
            assert_eq!(ga, wa, "W={W} b={b} lane {k} acc");
            assert_eq!(gj, wj, "W={W} b={b} lane {k} jerk");
            assert_eq!(gp.to_bits(), wp.to_bits(), "W={W} b={b} lane {k} pot");
            assert_eq!(out[k].regs.count, want.regs.count);
            assert_eq!(
                out[k].nn.map(|n| (n.index, n.r2.to_bits())),
                want.nn.map(|n| (n.index, n.r2.to_bits())),
                "W={W} b={b} lane {k} nn"
            );
        }
    }

    #[test]
    fn grape6_precision_tiles_match_scalar_bitwise() {
        for b in [1usize, 3, 4, 5, 7, 8] {
            assert_tile_matches_scalar::<4>(Precision::grape6(), b.min(4));
            assert_tile_matches_scalar::<8>(Precision::grape6(), b);
        }
    }

    #[test]
    fn exact_precision_tiles_match_scalar_bitwise() {
        for b in [1usize, 2, 4, 6, 8] {
            assert_tile_matches_scalar::<8>(Precision::Exact, b);
        }
    }

    #[test]
    fn narrow_mantissa_tiles_match_scalar_bitwise() {
        // An aggressively short word stresses the rounding step itself.
        for b in [1usize, 3, 4] {
            assert_tile_matches_scalar::<4>(Precision::Grape6 { mantissa_bits: 10 }, b);
        }
    }
}
