//! The GRAPE-6 processor board (PB): 32 processor chips on eight daughter
//! cards, with a hardware reduction tree that sums the partial forces the
//! chips compute from their disjoint j-particle subsets (paper §5.2, Fig 8).

use crate::chip::{ChipError, ChipGeometry, Grape6Chip, HwIParticle};
use crate::format::{FixedPointFormat, Precision};
use crate::pipeline::PipelineRegisters;
use crate::predictor::JParticle;
use serde::{Deserialize, Serialize};

/// Geometry of a processor board.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoardGeometry {
    /// Chips per board (32 on GRAPE-6: 8 daughter cards × 4 chips).
    pub chips: usize,
    /// Per-chip geometry.
    pub chip: ChipGeometry,
}

impl Default for BoardGeometry {
    fn default() -> Self {
        Self { chips: 32, chip: ChipGeometry::default() }
    }
}

impl BoardGeometry {
    /// Peak flops of the whole board.
    pub fn peak_flops(&self) -> f64 {
        self.chips as f64 * self.chip.peak_flops()
    }

    /// j-particle capacity of the whole board.
    pub fn jmem_capacity(&self) -> usize {
        self.chips * self.chip.jmem_capacity
    }

    /// Cycles for a board-level force call: chips run in parallel on their
    /// local j-slices, so the board takes as long as its fullest chip.
    pub fn compute_cycles(&self, n_i: usize, n_j_total: usize) -> u64 {
        let n_j_chip = n_j_total.div_ceil(self.chips);
        self.chip.compute_cycles(n_i, n_j_chip)
    }
}

/// Functional + cycle model of a processor board.
#[derive(Debug, Clone)]
pub struct ProcessorBoard {
    /// Board geometry.
    pub geometry: BoardGeometry,
    chips: Vec<Grape6Chip>,
    /// j index → (chip, slot) routing table built at load time.
    routes: Vec<(usize, usize)>,
}

impl ProcessorBoard {
    /// A board with empty chip memories.
    pub fn new(geometry: BoardGeometry, format: FixedPointFormat, precision: Precision) -> Self {
        let chips = (0..geometry.chips)
            .map(|_| Grape6Chip::new(geometry.chip, format, precision))
            .collect();
        Self { geometry, chips, routes: Vec::new() }
    }

    /// Resident j-particle count.
    pub fn n_j(&self) -> usize {
        self.routes.len()
    }

    /// Total cycles issued (the board advances at the pace of its slowest
    /// chip per call; see [`BoardGeometry::compute_cycles`]).
    pub fn cycles(&self) -> u64 {
        self.chips.iter().map(|c| c.cycles()).max().unwrap_or(0)
    }

    /// Distribute a j-particle set across the chips (block distribution, as
    /// the hardware DMA does). Fails if the board capacity is exceeded.
    pub fn load_j(&mut self, particles: &[JParticle]) -> Result<(), ChipError> {
        if particles.len() > self.geometry.jmem_capacity() {
            return Err(ChipError::MemoryOverflow {
                requested: particles.len(),
                capacity: self.geometry.jmem_capacity(),
            });
        }
        self.routes.clear();
        let per_chip = particles.len().div_ceil(self.geometry.chips).max(1);
        let mut chunks: Vec<&[JParticle]> = Vec::with_capacity(self.geometry.chips);
        let mut rest = particles;
        for _ in 0..self.geometry.chips {
            let take = per_chip.min(rest.len());
            let (head, tail) = rest.split_at(take);
            chunks.push(head);
            rest = tail;
        }
        for (c, chunk) in chunks.iter().enumerate() {
            self.chips[c].load_j(chunk)?;
            for s in 0..chunk.len() {
                self.routes.push((c, s));
            }
        }
        Ok(())
    }

    /// Read back one j-particle by global index (diagnostic port).
    pub fn peek_j(&self, index: usize) -> Option<&JParticle> {
        let &(chip, slot) = self.routes.get(index)?;
        self.chips[chip].peek_j(slot)
    }

    /// Fault injection: corrupt one position bit of the j-particle at
    /// global `index`, routed to the owning chip's SSRAM.
    pub fn corrupt_word(&mut self, index: usize, bit: u32) -> Result<(), ChipError> {
        let &(chip, slot) = self
            .routes
            .get(index)
            .ok_or(ChipError::BadSlot { slot: index, len: self.routes.len() })?;
        self.chips[chip].corrupt_word(slot, bit)
    }

    /// Write back one updated j-particle by global index.
    pub fn store_j(&mut self, index: usize, particle: JParticle) -> Result<(), ChipError> {
        let &(chip, slot) = self
            .routes
            .get(index)
            .ok_or(ChipError::BadSlot { slot: index, len: self.routes.len() })?;
        self.chips[chip].store_j(slot, particle)
    }

    /// Force call: every chip processes the same i-particles against its
    /// local j-slice; the reduction tree merges the partial registers.
    /// Accepts up to one chip-load (48) of i-particles.
    pub fn compute(&mut self, t: f64, ips: &[HwIParticle], eps2: f64) -> Vec<PipelineRegisters> {
        let mut total = vec![PipelineRegisters::new(); ips.len()];
        for chip in &mut self.chips {
            if chip.n_j() == 0 {
                continue;
            }
            let partial = chip.compute(t, ips, eps2);
            for (tot, part) in total.iter_mut().zip(&partial) {
                tot.merge(part);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::vec3::Vec3;

    fn small_board() -> ProcessorBoard {
        let geometry = BoardGeometry {
            chips: 4,
            chip: ChipGeometry { jmem_capacity: 8, ..ChipGeometry::default() },
        };
        ProcessorBoard::new(geometry, FixedPointFormat::default(), Precision::Exact)
    }

    fn j_at(x: f64, m: f64) -> JParticle {
        JParticle::encode(
            &FixedPointFormat::default(),
            Precision::Exact,
            Vec3::new(x, 0.0, 0.0),
            Vec3::zero(),
            Vec3::zero(),
            Vec3::zero(),
            m,
            0.0,
        )
    }

    #[test]
    fn production_board_peak_near_1_tflops() {
        let g = BoardGeometry::default();
        assert!((g.peak_flops() / 1e12 - 0.985).abs() < 0.02, "{}", g.peak_flops() / 1e12);
        assert_eq!(g.jmem_capacity(), 32 * 16_384);
    }

    #[test]
    fn board_distributes_j_across_chips() {
        let mut b = small_board();
        let js: Vec<JParticle> = (0..10).map(|k| j_at(k as f64 + 1.0, 1.0)).collect();
        b.load_j(&js).unwrap();
        assert_eq!(b.n_j(), 10);
        // 10 particles over 4 chips, 3 per chip → chips hold 3,3,3,1.
        assert_eq!(b.chips[0].n_j(), 3);
        assert_eq!(b.chips[3].n_j(), 1);
    }

    #[test]
    fn board_capacity_enforced() {
        let mut b = small_board();
        let js: Vec<JParticle> = (0..33).map(|k| j_at(k as f64 + 1.0, 1.0)).collect();
        assert!(b.load_j(&js).is_err());
    }

    #[test]
    fn board_force_equals_sum_over_all_j() {
        let mut b = small_board();
        let js: Vec<JParticle> = (1..=10).map(|k| j_at(k as f64, 1.0)).collect();
        b.load_j(&js).unwrap();
        let ip = HwIParticle::encode(
            &FixedPointFormat::default(),
            Precision::Exact,
            Vec3::zero(),
            Vec3::zero(),
        );
        let regs = b.compute(0.0, &[ip], 0.0);
        let (acc, _, _) = regs[0].read();
        let expect: f64 = (1..=10).map(|k| 1.0 / (k as f64 * k as f64)).sum();
        assert!((acc.x - expect).abs() < 1e-12);
        assert_eq!(regs[0].count, 10);
    }

    #[test]
    fn board_writeback_routes_to_correct_chip() {
        let mut b = small_board();
        let js: Vec<JParticle> = (1..=10).map(|k| j_at(k as f64, 1.0)).collect();
        b.load_j(&js).unwrap();
        // Move global j #9 (chip 3, slot 0) from x=10 to x=100.
        b.store_j(9, j_at(100.0, 1.0)).unwrap();
        let ip = HwIParticle::encode(
            &FixedPointFormat::default(),
            Precision::Exact,
            Vec3::zero(),
            Vec3::zero(),
        );
        let (acc, _, _) = b.compute(0.0, &[ip], 0.0)[0].read();
        let expect: f64 =
            (1..=9).map(|k| 1.0 / (k as f64 * k as f64)).sum::<f64>() + 1.0 / (100.0 * 100.0);
        assert!((acc.x - expect).abs() < 1e-12);
        assert!(b.store_j(10, j_at(0.0, 1.0)).is_err());
    }

    #[test]
    fn board_cycles_track_fullest_chip() {
        let g = BoardGeometry::default();
        // 1000 j over 32 chips → 32 each (ceil 31.25 → 32).
        assert_eq!(g.compute_cycles(48, 1000), g.chip.compute_cycles(48, 32));
    }
}
