//! A functional GRAPE-6 *node*: one host port, one network-board tree, four
//! processor boards (paper §5.2, Fig 7) — with data moving as byte packets
//! over the simulated links, exactly as the host driver saw it.
//!
//! Unlike [`crate::engine::Grape6Engine`] (which shortcuts the topology for
//! speed, justified by the exactly-associative reduction), this module
//! routes every i-particle broadcast, j write-back and force readout through
//! the wire protocol and the board structure, and accounts the bytes moved.
//! Integration tests use it to prove the shortcut engine is bit-identical to
//! the fully-routed machine.

use crate::board::{BoardGeometry, ProcessorBoard};
use crate::chip::HwIParticle;
use crate::format::{FixedPointFormat, Precision};
use crate::network::{NetworkBoardGeometry, NetworkTree};
use crate::pipeline::PipelineRegisters;
use crate::predictor::JParticle;
use crate::wire;
use bytes::{Bytes, BytesMut};
use grape6_core::particle::ForceResult;
use grape6_core::vec3::Vec3;

/// Byte-transfer statistics of a node (what crossed which wire).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeTraffic {
    /// Bytes broadcast down the NB tree (i-particles).
    pub i_bytes: u64,
    /// Bytes written back into j-memories.
    pub j_bytes: u64,
    /// Bytes read back up the reduction tree (forces).
    pub f_bytes: u64,
}

/// One node: 4 processor boards behind a network-board tree.
#[derive(Debug, Clone)]
pub struct Grape6Node {
    /// Per-board functional models.
    boards: Vec<ProcessorBoard>,
    /// The NB tree spanning them.
    pub tree: NetworkTree,
    format: FixedPointFormat,
    precision: Precision,
    /// j index → (board, local index) routing.
    routes: Vec<(usize, usize)>,
    /// Boards taken out of service by [`Self::fail_board`].
    failed: Vec<bool>,
    traffic: NodeTraffic,
    eps2: f64,
}

impl Grape6Node {
    /// A node with `n_boards` boards of the given geometry.
    pub fn new(
        n_boards: usize,
        board: BoardGeometry,
        format: FixedPointFormat,
        precision: Precision,
    ) -> Self {
        assert!(n_boards >= 1);
        Self {
            boards: (0..n_boards).map(|_| ProcessorBoard::new(board, format, precision)).collect(),
            tree: NetworkTree::spanning(n_boards, NetworkBoardGeometry::default()),
            format,
            precision,
            routes: Vec::new(),
            failed: vec![false; n_boards],
            traffic: NodeTraffic::default(),
            eps2: 0.0,
        }
    }

    /// The production node: 4 boards × 32 chips.
    pub fn production(precision: Precision) -> Self {
        Self::new(4, BoardGeometry::default(), FixedPointFormat::default(), precision)
    }

    /// Bytes moved so far.
    pub fn traffic(&self) -> NodeTraffic {
        self.traffic
    }

    /// The position format this node's memories use.
    pub fn format(&self) -> FixedPointFormat {
        self.format
    }

    /// The arithmetic precision this node emulates.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of resident j-particles.
    pub fn n_j(&self) -> usize {
        self.routes.len()
    }

    /// j-particle capacity of the boards still in service.
    pub fn capacity(&self) -> usize {
        self.boards
            .iter()
            .zip(&self.failed)
            .filter(|(_, dead)| !**dead)
            .map(|(b, _)| b.geometry.jmem_capacity())
            .sum()
    }

    /// Set the softening used by subsequent force calls.
    pub fn set_softening(&mut self, eps: f64) {
        assert!(eps > 0.0);
        self.eps2 = eps * eps;
    }

    /// Load a j-particle set, distributing it over the boards (block
    /// distribution, matching the DMA order of the real hardware). The data
    /// arrives as a wire-encoded stream, as it would over the host port.
    pub fn load_j_stream(&mut self, stream: Bytes) -> Result<(), crate::chip::ChipError> {
        let particles = wire::decode_j_block(stream.clone());
        self.traffic.j_bytes += stream.len() as u64;
        if particles.len() > self.capacity() {
            return Err(crate::chip::ChipError::MemoryOverflow {
                requested: particles.len(),
                capacity: self.capacity(),
            });
        }
        self.routes.clear();
        let live: Vec<usize> = (0..self.boards.len()).filter(|&b| !self.failed[b]).collect();
        let per_board = particles.len().div_ceil(live.len()).max(1);
        let mut chunks = particles.chunks(per_board);
        for &b in &live {
            let chunk = chunks.next().unwrap_or(&[]);
            self.boards[b].load_j(chunk)?;
            for s in 0..chunk.len() {
                self.routes.push((b, s));
            }
        }
        for (b, dead) in self.failed.iter().enumerate() {
            if *dead {
                self.boards[b].load_j(&[])?;
            }
        }
        Ok(())
    }

    /// Convenience: encode + load.
    pub fn load_j(&mut self, particles: &[JParticle]) -> Result<(), crate::chip::ChipError> {
        self.load_j_stream(wire::encode_j_block(particles))
    }

    /// Read back one j-particle by global index (diagnostic port).
    pub fn peek_j(&self, index: usize) -> Option<&JParticle> {
        let &(board, slot) = self.routes.get(index)?;
        self.boards[board].peek_j(slot)
    }

    /// Flip one bit of a stored position word — a single-event upset in the
    /// SSRAM, the fault class memory scrubbing exists for. Routed down to
    /// the owning chip's memory cell (no wire is crossed: this is the cell
    /// changing underneath us).
    pub fn inject_position_fault(
        &mut self,
        index: usize,
        bit: u32,
    ) -> Result<(), crate::chip::ChipError> {
        assert!(bit < 64);
        let &(board, slot) = self
            .routes
            .get(index)
            .ok_or(crate::chip::ChipError::BadSlot { slot: index, len: self.routes.len() })?;
        self.boards[board].corrupt_word(slot, bit)
    }

    /// Boards still in service.
    pub fn live_boards(&self) -> usize {
        self.failed.iter().filter(|f| !**f).count()
    }

    /// Kill a processor board: take it out of service and redistribute its
    /// resident j-particles over the survivors (the migrated share is
    /// re-DMA'd over the wire and charged to `j_bytes`). Returns the number
    /// of particles migrated. Refuses to kill the last live board or to
    /// overflow the survivors' capacity.
    pub fn fail_board(&mut self, board: usize) -> Result<usize, crate::chip::ChipError> {
        if board >= self.boards.len() {
            return Err(crate::chip::ChipError::BadSlot { slot: board, len: self.boards.len() });
        }
        if self.failed[board] {
            return Ok(0);
        }
        if self.live_boards() == 1 {
            // Nothing left to repartition onto.
            return Err(crate::chip::ChipError::MemoryOverflow {
                requested: self.n_j(),
                capacity: 0,
            });
        }
        let migrated = self.routes.iter().filter(|&&(b, _)| b == board).count();
        // Gather the resident set in global order (still readable — the
        // board died, its last-known memory image is the host's copy).
        let particles: Vec<JParticle> =
            (0..self.routes.len()).map(|k| *self.peek_j(k).expect("routed j missing")).collect();
        self.failed[board] = true;
        let live: Vec<usize> = (0..self.boards.len()).filter(|&b| !self.failed[b]).collect();
        let cap: usize = live.iter().map(|&b| self.boards[b].geometry.jmem_capacity()).sum();
        if particles.len() > cap {
            self.failed[board] = false;
            return Err(crate::chip::ChipError::MemoryOverflow {
                requested: particles.len(),
                capacity: cap,
            });
        }
        self.routes.clear();
        let per_board = particles.len().div_ceil(live.len()).max(1);
        let mut chunks = particles.chunks(per_board);
        for &b in &live {
            let chunk = chunks.next().unwrap_or(&[]);
            self.boards[b].load_j(chunk)?;
            for s in 0..chunk.len() {
                self.routes.push((b, s));
            }
        }
        self.boards[board].load_j(&[])?;
        self.traffic.j_bytes += (migrated * wire::J_PACKET_BYTES) as u64;
        Ok(migrated)
    }

    /// Write back one updated j-particle by global index (over the wire).
    pub fn store_j(
        &mut self,
        index: usize,
        particle: &JParticle,
    ) -> Result<(), crate::chip::ChipError> {
        let mut buf = BytesMut::new();
        wire::encode_j_particle(&mut buf, particle);
        self.traffic.j_bytes += buf.len() as u64;
        let decoded = wire::decode_j_particle(&mut buf.freeze());
        let &(board, slot) = self
            .routes
            .get(index)
            .ok_or(crate::chip::ChipError::BadSlot { slot: index, len: self.routes.len() })?;
        self.boards[board].store_j(slot, decoded)
    }

    /// Full force call through the node: i-particles are wire-encoded,
    /// broadcast to every board, computed against each board's j-slice, and
    /// the partial registers reduced on the way back up. Handles arbitrarily
    /// large i-sets by chip-load chunks (as the host driver does).
    pub fn compute(&mut self, t: f64, ips: &[(HwIParticle, u32)]) -> Vec<ForceResult> {
        assert!(self.eps2 > 0.0, "call set_softening first");
        let chip_load = self.boards[0].geometry.chip.i_parallel();
        let mut results = Vec::with_capacity(ips.len());
        for chunk in ips.chunks(chip_load) {
            // Broadcast the i-chunk down the tree.
            let mut buf = BytesMut::new();
            for (ip, id) in chunk {
                wire::encode_i_particle(&mut buf, ip, *id);
            }
            self.traffic.i_bytes += buf.len() as u64;
            let mut stream = buf.freeze();
            let mut decoded = Vec::with_capacity(chunk.len());
            while !stream.is_empty() {
                let (ip, _) = wire::decode_i_particle(&mut stream);
                decoded.push(ip);
            }
            // Every board computes on its j-slice; the NB reduction units
            // merge the register streams.
            let mut total = vec![PipelineRegisters::new(); decoded.len()];
            for board in &mut self.boards {
                if board.n_j() == 0 {
                    continue;
                }
                let partial = board.compute(t, &decoded, self.eps2);
                for (tot, part) in total.iter_mut().zip(&partial) {
                    tot.merge(part);
                }
            }
            // Read the forces back up the tree.
            for regs in &total {
                let (acc, jerk, pot) = regs.read();
                let mut fbuf = BytesMut::new();
                let f = ForceResult { acc, jerk, pot, nn: None };
                wire::encode_force(&mut fbuf, &f);
                self.traffic.f_bytes += fbuf.len() as u64;
                results.push(wire::decode_force(&mut fbuf.freeze()));
            }
        }
        results
    }

    /// Cycles consumed by the busiest board so far.
    pub fn cycles(&self) -> u64 {
        self.boards.iter().map(|b| b.cycles()).max().unwrap_or(0)
    }
}

/// Helper: encode a host-side particle state for this node's formats.
#[allow(clippy::too_many_arguments)]
pub fn encode_host_particle(
    format: &FixedPointFormat,
    precision: Precision,
    pos: Vec3,
    vel: Vec3,
    acc: Vec3,
    jerk: Vec3,
    mass: f64,
    t0: f64,
) -> JParticle {
    JParticle::encode(format, precision, pos, vel, acc, jerk, mass, t0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_node() -> Grape6Node {
        let board = BoardGeometry {
            chips: 2,
            chip: crate::chip::ChipGeometry { jmem_capacity: 16, ..Default::default() },
        };
        let mut node = Grape6Node::new(2, board, FixedPointFormat::default(), Precision::Exact);
        node.set_softening(0.01);
        node
    }

    fn j_at(x: f64, m: f64) -> JParticle {
        JParticle::encode(
            &FixedPointFormat::default(),
            Precision::Exact,
            Vec3::new(x, 0.0, 0.0),
            Vec3::zero(),
            Vec3::zero(),
            Vec3::zero(),
            m,
            0.0,
        )
    }

    #[test]
    fn node_distributes_j_over_boards() {
        let mut node = small_node();
        let js: Vec<JParticle> = (1..=10).map(|k| j_at(k as f64, 1e-6)).collect();
        node.load_j(&js).unwrap();
        assert_eq!(node.n_j(), 10);
        assert!(node.traffic().j_bytes >= 10 * wire::J_PACKET_BYTES as u64);
    }

    #[test]
    fn node_capacity_enforced() {
        let mut node = small_node();
        let js: Vec<JParticle> = (0..65).map(|k| j_at(k as f64, 1e-6)).collect();
        assert!(node.load_j(&js).is_err());
    }

    #[test]
    fn node_force_matches_direct_sum() {
        let mut node = small_node();
        let js: Vec<JParticle> = (1..=10).map(|k| j_at(k as f64, 1.0)).collect();
        node.load_j(&js).unwrap();
        let ip = HwIParticle::encode(
            &FixedPointFormat::default(),
            Precision::Exact,
            Vec3::zero(),
            Vec3::zero(),
        );
        let out = node.compute(0.0, &[(ip, 0)]);
        let eps2 = 0.0001;
        let expect: f64 = (1..=10)
            .map(|k| {
                let r2 = (k * k) as f64 + eps2;
                k as f64 / (r2 * r2.sqrt())
            })
            .sum();
        assert!((out[0].acc.x - expect).abs() < 1e-10, "{} vs {expect}", out[0].acc.x);
        assert!(node.traffic().i_bytes > 0);
        assert!(node.traffic().f_bytes > 0);
    }

    #[test]
    fn node_handles_multi_chunk_i_sets() {
        let mut node = small_node();
        node.load_j(&[j_at(5.0, 1.0)]).unwrap();
        let fmt = FixedPointFormat::default();
        // 100 i-particles > 48 per chip-load → 3 chunks.
        let ips: Vec<(HwIParticle, u32)> = (0..100)
            .map(|k| {
                (
                    HwIParticle::encode(
                        &fmt,
                        Precision::Exact,
                        Vec3::new(k as f64 * 0.01, 0.0, 0.0),
                        Vec3::zero(),
                    ),
                    k,
                )
            })
            .collect();
        let out = node.compute(0.0, &ips);
        assert_eq!(out.len(), 100);
        // Forces all point toward the j source at x = 5.
        for f in &out {
            assert!(f.acc.x > 0.0);
        }
    }

    #[test]
    fn node_writeback_via_wire() {
        let mut node = small_node();
        let js: Vec<JParticle> = (1..=4).map(|k| j_at(k as f64, 1.0)).collect();
        node.load_j(&js).unwrap();
        node.store_j(3, &j_at(100.0, 1.0)).unwrap();
        let ip = HwIParticle::encode(
            &FixedPointFormat::default(),
            Precision::Exact,
            Vec3::zero(),
            Vec3::zero(),
        );
        let out = node.compute(0.0, &[(ip, 0)]);
        // particle 4 moved from x=4 to x=100.
        let eps2 = 0.0001;
        let term = |x: f64| x / (x * x + eps2).powf(1.5);
        let expect = term(1.0) + term(2.0) + term(3.0) + term(100.0);
        assert!((out[0].acc.x - expect).abs() < 1e-10);
        assert!(node.store_j(4, &j_at(0.0, 1.0)).is_err());
    }

    #[test]
    fn failed_board_repartitions_without_changing_forces() {
        let mut node = small_node();
        let js: Vec<JParticle> = (1..=10).map(|k| j_at(k as f64, 1.0)).collect();
        node.load_j(&js).unwrap();
        let ip = HwIParticle::encode(
            &FixedPointFormat::default(),
            Precision::Exact,
            Vec3::zero(),
            Vec3::zero(),
        );
        let before = node.compute(0.0, &[(ip, 0)]);
        let j_bytes_before = node.traffic().j_bytes;
        // Kill board 0 (held the first 5 particles): they migrate to board 1.
        let migrated = node.fail_board(0).unwrap();
        assert_eq!(migrated, 5);
        assert_eq!(node.live_boards(), 1);
        assert_eq!(node.capacity(), 32);
        assert_eq!(node.n_j(), 10);
        assert_eq!(
            node.traffic().j_bytes,
            j_bytes_before + 5 * wire::J_PACKET_BYTES as u64,
            "the migrated share crosses the wire again"
        );
        // Same forces, bit for bit, from the surviving board.
        let after = node.compute(0.0, &[(ip, 0)]);
        assert_eq!(before[0].acc, after[0].acc);
        assert_eq!(before[0].jerk, after[0].jerk);
        assert_eq!(before[0].pot, after[0].pot);
        // Killing the same board again is a no-op; killing the last live
        // board is refused.
        assert_eq!(node.fail_board(0).unwrap(), 0);
        assert!(node.fail_board(1).is_err());
        assert!(node.fail_board(9).is_err());
        // A reload on the degraded node routes around the dead board.
        node.load_j(&js).unwrap();
        assert_eq!(node.n_j(), 10);
        let reloaded = node.compute(0.0, &[(ip, 0)]);
        assert_eq!(before[0].acc, reloaded[0].acc);
    }

    #[test]
    fn production_node_holds_a_quarter_million_particles() {
        let node = Grape6Node::production(Precision::grape6());
        assert_eq!(node.capacity(), 4 * 32 * 16384);
        assert_eq!(node.tree.levels(), 1);
    }
}
