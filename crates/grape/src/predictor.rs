//! The on-chip predictor pipeline (paper §4.2, Fig 9).
//!
//! Before the force pipelines sweep the j-memory, every stored j-particle is
//! extrapolated from its individual time to the current block time with the
//! Hermite predictor polynomial. GRAPE-6 dedicates one hardware pipeline per
//! chip to this. Positions are predicted in fixed point (the increment is
//! computed in short floating point and added to the fixed-point base —
//! exact, because the increment is small); velocities in short floating
//! point.

use crate::format::{round_mantissa, round_vec, FixedPointFormat, Precision};
use grape6_core::vec3::Vec3;

/// A j-particle as held in GRAPE-6 memory (SSRAM): fixed-point position,
/// short-float dynamics, and the particle's individual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JParticle {
    /// Fixed-point position at `t0`.
    pub qpos: [i64; 3],
    /// Velocity at `t0`.
    pub vel: Vec3,
    /// Acceleration at `t0`.
    pub acc: Vec3,
    /// Jerk at `t0`.
    pub jerk: Vec3,
    /// Mass.
    pub mass: f64,
    /// Individual time of the stored state.
    pub t0: f64,
}

impl JParticle {
    /// Encode a host-side particle state into memory format.
    #[allow(clippy::too_many_arguments)] // mirrors the memory word layout
    pub fn encode(
        fmt: &FixedPointFormat,
        precision: Precision,
        pos: Vec3,
        vel: Vec3,
        acc: Vec3,
        jerk: Vec3,
        mass: f64,
        t0: f64,
    ) -> Self {
        let bits = precision.mantissa_bits();
        Self {
            qpos: fmt.encode_vec(pos),
            vel: round_vec(vel, bits),
            acc: round_vec(acc, bits),
            jerk: round_vec(jerk, bits),
            mass: round_mantissa(mass, bits),
            t0,
        }
    }
}

/// Predicted j-particle: fixed-point position at the block time plus
/// short-float velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedJ {
    /// Fixed-point predicted position.
    pub qpos: [i64; 3],
    /// Predicted velocity.
    pub vel: Vec3,
    /// Mass (pass-through).
    pub mass: f64,
}

/// Run the predictor pipeline for one j-particle to block time `t`.
#[inline]
pub fn predict_j(
    fmt: &FixedPointFormat,
    precision: Precision,
    j: &JParticle,
    t: f64,
) -> PredictedJ {
    let bits = precision.mantissa_bits();
    let dt = round_mantissa(t - j.t0, bits);
    let dt2h = round_mantissa(dt * dt * 0.5, bits);
    let dt3s = round_mantissa(dt * dt * dt / 6.0, bits);
    // Position increment in short float, added exactly in fixed point.
    let dpos = round_vec(j.vel * dt + j.acc * dt2h + j.jerk * dt3s, bits);
    let qinc = fmt.encode_vec(dpos);
    let qpos = [
        j.qpos[0].wrapping_add(qinc[0]),
        j.qpos[1].wrapping_add(qinc[1]),
        j.qpos[2].wrapping_add(qinc[2]),
    ];
    let vel = round_vec(j.vel + j.acc * dt + j.jerk * dt2h, bits);
    PredictedJ { qpos, vel, mass: j.mass }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_j(fmt: &FixedPointFormat) -> JParticle {
        JParticle::encode(
            fmt,
            Precision::Exact,
            Vec3::new(20.0, 1.0, -0.2),
            Vec3::new(0.01, 0.22, 0.001),
            Vec3::new(-1e-3, -2e-4, 0.0),
            Vec3::new(1e-5, 0.0, -1e-6),
            3e-9,
            1.0,
        )
    }

    #[test]
    fn predict_at_t0_is_identity() {
        let fmt = FixedPointFormat::default();
        let j = sample_j(&fmt);
        let p = predict_j(&fmt, Precision::Exact, &j, 1.0);
        assert_eq!(p.qpos, j.qpos);
        assert_eq!(p.vel, j.vel);
        assert_eq!(p.mass, j.mass);
    }

    #[test]
    fn exact_prediction_matches_host_polynomial() {
        let fmt = FixedPointFormat::default();
        let j = sample_j(&fmt);
        let t = 1.25;
        let p = predict_j(&fmt, Precision::Exact, &j, t);
        let dt = t - j.t0;
        let expect_pos = fmt.decode_vec(j.qpos)
            + j.vel * dt
            + j.acc * (dt * dt / 2.0)
            + j.jerk * (dt * dt * dt / 6.0);
        let got = fmt.decode_vec(p.qpos);
        // The fixed-point path differs from the all-f64 expectation by a few
        // ulps at |x| ≈ 20 (the fixed-point sum is *more* accurate).
        assert!((got - expect_pos).norm() < 1e-14, "{:e}", (got - expect_pos).norm());
        let expect_vel = j.vel + j.acc * dt + j.jerk * (dt * dt / 2.0);
        assert!((p.vel - expect_vel).norm() < 1e-15);
    }

    #[test]
    fn grape6_prediction_error_is_single_precision_class() {
        let fmt = FixedPointFormat::default();
        let j = sample_j(&fmt);
        let t = 1.5;
        let exact = predict_j(&fmt, Precision::Exact, &j, t);
        let hw = predict_j(&fmt, Precision::grape6(), &j, t);
        let dpos = (fmt.decode_vec(hw.qpos) - fmt.decode_vec(exact.qpos)).norm();
        // The *increment* (≈0.11 AU here) is rounded to 24 bits → error ≲ 1e-8 AU.
        assert!(dpos < 1e-7, "prediction error {dpos:e}");
        assert!((hw.vel - exact.vel).norm() < 1e-7);
    }

    #[test]
    fn encode_rounds_dynamics_not_position() {
        let fmt = FixedPointFormat::default();
        let pos = Vec3::new(20.000_000_123_456_79, 0.0, 0.0);
        let vel = Vec3::new(1.0 / 3.0, 0.0, 0.0);
        let j = JParticle::encode(
            &fmt,
            Precision::grape6(),
            pos,
            vel,
            Vec3::zero(),
            Vec3::zero(),
            1e-9,
            0.0,
        );
        // Position survives at fixed-point resolution…
        assert!((fmt.decode_vec(j.qpos) - pos).norm() < 4.0 * fmt.resolution());
        // …velocity is rounded to the 24-bit pipeline word.
        assert_eq!(j.vel.x as f32 as f64, j.vel.x);
        assert!((j.vel.x - vel.x).abs() < 2.0f64.powi(-24));
    }
}
