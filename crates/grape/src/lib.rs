//! # grape6-hw
//!
//! A functional + timing simulator of the **GRAPE-6** special-purpose
//! computer (Makino et al., SC2002). The real machine — 2048 custom pipeline
//! chips on 64 processor boards behind 16 Linux hosts, 63.4 Tflops peak — is
//! unobtainable; this crate reproduces:
//!
//! * its **arithmetic** (`format`, [`pipeline`], [`predictor`]):
//!   fixed-point positions, short-mantissa pipeline words, exactly
//!   associative fixed-point force accumulation;
//! * its **organization** ([`chip`], [`board`], [`network`], [`link`]):
//!   6 pipelines × 8 virtual per chip, 32 chips per board, network-board
//!   trees with broadcast / 2-way multicast / point-to-point modes, 90 MB/s
//!   LVDS links, PCI host interface, Gigabit Ethernet between clusters;
//! * its **performance** ([`timing`], [`perf`]): an analytic per-blockstep
//!   cost model calibrated to the paper's stated clock rates and bandwidths,
//!   producing the Gordon Bell Tflops accounting of §6;
//! * the **parallelization argument** of §4.3 ([`parallel_models`]): why the
//!   naive multi-host layout cannot scale and the NB tree / 2-D grid can.
//!
//! [`engine::Grape6Engine`] packages all of this as a
//! [`grape6_core::engine::ForceEngine`], so the same block-timestep Hermite
//! host code drives either the CPU reference or the simulated hardware.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
pub mod board;
pub mod chip;
pub mod cluster;
pub mod cluster_engine;
pub mod engine;
pub mod fault;
pub mod fault_engine;
pub mod format;
pub mod grid;
pub mod host_api;
pub mod lanes;
pub mod link;
pub mod network;
pub mod node;
pub mod node_engine;
pub mod parallel_models;
pub mod perf;
pub mod pipeline;
pub mod predictor;
pub mod redundancy;
pub mod timing;
pub mod wire;

pub use board::{BoardGeometry, ProcessorBoard};
pub use chip::{ChipGeometry, Grape6Chip, HwIParticle};
pub use cluster::Grape6Cluster;
pub use cluster_engine::ClusterEngine;
pub use engine::{Grape6Config, Grape6Engine};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use fault_engine::FaultTolerantEngine;
pub use format::{FixedPointFormat, Precision};
pub use grid::HostGrid;
pub use host_api::{g6_open, G6Error, G6Handle};
pub use lanes::{GrapeLaneTile, SweepPartial};
pub use link::{Link, WireFormat};
pub use network::{NetworkMode, NetworkTree};
pub use node::{Grape6Node, NodeTraffic};
pub use node_engine::NodeEngine;
pub use parallel_models::{ParallelModel, Strategy};
pub use perf::{HardwareClock, PerfReport};
pub use redundancy::{compare_units, recover, scrub, Recovery, RedundancyReport};
pub use timing::{MachineGeometry, StepBreakdown, TimingModel};
