//! The GRAPE-6 processor chip (paper §5.2, Fig 9): six force pipelines, one
//! predictor pipeline, memory interface and network interface on one custom
//! LSI, clocked at 90 MHz.
//!
//! Each physical force pipeline serves eight *virtual* pipelines (i-particle
//! register sets), so a chip works on up to 48 i-particles per sweep of its
//! j-memory while fetching each j-particle only once every eight cycles —
//! the trick that keeps the SSRAM bandwidth requirement feasible.

use crate::format::{FixedPointFormat, Precision};
use crate::pipeline::PipelineRegisters;
use crate::predictor::{predict_j, JParticle};
use grape6_core::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Geometry and clocking of one processor chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipGeometry {
    /// Physical force pipelines per chip.
    pub pipelines: usize,
    /// Virtual pipelines (i-particle register sets) per physical pipeline.
    pub vmp: usize,
    /// j-particle capacity of the on-board SSRAM serving this chip.
    pub jmem_capacity: usize,
    /// Pipeline clock frequency (Hz).
    pub clock_hz: f64,
    /// Pipeline fill/drain latency in cycles per sweep.
    pub depth_cycles: u64,
    /// Cycles the memory interface needs to deliver one j-particle. The
    /// virtual multipipeline exists precisely to hide this: with `vmp = 8`
    /// each fetched j-particle is reused for 8 cycles, matching the SSRAM
    /// bandwidth; with fewer virtual pipelines the force pipelines stall on
    /// memory.
    pub mem_cycles_per_j: u64,
}

impl Default for ChipGeometry {
    /// The production GRAPE-6 chip: 6 pipelines × 8 virtual, 90 MHz.
    fn default() -> Self {
        Self {
            pipelines: 6,
            vmp: 8,
            jmem_capacity: 16_384,
            clock_hz: 90.0e6,
            depth_cycles: 56,
            mem_cycles_per_j: 8,
        }
    }
}

impl ChipGeometry {
    /// i-particles processed concurrently in one sweep (48 on GRAPE-6).
    pub fn i_parallel(&self) -> usize {
        self.pipelines * self.vmp
    }

    /// Theoretical peak in flops under the 57-op convention: one interaction
    /// per pipeline per cycle. (§5.2: "the peak speed of a chip is
    /// 30.7 Gflops".)
    pub fn peak_flops(&self) -> f64 {
        self.pipelines as f64 * self.clock_hz * grape6_core::force::FLOPS_PER_INTERACTION as f64
    }

    /// Clock cycles to compute forces on `n_i` i-particles against `n_j`
    /// resident j-particles: one sweep per `i_parallel()` i-particles, each
    /// sweep holding every fetched j-particle for `vmp` compute cycles (or
    /// stalling for `mem_cycles_per_j` if the virtual multipipeline is too
    /// shallow to cover the fetch).
    pub fn compute_cycles(&self, n_i: usize, n_j: usize) -> u64 {
        if n_i == 0 || n_j == 0 {
            return 0;
        }
        let sweeps = n_i.div_ceil(self.i_parallel()) as u64;
        let cycles_per_j = (self.vmp as u64).max(self.mem_cycles_per_j);
        sweeps * (cycles_per_j * n_j as u64 + self.depth_cycles)
    }

    /// Seconds for `compute_cycles`.
    pub fn compute_seconds(&self, n_i: usize, n_j: usize) -> f64 {
        self.compute_cycles(n_i, n_j) as f64 / self.clock_hz
    }
}

/// An i-particle in hardware representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwIParticle {
    /// Fixed-point position.
    pub qpos: [i64; 3],
    /// Pipeline-precision velocity.
    pub vel: Vec3,
}

impl HwIParticle {
    /// Encode a host-side predicted i-particle.
    pub fn encode(fmt: &FixedPointFormat, precision: Precision, pos: Vec3, vel: Vec3) -> Self {
        Self {
            qpos: fmt.encode_vec(pos),
            vel: crate::format::round_vec(vel, precision.mantissa_bits()),
        }
    }
}

/// Functional + cycle model of one processor chip.
#[derive(Debug, Clone)]
pub struct Grape6Chip {
    /// Chip geometry.
    pub geometry: ChipGeometry,
    /// Position format shared with the host.
    pub format: FixedPointFormat,
    /// Arithmetic precision emulation.
    pub precision: Precision,
    jmem: Vec<JParticle>,
    cycles: u64,
}

impl Grape6Chip {
    /// A chip with empty j-memory.
    pub fn new(geometry: ChipGeometry, format: FixedPointFormat, precision: Precision) -> Self {
        Self { geometry, format, precision, jmem: Vec::new(), cycles: 0 }
    }

    /// Number of resident j-particles.
    pub fn n_j(&self) -> usize {
        self.jmem.len()
    }

    /// Total compute cycles issued so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Load a fresh j-particle set. Fails if it exceeds the SSRAM capacity.
    pub fn load_j(&mut self, particles: &[JParticle]) -> Result<(), ChipError> {
        if particles.len() > self.geometry.jmem_capacity {
            return Err(ChipError::MemoryOverflow {
                requested: particles.len(),
                capacity: self.geometry.jmem_capacity,
            });
        }
        self.jmem.clear();
        self.jmem.extend_from_slice(particles);
        Ok(())
    }

    /// Read back one j-memory slot (diagnostic port; used for memory
    /// scrubbing and fault injection in tests).
    pub fn peek_j(&self, slot: usize) -> Option<&JParticle> {
        self.jmem.get(slot)
    }

    /// Fault injection: XOR one bit of the stored particle's fixed-point
    /// x-position word — a single-event upset in this chip's SSRAM. The
    /// memory cell changes underneath the machine; no wire is crossed.
    pub fn corrupt_word(&mut self, slot: usize, bit: u32) -> Result<(), ChipError> {
        let len = self.jmem.len();
        let j = self.jmem.get_mut(slot).ok_or(ChipError::BadSlot { slot, len })?;
        j.qpos[0] ^= 1i64 << (bit % 64);
        Ok(())
    }

    /// Overwrite one j-memory slot (the per-blockstep write-back path).
    pub fn store_j(&mut self, slot: usize, particle: JParticle) -> Result<(), ChipError> {
        if slot >= self.jmem.len() {
            return Err(ChipError::BadSlot { slot, len: self.jmem.len() });
        }
        self.jmem[slot] = particle;
        Ok(())
    }

    /// Compute forces on up to `i_parallel()` i-particles against the full
    /// resident j-memory at block time `t`. Returns one register set per
    /// i-particle. Also advances the chip's cycle counter.
    pub fn compute(&mut self, t: f64, ips: &[HwIParticle], eps2: f64) -> Vec<PipelineRegisters> {
        assert!(
            ips.len() <= self.geometry.i_parallel(),
            "chip accepts at most {} i-particles per call, got {}",
            self.geometry.i_parallel(),
            ips.len()
        );
        self.cycles += self.geometry.compute_cycles(ips.len(), self.jmem.len());
        let mut regs = vec![PipelineRegisters::new(); ips.len()];
        for j in &self.jmem {
            let pj = predict_j(&self.format, self.precision, j, t);
            for (r, ip) in regs.iter_mut().zip(ips) {
                r.accumulate(
                    &self.format,
                    self.precision,
                    ip.qpos,
                    pj.qpos,
                    ip.vel,
                    pj.vel,
                    pj.mass,
                    eps2,
                );
            }
        }
        regs
    }
}

/// Errors a chip can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipError {
    /// Attempted to load more j-particles than the SSRAM holds.
    MemoryOverflow {
        /// Particles requested.
        requested: usize,
        /// SSRAM capacity.
        capacity: usize,
    },
    /// Write to a slot outside the loaded region.
    BadSlot {
        /// Requested slot.
        slot: usize,
        /// Loaded length.
        len: usize,
    },
}

impl std::fmt::Display for ChipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChipError::MemoryOverflow { requested, capacity } => {
                write!(f, "j-memory overflow: {requested} > capacity {capacity}")
            }
            ChipError::BadSlot { slot, len } => write!(f, "bad j slot {slot} (loaded {len})"),
        }
    }
}

impl std::error::Error for ChipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_chip_peak_is_30_7_gflops() {
        let g = ChipGeometry::default();
        let peak = g.peak_flops();
        assert!((peak / 1e9 - 30.78).abs() < 0.1, "chip peak {} Gflops", peak / 1e9);
        assert_eq!(g.i_parallel(), 48);
    }

    #[test]
    fn cycle_count_one_sweep() {
        let g = ChipGeometry::default();
        // 48 i-particles, 1000 j: one sweep of 8×1000 + depth cycles.
        assert_eq!(g.compute_cycles(48, 1000), 8 * 1000 + 56);
        // 49 i-particles → two sweeps.
        assert_eq!(g.compute_cycles(49, 1000), 2 * (8 * 1000 + 56));
        assert_eq!(g.compute_cycles(0, 1000), 0);
        assert_eq!(g.compute_cycles(10, 0), 0);
    }

    #[test]
    fn shallow_vmp_stalls_on_memory() {
        // Without the 8-deep virtual multipipeline the SSRAM cannot feed the
        // pipelines: a full 48-i workload costs ~8× more cycles/interaction.
        let g8 = ChipGeometry::default();
        let g1 = ChipGeometry { vmp: 1, ..ChipGeometry::default() };
        let n_j = 16_384;
        let full8 = g8.compute_cycles(48, n_j) as f64 / (48 * n_j) as f64;
        let full1 = g1.compute_cycles(6, n_j) as f64 / (6 * n_j) as f64;
        assert!(
            full1 / full8 > 7.0 && full1 / full8 < 9.0,
            "VMP=1 penalty {} not ≈ 8",
            full1 / full8
        );
    }

    #[test]
    fn full_sweep_achieves_near_peak() {
        // 48 i × n_j interactions in vmp × n_j cycles → 6 interactions/cycle.
        let g = ChipGeometry::default();
        let n_j = 16_384;
        let inter = 48 * n_j;
        let cycles = g.compute_cycles(48, n_j);
        let per_cycle = inter as f64 / cycles as f64;
        assert!(per_cycle > 5.97, "interactions/cycle {per_cycle}");
    }

    fn test_chip() -> Grape6Chip {
        Grape6Chip::new(
            ChipGeometry { jmem_capacity: 64, ..ChipGeometry::default() },
            FixedPointFormat::default(),
            Precision::Exact,
        )
    }

    fn j_at(x: f64, m: f64) -> JParticle {
        JParticle::encode(
            &FixedPointFormat::default(),
            Precision::Exact,
            Vec3::new(x, 0.0, 0.0),
            Vec3::zero(),
            Vec3::zero(),
            Vec3::zero(),
            m,
            0.0,
        )
    }

    #[test]
    fn memory_capacity_enforced() {
        let mut chip = test_chip();
        let js: Vec<JParticle> = (0..65).map(|k| j_at(k as f64, 1e-9)).collect();
        assert!(matches!(
            chip.load_j(&js),
            Err(ChipError::MemoryOverflow { requested: 65, capacity: 64 })
        ));
        assert!(chip.load_j(&js[..64]).is_ok());
        assert_eq!(chip.n_j(), 64);
    }

    #[test]
    fn store_j_bounds_checked() {
        let mut chip = test_chip();
        chip.load_j(&[j_at(1.0, 1e-9)]).unwrap();
        assert!(chip.store_j(0, j_at(2.0, 1e-9)).is_ok());
        assert!(matches!(chip.store_j(1, j_at(2.0, 1e-9)), Err(ChipError::BadSlot { .. })));
    }

    #[test]
    fn chip_force_matches_analytic_pair() {
        let mut chip = test_chip();
        chip.load_j(&[j_at(1.0, 2.0)]).unwrap();
        let ip = HwIParticle::encode(
            &FixedPointFormat::default(),
            Precision::Exact,
            Vec3::zero(),
            Vec3::zero(),
        );
        let regs = chip.compute(0.0, &[ip], 0.0);
        let (acc, _, pot) = regs[0].read();
        assert!((acc.x - 2.0).abs() < 1e-12); // m/r² = 2
        assert!((pot + 2.0).abs() < 1e-12);
    }

    #[test]
    fn chip_cycle_counter_accumulates() {
        let mut chip = test_chip();
        chip.load_j(&[j_at(1.0, 1.0), j_at(2.0, 1.0)]).unwrap();
        let ip = HwIParticle::encode(
            &FixedPointFormat::default(),
            Precision::Exact,
            Vec3::zero(),
            Vec3::zero(),
        );
        chip.compute(0.0, &[ip], 0.0);
        chip.compute(0.0, &[ip], 0.0);
        assert_eq!(chip.cycles(), 2 * (8 * 2 + 56));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn chip_rejects_oversized_i_block() {
        let mut chip = test_chip();
        chip.load_j(&[j_at(1.0, 1.0)]).unwrap();
        let ip = HwIParticle::encode(
            &FixedPointFormat::default(),
            Precision::Exact,
            Vec3::zero(),
            Vec3::zero(),
        );
        chip.compute(0.0, &vec![ip; 49], 0.0);
    }

    #[test]
    fn chip_predicts_j_to_block_time() {
        let fmt = FixedPointFormat::default();
        let mut chip = test_chip();
        // j-particle moving at v = 1 along x, stored at t0 = 0, at x = 10.
        let j = JParticle::encode(
            &fmt,
            Precision::Exact,
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::zero(),
            Vec3::zero(),
            1.0,
            0.0,
        );
        chip.load_j(&[j]).unwrap();
        let ip = HwIParticle::encode(&fmt, Precision::Exact, Vec3::zero(), Vec3::zero());
        // At t = 2 the source sits at x = 12 → acc = 1/144.
        let regs = chip.compute(2.0, &[ip], 0.0);
        let (acc, _, _) = regs[0].read();
        assert!((acc.x - 1.0 / 144.0).abs() < 1e-12);
    }
}
