//! The 2-D host-grid alternative to network boards (paper §4.3, Fig 6):
//! host+GRAPE pairs arranged in an s × s matrix, with the i-space divided
//! over columns and the j-space over rows.
//!
//! Node (k, c) holds j-partition k and computes partial forces for
//! i-partition c; partial forces are reduced *down each column*, and a
//! corrected particle is broadcast only *along its row* (the s−1 other
//! holders of its j-partition). Per-host NIC traffic per block step is then
//! O(n/s) — the √p scaling that makes the approach viable on commodity
//! Ethernet, versus O(n) for the naive layout (Fig 3). The paper notes "the
//! theoretical peak speed of Gigabit Ethernet is barely okay", which
//! experiment E6 quantifies.

use crate::board::BoardGeometry;
use crate::chip::HwIParticle;
use crate::format::{FixedPointFormat, Precision};
use crate::node::Grape6Node;
use crate::predictor::JParticle;
use crate::wire;
use bytes::BytesMut;
use grape6_core::particle::ForceResult;

/// An s × s grid of host+GRAPE pairs with 2-D force decomposition.
pub struct HostGrid {
    side: usize,
    /// Node (k, c) at index `k * side + c`; holds j-partition k.
    nodes: Vec<Grape6Node>,
    /// Inbound NIC bytes per host (the commodity-network load, the quantity
    /// §4.3 worries about).
    nic_in: Vec<u64>,
    /// Global j index → owning row.
    row_of: Vec<usize>,
    /// Global j index → slot within its row's partition.
    slot_of: Vec<usize>,
}

impl HostGrid {
    /// Build an s × s grid of single-board nodes.
    pub fn new(
        side: usize,
        board: BoardGeometry,
        format: FixedPointFormat,
        precision: Precision,
        softening: f64,
    ) -> Self {
        assert!(side >= 1);
        let nodes = (0..side * side)
            .map(|_| {
                let mut n = Grape6Node::new(1, board, format, precision);
                n.set_softening(softening);
                n
            })
            .collect();
        Self { side, nodes, nic_in: vec![0; side * side], row_of: Vec::new(), slot_of: Vec::new() }
    }

    /// Grid side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Inbound NIC bytes per host so far.
    pub fn nic_in_bytes(&self) -> &[u64] {
        &self.nic_in
    }

    /// Worst per-host inbound traffic.
    pub fn max_nic_in(&self) -> u64 {
        self.nic_in.iter().copied().max().unwrap_or(0)
    }

    fn node_index(&self, row: usize, col: usize) -> usize {
        row * self.side + col
    }

    /// Load the full particle set: row k's partition is the k-th block slice,
    /// replicated across the s nodes of that row.
    pub fn load_j(&mut self, particles: &[JParticle]) -> Result<(), crate::chip::ChipError> {
        self.row_of.clear();
        self.slot_of.clear();
        let per_row = particles.len().div_ceil(self.side);
        for (k, chunk) in particles.chunks(per_row.max(1)).enumerate() {
            let stream = wire::encode_j_block(chunk);
            for c in 0..self.side {
                let idx = self.node_index(k, c);
                self.nodes[idx].load_j_stream(stream.clone())?;
            }
            for s in 0..chunk.len() {
                self.row_of.push(k);
                self.slot_of.push(s);
            }
        }
        // Rows beyond the data hold empty partitions.
        for k in particles.len().div_ceil(per_row.max(1))..self.side {
            for c in 0..self.side {
                let idx = self.node_index(k, c);
                self.nodes[idx].load_j(&[])?;
            }
        }
        Ok(())
    }

    /// Resident particles.
    pub fn n_j(&self) -> usize {
        self.row_of.len()
    }

    /// Write back an updated particle: its row's s holders receive it — one
    /// local write plus s−1 NIC transfers along the row.
    pub fn write_back(
        &mut self,
        index: usize,
        particle: &JParticle,
    ) -> Result<(), crate::chip::ChipError> {
        let row = *self
            .row_of
            .get(index)
            .ok_or(crate::chip::ChipError::BadSlot { slot: index, len: self.row_of.len() })?;
        let slot = self.slot_of[index];
        let mut buf = BytesMut::new();
        wire::encode_j_particle(&mut buf, particle);
        let packet = buf.freeze();
        for c in 0..self.side {
            let idx = self.node_index(row, c);
            if c != 0 {
                // Row hop over the commodity network (host (row,0) is taken
                // as the writer; any origin gives the same totals).
                self.nic_in[idx] += packet.len() as u64;
            }
            let j = wire::decode_j_particle(&mut packet.clone());
            self.nodes[idx].store_j(slot, &j)?;
        }
        Ok(())
    }

    /// Force on i-particles of column `col`: each of the column's s nodes
    /// computes partials against its j-partition; partials travel up the
    /// column (NIC traffic) and are summed — exactly associative, so the
    /// result is bit-identical to a single machine holding everything.
    pub fn compute(&mut self, col: usize, t: f64, ips: &[(HwIParticle, u32)]) -> Vec<ForceResult> {
        assert!(col < self.side);
        let mut total: Vec<ForceResult> = vec![ForceResult::default(); ips.len()];
        for k in 0..self.side {
            let idx = self.node_index(k, col);
            if self.nodes[idx].n_j() == 0 {
                continue;
            }
            let partial = self.nodes[idx].compute(t, ips);
            // Column reduction: rows > 0 ship their partials to the column
            // head over the NIC.
            if k != 0 {
                let head = self.node_index(0, col);
                self.nic_in[head] += (partial.len() * wire::F_PACKET_BYTES) as u64;
            }
            for (tot, p) in total.iter_mut().zip(&partial) {
                tot.acc += p.acc;
                tot.jerk += p.jerk;
                tot.pot += p.pot;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::vec3::Vec3;

    fn small_board() -> BoardGeometry {
        BoardGeometry {
            chips: 2,
            chip: crate::chip::ChipGeometry { jmem_capacity: 64, ..Default::default() },
        }
    }

    fn sample_set(n: usize) -> Vec<JParticle> {
        (0..n)
            .map(|k| {
                JParticle::encode(
                    &FixedPointFormat::default(),
                    Precision::grape6(),
                    Vec3::new(12.0 + k as f64, (k % 7) as f64, 0.1),
                    Vec3::new(0.0, 0.15, 0.0),
                    Vec3::zero(),
                    Vec3::zero(),
                    2e-7,
                    0.0,
                )
            })
            .collect()
    }

    fn grid(side: usize) -> HostGrid {
        HostGrid::new(side, small_board(), FixedPointFormat::default(), Precision::grape6(), 0.01)
    }

    fn probe() -> (HwIParticle, u32) {
        (
            HwIParticle::encode(
                &FixedPointFormat::default(),
                Precision::grape6(),
                Vec3::new(5.0, 1.0, 0.0),
                Vec3::zero(),
            ),
            0,
        )
    }

    #[test]
    fn grid_force_matches_single_node_bitwise() {
        let js = sample_set(24);
        let mut g = grid(3);
        g.load_j(&js).unwrap();
        let mut single =
            Grape6Node::new(1, small_board(), FixedPointFormat::default(), Precision::grape6());
        single.set_softening(0.01);
        single.load_j(&js).unwrap();
        for col in 0..3 {
            let a = g.compute(col, 0.0, &[probe()])[0];
            let b = single.compute(0.0, &[probe()])[0];
            assert_eq!(a.acc, b.acc, "column {col}");
            assert_eq!(a.pot, b.pot);
        }
    }

    #[test]
    fn write_back_reaches_every_column() {
        let js = sample_set(12);
        let mut g = grid(2);
        g.load_j(&js).unwrap();
        let before = g.compute(0, 0.0, &[probe()])[0];
        let mut moved = js[5];
        moved.qpos[0] += 1 << 40;
        g.write_back(5, &moved).unwrap();
        for col in 0..2 {
            let after = g.compute(col, 0.0, &[probe()])[0];
            assert_ne!(after.acc, before.acc, "column {col} missed the update");
        }
    }

    #[test]
    fn writeback_traffic_scales_as_n_over_side() {
        // The whole point of Fig 6: per-host inbound for a full block of
        // write-backs is (s−1)/s × n / s packets per *row*, spread across
        // hosts — total grows with n, per-host with n/s.
        for side in [2usize, 4] {
            let n = 48;
            let js = sample_set(n);
            let mut g = grid(side);
            g.load_j(&js).unwrap();
            for (k, j) in js.iter().enumerate() {
                g.write_back(k, j).unwrap();
            }
            let max_in = g.max_nic_in();
            let per_row = n.div_ceil(side) as u64;
            assert!(
                max_in <= per_row * wire::J_PACKET_BYTES as u64,
                "side {side}: max inbound {max_in} exceeds row partition bound"
            );
        }
    }

    #[test]
    fn larger_grids_lower_per_host_traffic() {
        let n = 64;
        let mut totals = Vec::new();
        for side in [2usize, 4] {
            let js = sample_set(n);
            let mut g = grid(side);
            g.load_j(&js).unwrap();
            for (k, j) in js.iter().enumerate() {
                g.write_back(k, j).unwrap();
            }
            totals.push(g.max_nic_in());
        }
        assert!(
            totals[1] <= totals[0] / 2 + wire::J_PACKET_BYTES as u64,
            "4x4 grid ({}) should carry ~half the per-host bytes of 2x2 ({})",
            totals[1],
            totals[0]
        );
    }

    #[test]
    fn bad_index_rejected() {
        let mut g = grid(2);
        g.load_j(&sample_set(4)).unwrap();
        assert!(g.write_back(4, &sample_set(1)[0]).is_err());
    }
}
