//! Fault detection and memory scrubbing.
//!
//! A machine with 2048 custom chips and thousands of SSRAM parts running for
//! weeks *will* see memory upsets. GRAPE-era systems handled this with
//! (a) **dual-modular redundancy** — the same force computed on two disjoint
//! hardware units must agree bit-for-bit (possible precisely because the
//! fixed-point reduction is deterministic), and (b) **memory scrubbing** —
//! periodically rewriting the j-memories from the host's authoritative copy.
//! This module implements both for the simulated machine, and the tests
//! inject real faults to prove they are caught and repaired.
//!
//! [`recover`] chains them into the operational ladder the engine-level
//! wrapper (`crate::fault_engine::FaultTolerantEngine`) also follows:
//! detect (DMR compare) → retry (recompute) → scrub (rewrite from the
//! host's copy) → give up and let the caller degrade around the unit.

use crate::chip::HwIParticle;
use crate::node::Grape6Node;
use crate::predictor::JParticle;

/// Result of a dual-modular comparison over a probe set.
#[derive(Debug, Clone, PartialEq)]
pub struct RedundancyReport {
    /// Probes whose forces disagreed between the two units.
    pub mismatches: Vec<usize>,
    /// Probes compared.
    pub probes: usize,
}

impl RedundancyReport {
    /// True when the units agreed everywhere.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Compute the same probe forces on two nodes and compare bit-for-bit.
/// Any disagreement means (at least) one unit holds corrupted state —
/// identical inputs through the deterministic fixed-point pipelines cannot
/// differ otherwise.
pub fn compare_units(
    a: &mut Grape6Node,
    b: &mut Grape6Node,
    t: f64,
    probes: &[(HwIParticle, u32)],
) -> RedundancyReport {
    let fa = a.compute(t, probes);
    let fb = b.compute(t, probes);
    let mismatches = fa
        .iter()
        .zip(&fb)
        .enumerate()
        .filter(|(_, (x, y))| x.acc != y.acc || x.jerk != y.jerk || x.pot != y.pot)
        .map(|(k, _)| k)
        .collect();
    RedundancyReport { mismatches, probes: probes.len() }
}

/// Scrub a node's j-memory against the host's authoritative copy: compare
/// every resident word and rewrite the corrupted ones. Returns the indices
/// repaired.
pub fn scrub(node: &mut Grape6Node, authoritative: &[JParticle]) -> Vec<usize> {
    let mut repaired = Vec::new();
    for (k, truth) in authoritative.iter().enumerate() {
        match node.peek_j(k) {
            Some(resident) if resident == truth => {}
            Some(_) => {
                node.store_j(k, truth).expect("scrub write failed");
                repaired.push(k);
            }
            None => break,
        }
    }
    repaired
}

/// Outcome of one pass of the detect → retry → scrub recovery ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery {
    /// The units agreed on the first compare — nothing to do.
    Clean,
    /// The first compare disagreed but a plain recompute matched: a
    /// transient upset that never touched resident state.
    RetryHealed,
    /// Resident corruption: scrubbing rewrote this many words in each unit
    /// and the post-scrub recompute agreed bit-for-bit.
    Scrubbed {
        /// Words repaired in unit A.
        unit_a: usize,
        /// Words repaired in unit B.
        unit_b: usize,
    },
    /// The units still disagree on this many probes after scrubbing — the
    /// fault is not in j-memory (dead pipeline, bad board). The caller
    /// must degrade: repartition around the unit and take it offline.
    Failed {
        /// Probes still mismatching after the full ladder.
        mismatches: usize,
    },
}

/// Run the detect → retry → scrub ladder over one probe set, using the
/// host's authoritative j-memory copy as scrub source. Consumes the
/// [`RedundancyReport::is_clean`] verdicts and [`scrub`] repair lists that
/// decide each escalation.
pub fn recover(
    a: &mut Grape6Node,
    b: &mut Grape6Node,
    t: f64,
    probes: &[(HwIParticle, u32)],
    authoritative: &[JParticle],
) -> Recovery {
    if compare_units(a, b, t, probes).is_clean() {
        return Recovery::Clean;
    }
    // Retry: identical inputs through deterministic pipelines — if the
    // recompute now agrees, the upset was in flight, not in memory.
    if compare_units(a, b, t, probes).is_clean() {
        return Recovery::RetryHealed;
    }
    let repaired_a = scrub(a, authoritative).len();
    let repaired_b = scrub(b, authoritative).len();
    let report = compare_units(a, b, t, probes);
    if report.is_clean() {
        Recovery::Scrubbed { unit_a: repaired_a, unit_b: repaired_b }
    } else {
        Recovery::Failed { mismatches: report.mismatches.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::BoardGeometry;
    use crate::format::{FixedPointFormat, Precision};
    use grape6_core::vec3::Vec3;

    fn test_node() -> Grape6Node {
        let board = BoardGeometry {
            chips: 2,
            chip: crate::chip::ChipGeometry { jmem_capacity: 32, ..Default::default() },
        };
        let mut n = Grape6Node::new(2, board, FixedPointFormat::default(), Precision::grape6());
        n.set_softening(0.01);
        n
    }

    fn particle_set(n: usize) -> Vec<JParticle> {
        (0..n)
            .map(|k| {
                JParticle::encode(
                    &FixedPointFormat::default(),
                    Precision::grape6(),
                    Vec3::new(10.0 + k as f64, 0.3 * k as f64, 0.0),
                    Vec3::new(0.0, 0.2, 0.0),
                    Vec3::zero(),
                    Vec3::zero(),
                    1e-7,
                    0.0,
                )
            })
            .collect()
    }

    fn probes() -> Vec<(HwIParticle, u32)> {
        (0..4)
            .map(|k| {
                (
                    HwIParticle::encode(
                        &FixedPointFormat::default(),
                        Precision::grape6(),
                        Vec3::new(k as f64 * 3.0, 1.0, 0.0),
                        Vec3::zero(),
                    ),
                    k,
                )
            })
            .collect()
    }

    #[test]
    fn clean_units_agree() {
        let js = particle_set(20);
        let mut a = test_node();
        let mut b = test_node();
        a.load_j(&js).unwrap();
        b.load_j(&js).unwrap();
        let report = compare_units(&mut a, &mut b, 0.0, &probes());
        assert!(report.is_clean());
        assert_eq!(report.probes, 4);
    }

    #[test]
    fn injected_fault_is_detected() {
        let js = particle_set(20);
        let mut a = test_node();
        let mut b = test_node();
        a.load_j(&js).unwrap();
        b.load_j(&js).unwrap();
        // Flip a significant position bit in unit B's particle 7.
        b.inject_position_fault(7, 50).unwrap();
        let report = compare_units(&mut a, &mut b, 0.0, &probes());
        assert!(!report.is_clean(), "a flipped position bit must change some force");
    }

    #[test]
    fn low_order_bit_flip_may_be_invisible_in_force_but_scrub_finds_it() {
        let js = particle_set(20);
        let mut node = test_node();
        node.load_j(&js).unwrap();
        // Flip the least significant position bit: a 5.5e-17 AU displacement,
        // usually below the 24-bit pipeline quantization for these probes.
        node.inject_position_fault(3, 0).unwrap();
        let repaired = scrub(&mut node, &js);
        assert_eq!(repaired, vec![3], "scrub must locate exactly the corrupted word");
        // After scrubbing the memory matches the authoritative copy again.
        assert!(scrub(&mut node, &js).is_empty());
    }

    #[test]
    fn scrub_repairs_to_bit_identical_forces() {
        let js = particle_set(24);
        let mut clean = test_node();
        let mut dirty = test_node();
        clean.load_j(&js).unwrap();
        dirty.load_j(&js).unwrap();
        dirty.inject_position_fault(11, 45).unwrap();
        dirty.inject_position_fault(2, 52).unwrap();
        assert!(!compare_units(&mut clean, &mut dirty, 0.0, &probes()).is_clean());
        let repaired = scrub(&mut dirty, &js);
        assert_eq!(repaired.len(), 2);
        assert!(compare_units(&mut clean, &mut dirty, 0.0, &probes()).is_clean());
    }

    #[test]
    fn recover_ladder_clean_scrub_and_failed() {
        let js = particle_set(24);
        let mut a = test_node();
        let mut b = test_node();
        a.load_j(&js).unwrap();
        b.load_j(&js).unwrap();
        assert_eq!(recover(&mut a, &mut b, 0.0, &probes(), &js), Recovery::Clean);
        // Resident corruption in one unit escalates to a scrub that repairs
        // exactly the flipped word, after which the units agree again.
        b.inject_position_fault(7, 50).unwrap();
        assert_eq!(
            recover(&mut a, &mut b, 0.0, &probes(), &js),
            Recovery::Scrubbed { unit_a: 0, unit_b: 1 }
        );
        assert_eq!(recover(&mut a, &mut b, 0.0, &probes(), &js), Recovery::Clean);
        // Corruption outside the scrub source's reach cannot be healed:
        // with a truncated authoritative copy the flipped word at index 7
        // is never rewritten and the ladder must report Failed — the
        // caller's cue to degrade around the unit.
        b.inject_position_fault(7, 50).unwrap();
        let out = recover(&mut a, &mut b, 0.0, &probes(), &js[..7]);
        assert!(matches!(out, Recovery::Failed { mismatches } if mismatches > 0), "{out:?}");
    }

    #[test]
    fn fault_injection_bounds_checked() {
        let mut node = test_node();
        node.load_j(&particle_set(4)).unwrap();
        assert!(node.inject_position_fault(4, 10).is_err());
        assert!(node.inject_position_fault(0, 10).is_ok());
    }
}
