//! Byte-level wire protocol of the GRAPE-6 links.
//!
//! Everything that crosses the PCI bus or an LVDS link is a fixed-size
//! little-endian packet (the real interface used DMA of packed structures):
//!
//! * **i-particle upload** (40 B): fixed-point position (3×i64) + f32
//!   velocity (3×4) + id (4);
//! * **j-particle write-back** (72 B): fixed-point position (3×i64) + f32
//!   velocity/acceleration/jerk (9×4) + f32 mass + f64 time;
//! * **force readout** (56 B): f64 acceleration, jerk and potential (the
//!   accumulators are wide fixed point in hardware; their readout keeps full
//!   width).
//!
//! The sizes match [`crate::link::WireFormat`] — the timing model charges
//! exactly these bytes — and encode/decode round-trips are lossless at the
//! hardware's own word precision, which the tests pin down.

use crate::chip::HwIParticle;
#[cfg(test)]
use crate::format::FixedPointFormat;
use crate::predictor::JParticle;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use grape6_core::particle::ForceResult;
use grape6_core::vec3::Vec3;

/// Bytes on the wire for one i-particle.
pub const I_PACKET_BYTES: usize = 40;
/// Bytes on the wire for one j-particle write-back.
pub const J_PACKET_BYTES: usize = 72;
/// Bytes on the wire for one force result.
pub const F_PACKET_BYTES: usize = 56;
/// Bytes on the wire for one checksummed force result (payload + Fletcher-32
/// trailer). The fault-tolerant readout path uses these packets; a corrupted
/// packet is detected at the host and retransmitted.
pub const F_PACKET_CHECKED_BYTES: usize = F_PACKET_BYTES + 4;

/// Fletcher-32 checksum over a byte payload (the real GRAPE-6 host
/// interface protected DMA transfers with a simple additive check; Fletcher
/// additionally catches reordered words). Deterministic, endian-fixed.
// grape6-lint: hot
pub fn packet_checksum(payload: &[u8]) -> u32 {
    let mut s1: u32 = 0;
    let mut s2: u32 = 0;
    for chunk in payload.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_le_bytes([chunk[0], chunk[1]]) as u32
        } else {
            chunk[0] as u32
        };
        s1 = (s1 + word) % 65535;
        s2 = (s2 + s1) % 65535;
    }
    (s2 << 16) | s1
}

/// Encode a force-readout packet with a Fletcher-32 trailer.
// grape6-lint: hot
pub fn encode_force_checked(buf: &mut BytesMut, f: &ForceResult) {
    buf.reserve(F_PACKET_CHECKED_BYTES);
    let start = buf.len();
    encode_force(buf, f);
    let sum = packet_checksum(&buf[start..start + F_PACKET_BYTES]);
    buf.put_u32_le(sum);
}

/// Decode a checksummed force packet, verifying its trailer. On a checksum
/// mismatch the (corrupt) payload is consumed and an error returned — the
/// caller's recovery policy decides whether to retransmit.
// grape6-lint: hot
pub fn decode_force_checked(buf: &mut Bytes) -> Result<ForceResult, u32> {
    let expected = packet_checksum(&buf[..F_PACKET_BYTES]);
    let f = decode_force(buf);
    let sum = buf.get_u32_le();
    if sum == expected {
        Ok(f)
    } else {
        Err(sum ^ expected)
    }
}

/// Flip one bit of an encoded packet buffer (fault injection on a modeled
/// LVDS/PCI link). `bit` is taken modulo the buffer's bit length, so a
/// seeded fault plan can address any packet size safely.
// grape6-lint: hot
pub fn flip_packet_bit(packet: &mut [u8], bit: usize) {
    let nbits = packet.len() * 8;
    assert!(nbits > 0, "cannot flip a bit of an empty packet");
    let b = bit % nbits;
    packet[b / 8] ^= 1 << (b % 8);
}

// grape6-lint: hot
fn put_vec3_f32(buf: &mut BytesMut, v: Vec3) {
    buf.put_f32_le(v.x as f32);
    buf.put_f32_le(v.y as f32);
    buf.put_f32_le(v.z as f32);
}

// grape6-lint: hot
fn get_vec3_f32(buf: &mut Bytes) -> Vec3 {
    Vec3::new(buf.get_f32_le() as f64, buf.get_f32_le() as f64, buf.get_f32_le() as f64)
}

/// Encode an i-particle packet.
// grape6-lint: hot
pub fn encode_i_particle(buf: &mut BytesMut, ip: &HwIParticle, id: u32) {
    buf.reserve(I_PACKET_BYTES);
    for q in ip.qpos {
        buf.put_i64_le(q);
    }
    put_vec3_f32(buf, ip.vel);
    buf.put_u32_le(id);
}

/// Decode an i-particle packet. Returns the particle and its id.
// grape6-lint: hot
pub fn decode_i_particle(buf: &mut Bytes) -> (HwIParticle, u32) {
    let qpos = [buf.get_i64_le(), buf.get_i64_le(), buf.get_i64_le()];
    let vel = get_vec3_f32(buf);
    let id = buf.get_u32_le();
    (HwIParticle { qpos, vel }, id)
}

/// Encode a j-particle write-back packet.
// grape6-lint: hot
pub fn encode_j_particle(buf: &mut BytesMut, j: &JParticle) {
    buf.reserve(J_PACKET_BYTES);
    for q in j.qpos {
        buf.put_i64_le(q);
    }
    put_vec3_f32(buf, j.vel);
    put_vec3_f32(buf, j.acc);
    put_vec3_f32(buf, j.jerk);
    buf.put_f32_le(j.mass as f32);
    buf.put_f64_le(j.t0);
}

/// Decode a j-particle packet.
// grape6-lint: hot
pub fn decode_j_particle(buf: &mut Bytes) -> JParticle {
    let qpos = [buf.get_i64_le(), buf.get_i64_le(), buf.get_i64_le()];
    let vel = get_vec3_f32(buf);
    let acc = get_vec3_f32(buf);
    let jerk = get_vec3_f32(buf);
    let mass = buf.get_f32_le() as f64;
    let t0 = buf.get_f64_le();
    JParticle { qpos, vel, acc, jerk, mass, t0 }
}

/// Encode a force-readout packet at full accumulator width.
// grape6-lint: hot
pub fn encode_force(buf: &mut BytesMut, f: &ForceResult) {
    buf.reserve(F_PACKET_BYTES);
    buf.put_f64_le(f.acc.x);
    buf.put_f64_le(f.acc.y);
    buf.put_f64_le(f.acc.z);
    buf.put_f64_le(f.jerk.x);
    buf.put_f64_le(f.jerk.y);
    buf.put_f64_le(f.jerk.z);
    buf.put_f64_le(f.pot);
}

/// Decode a force-readout packet (no neighbour report on this wire).
// grape6-lint: hot
pub fn decode_force(buf: &mut Bytes) -> ForceResult {
    let acc = Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    let jerk = Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    let pot = buf.get_f64_le();
    ForceResult { acc, jerk, pot, nn: None }
}

/// Encode a whole block of j-particles (the per-blockstep write-back
/// stream). Returns the frozen buffer.
// grape6-lint: hot
pub fn encode_j_block(js: &[JParticle]) -> Bytes {
    let mut buf = BytesMut::with_capacity(js.len() * J_PACKET_BYTES);
    for j in js {
        encode_j_particle(&mut buf, j);
    }
    buf.freeze()
}

/// Decode a stream of j-particle packets.
// grape6-lint: hot
pub fn decode_j_block(mut buf: Bytes) -> Vec<JParticle> {
    assert_eq!(buf.len() % J_PACKET_BYTES, 0, "truncated j stream");
    let mut out = Vec::with_capacity(buf.len() / J_PACKET_BYTES);
    while buf.has_remaining() {
        out.push(decode_j_particle(&mut buf));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Precision;

    fn sample_j() -> JParticle {
        JParticle::encode(
            &FixedPointFormat::default(),
            Precision::grape6(),
            Vec3::new(20.5, -3.25, 0.125),
            Vec3::new(0.1, 0.22, -0.03),
            Vec3::new(-2e-3, 1e-4, 0.0),
            Vec3::new(1e-6, 0.0, -1e-7),
            3.0e-9,
            12.625,
        )
    }

    #[test]
    fn packet_sizes_match_timing_model() {
        let w = crate::link::WireFormat::default();
        assert_eq!(w.i_particle_bytes as usize, I_PACKET_BYTES);
        assert_eq!(w.j_particle_bytes as usize, J_PACKET_BYTES);
        assert_eq!(w.result_bytes as usize, F_PACKET_BYTES);
    }

    #[test]
    fn i_particle_roundtrip_exact() {
        let fmt = FixedPointFormat::default();
        let ip = HwIParticle::encode(
            &fmt,
            Precision::grape6(),
            Vec3::new(20.123456789, -15.5, 0.001),
            Vec3::new(0.21, -0.05, 0.003),
        );
        let mut buf = BytesMut::new();
        encode_i_particle(&mut buf, &ip, 777);
        assert_eq!(buf.len(), I_PACKET_BYTES);
        let mut b = buf.freeze();
        let (back, id) = decode_i_particle(&mut b);
        assert_eq!(id, 777);
        assert_eq!(back.qpos, ip.qpos); // fixed point: bit exact
                                        // velocity already lives in the 24-bit pipeline word → f32 is lossless
        assert_eq!(back.vel, ip.vel);
    }

    #[test]
    fn j_particle_roundtrip_exact_at_hardware_precision() {
        let j = sample_j();
        let mut buf = BytesMut::new();
        encode_j_particle(&mut buf, &j);
        assert_eq!(buf.len(), J_PACKET_BYTES);
        let mut b = buf.freeze();
        let back = decode_j_particle(&mut b);
        assert_eq!(back.qpos, j.qpos);
        assert_eq!(back.vel, j.vel);
        assert_eq!(back.acc, j.acc);
        assert_eq!(back.jerk, j.jerk);
        assert_eq!(back.mass, j.mass); // 24-bit mantissa survives f32
        assert_eq!(back.t0, j.t0);
    }

    #[test]
    fn force_roundtrip() {
        let f = ForceResult {
            acc: Vec3::new(1.23456789e-4, -9.87e-6, 0.0),
            jerk: Vec3::new(1.5e-7, 0.0, -2.0e-8),
            pot: -4.25e-5,
            nn: None,
        };
        let mut buf = BytesMut::new();
        encode_force(&mut buf, &f);
        assert_eq!(buf.len(), F_PACKET_BYTES);
        let mut b = buf.freeze();
        let back = decode_force(&mut b);
        assert_eq!(back.acc, f.acc);
        assert_eq!(back.jerk, f.jerk);
        assert_eq!(back.pot, f.pot);
    }

    #[test]
    fn j_block_stream_roundtrip() {
        let js: Vec<JParticle> = (0..17)
            .map(|k| {
                let mut j = sample_j();
                j.t0 = k as f64;
                j.qpos[0] += k;
                j
            })
            .collect();
        let stream = encode_j_block(&js);
        assert_eq!(stream.len(), 17 * J_PACKET_BYTES);
        let back = decode_j_block(stream);
        assert_eq!(back.len(), 17);
        for (a, b) in js.iter().zip(&back) {
            assert_eq!(a.qpos, b.qpos);
            assert_eq!(a.t0, b.t0);
        }
    }

    #[test]
    fn checked_force_roundtrip_and_detection() {
        let f = ForceResult {
            acc: Vec3::new(1.23456789e-4, -9.87e-6, 0.0),
            jerk: Vec3::new(1.5e-7, 0.0, -2.0e-8),
            pot: -4.25e-5,
            nn: None,
        };
        let mut buf = BytesMut::new();
        encode_force_checked(&mut buf, &f);
        assert_eq!(buf.len(), F_PACKET_CHECKED_BYTES);
        // Clean packet decodes to the same bits.
        let back = decode_force_checked(&mut buf.clone().freeze()).expect("clean packet");
        assert_eq!(back.acc, f.acc);
        assert_eq!(back.jerk, f.jerk);
        assert_eq!(back.pot, f.pot);
        // Any single-bit flip in the payload is caught.
        for bit in [0usize, 7, 63, 200, F_PACKET_BYTES * 8 - 1] {
            let mut corrupt = buf.clone();
            flip_packet_bit(&mut corrupt[..F_PACKET_BYTES], bit);
            assert!(decode_force_checked(&mut corrupt.freeze()).is_err(), "bit {bit} undetected");
        }
    }

    #[test]
    fn checksum_is_order_sensitive() {
        // Fletcher-32 catches swapped words (a plain sum would not).
        let a = packet_checksum(&[1, 0, 2, 0]);
        let b = packet_checksum(&[2, 0, 1, 0]);
        assert_ne!(a, b);
    }

    #[test]
    fn flip_packet_bit_is_an_involution() {
        let mut p = [0u8; 8];
        flip_packet_bit(&mut p, 13);
        assert_eq!(p[1], 1 << 5);
        flip_packet_bit(&mut p, 13);
        assert_eq!(p, [0u8; 8]);
        // Out-of-range bits wrap.
        flip_packet_bit(&mut p, 64 + 3);
        assert_eq!(p[0], 1 << 3);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_stream_detected() {
        let stream = encode_j_block(&[sample_j()]);
        decode_j_block(stream.slice(0..J_PACKET_BYTES - 1));
    }

    #[test]
    fn block_transfer_time_consistency() {
        // 1000 j-particles over LVDS: the timing model and the actual byte
        // count must agree.
        let js: Vec<JParticle> = (0..1000).map(|_| sample_j()).collect();
        let stream = encode_j_block(&js);
        let t_wire = crate::link::Link::lvds().transfer_time(stream.len() as u64);
        let w = crate::link::WireFormat::default();
        let t_model = crate::link::Link::lvds().transfer_time(1000 * w.j_particle_bytes);
        assert!((t_wire - t_model).abs() < 1e-12);
    }
}
