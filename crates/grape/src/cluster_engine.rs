//! [`ClusterEngine`]: the functional multi-host [`Grape6Cluster`] as a
//! [`grape6_core::engine::ForceEngine`].
//!
//! Each host of the cluster owns a static slice of the particle indices
//! (`index % hosts`) and writes back only the particles it owns; the
//! inter-GRAPE exchange network mirrors those write-backs into every peer's
//! j-memory, and a barrier at the end of every `update_j` plays the role of
//! the per-blockstep synchronization of §4.3. Force calls partition the
//! active i-block across the hosts in contiguous chunks.
//!
//! Because the j-memories are mirrored and the fixed-point reduction is
//! exactly associative, the forces are **bit-identical** to
//! [`crate::engine::Grape6Engine`] with the same format and precision — the
//! conformance harness pins this down across thousands of fuzzed scenarios.

use crate::board::BoardGeometry;
use crate::chip::HwIParticle;
use crate::cluster::Grape6Cluster;
use crate::format::{FixedPointFormat, Precision};
use crate::predictor::JParticle;
use grape6_core::engine::ForceEngine;
use grape6_core::particle::{ForceResult, IParticle, ParticleSystem};

/// The functional GRAPE-6 cluster as a force engine.
///
/// The cluster itself is built lazily at [`ForceEngine::load`], because the
/// softening length travels with the particle system.
pub struct ClusterEngine {
    hosts: usize,
    boards_per_node: usize,
    board: BoardGeometry,
    format: FixedPointFormat,
    precision: Precision,
    cluster: Option<Grape6Cluster>,
    /// Masses as resident in hardware (host-side self-potential correction).
    jmass: Vec<f64>,
    eps: f64,
    interactions: u64,
}

impl ClusterEngine {
    /// Build an engine over `hosts` nodes of `boards_per_node` boards each.
    pub fn new(
        hosts: usize,
        boards_per_node: usize,
        board: BoardGeometry,
        format: FixedPointFormat,
        precision: Precision,
    ) -> Self {
        assert!(hosts >= 1);
        Self {
            hosts,
            boards_per_node,
            board,
            format,
            precision,
            cluster: None,
            jmass: Vec::new(),
            eps: 0.0,
            interactions: 0,
        }
    }

    /// The production cluster: 4 hosts × 4 boards (paper Fig 7), hardware
    /// arithmetic.
    pub fn production() -> Self {
        Self::new(4, 4, BoardGeometry::default(), FixedPointFormat::default(), Precision::grape6())
    }

    /// Number of hosts in the cluster.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    fn encode(&self, sys: &ParticleSystem, i: usize) -> JParticle {
        JParticle::encode(
            &self.format,
            self.precision,
            sys.pos[i],
            sys.vel[i],
            sys.acc[i],
            sys.jerk[i],
            sys.mass[i],
            sys.time[i],
        )
    }
}

impl ForceEngine for ClusterEngine {
    fn load(&mut self, sys: &ParticleSystem) {
        assert!(sys.softening > 0.0, "GRAPE-6 requires positive softening");
        self.eps = sys.softening;
        let mut cluster = Grape6Cluster::new(
            self.hosts,
            self.boards_per_node,
            self.board,
            self.format,
            self.precision,
            sys.softening,
        );
        let js: Vec<JParticle> = (0..sys.len()).map(|i| self.encode(sys, i)).collect();
        self.jmass = js.iter().map(|j| j.mass).collect();
        cluster.load_j(&js).expect("particle set exceeds cluster node capacity");
        self.cluster = Some(cluster);
    }

    fn update_j(&mut self, sys: &ParticleSystem, indices: &[usize]) {
        let mut cluster = self.cluster.take().expect("load before update_j");
        for &i in indices {
            let j = self.encode(sys, i);
            self.jmass[i] = j.mass;
            // Each particle has one owning host; only that host writes it
            // back, and the exchange network mirrors the packet to peers.
            let owner = i % self.hosts;
            cluster.write_back(owner, i, &j).expect("bad j index");
        }
        // Blockstep barrier: every node drains its data-in port before the
        // next force call.
        cluster.barrier();
        self.cluster = Some(cluster);
    }

    fn compute(&mut self, t: f64, ips: &[IParticle], out: &mut [ForceResult]) {
        assert_eq!(ips.len(), out.len());
        let cluster = self.cluster.as_mut().expect("load before compute");
        let n_j = cluster.n_j();
        self.interactions += (ips.len() as u64) * (n_j as u64);
        // Contiguous partition of the i-block across hosts (the paper's
        // block-cyclic assignment reduced to one block per host per call).
        let chunk = ips.len().div_ceil(self.hosts).max(1);
        for (c, (ips_c, out_c)) in ips.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate() {
            let hw: Vec<(HwIParticle, u32)> = ips_c
                .iter()
                .map(|ip| {
                    (
                        HwIParticle::encode(&self.format, self.precision, ip.pos, ip.vel),
                        ip.index as u32,
                    )
                })
                .collect();
            let results = cluster.compute(c % self.hosts, t, &hw);
            for ((o, mut r), ip) in out_c.iter_mut().zip(results).zip(ips_c) {
                if ip.index < self.jmass.len() {
                    r.pot += self.jmass[ip.index] / self.eps;
                }
                *o = r;
            }
        }
    }

    fn interaction_count(&self) -> u64 {
        self.interactions
    }

    fn reset_counters(&mut self) {
        self.interactions = 0;
    }

    fn name(&self) -> &'static str {
        "grape6-cluster"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Grape6Engine;
    use grape6_core::vec3::Vec3;

    fn disk(n: usize) -> ParticleSystem {
        let mut sys = ParticleSystem::new(0.008, 1.0);
        for k in 0..n {
            let th = k as f64 * 0.61803398875 * std::f64::consts::TAU;
            let r = 15.0 + 20.0 * (k as f64 / n as f64);
            let v = grape6_core::units::circular_speed(r, 1.0);
            sys.push(
                Vec3::new(r * th.cos(), r * th.sin(), 0.02 * th.sin()),
                Vec3::new(-v * th.sin(), v * th.cos(), 0.0),
                1e-9 * (1 + k % 5) as f64,
            );
        }
        sys
    }

    fn ips_for(sys: &ParticleSystem, idx: &[usize]) -> Vec<IParticle> {
        idx.iter().map(|&i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect()
    }

    #[test]
    fn cluster_engine_matches_flat_engine_bitwise() {
        let sys = disk(60);
        let mut cl = ClusterEngine::production();
        let mut flat = Grape6Engine::sc2002();
        cl.load(&sys);
        flat.load(&sys);
        let idx: Vec<usize> = (0..60).collect();
        let ips = ips_for(&sys, &idx);
        let mut out_c = vec![ForceResult::default(); 60];
        let mut out_f = vec![ForceResult::default(); 60];
        cl.compute(0.5, &ips, &mut out_c);
        flat.compute(0.5, &ips, &mut out_f);
        for i in 0..60 {
            assert_eq!(out_c[i].acc, out_f[i].acc, "particle {i} acc");
            assert_eq!(out_c[i].jerk, out_f[i].jerk, "particle {i} jerk");
            assert_eq!(out_c[i].pot, out_f[i].pot, "particle {i} pot");
        }
    }

    #[test]
    fn cluster_engine_tracks_updates_bitwise() {
        let mut sys = disk(24);
        let mut cl = ClusterEngine::production();
        let mut flat = Grape6Engine::sc2002();
        cl.load(&sys);
        flat.load(&sys);
        for i in [2usize, 9, 21] {
            sys.pos[i] += Vec3::new(-0.03, 0.01, 0.002);
            sys.vel[i] *= 0.999;
            sys.time[i] = 0.25;
        }
        cl.update_j(&sys, &[2, 9, 21]);
        flat.update_j(&sys, &[2, 9, 21]);
        let ips = ips_for(&sys, &[0, 5, 21]);
        let mut out_c = vec![ForceResult::default(); 3];
        let mut out_f = vec![ForceResult::default(); 3];
        cl.compute(1.0, &ips, &mut out_c);
        flat.compute(1.0, &ips, &mut out_f);
        for k in 0..3 {
            assert_eq!(out_c[k].acc, out_f[k].acc);
            assert_eq!(out_c[k].pot, out_f[k].pot);
        }
        assert_eq!(cl.interaction_count(), 3 * 24);
    }
}
