//! The performance model of the full GRAPE-6 installation.
//!
//! Charges every phase of a block step with the costs the paper describes:
//! host integration work, i-particle upload (PCI + NB tree), the pipeline
//! sweep itself (90 MHz, 6 pipelines × 8 virtual per chip), force readout
//! through the reduction tree, j-particle write-back and its propagation to
//! the other nodes (LVDS inside a cluster, Gigabit Ethernet between
//! clusters), and the per-step barrier.
//!
//! The work distribution follows §5.1–5.3: the active block is divided
//! across the 16 hosts (i-parallelism); each node's 128 chips hold the full
//! particle set divided across their memories (j-parallelism), so every node
//! computes complete forces for its share of the block.

use crate::board::BoardGeometry;
use crate::link::{Link, WireFormat};
use crate::network::{NetworkBoardGeometry, NetworkTree};
use serde::{Deserialize, Serialize};

/// Geometry of the complete machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineGeometry {
    /// Clusters in the system (4).
    pub clusters: usize,
    /// Host computers per cluster (4).
    pub hosts_per_cluster: usize,
    /// Processor boards per host (4).
    pub boards_per_host: usize,
    /// Per-board geometry (32 chips).
    pub board: BoardGeometry,
}

impl MachineGeometry {
    /// The SC2002 production configuration: 4 clusters × 4 hosts × 4 boards
    /// × 32 chips = 2048 chips.
    pub fn sc2002() -> Self {
        Self {
            clusters: 4,
            hosts_per_cluster: 4,
            boards_per_host: 4,
            board: BoardGeometry::default(),
        }
    }

    /// A single-host, single-board development configuration.
    pub fn single_host() -> Self {
        Self {
            clusters: 1,
            hosts_per_cluster: 1,
            boards_per_host: 1,
            board: BoardGeometry::default(),
        }
    }

    /// Total host computers.
    pub fn hosts(&self) -> usize {
        self.clusters * self.hosts_per_cluster
    }

    /// Total processor boards.
    pub fn boards(&self) -> usize {
        self.hosts() * self.boards_per_host
    }

    /// Total pipeline chips.
    pub fn chips(&self) -> usize {
        self.boards() * self.board.chips
    }

    /// Chips serving one node's j-memory.
    pub fn chips_per_node(&self) -> usize {
        self.boards_per_host * self.board.chips
    }

    /// Theoretical peak flops (57-op convention). For the production
    /// configuration this is the paper's "63.4 Tflops" (our count gives
    /// 63.0 × 10¹²; the 0.6 % difference is the paper's rounding of the
    /// per-chip 30.7 Gflops figure).
    pub fn peak_flops(&self) -> f64 {
        self.chips() as f64 * self.board.chip.peak_flops()
    }

    /// j-particle capacity of one node (all its chips together).
    pub fn node_jmem_capacity(&self) -> usize {
        self.chips_per_node() * self.board.chip.jmem_capacity
    }

    /// Split the machine into `parts` equal, independent sub-machines —
    /// §4.3: the network modes let "a 4-host, 16-processor board system
    /// \[run\] as single entity, as two units, and as four separate units",
    /// and the 2-D grid "can divide … to any rectangular submatrix … and use
    /// each of them to run separate programs". Returns `None` when the host
    /// count does not divide evenly.
    pub fn partition(&self, parts: usize) -> Option<MachineGeometry> {
        let h = self.hosts();
        if parts == 0 || !h.is_multiple_of(parts) {
            return None;
        }
        let nh = h / parts;
        if nh >= self.hosts_per_cluster && nh.is_multiple_of(self.hosts_per_cluster) {
            Some(Self { clusters: nh / self.hosts_per_cluster, ..*self })
        } else {
            Some(Self { clusters: 1, hosts_per_cluster: nh, ..*self })
        }
    }
}

/// Host computer cost model (the Athlon XP PCs of §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostModel {
    /// Seconds of host work per particle-step (prediction of the i-particle,
    /// Hermite correction, timestep update, scheduler bookkeeping).
    pub seconds_per_particle_step: f64,
    /// Fixed driver overhead per force call.
    pub call_overhead: f64,
}

impl Default for HostModel {
    fn default() -> Self {
        // ~2 µs per particle-step: a few hundred flops of corrector work at
        // the few-hundred-Mflops effective speed of an Athlon XP (§4.3).
        Self { seconds_per_particle_step: 2.0e-6, call_overhead: 20.0e-6 }
    }
}

/// The complete timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Machine geometry.
    pub geometry: MachineGeometry,
    /// Host ↔ interface-board link.
    pub pci: Link,
    /// NB tree geometry inside one node / cluster.
    pub nb: NetworkBoardGeometry,
    /// Inter-cluster fabric.
    pub ethernet: Link,
    /// Per-particle wire sizes.
    pub wire: WireFormat,
    /// Host cost model.
    pub host: HostModel,
    /// Per-blockstep barrier cost across all hosts.
    pub sync_latency: f64,
    /// Model the `g6calc_firsthalf`/`lasthalf` overlap: while the pipelines
    /// sweep block k, the host corrects block k−1 and the network moves
    /// block k−1's write-backs. When set, a steady stream of block steps
    /// costs `max(pipeline, host + communication)` per step instead of the
    /// sum (plus the non-overlappable sync).
    pub overlap: bool,
}

impl TimingModel {
    /// The production SC2002 model.
    pub fn sc2002() -> Self {
        Self {
            geometry: MachineGeometry::sc2002(),
            pci: Link::pci(),
            nb: NetworkBoardGeometry::default(),
            ethernet: Link::gigabit_ethernet(),
            wire: WireFormat::default(),
            host: HostModel::default(),
            sync_latency: 100.0e-6,
            overlap: false,
        }
    }

    /// The production model with firsthalf/lasthalf overlap enabled.
    pub fn sc2002_overlapped() -> Self {
        Self { overlap: true, ..Self::sc2002() }
    }

    /// Single-host development model (no inter-host communication at all).
    pub fn single_host() -> Self {
        Self { geometry: MachineGeometry::single_host(), ..Self::sc2002() }
    }

    /// The NB tree spanning one node's processor boards.
    pub fn node_tree(&self) -> NetworkTree {
        NetworkTree::spanning(self.geometry.boards_per_host, self.nb)
    }

    /// Cost breakdown of one block step with `n_active` particles updated
    /// out of `n_total` resident.
    pub fn block_step(&self, n_active: usize, n_total: usize) -> StepBreakdown {
        let g = &self.geometry;
        let hosts = g.hosts();
        let n_i_host = n_active.div_ceil(hosts);
        let n_j_chip = n_total.div_ceil(g.chips_per_node());
        let tree = self.node_tree();

        // Host integration work for its share of the block.
        let host = self.host.call_overhead + n_i_host as f64 * self.host.seconds_per_particle_step;

        // i-particle upload: PCI transfer pipelined with the NB broadcast —
        // charge the slower stage.
        let i_bytes = n_i_host as u64 * self.wire.i_particle_bytes;
        let send_i = self.pci.transfer_time(i_bytes).max(tree.broadcast_time(i_bytes));

        // The pipeline sweep (all chips in parallel on their j-slices).
        let pipeline = g.board.chip.compute_seconds(n_i_host, n_j_chip);

        // Force readout through the reduction tree, then PCI.
        let f_bytes = n_i_host as u64 * self.wire.result_bytes;
        let receive = self.pci.transfer_time(f_bytes).max(tree.reduce_time(f_bytes));

        // j write-back: the host's own corrected particles to its boards…
        let j_local_bytes = n_i_host as u64 * self.wire.j_particle_bytes;
        // …and the other intra-cluster hosts' blocks arriving over the NB
        // data ports (paper Fig 4/5: the hosts themselves exchange nothing).
        let peers = g.hosts_per_cluster.saturating_sub(1);
        let j_intra_bytes = (peers * n_i_host) as u64 * self.wire.j_particle_bytes;
        let jshare_intra =
            self.pci.transfer_time(j_local_bytes).max(self.nb.link.transfer_time(j_intra_bytes));

        // Inter-cluster propagation over Gigabit Ethernet: every node must
        // receive the blocks integrated by the other clusters.
        let other_clusters = g.clusters.saturating_sub(1);
        let j_inter_bytes =
            (other_clusters * g.hosts_per_cluster * n_i_host) as u64 * self.wire.j_particle_bytes;
        let jshare_inter =
            if other_clusters == 0 { 0.0 } else { self.ethernet.transfer_time(j_inter_bytes) };

        // Barrier at the start of every block step (§4.3: hosts "still have
        // to synchronize at the beginning of each timestep").
        let sync = if hosts > 1 { self.sync_latency } else { 0.0 };

        StepBreakdown {
            host,
            send_i,
            pipeline,
            receive,
            jshare_intra,
            jshare_inter,
            sync,
            overlapped: self.overlap,
        }
    }

    /// Modeled sustained flops for a steady stream of block steps of size
    /// `n_active` on an `n_total`-body system.
    pub fn sustained_flops(&self, n_active: usize, n_total: usize) -> f64 {
        let t = self.block_step(n_active, n_total).total();
        let flops = 57.0 * n_active as f64 * n_total as f64;
        flops / t
    }
}

/// Per-phase cost of one block step, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StepBreakdown {
    /// Host integration work.
    pub host: f64,
    /// i-particle upload.
    pub send_i: f64,
    /// Pipeline sweep.
    pub pipeline: f64,
    /// Force readout.
    pub receive: f64,
    /// Intra-cluster j propagation (LVDS).
    pub jshare_intra: f64,
    /// Inter-cluster j propagation (GbE).
    pub jshare_inter: f64,
    /// Barrier.
    pub sync: f64,
    /// Whether this step was modeled with firsthalf/lasthalf overlap (the
    /// pipeline sweep hides the host + communication work of the previous
    /// block).
    #[serde(default)]
    pub overlapped: bool,
}

impl StepBreakdown {
    /// Host + communication work (everything the pipeline sweep can hide
    /// when overlapping).
    pub fn hideable(&self) -> f64 {
        self.host + self.send_i + self.receive + self.jshare_intra + self.jshare_inter
    }

    /// Total wall time of the step: the straight sum, or — when overlapped —
    /// `max(pipeline, host + comm) + sync`.
    pub fn total(&self) -> f64 {
        if self.overlapped {
            self.pipeline.max(self.hideable()) + self.sync
        } else {
            self.pipeline + self.hideable() + self.sync
        }
    }

    /// Accumulate another step's costs (the overlap flag is sticky).
    pub fn accumulate(&mut self, other: &StepBreakdown) {
        self.host += other.host;
        self.send_i += other.send_i;
        self.pipeline += other.pipeline;
        self.receive += other.receive;
        self.jshare_intra += other.jshare_intra;
        self.jshare_inter += other.jshare_inter;
        self.sync += other.sync;
        self.overlapped |= other.overlapped;
    }

    /// Fraction of the step spent in the pipelines (the "useful" phase).
    pub fn pipeline_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.pipeline / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_geometry_matches_paper() {
        let g = MachineGeometry::sc2002();
        assert_eq!(g.hosts(), 16);
        assert_eq!(g.boards(), 64);
        assert_eq!(g.chips(), 2048);
        assert_eq!(g.chips_per_node(), 128);
        // §1: "theoretical peak performance is 63.4 Tflops" — our op count
        // gives 63.0; the difference is rounding in the paper's 30.7 figure.
        let peak_t = g.peak_flops() / 1e12;
        assert!((peak_t - 63.0).abs() < 0.2, "peak {peak_t} Tflops");
    }

    #[test]
    fn node_memory_holds_the_production_run() {
        let g = MachineGeometry::sc2002();
        // 1.8 M particles must fit in one node's 128 chip memories.
        assert!(g.node_jmem_capacity() >= 1_800_000, "{}", g.node_jmem_capacity());
    }

    #[test]
    fn partition_preserves_total_resources() {
        let m = MachineGeometry::sc2002();
        for parts in [1usize, 2, 4, 8, 16] {
            let p = m.partition(parts).unwrap();
            assert_eq!(p.hosts() * parts, m.hosts(), "parts={parts}");
            assert_eq!(p.chips() * parts, m.chips());
            assert!((p.peak_flops() * parts as f64 - m.peak_flops()).abs() < 1.0);
        }
        assert!(m.partition(3).is_none());
        assert!(m.partition(0).is_none());
        assert!(m.partition(32).is_none());
    }

    #[test]
    fn quarter_machine_matches_one_cluster() {
        let quarter = MachineGeometry::sc2002().partition(4).unwrap();
        assert_eq!(quarter.hosts(), 4);
        assert_eq!(quarter.chips(), 512);
        assert_eq!(quarter.clusters, 1);
    }

    #[test]
    fn step_breakdown_total_sums_phases() {
        let m = TimingModel::sc2002();
        let b = m.block_step(2000, 1_800_000);
        let sum =
            b.host + b.send_i + b.pipeline + b.receive + b.jshare_intra + b.jshare_inter + b.sync;
        assert!((b.total() - sum).abs() < 1e-18);
        assert!(b.pipeline > 0.0 && b.host > 0.0 && b.sync > 0.0);
    }

    #[test]
    fn production_run_lands_in_paper_efficiency_regime() {
        // §6: 29.5 Tflops sustained = 46.5 % of peak, N = 1.8 M. With block
        // sizes in the plausible range for this N, the model must land in
        // the same regime (tens of Tflops, 30–70 % of peak).
        let m = TimingModel::sc2002();
        let peak = m.geometry.peak_flops();
        for n_act in [1000, 2000, 4000] {
            let s = m.sustained_flops(n_act, 1_800_000);
            let eff = s / peak;
            assert!(
                eff > 0.25 && eff < 0.85,
                "n_act={n_act}: {:.1} Tflops, eff {:.2}",
                s / 1e12,
                eff
            );
        }
    }

    #[test]
    fn small_blocks_are_inefficient() {
        // §4.2's concern: tiny active blocks underuse the pipelines.
        let m = TimingModel::sc2002();
        let small = m.sustained_flops(16, 1_800_000);
        let large = m.sustained_flops(4096, 1_800_000);
        assert!(small < large / 10.0, "small {small:e} vs large {large:e}");
    }

    #[test]
    fn single_host_has_no_network_costs() {
        let m = TimingModel::single_host();
        let b = m.block_step(100, 100_000);
        assert_eq!(b.jshare_inter, 0.0);
        assert_eq!(b.sync, 0.0);
    }

    #[test]
    fn pipeline_time_scales_linearly_with_n() {
        let m = TimingModel::sc2002();
        let b1 = m.block_step(2048, 400_000);
        let b2 = m.block_step(2048, 800_000);
        let ratio = b2.pipeline / b1.pipeline;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn ethernet_downgrade_hurts() {
        // The paper notes GbE is "barely okay"; 100 Mbit should visibly cut
        // sustained speed.
        let good = TimingModel::sc2002();
        let mut bad = good;
        bad.ethernet = Link::fast_ethernet();
        let s_good = good.sustained_flops(2000, 1_800_000);
        let s_bad = bad.sustained_flops(2000, 1_800_000);
        assert!(s_bad < 0.8 * s_good, "good {s_good:e} bad {s_bad:e}");
    }

    #[test]
    fn accumulate_adds_componentwise() {
        let m = TimingModel::sc2002();
        let b = m.block_step(1000, 1_000_000);
        let mut acc = StepBreakdown::default();
        acc.accumulate(&b);
        acc.accumulate(&b);
        assert!((acc.total() - 2.0 * b.total()).abs() < 1e-15);
        assert!((acc.pipeline_fraction() - b.pipeline_fraction()).abs() < 1e-12);
    }
}

#[cfg(test)]
mod overlap_tests {
    use super::*;

    #[test]
    fn overlap_never_slower_and_hides_comm() {
        let plain = TimingModel::sc2002();
        let fast = TimingModel::sc2002_overlapped();
        for (n_act, n) in [(256usize, 1_800_000usize), (2048, 1_800_000), (16384, 1_800_000)] {
            let a = plain.block_step(n_act, n).total();
            let b = fast.block_step(n_act, n).total();
            assert!(b <= a, "overlap slower at n_act={n_act}: {b} > {a}");
        }
        // In the pipeline-bound regime the overlapped step costs ≈ the sweep
        // alone.
        let b = fast.block_step(16384, 1_800_000);
        assert!((b.total() - (b.pipeline + b.sync)).abs() < 1e-9);
    }

    #[test]
    fn overlap_improves_headline_efficiency() {
        let plain = TimingModel::sc2002().sustained_flops(2048, 1_800_000);
        let fast = TimingModel::sc2002_overlapped().sustained_flops(2048, 1_800_000);
        assert!(fast > 1.2 * plain, "overlap gain too small: {fast:e} vs {plain:e}");
    }

    #[test]
    fn accumulated_overlap_totals_stay_consistent() {
        let fast = TimingModel::sc2002_overlapped();
        let step = fast.block_step(2048, 1_800_000);
        let mut acc = StepBreakdown::default();
        acc.accumulate(&step);
        acc.accumulate(&step);
        assert!((acc.total() - 2.0 * step.total()).abs() < 1e-12);
        assert!(acc.overlapped);
    }
}
