//! [`NodeEngine`]: the fully-routed functional node as a
//! [`grape6_core::engine::ForceEngine`].
//!
//! Slower than [`crate::engine::Grape6Engine`] (every packet really crosses
//! the wire protocol and the board structure), but byte-for-byte faithful to
//! the node data path. The integration suite drives identical simulations
//! through both and asserts *bit-identical trajectories* — the strongest
//! possible statement that the fast engine's flat-memory shortcut is exact.

use crate::chip::HwIParticle;
use crate::format::{FixedPointFormat, Precision};
use crate::node::Grape6Node;
use crate::predictor::JParticle;
use grape6_core::engine::ForceEngine;
use grape6_core::particle::{ForceResult, IParticle, ParticleSystem};

/// A force engine backed by one fully-routed [`Grape6Node`].
#[derive(Debug, Clone)]
pub struct NodeEngine {
    node: Grape6Node,
    format: FixedPointFormat,
    precision: Precision,
    /// Masses as resident in hardware (for the host-side self-potential
    /// correction).
    jmass: Vec<f64>,
    eps: f64,
    interactions: u64,
}

impl NodeEngine {
    /// Wrap a node (softening is taken from the system at `load`).
    pub fn new(node: Grape6Node, format: FixedPointFormat, precision: Precision) -> Self {
        Self { node, format, precision, jmass: Vec::new(), eps: 0.0, interactions: 0 }
    }

    /// A production node (4 boards × 32 chips) with hardware arithmetic.
    pub fn production() -> Self {
        let precision = Precision::grape6();
        Self::new(Grape6Node::production(precision), FixedPointFormat::default(), precision)
    }

    /// Access the underlying node (traffic counters, cycles).
    pub fn node(&self) -> &Grape6Node {
        &self.node
    }

    fn encode(&self, sys: &ParticleSystem, i: usize) -> JParticle {
        JParticle::encode(
            &self.format,
            self.precision,
            sys.pos[i],
            sys.vel[i],
            sys.acc[i],
            sys.jerk[i],
            sys.mass[i],
            sys.time[i],
        )
    }
}

impl ForceEngine for NodeEngine {
    fn load(&mut self, sys: &ParticleSystem) {
        assert!(sys.softening > 0.0, "GRAPE-6 requires positive softening");
        self.eps = sys.softening;
        self.node.set_softening(sys.softening);
        let js: Vec<JParticle> = (0..sys.len()).map(|i| self.encode(sys, i)).collect();
        self.jmass = js.iter().map(|j| j.mass).collect();
        self.node.load_j(&js).expect("particle set exceeds node capacity");
    }

    fn update_j(&mut self, sys: &ParticleSystem, indices: &[usize]) {
        for &i in indices {
            let j = self.encode(sys, i);
            self.jmass[i] = j.mass;
            self.node.store_j(i, &j).expect("bad j index");
        }
    }

    fn compute(&mut self, t: f64, ips: &[IParticle], out: &mut [ForceResult]) {
        assert_eq!(ips.len(), out.len());
        let hw: Vec<(HwIParticle, u32)> = ips
            .iter()
            .map(|ip| {
                (HwIParticle::encode(&self.format, self.precision, ip.pos, ip.vel), ip.index as u32)
            })
            .collect();
        let results = self.node.compute(t, &hw);
        self.interactions += (ips.len() as u64) * (self.node.n_j() as u64);
        for ((o, mut r), ip) in out.iter_mut().zip(results).zip(ips) {
            // Host-side self-potential correction, as in Grape6Engine.
            if ip.index < self.jmass.len() {
                r.pot += self.jmass[ip.index] / self.eps;
            }
            *o = r;
        }
    }

    fn interaction_count(&self) -> u64 {
        self.interactions
    }

    fn reset_counters(&mut self) {
        self.interactions = 0;
    }

    fn name(&self) -> &'static str {
        "grape6-node-routed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Grape6Config, Grape6Engine};
    use grape6_core::vec3::Vec3;

    fn disk(n: usize) -> ParticleSystem {
        let mut sys = ParticleSystem::new(0.008, 1.0);
        for k in 0..n {
            let th = k as f64 * 0.61803398875 * std::f64::consts::TAU;
            let r = 15.0 + 20.0 * (k as f64 / n as f64);
            let v = grape6_core::units::circular_speed(r, 1.0);
            sys.push(
                Vec3::new(r * th.cos(), r * th.sin(), 0.02 * th.sin()),
                Vec3::new(-v * th.sin(), v * th.cos(), 0.0),
                1e-9 * (1 + k % 5) as f64,
            );
        }
        sys
    }

    #[test]
    fn routed_node_matches_flat_engine_bitwise() {
        let sys = disk(100);
        let mut routed = NodeEngine::production();
        let mut flat = Grape6Engine::new(Grape6Config::sc2002());
        routed.load(&sys);
        flat.load(&sys);
        let ips: Vec<IParticle> =
            (0..100).map(|i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect();
        let mut out_r = vec![ForceResult::default(); 100];
        let mut out_f = vec![ForceResult::default(); 100];
        routed.compute(0.25, &ips, &mut out_r);
        flat.compute(0.25, &ips, &mut out_f);
        for i in 0..100 {
            assert_eq!(out_r[i].acc, out_f[i].acc, "particle {i} acc");
            assert_eq!(out_r[i].jerk, out_f[i].jerk, "particle {i} jerk");
            assert_eq!(out_r[i].pot, out_f[i].pot, "particle {i} pot");
        }
    }

    #[test]
    fn routed_node_tracks_updates_bitwise() {
        let mut sys = disk(32);
        let mut routed = NodeEngine::production();
        let mut flat = Grape6Engine::new(Grape6Config::sc2002());
        routed.load(&sys);
        flat.load(&sys);
        // Mutate a few particles as a block step would.
        for i in [3usize, 17, 29] {
            sys.pos[i] += Vec3::new(0.01, -0.02, 0.0);
            sys.vel[i] *= 1.001;
            sys.acc[i] = Vec3::new(1e-4, 0.0, -1e-5);
            sys.jerk[i] = Vec3::new(0.0, 1e-6, 0.0);
            sys.time[i] = 0.5;
        }
        routed.update_j(&sys, &[3, 17, 29]);
        flat.update_j(&sys, &[3, 17, 29]);
        let ips = [IParticle { index: 0, pos: sys.pos[0], vel: sys.vel[0] }];
        let mut out_r = [ForceResult::default()];
        let mut out_f = [ForceResult::default()];
        routed.compute(1.0, &ips, &mut out_r);
        flat.compute(1.0, &ips, &mut out_f);
        assert_eq!(out_r[0].acc, out_f[0].acc);
        assert_eq!(out_r[0].pot, out_f[0].pot);
    }

    #[test]
    fn traffic_is_accounted() {
        let sys = disk(64);
        let mut routed = NodeEngine::production();
        routed.load(&sys);
        let t0 = routed.node().traffic();
        assert_eq!(t0.j_bytes, 64 * crate::wire::J_PACKET_BYTES as u64);
        let ips: Vec<IParticle> =
            (0..10).map(|i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect();
        let mut out = vec![ForceResult::default(); 10];
        routed.compute(0.0, &ips, &mut out);
        let t1 = routed.node().traffic();
        assert_eq!(t1.i_bytes, 10 * crate::wire::I_PACKET_BYTES as u64);
        assert_eq!(t1.f_bytes, 10 * crate::wire::F_PACKET_BYTES as u64);
        assert_eq!(routed.interaction_count(), 10 * 64);
    }
}
