//! Performance accounting: the modeled hardware clock and the Gordon Bell
//! style performance report (paper §6).

use crate::timing::StepBreakdown;
use serde::{Deserialize, Serialize};

/// Accumulates modeled hardware time across a run, phase by phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HardwareClock {
    /// Accumulated per-phase costs.
    pub breakdown: StepBreakdown,
    /// Block steps charged.
    pub steps: u64,
}

impl HardwareClock {
    /// A zeroed clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one block step.
    pub fn charge(&mut self, step: &StepBreakdown) {
        self.breakdown.accumulate(step);
        self.steps += 1;
    }

    /// Total modeled seconds.
    pub fn seconds(&self) -> f64 {
        self.breakdown.total()
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// The §6-style performance summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Pairwise interactions evaluated.
    pub interactions: u64,
    /// Total floating-point operations (57 per interaction).
    pub flops: f64,
    /// Modeled machine time in seconds.
    pub seconds: f64,
    /// Sustained speed in flops/s.
    pub sustained: f64,
    /// Theoretical peak in flops/s.
    pub peak: f64,
    /// Efficiency (sustained / peak).
    pub efficiency: f64,
}

impl PerfReport {
    /// Build a report from raw counts.
    pub fn new(interactions: u64, seconds: f64, peak: f64) -> Self {
        let flops = interactions as f64 * grape6_core::force::FLOPS_PER_INTERACTION as f64;
        let sustained = if seconds > 0.0 { flops / seconds } else { 0.0 };
        Self {
            interactions,
            flops,
            seconds,
            sustained,
            peak,
            efficiency: if peak > 0.0 { sustained / peak } else { 0.0 },
        }
    }

    /// Sustained speed in Tflops (the paper's headline unit).
    pub fn tflops(&self) -> f64 {
        self.sustained / 1e12
    }
}

impl std::fmt::Display for PerfReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3e} interactions = {:.3e} flops in {:.3} s → {:.2} Tflops ({:.1} % of {:.1} Tflops peak)",
            self.interactions as f64,
            self.flops,
            self.seconds,
            self.tflops(),
            100.0 * self.efficiency,
            self.peak / 1e12
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates_steps() {
        let mut c = HardwareClock::new();
        let step = StepBreakdown { pipeline: 1e-3, host: 1e-4, ..Default::default() };
        c.charge(&step);
        c.charge(&step);
        assert_eq!(c.steps, 2);
        assert!((c.seconds() - 2.2e-3).abs() < 1e-12);
        c.reset();
        assert_eq!(c.steps, 0);
        assert_eq!(c.seconds(), 0.0);
    }

    #[test]
    fn report_reproduces_paper_arithmetic() {
        // §6: "The total number of floating point operations is 57 × (pair
        // count)… The resulting average computing speed is 29.5 Tflops."
        // Construct the inverse: interactions and seconds chosen so the
        // report reads exactly 29.5 Tflops.
        let seconds = 1000.0;
        let interactions = (29.5e12 * seconds / 57.0) as u64;
        let r = PerfReport::new(interactions, seconds, 63.4e12);
        assert!((r.tflops() - 29.5).abs() < 0.01);
        assert!((r.efficiency - 29.5 / 63.4).abs() < 0.001);
    }

    #[test]
    fn zero_time_report_is_safe() {
        let r = PerfReport::new(1000, 0.0, 63.4e12);
        assert_eq!(r.sustained, 0.0);
        assert_eq!(r.efficiency, 0.0);
    }

    #[test]
    fn display_contains_tflops() {
        let r = PerfReport::new(1_000_000_000, 1.0, 63.0e12);
        let s = format!("{r}");
        assert!(s.contains("Tflops"), "{s}");
    }
}
