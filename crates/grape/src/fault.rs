//! Deterministic, seeded fault injection for the modeled GRAPE-6 hardware.
//!
//! The SC2002 run kept 2048 custom chips busy for weeks; over that span
//! SSRAM bit flips, flaky LVDS links and dead pipelines are certainties,
//! not possibilities (paper §5.2–§5.3). A [`FaultPlan`] describes *exactly*
//! which upsets hit the machine and when, as a pure function of a seed —
//! so a fault campaign is reproducible bit-for-bit across runs, thread
//! counts and checkpoint/restart boundaries.
//!
//! The plan is consumed by `crate::fault_engine::FaultTolerantEngine`,
//! which injects each event at its scheduled force call and drives the
//! detect → retry → scrub → degrade recovery ladder.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One kind of hardware upset.
///
/// `unit` selects which of the two dual-modular-redundancy units the fault
/// lands on (0 or 1, reduced modulo 2 at injection time) — a real upset
/// hits one physical board set, never both, which is exactly why DMR
/// detects it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Flip one bit of a resident j-particle's fixed-point position word
    /// (an SSRAM soft error). `index` addresses the particle (modulo the
    /// loaded count), `bit` the bit within its 64-bit x word.
    JMemFlip {
        /// DMR unit the flip lands on.
        unit: usize,
        /// j-particle index (reduced modulo the loaded particle count).
        index: usize,
        /// Bit position within the 64-bit word (reduced modulo 64).
        bit: usize,
    },
    /// Flip one bit of a force-readout packet in flight on the modeled
    /// LVDS/PCI link. Caught by the per-packet checksum and retransmitted.
    LinkFlip {
        /// Bit position within the packet (reduced modulo the packet size).
        bit: usize,
    },
    /// Kill one processor board permanently. The timing model is
    /// repartitioned around it: the surviving boards absorb its share of
    /// j-memory, and the modeled clock charges the lost throughput for the
    /// rest of the run. Functional results are unaffected (per-board
    /// partitioning enters the force sum only through timing).
    BoardFail {
        /// DMR unit that loses a board.
        unit: usize,
    },
}

/// A fault scheduled for a specific force call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Zero-based force-call ordinal (the engine's own `compute` counter,
    /// which is deterministic for a given run) at which to inject.
    pub at_step: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// A complete, reproducible fault campaign: a seed plus the event list it
/// determined. Serializable to/from JSON for the `grape6 run --faults`
/// surface and the CI fault matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Seed the events were drawn from (informational once events exist).
    #[serde(default)]
    pub seed: u64,
    /// Scheduled upsets, in any order; the injector sorts by `at_step`.
    #[serde(default)]
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults (the happy path).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Draw a random campaign: `n_events` upsets uniformly over force
    /// calls `[0, horizon_steps)`, mixing memory flips, link flips and —
    /// with low probability, matching their real-world rarity — board
    /// deaths. Pure function of `seed`.
    pub fn random(seed: u64, n_events: usize, horizon_steps: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let horizon = horizon_steps.max(1);
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let at_step = rng.gen::<u64>() % horizon;
            let roll: f64 = rng.gen();
            let kind = if roll < 0.45 {
                FaultKind::JMemFlip {
                    unit: (rng.gen::<u64>() % 2) as usize,
                    index: (rng.gen::<u64>() % 65536) as usize,
                    bit: (rng.gen::<u64>() % 64) as usize,
                }
            } else if roll < 0.9 {
                FaultKind::LinkFlip { bit: (rng.gen::<u64>() % 448) as usize }
            } else {
                FaultKind::BoardFail { unit: (rng.gen::<u64>() % 2) as usize }
            };
            events.push(FaultEvent { at_step, kind });
        }
        Self { seed, events }
    }

    /// A single board death at the given force call — the headline
    /// mid-run failure scenario of the acceptance tests.
    pub fn board_failure(at_step: u64, unit: usize) -> Self {
        Self { seed: 0, events: vec![FaultEvent { at_step, kind: FaultKind::BoardFail { unit } }] }
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Cursor over a [`FaultPlan`], handing out the events due at each force
/// call in deterministic (step, insertion) order.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultInjector {
    /// Build an injector; events are stably sorted by `at_step` so ties
    /// fire in plan order.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut events = plan.events.clone();
        events.sort_by_key(|e| e.at_step);
        Self { events, cursor: 0 }
    }

    /// Pop every event scheduled at or before `step`. (At-or-before, not
    /// exactly-at: a resumed run whose checkpoint healed pending
    /// corruption must still fire later events.)
    pub fn take_due(&mut self, step: u64) -> Vec<FaultEvent> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at_step <= step {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    /// Events not yet injected.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Current cursor position (for checkpointing).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Restore a checkpointed cursor position.
    pub fn set_cursor(&mut self, cursor: usize) -> Result<(), String> {
        if cursor > self.events.len() {
            return Err(format!(
                "fault cursor {cursor} out of range (plan has {} events)",
                self.events.len()
            ));
        }
        self.cursor = cursor;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plan_is_seed_deterministic() {
        let a = FaultPlan::random(42, 16, 1000);
        let b = FaultPlan::random(42, 16, 1000);
        assert_eq!(a, b);
        let c = FaultPlan::random(43, 16, 1000);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
        assert!(a.events.iter().all(|e| e.at_step < 1000));
    }

    #[test]
    fn random_plan_mixes_fault_kinds() {
        let plan = FaultPlan::random(7, 200, 500);
        let mems =
            plan.events.iter().filter(|e| matches!(e.kind, FaultKind::JMemFlip { .. })).count();
        let links =
            plan.events.iter().filter(|e| matches!(e.kind, FaultKind::LinkFlip { .. })).count();
        let boards =
            plan.events.iter().filter(|e| matches!(e.kind, FaultKind::BoardFail { .. })).count();
        assert!(mems > 0 && links > 0 && boards > 0);
        assert!(boards < mems && boards < links, "board deaths must be rare");
    }

    #[test]
    fn injector_fires_in_step_order() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent { at_step: 5, kind: FaultKind::LinkFlip { bit: 1 } },
                FaultEvent { at_step: 2, kind: FaultKind::LinkFlip { bit: 2 } },
                FaultEvent { at_step: 5, kind: FaultKind::LinkFlip { bit: 3 } },
            ],
        };
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.take_due(1).is_empty());
        let due = inj.take_due(2);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, FaultKind::LinkFlip { bit: 2 });
        let due = inj.take_due(7);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].kind, FaultKind::LinkFlip { bit: 1 });
        assert_eq!(due[1].kind, FaultKind::LinkFlip { bit: 3 });
        assert_eq!(inj.remaining(), 0);
    }

    #[test]
    fn injector_cursor_roundtrip() {
        let plan = FaultPlan::random(1, 8, 100);
        let mut inj = FaultInjector::new(&plan);
        let _ = inj.take_due(50);
        let cur = inj.cursor();
        let mut resumed = FaultInjector::new(&plan);
        resumed.set_cursor(cur).unwrap();
        assert_eq!(inj.take_due(u64::MAX), resumed.take_due(u64::MAX));
        assert!(resumed.set_cursor(999).is_err());
    }

    #[test]
    fn plan_json_roundtrip() {
        // The serde shims must carry the enum through JSON untouched — this
        // is the `--faults plan.json` file format.
        let plan = FaultPlan::random(3, 12, 64);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
