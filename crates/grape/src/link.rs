//! Communication links of the GRAPE-6 system (paper §5.2–5.3):
//!
//! * the LVDS semi-serial board-to-board link, 90 MB/s over four
//!   twisted pairs (DS90C363A/DS90CF364A devices),
//! * the PCI bus between the host and its host-interface board,
//! * Gigabit Ethernet between host computers of different clusters.

use serde::{Deserialize, Serialize};

/// A point-to-point link with fixed bandwidth and per-message latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Sustained bandwidth in bytes per second.
    pub bytes_per_second: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
}

impl Link {
    /// The GRAPE-6 LVDS link: 90 MB/s, sub-microsecond hardware latency.
    pub fn lvds() -> Self {
        Self { bytes_per_second: 90.0e6, latency: 0.5e-6 }
    }

    /// 32-bit/33 MHz PCI as on the Athlon XP hosts: 133 MB/s peak; charge a
    /// conservative sustained fraction plus driver latency.
    pub fn pci() -> Self {
        Self { bytes_per_second: 110.0e6, latency: 5.0e-6 }
    }

    /// Gigabit Ethernet (NS83820 NICs): ~125 MB/s wire rate, ~80 MB/s
    /// sustained through the Linux stack, with tens of microseconds latency.
    pub fn gigabit_ethernet() -> Self {
        Self { bytes_per_second: 80.0e6, latency: 40.0e-6 }
    }

    /// 100 Mbit Ethernet (for what-if sweeps; the paper notes GbE is
    /// "barely okay", so slower fabrics should visibly hurt).
    pub fn fast_ethernet() -> Self {
        Self { bytes_per_second: 10.0e6, latency: 60.0e-6 }
    }

    /// Time to move `bytes` across the link.
    #[inline]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency + bytes as f64 / self.bytes_per_second
    }

    /// Extra time lost to `retries` stop-and-wait retransmissions of one
    /// `packet_bytes` packet: each checksum-detected corruption pays the
    /// link latency and the packet body again. This is the timing cost of
    /// the retry rung of the fault-recovery ladder.
    pub fn retransmit_time(&self, packet_bytes: u64, retries: u64) -> f64 {
        retries as f64 * self.transfer_time(packet_bytes)
    }

    /// Effective bandwidth (bytes/s) achieved for a message of `bytes`.
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.transfer_time(bytes)
    }
}

/// Wire formats of the data that crosses the links, in bytes per particle.
///
/// Sizes follow the GRAPE-6 interface: positions in 64-bit fixed point,
/// velocities and higher derivatives in shorter words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireFormat {
    /// i-particle upload: position (3×8) + velocity (3×4) + id/padding.
    pub i_particle_bytes: u64,
    /// j-particle write-back: position (3×8) + velocity, acceleration, jerk
    /// (3×4 each) + mass (4) + time (8).
    pub j_particle_bytes: u64,
    /// Force readout: acceleration, jerk, potential at accumulator width
    /// (7×8).
    pub result_bytes: u64,
}

impl Default for WireFormat {
    fn default() -> Self {
        Self { i_particle_bytes: 40, j_particle_bytes: 72, result_bytes: 56 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lvds_rate_matches_paper() {
        let l = Link::lvds();
        assert_eq!(l.bytes_per_second, 90.0e6);
        // 90 MB of payload should take ≈1 s.
        assert!((l.transfer_time(90_000_000) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(Link::lvds().transfer_time(0), 0.0);
        assert_eq!(Link::pci().effective_bandwidth(0), 0.0);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let l = Link::gigabit_ethernet();
        let t_small = l.transfer_time(64);
        assert!(t_small > 0.9 * l.latency && t_small < 2.0 * l.latency);
        // Effective bandwidth for tiny messages is far below wire rate.
        assert!(l.effective_bandwidth(64) < l.bytes_per_second / 10.0);
    }

    #[test]
    fn bandwidth_asymptote_for_large_messages() {
        let l = Link::pci();
        let eff = l.effective_bandwidth(1 << 30);
        assert!((eff / l.bytes_per_second - 1.0).abs() < 0.01);
    }

    #[test]
    fn link_ordering_matches_hardware_hierarchy() {
        // LVDS and PCI are comparable; fast ethernet is far slower.
        assert!(Link::fast_ethernet().bytes_per_second < Link::gigabit_ethernet().bytes_per_second);
        assert!(Link::gigabit_ethernet().bytes_per_second < Link::pci().bytes_per_second);
    }

    #[test]
    fn retransmissions_charge_latency_each() {
        let l = Link::lvds();
        assert_eq!(l.retransmit_time(60, 0), 0.0);
        let one = l.retransmit_time(60, 1);
        assert_eq!(one, l.transfer_time(60));
        assert!((l.retransmit_time(60, 3) - 3.0 * one).abs() < 1e-18);
    }

    #[test]
    fn wire_format_sizes() {
        let w = WireFormat::default();
        assert!(w.i_particle_bytes >= 36);
        assert!(w.j_particle_bytes > w.i_particle_bytes);
        assert!(w.result_bytes >= 36);
    }
}
