//! A functional GRAPE-6 *cluster*: several host+node pairs whose GRAPEs
//! exchange j-particle data among themselves (paper §4.3, Figs 4–5, 7).
//!
//! The key architectural property being reproduced: **the host computers do
//! not exchange particle data at all.** Each host writes only the particles
//! *it* integrated to its own node's host port; the data-out port of that
//! node feeds the data-in ports of every other node, so all j-memories stay
//! mirrored. Here each node owns an inbound channel (its data-in port) fed
//! by the other hosts' write-backs; messages are wire-encoded j-packets.
//!
//! The cluster's forces are bit-identical to a single node holding all
//! particles, because the j-memories are mirrored and the fixed-point
//! reduction is associative — the integration test pins this down.

use crate::board::BoardGeometry;
use crate::chip::HwIParticle;
use crate::format::{FixedPointFormat, Precision};
use crate::node::Grape6Node;
use crate::predictor::JParticle;
use crate::wire;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use grape6_core::particle::ForceResult;

/// A write-back message on the inter-GRAPE network: (global index, packet).
type JMessage = (usize, Bytes);

/// One host+node pair within the cluster.
struct ClusterMember {
    node: Grape6Node,
    /// This node's data-in port.
    inbox: Receiver<JMessage>,
    /// Handles to every *other* node's data-in port.
    peers: Vec<Sender<JMessage>>,
}

/// A cluster of host+GRAPE pairs with mirrored j-memories.
pub struct Grape6Cluster {
    members: Vec<ClusterMember>,
    n_j: usize,
}

impl Grape6Cluster {
    /// Build a cluster of `hosts` nodes, each with `boards_per_node` boards.
    pub fn new(
        hosts: usize,
        boards_per_node: usize,
        board: BoardGeometry,
        format: FixedPointFormat,
        precision: Precision,
        softening: f64,
    ) -> Self {
        assert!(hosts >= 1);
        let ports: Vec<(Sender<JMessage>, Receiver<JMessage>)> =
            (0..hosts).map(|_| unbounded()).collect();
        let members = (0..hosts)
            .map(|h| {
                let mut node = Grape6Node::new(boards_per_node, board, format, precision);
                node.set_softening(softening);
                let peers = ports
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != h)
                    .map(|(_, (tx, _))| tx.clone())
                    .collect();
                ClusterMember { node, inbox: ports[h].1.clone(), peers }
            })
            .collect();
        Self { members, n_j: 0 }
    }

    /// The production cluster: 4 hosts × 4 boards (Fig 7).
    pub fn production(precision: Precision, softening: f64) -> Self {
        Self::new(4, 4, BoardGeometry::default(), FixedPointFormat::default(), precision, softening)
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.members.len()
    }

    /// Resident j-particles (mirrored on every node).
    pub fn n_j(&self) -> usize {
        self.n_j
    }

    /// Initial load: every node receives the full particle set (the startup
    /// DMA broadcast).
    pub fn load_j(&mut self, particles: &[JParticle]) -> Result<(), crate::chip::ChipError> {
        let stream = wire::encode_j_block(particles);
        for m in &mut self.members {
            m.node.load_j_stream(stream.clone())?;
        }
        self.n_j = particles.len();
        Ok(())
    }

    /// One host writes back a particle it just corrected: the packet goes to
    /// its own node's host port and into every peer's data-in port. Peers
    /// apply their inboxes at the start of their next force call (the
    /// hardware applies them as they stream in; the ordering is equivalent
    /// because slots are disjoint within a block).
    pub fn write_back(
        &mut self,
        host: usize,
        index: usize,
        particle: &JParticle,
    ) -> Result<(), crate::chip::ChipError> {
        let mut buf = bytes::BytesMut::new();
        wire::encode_j_particle(&mut buf, particle);
        let packet = buf.freeze();
        for tx in &self.members[host].peers {
            tx.send((index, packet.clone())).expect("cluster port closed");
        }
        self.members[host].node.store_j(index, particle)
    }

    /// Drain a member's data-in port into its j-memory.
    fn drain_inbox(member: &mut ClusterMember) -> Result<usize, crate::chip::ChipError> {
        let mut applied = 0;
        while let Ok((index, packet)) = member.inbox.try_recv() {
            let j = wire::decode_j_particle(&mut packet.clone());
            member.node.store_j(index, &j)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Force call on host `host`'s partition of the active block. Applies
    /// pending inbound j-updates first (the per-blockstep synchronization of
    /// §4.3), then computes against the node's full mirrored j-memory.
    pub fn compute(&mut self, host: usize, t: f64, ips: &[(HwIParticle, u32)]) -> Vec<ForceResult> {
        Self::drain_inbox(&mut self.members[host]).expect("bad j route in exchange");
        self.members[host].node.compute(t, ips)
    }

    /// Synchronize every node's inbox (the blockstep barrier).
    pub fn barrier(&mut self) -> usize {
        let mut applied = 0;
        for m in &mut self.members {
            applied += Self::drain_inbox(m).expect("bad j route in exchange");
        }
        applied
    }

    /// Total bytes each host's NIC carried for particle exchange: zero by
    /// construction — the whole point of the architecture.
    pub fn host_nic_particle_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::vec3::Vec3;

    fn small_cluster() -> Grape6Cluster {
        let board = BoardGeometry {
            chips: 2,
            chip: crate::chip::ChipGeometry { jmem_capacity: 32, ..Default::default() },
        };
        Grape6Cluster::new(4, 2, board, FixedPointFormat::default(), Precision::grape6(), 0.01)
    }

    fn j_at(x: f64, y: f64, m: f64) -> JParticle {
        JParticle::encode(
            &FixedPointFormat::default(),
            Precision::grape6(),
            Vec3::new(x, y, 0.0),
            Vec3::new(0.0, 0.1, 0.0),
            Vec3::zero(),
            Vec3::zero(),
            m,
            0.0,
        )
    }

    fn sample_set(n: usize) -> Vec<JParticle> {
        (0..n).map(|k| j_at(10.0 + k as f64, (k % 5) as f64, 1e-6 * (1 + k % 3) as f64)).collect()
    }

    #[test]
    fn all_hosts_compute_identical_forces() {
        let mut cluster = small_cluster();
        cluster.load_j(&sample_set(40)).unwrap();
        let fmt = FixedPointFormat::default();
        let ip =
            HwIParticle::encode(&fmt, Precision::grape6(), Vec3::new(5.0, 2.0, 0.0), Vec3::zero());
        let results: Vec<ForceResult> =
            (0..4).map(|h| cluster.compute(h, 0.0, &[(ip, 0)])[0]).collect();
        for r in &results[1..] {
            assert_eq!(r.acc, results[0].acc, "mirrored memories must give identical bits");
            assert_eq!(r.pot, results[0].pot);
        }
    }

    #[test]
    fn write_back_propagates_to_all_peers() {
        let mut cluster = small_cluster();
        cluster.load_j(&sample_set(8)).unwrap();
        let fmt = FixedPointFormat::default();
        let ip = HwIParticle::encode(&fmt, Precision::grape6(), Vec3::zero(), Vec3::zero());
        let before = cluster.compute(2, 0.0, &[(ip, 0)])[0];
        // Host 0 moves particle 3 far away.
        cluster.write_back(0, 3, &j_at(500.0, 0.0, 1e-6)).unwrap();
        let after = cluster.compute(2, 0.0, &[(ip, 0)])[0];
        assert_ne!(before.acc, after.acc, "peer node must see the update");
        // And host 0's own node as well.
        let own = cluster.compute(0, 0.0, &[(ip, 0)])[0];
        assert_eq!(own.acc, after.acc);
    }

    #[test]
    fn cluster_matches_single_node_bitwise() {
        let js = sample_set(30);
        let mut cluster = small_cluster();
        cluster.load_j(&js).unwrap();
        let board = BoardGeometry {
            chips: 2,
            chip: crate::chip::ChipGeometry { jmem_capacity: 32, ..Default::default() },
        };
        let mut single =
            Grape6Node::new(2, board, FixedPointFormat::default(), Precision::grape6());
        single.set_softening(0.01);
        single.load_j(&js).unwrap();
        let fmt = FixedPointFormat::default();
        for k in 0..5 {
            let ip = HwIParticle::encode(
                &fmt,
                Precision::grape6(),
                Vec3::new(k as f64, 1.0, 0.0),
                Vec3::new(0.01, 0.0, 0.0),
            );
            let a = cluster.compute(k % 4, 0.0, &[(ip, k as u32)])[0];
            let b = single.compute(0.0, &[(ip, k as u32)])[0];
            assert_eq!(a.acc, b.acc, "i-particle {k}");
            assert_eq!(a.pot, b.pot);
        }
    }

    #[test]
    fn barrier_applies_pending_updates() {
        let mut cluster = small_cluster();
        cluster.load_j(&sample_set(8)).unwrap();
        cluster.write_back(1, 0, &j_at(42.0, 0.0, 1e-6)).unwrap();
        cluster.write_back(2, 1, &j_at(43.0, 0.0, 1e-6)).unwrap();
        // 2 updates × 3 peers each = 6 pending messages.
        assert_eq!(cluster.barrier(), 6);
        assert_eq!(cluster.barrier(), 0);
    }

    #[test]
    fn host_nics_carry_no_particle_traffic() {
        // §4.3: "the host computers do not have to exchange any particle
        // data."
        let mut cluster = small_cluster();
        cluster.load_j(&sample_set(16)).unwrap();
        cluster.write_back(0, 5, &j_at(1.0, 1.0, 1e-6)).unwrap();
        cluster.barrier();
        assert_eq!(cluster.host_nic_particle_bytes(), 0);
    }
}
