//! The canonical GRAPE-6 host library interface.
//!
//! Real GRAPE-6 programs (NBODY4, Kokubo & Ida's planetesimal codes, the
//! paper's own driver) talked to the hardware through a small C API —
//! `g6_open`, `g6_set_j_particle`, `g6_set_ti`, `g6calc_firsthalf`,
//! `g6calc_lasthalf`, `g6_close` — with the *firsthalf/lasthalf* split
//! letting the host overlap its own integration work with the pipeline
//! sweep. This module reproduces that interface over the simulated machine,
//! including the split-call overlap accounting, so existing GRAPE-style
//! driver structure ports over directly.

use crate::engine::{Grape6Config, Grape6Engine};
use grape6_core::engine::ForceEngine;
use grape6_core::particle::{ForceResult, IParticle, ParticleSystem};
use grape6_core::vec3::Vec3;

/// Errors from the host API (mirrors the C library's return codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum G6Error {
    /// A calc was started while another was pending.
    CalcPending,
    /// `lasthalf` without a preceding `firsthalf`.
    NoCalcPending,
    /// j index outside the loaded address space.
    BadAddress,
    /// Board not opened.
    NotOpen,
}

impl std::fmt::Display for G6Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            G6Error::CalcPending => write!(f, "g6calc already pending"),
            G6Error::NoCalcPending => write!(f, "no g6calc pending"),
            G6Error::BadAddress => write!(f, "bad j-particle address"),
            G6Error::NotOpen => write!(f, "cluster not open"),
        }
    }
}

impl std::error::Error for G6Error {}

/// An open GRAPE-6 "cluster" handle, in the style of the C host library.
pub struct G6Handle {
    engine: Option<Grape6Engine>,
    /// Shadow of the particle data for engine reloads.
    shadow: ParticleSystem,
    /// The predict time set by `set_ti`.
    ti: f64,
    /// Pending firsthalf state: the i-particles awaiting `lasthalf`.
    pending: Option<Vec<IParticle>>,
}

/// Open the (simulated) hardware — `g6_open(clusterid)`.
pub fn g6_open(config: Grape6Config, softening: f64, capacity_hint: usize) -> G6Handle {
    let mut shadow = ParticleSystem::new(softening, 0.0);
    shadow.pos.reserve(capacity_hint);
    G6Handle { engine: Some(Grape6Engine::new(config)), shadow, ti: 0.0, pending: None }
}

impl G6Handle {
    /// `g6_set_j_particle`: write one particle into hardware address
    /// `address`. Addresses must be filled densely from 0 (as the DMA does);
    /// rewriting an existing address updates it.
    #[allow(clippy::too_many_arguments)]
    pub fn set_j_particle(
        &mut self,
        address: usize,
        mass: f64,
        pos: Vec3,
        vel: Vec3,
        acc: Vec3,
        jerk: Vec3,
        t0: f64,
    ) -> Result<(), G6Error> {
        let n = self.shadow.len();
        match address.cmp(&n) {
            std::cmp::Ordering::Less => {
                self.shadow.pos[address] = pos;
                self.shadow.vel[address] = vel;
                self.shadow.acc[address] = acc;
                self.shadow.jerk[address] = jerk;
                self.shadow.mass[address] = mass;
                self.shadow.time[address] = t0;
                // Update the live engine mirror if already loaded.
                if let Some(engine) = &mut self.engine {
                    if engine.n_j() == n {
                        engine.update_j(&self.shadow, &[address]);
                    }
                }
                Ok(())
            }
            std::cmp::Ordering::Equal => {
                self.shadow.push(pos, vel, mass);
                self.shadow.acc[address] = acc;
                self.shadow.jerk[address] = jerk;
                self.shadow.time[address] = t0;
                // Appending invalidates the load; reload lazily at firsthalf.
                Ok(())
            }
            std::cmp::Ordering::Greater => Err(G6Error::BadAddress),
        }
    }

    /// `g6_set_ti`: set the prediction time for the next force calculation.
    pub fn set_ti(&mut self, ti: f64) {
        self.ti = ti;
    }

    /// Loaded j-particle count.
    pub fn n_j(&self) -> usize {
        self.shadow.len()
    }

    /// `g6calc_firsthalf`: start the pipeline sweep for the given
    /// i-particles. Returns immediately in the real library (DMA + pipelines
    /// run while the host works); here the sweep runs eagerly but the
    /// modeled hardware time is charged identically, so the overlap
    /// accounting matches.
    pub fn calc_firsthalf(&mut self, ips: &[IParticle]) -> Result<(), G6Error> {
        if self.pending.is_some() {
            return Err(G6Error::CalcPending);
        }
        let engine = self.engine.as_mut().ok_or(G6Error::NotOpen)?;
        if engine.n_j() != self.shadow.len() {
            engine.load(&self.shadow);
        }
        self.pending = Some(ips.to_vec());
        Ok(())
    }

    /// `g6calc_lasthalf`: collect the forces started by the previous
    /// `calc_firsthalf`.
    pub fn calc_lasthalf(&mut self) -> Result<Vec<ForceResult>, G6Error> {
        let ips = self.pending.take().ok_or(G6Error::NoCalcPending)?;
        let engine = self.engine.as_mut().ok_or(G6Error::NotOpen)?;
        let mut out = vec![ForceResult::default(); ips.len()];
        engine.compute(self.ti, &ips, &mut out);
        Ok(out)
    }

    /// Convenience: firsthalf + lasthalf in one call (`g6calc`).
    pub fn calc(&mut self, ips: &[IParticle]) -> Result<Vec<ForceResult>, G6Error> {
        self.calc_firsthalf(ips)?;
        self.calc_lasthalf()
    }

    /// Modeled hardware seconds accumulated.
    pub fn hardware_seconds(&self) -> f64 {
        self.engine.as_ref().map_or(0.0, |e| e.clock().seconds())
    }

    /// `g6_close`: release the hardware; returns the performance report.
    pub fn close(mut self) -> crate::perf::PerfReport {
        let engine = self.engine.take().expect("already closed");
        engine.perf_report()
    }
}

/// The host-API handle is itself a [`ForceEngine`], so a GRAPE-style driver
/// and the modern `Simulation` driver are interchangeable — and provably
/// produce identical trajectories (see the tests).
impl ForceEngine for G6Handle {
    fn load(&mut self, sys: &ParticleSystem) {
        self.shadow = ParticleSystem::new(sys.softening, 0.0);
        for i in 0..sys.len() {
            self.set_j_particle(
                i,
                sys.mass[i],
                sys.pos[i],
                sys.vel[i],
                sys.acc[i],
                sys.jerk[i],
                sys.time[i],
            )
            .expect("dense fill cannot fail");
        }
    }

    fn update_j(&mut self, sys: &ParticleSystem, indices: &[usize]) {
        for &i in indices {
            self.set_j_particle(
                i,
                sys.mass[i],
                sys.pos[i],
                sys.vel[i],
                sys.acc[i],
                sys.jerk[i],
                sys.time[i],
            )
            .expect("update of a loaded address cannot fail");
        }
    }

    fn compute(&mut self, t: f64, ips: &[IParticle], out: &mut [ForceResult]) {
        self.set_ti(t);
        let forces = self.calc(ips).expect("no calc can be pending here");
        out.copy_from_slice(&forces);
    }

    fn interaction_count(&self) -> u64 {
        self.engine.as_ref().map_or(0, |e| e.interaction_count())
    }

    fn reset_counters(&mut self) {
        if let Some(e) = &mut self.engine {
            e.reset_counters();
        }
    }

    fn name(&self) -> &'static str {
        "g6-host-api"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle_with_ring(n: usize) -> G6Handle {
        let mut h = g6_open(Grape6Config::sc2002(), 0.008, n);
        for k in 0..n {
            let th = k as f64 * std::f64::consts::TAU / n as f64;
            let r = 20.0;
            let v = grape6_core::units::circular_speed(r, 1.0);
            h.set_j_particle(
                k,
                1e-9,
                Vec3::new(r * th.cos(), r * th.sin(), 0.0),
                Vec3::new(-v * th.sin(), v * th.cos(), 0.0),
                Vec3::zero(),
                Vec3::zero(),
                0.0,
            )
            .unwrap();
        }
        h
    }

    #[test]
    fn canonical_call_sequence_works() {
        let mut h = handle_with_ring(64);
        assert_eq!(h.n_j(), 64);
        h.set_ti(0.0);
        let ips = [IParticle {
            index: usize::MAX, // external test particle, not in j-memory
            pos: Vec3::new(25.0, 0.0, 0.0),
            vel: Vec3::zero(),
        }];
        h.calc_firsthalf(&ips).unwrap();
        let f = h.calc_lasthalf().unwrap();
        assert_eq!(f.len(), 1);
        assert!(f[0].acc.norm() > 0.0);
        let report = h.close();
        assert!(report.interactions >= 64);
    }

    #[test]
    fn firsthalf_twice_is_an_error() {
        let mut h = handle_with_ring(8);
        let ips = [IParticle { index: usize::MAX, pos: Vec3::zero(), vel: Vec3::zero() }];
        h.calc_firsthalf(&ips).unwrap();
        assert_eq!(h.calc_firsthalf(&ips), Err(G6Error::CalcPending));
        h.calc_lasthalf().unwrap();
    }

    #[test]
    fn lasthalf_without_firsthalf_is_an_error() {
        let mut h = handle_with_ring(8);
        assert!(matches!(h.calc_lasthalf(), Err(G6Error::NoCalcPending)));
    }

    #[test]
    fn sparse_address_rejected() {
        let mut h = g6_open(Grape6Config::sc2002(), 0.008, 4);
        assert_eq!(
            h.set_j_particle(3, 1e-9, Vec3::zero(), Vec3::zero(), Vec3::zero(), Vec3::zero(), 0.0),
            Err(G6Error::BadAddress)
        );
    }

    #[test]
    fn rewriting_an_address_changes_the_force() {
        let mut h = handle_with_ring(4);
        let probe = [IParticle { index: usize::MAX, pos: Vec3::zero(), vel: Vec3::zero() }];
        let before = h.calc(&probe).unwrap()[0];
        h.set_j_particle(
            0,
            1e-6, // much heavier now
            Vec3::new(20.0, 0.0, 0.0),
            Vec3::zero(),
            Vec3::zero(),
            Vec3::zero(),
            0.0,
        )
        .unwrap();
        let after = h.calc(&probe).unwrap()[0];
        assert!(after.acc.norm() > 10.0 * before.acc.norm());
    }

    #[test]
    fn host_api_drives_integrations_bit_identically_to_engine() {
        use grape6_core::integrator::{BlockHermite, HermiteConfig};

        fn disk() -> ParticleSystem {
            let mut sys = ParticleSystem::new(0.008, 1.0);
            for k in 0..48 {
                let th = k as f64 * 0.81;
                let r = 16.0 + 0.4 * k as f64;
                let v = grape6_core::units::circular_speed(r, 1.0);
                sys.push(
                    Vec3::new(r * th.cos(), r * th.sin(), 0.01 * th.sin()),
                    Vec3::new(-v * th.sin(), v * th.cos(), 0.0),
                    2e-9,
                );
            }
            sys
        }
        let config = HermiteConfig { dt_max: 8.0, ..HermiteConfig::default() };

        let mut sys_a = disk();
        let mut engine_a = Grape6Engine::sc2002();
        let mut integ_a = BlockHermite::new(config);
        integ_a.initialize(&mut sys_a, &mut engine_a);
        integ_a.evolve(&mut sys_a, &mut engine_a, 4.0);

        let mut sys_b = disk();
        let mut handle = g6_open(Grape6Config::sc2002(), 0.008, 48);
        let mut integ_b = BlockHermite::new(config);
        integ_b.initialize(&mut sys_b, &mut handle);
        integ_b.evolve(&mut sys_b, &mut handle, 4.0);

        assert_eq!(integ_a.stats().block_steps, integ_b.stats().block_steps);
        for i in 0..sys_a.len() {
            assert_eq!(sys_a.pos[i], sys_b.pos[i], "particle {i}");
            assert_eq!(sys_a.vel[i], sys_b.vel[i], "particle {i}");
        }
    }

    #[test]
    fn set_ti_controls_prediction() {
        let mut h = g6_open(Grape6Config::sc2002(), 0.008, 1);
        // One source moving along +x at v = 1 from x = 10.
        h.set_j_particle(
            0,
            1e-6,
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::zero(),
            Vec3::zero(),
            0.0,
        )
        .unwrap();
        let probe = [IParticle { index: usize::MAX, pos: Vec3::zero(), vel: Vec3::zero() }];
        h.set_ti(0.0);
        let f0 = h.calc(&probe).unwrap()[0].acc.x;
        h.set_ti(10.0); // source now at x = 20 → force ×(10/20)² = 1/4
        let f1 = h.calc(&probe).unwrap()[0].acc.x;
        assert!((f0 / f1 - 4.0).abs() < 1e-3, "{}", f0 / f1);
    }
}
