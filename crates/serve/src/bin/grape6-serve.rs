//! `grape6-serve` — run the multi-tenant job server.
//!
//! ```text
//! grape6-serve [--tcp ADDR] [--workers N] [--slice-blocks B]
//!              [--max-running J] [--block-budget S] [--max-bodies M]
//! ```
//!
//! With `--tcp ADDR` (e.g. `127.0.0.1:7346`) the server listens for
//! JSON-lines connections and also accepts requests on stdin; without it,
//! stdin/stdout is the only transport. The process exits on stdin EOF or
//! a `Shutdown` request.

use grape6_serve::service::{ServeConfig, TenantQuota};
use std::io::{BufRead, BufWriter, Write};

fn flag_value(key: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == key {
            return args.next();
        }
    }
    None
}

fn parsed_flag<T: std::str::FromStr>(key: &str, default: T) -> T {
    match flag_value(key) {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("grape6-serve: invalid value {raw:?} for {key}");
                std::process::exit(2);
            }
        },
    }
}

fn main() -> std::io::Result<()> {
    let cfg = ServeConfig {
        workers: parsed_flag("--workers", 2u64),
        slice_blocks: parsed_flag("--slice-blocks", 64u64),
        max_bodies: parsed_flag("--max-bodies", 4096u64),
        quota: TenantQuota {
            max_running: parsed_flag("--max-running", 2u64),
            block_budget: parsed_flag("--block-budget", 0u64),
        },
        preempt_always: false,
    };

    match flag_value("--tcp") {
        None => grape6_serve::serve_stdio(cfg),
        Some(addr) => {
            let server = grape6_serve::TcpServer::start(cfg, &addr)?;
            eprintln!("grape6-serve: listening on {}", server.addr());
            // stdin remains a control channel; EOF or Shutdown stops the
            // server (and with it every TCP connection's scheduler).
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            for line in stdin.lock().lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let quit = grape6_serve::server::dispatch_line(server.service(), &line, &mut out)?;
                out.flush()?;
                if quit {
                    break;
                }
            }
            server.stop();
            Ok(())
        }
    }
}
