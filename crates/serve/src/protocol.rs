//! The JSON-lines wire protocol: one request object per line in, one
//! response object per line out (except `Stream`, which emits one `Event`
//! line per state change until the job settles).
//!
//! Requests and responses are externally tagged: `{"Submit": {...}}`,
//! `"Tenants"`. Binary payloads (the result snapshot) travel hex-encoded so
//! the byte-exactness contract survives a text transport.

use crate::job::JobSpec;
use serde::{Deserialize, Serialize};

/// A client request (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit one job for `tenant`. Answered with [`Response::Submitted`]
    /// or [`Response::Error`] (validation / quota rejection).
    Submit {
        /// Tenant the job is accounted to.
        tenant: String,
        /// The job specification.
        job: JobSpec,
    },
    /// Submit the same job once per seed (an ensemble sweep). Jobs that
    /// fail validation or quota reject the whole batch before any are
    /// queued.
    SubmitEnsemble {
        /// Tenant the jobs are accounted to.
        tenant: String,
        /// Template specification; `seed` is overridden per member.
        job: JobSpec,
        /// Disk realization seeds, one job each.
        seeds: Vec<u64>,
    },
    /// Current status of a job. Answered with [`Response::Status`].
    Query {
        /// Job id from [`Response::Submitted`].
        id: u64,
    },
    /// Block until the job settles (completed/failed/cancelled), then
    /// answer with its final [`Response::Status`].
    Wait {
        /// Job id.
        id: u64,
    },
    /// Fetch the result payload of a completed job. Answered with
    /// [`Response::ResultData`] or [`Response::Error`].
    Result {
        /// Job id.
        id: u64,
    },
    /// Request cancellation. Queued jobs cancel immediately; running jobs
    /// stop at the next slice boundary. Answered with [`Response::Status`]
    /// reflecting the state after the request was applied.
    Cancel {
        /// Job id.
        id: u64,
    },
    /// Emit one [`Response::Event`] line per observed state change until
    /// the job settles. The final event carries the settled status.
    Stream {
        /// Job id.
        id: u64,
    },
    /// Per-tenant telemetry snapshot. Answered with [`Response::Tenants`].
    Tenants,
    /// Stop accepting work, finish/park running slices, exit. Answered
    /// with [`Response::Done`] before the connection closes.
    Shutdown,
}

/// Lifecycle state of a job as reported on the wire. Coalesced duplicates
/// (submitted while an identical job was in flight) report `Queued` until
/// the primary settles, then settle with `cached = true`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting for a worker (or attached to an in-flight identical job).
    Queued,
    /// A worker is advancing it (possibly between preemptions).
    Running,
    /// Finished; result available via `Result`.
    Completed,
    /// Terminated with an error (see `error`), e.g. budget exhaustion.
    Failed,
    /// Cancelled by request (or by its primary being cancelled while no
    /// checkpoint existed to promote from).
    Cancelled,
}

impl JobState {
    /// True once the state can no longer change.
    pub fn settled(self) -> bool {
        matches!(self, Self::Completed | Self::Failed | Self::Cancelled)
    }
}

/// Wire status of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Block steps this job has executed so far (0 for cache hits — the
    /// cached computation's steps are accounted to the job that ran it).
    pub blocks_done: u64,
    /// Times this job was preempted (checkpointed and requeued).
    pub preemptions: u64,
    /// True when the result was served from the exact-result cache or by
    /// coalescing onto an identical in-flight job.
    pub cached: bool,
    /// Failure message when `state == Failed`.
    pub error: String,
    /// FNV-1a 64 digest of the job's canonical configuration key.
    pub config_hash: u64,
}

/// Telemetry for one tenant, as returned by [`Request::Tenants`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantTelemetry {
    /// Tenant name.
    pub tenant: String,
    /// Jobs accepted (excludes rejected submissions).
    pub submitted: u64,
    /// Jobs completed successfully (including cached results).
    pub completed: u64,
    /// Jobs failed (budget exhaustion or runner error).
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Submissions rejected at the door (validation or quota).
    pub rejected: u64,
    /// Results served from the exact-result cache at submit time.
    pub cache_hits: u64,
    /// Duplicate submissions attached to an in-flight identical job.
    pub coalesced: u64,
    /// Preemptions suffered by this tenant's jobs.
    pub preemptions: u64,
    /// Block steps executed on behalf of this tenant (the fair-share and
    /// budget currency — modeled work, not wall time).
    pub block_steps: u64,
    /// Configured block-step budget (0 = unlimited).
    pub block_budget: u64,
    /// Configured max concurrently running/queued-eligible jobs.
    pub max_running: u64,
}

/// A server response (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Submission accepted.
    Submitted {
        /// Assigned job id.
        id: u64,
        /// Initial state (`Completed` for an immediate cache hit).
        state: JobState,
        /// True when served from cache or coalesced onto an in-flight job.
        cached: bool,
    },
    /// Ensemble submission accepted; ids are in seed order.
    SubmittedBatch {
        /// Assigned job ids, one per requested seed.
        ids: Vec<u64>,
    },
    /// Status answer for `Query` / `Wait` / `Cancel`.
    Status {
        /// The job's status.
        status: JobStatus,
    },
    /// One streamed state change (see [`Request::Stream`]).
    Event {
        /// Status at the time of the change.
        status: JobStatus,
    },
    /// Result payload of a completed job.
    ResultData {
        /// Job id.
        id: u64,
        /// Hex-encoded `G6SN` binary snapshot of the final system.
        snapshot_hex: String,
        /// Block steps of the computation that produced the result.
        block_steps: u64,
        /// Particle steps of that computation.
        particle_steps: u64,
        /// Pairwise interactions of that computation.
        interactions: u64,
        /// FNV-1a 64 digest of the canonical configuration key.
        config_hash: u64,
    },
    /// Per-tenant telemetry, sorted by tenant name.
    Tenants {
        /// One row per tenant that has ever submitted.
        tenants: Vec<TenantTelemetry>,
    },
    /// Acknowledgement carrying no data (shutdown).
    Done,
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Hex-encode bytes (lowercase, two digits per byte).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        // A nibble is always a valid base-16 digit, so the fallback arm of
        // `unwrap_or` can never fire — but it keeps the encoder panic-free.
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap_or('0'));
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap_or('0'));
    }
    out
}

/// Decode a string produced by [`hex_encode`].
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("hex string has odd length".into());
    }
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            // `chunks_exact(2)` yields exactly two bytes per chunk; the
            // slice pattern keeps the accesses bounds-check-free.
            let (h, l) = match pair {
                &[h, l] => (h, l),
                _ => return Err("hex pair of unexpected length".to_string()),
            };
            match ((h as char).to_digit(16), (l as char).to_digit(16)) {
                (Some(hi), Some(lo)) => Ok((hi * 16 + lo) as u8),
                _ => Err(format!("invalid hex pair {:?}", std::str::from_utf8(pair))),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            Request::Submit {
                tenant: "alice".into(),
                job: JobSpec {
                    n: 16,
                    seed: 3,
                    t_end: 0.5,
                    dt_max: 0.0,
                    eta: 0.0,
                    engine: String::new(),
                },
            },
            Request::SubmitEnsemble {
                tenant: "bob".into(),
                job: JobSpec {
                    n: 8,
                    seed: 0,
                    t_end: 0.25,
                    dt_max: 0.125,
                    eta: 0.01,
                    engine: "grape6".into(),
                },
                seeds: vec![1, 2, 3],
            },
            Request::Query { id: 7 },
            Request::Wait { id: 7 },
            Request::Result { id: 7 },
            Request::Cancel { id: 7 },
            Request::Stream { id: 7 },
            Request::Tenants,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = serde_json::to_string(&r).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r, "{line}");
        }
    }

    #[test]
    fn responses_round_trip_through_json() {
        let status = JobStatus {
            id: 9,
            tenant: "alice".into(),
            state: JobState::Running,
            blocks_done: 40,
            preemptions: 2,
            cached: false,
            error: String::new(),
            config_hash: 0xdeadbeefdeadbeef,
        };
        let resps = vec![
            Response::Submitted { id: 9, state: JobState::Queued, cached: false },
            Response::SubmittedBatch { ids: vec![1, 2, 3] },
            Response::Status { status: status.clone() },
            Response::Event { status },
            Response::ResultData {
                id: 9,
                snapshot_hex: "00ff10".into(),
                block_steps: 64,
                particle_steps: 300,
                interactions: 12000,
                config_hash: 42,
            },
            Response::Tenants {
                tenants: vec![TenantTelemetry {
                    tenant: "alice".into(),
                    submitted: 5,
                    completed: 4,
                    failed: 0,
                    cancelled: 1,
                    rejected: 2,
                    cache_hits: 1,
                    coalesced: 1,
                    preemptions: 3,
                    block_steps: 512,
                    block_budget: 10_000,
                    max_running: 2,
                }],
            },
            Response::Done,
            Response::Error { message: "no such job".into() },
        ];
        for r in resps {
            let line = serde_json::to_string(&r).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r, "{line}");
        }
    }

    #[test]
    fn omitted_optional_spec_fields_default() {
        let line = r#"{"Submit": {"tenant": "t", "job": {"n": 4, "seed": 1, "t_end": 0.5}}}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        match req {
            Request::Submit { job, .. } => {
                assert_eq!(job.dt_max, 0.0);
                assert_eq!(job.eta, 0.0);
                assert_eq!(job.engine, "");
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert_eq!(hex_encode(&[]), "");
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn settled_states_are_terminal() {
        assert!(!JobState::Queued.settled());
        assert!(!JobState::Running.settled());
        assert!(JobState::Completed.settled());
        assert!(JobState::Failed.settled());
        assert!(JobState::Cancelled.settled());
    }
}
