//! The multi-tenant job scheduler: a shared worker pool multiplexing many
//! concurrent simulations with fair-share time-slicing, per-tenant quotas,
//! an exact result cache, and duplicate-request coalescing.
//!
//! ## Scheduling model
//!
//! Work is sliced in *block steps* — the natural quantum of the block
//! timestep integrator and the only work currency the server uses (wall
//! time never enters a scheduling decision, preserving the workspace's
//! determinism contract). A worker claims the queued job whose tenant has
//! consumed the fewest block steps (ties to the oldest job), runs one slice
//! of `slice_blocks` steps, and then either completes the job, keeps going,
//! or — when other work is waiting — preempts it: pause is a `G6CK` v2
//! checkpoint write, resume is a bit-identical continuation, so preemption
//! is invisible in every result byte.
//!
//! ## Exact result cache and coalescing
//!
//! Jobs are keyed by [`JobSpec::canonical_key`]. A submit whose key is
//! already cached settles instantly with the cached bytes; a submit whose
//! key is currently in flight *attaches* to the running primary and settles
//! with it — so each distinct configuration is computed at most once, and
//! every duplicate is a cache hit with byte-identical output.
//!
//! ## Locking discipline
//!
//! All scheduler state sits behind one mutex, and every acquisition goes
//! through the private `JobService::locked` helper. The lock only ever
//! covers *bookkeeping*:
//! the O(N) serializations at a slice boundary — the `G6CK` checkpoint
//! encode on preemption and the result snapshot on completion — run with
//! the lock released, so protocol handlers never stall behind a worker
//! encoding a large system. The running job is owned by its worker while
//! the lock is down; the only field another thread may flip underneath is
//! the sticky `cancel_requested`, which the next boundary honors. This is
//! the discipline grape6-lint's C002 rule checks interprocedurally.
//!
//! ## Retention
//!
//! The job table, the exact result cache, and parked checkpoints are
//! retained for the lifetime of the process: job ids are stable handles
//! (queryable forever), and evicting a cache entry would silently turn a
//! guaranteed duplicate hit into a recomputation. Memory therefore grows
//! with every distinct job ever submitted — the service is operated like
//! the batch runs it replaces, sized for a bounded campaign and restarted
//! between campaigns, not as an unbounded-uptime daemon. (Per-tenant
//! `block_budget` quotas bound how much *compute* — and thus how many
//! distinct cached results — any one tenant can force.)

use crate::job::{JobResultData, JobSpec, RunnerSim};
use crate::protocol::{JobState, JobStatus, TenantTelemetry};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Per-tenant resource limits (every tenant gets the same quota).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantQuota {
    /// Max jobs of one tenant running on workers at the same instant.
    pub max_running: u64,
    /// Total block steps a tenant may consume across all its jobs;
    /// 0 = unlimited. Jobs that would exceed it fail with a budget error.
    pub block_budget: u64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self { max_running: 2, block_budget: 0 }
    }
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Worker threads in the shared pool.
    pub workers: u64,
    /// Block steps per time slice (the preemption quantum).
    pub slice_blocks: u64,
    /// Largest admissible system (planetesimals + 2 protoplanets).
    pub max_bodies: u64,
    /// Per-tenant limits.
    #[serde(default)]
    pub quota: TenantQuota,
    /// Test knob: preempt at every slice boundary even when no other job
    /// is waiting (maximizes checkpoint/resume churn).
    #[serde(default)]
    pub preempt_always: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            slice_blocks: 64,
            max_bodies: 4096,
            quota: TenantQuota::default(),
            preempt_always: false,
        }
    }
}

/// Internal job lifecycle (the wire state plus the coalesced link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Queued,
    Running,
    /// Duplicate of an in-flight job; settles when its primary does.
    Attached {
        primary: usize,
    },
    Completed,
    Failed,
    Cancelled,
}

struct Job {
    tenant_idx: usize,
    spec: JobSpec,
    key: String,
    config_hash: u64,
    state: State,
    blocks_done: u64,
    preemptions: u64,
    cached: bool,
    error: String,
    checkpoint: Option<bytes::Bytes>,
    cancel_requested: bool,
    result: Option<Arc<JobResultData>>,
    /// Job indices attached to this primary (valid while unsettled).
    attached: Vec<usize>,
}

#[derive(Default)]
struct Tenant {
    name: String,
    running: u64,
    peak_running: u64,
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    rejected: u64,
    cache_hits: u64,
    coalesced: u64,
    preemptions: u64,
    block_steps: u64,
}

#[derive(Default)]
struct Inner {
    jobs: Vec<Job>,
    tenants: Vec<Tenant>,
    /// Exact result cache, sorted by canonical key.
    cache: Vec<(String, Arc<JobResultData>)>,
    /// Canonical key -> primary job index, for every unsettled primary.
    inflight: Vec<(String, usize)>,
    shutdown: bool,
}

// Every job/tenant table access funnels through these accessors, so the
// bounds argument is made exactly once per table: ids are indices this
// module issued (`submit_locked` for jobs, `tenant_idx` for tenants) and
// both tables are append-only, so an issued index can never go stale.
impl Inner {
    fn job(&self, idx: usize) -> &Job {
        // grape6-lint: infallible(job ids are indices issued by submit_locked and the table is append-only)
        &self.jobs[idx]
    }

    fn job_mut(&mut self, idx: usize) -> &mut Job {
        // grape6-lint: infallible(job ids are indices issued by submit_locked and the table is append-only)
        &mut self.jobs[idx]
    }

    fn tenant(&self, idx: usize) -> &Tenant {
        // grape6-lint: infallible(tenant indices are issued by tenant_idx and the table is append-only)
        &self.tenants[idx]
    }

    fn tenant_mut(&mut self, idx: usize) -> &mut Tenant {
        // grape6-lint: infallible(tenant indices are issued by tenant_idx and the table is append-only)
        &mut self.tenants[idx]
    }
}

/// Outcome of an accepted submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitTicket {
    /// Assigned job id.
    pub id: u64,
    /// Initial state (`Completed` for an immediate cache hit).
    pub state: JobState,
    /// True when served from cache or coalesced onto an in-flight job.
    pub cached: bool,
}

/// The job server: all scheduler state behind one mutex, with a condvar
/// for workers (`work_cv`) and one for status waiters (`event_cv`).
pub struct JobService {
    cfg: ServeConfig,
    inner: Mutex<Inner>,
    work_cv: Condvar,
    event_cv: Condvar,
}

/// Pick the queued job the fair-share policy runs next: among jobs whose
/// tenant is under its concurrency cap, the one whose tenant has consumed
/// the fewest block steps, ties to the lowest job id. Runs under the
/// scheduler lock on every slice boundary.
// grape6-lint: hot
fn pick_next(inner: &Inner, max_running: u64) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut best_used = u64::MAX;
    let mut i = 0;
    while i < inner.jobs.len() {
        // grape6-lint: infallible(i is bounded by jobs.len() in the loop condition)
        let job = &inner.jobs[i];
        if job.state == State::Queued {
            let t = inner.tenant(job.tenant_idx);
            if t.running < max_running && t.block_steps < best_used {
                best = Some(i);
                best_used = t.block_steps;
            }
        }
        i += 1;
    }
    best
}

fn other_queued(jobs: &[Job], me: usize) -> bool {
    jobs.iter().enumerate().any(|(i, j)| i != me && j.state == State::Queued)
}

impl JobService {
    fn new(cfg: ServeConfig) -> Self {
        Self {
            cfg,
            inner: Mutex::new(Inner::default()),
            work_cv: Condvar::new(),
            event_cv: Condvar::new(),
        }
    }

    /// The configuration this service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Take the scheduler lock. Every acquisition in this module goes
    /// through here, so the poisoning story is argued exactly once.
    fn locked(&self) -> MutexGuard<'_, Inner> {
        // grape6-lint: infallible(a poisoned scheduler lock means another thread panicked mid-update; no consistent state remains to serve, so propagating the panic is the only sound response)
        self.inner.lock().expect("scheduler lock poisoned")
    }

    /// Park on `cv` until notified. `Condvar::wait` releases the scheduler
    /// lock atomically while parked and re-acquires it on wake.
    fn wait_on<'a>(&self, cv: &Condvar, guard: MutexGuard<'a, Inner>) -> MutexGuard<'a, Inner> {
        // grape6-lint: infallible(same poisoning rationale as locked — wait re-acquires the scheduler lock)
        cv.wait(guard).expect("scheduler lock poisoned")
    }

    fn tenant_idx(inner: &mut Inner, name: &str) -> usize {
        match inner.tenants.iter().position(|t| t.name == name) {
            Some(i) => i,
            None => {
                inner.tenants.push(Tenant { name: name.to_string(), ..Tenant::default() });
                inner.tenants.len() - 1
            }
        }
    }

    /// Submit one job. `Err` is a rejection (validation failure), counted
    /// in the tenant's `rejected` telemetry.
    pub fn submit(&self, tenant: &str, spec: JobSpec) -> Result<SubmitTicket, String> {
        let mut inner = self.locked();
        self.submit_locked(&mut inner, tenant, spec)
    }

    fn submit_locked(
        &self,
        inner: &mut Inner,
        tenant: &str,
        spec: JobSpec,
    ) -> Result<SubmitTicket, String> {
        if inner.shutdown {
            return Err("server is shutting down".into());
        }
        let tidx = Self::tenant_idx(inner, tenant);
        if let Err(e) = spec.validate(self.cfg.max_bodies) {
            inner.tenant_mut(tidx).rejected += 1;
            return Err(e);
        }
        // A validated spec always has a key; `?` keeps the request path
        // panic-free even if that invariant ever breaks.
        let key = spec.canonical_key()?;
        let config_hash = spec.config_hash()?;
        let id = inner.jobs.len();
        let mut job = Job {
            tenant_idx: tidx,
            spec,
            key: key.clone(),
            config_hash,
            state: State::Queued,
            blocks_done: 0,
            preemptions: 0,
            cached: false,
            error: String::new(),
            checkpoint: None,
            cancel_requested: false,
            result: None,
            attached: Vec::new(),
        };
        inner.tenant_mut(tidx).submitted += 1;

        // Exact cache: settle instantly with the cached computation.
        let hit = inner
            .cache
            .binary_search_by(|(k, _)| k.as_str().cmp(&key))
            .ok()
            .and_then(|pos| inner.cache.get(pos))
            .map(|(_, r)| r.clone());
        if let Some(result) = hit {
            job.state = State::Completed;
            job.cached = true;
            job.result = Some(result);
            inner.jobs.push(job);
            let t = inner.tenant_mut(tidx);
            t.cache_hits += 1;
            t.completed += 1;
            self.event_cv.notify_all();
            return Ok(SubmitTicket { id: id as u64, state: JobState::Completed, cached: true });
        }

        // Coalesce: an identical job is in flight — attach to it.
        if let Some(&(_, primary)) = inner.inflight.iter().find(|(k, _)| *k == key) {
            job.state = State::Attached { primary };
            job.cached = true;
            inner.jobs.push(job);
            inner.job_mut(primary).attached.push(id);
            inner.tenant_mut(tidx).coalesced += 1;
            self.event_cv.notify_all();
            return Ok(SubmitTicket { id: id as u64, state: JobState::Queued, cached: true });
        }

        inner.jobs.push(job);
        inner.inflight.push((key, id));
        self.work_cv.notify_all();
        self.event_cv.notify_all();
        Ok(SubmitTicket { id: id as u64, state: JobState::Queued, cached: false })
    }

    /// Submit `seeds.len()` jobs sharing one template spec (seed overridden
    /// per member). All-or-nothing: every member is validated first and the
    /// whole batch is enqueued under one scheduler lock, so a rejected (or
    /// shutdown-raced) batch queues nothing.
    pub fn submit_ensemble(
        &self,
        tenant: &str,
        template: &JobSpec,
        seeds: &[u64],
    ) -> Result<Vec<u64>, String> {
        let specs: Vec<JobSpec> =
            seeds.iter().map(|&seed| JobSpec { seed, ..template.clone() }).collect();
        for spec in &specs {
            spec.validate(self.cfg.max_bodies)?;
        }
        let mut inner = self.locked();
        if inner.shutdown {
            return Err("server is shutting down".into());
        }
        // Pre-validated members under a held lock cannot be rejected, so
        // this loop is infallible and the batch queues atomically.
        let mut ids = Vec::with_capacity(specs.len());
        for spec in specs {
            ids.push(self.submit_locked(&mut inner, tenant, spec)?.id);
        }
        Ok(ids)
    }

    fn status_locked(&self, inner: &Inner, id: u64) -> Result<JobStatus, String> {
        let job = inner.jobs.get(id as usize).ok_or_else(|| format!("no such job {id}"))?;
        let state = match job.state {
            State::Queued | State::Attached { .. } => JobState::Queued,
            State::Running => JobState::Running,
            State::Completed => JobState::Completed,
            State::Failed => JobState::Failed,
            State::Cancelled => JobState::Cancelled,
        };
        Ok(JobStatus {
            id,
            tenant: inner.tenant(job.tenant_idx).name.clone(),
            state,
            blocks_done: job.blocks_done,
            preemptions: job.preemptions,
            cached: job.cached,
            error: job.error.clone(),
            config_hash: job.config_hash,
        })
    }

    /// Current status of a job.
    pub fn query(&self, id: u64) -> Result<JobStatus, String> {
        let inner = self.locked();
        self.status_locked(&inner, id)
    }

    /// Block until the job settles; returns its final status. Errs if the
    /// server shuts down first (parked jobs never settle).
    pub fn wait(&self, id: u64) -> Result<JobStatus, String> {
        let mut inner = self.locked();
        loop {
            let st = self.status_locked(&inner, id)?;
            if st.state.settled() {
                return Ok(st);
            }
            if inner.shutdown {
                return Err(format!("server shut down before job {id} settled"));
            }
            inner = self.wait_on(&self.event_cv, inner);
        }
    }

    /// Block until the job's status differs from `prev` (or immediately
    /// when `prev` is `None`), returning the new status. Callers must stop
    /// once a settled status has been returned — a settled job never
    /// changes again.
    pub fn next_change(&self, id: u64, prev: Option<&JobStatus>) -> Result<JobStatus, String> {
        let mut inner = self.locked();
        loop {
            let st = self.status_locked(&inner, id)?;
            if prev != Some(&st) {
                return Ok(st);
            }
            if inner.shutdown {
                return Err(format!("server shut down while streaming job {id}"));
            }
            inner = self.wait_on(&self.event_cv, inner);
        }
    }

    /// Result payload of a completed job (cached or computed).
    pub fn result(&self, id: u64) -> Result<(Arc<JobResultData>, u64), String> {
        let inner = self.locked();
        let job = inner.jobs.get(id as usize).ok_or_else(|| format!("no such job {id}"))?;
        match (&job.state, &job.result) {
            (State::Completed, Some(r)) => Ok((r.clone(), job.config_hash)),
            (State::Failed, _) => Err(format!("job {id} failed: {}", job.error)),
            (State::Cancelled, _) => Err(format!("job {id} was cancelled")),
            _ => Err(format!("job {id} has not completed yet")),
        }
    }

    /// Request cancellation; returns the status after the request applied.
    /// Queued/attached jobs cancel immediately, running jobs at the next
    /// slice boundary, settled jobs are untouched.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, String> {
        let mut inner = self.locked();
        let idx = id as usize;
        if idx >= inner.jobs.len() {
            return Err(format!("no such job {id}"));
        }
        match inner.job(idx).state {
            State::Queued => {
                let ckpt = inner.job_mut(idx).checkpoint.take();
                inner.job_mut(idx).state = State::Cancelled;
                let tidx = inner.job(idx).tenant_idx;
                inner.tenant_mut(tidx).cancelled += 1;
                self.detach_primary(&mut inner, idx, ckpt);
                self.work_cv.notify_all();
                self.event_cv.notify_all();
            }
            State::Attached { primary } => {
                inner.job_mut(primary).attached.retain(|&a| a != idx);
                let job = inner.job_mut(idx);
                job.state = State::Cancelled;
                job.cached = false;
                let tidx = job.tenant_idx;
                inner.tenant_mut(tidx).cancelled += 1;
                self.event_cv.notify_all();
            }
            State::Running => inner.job_mut(idx).cancel_requested = true,
            State::Completed | State::Failed | State::Cancelled => {}
        }
        self.status_locked(&inner, id)
    }

    /// Per-tenant telemetry, sorted by tenant name.
    pub fn tenants(&self) -> Vec<TenantTelemetry> {
        let inner = self.locked();
        let mut rows: Vec<TenantTelemetry> = inner
            .tenants
            .iter()
            .map(|t| TenantTelemetry {
                tenant: t.name.clone(),
                submitted: t.submitted,
                completed: t.completed,
                failed: t.failed,
                cancelled: t.cancelled,
                rejected: t.rejected,
                cache_hits: t.cache_hits,
                coalesced: t.coalesced,
                preemptions: t.preemptions,
                block_steps: t.block_steps,
                block_budget: self.cfg.quota.block_budget,
                max_running: self.cfg.quota.max_running,
            })
            .collect();
        rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        rows
    }

    /// Highest number of this tenant's jobs ever running at the same
    /// instant (test observability for the concurrency quota).
    pub fn peak_running(&self, tenant: &str) -> u64 {
        let inner = self.locked();
        inner.tenants.iter().find(|t| t.name == tenant).map_or(0, |t| t.peak_running)
    }

    /// True once [`Self::shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.locked().shutdown
    }

    /// Stop accepting submissions and wake everything up. Running slices
    /// finish, are checkpointed, and park in the queue.
    pub fn shutdown(&self) {
        let mut inner = self.locked();
        inner.shutdown = true;
        self.work_cv.notify_all();
        self.event_cv.notify_all();
    }

    /// When a primary leaves the queue without producing a result (cancel
    /// or failure), promote its first attached duplicate to primary —
    /// inheriting the checkpoint, so work done so far is not lost — or
    /// clear the in-flight entry when no duplicate is waiting.
    fn detach_primary(&self, inner: &mut Inner, idx: usize, ckpt: Option<bytes::Bytes>) {
        // Settled states are terminal: only jobs still attached to *this*
        // primary are eligible for promotion or re-linking.
        let attached: Vec<usize> = std::mem::take(&mut inner.job_mut(idx).attached)
            .into_iter()
            .filter(|&a| inner.job(a).state == (State::Attached { primary: idx }))
            .collect();
        match attached.split_first() {
            None => inner.inflight.retain(|(_, p)| *p != idx),
            Some((&heir, rest)) => {
                let h = inner.job_mut(heir);
                h.state = State::Queued;
                h.cached = false;
                h.checkpoint = ckpt;
                h.attached = rest.to_vec();
                // Re-point the surviving duplicates at the heir, so a later
                // cancel retains on the heir's attached list and the heir's
                // own settlement sees a consistent chain.
                for &dup in rest {
                    inner.job_mut(dup).state = State::Attached { primary: heir };
                }
                for entry in inner.inflight.iter_mut() {
                    if entry.1 == idx {
                        entry.1 = heir;
                    }
                }
            }
        }
    }

    fn complete_locked(&self, inner: &mut Inner, idx: usize, result: Arc<JobResultData>) {
        let job = inner.job_mut(idx);
        job.state = State::Completed;
        job.result = Some(result.clone());
        let tidx = job.tenant_idx;
        let key = job.key.clone();
        inner.tenant_mut(tidx).completed += 1;
        if let Err(pos) = inner.cache.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            inner.cache.insert(pos, (key, result.clone()));
        }
        inner.inflight.retain(|(_, p)| *p != idx);
        for a in std::mem::take(&mut inner.job_mut(idx).attached) {
            // Settled states are terminal: never overwrite a duplicate that
            // already left the attachment (e.g. was cancelled).
            if inner.job(a).state != (State::Attached { primary: idx }) {
                continue;
            }
            let dup = inner.job_mut(a);
            dup.state = State::Completed;
            dup.result = Some(result.clone());
            let at = dup.tenant_idx;
            inner.tenant_mut(at).completed += 1;
        }
        self.event_cv.notify_all();
    }

    fn fail_locked(&self, inner: &mut Inner, idx: usize, msg: &str, ckpt: Option<bytes::Bytes>) {
        let job = inner.job_mut(idx);
        job.state = State::Failed;
        job.error = msg.to_string();
        let tidx = job.tenant_idx;
        inner.tenant_mut(tidx).failed += 1;
        self.detach_primary(inner, idx, ckpt);
        self.work_cv.notify_all();
        self.event_cv.notify_all();
    }

    fn worker_loop(&self) {
        let mut inner = self.locked();
        'claim: loop {
            // Claim the fair-share pick, or sleep until there is one.
            let idx = loop {
                if inner.shutdown {
                    return;
                }
                match pick_next(&inner, self.cfg.quota.max_running) {
                    Some(i) => break i,
                    None => inner = self.wait_on(&self.work_cv, inner),
                }
            };
            let tidx = inner.job(idx).tenant_idx;
            let budget = self.cfg.quota.block_budget;
            if budget > 0 && inner.tenant(tidx).block_steps >= budget {
                self.fail_locked(&mut inner, idx, "tenant block-step budget exhausted", None);
                continue 'claim;
            }
            inner.job_mut(idx).state = State::Running;
            let t = inner.tenant_mut(tidx);
            t.running += 1;
            t.peak_running = t.peak_running.max(t.running);
            self.event_cv.notify_all();
            let spec = inner.job(idx).spec.clone();
            let ckpt = inner.job_mut(idx).checkpoint.take();
            drop(inner);

            let built = match ckpt {
                Some(c) => RunnerSim::resume(&spec, c),
                None => RunnerSim::fresh(&spec),
            };
            let mut sim = match built {
                Ok(s) => s,
                Err(e) => {
                    inner = self.locked();
                    inner.tenant_mut(tidx).running -= 1;
                    self.fail_locked(&mut inner, idx, &format!("runner error: {e}"), None);
                    continue 'claim;
                }
            };

            // Slice loop: run a quantum, decide under the lock, then apply.
            // The O(N) serializations at a boundary — checkpoint encode,
            // result snapshot — run with the lock *released* (see the
            // module's locking-discipline notes): the job is `Running` and
            // owned by this worker, so the decision cannot be invalidated
            // while the lock is down; a cancel request landing in that
            // window is sticky and applies at the next boundary, exactly as
            // if it had arrived one instruction later.
            loop {
                let rep = sim.run_slice(spec.t_end, self.cfg.slice_blocks);
                inner = self.locked();
                inner.job_mut(idx).blocks_done += rep.blocks;
                inner.tenant_mut(tidx).block_steps += rep.blocks;
                if inner.job(idx).cancel_requested {
                    drop(inner);
                    let ckpt = sim.checkpoint();
                    inner = self.locked();
                    inner.job_mut(idx).state = State::Cancelled;
                    let t = inner.tenant_mut(tidx);
                    t.running -= 1;
                    t.cancelled += 1;
                    self.detach_primary(&mut inner, idx, Some(ckpt));
                    self.work_cv.notify_all();
                    self.event_cv.notify_all();
                    continue 'claim;
                }
                if rep.done {
                    drop(inner);
                    let result = Arc::new(sim.result());
                    inner = self.locked();
                    inner.tenant_mut(tidx).running -= 1;
                    self.complete_locked(&mut inner, idx, result);
                    self.work_cv.notify_all();
                    continue 'claim;
                }
                if budget > 0 && inner.tenant(tidx).block_steps >= budget {
                    drop(inner);
                    let ckpt = sim.checkpoint();
                    inner = self.locked();
                    inner.tenant_mut(tidx).running -= 1;
                    self.fail_locked(
                        &mut inner,
                        idx,
                        "tenant block-step budget exhausted",
                        Some(ckpt),
                    );
                    continue 'claim;
                }
                let yield_now =
                    self.cfg.preempt_always || inner.shutdown || other_queued(&inner.jobs, idx);
                if yield_now {
                    drop(inner);
                    let ckpt = sim.checkpoint();
                    inner = self.locked();
                    let job = inner.job_mut(idx);
                    job.checkpoint = Some(ckpt);
                    job.state = State::Queued;
                    job.preemptions += 1;
                    let t = inner.tenant_mut(tidx);
                    t.preemptions += 1;
                    t.running -= 1;
                    self.work_cv.notify_all();
                    self.event_cv.notify_all();
                    continue 'claim;
                }
                drop(inner);
            }
        }
    }
}

/// A started service: the shared [`JobService`] plus its worker threads.
pub struct ServiceHandle {
    service: Arc<JobService>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceHandle {
    /// Start the scheduler with `cfg.workers` worker threads.
    pub fn start(cfg: ServeConfig) -> Self {
        let service = Arc::new(JobService::new(cfg));
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let svc = service.clone();
                std::thread::spawn(move || svc.worker_loop())
            })
            .collect();
        Self { service, workers }
    }

    /// The shared service.
    pub fn service(&self) -> &Arc<JobService> {
        &self.service
    }

    /// Signal shutdown and join every worker.
    pub fn stop(self) {
        self.service.shutdown();
        for w in self.workers {
            let _ = w.join();
        }
    }
}
