//! Transports: a TCP listener and a stdio loop, both speaking the same
//! JSON-lines protocol through one shared dispatch function.
//!
//! Each connection is serviced by one thread and handles one request at a
//! time in order; a `Stream` request occupies its connection until the
//! streamed job settles. Clients that want concurrent requests open
//! multiple connections — the scheduler behind them is shared.

use crate::protocol::{hex_encode, JobStatus, Request, Response};
use crate::service::{JobService, ServeConfig, ServiceHandle};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

fn write_resp<W: Write>(out: &mut W, resp: &Response) -> io::Result<()> {
    let line = serde_json::to_string(resp)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(out, "{line}")
}

fn status_resp(r: Result<JobStatus, String>) -> Response {
    match r {
        Ok(status) => Response::Status { status },
        Err(message) => Response::Error { message },
    }
}

/// Parse one request line, execute it against `svc`, and write the
/// response line(s) to `out`. Returns `true` when the connection should
/// close (a `Shutdown` request).
pub fn dispatch_line<W: Write>(svc: &JobService, line: &str, out: &mut W) -> io::Result<bool> {
    let req: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            write_resp(out, &Response::Error { message: format!("bad request: {e}") })?;
            return Ok(false);
        }
    };
    match req {
        Request::Submit { tenant, job } => {
            let resp = match svc.submit(&tenant, job) {
                Ok(t) => Response::Submitted { id: t.id, state: t.state, cached: t.cached },
                Err(message) => Response::Error { message },
            };
            write_resp(out, &resp)?;
        }
        Request::SubmitEnsemble { tenant, job, seeds } => {
            let resp = match svc.submit_ensemble(&tenant, &job, &seeds) {
                Ok(ids) => Response::SubmittedBatch { ids },
                Err(message) => Response::Error { message },
            };
            write_resp(out, &resp)?;
        }
        Request::Query { id } => write_resp(out, &status_resp(svc.query(id)))?,
        Request::Wait { id } => write_resp(out, &status_resp(svc.wait(id)))?,
        Request::Cancel { id } => write_resp(out, &status_resp(svc.cancel(id)))?,
        Request::Result { id } => {
            let resp = match svc.result(id) {
                Ok((data, config_hash)) => Response::ResultData {
                    id,
                    snapshot_hex: hex_encode(&data.snapshot),
                    block_steps: data.stats.block_steps,
                    particle_steps: data.stats.particle_steps,
                    interactions: data.stats.interactions,
                    config_hash,
                },
                Err(message) => Response::Error { message },
            };
            write_resp(out, &resp)?;
        }
        Request::Stream { id } => {
            let mut prev: Option<JobStatus> = None;
            loop {
                match svc.next_change(id, prev.as_ref()) {
                    Ok(st) => {
                        let settled = st.state.settled();
                        write_resp(out, &Response::Event { status: st.clone() })?;
                        out.flush()?;
                        if settled {
                            break;
                        }
                        prev = Some(st);
                    }
                    Err(message) => {
                        write_resp(out, &Response::Error { message })?;
                        break;
                    }
                }
            }
        }
        Request::Tenants => write_resp(out, &Response::Tenants { tenants: svc.tenants() })?,
        Request::Shutdown => {
            svc.shutdown();
            write_resp(out, &Response::Done)?;
            return Ok(true);
        }
    }
    Ok(false)
}

fn handle_conn(svc: Arc<JobService>, stream: TcpStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let quit = dispatch_line(&svc, &line, &mut writer)?;
        writer.flush()?;
        if quit {
            break;
        }
    }
    Ok(())
}

/// A running TCP server: scheduler, listener thread, connection threads.
pub struct TcpServer {
    addr: SocketAddr,
    handle: ServiceHandle,
    accept: JoinHandle<()>,
}

impl TcpServer {
    /// Start the scheduler and listen on `bind_addr` (use port 0 for an
    /// ephemeral port; the bound address is available via [`Self::addr`]).
    pub fn start(cfg: ServeConfig, bind_addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let handle = ServiceHandle::start(cfg);
        let service = handle.service().clone();
        let accept = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                if service.is_shutdown() {
                    break;
                }
                let svc = service.clone();
                conns.push(std::thread::spawn(move || {
                    let _ = handle_conn(svc, stream);
                }));
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Ok(Self { addr, handle, accept })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared scheduler, for in-process submission alongside TCP.
    pub fn service(&self) -> &Arc<JobService> {
        self.handle.service()
    }

    /// Shut the scheduler down, unblock the accept loop, and join every
    /// thread. Open client connections end when the clients close them.
    pub fn stop(self) {
        self.handle.service().shutdown();
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        self.handle.stop();
    }
}

/// Serve the JSON-lines protocol over stdin/stdout until EOF or a
/// `Shutdown` request.
pub fn serve_stdio(cfg: ServeConfig) -> io::Result<()> {
    let handle = ServiceHandle::start(cfg);
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let quit = dispatch_line(handle.service(), &line, &mut out)?;
        out.flush()?;
        if quit {
            break;
        }
    }
    handle.stop();
    Ok(())
}
