//! Job specifications, the canonical cache key, and the slice runner that
//! executes a job's simulation between preemption points.
//!
//! ## Cache exactness
//!
//! A job's result is a pure function of its *effective* specification: the
//! disk realization seed and the integrator/engine configuration, with every
//! defaulted field resolved. Engines are bit-deterministic (any thread
//! count, any lane width, any scheduler), and checkpoint/resume is
//! bit-identical, so two jobs with the same effective specification produce
//! byte-identical result snapshots no matter how often either was preempted.
//! That is what lets the server cache results *exactly*: the cache key is
//! the canonical encoding of the effective specification itself (not a
//! hash), so distinct configurations can never collide, and a cache hit
//! returns the same bytes a fresh run would produce.

use grape6_core::force::DirectEngine;
use grape6_core::integrator::{HermiteConfig, RunStats};
use grape6_disk::DiskBuilder;
use grape6_hw::{Grape6Config, Grape6Engine};
use grape6_sim::{decode_checkpoint, encode_checkpoint, Simulation};
use serde::{Deserialize, Serialize};

/// `dt_max` used when a submission leaves the field at its 0 default.
pub const DEFAULT_DT_MAX: f64 = 0.25;

/// One job: a seeded scaled-down paper disk integrated to `t_end`.
///
/// Fields left at their `Default` value (0 / empty string) are resolved to
/// the documented effective defaults; the cache key is computed over the
/// *resolved* values, so an explicit `"dt_max": 0.25` and an omitted
/// `dt_max` are the same configuration (and the same cached result).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Planetesimal count (two protoplanets ride on top, as everywhere in
    /// this workspace).
    pub n: u64,
    /// Disk realization seed — the scenario seed of the cache key.
    pub seed: u64,
    /// Integration span in simulation time units.
    pub t_end: f64,
    /// Largest block timestep; 0 means [`DEFAULT_DT_MAX`].
    #[serde(default)]
    pub dt_max: f64,
    /// Aarseth accuracy parameter; 0 means the [`HermiteConfig`] default.
    #[serde(default)]
    pub eta: f64,
    /// Force engine: `"direct"` (default) or `"grape6"` (single-host
    /// GRAPE-6 functional + timing simulator).
    #[serde(default)]
    pub engine: String,
}

/// Which engine a resolved spec runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSel {
    /// CPU direct summation.
    Direct,
    /// Single-host GRAPE-6 simulator.
    Grape6,
}

impl JobSpec {
    /// Resolved `dt_max` (the effective value the run and cache key use).
    pub fn effective_dt_max(&self) -> f64 {
        if self.dt_max == 0.0 {
            DEFAULT_DT_MAX
        } else {
            self.dt_max
        }
    }

    /// Resolved `eta`.
    pub fn effective_eta(&self) -> f64 {
        if self.eta == 0.0 {
            HermiteConfig::default().eta
        } else {
            self.eta
        }
    }

    /// Resolved engine selector.
    pub fn engine_sel(&self) -> Result<EngineSel, String> {
        match self.engine.as_str() {
            "" | "direct" => Ok(EngineSel::Direct),
            "grape6" => Ok(EngineSel::Grape6),
            other => Err(format!("unknown engine '{other}' (expected 'direct' or 'grape6')")),
        }
    }

    /// Resolved engine name (as the cache key spells it).
    pub fn effective_engine(&self) -> Result<&'static str, String> {
        Ok(match self.engine_sel()? {
            EngineSel::Direct => "direct",
            EngineSel::Grape6 => "grape6",
        })
    }

    /// The integrator configuration this spec resolves to.
    pub fn hermite_config(&self) -> HermiteConfig {
        HermiteConfig {
            eta: self.effective_eta(),
            dt_max: self.effective_dt_max(),
            ..HermiteConfig::default()
        }
    }

    /// Validate a submission against server limits. Rejection here is a
    /// submit-time error (counted in the tenant's `rejected` telemetry);
    /// anything that passes can be scheduled.
    pub fn validate(&self, max_bodies: u64) -> Result<(), String> {
        if self.n == 0 {
            return Err("n must be at least 1".into());
        }
        if self.n + 2 > max_bodies {
            return Err(format!("n = {} exceeds the server's {max_bodies}-body limit", self.n));
        }
        if !self.t_end.is_finite() || self.t_end < 0.0 {
            return Err(format!("t_end = {} must be finite and non-negative", self.t_end));
        }
        self.hermite_config().validate()?;
        self.engine_sel()?;
        Ok(())
    }

    /// Canonical cache key: an injective encoding of the *effective*
    /// specification. Every field appears at a fixed position with a fixed
    /// separator, floats are spelled as their exact bit patterns, and the
    /// engine name (the only free-form field) comes last — so two specs
    /// that differ in any effective field encode to different keys, and two
    /// specs with the same effective fields encode to the same key. The
    /// key IS the identity; [`Self::config_hash`] is only a display digest.
    pub fn canonical_key(&self) -> Result<String, String> {
        Ok(format!(
            "n={};seed={};t_end={:016x};dt_max={:016x};eta={:016x};engine={}",
            self.n,
            self.seed,
            self.t_end.to_bits(),
            self.effective_dt_max().to_bits(),
            self.effective_eta().to_bits(),
            self.effective_engine()?,
        ))
    }

    /// FNV-1a 64 digest of [`Self::canonical_key`], for logs and telemetry
    /// (the cache itself matches full keys, never digests).
    pub fn config_hash(&self) -> Result<u64, String> {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.canonical_key()?.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Ok(h)
    }
}

/// Counters and final state of a finished job, shared between the job
/// table, the result cache, and every coalesced duplicate.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResultData {
    /// `G6SN` binary snapshot of the final particle system — the bytes the
    /// cache-exactness contract is stated over.
    pub snapshot: bytes::Bytes,
    /// Run statistics of the (single) computation that produced it.
    pub stats: RunStats,
}

/// What one time slice did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceReport {
    /// Block steps executed in this slice.
    pub blocks: u64,
    /// True when the job reached `t_end` (no event remains at or before it).
    pub done: bool,
}

/// A live simulation for one job, dispatched over the engine kinds the
/// server supports. Pause (checkpoint) and resume go through the `G6CK` v2
/// container, so a preempted job continues bit-identically.
pub enum RunnerSim {
    /// CPU direct-summation job.
    Direct(Box<Simulation<DirectEngine>>),
    /// Single-host GRAPE-6 job.
    Grape6(Box<Simulation<Grape6Engine>>),
}

impl RunnerSim {
    /// Start a job from scratch: build the seeded disk and initialize.
    pub fn fresh(spec: &JobSpec) -> Result<Self, String> {
        let sys = DiskBuilder::paper(spec.n as usize).with_seed(spec.seed).build();
        let cfg = spec.hermite_config();
        Ok(match spec.engine_sel()? {
            EngineSel::Direct => {
                Self::Direct(Box::new(Simulation::new(sys, cfg, DirectEngine::new())))
            }
            EngineSel::Grape6 => Self::Grape6(Box::new(Simulation::new(
                sys,
                cfg,
                Grape6Engine::new(Grape6Config::single_host()),
            ))),
        })
    }

    /// Resume a preempted job from its `G6CK` checkpoint bytes.
    pub fn resume(spec: &JobSpec, ckpt: bytes::Bytes) -> Result<Self, String> {
        Ok(match spec.engine_sel()? {
            EngineSel::Direct => Self::Direct(Box::new(
                decode_checkpoint(ckpt, DirectEngine::new()).map_err(|e| e.to_string())?,
            )),
            EngineSel::Grape6 => Self::Grape6(Box::new(
                decode_checkpoint(ckpt, Grape6Engine::new(Grape6Config::single_host()))
                    .map_err(|e| e.to_string())?,
            )),
        })
    }

    /// Pause: serialize the full `G6CK` v2 checkpoint container.
    pub fn checkpoint(&self) -> bytes::Bytes {
        match self {
            Self::Direct(sim) => encode_checkpoint(sim),
            Self::Grape6(sim) => encode_checkpoint(sim),
        }
    }

    /// Run up to `max_blocks` block steps toward `t_end`.
    pub fn run_slice(&mut self, t_end: f64, max_blocks: u64) -> SliceReport {
        fn drive<E: grape6_core::engine::ForceEngine>(
            sim: &mut Simulation<E>,
            t_end: f64,
            max_blocks: u64,
        ) -> SliceReport {
            let mut blocks = 0;
            while blocks < max_blocks {
                if !sim.integrator.next_time().is_some_and(|t| t <= t_end) {
                    return SliceReport { blocks, done: true };
                }
                sim.step();
                blocks += 1;
            }
            let done = !sim.integrator.next_time().is_some_and(|t| t <= t_end);
            SliceReport { blocks, done }
        }
        match self {
            Self::Direct(sim) => drive(sim, t_end, max_blocks),
            Self::Grape6(sim) => drive(sim, t_end, max_blocks),
        }
    }

    /// Final result: the binary snapshot bytes plus run statistics.
    pub fn result(&self) -> JobResultData {
        let (snapshot, stats) = match self {
            Self::Direct(sim) => (grape6_sim::io::encode_binary_snapshot(&sim.sys), sim.stats()),
            Self::Grape6(sim) => (grape6_sim::io::encode_binary_snapshot(&sim.sys), sim.stats()),
        };
        JobResultData { snapshot, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec { n: 16, seed: 7, t_end: 0.5, dt_max: 0.0, eta: 0.0, engine: String::new() }
    }

    #[test]
    fn defaults_resolve_and_key_is_effective() {
        let a = spec();
        let mut b = spec();
        b.dt_max = DEFAULT_DT_MAX;
        b.engine = "direct".into();
        // Same effective configuration -> same key and digest.
        assert_eq!(a.canonical_key().unwrap(), b.canonical_key().unwrap());
        assert_eq!(a.config_hash().unwrap(), b.config_hash().unwrap());
    }

    #[test]
    fn every_effective_field_feeds_the_key() {
        let base = spec().canonical_key().unwrap();
        for (label, tweaked) in [
            ("n", JobSpec { n: 17, ..spec() }),
            ("seed", JobSpec { seed: 8, ..spec() }),
            ("t_end", JobSpec { t_end: 0.75, ..spec() }),
            ("dt_max", JobSpec { dt_max: 0.125, ..spec() }),
            ("eta", JobSpec { eta: 0.005, ..spec() }),
            ("engine", JobSpec { engine: "grape6".into(), ..spec() }),
        ] {
            assert_ne!(tweaked.canonical_key().unwrap(), base, "field {label} must feed the key");
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(spec().validate(4096).is_ok());
        assert!(JobSpec { n: 0, ..spec() }.validate(4096).is_err());
        assert!(JobSpec { n: 9999, ..spec() }.validate(4096).is_err());
        assert!(JobSpec { t_end: f64::NAN, ..spec() }.validate(4096).is_err());
        assert!(JobSpec { t_end: -1.0, ..spec() }.validate(4096).is_err());
        assert!(JobSpec { engine: "warp".into(), ..spec() }.validate(4096).is_err());
        assert!(JobSpec { dt_max: -0.5, ..spec() }.validate(4096).is_err());
    }

    #[test]
    fn slice_runner_finishes_and_matches_one_shot() {
        let s = spec();
        let mut sliced = RunnerSim::fresh(&s).unwrap();
        let mut total = 0;
        loop {
            let rep = sliced.run_slice(s.t_end, 5);
            total += rep.blocks;
            if rep.done {
                break;
            }
        }
        let mut oneshot = RunnerSim::fresh(&s).unwrap();
        let rep = oneshot.run_slice(s.t_end, u64::MAX);
        assert_eq!(total, rep.blocks);
        assert!(rep.done);
        assert_eq!(sliced.result(), oneshot.result());
    }

    #[test]
    fn checkpoint_pause_resume_is_bit_identical() {
        let s = spec();
        let mut reference = RunnerSim::fresh(&s).unwrap();
        reference.run_slice(s.t_end, u64::MAX);

        let mut interrupted = RunnerSim::fresh(&s).unwrap();
        interrupted.run_slice(s.t_end, 7);
        let ckpt = interrupted.checkpoint();
        drop(interrupted);
        let mut resumed = RunnerSim::resume(&s, ckpt).unwrap();
        resumed.run_slice(s.t_end, u64::MAX);

        assert_eq!(reference.result(), resumed.result());
    }

    #[test]
    fn grape6_jobs_run_too() {
        let s = JobSpec { engine: "grape6".into(), n: 8, t_end: 0.25, ..spec() };
        let mut sim = RunnerSim::fresh(&s).unwrap();
        let rep = sim.run_slice(s.t_end, u64::MAX);
        assert!(rep.done && rep.blocks > 0);
        assert!(sim.result().stats.interactions > 0);
    }
}
