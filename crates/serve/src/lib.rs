//! `grape6-serve` — a long-running multi-tenant simulation job service.
//!
//! The production analogue of the paper's single 29.5 Tflops run is many
//! independent *tenants* multiplexed over one shared worker pool and the
//! same modeled GRAPE-6 hardware (the GRAPE-6A cluster pattern). This
//! crate turns the batch CLI architecture into that service:
//!
//! * **Protocol** ([`protocol`]): JSON-lines submit/query/cancel/stream
//!   requests over stdin/stdout or TCP.
//! * **Jobs** ([`job`]): seeded paper-disk simulations with a canonical,
//!   injective configuration key.
//! * **Scheduler** ([`service`]): fair-share time-slicing via
//!   checkpoint-backed preemption (pause = `G6CK` v2 write, resume =
//!   bit-identical continuation), per-tenant quotas, an exact result
//!   cache, and duplicate-submit coalescing.
//! * **Transports** ([`server`]): the TCP listener and the stdio loop.
//!
//! Determinism is what makes the service exact: a job's result bytes
//! depend only on its effective specification — never on worker count,
//! preemption pattern, or tenant mix — so a cache hit is byte-identical
//! to a fresh computation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Mirrors grape6-lint's P001 panic-path rule at the clippy layer: request
// paths must surface failures as protocol errors, never `unwrap()`. The
// few justified panics (scheduler-lock poisoning) use `expect` with a
// `grape6-lint: infallible(...)` waiver next to them.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod job;
pub mod protocol;
pub mod server;
pub mod service;

pub use job::{JobResultData, JobSpec};
pub use protocol::{JobState, JobStatus, Request, Response, TenantTelemetry};
pub use server::{serve_stdio, TcpServer};
pub use service::{JobService, ServeConfig, ServiceHandle, SubmitTicket, TenantQuota};
