//! Server-level correctness tests: preemption exactness, cache-key
//! injectivity, duplicate coalescing, quotas, cancellation, and the TCP
//! JSON-lines protocol end to end.

use grape6_serve::job::{JobSpec, RunnerSim};
use grape6_serve::protocol::{hex_decode, JobState, Request, Response};
use grape6_serve::service::{ServeConfig, ServiceHandle, TenantQuota};
use grape6_serve::TcpServer;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, BufWriter, Write};

fn spec(n: u64, seed: u64, t_end: f64) -> JobSpec {
    JobSpec { n, seed, t_end, dt_max: 0.0, eta: 0.0, engine: String::new() }
}

fn cfg(workers: u64) -> ServeConfig {
    ServeConfig {
        workers,
        slice_blocks: 8,
        max_bodies: 4096,
        quota: TenantQuota { max_running: 2, block_budget: 0 },
        preempt_always: false,
    }
}

/// Uninterrupted single-simulation reference bytes for a spec.
fn fresh_snapshot(s: &JobSpec) -> bytes::Bytes {
    let mut sim = RunnerSim::fresh(s).expect("valid spec");
    sim.run_slice(s.t_end, u64::MAX);
    sim.result().snapshot
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A job preempted at random block boundaries (checkpoint every slice,
    /// with the slice width itself randomized) must finish bit-identical
    /// to an uninterrupted run of the same spec.
    #[test]
    fn prop_preempted_job_is_bit_identical_to_uninterrupted(
        seed in 0u64..500,
        slice in 1u64..12,
    ) {
        let job = spec(14, seed, 0.5);
        let handle = ServiceHandle::start(ServeConfig {
            slice_blocks: slice,
            preempt_always: true,
            ..cfg(2)
        });
        let ticket = handle.service().submit("prop", job.clone()).unwrap();
        let st = handle.service().wait(ticket.id).unwrap();
        prop_assert_eq!(st.state, JobState::Completed);
        let (result, _) = handle.service().result(ticket.id).unwrap();
        prop_assert_eq!(&result.snapshot, &fresh_snapshot(&job));
        // The run is long enough that slicing must actually have preempted.
        prop_assert!(
            st.blocks_done <= slice || st.preemptions > 0,
            "a multi-slice run must have been preempted: {:?}", st
        );
        handle.stop();
    }

    /// Cache-key injectivity: two configurations differing in any single
    /// field never collide. The key is the canonical encoding of the
    /// effective spec (not a hash), so this is structural, but the
    /// property pins it against regressions in the encoding.
    #[test]
    fn prop_configs_differing_in_one_field_never_collide(
        n in 1u64..200,
        seed in 0u64..10_000,
        t_end in 0.1f64..4.0,
        dt_pow in 1i32..6,
        eta in 0.001f64..0.1,
        field in 0usize..6,
        bump in 1u64..17,
    ) {
        let base = JobSpec {
            n,
            seed,
            t_end,
            dt_max: 2.0f64.powi(-dt_pow),
            eta,
            engine: "direct".into(),
        };
        let mut tweaked = base.clone();
        match field {
            0 => tweaked.n += bump,
            1 => tweaked.seed += bump,
            2 => tweaked.t_end += bump as f64 / 16.0,
            3 => tweaked.dt_max /= 2.0,
            4 => tweaked.eta *= 1.0 + bump as f64 / 16.0,
            _ => tweaked.engine = "grape6".into(),
        }
        let (bk, tk) = (base.canonical_key().unwrap(), tweaked.canonical_key().unwrap());
        prop_assert!(bk != tk, "field {} must change the cache key: {}", field, bk);
    }
}

#[test]
fn duplicate_submissions_are_cache_hits_with_identical_bytes() {
    let handle = ServiceHandle::start(cfg(2));
    let svc = handle.service();
    let job = spec(12, 77, 0.5);

    let first = svc.submit("alice", job.clone()).unwrap();
    assert!(!first.cached);
    svc.wait(first.id).unwrap();

    // Settled primary: the duplicate settles instantly from the cache.
    let second = svc.submit("bob", job.clone()).unwrap();
    assert_eq!((second.state, second.cached), (JobState::Completed, true));
    let (a, _) = svc.result(first.id).unwrap();
    let (b, _) = svc.result(second.id).unwrap();
    assert_eq!(a.snapshot, b.snapshot, "cache hit must be byte-identical");
    assert_eq!(a.stats, b.stats);

    // Tenant accounting: bob did no work and paid no block steps.
    let rows = svc.tenants();
    let bob = rows.iter().find(|t| t.tenant == "bob").unwrap();
    assert_eq!((bob.cache_hits, bob.block_steps, bob.completed), (1, 0, 1));
    let alice = rows.iter().find(|t| t.tenant == "alice").unwrap();
    assert!(alice.block_steps > 0);
    handle.stop();
}

#[test]
fn inflight_duplicates_coalesce_onto_the_primary() {
    // One worker, and the primary pinned in Queued behind a same-tenant
    // blocker (pick_next ties on tenant block-steps and takes the lowest
    // job id, so the blocker always wins the worker back): the duplicate
    // deterministically arrives while the primary is in flight and must
    // attach rather than recompute.
    let handle = ServiceHandle::start(ServeConfig { slice_blocks: 4, ..cfg(1) });
    let svc = handle.service();
    let job = spec(16, 3, 1.0);

    let blocker = svc.submit("alice", spec(16, 1, 50.0)).unwrap().id;
    let first = svc.submit("alice", job.clone()).unwrap();
    let second = svc.submit("bob", job.clone()).unwrap();
    assert!(second.cached, "in-flight duplicate must coalesce");
    svc.cancel(blocker).unwrap();
    assert_eq!(svc.wait(blocker).unwrap().state, JobState::Cancelled);

    assert_eq!(svc.wait(first.id).unwrap().state, JobState::Completed);
    assert_eq!(svc.wait(second.id).unwrap().state, JobState::Completed);
    let (a, _) = svc.result(first.id).unwrap();
    let (b, _) = svc.result(second.id).unwrap();
    assert_eq!(a.snapshot, b.snapshot);

    let rows = svc.tenants();
    let bob = rows.iter().find(|t| t.tenant == "bob").unwrap();
    assert_eq!((bob.coalesced, bob.block_steps), (1, 0));
    handle.stop();
}

#[test]
fn concurrency_quota_caps_simultaneous_jobs_per_tenant() {
    let handle = ServiceHandle::start(ServeConfig {
        workers: 4,
        slice_blocks: 4,
        quota: TenantQuota { max_running: 1, block_budget: 0 },
        preempt_always: true,
        ..ServeConfig::default()
    });
    let svc = handle.service();
    let ids: Vec<u64> =
        (0..6).map(|k| svc.submit("solo", spec(10, 100 + k, 0.5)).unwrap().id).collect();
    for id in ids {
        assert_eq!(svc.wait(id).unwrap().state, JobState::Completed);
    }
    assert_eq!(
        svc.peak_running("solo"),
        1,
        "max_running = 1 must never let two jobs of one tenant run at once"
    );
    handle.stop();
}

#[test]
fn block_budget_exhaustion_fails_jobs_without_wedging() {
    let budget = 10;
    let handle = ServiceHandle::start(ServeConfig {
        workers: 2,
        slice_blocks: 4,
        quota: TenantQuota { max_running: 2, block_budget: budget },
        ..ServeConfig::default()
    });
    let svc = handle.service();
    let ids: Vec<u64> =
        (0..3).map(|k| svc.submit("miser", spec(14, 40 + k, 2.0)).unwrap().id).collect();
    let mut failed = 0;
    for id in ids {
        let st = svc.wait(id).unwrap();
        assert!(st.state.settled(), "no job may wedge: {st:?}");
        if st.state == JobState::Failed {
            assert!(st.error.contains("budget"), "failure must name the budget: {st:?}");
            failed += 1;
        }
    }
    assert!(failed > 0, "a 10-block budget cannot run three multi-block jobs");
    let rows = svc.tenants();
    let t = rows.iter().find(|t| t.tenant == "miser").unwrap();
    assert_eq!(t.failed, failed);
    assert_eq!(t.block_budget, budget);
    // Overshoot is bounded by one slice per worker.
    assert!(t.block_steps <= budget + 2 * 4, "block_steps = {}", t.block_steps);
    handle.stop();
}

#[test]
fn cancel_settles_queued_and_running_jobs() {
    let handle = ServiceHandle::start(ServeConfig { slice_blocks: 1, ..cfg(1) });
    let svc = handle.service();
    // A long job to occupy the single worker, plus one behind it.
    let a = svc.submit("t", spec(16, 1, 50.0)).unwrap().id;
    let b = svc.submit("t", spec(16, 2, 50.0)).unwrap().id;

    let st_b = svc.cancel(b).unwrap();
    assert!(st_b.state.settled() || st_b.state == JobState::Running);
    assert_eq!(svc.wait(b).unwrap().state, JobState::Cancelled);

    svc.cancel(a).unwrap();
    assert_eq!(svc.wait(a).unwrap().state, JobState::Cancelled);

    // The worker is free again: fresh work still completes.
    let c = svc.submit("t", spec(10, 3, 0.25)).unwrap().id;
    assert_eq!(svc.wait(c).unwrap().state, JobState::Completed);

    let rows = svc.tenants();
    assert_eq!(rows[0].cancelled, 2);
    assert_eq!(rows[0].completed, 1);
    handle.stop();
}

#[test]
fn cancelling_a_primary_promotes_its_duplicate() {
    // max_running 1 pins alice's primary in Queued behind her own
    // long-running blocker, so the cancel deterministically lands before
    // the primary ever runs (no race against a fast completion).
    let handle = ServiceHandle::start(ServeConfig {
        slice_blocks: 2,
        quota: TenantQuota { max_running: 1, block_budget: 0 },
        ..cfg(1)
    });
    let svc = handle.service();
    let blocker = svc.submit("alice", spec(16, 1, 50.0)).unwrap().id;
    let job = spec(14, 9, 0.5);
    let first = svc.submit("alice", job.clone()).unwrap();
    let second = svc.submit("bob", job.clone()).unwrap();
    assert!(second.cached);

    svc.cancel(first.id).unwrap();
    assert_eq!(svc.wait(first.id).unwrap().state, JobState::Cancelled);
    // The duplicate is promoted to primary under bob's (unblocked) tenant
    // and still completes — with the same bytes an uninterrupted run
    // produces (checkpoint inheritance).
    let st = svc.wait(second.id).unwrap();
    assert_eq!(st.state, JobState::Completed);
    let (r, _) = svc.result(second.id).unwrap();
    assert_eq!(r.snapshot, fresh_snapshot(&job));
    svc.cancel(blocker).unwrap();
    assert_eq!(svc.wait(blocker).unwrap().state, JobState::Cancelled);
    handle.stop();
}

#[test]
fn promotion_repoints_surviving_duplicates_and_keeps_cancelled_ones_settled() {
    // Same pinning trick as above: with one worker and max_running = 1,
    // alice's long blocker keeps every other alice job in Queued, so the
    // whole cancel/promote chain below runs deterministically before any
    // of the coalesced jobs can execute.
    let handle = ServiceHandle::start(ServeConfig {
        slice_blocks: 2,
        quota: TenantQuota { max_running: 1, block_budget: 0 },
        ..cfg(1)
    });
    let svc = handle.service();
    let blocker = svc.submit("alice", spec(16, 1, 50.0)).unwrap().id;
    let job = spec(14, 9, 0.5);
    let primary = svc.submit("alice", job.clone()).unwrap();
    let dup_a = svc.submit("alice", job.clone()).unwrap();
    let dup_b = svc.submit("bob", job.clone()).unwrap();
    let dup_c = svc.submit("carol", job.clone()).unwrap();
    assert!(dup_a.cached && dup_b.cached && dup_c.cached);

    // Cancel the primary: alice's dup_a inherits primaryship (still pinned
    // behind the blocker), and dup_b/dup_c must now be attached to *it*.
    svc.cancel(primary.id).unwrap();
    assert_eq!(svc.wait(primary.id).unwrap().state, JobState::Cancelled);

    // Cancelling dup_b must detach it from the heir, not from the settled
    // old primary — it settles Cancelled, terminally.
    svc.cancel(dup_b.id).unwrap();
    assert_eq!(svc.wait(dup_b.id).unwrap().state, JobState::Cancelled);

    // Cancel the heir too: the next heir must be the live dup_c, never the
    // already-cancelled dup_b. carol is unblocked, so dup_c now runs.
    svc.cancel(dup_a.id).unwrap();
    assert_eq!(svc.wait(dup_a.id).unwrap().state, JobState::Cancelled);
    let st = svc.wait(dup_c.id).unwrap();
    assert_eq!(st.state, JobState::Completed);
    let (r, _) = svc.result(dup_c.id).unwrap();
    assert_eq!(r.snapshot, fresh_snapshot(&job));

    // dup_b's settled state survived the heir's completion (terminal
    // states are terminal), and its result stays a cancellation error.
    assert_eq!(svc.query(dup_b.id).unwrap().state, JobState::Cancelled);
    assert!(svc.result(dup_b.id).unwrap_err().contains("cancelled"));

    svc.cancel(blocker).unwrap();
    assert_eq!(svc.wait(blocker).unwrap().state, JobState::Cancelled);

    // Telemetry: nobody is double-counted across cancelled + completed.
    let rows = svc.tenants();
    let bob = rows.iter().find(|t| t.tenant == "bob").unwrap();
    assert_eq!((bob.cancelled, bob.completed), (1, 0));
    let carol = rows.iter().find(|t| t.tenant == "carol").unwrap();
    assert_eq!((carol.cancelled, carol.completed), (0, 1));
    let alice = rows.iter().find(|t| t.tenant == "alice").unwrap();
    assert_eq!((alice.cancelled, alice.completed), (3, 0));
    handle.stop();
}

#[test]
fn rejected_submissions_are_counted_and_explain_themselves() {
    let handle = ServiceHandle::start(cfg(1));
    let svc = handle.service();
    let err = svc.submit("t", spec(0, 1, 0.5)).unwrap_err();
    assert!(err.contains("n must be"), "{err}");
    let err = svc.submit("t", JobSpec { engine: "warp".into(), ..spec(8, 1, 0.5) }).unwrap_err();
    assert!(err.contains("unknown engine"), "{err}");
    let rows = svc.tenants();
    assert_eq!((rows[0].rejected, rows[0].submitted), (2, 0));
    handle.stop();
}

#[test]
fn tcp_end_to_end_submit_wait_result_stream_shutdown() {
    let server = TcpServer::start(ServeConfig { slice_blocks: 4, ..cfg(2) }, "127.0.0.1:0")
        .expect("bind ephemeral port");
    let stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);

    fn rpc(
        reader: &mut BufReader<std::net::TcpStream>,
        writer: &mut BufWriter<std::net::TcpStream>,
        req: &Request,
    ) -> Response {
        writeln!(writer, "{}", serde_json::to_string(req).unwrap()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        serde_json::from_str(&line).unwrap()
    }

    let job = spec(12, 5, 0.5);
    let id = match rpc(
        &mut reader,
        &mut writer,
        &Request::Submit { tenant: "net".into(), job: job.clone() },
    ) {
        Response::Submitted { id, cached: false, .. } => id,
        other => panic!("unexpected submit response {other:?}"),
    };
    match rpc(&mut reader, &mut writer, &Request::Wait { id }) {
        Response::Status { status } => assert_eq!(status.state, JobState::Completed),
        other => panic!("unexpected wait response {other:?}"),
    }
    match rpc(&mut reader, &mut writer, &Request::Result { id }) {
        Response::ResultData { snapshot_hex, block_steps, .. } => {
            let bytes = hex_decode(&snapshot_hex).unwrap();
            assert_eq!(&bytes[..], &fresh_snapshot(&job)[..], "wire bytes must be exact");
            assert!(block_steps > 0);
        }
        other => panic!("unexpected result response {other:?}"),
    }

    // Streaming: a second job observed from Queued to Completed.
    let id2 = match rpc(
        &mut reader,
        &mut writer,
        &Request::Submit { tenant: "net".into(), job: spec(12, 6, 0.5) },
    ) {
        Response::Submitted { id, .. } => id,
        other => panic!("unexpected submit response {other:?}"),
    };
    writeln!(writer, "{}", serde_json::to_string(&Request::Stream { id: id2 }).unwrap()).unwrap();
    writer.flush().unwrap();
    let final_state = loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match serde_json::from_str::<Response>(&line).unwrap() {
            Response::Event { status } if status.state.settled() => break status.state,
            Response::Event { .. } => continue,
            other => panic!("unexpected stream response {other:?}"),
        }
    };
    assert_eq!(final_state, JobState::Completed);

    match rpc(&mut reader, &mut writer, &Request::Tenants) {
        Response::Tenants { tenants } => {
            assert_eq!(tenants.len(), 1);
            assert_eq!(tenants[0].tenant, "net");
            assert_eq!(tenants[0].completed, 2);
        }
        other => panic!("unexpected tenants response {other:?}"),
    }
    match rpc(&mut reader, &mut writer, &Request::Shutdown) {
        Response::Done => {}
        other => panic!("unexpected shutdown response {other:?}"),
    }
    server.stop();
}

#[test]
fn ensemble_submission_fans_out_one_job_per_seed() {
    let handle = ServiceHandle::start(cfg(2));
    let svc = handle.service();
    let ids = svc.submit_ensemble("sweep", &spec(10, 0, 0.25), &[11, 12, 13]).unwrap();
    assert_eq!(ids.len(), 3);
    let mut snapshots = Vec::new();
    for &id in &ids {
        assert_eq!(svc.wait(id).unwrap().state, JobState::Completed);
        snapshots.push(svc.result(id).unwrap().0.snapshot.clone());
    }
    // Distinct seeds are distinct realizations.
    assert_ne!(snapshots[0], snapshots[1]);
    assert_ne!(snapshots[1], snapshots[2]);
    handle.stop();
}

#[test]
fn rejected_ensembles_queue_nothing() {
    let handle = ServiceHandle::start(cfg(1));
    let svc = handle.service();
    assert!(svc.submit_ensemble("sweep", &spec(0, 0, 0.25), &[1, 2, 3]).is_err());
    assert!(svc.tenants().iter().all(|t| t.submitted == 0));

    // A batch racing shutdown is all-or-nothing too: no partial members.
    svc.shutdown();
    assert!(svc.submit_ensemble("sweep", &spec(10, 0, 0.25), &[1, 2, 3]).is_err());
    assert!(svc.tenants().iter().all(|t| t.submitted == 0));
    handle.stop();
}
