//! Analysis of evolved disks: radial surface-density profiles, the gap
//! detection behind Fig 13 ("gap of the distribution is formed near the
//! radius of protoplanets"), excitation (e/i dispersion) profiles, and the
//! scattering census behind the paper's Oort-cloud discussion (§2).

use grape6_core::kepler::{specific_energy, state_to_elements};
use grape6_core::particle::ParticleSystem;
use grape6_core::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A radial histogram of the disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadialHistogram {
    /// Inner edge of the histogram (AU).
    pub r_in: f64,
    /// Outer edge (AU).
    pub r_out: f64,
    /// Bin edges (len = bins + 1).
    pub edges: Vec<f64>,
    /// Surface density per bin (mass / annulus area).
    pub sigma: Vec<f64>,
    /// Particle count per bin.
    pub counts: Vec<usize>,
    /// RMS eccentricity per bin.
    pub rms_e: Vec<f64>,
    /// RMS inclination per bin (rad).
    pub rms_i: Vec<f64>,
}

impl RadialHistogram {
    /// Bin the given subset of particles by heliocentric semi-major axis.
    /// Unbound or out-of-range particles are skipped (counted by the
    /// [`ScatteringCensus`] instead).
    pub fn from_system(
        sys: &ParticleSystem,
        indices: &[usize],
        r_in: f64,
        r_out: f64,
        bins: usize,
    ) -> Self {
        assert!(bins > 0 && r_out > r_in);
        let edges: Vec<f64> =
            (0..=bins).map(|k| r_in + (r_out - r_in) * k as f64 / bins as f64).collect();
        let mut mass = vec![0.0; bins];
        let mut counts = vec![0usize; bins];
        let mut e2 = vec![0.0; bins];
        let mut i2 = vec![0.0; bins];
        for &i in indices {
            let el = state_to_elements(sys.pos[i], sys.vel[i], sys.central_mass.max(1e-300));
            if !el.is_bound() || el.a < r_in || el.a >= r_out {
                continue;
            }
            let b = (((el.a - r_in) / (r_out - r_in) * bins as f64) as usize).min(bins - 1);
            mass[b] += sys.mass[i];
            counts[b] += 1;
            e2[b] += el.e * el.e;
            i2[b] += el.inc * el.inc;
        }
        let mut sigma = vec![0.0; bins];
        let mut rms_e = vec![0.0; bins];
        let mut rms_i = vec![0.0; bins];
        for b in 0..bins {
            let area = std::f64::consts::PI * (edges[b + 1].powi(2) - edges[b].powi(2));
            sigma[b] = mass[b] / area;
            if counts[b] > 0 {
                rms_e[b] = (e2[b] / counts[b] as f64).sqrt();
                rms_i[b] = (i2[b] / counts[b] as f64).sqrt();
            }
        }
        Self { r_in, r_out, edges, sigma, counts, rms_e, rms_i }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.sigma.len()
    }

    /// Center of bin `b`.
    pub fn center(&self, b: usize) -> f64 {
        0.5 * (self.edges[b] + self.edges[b + 1])
    }

    /// Bin index containing radius `r` (clamped).
    pub fn bin_of(&self, r: f64) -> usize {
        let bins = self.bins();
        (((r - self.r_in) / (self.r_out - self.r_in) * bins as f64) as usize).min(bins - 1)
    }

    /// Surface-density *depletion* at radius `r`: 1 − Σ(r)/Σ_ref(r).
    ///
    /// The disk has an intrinsic power-law gradient (Σ ∝ r^`profile_exponent`
    /// initially), so raw densities at different radii are not comparable;
    /// bins are first flattened by `r^-exponent` and the reference is the
    /// median flattened density of bins at least `exclusion` AU away from
    /// `r`. A fully opened gap reads ≈ 1, an untouched disk ≈ 0.
    pub fn depletion_at(&self, r: f64, exclusion: f64, profile_exponent: f64) -> f64 {
        let bins = self.bins();
        let flat = |b: usize| self.sigma[b] * self.center(b).powf(-profile_exponent);
        let mut reference: Vec<f64> = (0..bins)
            .filter(|&b| (self.center(b) - r).abs() > exclusion && self.counts[b] > 0)
            .map(flat)
            .collect();
        if reference.is_empty() {
            return 0.0;
        }
        reference.sort_by(f64::total_cmp);
        let median = reference[reference.len() / 2];
        if median <= 0.0 {
            return 0.0;
        }
        // Average the three bins nearest r for noise robustness.
        let b0 = self.bin_of(r);
        let lo = b0.saturating_sub(1);
        let hi = (b0 + 1).min(bins - 1);
        let local: f64 = (lo..=hi).map(flat).sum::<f64>() / (hi - lo + 1) as f64;
        1.0 - local / median
    }
}

/// Fate classification of the planetesimal population (paper §2: "some
/// planetesimals are accreted and others are scattered away…").
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ScatteringCensus {
    /// Still on a bound orbit inside the analysis annulus.
    pub retained: usize,
    /// Bound but pushed inside the inner edge.
    pub scattered_inward: usize,
    /// Bound but pushed outside the outer edge (Oort-cloud feeding zone).
    pub scattered_outward: usize,
    /// Hyperbolic (positive heliocentric energy): ejected.
    pub ejected: usize,
    /// RMS eccentricity of the retained population.
    pub rms_e_retained: f64,
}

impl ScatteringCensus {
    /// Classify the given subset by instantaneous orbital elements, using
    /// the annulus `[r_in, r_out]` as the retention region.
    pub fn classify(sys: &ParticleSystem, indices: &[usize], r_in: f64, r_out: f64) -> Self {
        let mut c = Self::default();
        let mut e2 = 0.0;
        for &i in indices {
            let eps = specific_energy(sys.pos[i], sys.vel[i], sys.central_mass.max(1e-300));
            if eps >= 0.0 {
                c.ejected += 1;
                continue;
            }
            let el = state_to_elements(sys.pos[i], sys.vel[i], sys.central_mass.max(1e-300));
            if el.a < r_in {
                c.scattered_inward += 1;
            } else if el.a > r_out {
                c.scattered_outward += 1;
            } else {
                c.retained += 1;
                e2 += el.e * el.e;
            }
        }
        if c.retained > 0 {
            c.rms_e_retained = (e2 / c.retained as f64).sqrt();
        }
        c
    }

    /// Total classified particles.
    pub fn total(&self) -> usize {
        self.retained + self.scattered_inward + self.scattered_outward + self.ejected
    }

    /// Fraction no longer retained.
    pub fn disturbed_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            1.0 - self.retained as f64 / t as f64
        }
    }
}

/// Logarithmic mass-spectrum histogram with a power-law slope fit — the
/// observable that evolves during accretion (paper §2: the m^-2.5 law is
/// "a stationary distribution"; runaway growth bends its high-mass end).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MassSpectrum {
    /// Logarithmic bin edges (len = bins + 1).
    pub edges: Vec<f64>,
    /// Bodies per bin.
    pub counts: Vec<usize>,
    /// Fitted dN/dm slope over the populated bins (≈ −2.5 for the paper's
    /// initial spectrum).
    pub slope: f64,
}

impl MassSpectrum {
    /// Bin the positive masses of the given subset into `bins` logarithmic
    /// bins and fit the differential slope by least squares on
    /// ln(dN/dm) vs ln(m).
    pub fn from_system(sys: &ParticleSystem, indices: &[usize], bins: usize) -> Self {
        assert!(bins >= 2);
        let masses: Vec<f64> = indices.iter().map(|&i| sys.mass[i]).filter(|&m| m > 0.0).collect();
        assert!(!masses.is_empty(), "no massive bodies to bin");
        let lo = masses.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = masses.iter().cloned().fold(0.0, f64::max) * (1.0 + 1e-12);
        let edges: Vec<f64> =
            (0..=bins).map(|k| lo * (hi / lo).powf(k as f64 / bins as f64)).collect();
        let mut counts = vec![0usize; bins];
        let log_ratio = (hi / lo).ln();
        for &m in &masses {
            let x = (m / lo).ln() / log_ratio;
            let b = ((x * bins as f64) as usize).min(bins - 1);
            counts[b] += 1;
        }
        // Least squares of ln(count / Δm) on ln(m_center), populated bins only.
        let mut pts = Vec::new();
        for b in 0..bins {
            if counts[b] > 0 {
                let center = (edges[b] * edges[b + 1]).sqrt();
                let dm = edges[b + 1] - edges[b];
                pts.push((center.ln(), (counts[b] as f64 / dm).ln()));
            }
        }
        let slope = if pts.len() >= 2 {
            let n = pts.len() as f64;
            let sx: f64 = pts.iter().map(|p| p.0).sum();
            let sy: f64 = pts.iter().map(|p| p.1).sum();
            let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
            let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
            (n * sxy - sx * sy) / (n * sxx - sx * sx)
        } else {
            f64::NAN
        };
        Self { edges, counts, slope }
    }

    /// Largest populated mass bin's upper edge (tracks the runaway tail).
    pub fn max_mass(&self) -> f64 {
        for b in (0..self.counts.len()).rev() {
            if self.counts[b] > 0 {
                return self.edges[b + 1];
            }
        }
        0.0
    }
}

/// Tisserand parameter of an orbit with respect to a perturber at
/// semi-major axis `a_p`:
///
/// `T = a_p/a + 2 √( (a/a_p)(1−e²) ) cos i`.
///
/// T is (approximately) conserved through encounters with the perturber even
/// when the orbit itself changes drastically — the standard test that a
/// scattering event in an integration is dynamics, not integration error,
/// and the basis of the paper's comet-dynamics discussion (§2: Jupiter-family
/// comets are classified by their Tisserand parameter with Neptune/Jupiter).
pub fn tisserand(el: &grape6_core::kepler::Elements, a_p: f64) -> f64 {
    assert!(a_p > 0.0 && el.a > 0.0 && el.e < 1.0, "needs a bound orbit");
    a_p / el.a + 2.0 * ((el.a / a_p) * (1.0 - el.e * el.e)).sqrt() * el.inc.cos()
}

/// A compact (time, positions) snapshot for Fig 13-style scatter plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskSnapshot {
    /// Simulation time.
    pub t: f64,
    /// Cylindrical radii of all planetesimals.
    pub r: Vec<f64>,
    /// Azimuths (rad).
    pub phi: Vec<f64>,
    /// Heights above the midplane.
    pub z: Vec<f64>,
}

impl DiskSnapshot {
    /// Capture a snapshot of the given subset at the system's current state.
    pub fn capture(sys: &ParticleSystem, indices: &[usize], t: f64) -> Self {
        let mut r = Vec::with_capacity(indices.len());
        let mut phi = Vec::with_capacity(indices.len());
        let mut z = Vec::with_capacity(indices.len());
        for &i in indices {
            let p: Vec3 = sys.pos[i];
            r.push(p.cylindrical_r());
            phi.push(p.azimuth());
            z.push(p.z);
        }
        Self { t, r, phi, z }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DiskBuilder;

    fn fresh_disk(n: usize) -> (ParticleSystem, Vec<usize>) {
        let b = DiskBuilder::paper(n);
        let sys = b.build();
        let idx: Vec<usize> = (0..n).collect();
        (sys, idx)
    }

    #[test]
    fn histogram_recovers_profile_slope() {
        let (sys, idx) = fresh_disk(20_000);
        let h = RadialHistogram::from_system(&sys, &idx, 15.0, 35.0, 10);
        assert_eq!(h.bins(), 10);
        // Σ(20)/Σ(30) ≈ (20/30)^-1.5 = 1.84 for the fresh disk.
        let s20 = h.sigma[h.bin_of(20.0)];
        let s30 = h.sigma[h.bin_of(30.0)];
        let ratio = s20 / s30;
        assert!((ratio - 1.837).abs() < 0.3, "Σ20/Σ30 = {ratio}");
    }

    #[test]
    fn histogram_counts_everything_in_range() {
        let (sys, idx) = fresh_disk(2000);
        let h = RadialHistogram::from_system(&sys, &idx, 10.0, 40.0, 30);
        let total: usize = h.counts.iter().sum();
        assert_eq!(total, 2000);
    }

    #[test]
    fn fresh_disk_has_no_gaps() {
        let (sys, idx) = fresh_disk(20_000);
        let h = RadialHistogram::from_system(&sys, &idx, 15.0, 35.0, 40);
        for r in [20.0, 25.0, 30.0] {
            let d = h.depletion_at(r, 3.0, -1.5);
            assert!(d.abs() < 0.2, "depletion {d} at {r} AU in a fresh disk");
        }
    }

    #[test]
    fn carved_gap_is_detected() {
        // Remove particles near 20 AU by hand and check the detector fires.
        let b = DiskBuilder::paper(20_000);
        let sys = b.build();
        let idx: Vec<usize> = (0..20_000)
            .filter(|&i| {
                let a = grape6_core::kepler::state_to_elements(sys.pos[i], sys.vel[i], 1.0).a;
                (a - 20.0).abs() > 1.0
            })
            .collect();
        let h = RadialHistogram::from_system(&sys, &idx, 15.0, 35.0, 40);
        let d20 = h.depletion_at(20.0, 3.0, -1.5);
        let d30 = h.depletion_at(30.0, 3.0, -1.5);
        assert!(d20 > 0.7, "gap at 20 AU not detected: {d20}");
        assert!(d30 < 0.2, "false gap at 30 AU: {d30}");
    }

    #[test]
    fn census_on_fresh_disk_is_fully_retained() {
        let (sys, idx) = fresh_disk(2000);
        let c = ScatteringCensus::classify(&sys, &idx, 14.0, 36.0);
        assert_eq!(c.total(), 2000);
        assert_eq!(c.ejected, 0);
        assert!(c.disturbed_fraction() < 0.01);
        assert!(c.rms_e_retained > 0.0 && c.rms_e_retained < 0.05);
    }

    #[test]
    fn census_classifies_hand_built_fates() {
        let mut sys = ParticleSystem::new(0.0, 1.0);
        // Retained: circular at 25.
        sys.push(Vec3::new(25.0, 0.0, 0.0), Vec3::new(0.0, (1.0f64 / 25.0).sqrt(), 0.0), 1e-9);
        // Inward: circular at 5.
        sys.push(Vec3::new(5.0, 0.0, 0.0), Vec3::new(0.0, (1.0f64 / 5.0).sqrt(), 0.0), 1e-9);
        // Outward: circular at 80.
        sys.push(Vec3::new(80.0, 0.0, 0.0), Vec3::new(0.0, (1.0f64 / 80.0).sqrt(), 0.0), 1e-9);
        // Ejected: radial at 2× escape speed.
        sys.push(
            Vec3::new(25.0, 0.0, 0.0),
            Vec3::new(2.0 * (2.0f64 / 25.0).sqrt(), 0.0, 0.0),
            1e-9,
        );
        let c = ScatteringCensus::classify(&sys, &[0, 1, 2, 3], 15.0, 35.0);
        assert_eq!(c.retained, 1);
        assert_eq!(c.scattered_inward, 1);
        assert_eq!(c.scattered_outward, 1);
        assert_eq!(c.ejected, 1);
        assert!((c.disturbed_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mass_spectrum_recovers_the_paper_slope() {
        let b = DiskBuilder::paper(50_000);
        let sys = b.build();
        let idx: Vec<usize> = (0..50_000).collect();
        let spec = MassSpectrum::from_system(&sys, &idx, 12);
        assert!((spec.slope - (-2.5)).abs() < 0.15, "fitted slope {}", spec.slope);
        assert_eq!(spec.counts.iter().sum::<usize>(), 50_000);
    }

    #[test]
    fn mass_spectrum_ignores_ghosts_and_tracks_max() {
        let mut sys = ParticleSystem::new(0.0, 1.0);
        for k in 1..=8 {
            sys.push(Vec3::new(k as f64, 0.0, 0.0), Vec3::zero(), 1e-10 * k as f64);
        }
        sys.mass[3] = 0.0; // ghost
        let idx: Vec<usize> = (0..8).collect();
        let spec = MassSpectrum::from_system(&sys, &idx, 4);
        assert_eq!(spec.counts.iter().sum::<usize>(), 7);
        assert!(spec.max_mass() >= 8e-10);
    }

    #[test]
    fn tisserand_of_coplanar_circular_orbit_at_perturber_is_three() {
        let el = grape6_core::kepler::Elements::circular(20.0, 0.0);
        let t = tisserand(&el, 20.0);
        assert!((t - 3.0).abs() < 1e-12, "T = {t}");
    }

    #[test]
    fn snapshot_captures_cylindrical_coordinates() {
        let mut sys = ParticleSystem::new(0.0, 1.0);
        sys.push(Vec3::new(3.0, 4.0, 0.5), Vec3::zero(), 1e-9);
        let s = DiskSnapshot::capture(&sys, &[0], 12.5);
        assert_eq!(s.t, 12.5);
        assert!((s.r[0] - 5.0).abs() < 1e-12);
        assert!((s.z[0] - 0.5).abs() < 1e-15);
        assert!((s.phi[0] - (4.0f64).atan2(3.0)).abs() < 1e-15);
    }
}
