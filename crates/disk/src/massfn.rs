//! The planetesimal mass function (paper §2): `N(m) dm ∝ m^-2.5`, "a
//! stationary distribution found by numerical simulations and confirmed by
//! simple analytic argument", truncated between a lower and an upper cutoff.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A truncated power-law mass function `dN/dm ∝ m^p` on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawMass {
    /// Exponent `p` (−2.5 in the paper).
    pub exponent: f64,
    /// Lower cutoff mass.
    pub lo: f64,
    /// Upper cutoff mass.
    pub hi: f64,
}

impl PowerLawMass {
    /// The paper's distribution with the DESIGN.md cutoffs.
    pub fn paper() -> Self {
        Self {
            exponent: grape6_core::units::paper::MASS_EXPONENT,
            lo: grape6_core::units::paper::M_PLANETESIMAL_LO,
            hi: grape6_core::units::paper::M_PLANETESIMAL_HI,
        }
    }

    /// Create a distribution, validating the cutoffs.
    pub fn new(exponent: f64, lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi, got [{lo}, {hi}]");
        Self { exponent, lo, hi }
    }

    /// Draw one mass by inverse-CDF sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let p1 = self.exponent + 1.0;
        if p1.abs() < 1e-12 {
            // p = −1: logarithmic CDF.
            (self.lo.ln() + u * (self.hi / self.lo).ln()).exp()
        } else {
            let a = self.lo.powf(p1);
            let b = self.hi.powf(p1);
            (a + u * (b - a)).powf(1.0 / p1)
        }
    }

    /// Analytic mean of the distribution.
    pub fn mean(&self) -> f64 {
        let p = self.exponent;
        let (lo, hi) = (self.lo, self.hi);
        let moment = |k: f64| -> f64 {
            let q = p + k + 1.0;
            if q.abs() < 1e-12 {
                (hi / lo).ln()
            } else {
                (hi.powf(q) - lo.powf(q)) / q
            }
        };
        moment(1.0) / moment(0.0)
    }

    /// Analytic fraction of bodies with mass above `m`.
    pub fn fraction_above(&self, m: f64) -> f64 {
        let m = m.clamp(self.lo, self.hi);
        let p1 = self.exponent + 1.0;
        if p1.abs() < 1e-12 {
            (self.hi / m).ln() / (self.hi / self.lo).ln()
        } else {
            (self.hi.powf(p1) - m.powf(p1)) / (self.hi.powf(p1) - self.lo.powf(p1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let d = PowerLawMass::paper();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let m = d.sample(&mut rng);
            assert!(m >= d.lo && m <= d.hi);
        }
    }

    #[test]
    fn sample_mean_matches_analytic() {
        let d = PowerLawMass::paper();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum / n as f64;
        let rel = (emp - d.mean()).abs() / d.mean();
        assert!(rel < 0.02, "empirical {emp:e} vs analytic {:e}", d.mean());
    }

    #[test]
    fn paper_mean_is_a_few_lo() {
        // For p = −2.5 with hi/lo = 100 the mean is ≈ 2.7 lo.
        let d = PowerLawMass::paper();
        let ratio = d.mean() / d.lo;
        assert!(ratio > 2.0 && ratio < 3.5, "mean/lo = {ratio}");
    }

    #[test]
    fn steep_slope_favors_small_bodies() {
        let d = PowerLawMass::new(-2.5, 1.0, 100.0);
        // Half the bodies lie below ~1.6 lo for p = -2.5, hi/lo = 100.
        assert!(d.fraction_above(10.0) < 0.05);
        assert!(d.fraction_above(1.0) == 1.0);
        assert!(d.fraction_above(100.0) == 0.0);
    }

    #[test]
    fn fraction_above_is_monotone() {
        let d = PowerLawMass::paper();
        let mut last = 1.0;
        for k in 0..20 {
            let m = d.lo * (d.hi / d.lo).powf(k as f64 / 19.0);
            let f = d.fraction_above(m);
            assert!(f <= last + 1e-12);
            last = f;
        }
    }

    #[test]
    fn log_slope_recovered_from_histogram() {
        // Bin samples logarithmically and fit the slope: must be ≈ −2.5
        // (in dN/d(ln m) terms the slope is p + 1 = −1.5).
        let d = PowerLawMass::new(-2.5, 1e-10, 1e-8);
        let mut rng = StdRng::seed_from_u64(3);
        let nbins = 10;
        let mut counts = vec![0usize; nbins];
        let n = 400_000;
        for _ in 0..n {
            let m = d.sample(&mut rng);
            let x = (m / d.lo).ln() / (d.hi / d.lo).ln();
            let b = ((x * nbins as f64) as usize).min(nbins - 1);
            counts[b] += 1;
        }
        // Regress ln(count) on ln(m_center): slope should be p + 1.
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let used = nbins - 2; // drop the emptiest high-mass bins
        #[allow(clippy::needless_range_loop)]
        for b in 0..used {
            let lnm = d.lo.ln() + (b as f64 + 0.5) / nbins as f64 * (d.hi / d.lo).ln();
            let lnc = (counts[b] as f64).ln();
            sx += lnm;
            sy += lnc;
            sxx += lnm * lnm;
            sxy += lnm * lnc;
        }
        let nn = used as f64;
        let slope = (nn * sxy - sx * sy) / (nn * sxx - sx * sx);
        assert!((slope - (-1.5)).abs() < 0.1, "log-slope {slope}");
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_cutoffs() {
        PowerLawMass::new(-2.5, 1.0, 0.5);
    }
}
