//! Mean-motion resonances with the protoplanets.
//!
//! The radial structure an embedded protoplanet carves is organized by its
//! mean-motion resonances: planetesimals scattered out of the feeding zone
//! pile up near the strong first-order resonances (3:2, 2:1 interior;
//! 2:3, 1:2 exterior), and the co-orbital (1:1 horseshoe/tadpole) population
//! survives at the protoplanet's own semi-major axis — the morphology
//! visible in the Fig 13 reproduction (experiment E2).

use serde::{Deserialize, Serialize};

/// A p:q mean-motion commensurability with a perturber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resonance {
    /// Particle completes `p` orbits…
    pub p: u32,
    /// …while the perturber completes `q`.
    pub q: u32,
}

impl Resonance {
    /// Nominal semi-major axis of the resonance for a perturber at `a_p`:
    /// `a = a_p (q/p)^{2/3}` (particle period = (q/p) × perturber period).
    pub fn location(&self, a_p: f64) -> f64 {
        assert!(self.p > 0 && self.q > 0);
        a_p * (self.q as f64 / self.p as f64).powf(2.0 / 3.0)
    }

    /// Order of the resonance |p − q| (first-order resonances are strongest).
    pub fn order(&self) -> u32 {
        self.p.abs_diff(self.q)
    }

    /// The strong low-order resonances worth plotting: interior 2:1, 3:2,
    /// 4:3; co-orbital 1:1; exterior 3:4, 2:3, 1:2.
    pub fn principal() -> Vec<Resonance> {
        vec![
            Resonance { p: 2, q: 1 },
            Resonance { p: 3, q: 2 },
            Resonance { p: 4, q: 3 },
            Resonance { p: 1, q: 1 },
            Resonance { p: 3, q: 4 },
            Resonance { p: 2, q: 3 },
            Resonance { p: 1, q: 2 },
        ]
    }

    /// Approximate libration half-width in semi-major axis for a perturber
    /// of mass `m_p` (in central masses): Δa/a ≈ C √(m_p) with C ~ 1–2 for
    /// first-order resonances. A rough classification band, not a precise
    /// pendulum model.
    pub fn half_width(&self, a_p: f64, m_p: f64) -> f64 {
        match self.order() {
            // Co-orbital (1:1): the horseshoe region, Hill-scaled.
            0 => 2.4 * grape6_core::units::hill_radius(a_p, m_p, 1.0),
            1 => 1.5 * m_p.sqrt() * self.location(a_p),
            _ => 0.8 * m_p.sqrt() * self.location(a_p),
        }
    }

    /// Label like "3:2".
    pub fn label(&self) -> String {
        format!("{}:{}", self.p, self.q)
    }
}

/// Count particles (by semi-major axis) within each principal resonance band
/// of a perturber at `a_p` with mass `m_p`.
pub fn resonance_census(a_values: &[f64], a_p: f64, m_p: f64) -> Vec<(Resonance, usize)> {
    Resonance::principal()
        .into_iter()
        .map(|r| {
            let loc = r.location(a_p);
            let hw = r.half_width(a_p, m_p);
            let count = a_values.iter().filter(|&&a| (a - loc).abs() <= hw).count();
            (r, count)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kepler_iii_locations() {
        let r32 = Resonance { p: 3, q: 2 };
        // Particle period = 2/3 of perturber's → a = a_p (2/3)^(2/3).
        let a = r32.location(30.0);
        assert!((a - 30.0 * (2.0f64 / 3.0).powf(2.0 / 3.0)).abs() < 1e-12);
        // Interior resonances sit inside, exterior outside.
        assert!(a < 30.0);
        assert!(Resonance { p: 1, q: 2 }.location(30.0) > 30.0);
        assert!((Resonance { p: 1, q: 1 }.location(30.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn neptune_pluto_resonance() {
        // Pluto sits in Neptune's exterior 2:3 resonance at ≈39.4 AU.
        let a = Resonance { p: 2, q: 3 }.location(30.07);
        assert!((a - 39.4).abs() < 0.3, "2:3 of Neptune at {a} AU");
    }

    #[test]
    fn orders() {
        assert_eq!(Resonance { p: 3, q: 2 }.order(), 1);
        assert_eq!(Resonance { p: 1, q: 2 }.order(), 1);
        assert_eq!(Resonance { p: 3, q: 1 }.order(), 2);
        assert_eq!(Resonance { p: 1, q: 1 }.order(), 0);
    }

    #[test]
    fn widths_grow_with_perturber_mass() {
        let r = Resonance { p: 2, q: 1 };
        let w_small = r.half_width(20.0, 3e-5);
        let w_big = r.half_width(20.0, 3e-4);
        assert!(w_big > 2.0 * w_small);
        assert!(w_small > 0.0 && w_small < 1.0);
    }

    #[test]
    fn census_counts_in_bands() {
        let a_p = 20.0;
        let m_p = 3e-4;
        let r21 = Resonance { p: 2, q: 1 }.location(a_p); // ≈ 12.6
        let a_values = vec![r21, r21 + 0.01, a_p, 25.0, 35.0];
        let census = resonance_census(&a_values, a_p, m_p);
        let c21 = census.iter().find(|(r, _)| r.label() == "2:1").unwrap().1;
        let c11 = census.iter().find(|(r, _)| r.label() == "1:1").unwrap().1;
        assert_eq!(c21, 2);
        assert_eq!(c11, 1);
    }

    #[test]
    fn principal_list_is_sorted_interior_to_exterior() {
        let locs: Vec<f64> = Resonance::principal().iter().map(|r| r.location(1.0)).collect();
        for w in locs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "{locs:?}");
        }
    }
}
