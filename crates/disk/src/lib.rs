//! # grape6-disk
//!
//! Initial conditions and analysis for the Uranus-Neptune planetesimal
//! system of paper §2: a ring of 15–35 AU with surface density Σ ∝ r^-1.5,
//! planetesimal masses drawn from N(m) dm ∝ m^-2.5, two protoplanets on
//! circular orbits at 20 and 30 AU, and 0.008 AU softening.
//!
//! * [`massfn`] — the truncated power-law mass function,
//! * [`profile`] — the radial surface-density profile,
//! * [`builder`] — assembly of a [`grape6_core::particle::ParticleSystem`],
//! * [`analysis`] — surface-density histograms, the Fig 13 gap detector,
//!   excitation profiles, and the scattering census.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
pub mod analysis;
pub mod builder;
pub mod massfn;
pub mod nebula;
pub mod profile;
pub mod resonance;
pub mod stirring;

pub use analysis::{tisserand, DiskSnapshot, MassSpectrum, RadialHistogram, ScatteringCensus};
pub use builder::{DiskBuilder, Protoplanet};
pub use massfn::PowerLawMass;
pub use nebula::HayashiNebula;
pub use profile::RadialProfile;
pub use resonance::{resonance_census, Resonance};
pub use stirring::LocalDisk;
