//! Analytic stirring/relaxation estimates for the planetesimal disk.
//!
//! Paper §2: "The gravitational relaxation of planetesimal orbits due to
//! mutual gravitational interaction is an elementary process that controls
//! the planetesimal evolution." These estimates (standard
//! Chandrasekhar-type two-body relaxation adapted to a thin disk, e.g.
//! Ida & Makino 1993; Stewart & Ida 2000) provide the theory column that the
//! measured heating rates of experiment E8 are compared against, and the
//! timescale arguments behind the paper's §3 requirements.

use crate::profile::RadialProfile;
use grape6_core::units;
use serde::{Deserialize, Serialize};

/// Local disk state around a radius `r`, sufficient for rate estimates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalDisk {
    /// Heliocentric radius (AU).
    pub r: f64,
    /// Solid surface mass density (M_sun / AU²).
    pub sigma: f64,
    /// Typical planetesimal mass (M_sun).
    pub m: f64,
    /// RMS eccentricity of the population.
    pub rms_e: f64,
    /// RMS inclination (rad).
    pub rms_i: f64,
}

impl LocalDisk {
    /// Build from a [`RadialProfile`] with total ring mass `m_total`.
    pub fn from_profile(
        profile: &RadialProfile,
        m_total: f64,
        m: f64,
        rms_e: f64,
        rms_i: f64,
        r: f64,
    ) -> Self {
        Self { r, sigma: profile.sigma(r, m_total), m, rms_e, rms_i }
    }

    /// Keplerian angular frequency at `r`.
    pub fn omega(&self) -> f64 {
        units::kepler_omega(self.r, 1.0)
    }

    /// Random (epicyclic) velocity dispersion: v ≈ √(e² + i²) v_K.
    pub fn velocity_dispersion(&self) -> f64 {
        (self.rms_e * self.rms_e + self.rms_i * self.rms_i).sqrt()
            * units::circular_speed(self.r, 1.0)
    }

    /// Disk scale height h ≈ i · r.
    pub fn scale_height(&self) -> f64 {
        (self.rms_i * self.r).max(1e-12)
    }

    /// Spatial number density n ≈ Σ / (2 h m).
    pub fn number_density(&self) -> f64 {
        self.sigma / (2.0 * self.scale_height() * self.m)
    }

    /// Coulomb logarithm ln Λ with Λ ≈ (v² + v_esc²) h / (G m) — clamped to
    /// ≥ 1 (order-unity encounters).
    pub fn coulomb_log(&self) -> f64 {
        let v2 = self.velocity_dispersion().powi(2);
        (v2 * self.scale_height() / self.m).max(std::f64::consts::E).ln()
    }

    /// Two-body relaxation time
    /// `t_relax ≈ v³ / (4π G² m² n ln Λ)` (G = 1).
    pub fn relaxation_time(&self) -> f64 {
        let v = self.velocity_dispersion();
        v.powi(3)
            / (4.0
                * std::f64::consts::PI
                * self.m
                * self.m
                * self.number_density()
                * self.coulomb_log())
    }

    /// Stirring rate d⟨e²⟩/dt ≈ ⟨e²⟩ / t_relax (heating doubles the random
    /// energy on the relaxation timescale).
    pub fn e2_stirring_rate(&self) -> f64 {
        self.rms_e * self.rms_e / self.relaxation_time()
    }

    /// Characteristic eccentricity kick per conjunction with a protoplanet
    /// of mass `m_p` at impact parameter `b` (AU), in the dispersion-
    /// dominated regime: Δe ≈ C · (m_p / M_sun) · r³ / b³ · … reduced to the
    /// standard scaling Δe ≈ 6.7 (m_p a² / b²)^(…); we use the impulse
    /// approximation Δv/v_K ≈ 2 G m_p / (b · v_rel · v_K) with
    /// v_rel = (3/2) Ω b (Keplerian shear).
    pub fn protoplanet_kick(&self, m_p: f64, b: f64) -> f64 {
        assert!(b > 0.0);
        let shear = 1.5 * self.omega() * b;
        let dv = 2.0 * m_p / (b * shear);
        dv / units::circular_speed(self.r, 1.0)
    }

    /// Feeding-zone half-width of a protoplanet of mass `m_p` at `a`:
    /// ≈ 2√3 Hill radii (the classic chaotic-zone extent).
    pub fn feeding_zone_half_width(a: f64, m_p: f64) -> f64 {
        2.0 * 3.0f64.sqrt() * units::hill_radius(a, m_p, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_local(m: f64) -> LocalDisk {
        LocalDisk::from_profile(
            &RadialProfile::paper(),
            9e-5, // ≈ 29 M_earth ring
            m,
            0.01,
            0.005,
            25.0,
        )
    }

    #[test]
    fn relaxation_time_scales_inversely_with_mass() {
        // t_relax ∝ 1/(m² n) = 1/(m² · Σ/(2hm)) ∝ 1/m at fixed Σ (modulo
        // the slowly varying ln Λ).
        let t1 = paper_local(1e-10).relaxation_time();
        let t2 = paper_local(1e-9).relaxation_time();
        let ratio = t1 / t2;
        assert!(ratio > 6.0 && ratio < 14.0, "t_relax ratio {ratio} (expect ≈10)");
    }

    #[test]
    fn relaxation_time_scales_steeply_with_dispersion() {
        // t_relax ∝ v³ at fixed geometry… with h = i·r fixed here, doubling
        // (e, i) also doubles h → n halves → t ∝ v³·h ∝ v⁴.
        let cold = paper_local(1e-10);
        let mut hot = cold;
        hot.rms_e *= 2.0;
        hot.rms_i *= 2.0;
        let ratio = hot.relaxation_time() / cold.relaxation_time();
        assert!(ratio > 10.0 && ratio < 25.0, "ratio {ratio} (expect ≈16 modulo lnΛ)");
    }

    #[test]
    fn production_disk_relaxation_exceeds_orbital_period() {
        // §3's premise: mutual relaxation must be *slow* compared to the
        // orbital time (else protoplanet effects are masked).
        let d = paper_local(5e-11); // production-class planetesimal mass
        let p_orb = units::orbital_period(25.0, 1.0);
        assert!(
            d.relaxation_time() > 100.0 * p_orb,
            "t_relax = {} vs P = {p_orb}",
            d.relaxation_time()
        );
    }

    #[test]
    fn rescaled_disks_relax_much_faster() {
        // Why E2/E8 must keep production masses: concentrating the ring mass
        // in ~10³ bodies shortens t_relax by orders of magnitude.
        let production = paper_local(5e-11);
        let rescaled = paper_local(9e-5 / 2048.0);
        // t_relax ∝ 1/(m ln Λ) at fixed Σ: the ×880 mass ratio shortens the
        // relaxation time by a few hundred.
        let ratio = production.relaxation_time() / rescaled.relaxation_time();
        assert!(ratio > 100.0, "ratio {ratio}");
    }

    #[test]
    fn stirring_rate_is_e2_over_t_relax() {
        let d = paper_local(1e-9);
        let rate = d.e2_stirring_rate();
        assert!((rate * d.relaxation_time() - d.rms_e * d.rms_e).abs() < 1e-18);
        assert!(rate > 0.0);
    }

    #[test]
    fn protoplanet_kick_falls_with_impact_parameter() {
        let d = paper_local(1e-10);
        let m_p = 3e-5;
        let k1 = d.protoplanet_kick(m_p, 1.0);
        let k2 = d.protoplanet_kick(m_p, 2.0);
        // Impulse with shear: Δe ∝ b⁻².
        assert!((k1 / k2 - 4.0).abs() < 0.01, "{}", k1 / k2);
        // A grazing (1 Hill radius) encounter with the protoplanet excites
        // e of order the Hill eccentricity — a strong kick.
        let rh = units::hill_radius(20.0, m_p, 1.0);
        assert!(d.protoplanet_kick(m_p, rh) > 0.01);
    }

    #[test]
    fn feeding_zone_matches_e2_probe_band() {
        // The E2 experiment probes at ±2.2 r_H; the chaotic-zone estimate
        // 2√3 ≈ 3.46 r_H brackets it.
        let hw = LocalDisk::feeding_zone_half_width(20.0, 3e-4);
        let rh = units::hill_radius(20.0, 3e-4, 1.0);
        assert!(hw / rh > 3.0 && hw / rh < 4.0);
    }

    #[test]
    fn coulomb_log_is_order_ten() {
        let d = paper_local(1e-10);
        let lnl = d.coulomb_log();
        assert!(lnl > 3.0 && lnl < 30.0, "ln Λ = {lnl}");
    }
}
