//! The radial structure of the planetesimal ring (paper §2): surface mass
//! density `Σ(r) ∝ r^-1.5` between 15 and 35 AU, "consistent with the
//! standard Solar nebula model" (Hayashi 1981).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A power-law surface-density profile `Σ ∝ r^q` on an annulus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadialProfile {
    /// Surface-density exponent `q` (−1.5 in the paper).
    pub exponent: f64,
    /// Inner edge (AU).
    pub r_in: f64,
    /// Outer edge (AU).
    pub r_out: f64,
}

impl RadialProfile {
    /// The paper's ring: Σ ∝ r^-1.5 from 15 to 35 AU.
    pub fn paper() -> Self {
        Self {
            exponent: grape6_core::units::paper::SIGMA_EXPONENT,
            r_in: grape6_core::units::paper::RING_INNER,
            r_out: grape6_core::units::paper::RING_OUTER,
        }
    }

    /// Create a profile, validating the annulus.
    pub fn new(exponent: f64, r_in: f64, r_out: f64) -> Self {
        assert!(r_in > 0.0 && r_out > r_in, "need 0 < r_in < r_out");
        Self { exponent, r_in, r_out }
    }

    /// Draw a radius with probability ∝ 2π r Σ(r) dr (mass-weighted, which
    /// for equal-mass tracers is the right particle weighting).
    pub fn sample_radius<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let q2 = self.exponent + 2.0;
        if q2.abs() < 1e-12 {
            (self.r_in.ln() + u * (self.r_out / self.r_in).ln()).exp()
        } else {
            let a = self.r_in.powf(q2);
            let b = self.r_out.powf(q2);
            (a + u * (b - a)).powf(1.0 / q2)
        }
    }

    /// Fraction of the ring's mass inside radius `r`.
    pub fn mass_fraction_within(&self, r: f64) -> f64 {
        let r = r.clamp(self.r_in, self.r_out);
        let q2 = self.exponent + 2.0;
        if q2.abs() < 1e-12 {
            (r / self.r_in).ln() / (self.r_out / self.r_in).ln()
        } else {
            (r.powf(q2) - self.r_in.powf(q2)) / (self.r_out.powf(q2) - self.r_in.powf(q2))
        }
    }

    /// Surface density at `r` for a ring of total mass `m_total`.
    pub fn sigma(&self, r: f64, m_total: f64) -> f64 {
        let q2 = self.exponent + 2.0;
        let norm = if q2.abs() < 1e-12 {
            (self.r_out / self.r_in).ln()
        } else {
            (self.r_out.powf(q2) - self.r_in.powf(q2)) / q2
        };
        m_total / (std::f64::consts::TAU * norm) * r.powf(self.exponent)
    }

    /// Width of the annulus.
    pub fn width(&self) -> f64 {
        self.r_out - self.r_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_annulus() {
        let p = RadialProfile::paper();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let r = p.sample_radius(&mut rng);
            assert!(r >= p.r_in && r <= p.r_out);
        }
    }

    #[test]
    fn median_radius_matches_analytic() {
        let p = RadialProfile::paper();
        let mut rng = StdRng::seed_from_u64(5);
        let mut rs: Vec<f64> = (0..100_001).map(|_| p.sample_radius(&mut rng)).collect();
        rs.sort_by(f64::total_cmp);
        let median = rs[rs.len() / 2];
        // Analytic median: mass_fraction_within(median) = 0.5.
        let f = p.mass_fraction_within(median);
        assert!((f - 0.5).abs() < 0.01, "median {median} has mass fraction {f}");
    }

    #[test]
    fn mass_fraction_endpoints() {
        let p = RadialProfile::paper();
        assert_eq!(p.mass_fraction_within(p.r_in), 0.0);
        assert_eq!(p.mass_fraction_within(p.r_out), 1.0);
        assert_eq!(p.mass_fraction_within(5.0), 0.0); // clamped
    }

    #[test]
    fn sigma_follows_power_law() {
        let p = RadialProfile::paper();
        let m = 3e-4;
        let ratio = p.sigma(30.0, m) / p.sigma(20.0, m);
        assert!((ratio - (30.0f64 / 20.0).powf(-1.5)).abs() < 1e-12);
    }

    #[test]
    fn sigma_integrates_to_total_mass() {
        let p = RadialProfile::paper();
        let m = 3e-4;
        // ∫ 2π r Σ dr over the annulus by midpoint rule.
        let n = 10_000;
        let dr = p.width() / n as f64;
        let total: f64 = (0..n)
            .map(|k| {
                let r = p.r_in + (k as f64 + 0.5) * dr;
                std::f64::consts::TAU * r * p.sigma(r, m) * dr
            })
            .sum();
        assert!((total - m).abs() / m < 1e-4, "integrated {total:e}");
    }

    #[test]
    fn inner_disk_holds_more_mass_per_annulus() {
        // Σ ∝ r^-1.5 ⇒ dm/dr ∝ r^-0.5: inner half of the annulus holds more
        // than half the mass... by mass fraction at midpoint.
        let p = RadialProfile::paper();
        let mid = 0.5 * (p.r_in + p.r_out);
        assert!(p.mass_fraction_within(mid) > 0.5);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_annulus() {
        RadialProfile::new(-1.5, 35.0, 15.0);
    }
}
