//! Assembly of the initial conditions of paper §2: a ring of planetesimals
//! with a power-law mass spectrum and r^-1.5 surface density, dynamically
//! cold (Rayleigh-distributed eccentricities and inclinations), plus two
//! massive protoplanets — proto-Uranus at 20 AU and proto-Neptune at 30 AU —
//! on non-inclined circular orbits.

use crate::massfn::PowerLawMass;
use crate::profile::RadialProfile;
use grape6_core::kepler::{elements_to_state, Elements};
use grape6_core::particle::ParticleSystem;
use grape6_core::units;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Draw from a Rayleigh distribution with RMS value `rms` by inverse-CDF
/// sampling: `x = σ √(−2 ln u)` with `σ = rms/√2`, so that `<x²> = rms²`.
/// (Eccentricities and inclinations of a relaxed planetesimal disk follow a
/// Rayleigh distribution.)
fn sample_rayleigh<R: Rng + ?Sized>(rng: &mut R, rms: f64) -> f64 {
    assert!(rms > 0.0, "Rayleigh rms must be positive");
    let sigma = rms / std::f64::consts::SQRT_2;
    let u: f64 = 1.0 - rng.gen::<f64>(); // in (0, 1]
    sigma * (-2.0 * u.ln()).sqrt()
}

/// A protoplanet to embed in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Protoplanet {
    /// Semi-major axis (AU).
    pub a: f64,
    /// Mass (M_sun).
    pub mass: f64,
    /// Initial mean anomaly (rad).
    pub mean_anomaly: f64,
}

/// Builder for the planetesimal-disk initial conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskBuilder {
    /// Number of planetesimals.
    pub n: usize,
    /// Radial profile of the ring.
    pub profile: RadialProfile,
    /// Mass function of the planetesimals.
    pub mass_fn: PowerLawMass,
    /// Total planetesimal mass; individual draws are rescaled to hit it
    /// exactly (0 disables rescaling).
    pub total_mass: f64,
    /// RMS eccentricity of the initial (Rayleigh) distribution.
    pub sigma_e: f64,
    /// RMS inclination (rad); the standard equilibrium ratio is σ_i = σ_e/2.
    pub sigma_i: f64,
    /// Plummer softening applied to all pairwise interactions (AU).
    pub softening: f64,
    /// Embedded protoplanets.
    pub protoplanets: Vec<Protoplanet>,
    /// RNG seed (fixed for reproducibility).
    pub seed: u64,
}

impl DiskBuilder {
    /// The paper's configuration scaled to `n` planetesimals: the ring keeps
    /// its total mass (≈29 M_earth, the Hayashi-nebula integral) and
    /// geometry; only the granularity changes.
    pub fn paper(n: usize) -> Self {
        let mass_fn = PowerLawMass::paper();
        Self {
            n,
            profile: RadialProfile::paper(),
            mass_fn,
            total_mass: mass_fn.mean() * units::paper::N_PLANETESIMALS as f64,
            sigma_e: 0.01,
            sigma_i: 0.005,
            softening: units::paper::SOFTENING,
            protoplanets: vec![
                Protoplanet {
                    a: units::paper::A_PROTO_URANUS,
                    mass: units::paper::M_PROTOPLANET,
                    mean_anomaly: 0.0,
                },
                Protoplanet {
                    a: units::paper::A_PROTO_NEPTUNE,
                    mass: units::paper::M_PROTOPLANET,
                    mean_anomaly: std::f64::consts::PI,
                },
            ],
            seed: 20021116, // SC2002 conference date
        }
    }

    /// Replace the seed (chainable).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Drop the protoplanets (pure relaxation experiments).
    pub fn without_protoplanets(mut self) -> Self {
        self.protoplanets.clear();
        self
    }

    /// Generate the particle system. Protoplanets occupy the *last* indices
    /// (ids `n`, `n+1`, …); planetesimals are `0..n`.
    pub fn build(&self) -> ParticleSystem {
        assert!(self.n > 0, "empty disk");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut sys = ParticleSystem::new(self.softening, units::M_SUN);

        let mut masses: Vec<f64> = (0..self.n).map(|_| self.mass_fn.sample(&mut rng)).collect();
        if self.total_mass > 0.0 {
            let sum: f64 = masses.iter().sum();
            let scale = self.total_mass / sum;
            for m in &mut masses {
                *m *= scale;
            }
        }

        for &m in &masses {
            let a = self.profile.sample_radius(&mut rng);
            let e: f64 = sample_rayleigh(&mut rng, self.sigma_e).min(0.9);
            let inc: f64 = sample_rayleigh(&mut rng, self.sigma_i).min(0.5);
            let el = Elements {
                a,
                e,
                inc,
                node: rng.gen::<f64>() * std::f64::consts::TAU,
                peri: rng.gen::<f64>() * std::f64::consts::TAU,
                mean_anomaly: rng.gen::<f64>() * std::f64::consts::TAU,
            };
            let (pos, vel) = elements_to_state(&el, units::M_SUN);
            sys.push(pos, vel, m);
        }
        for p in &self.protoplanets {
            let el = Elements::circular(p.a, p.mean_anomaly);
            let (pos, vel) = elements_to_state(&el, units::M_SUN);
            sys.push(pos, vel, p.mass);
        }
        sys
    }

    /// Indices of the protoplanets in the built system.
    pub fn protoplanet_indices(&self) -> std::ops::Range<usize> {
        self.n..self.n + self.protoplanets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::kepler::state_to_elements;

    fn small_disk() -> DiskBuilder {
        DiskBuilder::paper(500)
    }

    #[test]
    fn builds_requested_counts() {
        let b = small_disk();
        let sys = b.build();
        assert_eq!(sys.len(), 502);
        assert_eq!(b.protoplanet_indices(), 500..502);
        assert!(sys.validate().is_ok());
    }

    #[test]
    fn total_mass_is_paper_scale() {
        let b = small_disk();
        let sys = b.build();
        let m_ring: f64 = sys.mass[..500].iter().sum();
        let earths = m_ring / units::M_EARTH;
        assert!(earths > 15.0 && earths < 60.0, "ring mass {earths} M_earth");
        // Exact rescaling:
        assert!((m_ring - b.total_mass).abs() / b.total_mass < 1e-12);
    }

    #[test]
    fn protoplanets_on_circular_coplanar_orbits() {
        let sys = small_disk().build();
        for i in [500, 501] {
            let el = state_to_elements(sys.pos[i], sys.vel[i], 1.0);
            assert!(el.e < 1e-10, "protoplanet e = {}", el.e);
            assert!(el.inc.abs() < 1e-10);
            assert!(sys.pos[i].z.abs() < 1e-12);
        }
        let a0 = sys.pos[500].norm();
        let a1 = sys.pos[501].norm();
        assert!((a0 - 20.0).abs() < 1e-9);
        assert!((a1 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn planetesimals_within_annulus() {
        let sys = small_disk().build();
        for i in 0..500 {
            let el = state_to_elements(sys.pos[i], sys.vel[i], 1.0);
            assert!(el.a >= 15.0 - 1e-9 && el.a <= 35.0 + 1e-9, "a = {}", el.a);
            assert!(el.is_bound());
        }
    }

    #[test]
    fn disk_is_dynamically_cold() {
        let b = small_disk();
        let sys = b.build();
        let mut e2 = 0.0;
        let mut i2 = 0.0;
        for i in 0..500 {
            let el = state_to_elements(sys.pos[i], sys.vel[i], 1.0);
            e2 += el.e * el.e;
            i2 += el.inc * el.inc;
        }
        let rms_e = (e2 / 500.0).sqrt();
        let rms_i = (i2 / 500.0).sqrt();
        assert!((rms_e - b.sigma_e).abs() / b.sigma_e < 0.15, "rms e {rms_e}");
        assert!((rms_i - b.sigma_i).abs() / b.sigma_i < 0.15, "rms i {rms_i}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_disk().build();
        let b = small_disk().build();
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.vel, b.vel);
        assert_eq!(a.mass, b.mass);
        let c = small_disk().with_seed(1).build();
        assert_ne!(a.pos, c.pos);
    }

    #[test]
    fn without_protoplanets_drops_them() {
        let sys = small_disk().without_protoplanets().build();
        assert_eq!(sys.len(), 500);
        // With the ring mass held fixed, 500 bodies are individually heavier
        // than the production planetesimals, but still well below a
        // protoplanet.
        let m_max = sys.mass.iter().cloned().fold(0.0, f64::max);
        assert!(m_max < units::paper::M_PROTOPLANET, "found {m_max}");
    }

    #[test]
    fn softening_matches_paper() {
        let sys = small_disk().build();
        assert_eq!(sys.softening, 0.008);
        assert_eq!(sys.central_mass, 1.0);
    }

    #[test]
    fn hill_radius_dwarfs_softening() {
        // §2's consistency requirement on the chosen protoplanet mass.
        let b = small_disk();
        for p in &b.protoplanets {
            let rh = units::hill_radius(p.a, p.mass, 1.0);
            assert!(rh / b.softening > 50.0);
        }
    }
}
