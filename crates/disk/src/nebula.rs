//! The Hayashi (1981) minimum-mass solar nebula — the paper's reference for
//! "the amount of planetesimals is consistent with the standard Solar nebula
//! model" (§2, citing Hayashi 1981).
//!
//! Hayashi's model: gas surface density Σ_gas = 1700 (r/AU)^-3/2 g/cm²,
//! solid (dust/ice) surface density
//!
//! * rocky, inside the snow line (2.7 AU): Σ_d = 7.1 (r/AU)^-3/2 g/cm²,
//! * icy, outside:                          Σ_d = 30  (r/AU)^-3/2 g/cm²,
//!
//! with temperature T = 280 (r/AU)^-1/2 K. The planetesimal ring of the
//! paper (15–35 AU, Σ ∝ r^-1.5) is the icy branch of this model; the tests
//! here verify our disk totals are Hayashi-consistent.

use serde::{Deserialize, Serialize};

/// Conversion: 1 g/cm² expressed in M_sun/AU².
/// (1 AU = 1.495979×10¹³ cm, M_sun = 1.989×10³³ g →
/// 1 g/cm² × AU²/M_sun = 1.125×10⁻⁷.)
pub const GCM2_TO_MSUN_AU2: f64 = 1.1253e-7;

/// The Hayashi nebula profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HayashiNebula {
    /// Solid surface density coefficient inside the snow line (g/cm² at 1 AU).
    pub sigma_rock: f64,
    /// Solid surface density coefficient outside the snow line (g/cm² at 1 AU).
    pub sigma_ice: f64,
    /// Gas surface density coefficient (g/cm² at 1 AU).
    pub sigma_gas: f64,
    /// Snow line radius (AU).
    pub snow_line: f64,
}

impl Default for HayashiNebula {
    fn default() -> Self {
        Self { sigma_rock: 7.1, sigma_ice: 30.0, sigma_gas: 1700.0, snow_line: 2.7 }
    }
}

impl HayashiNebula {
    /// Solid surface density at radius `r` AU, in M_sun/AU².
    pub fn sigma_solid(&self, r: f64) -> f64 {
        assert!(r > 0.0);
        let coeff = if r < self.snow_line { self.sigma_rock } else { self.sigma_ice };
        coeff * r.powf(-1.5) * GCM2_TO_MSUN_AU2
    }

    /// Gas surface density at radius `r` AU, in M_sun/AU².
    pub fn sigma_gas_at(&self, r: f64) -> f64 {
        assert!(r > 0.0);
        self.sigma_gas * r.powf(-1.5) * GCM2_TO_MSUN_AU2
    }

    /// Midplane temperature (K) at radius `r` AU.
    pub fn temperature(&self, r: f64) -> f64 {
        280.0 * r.powf(-0.5)
    }

    /// Solid mass between `r_in` and `r_out` (AU), in M_sun:
    /// ∫ 2πr Σ dr with Σ ∝ r^-3/2 → 4π Σ₁ (√r_out − √r_in) per branch.
    pub fn solid_mass(&self, r_in: f64, r_out: f64) -> f64 {
        assert!(r_out > r_in && r_in > 0.0);
        let branch = |coeff: f64, a: f64, b: f64| -> f64 {
            4.0 * std::f64::consts::PI * coeff * GCM2_TO_MSUN_AU2 * (b.sqrt() - a.sqrt())
        };
        let mut m = 0.0;
        if r_in < self.snow_line {
            m += branch(self.sigma_rock, r_in, r_out.min(self.snow_line));
        }
        if r_out > self.snow_line {
            m += branch(self.sigma_ice, r_in.max(self.snow_line), r_out);
        }
        m
    }

    /// Solid mass of the paper's ring (15–35 AU), in Earth masses.
    pub fn paper_ring_mass_earths(&self) -> f64 {
        self.solid_mass(
            grape6_core::units::paper::RING_INNER,
            grape6_core::units::paper::RING_OUTER,
        ) / grape6_core::units::M_EARTH
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_density_follows_r_minus_three_halves() {
        let n = HayashiNebula::default();
        let ratio = n.sigma_solid(20.0) / n.sigma_solid(30.0);
        assert!((ratio - (30.0f64 / 20.0).powf(1.5)).abs() < 1e-12);
    }

    #[test]
    fn snow_line_jump() {
        let n = HayashiNebula::default();
        let inside = n.sigma_solid(2.69);
        let outside = n.sigma_solid(2.71);
        // ×(30/7.1) jump modulo the tiny r change.
        assert!(outside / inside > 4.0 && outside / inside < 4.5);
    }

    #[test]
    fn gas_to_solid_ratio_is_hayashi() {
        let n = HayashiNebula::default();
        let ratio = n.sigma_gas_at(10.0) / n.sigma_solid(10.0);
        assert!((ratio - 1700.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_at_earth_is_280k() {
        let n = HayashiNebula::default();
        assert_eq!(n.temperature(1.0), 280.0);
        assert!(n.temperature(30.0) < 60.0); // icy outer disk
    }

    #[test]
    fn paper_ring_holds_of_order_100_earth_masses() {
        // §2: "The amount of planetesimals is consistent with the standard
        // Solar nebula model" — the 15–35 AU icy annulus holds ~100 M_earth.
        let n = HayashiNebula::default();
        let earths = n.paper_ring_mass_earths();
        assert!(earths > 20.0 && earths < 45.0, "{earths} M_earth");
    }

    #[test]
    fn disk_builder_total_is_hayashi_consistent() {
        // The DiskBuilder's default ring mass must agree with the nebula
        // integral within a factor ~2 (the paper's own level of precision).
        let n = HayashiNebula::default();
        let nebula = n.solid_mass(15.0, 35.0);
        let builder = crate::DiskBuilder::paper(1000);
        let ratio = builder.total_mass / nebula;
        assert!(ratio > 0.5 && ratio < 2.0, "builder/nebula mass ratio {ratio}");
    }

    #[test]
    fn mass_integral_additivity() {
        let n = HayashiNebula::default();
        let whole = n.solid_mass(1.0, 35.0);
        let parts = n.solid_mass(1.0, 15.0) + n.solid_mass(15.0, 35.0);
        assert!((whole - parts).abs() < 1e-15);
        // Across the snow line too.
        let across = n.solid_mass(2.0, 4.0);
        let split = n.solid_mass(2.0, 2.7) + n.solid_mass(2.7, 4.0);
        assert!((across - split).abs() < 1e-15);
    }
}
