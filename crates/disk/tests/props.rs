//! Property-based tests on the disk generators.

use grape6_core::kepler::state_to_elements;
use grape6_disk::{DiskBuilder, PowerLawMass, RadialProfile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mass_samples_respect_cutoffs(
        seed in 0u64..10_000,
        exp in -3.5..-1.2f64,
        lo_log in -12.0..-8.0f64,
        span in 0.5..3.0f64,
    ) {
        let lo = 10.0f64.powf(lo_log);
        let hi = lo * 10.0f64.powf(span);
        let d = PowerLawMass::new(exp, lo, hi);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let m = d.sample(&mut rng);
            prop_assert!(m >= lo && m <= hi);
        }
        let mean = d.mean();
        prop_assert!(mean >= lo && mean <= hi);
    }

    #[test]
    fn fraction_above_bounds_and_monotonicity(
        exp in -3.5..-1.2f64,
        m1 in 0.0..1.0f64,
        m2 in 0.0..1.0f64,
    ) {
        let d = PowerLawMass::new(exp, 1e-10, 1e-8);
        let a = d.lo * (d.hi / d.lo).powf(m1);
        let b = d.lo * (d.hi / d.lo).powf(m2);
        let fa = d.fraction_above(a);
        let fb = d.fraction_above(b);
        prop_assert!((0.0..=1.0).contains(&fa));
        if a <= b {
            prop_assert!(fa >= fb - 1e-12);
        }
    }

    #[test]
    fn radius_samples_respect_annulus(
        seed in 0u64..10_000,
        exp in -2.5..0.0f64,
        r_in in 5.0..20.0f64,
        width in 1.0..30.0f64,
    ) {
        let p = RadialProfile::new(exp, r_in, r_in + width);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let r = p.sample_radius(&mut rng);
            prop_assert!(r >= p.r_in && r <= p.r_out);
        }
    }

    #[test]
    fn mass_fraction_is_a_cdf(exp in -2.5..0.0f64, x in 0.0..1.0f64, y in 0.0..1.0f64) {
        let p = RadialProfile::new(exp, 15.0, 35.0);
        let rx = 15.0 + 20.0 * x;
        let ry = 15.0 + 20.0 * y;
        let fx = p.mass_fraction_within(rx);
        prop_assert!((0.0..=1.0).contains(&fx));
        if rx <= ry {
            prop_assert!(fx <= p.mass_fraction_within(ry) + 1e-12);
        }
    }

    #[test]
    fn built_disks_are_valid_and_bound(seed in 0u64..500, n in 16usize..128) {
        let b = DiskBuilder::paper(n).with_seed(seed);
        let sys = b.build();
        prop_assert!(sys.validate().is_ok());
        prop_assert_eq!(sys.len(), n + 2);
        for i in 0..sys.len() {
            let el = state_to_elements(sys.pos[i], sys.vel[i], 1.0);
            prop_assert!(el.is_bound(), "particle {i} unbound: a = {}", el.a);
            prop_assert!(el.e < 0.95);
        }
        // Ring mass is rescaled exactly.
        let ring: f64 = sys.mass[..n].iter().sum();
        prop_assert!((ring - b.total_mass).abs() <= 1e-9 * b.total_mass);
    }

    #[test]
    fn disk_build_is_deterministic(seed in 0u64..500) {
        let a = DiskBuilder::paper(32).with_seed(seed).build();
        let b = DiskBuilder::paper(32).with_seed(seed).build();
        prop_assert_eq!(a.pos, b.pos);
        prop_assert_eq!(a.vel, b.vel);
        prop_assert_eq!(a.mass, b.mass);
    }
}
