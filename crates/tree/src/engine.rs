//! The tree code as a [`ForceEngine`], so the same block-timestep host code
//! can drive it for the §3 cost comparison.
//!
//! The crucial (and intentional) inefficiency: a tree must be rebuilt from
//! predicted positions whenever forces are needed at a new time. Under
//! shared timesteps the O(N log N) build amortizes over N force evaluations;
//! under *individual* timesteps a block of a few dozen particles pays the
//! same O(N log N) build — exactly why the paper uses direct summation on
//! special hardware instead.

use crate::octree::Octree;
use grape6_core::engine::{ForceEngine, TreeWork};
use grape6_core::particle::{ForceResult, IParticle, ParticleSystem};
use grape6_core::vec3::Vec3;
use rayon::prelude::*;

/// Barnes-Hut force engine.
#[derive(Debug, Clone)]
pub struct TreeEngine {
    /// Opening angle θ of the multipole acceptance criterion.
    pub theta: f64,
    jpos: Vec<Vec3>,
    jvel: Vec<Vec3>,
    jacc: Vec<Vec3>,
    jjerk: Vec<Vec3>,
    jmass: Vec<f64>,
    jtime: Vec<f64>,
    eps2: f64,
    interactions: u64,
    builds: u64,
    last_tree_time: Option<f64>,
    tree: Option<Octree>,
}

impl TreeEngine {
    /// Create an engine with opening angle `theta` (0.3–1.0 typical).
    pub fn new(theta: f64) -> Self {
        assert!(theta >= 0.0, "theta must be non-negative");
        Self {
            theta,
            jpos: Vec::new(),
            jvel: Vec::new(),
            jacc: Vec::new(),
            jjerk: Vec::new(),
            jmass: Vec::new(),
            jtime: Vec::new(),
            eps2: 0.0,
            interactions: 0,
            builds: 0,
            last_tree_time: None,
            tree: None,
        }
    }

    /// Trees built since the last counter reset.
    ///
    /// This is a deterministic work counter, not a clock. Wall time spent in
    /// `rebuild` is charged to the `Force` phase span that the host's
    /// `StepObserver`/`Telemetry` opens around every `compute` call — the
    /// engine itself never reads a clock (grape6-lint rule D002).
    pub fn build_count(&self) -> u64 {
        self.builds
    }

    fn rebuild(&mut self, t: f64) {
        let n = self.jpos.len();
        let mut pos = vec![Vec3::zero(); n];
        let mut vel = vec![Vec3::zero(); n];
        pos.par_iter_mut().zip(vel.par_iter_mut()).enumerate().for_each(|(j, (pp, pv))| {
            let dt = t - self.jtime[j];
            let dt2 = dt * dt;
            *pp = self.jpos[j]
                + self.jvel[j] * dt
                + self.jacc[j] * (dt2 / 2.0)
                + self.jjerk[j] * (dt2 * dt / 6.0);
            *pv = self.jvel[j] + self.jacc[j] * dt + self.jjerk[j] * (dt2 / 2.0);
        });
        self.tree = Some(Octree::build(&pos, &vel, &self.jmass));
        self.last_tree_time = Some(t);
        self.builds += 1;
    }
}

impl ForceEngine for TreeEngine {
    fn load(&mut self, sys: &ParticleSystem) {
        self.jpos = sys.pos.clone();
        self.jvel = sys.vel.clone();
        self.jacc = sys.acc.clone();
        self.jjerk = sys.jerk.clone();
        self.jmass = sys.mass.clone();
        self.jtime = sys.time.clone();
        self.eps2 = sys.softening * sys.softening;
        self.tree = None;
        self.last_tree_time = None;
    }

    fn update_j(&mut self, sys: &ParticleSystem, indices: &[usize]) {
        for &i in indices {
            self.jpos[i] = sys.pos[i];
            self.jvel[i] = sys.vel[i];
            self.jacc[i] = sys.acc[i];
            self.jjerk[i] = sys.jerk[i];
            self.jmass[i] = sys.mass[i];
            self.jtime[i] = sys.time[i];
        }
        // Any update invalidates the tree (bodies moved).
        self.tree = None;
        self.last_tree_time = None;
    }

    fn compute(&mut self, t: f64, ips: &[IParticle], out: &mut [ForceResult]) {
        assert_eq!(ips.len(), out.len());
        if self.last_tree_time != Some(t) || self.tree.is_none() {
            self.rebuild(t);
        }
        let tree = self.tree.as_ref().expect("tree built above");
        let theta = self.theta;
        let eps2 = self.eps2;
        let evals: u64 = out
            .par_iter_mut()
            .zip(ips.par_iter())
            .map(|(o, ip)| {
                let f = tree.force_on(ip.pos, ip.vel, theta, eps2, ip.index as u32);
                // The tree does not track nearest neighbours (one more thing
                // the hardware gives for free and the baseline lacks).
                *o = ForceResult { acc: f.acc, jerk: f.jerk, pot: f.pot, nn: None };
                f.evaluations
            })
            .sum();
        self.interactions += evals;
    }

    fn interaction_count(&self) -> u64 {
        self.interactions
    }

    fn reset_counters(&mut self) {
        self.interactions = 0;
        self.builds = 0;
    }

    fn tree_work(&self) -> Option<TreeWork> {
        // The plain Barnes-Hut walk evaluates everything through the tree:
        // no neighbour lists, so the whole count reports as far-field.
        Some(TreeWork {
            builds: self.builds,
            far_interactions: self.interactions,
            ..TreeWork::default()
        })
    }

    fn name(&self) -> &'static str {
        "barnes-hut"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::force::DirectEngine;

    fn plummer_like(n: usize) -> ParticleSystem {
        let mut sys = ParticleSystem::new(0.01, 0.0);
        let mut state = 99u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 0..n {
            sys.push(
                Vec3::new(rng(), rng(), rng()) * 10.0,
                Vec3::new(rng(), rng(), rng()) * 0.3,
                1.0 / n as f64,
            );
        }
        sys
    }

    fn ips_all(sys: &ParticleSystem) -> Vec<IParticle> {
        (0..sys.len()).map(|i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect()
    }

    #[test]
    fn tree_engine_approximates_direct() {
        let sys = plummer_like(1000);
        let mut tree = TreeEngine::new(0.4);
        let mut direct = DirectEngine::new();
        tree.load(&sys);
        direct.load(&sys);
        let ips = ips_all(&sys);
        let mut out_t = vec![ForceResult::default(); ips.len()];
        let mut out_d = vec![ForceResult::default(); ips.len()];
        tree.compute(0.0, &ips, &mut out_t);
        direct.compute(0.0, &ips, &mut out_d);
        let mut worst: f64 = 0.0;
        for k in 0..ips.len() {
            worst = worst.max((out_t[k].acc - out_d[k].acc).norm() / out_d[k].acc.norm());
        }
        assert!(worst < 0.05, "worst rel error {worst}");
    }

    #[test]
    fn tree_does_fewer_evaluations() {
        let sys = plummer_like(4000);
        let mut tree = TreeEngine::new(0.7);
        tree.load(&sys);
        let ips = ips_all(&sys);
        let mut out = vec![ForceResult::default(); ips.len()];
        tree.compute(0.0, &ips, &mut out);
        let direct_cost = (sys.len() as u64) * (sys.len() as u64);
        assert!(
            tree.interaction_count() < direct_cost / 3,
            "tree evals {} not ≪ N² = {direct_cost}",
            tree.interaction_count()
        );
    }

    #[test]
    fn tree_rebuilds_only_when_time_changes() {
        let sys = plummer_like(200);
        let mut tree = TreeEngine::new(0.5);
        tree.load(&sys);
        let ips = ips_all(&sys);
        let mut out = vec![ForceResult::default(); ips.len()];
        tree.compute(0.0, &ips, &mut out);
        tree.compute(0.0, &ips[..10], &mut out[..10].to_vec());
        assert_eq!(tree.build_count(), 1, "same-time calls must share the tree");
        tree.compute(0.5, &ips[..10], &mut out[..10]);
        assert_eq!(tree.build_count(), 2);
    }

    #[test]
    fn update_invalidates_tree() {
        let mut sys = plummer_like(100);
        let mut tree = TreeEngine::new(0.5);
        tree.load(&sys);
        let ips = ips_all(&sys);
        let mut out = vec![ForceResult::default(); ips.len()];
        tree.compute(0.0, &ips, &mut out);
        sys.pos[0] = Vec3::new(100.0, 0.0, 0.0);
        tree.update_j(&sys, &[0]);
        tree.compute(0.0, &ips, &mut out);
        assert_eq!(tree.build_count(), 2, "update_j must force a rebuild");
    }

    #[test]
    fn small_block_pays_full_build() {
        // The §3 argument in miniature: the per-call build dominates when
        // only one particle needs forces.
        let sys = plummer_like(2000);
        let mut tree = TreeEngine::new(0.5);
        tree.load(&sys);
        let ips = ips_all(&sys);
        let mut out1 = vec![ForceResult::default(); 1];
        // 100 single-particle calls at distinct times → 100 builds.
        for k in 0..100 {
            tree.compute(k as f64 * 1e-3, &ips[..1], &mut out1);
        }
        assert_eq!(tree.build_count(), 100);
    }
}
