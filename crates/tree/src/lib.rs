//! # grape6-tree
//!
//! A Barnes-Hut octree gravity code — the O(N log N) alternative the paper's
//! §3 examines and rejects for the planetesimal problem ("it is very
//! difficult to achieve high efficiency with these algorithms when the
//! timesteps of particles vary widely"). Built to quantify that argument:
//! experiment E5 compares its cost and accuracy against direct summation
//! under both shared and individual timesteps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
pub mod engine;
pub mod hybrid;
pub mod octree;

pub use engine::TreeEngine;
pub use hybrid::HybridTreeEngine;
pub use octree::{InteractionLists, Octree, TreeForce};
