//! The hybrid tree + direct force engine (Fukushige & Kawai 2016's
//! production pattern for collisional N-body on GRAPE): far-field forces
//! from a Barnes-Hut walk emitted as GRAPE-style interaction lists, a
//! radius-based near-field neighbour list summed directly at full
//! precision, under the same block individual-timestep host loop as every
//! other engine.
//!
//! Determinism contract (the same one `TickScheduler` and the lane tiles
//! meet): the tree build inserts bodies in index order from predicted
//! state, the walk recurses in fixed octant order, near lists are sorted
//! ascending, and the per-i summation structure mirrors
//! [`DirectEngine`](grape6_core::force::DirectEngine) exactly — so results
//! are bit-identical for any `RAYON_NUM_THREADS`, and at `theta = 0` with a
//! disk-spanning neighbour radius the near list *is* `0..n` with the same
//! chunk boundaries, reproducing `DirectEngine` bitwise on both the
//! small-block (chunked j-partial) and large-block (continuous ascending
//! sweep) paths.

use crate::octree::{InteractionLists, Octree};
use grape6_core::engine::{ForceEngine, TreeWork};
use grape6_core::force::{accumulate_on, pair_force_jerk};
use grape6_core::particle::{ForceResult, IParticle, Neighbor, ParticleSystem};
use grape6_core::sweep::{j_chunk_size, SMALL_BLOCK_MAX};
use grape6_core::vec3::Vec3;
use rayon::prelude::*;

/// j-particles per parallel chunk of the full prediction sweep — must match
/// `DirectEngine`'s chunking convention (prediction is a pure function of
/// `(j, t)`, so the chunk size is bitwise-neutral either way).
const PREDICT_CHUNK: usize = 4096;

/// Per-chunk walk totals, reduced in chunk order (every field is an
/// associative integer sum or max, so the reduction order cannot matter).
#[derive(Debug, Clone, Copy, Default)]
struct ChunkTotals {
    work: TreeWork,
    interactions: u64,
}

impl ChunkTotals {
    fn note(&mut self, lists: &InteractionLists) {
        let near = lists.near.len() as u64;
        let far = lists.far_pos.len() as u64;
        self.work.near_interactions += near;
        self.work.far_interactions += far;
        self.work.cells_opened += lists.cells_opened;
        self.work.list_len_sum += near + far;
        self.work.list_len_max = self.work.list_len_max.max(near + far);
        self.work.lists_emitted += 1;
        self.interactions += near + far;
    }
}

impl std::iter::Sum for ChunkTotals {
    fn sum<I: Iterator<Item = Self>>(it: I) -> Self {
        it.fold(Self::default(), |mut a, b| {
            a.work.merge(&b.work);
            a.interactions += b.interactions;
            a
        })
    }
}

/// Near-field sum for one i-particle of a *small* block: fixed j-chunks of
/// the (ascending) neighbour list, each summed from zero, partials merged
/// in ascending chunk order — the exact structure of `DirectEngine`'s
/// chunked j-parallel sweep, so a full-coverage list reproduces its bits.
// grape6-lint: hot
fn near_sum_chunked(
    ip: &IParticle,
    near: &[u32],
    ppos: &[Vec3],
    pvel: &[Vec3],
    jmass: &[f64],
    eps2: f64,
) -> ForceResult {
    let mut out = ForceResult::default();
    let ln = near.len();
    if ln == 0 {
        return out;
    }
    let chunk = j_chunk_size(ln);
    let mut lo = 0;
    while lo < ln {
        let hi = (lo + chunk).min(ln);
        let mut part = ForceResult::default();
        for &j in &near[lo..hi] {
            let j = j as usize;
            if j == ip.index {
                continue;
            }
            let dx = ppos[j] - ip.pos;
            let r2 = dx.norm2();
            if part.nn.is_none_or(|nb| r2 < nb.r2) {
                part.nn = Some(Neighbor { index: j, r2 });
            }
            let (a, jk, p) = pair_force_jerk(dx, pvel[j] - ip.vel, jmass[j], eps2);
            part.acc += a;
            part.jerk += jk;
            part.pot += p;
        }
        out.merge(&part);
        lo = hi;
    }
    out
}

/// Near-field sum for one i-particle of a *large* block: one continuous
/// accumulation over the ascending neighbour list — the per-i order of
/// `DirectEngine`'s cache-tiled large-block sweep.
// grape6-lint: hot
fn near_sum_flat(
    ip: &IParticle,
    near: &[u32],
    ppos: &[Vec3],
    pvel: &[Vec3],
    jmass: &[f64],
    eps2: f64,
) -> ForceResult {
    let mut acc = Vec3::zero();
    let mut jerk = Vec3::zero();
    let mut pot = 0.0;
    let mut nn = None::<Neighbor>;
    for &j in near {
        let j = j as usize;
        if j == ip.index {
            continue;
        }
        let dx = ppos[j] - ip.pos;
        let r2 = dx.norm2();
        if nn.is_none_or(|nb| r2 < nb.r2) {
            nn = Some(Neighbor { index: j, r2 });
        }
        let (a, jk, p) = pair_force_jerk(dx, pvel[j] - ip.vel, jmass[j], eps2);
        acc += a;
        jerk += jk;
        pot += p;
    }
    ForceResult { acc, jerk, pot, nn }
}

/// Hybrid tree + direct force engine (the sixth [`ForceEngine`]).
#[derive(Debug, Clone)]
pub struct HybridTreeEngine {
    /// Opening angle θ of the multipole acceptance criterion (0 = open
    /// everything, i.e. exact direct summation over the near list).
    pub theta: f64,
    /// Near-field neighbour radius: every body within this (unsoftened)
    /// distance of an i-particle is summed directly at full precision and
    /// is eligible for the nearest-neighbour report.
    pub r_near: f64,
    /// j-particle mirror: state at each particle's individual time.
    jpos: Vec<Vec3>,
    jvel: Vec<Vec3>,
    jacc: Vec<Vec3>,
    jjerk: Vec<Vec3>,
    jmass: Vec<f64>,
    jtime: Vec<f64>,
    /// Predicted j state at the tree's build time (persistent scratch sized
    /// by `load`, refreshed in place by `rebuild`).
    ppos: Vec<Vec3>,
    pvel: Vec<Vec3>,
    eps2: f64,
    tree: Option<Octree>,
    last_tree_time: Option<f64>,
    interactions: u64,
    force_calls: u64,
    work: TreeWork,
}

impl HybridTreeEngine {
    /// Create an engine with opening angle `theta` and near-field radius
    /// `r_near`. `theta = 0` with a radius spanning the whole system
    /// reproduces `DirectEngine` bit for bit.
    pub fn new(theta: f64, r_near: f64) -> Self {
        assert!(theta >= 0.0, "theta must be non-negative");
        assert!(r_near >= 0.0, "near-field radius must be non-negative");
        Self {
            theta,
            r_near,
            jpos: Vec::new(),
            jvel: Vec::new(),
            jacc: Vec::new(),
            jjerk: Vec::new(),
            jmass: Vec::new(),
            jtime: Vec::new(),
            ppos: Vec::new(),
            pvel: Vec::new(),
            eps2: 0.0,
            tree: None,
            last_tree_time: None,
            interactions: 0,
            force_calls: 0,
            work: TreeWork::default(),
        }
    }

    /// A configuration equivalent to direct summation (the bitwise anchor):
    /// `theta = 0`, neighbour radius spanning any system.
    pub fn direct_equivalent() -> Self {
        Self::new(0.0, f64::INFINITY)
    }

    /// Trees built since the last counter reset.
    pub fn build_count(&self) -> u64 {
        self.work.builds
    }

    /// Walk work counters accumulated since the last reset.
    pub fn work(&self) -> TreeWork {
        self.work
    }

    /// Number of `compute` calls since the last counter reset.
    pub fn force_calls(&self) -> u64 {
        self.force_calls
    }

    /// Refresh the predicted j state to `t` (same Taylor expression, same
    /// chunking as `DirectEngine::predict_all` — bit-identical predictions)
    /// and rebuild the octree over it. Build order is body-index order:
    /// thread count never touches the tree shape.
    fn rebuild(&mut self, t: f64) {
        let n = self.jpos.len();
        debug_assert_eq!(self.ppos.len(), n, "prediction scratch is sized by load()");
        debug_assert_eq!(self.pvel.len(), n, "prediction scratch is sized by load()");
        let (jpos, jvel, jacc, jjerk, jtime) =
            (&self.jpos, &self.jvel, &self.jacc, &self.jjerk, &self.jtime);
        self.ppos
            .par_chunks_mut(PREDICT_CHUNK)
            .zip(self.pvel.par_chunks_mut(PREDICT_CHUNK))
            .enumerate()
            .for_each(|(c, (pps, pvs))| {
                let base = c * PREDICT_CHUNK;
                for (k, (pp, pv)) in pps.iter_mut().zip(pvs).enumerate() {
                    let j = base + k;
                    let dt = t - jtime[j];
                    let dt2 = dt * dt;
                    *pp = jpos[j]
                        + jvel[j] * dt
                        + jacc[j] * (dt2 / 2.0)
                        + jjerk[j] * (dt2 * dt / 6.0);
                    *pv = jvel[j] + jacc[j] * dt + jjerk[j] * (dt2 / 2.0);
                }
            });
        self.tree = Some(Octree::build(&self.ppos, &self.pvel, &self.jmass));
        self.last_tree_time = Some(t);
        self.work.builds += 1;
    }
}

impl ForceEngine for HybridTreeEngine {
    fn load(&mut self, sys: &ParticleSystem) {
        self.jpos = sys.pos.clone();
        self.jvel = sys.vel.clone();
        self.jacc = sys.acc.clone();
        self.jjerk = sys.jerk.clone();
        self.jmass = sys.mass.clone();
        self.jtime = sys.time.clone();
        self.ppos.resize(sys.len(), Vec3::zero());
        self.pvel.resize(sys.len(), Vec3::zero());
        self.ppos.truncate(sys.len());
        self.pvel.truncate(sys.len());
        self.eps2 = sys.softening * sys.softening;
        self.tree = None;
        self.last_tree_time = None;
    }

    fn update_j(&mut self, sys: &ParticleSystem, indices: &[usize]) {
        for &i in indices {
            self.jpos[i] = sys.pos[i];
            self.jvel[i] = sys.vel[i];
            self.jacc[i] = sys.acc[i];
            self.jjerk[i] = sys.jerk[i];
            self.jmass[i] = sys.mass[i];
            self.jtime[i] = sys.time[i];
        }
        // Bodies moved: the tree (and its predicted snapshot) is stale.
        self.tree = None;
        self.last_tree_time = None;
    }

    fn compute(&mut self, t: f64, ips: &[IParticle], out: &mut [ForceResult]) {
        assert_eq!(ips.len(), out.len());
        self.force_calls += 1;
        let b = ips.len();
        if b == 0 {
            return;
        }
        if self.last_tree_time != Some(t) || self.tree.is_none() {
            self.rebuild(t);
        }
        let tree = self.tree.as_ref().expect("tree built above");
        let (theta, r_near, eps2) = (self.theta, self.r_near, self.eps2);
        let (ppos, pvel, jmass) = (&self.ppos, &self.pvel, &self.jmass);
        // Mirror DirectEngine's path split: small blocks take the chunked
        // j-partial summation structure, large blocks the continuous per-i
        // sweep — the two structures round differently, and the theta = 0
        // anchor must match whichever one DirectEngine would have used.
        let small = b <= SMALL_BLOCK_MAX;
        // i-chunks may follow the thread count: per-i results are pure
        // functions of (i, tree), and the walk totals are associative sums.
        let threads = rayon::current_num_threads().max(1);
        let ic = b.div_ceil(threads);
        let totals: ChunkTotals = out
            .par_chunks_mut(ic)
            .zip(ips.par_chunks(ic))
            .map(|(os, is)| {
                let mut lists = InteractionLists::default();
                let mut tot = ChunkTotals::default();
                for (o, ip) in os.iter_mut().zip(is) {
                    tree.interaction_lists(ip.pos, theta, r_near, &mut lists);
                    *o = if small {
                        near_sum_chunked(ip, &lists.near, ppos, pvel, jmass, eps2)
                    } else {
                        near_sum_flat(ip, &lists.near, ppos, pvel, jmass, eps2)
                    };
                    // Far field: one GRAPE-style j-sweep over the emitted
                    // list (cells + far leaf bodies), appended after the
                    // near sum. Empty at theta = 0, so the anchor path
                    // never perturbs a bit.
                    if !lists.far_pos.is_empty() {
                        let far = accumulate_on(
                            ip.pos,
                            ip.vel,
                            &lists.far_pos,
                            &lists.far_vel,
                            &lists.far_mass,
                            eps2,
                            usize::MAX,
                        );
                        o.acc += far.acc;
                        o.jerk += far.jerk;
                        o.pot += far.pot;
                    }
                    tot.note(&lists);
                }
                tot
            })
            .sum();
        self.interactions += totals.interactions;
        self.work.merge(&totals.work);
    }

    /// Actual near + far interaction-list evaluations — the whole point of
    /// the hybrid is that this is far below the hardware convention's
    /// `n_i × n_j`.
    fn interaction_count(&self) -> u64 {
        self.interactions
    }

    fn reset_counters(&mut self) {
        self.interactions = 0;
        self.force_calls = 0;
        self.work = TreeWork::default();
    }

    fn tree_work(&self) -> Option<TreeWork> {
        Some(self.work)
    }

    fn checkpoint_state(&self) -> Vec<u8> {
        let mut state = Vec::with_capacity(72);
        for v in [
            self.interactions,
            self.force_calls,
            self.work.builds,
            self.work.cells_opened,
            self.work.near_interactions,
            self.work.far_interactions,
            self.work.list_len_sum,
            self.work.list_len_max,
            self.work.lists_emitted,
        ] {
            state.extend_from_slice(&v.to_le_bytes());
        }
        state
    }

    fn restore_checkpoint_state(&mut self, state: &[u8]) -> Result<(), String> {
        if state.len() != 72 {
            return Err(format!(
                "hybrid-tree checkpoint state: expected 72 bytes, got {}",
                state.len()
            ));
        }
        let mut k = 0;
        let mut next = || {
            let v = u64::from_le_bytes(state[k..k + 8].try_into().unwrap());
            k += 8;
            v
        };
        self.interactions = next();
        self.force_calls = next();
        self.work.builds = next();
        self.work.cells_opened = next();
        self.work.near_interactions = next();
        self.work.far_interactions = next();
        self.work.list_len_sum = next();
        self.work.list_len_max = next();
        self.work.lists_emitted = next();
        Ok(())
    }

    fn name(&self) -> &'static str {
        "hybrid-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::force::DirectEngine;

    fn disk_like(n: usize, seed: u64) -> ParticleSystem {
        let mut sys = ParticleSystem::new(0.01, 1.0);
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for k in 0..n {
            let r = 15.0 + 10.0 * (k as f64 / n as f64) + rng();
            let phi = rng() * std::f64::consts::TAU;
            sys.push(
                Vec3::new(r * phi.cos(), r * phi.sin(), rng() * 0.3),
                Vec3::new(rng(), rng(), rng()) * 0.05,
                1e-7 * (1.0 + rng().abs()),
            );
        }
        sys
    }

    fn ips_for(sys: &ParticleSystem, idx: std::ops::Range<usize>) -> Vec<IParticle> {
        idx.map(|i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect()
    }

    fn assert_bits_equal(a: &[ForceResult], b: &[ForceResult], tag: &str) {
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.acc, y.acc, "{tag}: particle {k} acc");
            assert_eq!(x.jerk, y.jerk, "{tag}: particle {k} jerk");
            assert_eq!(x.pot.to_bits(), y.pot.to_bits(), "{tag}: particle {k} pot");
            assert_eq!(
                x.nn.map(|nb| (nb.index, nb.r2.to_bits())),
                y.nn.map(|nb| (nb.index, nb.r2.to_bits())),
                "{tag}: particle {k} nn"
            );
        }
    }

    #[test]
    fn theta_zero_full_radius_is_bitwise_direct_on_both_paths() {
        let sys = disk_like(120, 1);
        let mut hybrid = HybridTreeEngine::direct_equivalent();
        let mut direct = DirectEngine::new();
        hybrid.load(&sys);
        direct.load(&sys);
        // Small block (chunked j-partial path) and large block (continuous
        // per-i path) — DirectEngine's two paths are NOT bitwise equal to
        // each other, so the hybrid must match each one on its own turf.
        for b in [1usize, 5, SMALL_BLOCK_MAX, SMALL_BLOCK_MAX + 1, 120] {
            let ips = ips_for(&sys, 0..b);
            let mut out_h = vec![ForceResult::default(); b];
            let mut out_d = vec![ForceResult::default(); b];
            hybrid.compute(0.0, &ips, &mut out_h);
            direct.compute(0.0, &ips, &mut out_d);
            assert_bits_equal(&out_h, &out_d, &format!("b={b}"));
        }
    }

    #[test]
    fn theta_zero_full_radius_matches_direct_at_predicted_times() {
        let mut sys = disk_like(64, 2);
        // Stagger the particle times so prediction is live.
        for i in 0..sys.len() {
            sys.acc[i] = Vec3::new(1e-4, -2e-4, 5e-5);
            sys.jerk[i] = Vec3::new(-1e-6, 1e-6, 0.0);
            sys.time[i] = (i % 4) as f64 * 0.125;
        }
        let t = 0.5;
        let mut hybrid = HybridTreeEngine::direct_equivalent();
        let mut direct = DirectEngine::new();
        hybrid.load(&sys);
        direct.load(&sys);
        let ips: Vec<IParticle> = (0..sys.len())
            .map(|i| {
                let (pos, vel) = sys.predict(i, t);
                IParticle { index: i, pos, vel }
            })
            .collect();
        let mut out_h = vec![ForceResult::default(); ips.len()];
        let mut out_d = vec![ForceResult::default(); ips.len()];
        hybrid.compute(t, &ips, &mut out_h);
        direct.compute(t, &ips, &mut out_d);
        assert_bits_equal(&out_h, &out_d, "predicted");
    }

    #[test]
    fn moderate_theta_approximates_direct_and_does_less_work() {
        let sys = disk_like(800, 3);
        let mut hybrid = HybridTreeEngine::new(0.6, 2.0);
        let mut direct = DirectEngine::new();
        hybrid.load(&sys);
        direct.load(&sys);
        let ips = ips_for(&sys, 0..sys.len());
        let mut out_h = vec![ForceResult::default(); ips.len()];
        let mut out_d = vec![ForceResult::default(); ips.len()];
        hybrid.compute(0.0, &ips, &mut out_h);
        direct.compute(0.0, &ips, &mut out_d);
        let mut worst: f64 = 0.0;
        for k in 0..ips.len() {
            worst = worst.max((out_h[k].acc - out_d[k].acc).norm() / out_d[k].acc.norm());
        }
        assert!(worst < 0.05, "worst rel error {worst}");
        let w = hybrid.work();
        assert!(w.far_interactions > 0, "no cells were accepted");
        assert!(w.near_interactions > 0, "no neighbours were found");
        assert!(
            hybrid.interaction_count() < (sys.len() as u64).pow(2) / 3,
            "hybrid did {} evaluations, not ≪ N² = {}",
            hybrid.interaction_count(),
            (sys.len() as u64).pow(2)
        );
    }

    #[test]
    fn forces_and_counters_bit_identical_across_thread_counts() {
        let sys = disk_like(300, 4);
        let run = |threads: usize| {
            rayon::with_num_threads(threads, || {
                let mut e = HybridTreeEngine::new(0.5, 3.0);
                e.load(&sys);
                let ips = ips_for(&sys, 0..sys.len());
                let mut out = vec![ForceResult::default(); ips.len()];
                e.compute(0.0, &ips, &mut out);
                (out, e.interaction_count(), e.work())
            })
        };
        let (ref_out, ref_count, ref_work) = run(1);
        for threads in [2usize, 4, 8] {
            let (out, count, work) = run(threads);
            assert_bits_equal(&out, &ref_out, &format!("threads={threads}"));
            assert_eq!(count, ref_count, "threads={threads}: interaction count");
            assert_eq!(work, ref_work, "threads={threads}: walk counters");
        }
    }

    #[test]
    fn rebuilds_only_when_time_changes_and_updates_invalidate() {
        let mut sys = disk_like(100, 5);
        let mut e = HybridTreeEngine::new(0.5, 2.0);
        e.load(&sys);
        let ips = ips_for(&sys, 0..10);
        let mut out = vec![ForceResult::default(); 10];
        e.compute(0.0, &ips, &mut out);
        e.compute(0.0, &ips, &mut out);
        assert_eq!(e.build_count(), 1, "same-time calls must share the tree");
        e.compute(0.5, &ips, &mut out);
        assert_eq!(e.build_count(), 2);
        sys.pos[0] = Vec3::new(100.0, 0.0, 0.0);
        e.update_j(&sys, &[0]);
        e.compute(0.5, &ips, &mut out);
        assert_eq!(e.build_count(), 3, "update_j must force a rebuild");
    }

    #[test]
    fn checkpoint_state_round_trips() {
        let sys = disk_like(80, 6);
        let mut e = HybridTreeEngine::new(0.4, 2.0);
        e.load(&sys);
        let ips = ips_for(&sys, 0..sys.len());
        let mut out = vec![ForceResult::default(); ips.len()];
        e.compute(0.0, &ips, &mut out);
        e.compute(0.25, &ips[..3], &mut out[..3]);
        let state = e.checkpoint_state();
        assert_eq!(state.len(), 72);
        let mut fresh = HybridTreeEngine::new(0.4, 2.0);
        fresh.load(&sys);
        fresh.restore_checkpoint_state(&state).unwrap();
        assert_eq!(fresh.interaction_count(), e.interaction_count());
        assert_eq!(fresh.force_calls(), e.force_calls());
        assert_eq!(fresh.work(), e.work());
        assert!(fresh.restore_checkpoint_state(&state[..10]).is_err());
    }
}
