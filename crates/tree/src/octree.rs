//! A Barnes-Hut octree over point masses.
//!
//! This is the algorithm the paper's §3 argues *against* for the
//! planetesimal problem: it reduces the per-step cost from O(N²) to
//! O(N log N), but must be rebuilt (or carefully migrated) whenever
//! particles move, which destroys its advantage under individual timesteps
//! where only a handful of particles move per block step. We implement it
//! faithfully — monopole moments with mass-weighted velocity so it can
//! return jerk as well — to quantify that argument (experiment E5).

use grape6_core::vec3::Vec3;

/// Maximum bodies per leaf before subdivision.
const LEAF_CAPACITY: usize = 8;

/// A node of the octree (internal arena representation).
#[derive(Debug, Clone)]
struct Node {
    /// Geometric center of the cell.
    center: Vec3,
    /// Half-width of the cell.
    half: f64,
    /// Total mass below this node.
    mass: f64,
    /// Center of mass.
    com: Vec3,
    /// Mass-weighted mean velocity (for jerk).
    vcom: Vec3,
    /// Children indices (0 = none); internal nodes only.
    children: [u32; 8],
    /// Body indices for leaves.
    bodies: Vec<u32>,
    /// Bodies in this subtree (moment, filled by `compute_moments`).
    count: u32,
    /// Leaf flag.
    is_leaf: bool,
}

impl Node {
    fn new(center: Vec3, half: f64) -> Self {
        Self {
            center,
            half,
            mass: 0.0,
            com: Vec3::zero(),
            vcom: Vec3::zero(),
            children: [0; 8],
            bodies: Vec::new(),
            count: 0,
            is_leaf: true,
        }
    }

    fn octant_of(&self, p: Vec3) -> usize {
        ((p.x >= self.center.x) as usize)
            | (((p.y >= self.center.y) as usize) << 1)
            | (((p.z >= self.center.z) as usize) << 2)
    }

    fn child_center(&self, oct: usize) -> Vec3 {
        let q = self.half / 2.0;
        Vec3::new(
            self.center.x + if oct & 1 != 0 { q } else { -q },
            self.center.y + if oct & 2 != 0 { q } else { -q },
            self.center.z + if oct & 4 != 0 { q } else { -q },
        )
    }
}

/// A built Barnes-Hut octree with monopole + velocity moments.
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<Node>,
    pos: Vec<Vec3>,
    vel: Vec<Vec3>,
    mass: Vec<f64>,
}

/// Result of one tree traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TreeForce {
    /// Acceleration.
    pub acc: Vec3,
    /// Jerk (from the velocity moments; exact for leaves, monopole-level for
    /// opened cells).
    pub jerk: Vec3,
    /// Potential.
    pub pot: f64,
    /// Particle-cell and particle-particle evaluations performed.
    pub evaluations: u64,
}

impl Octree {
    /// Build a tree over the given bodies.
    pub fn build(pos: &[Vec3], vel: &[Vec3], mass: &[f64]) -> Self {
        assert_eq!(pos.len(), vel.len());
        assert_eq!(pos.len(), mass.len());
        assert!(!pos.is_empty(), "cannot build a tree over zero bodies");
        // Bounding cube.
        let mut lo = pos[0];
        let mut hi = pos[0];
        for &p in pos {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        let center = (lo + hi) * 0.5;
        let half = ((hi - lo).max_component() * 0.5).max(1e-12) * 1.0000001;
        let mut tree = Self {
            nodes: vec![Node::new(center, half)],
            pos: pos.to_vec(),
            vel: vel.to_vec(),
            mass: mass.to_vec(),
        };
        for b in 0..pos.len() {
            tree.insert(0, b as u32, 0);
        }
        tree.compute_moments(0);
        tree
    }

    fn insert(&mut self, node: usize, body: u32, depth: usize) {
        const MAX_DEPTH: usize = 64;
        if self.nodes[node].is_leaf {
            if self.nodes[node].bodies.len() < LEAF_CAPACITY || depth >= MAX_DEPTH {
                self.nodes[node].bodies.push(body);
                return;
            }
            // Split: push existing bodies down.
            let existing = std::mem::take(&mut self.nodes[node].bodies);
            self.nodes[node].is_leaf = false;
            for b in existing {
                self.insert_into_child(node, b, depth);
            }
        }
        self.insert_into_child(node, body, depth);
    }

    fn insert_into_child(&mut self, node: usize, body: u32, depth: usize) {
        let p = self.pos[body as usize];
        let oct = self.nodes[node].octant_of(p);
        let child = self.nodes[node].children[oct];
        let child = if child == 0 {
            let c = self.nodes.len() as u32;
            let center = self.nodes[node].child_center(oct);
            let half = self.nodes[node].half / 2.0;
            self.nodes.push(Node::new(center, half));
            self.nodes[node].children[oct] = c;
            c
        } else {
            child
        };
        self.insert(child as usize, body, depth + 1);
    }

    fn compute_moments(&mut self, node: usize) {
        let (mass, weighted_p, weighted_v, count) = if self.nodes[node].is_leaf {
            let mut m = 0.0;
            let mut wp = Vec3::zero();
            let mut wv = Vec3::zero();
            for &b in &self.nodes[node].bodies {
                let bm = self.mass[b as usize];
                m += bm;
                wp += self.pos[b as usize] * bm;
                wv += self.vel[b as usize] * bm;
            }
            (m, wp, wv, self.nodes[node].bodies.len() as u32)
        } else {
            let children = self.nodes[node].children;
            let mut m = 0.0;
            let mut wp = Vec3::zero();
            let mut wv = Vec3::zero();
            let mut cnt = 0u32;
            for c in children {
                if c != 0 {
                    self.compute_moments(c as usize);
                    let cn = &self.nodes[c as usize];
                    m += cn.mass;
                    wp += cn.com * cn.mass;
                    wv += cn.vcom * cn.mass;
                    cnt += cn.count;
                }
            }
            (m, wp, wv, cnt)
        };
        let n = &mut self.nodes[node];
        n.mass = mass;
        n.count = count;
        if mass > 0.0 {
            n.com = weighted_p / mass;
            n.vcom = weighted_v / mass;
        } else {
            n.com = n.center;
            n.vcom = Vec3::zero();
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of bodies.
    pub fn body_count(&self) -> usize {
        self.pos.len()
    }

    /// Total mass (root moment).
    pub fn total_mass(&self) -> f64 {
        self.nodes[0].mass
    }

    /// Center of mass (root moment).
    pub fn center_of_mass(&self) -> Vec3 {
        self.nodes[0].com
    }

    /// Compute the force on a test point with opening angle `theta` and
    /// Plummer softening `eps2`. `skip` excludes one body index
    /// (`u32::MAX` to disable).
    pub fn force_on(&self, pos: Vec3, vel: Vec3, theta: f64, eps2: f64, skip: u32) -> TreeForce {
        let mut out = TreeForce::default();
        self.walk(0, pos, vel, theta, eps2, skip, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    // grape6-lint: hot
    fn walk(
        &self,
        node: usize,
        pos: Vec3,
        vel: Vec3,
        theta: f64,
        eps2: f64,
        skip: u32,
        out: &mut TreeForce,
    ) {
        let n = &self.nodes[node];
        if n.mass == 0.0 {
            return;
        }
        let d = n.com - pos;
        let dist2 = d.norm2();
        let size = 2.0 * n.half;
        // Barnes-Hut multipole acceptance criterion: s/d < θ.
        if !n.is_leaf && size * size < theta * theta * dist2 {
            let (a, j, p) = grape6_core::force::pair_force_jerk(d, n.vcom - vel, n.mass, eps2);
            out.acc += a;
            out.jerk += j;
            out.pot += p;
            out.evaluations += 1;
            return;
        }
        if n.is_leaf {
            for &b in &n.bodies {
                if b == skip {
                    continue;
                }
                let (a, j, p) = grape6_core::force::pair_force_jerk(
                    self.pos[b as usize] - pos,
                    self.vel[b as usize] - vel,
                    self.mass[b as usize],
                    eps2,
                );
                out.acc += a;
                out.jerk += j;
                out.pot += p;
                out.evaluations += 1;
            }
            return;
        }
        for c in n.children {
            if c != 0 {
                self.walk(c as usize, pos, vel, theta, eps2, skip, out);
            }
        }
    }

    /// Emit the GRAPE-style interaction lists for a test point: body indices
    /// within `r_near` (sorted ascending, self included) into `out.near`,
    /// and every other source — accepted cells as monopole pseudo-particles,
    /// opened-leaf bodies beyond the radius as point sources — into the far
    /// arrays, in deterministic depth-first octant order.
    ///
    /// The partition is exactly-once by construction: a cell is accepted as
    /// a far source only if it passes the multipole acceptance criterion
    /// **and** its bounding sphere clears the neighbour radius entirely, so
    /// any body within `r_near` of `pos` is always reached through opened
    /// cells and classified by its exact distance. `out` is cleared first
    /// (capacity retained — steady-state walks allocate only on list
    /// growth).
    pub fn interaction_lists(
        &self,
        pos: Vec3,
        theta: f64,
        r_near: f64,
        out: &mut InteractionLists,
    ) {
        out.near.clear();
        out.far_pos.clear();
        out.far_vel.clear();
        out.far_mass.clear();
        out.cells_opened = 0;
        out.far_bodies = 0;
        self.list_walk(0, pos, theta, r_near, out);
        // Tree order is octant order; the direct-summation contract is
        // ascending body index (in-place, no allocation).
        out.near.sort_unstable();
    }

    // grape6-lint: hot
    fn list_walk(
        &self,
        node: usize,
        pos: Vec3,
        theta: f64,
        r_near: f64,
        out: &mut InteractionLists,
    ) {
        let n = &self.nodes[node];
        if n.mass == 0.0 {
            return;
        }
        let d = n.com - pos;
        let dist2 = d.norm2();
        let size = 2.0 * n.half;
        // Barnes-Hut multipole acceptance criterion: s/d < θ — but a cell
        // may only be summarized if no part of it can hold a neighbour
        // (bounding sphere of radius √3·half entirely beyond r_near).
        if !n.is_leaf && size * size < theta * theta * dist2 {
            let ball = 3.0f64.sqrt() * n.half;
            let center_dist = (n.center - pos).norm();
            if center_dist - ball > r_near {
                out.far_pos.push(n.com);
                out.far_vel.push(n.vcom);
                out.far_mass.push(n.mass);
                out.far_bodies += n.count as u64;
                return;
            }
        }
        if n.is_leaf {
            for &b in &n.bodies {
                let r2 = (self.pos[b as usize] - pos).norm2();
                if r2 <= r_near * r_near {
                    out.near.push(b);
                } else {
                    out.far_pos.push(self.pos[b as usize]);
                    out.far_vel.push(self.vel[b as usize]);
                    out.far_mass.push(self.mass[b as usize]);
                    out.far_bodies += 1;
                }
            }
            return;
        }
        out.cells_opened += 1;
        for c in n.children {
            if c != 0 {
                self.list_walk(c as usize, pos, theta, r_near, out);
            }
        }
    }
}

/// Near/far interaction lists emitted by [`Octree::interaction_lists`].
/// Reused across walks: cleared on entry, capacity retained.
#[derive(Debug, Clone, Default)]
pub struct InteractionLists {
    /// Body indices within the neighbour radius, ascending (the test
    /// point's own body included when it is a tree body — callers skip it
    /// during summation, like the hardware's self term).
    pub near: Vec<u32>,
    /// Far-source positions (cell centers of mass and far leaf bodies).
    pub far_pos: Vec<Vec3>,
    /// Far-source velocities (cell vcom moments and far leaf bodies).
    pub far_vel: Vec<Vec3>,
    /// Far-source masses (cell monopoles and far leaf bodies).
    pub far_mass: Vec<f64>,
    /// Internal cells opened (recursed into) during the walk.
    pub cells_opened: u64,
    /// Bodies represented by the far list (each accepted cell counts its
    /// whole subtree): `near.len() + far_bodies` must equal the body count
    /// — the exactly-once partition invariant.
    pub far_bodies: u64,
}

impl InteractionLists {
    /// Entries across both lists (the GRAPE interaction-list length).
    pub fn len(&self) -> usize {
        self.near.len() + self.far_pos.len()
    }

    /// True when the walk emitted nothing.
    pub fn is_empty(&self) -> bool {
        self.near.is_empty() && self.far_pos.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> (Vec<Vec3>, Vec<Vec3>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pos: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)
                    * 40.0
            })
            .collect();
        let vel: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)
            })
            .collect();
        let mass: Vec<f64> = (0..n).map(|_| 0.1 + rng.gen::<f64>()).collect();
        (pos, vel, mass)
    }

    #[test]
    fn root_moments_are_global() {
        let (pos, vel, mass) = random_cloud(500, 1);
        let tree = Octree::build(&pos, &vel, &mass);
        let m: f64 = mass.iter().sum();
        assert!((tree.total_mass() - m).abs() < 1e-10);
        let com: Vec3 = pos.iter().zip(&mass).map(|(&p, &mm)| p * mm).sum::<Vec3>() / m;
        assert!((tree.center_of_mass() - com).norm() < 1e-10);
        assert_eq!(tree.body_count(), 500);
        assert!(tree.node_count() > 1);
    }

    // The accuracy contracts formerly pinned here by ad-hoc epsilons
    // (`theta_zero_reproduces_direct_sum`, `moderate_theta_is_accurate_and_
    // cheap`) now live in `tests/tree_accuracy.rs`, where the budget is
    // derived from the shared conformance oracle instead of guessed.

    #[test]
    fn interaction_lists_partition_exactly_once() {
        let (pos, vel, mass) = random_cloud(600, 8);
        let tree = Octree::build(&pos, &vel, &mass);
        let mut lists = InteractionLists::default();
        for &theta in &[0.0, 0.5, 0.9] {
            for &r_near in &[0.0, 2.0, 1e30] {
                for i in [0usize, 100, 599] {
                    tree.interaction_lists(pos[i], theta, r_near, &mut lists);
                    // Exactly-once: every body is a neighbour or a far body
                    // (inside exactly one accepted cell / far leaf entry).
                    assert_eq!(
                        lists.near.len() as u64 + lists.far_bodies,
                        600,
                        "theta={theta} r={r_near} i={i}"
                    );
                    // Near membership is exact radius membership, ascending.
                    for w in lists.near.windows(2) {
                        assert!(w[0] < w[1], "near list not strictly ascending");
                    }
                    for &b in &lists.near {
                        assert!((pos[b as usize] - pos[i]).norm2() <= r_near * r_near);
                    }
                }
            }
        }
    }

    #[test]
    fn full_radius_list_is_the_identity_and_theta0_opens_everything() {
        let (pos, vel, mass) = random_cloud(150, 9);
        let tree = Octree::build(&pos, &vel, &mass);
        let mut lists = InteractionLists::default();
        tree.interaction_lists(pos[3], 0.0, 1e30, &mut lists);
        assert_eq!(lists.near, (0..150u32).collect::<Vec<_>>());
        assert!(lists.far_pos.is_empty(), "theta = 0 must accept no cells");
        assert_eq!(lists.far_bodies, 0);
    }

    #[test]
    fn far_list_masses_conserve_total_mass() {
        let (pos, vel, mass) = random_cloud(400, 10);
        let tree = Octree::build(&pos, &vel, &mass);
        let mut lists = InteractionLists::default();
        tree.interaction_lists(pos[0], 0.7, 3.0, &mut lists);
        assert!(!lists.far_pos.is_empty(), "moderate theta should accept cells");
        let near_m: f64 = lists.near.iter().map(|&b| mass[b as usize]).sum();
        let far_m: f64 = lists.far_mass.iter().sum();
        let total: f64 = mass.iter().sum();
        assert!(
            ((near_m + far_m) - total).abs() < 1e-10 * total,
            "mass leaked across the near/far partition"
        );
    }

    #[test]
    fn opening_angle_trades_cost_for_accuracy() {
        let (pos, vel, mass) = random_cloud(3000, 4);
        let tree = Octree::build(&pos, &vel, &mass);
        let f_tight = tree.force_on(pos[0], vel[0], 0.3, 0.01, 0);
        let f_loose = tree.force_on(pos[0], vel[0], 1.0, 0.01, 0);
        assert!(f_loose.evaluations < f_tight.evaluations);
        let direct = grape6_core::force::accumulate_on(pos[0], vel[0], &pos, &vel, &mass, 0.01, 0);
        let e_tight = (f_tight.acc - direct.acc).norm();
        let e_loose = (f_loose.acc - direct.acc).norm();
        assert!(e_tight <= e_loose + 1e-15);
    }

    #[test]
    fn cost_scales_sub_quadratically() {
        let eps2 = 0.01;
        let mut evals = Vec::new();
        for &n in &[1000usize, 4000] {
            let (pos, vel, mass) = random_cloud(n, 5);
            let tree = Octree::build(&pos, &vel, &mass);
            let mut total = 0u64;
            for i in (0..n).step_by(n / 50) {
                total += tree.force_on(pos[i], vel[i], 0.7, eps2, i as u32).evaluations;
            }
            evals.push(total as f64 / 50.0);
        }
        // 4× bodies should cost ≪ 4× per-particle evaluations (O(log N) growth).
        let growth = evals[1] / evals[0];
        assert!(growth < 2.5, "per-particle cost growth {growth} ≥ 2.5");
    }

    #[test]
    fn handles_coincident_bodies() {
        // LEAF_CAPACITY+2 bodies at the same point must not recurse forever.
        let n = LEAF_CAPACITY + 2;
        let pos = vec![Vec3::new(1.0, 1.0, 1.0); n];
        let vel = vec![Vec3::zero(); n];
        let mass = vec![1.0; n];
        let tree = Octree::build(&pos, &vel, &mass);
        let f = tree.force_on(Vec3::zero(), Vec3::zero(), 0.5, 0.0, u32::MAX);
        // All mass at distance √3.
        let expect = n as f64 / 3.0;
        assert!((f.acc.norm() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn single_body_tree() {
        let tree = Octree::build(&[Vec3::new(2.0, 0.0, 0.0)], &[Vec3::zero()], &[3.0]);
        let f = tree.force_on(Vec3::zero(), Vec3::zero(), 0.5, 0.0, u32::MAX);
        assert!((f.acc.x - 0.75).abs() < 1e-14);
        assert_eq!(f.evaluations, 1);
    }

    #[test]
    #[should_panic]
    fn empty_tree_panics() {
        Octree::build(&[], &[], &[]);
    }
}
