//! Property-based tests on the Barnes-Hut octree.

use grape6_core::force::accumulate_on;
use grape6_core::vec3::Vec3;
use grape6_tree::Octree;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cloud(n: usize, seed: u64) -> (Vec<Vec3>, Vec<Vec3>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pos = (0..n)
        .map(|_| {
            Vec3::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5) * 30.0
        })
        .collect();
    let vel = (0..n)
        .map(|_| Vec3::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    let mass = (0..n).map(|_| 0.01 + rng.gen::<f64>()).collect();
    (pos, vel, mass)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn root_moments_match_direct_sums(n in 2usize..300, seed in 0u64..1000) {
        let (pos, vel, mass) = cloud(n, seed);
        let tree = Octree::build(&pos, &vel, &mass);
        let m: f64 = mass.iter().sum();
        prop_assert!((tree.total_mass() - m).abs() <= 1e-9 * m);
        let com: Vec3 = pos.iter().zip(&mass).map(|(&p, &mm)| p * mm).sum::<Vec3>() / m;
        prop_assert!((tree.center_of_mass() - com).norm() <= 1e-9 * com.norm().max(1.0));
    }

    #[test]
    fn theta_zero_is_exact(n in 2usize..120, seed in 0u64..1000, i in 0usize..120) {
        let (pos, vel, mass) = cloud(n, seed);
        let i = i % n;
        let tree = Octree::build(&pos, &vel, &mass);
        let f = tree.force_on(pos[i], vel[i], 0.0, 0.01, i as u32);
        let d = accumulate_on(pos[i], vel[i], &pos, &vel, &mass, 0.01, i);
        prop_assert!((f.acc - d.acc).norm() <= 1e-11 * d.acc.norm().max(1e-300));
        prop_assert_eq!(f.evaluations, (n - 1) as u64);
    }

    #[test]
    fn error_bounded_by_opening_angle(
        seed in 0u64..200,
        theta in 0.1..0.9f64,
        i in 0usize..400,
    ) {
        let n = 400;
        let (pos, vel, mass) = cloud(n, seed);
        let i = i % n;
        let tree = Octree::build(&pos, &vel, &mass);
        let f = tree.force_on(pos[i], vel[i], theta, 0.01, i as u32);
        let d = accumulate_on(pos[i], vel[i], &pos, &vel, &mass, 0.01, i);
        let rel = (f.acc - d.acc).norm() / d.acc.norm().max(1e-300);
        // Monopole BH error is O(θ²) with a modest constant; allow slack for
        // pathological geometry but catch systematic breakage.
        prop_assert!(rel <= 1.5 * theta * theta + 1e-9, "rel {rel} at theta {theta}");
    }

    #[test]
    fn cheaper_than_direct_for_large_n(seed in 0u64..100) {
        let n = 2000;
        let (pos, vel, mass) = cloud(n, seed);
        let tree = Octree::build(&pos, &vel, &mass);
        let f = tree.force_on(pos[0], vel[0], 0.7, 0.01, 0);
        prop_assert!(f.evaluations < (n as u64) / 2, "{} evals", f.evaluations);
    }

    #[test]
    fn potential_energy_consistent(seed in 0u64..100, n in 10usize..200) {
        // Σ_i m_i φ_i (tree, θ = 0) = 2 × PE(direct).
        let (pos, vel, mass) = cloud(n, seed);
        let tree = Octree::build(&pos, &vel, &mass);
        let mut twice_pe = 0.0;
        for i in 0..n {
            let f = tree.force_on(pos[i], vel[i], 0.0, 0.0, i as u32);
            twice_pe += mass[i] * f.pot;
        }
        let mut pe = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                pe -= mass[i] * mass[j] / pos[i].distance(pos[j]);
            }
        }
        prop_assert!((twice_pe - 2.0 * pe).abs() <= 1e-8 * pe.abs());
    }
}
