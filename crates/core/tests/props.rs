//! Property-based tests on the core invariants.

use grape6_core::blockstep::{is_commensurate, next_block_dt, quantize_dt};
use grape6_core::force::{accumulate_on, pair_force_jerk};
use grape6_core::hermite::{correct, predict};
use grape6_core::kepler::{elements_to_state, solve_kepler, state_to_elements, Elements};
use grape6_core::vec3::Vec3;
use proptest::prelude::*;

fn finite_vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    // ---------- vec3 algebra ----------

    #[test]
    fn dot_is_bilinear(a in finite_vec3(1e3), b in finite_vec3(1e3), s in -100.0..100.0f64) {
        let lhs = (a * s).dot(b);
        let rhs = s * a.dot(b);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.abs().max(rhs.abs()).max(1.0));
    }

    #[test]
    fn cross_is_orthogonal(a in finite_vec3(1e3), b in finite_vec3(1e3)) {
        let c = a.cross(b);
        let scale = a.norm() * b.norm();
        prop_assert!(c.dot(a).abs() <= 1e-9 * scale * a.norm().max(1.0));
        prop_assert!(c.dot(b).abs() <= 1e-9 * scale * b.norm().max(1.0));
    }

    #[test]
    fn triangle_inequality(a in finite_vec3(1e3), b in finite_vec3(1e3)) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    // ---------- force kernel ----------

    #[test]
    fn force_antisymmetric_for_equal_masses(
        dx in finite_vec3(50.0),
        dv in finite_vec3(1.0),
        m in 1e-10..1e-3f64,
        eps in 1e-4..0.1f64,
    ) {
        prop_assume!(dx.norm() > 1e-3);
        let (a_ij, j_ij, p_ij) = pair_force_jerk(dx, dv, m, eps * eps);
        let (a_ji, j_ji, p_ji) = pair_force_jerk(-dx, -dv, m, eps * eps);
        prop_assert!((a_ij + a_ji).norm() <= 1e-12 * a_ij.norm());
        prop_assert!((j_ij + j_ji).norm() <= 1e-12 * j_ij.norm().max(1e-300));
        prop_assert!((p_ij - p_ji).abs() <= 1e-12 * p_ij.abs());
    }

    #[test]
    fn force_magnitude_bounded_by_softening(
        dx in finite_vec3(10.0),
        m in 1e-10..1e-3f64,
        eps in 1e-3..0.1f64,
    ) {
        let (a, _, _) = pair_force_jerk(dx, Vec3::zero(), m, eps * eps);
        // |a| ≤ m·|dx|/(dx²+ε²)^{3/2} ≤ m·(2/(3√3))/ε² < m/ε².
        prop_assert!(a.norm() <= m / (eps * eps) + 1e-300);
    }

    #[test]
    fn total_momentum_change_is_zero(
        seed in 0u64..1000,
        n in 2usize..12,
        eps in 1e-3..0.1f64,
    ) {
        // Newton's third law over a random cluster: Σ m·a = 0.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let pos: Vec<Vec3> = (0..n).map(|_| Vec3::new(rnd(), rnd(), rnd()) * 10.0).collect();
        let vel: Vec<Vec3> = (0..n).map(|_| Vec3::new(rnd(), rnd(), rnd())).collect();
        let mass: Vec<f64> = (0..n).map(|_| 0.1 + rnd().abs()).collect();
        let mut net = Vec3::zero();
        let mut scale = 0.0;
        for i in 0..n {
            let f = accumulate_on(pos[i], vel[i], &pos, &vel, &mass, eps * eps, i);
            net += f.acc * mass[i];
            scale += f.acc.norm() * mass[i];
        }
        prop_assert!(net.norm() <= 1e-10 * scale.max(1e-300), "net {net:?}");
    }

    // ---------- Hermite scheme ----------

    #[test]
    fn corrector_exact_on_random_quadratic_fields(
        a0 in finite_vec3(5.0),
        a1c in finite_vec3(5.0),
        a2c in finite_vec3(5.0),
        dt in 0.01..2.0f64,
    ) {
        // a(t) = a0 + a1c·t + a2c·t²: cubic Hermite is exact for this.
        let acc = |t: f64| a0 + a1c * t + a2c * (t * t);
        let jerk = |t: f64| a1c + a2c * (2.0 * t);
        let vel = |t: f64| a0 * t + a1c * (t * t / 2.0) + a2c * (t * t * t / 3.0);
        let posf = |t: f64| a0 * (t * t / 2.0) + a1c * (t * t * t / 6.0) + a2c * (t * t * t * t / 12.0);
        let (xp, vp) = predict(posf(0.0), vel(0.0), acc(0.0), jerk(0.0), dt);
        let c = correct(xp, vp, acc(0.0), jerk(0.0), acc(dt), jerk(dt), dt);
        let tol = 1e-10 * (1.0 + posf(dt).norm());
        prop_assert!((c.pos - posf(dt)).norm() <= tol, "pos err {}", (c.pos - posf(dt)).norm());
        prop_assert!((c.vel - vel(dt)).norm() <= tol, "vel err {}", (c.vel - vel(dt)).norm());
    }

    // ---------- block scheduling ----------

    #[test]
    fn quantize_is_power_of_two_and_at_most_dt(dt in 1e-12..100.0f64) {
        let q = quantize_dt(dt, 2.0f64.powi(-60), 8.0);
        prop_assert!(q <= dt.max(2.0f64.powi(-60)));
        prop_assert_eq!(q.log2().fract(), 0.0);
        // Largest such power: doubling must exceed dt (unless clamped).
        if q < 8.0 && q > 2.0f64.powi(-60) {
            prop_assert!(2.0 * q > dt);
        }
    }

    #[test]
    fn next_dt_preserves_commensurability(
        rung_old in -20i32..0,
        steps in 1u64..10_000,
        dt_des in 1e-9..16.0f64,
    ) {
        // A particle that has taken `steps` steps of dt_old sits at a
        // commensurate time; whatever the criterion proposes, the new block
        // step must keep the time commensurate.
        let dt_old = 2.0f64.powi(rung_old);
        let t_new = steps as f64 * dt_old;
        let dt_new = next_block_dt(dt_old, dt_des, t_new, 2.0f64.powi(-40), 8.0);
        prop_assert!(dt_new > 0.0);
        prop_assert_eq!(dt_new.log2().fract(), 0.0);
        prop_assert!(dt_new <= 2.0 * dt_old);
        prop_assert!(is_commensurate(t_new, dt_new), "t={t_new} dt={dt_new}");
    }

    // ---------- Kepler machinery ----------

    #[test]
    fn kepler_solver_satisfies_equation(m in -20.0..20.0f64, e in 0.0..0.99f64) {
        let big_e = solve_kepler(m, e);
        prop_assert!((big_e - e * big_e.sin() - m).abs() < 1e-9);
    }

    #[test]
    fn elements_roundtrip(
        a in 5.0..50.0f64,
        e in 0.0..0.8f64,
        inc in 0.0..1.0f64,
        node in 0.0..6.0f64,
        peri in 0.0..6.0f64,
        ma in 0.0..6.0f64,
    ) {
        let el = Elements { a, e, inc, node, peri, mean_anomaly: ma };
        let (p, v) = elements_to_state(&el, 1.0);
        let back = state_to_elements(p, v, 1.0);
        prop_assert!((back.a - a).abs() <= 1e-6 * a, "a: {} vs {a}", back.a);
        prop_assert!((back.e - e).abs() <= 1e-7, "e: {} vs {e}", back.e);
        prop_assert!((back.inc - inc).abs() <= 1e-8, "inc: {} vs {inc}", back.inc);
        // Reconstructed state from recovered elements matches the original
        // point in phase space (angle conventions cancel out).
        let (p2, v2) = elements_to_state(&back, 1.0);
        prop_assert!((p2 - p).norm() <= 1e-5 * a, "pos mismatch {}", (p2 - p).norm());
        prop_assert!((v2 - v).norm() <= 1e-6, "vel mismatch {}", (v2 - v).norm());
    }

    #[test]
    fn vis_viva_holds(
        a in 5.0..50.0f64,
        e in 0.0..0.8f64,
        ma in 0.0..6.0f64,
    ) {
        let el = Elements { a, e, inc: 0.1, node: 0.5, peri: 1.0, mean_anomaly: ma };
        let (p, v) = elements_to_state(&el, 1.0);
        let r = p.norm();
        // v² = GM (2/r − 1/a)
        prop_assert!((v.norm2() - (2.0 / r - 1.0 / a)).abs() < 1e-10);
        prop_assert!(r >= a * (1.0 - e) - 1e-9);
        prop_assert!(r <= a * (1.0 + e) + 1e-9);
    }
}
