//! Shared (global) timestep Hermite integrator — the baseline the block
//! individual-timestep algorithm replaces.
//!
//! Every particle advances with the *same* step, which must track the
//! minimum timescale anywhere in the system (a close encounter drags all N
//! particles down to hour-scale steps; paper §3). Benchmarks E4/E5 use this
//! to quantify the win of individual timesteps.

use crate::central::central_acc_jerk;
use crate::engine::ForceEngine;
use crate::hermite::{aarseth_dt, correct, initial_dt, predict};
use crate::integrator::RunStats;
use crate::particle::{ForceResult, IParticle, ParticleSystem};

/// Shared-timestep 4th-order Hermite integrator.
#[derive(Debug, Clone)]
pub struct SharedHermite {
    /// Aarseth accuracy parameter η.
    pub eta: f64,
    /// Startup accuracy parameter.
    pub eta_start: f64,
    /// Hard upper bound on the step.
    pub dt_max: f64,
    /// Hard lower bound on the step (guards against stalling).
    pub dt_min: f64,
    stats: RunStats,
    dt: f64,
    snap: Vec<crate::vec3::Vec3>,
    crackle: Vec<crate::vec3::Vec3>,
    ips: Vec<IParticle>,
    results: Vec<ForceResult>,
    initialized: bool,
}

impl SharedHermite {
    /// New integrator with the given accuracy parameter and step bounds.
    pub fn new(eta: f64, dt_max: f64, dt_min: f64) -> Self {
        assert!(eta > 0.0 && dt_max > 0.0 && dt_min > 0.0 && dt_min <= dt_max);
        Self {
            eta,
            eta_start: eta / 8.0,
            dt_max,
            dt_min,
            stats: RunStats::default(),
            dt: 0.0,
            snap: Vec::new(),
            crackle: Vec::new(),
            ips: Vec::new(),
            results: Vec::new(),
            initialized: false,
        }
    }

    /// Run statistics so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The current global step.
    pub fn current_dt(&self) -> f64 {
        self.dt
    }

    fn forces<E: ForceEngine + ?Sized>(
        &mut self,
        sys: &ParticleSystem,
        engine: &mut E,
        t: f64,
        predictor: bool,
    ) {
        let n = sys.len();
        self.ips.clear();
        for i in 0..n {
            let (pos, vel) = if predictor { sys.predict(i, t) } else { (sys.pos[i], sys.vel[i]) };
            self.ips.push(IParticle { index: i, pos, vel });
        }
        self.results.clear();
        self.results.resize(n, ForceResult::default());
        let before = engine.interaction_count();
        engine.compute(t, &self.ips, &mut self.results);
        self.stats.interactions += engine.interaction_count() - before;
        if sys.central_mass > 0.0 {
            for k in 0..n {
                let (ca, cj) = central_acc_jerk(sys.central_mass, self.ips[k].pos, self.ips[k].vel);
                self.results[k].acc += ca;
                self.results[k].jerk += cj;
            }
        }
    }

    /// Compute initial derivatives and the first global step.
    pub fn initialize<E: ForceEngine + ?Sized>(
        &mut self,
        sys: &mut ParticleSystem,
        engine: &mut E,
    ) {
        assert!(!sys.is_empty());
        engine.load(sys);
        self.forces(sys, engine, sys.t, false);
        let n = sys.len();
        self.snap.clear();
        self.snap.resize(n, crate::vec3::Vec3::zero());
        self.crackle.clear();
        self.crackle.resize(n, crate::vec3::Vec3::zero());
        let mut dt = self.dt_max;
        for i in 0..n {
            sys.acc[i] = self.results[i].acc;
            sys.jerk[i] = self.results[i].jerk;
            sys.pot[i] = self.results[i].pot;
            dt = dt.min(initial_dt(sys.acc[i], sys.jerk[i], self.eta_start));
        }
        self.dt = dt.clamp(self.dt_min, self.dt_max);
        for i in 0..n {
            sys.dt[i] = self.dt;
            sys.time[i] = sys.t;
        }
        // Refresh the engine mirror now that acc/jerk exist (it was loaded
        // with zeroed derivatives).
        engine.update_j(sys, &(0..n).collect::<Vec<_>>());
        self.initialized = true;
    }

    /// Advance the whole system by one shared step. Returns the step taken.
    pub fn step<E: ForceEngine + ?Sized>(
        &mut self,
        sys: &mut ParticleSystem,
        engine: &mut E,
    ) -> f64 {
        assert!(self.initialized, "call initialize() first");
        let n = sys.len();
        let dt = self.dt;
        let t1 = sys.t + dt;
        // Predict everyone, evaluate, correct everyone.
        self.forces(sys, engine, t1, true);
        let mut dt_next = self.dt_max;
        for i in 0..n {
            let (xp, vp) = predict(sys.pos[i], sys.vel[i], sys.acc[i], sys.jerk[i], dt);
            let c = correct(
                xp,
                vp,
                sys.acc[i],
                sys.jerk[i],
                self.results[i].acc,
                self.results[i].jerk,
                dt,
            );
            sys.pos[i] = c.pos;
            sys.vel[i] = c.vel;
            sys.acc[i] = self.results[i].acc;
            sys.jerk[i] = self.results[i].jerk;
            sys.pot[i] = self.results[i].pot;
            sys.time[i] = t1;
            self.snap[i] = c.snap;
            self.crackle[i] = c.crackle;
            dt_next = dt_next.min(aarseth_dt(sys.acc[i], sys.jerk[i], c.snap, c.crackle, self.eta));
        }
        sys.t = t1;
        engine.update_j(sys, &(0..n).collect::<Vec<_>>());
        // The global step follows the single most demanding particle — the
        // whole point of the paper's §3 critique.
        self.dt = dt_next.clamp(self.dt_min, self.dt_max);
        for i in 0..n {
            sys.dt[i] = self.dt;
        }
        self.stats.block_steps += 1;
        self.stats.particle_steps += n as u64;
        dt
    }

    /// Step until `t_end` (the final step is truncated to land exactly).
    pub fn evolve<E: ForceEngine + ?Sized>(
        &mut self,
        sys: &mut ParticleSystem,
        engine: &mut E,
        t_end: f64,
    ) -> RunStats {
        let start = self.stats;
        while sys.t < t_end - 1e-15 {
            if sys.t + self.dt > t_end {
                self.dt = t_end - sys.t;
            }
            self.step(sys, engine);
        }
        RunStats {
            block_steps: self.stats.block_steps - start.block_steps,
            particle_steps: self.stats.particle_steps - start.particle_steps,
            interactions: self.stats.interactions - start.interactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::total_energy;
    use crate::force::DirectEngine;
    use crate::units;
    use crate::vec3::Vec3;

    fn binary() -> ParticleSystem {
        let mut sys = ParticleSystem::new(0.0, 0.0);
        let m = 0.5;
        let d = 1.0;
        let omega = (1.0f64 / (d * d * d)).sqrt();
        sys.push(Vec3::new(d / 2.0, 0.0, 0.0), Vec3::new(0.0, omega * d / 2.0, 0.0), m);
        sys.push(Vec3::new(-d / 2.0, 0.0, 0.0), Vec3::new(0.0, -omega * d / 2.0, 0.0), m);
        sys
    }

    #[test]
    fn conserves_energy_on_binary() {
        let mut sys = binary();
        let mut engine = DirectEngine::new();
        let mut integ = SharedHermite::new(0.01, 0.125, 1e-12);
        integ.initialize(&mut sys, &mut engine);
        let e0 = total_energy(&sys);
        integ.evolve(&mut sys, &mut engine, units::orbital_period(1.0, 1.0));
        let rel = ((total_energy(&sys) - e0) / e0).abs();
        assert!(rel < 1e-5, "energy error {rel:.2e}");
    }

    #[test]
    fn lands_exactly_on_t_end() {
        let mut sys = binary();
        let mut engine = DirectEngine::new();
        let mut integ = SharedHermite::new(0.01, 0.125, 1e-12);
        integ.initialize(&mut sys, &mut engine);
        integ.evolve(&mut sys, &mut engine, 1.2345);
        assert!((sys.t - 1.2345).abs() < 1e-12);
    }

    #[test]
    fn every_particle_shares_the_step() {
        let mut sys = binary();
        sys.push(Vec3::new(10.0, 0.0, 0.0), Vec3::new(0.0, 0.3, 0.0), 0.01);
        let mut engine = DirectEngine::new();
        let mut integ = SharedHermite::new(0.01, 0.125, 1e-12);
        integ.initialize(&mut sys, &mut engine);
        integ.step(&mut sys, &mut engine);
        assert_eq!(sys.dt[0], sys.dt[1]);
        assert_eq!(sys.dt[1], sys.dt[2]);
        assert_eq!(sys.time[0], sys.time[2]);
    }

    #[test]
    fn close_pair_drags_global_step_down() {
        // A wide pair alone takes large steps; adding a tight binary forces
        // the *global* step to the tight pair's timescale.
        let mut engine = DirectEngine::new();
        let mut wide = ParticleSystem::new(0.0, 1.0);
        wide.push(
            Vec3::new(20.0, 0.0, 0.0),
            Vec3::new(0.0, units::circular_speed(20.0, 1.0), 0.0),
            1e-9,
        );
        wide.push(
            Vec3::new(-25.0, 0.0, 0.0),
            Vec3::new(0.0, -units::circular_speed(25.0, 1.0), 0.0),
            1e-9,
        );
        let mut integ = SharedHermite::new(0.01, 8.0, 1e-12);
        integ.initialize(&mut wide, &mut engine);
        integ.step(&mut wide, &mut engine);
        let dt_wide = integ.current_dt();

        let mut mixed = wide.clone();
        mixed.t = 0.0;
        // Tight binary at 1 AU separation 1e-3.
        let d = 1e-3_f64;
        let m = 1e-6_f64;
        let om = (2.0 * m / (d * d * d)).sqrt();
        mixed.push(
            Vec3::new(5.0 + d / 2.0, 0.0, 0.0),
            Vec3::new(0.0, units::circular_speed(5.0, 1.0) + om * d / 2.0, 0.0),
            m,
        );
        mixed.push(
            Vec3::new(5.0 - d / 2.0, 0.0, 0.0),
            Vec3::new(0.0, units::circular_speed(5.0, 1.0) - om * d / 2.0, 0.0),
            m,
        );
        let mut engine2 = DirectEngine::new();
        let mut integ2 = SharedHermite::new(0.01, 8.0, 1e-12);
        integ2.initialize(&mut mixed, &mut engine2);
        integ2.step(&mut mixed, &mut engine2);
        let dt_mixed = integ2.current_dt();
        assert!(
            dt_mixed < dt_wide / 100.0,
            "global step {dt_mixed} not dragged far below {dt_wide}"
        );
    }
}
