//! # grape6-core
//!
//! The host-side N-body machinery of the SC2002 Gordon Bell entry
//! *"A 29.5 Tflops simulation of planetesimals in Uranus-Neptune region on
//! GRAPE-6"* (Makino, Kokubo, Fukushige & Daisaka):
//!
//! * direct-summation softened gravity with analytic jerk ([`force`]),
//! * the 4th-order Hermite predictor/corrector ([`hermite`]),
//! * the block individual-timestep algorithm ([`blockstep`], [`integrator`]),
//! * the Sun as an external potential ([`central`]),
//! * Kepler-element machinery ([`kepler`]) and diagnostics ([`energy`]),
//! * a shared-timestep baseline ([`shared_step`]) for the paper's §3
//!   algorithmic comparison,
//! * the [`engine::ForceEngine`] seam along which the GRAPE-6 hardware
//!   simulator (crate `grape6-hw`) and the Barnes-Hut baseline (crate
//!   `grape6-tree`) plug in.
//!
//! Units follow the paper (§2): G = M_sun = AU = 1, so one year is 2π time
//! units ([`units`]).
//!
//! ## Quick example
//!
//! ```
//! use grape6_core::prelude::*;
//!
//! // A Sun-orbiting test particle at 20 AU plus a tiny perturber.
//! let mut sys = ParticleSystem::new(0.0, 1.0);
//! sys.push(Vec3::new(20.0, 0.0, 0.0),
//!          Vec3::new(0.0, units::circular_speed(20.0, 1.0), 0.0), 1e-10);
//! sys.push(Vec3::new(0.0, 25.0, 0.0),
//!          Vec3::new(-units::circular_speed(25.0, 1.0), 0.0, 0.0), 1e-10);
//!
//! let mut engine = DirectEngine::new();
//! let mut integ = BlockHermite::new(HermiteConfig::default());
//! integ.initialize(&mut sys, &mut engine);
//! integ.evolve(&mut sys, &mut engine, 1.0);
//! assert!(sys.t >= 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
pub mod blockstep;
pub mod central;
pub mod energy;
pub mod engine;
pub mod force;
pub mod hermite;
pub mod integrator;
pub mod kepler;
pub mod lanes;
pub mod observer;
pub mod particle;
pub mod shared_step;
pub mod sweep;
pub mod units;
pub mod vec3;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use crate::blockstep::SchedulerKind;
    pub use crate::energy::{total_energy, EnergyLedger};
    pub use crate::engine::{FaultStats, ForceEngine};
    pub use crate::force::DirectEngine;
    pub use crate::integrator::{BlockHermite, BlockStepInfo, HermiteConfig, RunStats};
    pub use crate::kepler::{elements_to_state, state_to_elements, Elements};
    pub use crate::lanes::LaneWidth;
    pub use crate::observer::{HostPhase, StepObserver};
    pub use crate::particle::{ForceResult, IParticle, ParticleSystem};
    pub use crate::shared_step::SharedHermite;
    pub use crate::units;
    pub use crate::vec3::Vec3;
}

pub use prelude::*;
