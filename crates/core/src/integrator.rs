//! The block individual-timestep Hermite integrator: the host-side program
//! that drove GRAPE-6 in the paper.
//!
//! Per block step it (1) finds the block of particles due at the next
//! commensurate time, (2) predicts them on the host, (3) asks the force
//! engine (GRAPE or CPU) for acceleration + jerk against *all* particles,
//! (4) adds the Solar external field, (5) applies the Hermite corrector and
//! the quantized Aarseth timestep, and (6) writes the corrected particles
//! back to the engine's j-memory.

use crate::blockstep::{next_block_dt, quantize_dt, EventQueue, SchedulerKind};
use crate::central::central_acc_jerk;
use crate::engine::ForceEngine;
use crate::hermite::{aarseth_dt, correct, initial_dt};
use crate::observer::{HostPhase, StepObserver};
use crate::particle::{ForceResult, IParticle, ParticleSystem};
use crate::vec3::Vec3;

/// Integrator accuracy / step-bound parameters.
#[derive(Debug, Clone, Copy)]
pub struct HermiteConfig {
    /// Aarseth accuracy parameter η (paper-class runs use ~0.01–0.02).
    pub eta: f64,
    /// Startup accuracy parameter η_s (more conservative than η).
    pub eta_start: f64,
    /// Largest allowed step; must be a power of two.
    pub dt_max: f64,
    /// Smallest allowed step; must be a power of two.
    pub dt_min: f64,
}

impl Default for HermiteConfig {
    fn default() -> Self {
        Self { eta: 0.02, eta_start: 0.0025, dt_max: 2.0f64.powi(-3), dt_min: 2.0f64.powi(-40) }
    }
}

impl HermiteConfig {
    /// Validate the power-of-two constraints on the step bounds.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` also catches NaN
    pub fn validate(&self) -> Result<(), String> {
        if !(self.eta > 0.0 && self.eta_start > 0.0) {
            return Err("eta and eta_start must be positive".into());
        }
        for (name, v) in [("dt_max", self.dt_max), ("dt_min", self.dt_min)] {
            if !(v > 0.0) || v.log2().fract() != 0.0 {
                return Err(format!("{name} = {v} must be a positive power of two"));
            }
        }
        if self.dt_min > self.dt_max {
            return Err("dt_min must not exceed dt_max".into());
        }
        Ok(())
    }
}

/// Summary of one block step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockStepInfo {
    /// Block time the system advanced to.
    pub t: f64,
    /// Number of particles integrated in this block.
    pub n_active: usize,
    /// Pairwise interactions evaluated (hardware convention).
    pub interactions: u64,
}

/// Aggregate statistics over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Number of block steps executed.
    pub block_steps: u64,
    /// Total individual particle steps (Σ n_active).
    pub particle_steps: u64,
    /// Total pairwise interactions (hardware convention).
    pub interactions: u64,
}

impl RunStats {
    /// Mean active-block size (paper §4.2: "might be as few as one hundred or
    /// less, even for N = 10⁵ or larger").
    pub fn mean_block_size(&self) -> f64 {
        if self.block_steps == 0 {
            0.0
        } else {
            self.particle_steps as f64 / self.block_steps as f64
        }
    }

    /// Total floating-point operations under the 57-op Gordon Bell
    /// convention (paper §5.2, §6).
    pub fn total_flops(&self) -> u64 {
        self.interactions * crate::force::FLOPS_PER_INTERACTION
    }
}

/// The block-timestep Hermite integrator. Generic over the force engine so
/// the same host code drives the CPU reference, the GRAPE-6 simulator, and
/// the tree baseline.
#[derive(Debug, Clone)]
pub struct BlockHermite {
    /// Accuracy configuration.
    pub config: HermiteConfig,
    scheduler: EventQueue,
    stats: RunStats,
    // Reused workspaces (guide: keep workhorse collections out of hot loops).
    block: Vec<usize>,
    ips: Vec<IParticle>,
    results: Vec<ForceResult>,
    /// Corrected particles whose engine j-entries have not been written yet.
    /// Flushed (sorted, deduplicated) immediately before the next force
    /// evaluation — the latest point the engine contract allows bitwise: the
    /// engine only reads j-memory inside `compute`, and each entry is a pure
    /// function of the owning particle's system state, which does not change
    /// between its correction and the flush. Deferring lets writes coalesce
    /// — a particle touched both by the corrector and by an external
    /// [`Self::mark_dirty`] (e.g. an accretion merge) is sent once, not
    /// twice.
    pending_j: Vec<usize>,
    initialized: bool,
}

impl BlockHermite {
    /// Create an integrator with the given configuration and the default
    /// tick-bucket scheduler.
    pub fn new(config: HermiteConfig) -> Self {
        Self::with_scheduler(config, SchedulerKind::TickBucket)
    }

    /// Create an integrator with an explicit scheduler implementation. Both
    /// kinds produce bitwise-identical trajectories; the heap is kept as the
    /// differential reference.
    pub fn with_scheduler(config: HermiteConfig, kind: SchedulerKind) -> Self {
        config.validate().expect("invalid HermiteConfig");
        Self {
            config,
            scheduler: EventQueue::new(kind, config.dt_min),
            stats: RunStats::default(),
            block: Vec::new(),
            ips: Vec::new(),
            results: Vec::new(),
            pending_j: Vec::new(),
            initialized: false,
        }
    }

    /// Rebuild an integrator mid-run from a checkpointed system state,
    /// *without* re-running initialization (which would recompute initial
    /// accelerations and timesteps and so perturb the trajectory).
    ///
    /// The event schedule is fully determined by the per-particle `time[i]`
    /// and `dt[i]` the corrector left behind, so it is reconstructed here
    /// bit-exactly: every particle is due again at `time[i] + dt[i]`.
    /// The caller must separately `engine.load(sys)` (which reproduces
    /// j-memory bit-identically, since each j-entry is the encoding of the
    /// owning particle's state as of its last correction) and restore
    /// engine counters via `ForceEngine::restore_checkpoint_state`.
    pub fn resume_from(config: HermiteConfig, sys: &ParticleSystem, stats: RunStats) -> Self {
        Self::resume_from_with(config, sys, stats, SchedulerKind::TickBucket)
    }

    /// [`Self::resume_from`] with an explicit scheduler implementation.
    pub fn resume_from_with(
        config: HermiteConfig,
        sys: &ParticleSystem,
        stats: RunStats,
        kind: SchedulerKind,
    ) -> Self {
        config.validate().expect("invalid HermiteConfig");
        let mut scheduler = EventQueue::new(kind, config.dt_min);
        for i in 0..sys.len() {
            scheduler.push(i, sys.time[i] + sys.dt[i]);
        }
        // Reconstruct the deferred j-update set: exactly the particles the
        // corrector (or a merge) touched at the current block time — their
        // flush had not happened yet when the checkpoint was cut, so the
        // resumed run must replay it to keep engine wire accounting (and the
        // flush itself, which `engine.load` has made a no-op rewrite of
        // identical bytes) bit-for-bit aligned with an uninterrupted run.
        let pending_j: Vec<usize> = (0..sys.len()).filter(|&i| sys.time[i] == sys.t).collect();
        Self {
            config,
            scheduler,
            stats,
            block: Vec::new(),
            ips: Vec::new(),
            results: Vec::new(),
            pending_j,
            initialized: true,
        }
    }

    /// Which scheduler implementation this integrator runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.scheduler.kind()
    }

    /// Run statistics accumulated so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Reset run statistics (not the schedule).
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::default();
    }

    /// Whether `initialize` has been called.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Compute initial accelerations, jerks and timesteps for every particle
    /// and build the event schedule. Must be called once before `step`.
    pub fn initialize<E: ForceEngine + ?Sized>(
        &mut self,
        sys: &mut ParticleSystem,
        engine: &mut E,
    ) {
        self.initialize_observed(sys, engine, &mut ());
    }

    /// [`Self::initialize`] with telemetry hooks. The null observer `()`
    /// makes this identical to the unobserved path.
    pub fn initialize_observed<E: ForceEngine + ?Sized, O: StepObserver>(
        &mut self,
        sys: &mut ParticleSystem,
        engine: &mut E,
        obs: &mut O,
    ) {
        assert!(!sys.is_empty(), "cannot initialize an empty system");
        let n = sys.len();
        let wire0 = engine.bytes_transferred();
        engine.load(sys);
        let before = engine.interaction_count();
        obs.phase_begin(HostPhase::Predict);
        self.ips.clear();
        for i in 0..n {
            self.ips.push(IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] });
        }
        obs.phase_end(HostPhase::Predict);
        self.results.clear();
        self.results.resize(n, ForceResult::default());
        obs.phase_begin(HostPhase::Force);
        engine.compute(sys.t, &self.ips, &mut self.results);
        obs.phase_end(HostPhase::Force);
        let init_interactions = engine.interaction_count() - before;
        self.stats.interactions += init_interactions;
        obs.phase_begin(HostPhase::Correct);
        for i in 0..n {
            let mut acc = self.results[i].acc;
            let mut jerk = self.results[i].jerk;
            if sys.central_mass > 0.0 {
                let (ca, cj) = central_acc_jerk(sys.central_mass, sys.pos[i], sys.vel[i]);
                acc += ca;
                jerk += cj;
            }
            sys.acc[i] = acc;
            sys.jerk[i] = jerk;
            sys.pot[i] = self.results[i].pot;
            let dt0 = initial_dt(acc, jerk, self.config.eta_start);
            sys.dt[i] = quantize_dt(dt0, self.config.dt_min, self.config.dt_max);
            sys.time[i] = sys.t;
        }
        // Times must be commensurate with steps; at startup t is typically 0,
        // otherwise shrink steps until they divide the start time.
        for i in 0..n {
            while !crate::blockstep::is_commensurate(sys.time[i], sys.dt[i])
                && sys.dt[i] > self.config.dt_min
            {
                sys.dt[i] *= 0.5;
            }
        }
        obs.phase_end(HostPhase::Correct);
        // The engine mirrored the system *before* accelerations and jerks
        // existed; mark every particle dirty so the deferred flush rewrites
        // j-memory before the first block step reads it.
        self.pending_j.clear();
        self.pending_j.extend(0..n);
        obs.phase_begin(HostPhase::Schedule);
        self.scheduler = EventQueue::new(self.scheduler.kind(), self.config.dt_min);
        for i in 0..n {
            self.scheduler.push(i, sys.time[i] + sys.dt[i]);
        }
        obs.phase_end(HostPhase::Schedule);
        obs.init_step(n, init_interactions);
        obs.wire_transfer(engine.bytes_transferred() - wire0);
        self.initialized = true;
    }

    /// Time of the next pending block step.
    pub fn next_time(&self) -> Option<f64> {
        self.scheduler.peek_time()
    }

    /// Particle indices of the most recent block step (sorted ascending).
    pub fn last_block(&self) -> &[usize] {
        &self.block
    }

    /// Engine results of the most recent block step, aligned with
    /// [`Self::last_block`]. Includes the nearest-neighbour reports the
    /// GRAPE-6 pipelines produce — the hook for collision detection.
    pub fn last_results(&self) -> &[ForceResult] {
        &self.results
    }

    /// Record externally mutated particles (e.g. an accretion merge) whose
    /// engine j-entries must be rewritten before the next force evaluation.
    /// The write is batched with the integrator's own deferred updates, so a
    /// particle corrected this block *and* touched by the caller is sent to
    /// the engine once.
    pub fn mark_dirty(&mut self, indices: &[usize]) {
        self.pending_j.extend_from_slice(indices);
    }

    /// Write all deferred j-updates (sorted, deduplicated) to the engine.
    /// Runs automatically before every force evaluation; exposed for callers
    /// that hand the engine to other readers between steps.
    pub fn flush_j_updates<E: ForceEngine + ?Sized, O: StepObserver>(
        &mut self,
        sys: &ParticleSystem,
        engine: &mut E,
        obs: &mut O,
    ) {
        if self.pending_j.is_empty() {
            return;
        }
        obs.phase_begin(HostPhase::JUpdate);
        self.pending_j.sort_unstable();
        self.pending_j.dedup();
        engine.update_j(sys, &self.pending_j);
        self.pending_j.clear();
        obs.phase_end(HostPhase::JUpdate);
    }

    /// Advance the system by one block step. Returns what happened.
    pub fn step<E: ForceEngine + ?Sized>(
        &mut self,
        sys: &mut ParticleSystem,
        engine: &mut E,
    ) -> BlockStepInfo {
        self.step_observed(sys, engine, &mut ())
    }

    /// [`Self::step`] with telemetry hooks: phase spans around
    /// schedule / predict / force / correct / j-update, plus counter events.
    /// The null observer `()` makes this identical to the unobserved path.
    pub fn step_observed<E: ForceEngine + ?Sized, O: StepObserver>(
        &mut self,
        sys: &mut ParticleSystem,
        engine: &mut E,
        obs: &mut O,
    ) -> BlockStepInfo {
        assert!(self.initialized, "call initialize() first");
        let wire0 = engine.bytes_transferred();
        let mut block = std::mem::take(&mut self.block);
        obs.phase_begin(HostPhase::Schedule);
        let t_block = self
            .scheduler
            .pop_block(&mut block)
            .expect("scheduler exhausted — system has no particles");
        obs.phase_end(HostPhase::Schedule);
        // Host predicts the i-particles.
        obs.phase_begin(HostPhase::Predict);
        self.ips.clear();
        for &i in &block {
            let (pos, vel) = sys.predict(i, t_block);
            self.ips.push(IParticle { index: i, pos, vel });
        }
        obs.phase_end(HostPhase::Predict);
        // Flush the previous block's deferred j-updates now, immediately
        // before the engine reads j-memory. Writing here instead of at the
        // end of the previous step is bitwise-invisible: no force evaluation
        // happened in between, and the entries written are identical (the
        // corrector is the only mutator of the owning particles' state).
        self.flush_j_updates(sys, engine, obs);
        self.results.clear();
        self.results.resize(block.len(), ForceResult::default());
        let before = engine.interaction_count();
        obs.phase_begin(HostPhase::Force);
        engine.compute(t_block, &self.ips, &mut self.results);
        obs.phase_end(HostPhase::Force);
        let interactions = engine.interaction_count() - before;

        // The corrector span also covers the scheduler re-pushes, which are
        // interleaved per particle; `Schedule` covers block extraction only.
        obs.phase_begin(HostPhase::Correct);
        for (k, &i) in block.iter().enumerate() {
            let dt = t_block - sys.time[i];
            debug_assert!(dt > 0.0, "non-positive step for particle {i}");
            let mut acc1 = self.results[k].acc;
            let mut jerk1 = self.results[k].jerk;
            if sys.central_mass > 0.0 {
                let (ca, cj) = central_acc_jerk(sys.central_mass, self.ips[k].pos, self.ips[k].vel);
                acc1 += ca;
                jerk1 += cj;
            }
            let corrected =
                correct(self.ips[k].pos, self.ips[k].vel, sys.acc[i], sys.jerk[i], acc1, jerk1, dt);
            sys.pos[i] = corrected.pos;
            sys.vel[i] = corrected.vel;
            sys.acc[i] = acc1;
            sys.jerk[i] = jerk1;
            sys.pot[i] = self.results[k].pot;
            sys.time[i] = t_block;
            let dt_des =
                aarseth_dt(acc1, jerk1, corrected.snap, corrected.crackle, self.config.eta);
            sys.dt[i] =
                next_block_dt(sys.dt[i], dt_des, t_block, self.config.dt_min, self.config.dt_max);
            self.scheduler.push(i, t_block + sys.dt[i]);
        }
        obs.phase_end(HostPhase::Correct);
        // Defer the block's j-updates: they batch with any accretion marks
        // and land just before the next force evaluation (see `pending_j`).
        self.pending_j.extend_from_slice(&block);
        sys.t = t_block;

        self.stats.block_steps += 1;
        self.stats.particle_steps += block.len() as u64;
        self.stats.interactions += interactions;
        obs.block_step(block.len(), interactions);
        obs.wire_transfer(engine.bytes_transferred() - wire0);
        let info = BlockStepInfo { t: t_block, n_active: block.len(), interactions };
        self.block = block;
        info
    }

    /// Step until the system time reaches (at least) `t_end`.
    pub fn evolve<E: ForceEngine + ?Sized>(
        &mut self,
        sys: &mut ParticleSystem,
        engine: &mut E,
        t_end: f64,
    ) -> RunStats {
        self.evolve_observed(sys, engine, t_end, &mut ())
    }

    /// [`Self::evolve`] with telemetry hooks.
    pub fn evolve_observed<E: ForceEngine + ?Sized, O: StepObserver>(
        &mut self,
        sys: &mut ParticleSystem,
        engine: &mut E,
        t_end: f64,
        obs: &mut O,
    ) -> RunStats {
        let start = self.stats;
        while self.next_time().is_some_and(|t| t <= t_end) {
            self.step_observed(sys, engine, obs);
        }
        sys.t = sys.t.max(t_end.min(self.next_time().unwrap_or(t_end)));
        RunStats {
            block_steps: self.stats.block_steps - start.block_steps,
            particle_steps: self.stats.particle_steps - start.particle_steps,
            interactions: self.stats.interactions - start.interactions,
        }
    }

    /// Positions and velocities of all particles predicted to the common
    /// time `t` (for snapshots and diagnostics; accurate to the integrator's
    /// interpolation order).
    pub fn synchronized_state(sys: &ParticleSystem, t: f64) -> (Vec<Vec3>, Vec<Vec3>) {
        let mut pos = Vec::with_capacity(sys.len());
        let mut vel = Vec::with_capacity(sys.len());
        for i in 0..sys.len() {
            let (p, v) = sys.predict(i, t);
            pos.push(p);
            vel.push(v);
        }
        (pos, vel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::DirectEngine;
    use crate::units;

    fn circular_two_body(separation: f64) -> ParticleSystem {
        // Two equal masses m = 0.5 orbiting their barycentre.
        let mut sys = ParticleSystem::new(0.0, 0.0);
        let m = 0.5;
        let r = separation / 2.0;
        // Circular equal-mass binary: ω² d³ = G M_tot, each body at radius d/2.
        let omega = ((2.0 * m) / (separation * separation * separation)).sqrt();
        let speed = omega * r;
        sys.push(Vec3::new(r, 0.0, 0.0), Vec3::new(0.0, speed, 0.0), m);
        sys.push(Vec3::new(-r, 0.0, 0.0), Vec3::new(0.0, -speed, 0.0), m);
        sys
    }

    #[test]
    fn config_validation() {
        assert!(HermiteConfig::default().validate().is_ok());
        // 0.3 is not a power of two.
        let c = HermiteConfig { dt_max: 0.3, ..HermiteConfig::default() };
        assert!(c.validate().is_err());
        let c = HermiteConfig { dt_min: 1.0, dt_max: 0.5, ..HermiteConfig::default() };
        assert!(c.validate().is_err());
        let c = HermiteConfig { eta: 0.0, ..HermiteConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid HermiteConfig")]
    fn constructor_rejects_bad_config() {
        let c = HermiteConfig { dt_max: 0.7, ..HermiteConfig::default() };
        let _ = BlockHermite::new(c);
    }

    #[test]
    fn initialize_sets_consistent_state() {
        let mut sys = circular_two_body(1.0);
        let mut engine = DirectEngine::new();
        let mut integ = BlockHermite::new(HermiteConfig::default());
        integ.initialize(&mut sys, &mut engine);
        assert!(integ.is_initialized());
        for i in 0..2 {
            assert!(sys.acc[i].norm() > 0.0);
            assert!(sys.dt[i] > 0.0);
            assert!(crate::blockstep::is_commensurate(sys.time[i], sys.dt[i]));
        }
        // Accelerations point toward each other.
        assert!(sys.acc[0].x < 0.0);
        assert!(sys.acc[1].x > 0.0);
    }

    #[test]
    fn binary_orbit_conserves_energy() {
        let mut sys = circular_two_body(1.0);
        let mut engine = DirectEngine::new();
        let mut integ = BlockHermite::new(HermiteConfig::default());
        integ.initialize(&mut sys, &mut engine);
        let e0 = crate::energy::total_energy(&sys);
        let period = units::orbital_period(1.0, 1.0); // M_tot = 1, a = 1
        integ.evolve(&mut sys, &mut engine, period * 3.0);
        let e1 = crate::energy::total_energy(&sys);
        let rel = ((e1 - e0) / e0).abs();
        assert!(rel < 5e-5, "relative energy error {rel:.3e}");
    }

    #[test]
    fn binary_orbit_returns_to_start_after_period() {
        let mut sys = circular_two_body(1.0);
        let x0 = sys.pos[0];
        let mut engine = DirectEngine::new();
        let mut integ = BlockHermite::new(HermiteConfig::default());
        integ.initialize(&mut sys, &mut engine);
        let period = units::orbital_period(1.0, 1.0);
        integ.evolve(&mut sys, &mut engine, period);
        let (pos, _) = BlockHermite::synchronized_state(&sys, period);
        assert!(
            (pos[0] - x0).norm() < 2e-3,
            "did not close orbit: displacement {}",
            (pos[0] - x0).norm()
        );
    }

    #[test]
    fn heliocentric_orbit_with_central_potential() {
        // One massless test particle on a circular heliocentric orbit at 20 AU
        // plus a distant perturber to keep the pairwise engine busy.
        let mut sys = ParticleSystem::new(0.0, 1.0);
        let r = 20.0;
        sys.push(Vec3::new(r, 0.0, 0.0), Vec3::new(0.0, units::circular_speed(r, 1.0), 0.0), 0.0);
        sys.push(
            Vec3::new(-2000.0, 0.0, 0.0),
            Vec3::new(0.0, units::circular_speed(2000.0, 1.0), 0.0),
            1e-12,
        );
        let mut engine = DirectEngine::new();
        let cfg = HermiteConfig { dt_max: 2.0f64.powi(-2), ..HermiteConfig::default() };
        let mut integ = BlockHermite::new(cfg);
        integ.initialize(&mut sys, &mut engine);
        let period = units::orbital_period(r, 1.0);
        integ.evolve(&mut sys, &mut engine, period);
        let (pos, _) = BlockHermite::synchronized_state(&sys, period);
        // Radius conserved to high accuracy on a circular orbit.
        assert!((pos[0].norm() - r).abs() / r < 1e-6);
    }

    #[test]
    fn stats_accumulate() {
        let mut sys = circular_two_body(1.0);
        let mut engine = DirectEngine::new();
        let mut integ = BlockHermite::new(HermiteConfig::default());
        integ.initialize(&mut sys, &mut engine);
        let s = integ.evolve(&mut sys, &mut engine, 1.0);
        assert!(s.block_steps > 0);
        assert!(s.particle_steps >= s.block_steps);
        assert_eq!(s.interactions, s.particle_steps * 2); // N = 2 j-particles each
        assert!(integ.stats().mean_block_size() >= 1.0);
        assert_eq!(s.total_flops(), s.interactions * 57);
    }

    #[test]
    fn particle_times_never_exceed_system_time() {
        let mut sys = circular_two_body(0.7);
        let mut engine = DirectEngine::new();
        let mut integ = BlockHermite::new(HermiteConfig::default());
        integ.initialize(&mut sys, &mut engine);
        for _ in 0..200 {
            integ.step(&mut sys, &mut engine);
            assert!(sys.validate().is_ok(), "{:?}", sys.validate());
            for i in 0..sys.len() {
                assert!(crate::blockstep::is_commensurate(sys.time[i], sys.dt[i]));
            }
        }
    }

    #[test]
    fn resume_from_reproduces_uninterrupted_run_bitwise() {
        // Uninterrupted reference run.
        let mut sys_a = circular_two_body(1.0);
        let mut eng_a = DirectEngine::new();
        let mut integ_a = BlockHermite::new(HermiteConfig::default());
        integ_a.initialize(&mut sys_a, &mut eng_a);
        integ_a.evolve(&mut sys_a, &mut eng_a, 2.0);

        // Interrupted run: stop at t = 1, "checkpoint" (clone the system),
        // rebuild integrator + engine from that state, continue to t = 2.
        let mut sys_b = circular_two_body(1.0);
        let mut eng_b = DirectEngine::new();
        let mut integ_b = BlockHermite::new(HermiteConfig::default());
        integ_b.initialize(&mut sys_b, &mut eng_b);
        integ_b.evolve(&mut sys_b, &mut eng_b, 1.0);
        let snapshot = sys_b.clone();
        let stats = integ_b.stats();

        let mut sys_c = snapshot;
        let mut eng_c = DirectEngine::new();
        eng_c.load(&sys_c);
        let mut integ_c = BlockHermite::resume_from(HermiteConfig::default(), &sys_c, stats);
        assert!(integ_c.is_initialized());
        integ_c.evolve(&mut sys_c, &mut eng_c, 2.0);

        assert_eq!(sys_a.t.to_bits(), sys_c.t.to_bits());
        for i in 0..sys_a.len() {
            assert_eq!(sys_a.pos[i], sys_c.pos[i]);
            assert_eq!(sys_a.vel[i], sys_c.vel[i]);
            assert_eq!(sys_a.acc[i], sys_c.acc[i]);
            assert_eq!(sys_a.jerk[i], sys_c.jerk[i]);
            assert_eq!(sys_a.time[i].to_bits(), sys_c.time[i].to_bits());
            assert_eq!(sys_a.dt[i].to_bits(), sys_c.dt[i].to_bits());
        }
        assert_eq!(integ_a.stats(), integ_c.stats());
    }

    #[test]
    fn eccentric_binary_shrinks_timestep_at_pericenter() {
        // e ≈ 0.9 binary: the step at pericenter must be much smaller than at
        // apocenter — the wide-timescale-range property of §3.
        let mut sys = ParticleSystem::new(0.0, 0.0);
        let m = 0.5;
        // Start at apocenter r_a = 1, with speed for e = 0.9: v_a² = GM(1-e)/(a(1+e)), a = r_a/(1+e)
        let e = 0.9;
        let ra: f64 = 1.0;
        let a = ra / (1.0 + e);
        let va = ((1.0 - e) / (1.0 + e) / a).sqrt(); // GM_tot = 1
        sys.push(Vec3::new(ra / 2.0, 0.0, 0.0), Vec3::new(0.0, va / 2.0, 0.0), m);
        sys.push(Vec3::new(-ra / 2.0, 0.0, 0.0), Vec3::new(0.0, -va / 2.0, 0.0), m);
        let mut engine = DirectEngine::new();
        let mut integ = BlockHermite::new(HermiteConfig::default());
        integ.initialize(&mut sys, &mut engine);
        let dt_apo = sys.dt[0];
        let period = units::orbital_period(a, 1.0);
        // Integrate half a period → pericenter.
        integ.evolve(&mut sys, &mut engine, period / 2.0);
        let dt_peri = sys.dt[0];
        assert!(dt_peri < dt_apo / 8.0, "dt_peri {dt_peri} not ≪ dt_apo {dt_apo}");
        // Energy still conserved through the close passage.
        let drift = ((crate::energy::total_energy(&sys)
            - (-0.5 * m * m / (2.0 * a) * 2.0)) // E = -G m1 m2 / 2a
            / (m * m / (2.0 * a)))
            .abs();
        assert!(drift < 1e-4, "energy drift {drift:.2e}");
    }
}
