//! The force-engine abstraction: the seam between the host computer and the
//! GRAPE hardware (paper Fig 1).
//!
//! The host ships predicted i-particles down, the engine returns
//! accelerations, jerks and potentials computed against its resident
//! j-particle memory. Implementations:
//!
//! * [`crate::force::DirectEngine`] — CPU direct summation (reference),
//! * `grape6_hw::Grape6Engine` — the functional + timing GRAPE-6 simulator,
//! * `grape6_tree::TreeEngine` — the Barnes-Hut baseline the paper argues
//!   against in §3.

use crate::particle::{ForceResult, IParticle, ParticleSystem};
use serde::{Deserialize, Serialize};

/// Fault-tolerance counters an engine accumulates over a run. Engines
/// without a fault model report all zeros. Every count is exact integer
/// work accounting — deterministic for a given fault plan, independent of
/// host thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Faults injected into the engine (memory upsets, link flips, dead
    /// boards).
    #[serde(default)]
    pub injected: u64,
    /// Force blocks on which dual-modular redundancy caught a bitwise
    /// disagreement between the two units.
    #[serde(default)]
    pub dmr_mismatches: u64,
    /// Wire packets rejected by their per-packet checksum.
    #[serde(default)]
    pub checksum_errors: u64,
    /// Block recomputations forced by a detected fault (each one re-charges
    /// the modeled hardware clock — the throughput lost to recovery).
    #[serde(default)]
    pub retries: u64,
    /// Memory-scrub passes run against the host's authoritative copy.
    #[serde(default)]
    pub scrubs: u64,
    /// j-memory words a scrub pass found corrupted and rewrote.
    #[serde(default)]
    pub words_scrubbed: u64,
    /// Processor boards permanently lost (the timing model is repartitioned
    /// around each, charging the lost throughput for the rest of the run).
    #[serde(default)]
    pub boards_failed: u64,
}

impl FaultStats {
    /// True when no fault activity of any kind was recorded.
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Faults detected by either mechanism (DMR or packet checksum).
    pub fn detected(&self) -> u64 {
        self.dmr_mismatches + self.checksum_errors
    }
}

/// Work counters a tree-walking engine accumulates over a run. Exact
/// integer accounting — deterministic for a given particle history,
/// independent of host thread count (walks are pure per-i functions and the
/// counters are associative sums).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeWork {
    /// Octrees built (one per distinct force time, under individual
    /// timesteps typically one per block step).
    #[serde(default)]
    pub builds: u64,
    /// Internal cells opened (recursed into) across all walks.
    #[serde(default)]
    pub cells_opened: u64,
    /// Pairwise interactions summed directly at full precision from the
    /// radius-based near-field neighbour lists (self terms included, by the
    /// hardware convention).
    #[serde(default)]
    pub near_interactions: u64,
    /// Far-field interactions against accepted cells and leaf bodies beyond
    /// the neighbour radius.
    #[serde(default)]
    pub far_interactions: u64,
    /// Interaction-list entries emitted, summed over every walk (near + far;
    /// `/ lists_emitted` gives the mean GRAPE list length).
    #[serde(default)]
    pub list_len_sum: u64,
    /// Longest single interaction list (near + far) emitted by any walk.
    #[serde(default)]
    pub list_len_max: u64,
    /// Walks performed (one per i-particle per force call).
    #[serde(default)]
    pub lists_emitted: u64,
}

impl TreeWork {
    /// True when no tree work of any kind was recorded.
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Fold another accumulator in (exact integer sums; `list_len_max` takes
    /// the maximum).
    pub fn merge(&mut self, other: &Self) {
        self.builds += other.builds;
        self.cells_opened += other.cells_opened;
        self.near_interactions += other.near_interactions;
        self.far_interactions += other.far_interactions;
        self.list_len_sum += other.list_len_sum;
        self.list_len_max = self.list_len_max.max(other.list_len_max);
        self.lists_emitted += other.lists_emitted;
    }
}

/// A device that computes softened gravity (and its time derivative) on
/// request, holding its own mirror of the particle data.
pub trait ForceEngine {
    /// (Re)load the complete particle set into the engine's j-memory.
    ///
    /// In hardware this is the initial DMA of all particle data to the
    /// SSRAM banks of every processor chip.
    fn load(&mut self, sys: &ParticleSystem);

    /// Refresh the j-memory entries for the given (just-corrected)
    /// particles. In hardware this is the per-blockstep write-back of the
    /// active block over the host interface / network boards.
    fn update_j(&mut self, sys: &ParticleSystem, indices: &[usize]);

    /// Compute force, jerk and potential on each i-particle at time `t`.
    /// The engine predicts its j-particles to `t` internally (the GRAPE-6
    /// predictor pipeline).
    fn compute(&mut self, t: f64, ips: &[IParticle], out: &mut [ForceResult]);

    /// Total pairwise interactions evaluated since the last reset, counted
    /// with the hardware convention (`n_i × n_j` per call, self term
    /// included).
    fn interaction_count(&self) -> u64;

    /// Reset the interaction counter (and any other statistics).
    fn reset_counters(&mut self) {}

    /// Total bytes moved across the modeled host↔hardware wire since the
    /// last reset (i-particle uploads, force downloads, j-memory writes).
    /// Engines with no wire (CPU, tree) report 0.
    fn bytes_transferred(&self) -> u64 {
        0
    }

    /// Modeled machine seconds accumulated since the last clock reset.
    /// Engines without a timing model (CPU, tree) report 0.
    fn modeled_seconds(&self) -> f64 {
        0.0
    }

    /// Fault-tolerance counters accumulated since the engine was created.
    /// Engines without a fault model report [`FaultStats::default`].
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Tree-walk work counters accumulated since the last reset. Engines
    /// that never build a tree report `None`.
    fn tree_work(&self) -> Option<TreeWork> {
        None
    }

    /// Opaque engine state a checkpoint must carry to make a resumed run
    /// bit-identical to an uninterrupted one: accumulated clocks and
    /// counters that `load` alone cannot reconstruct. Engines whose entire
    /// state is rebuilt by `load` return an empty vector.
    fn checkpoint_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore state produced by [`Self::checkpoint_state`]. Called *after*
    /// `load` on resume, so counters charged by the reload are overwritten
    /// with the checkpointed values.
    fn restore_checkpoint_state(&mut self, state: &[u8]) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(format!("engine '{}' cannot restore checkpoint state", self.name()))
        }
    }

    /// Short human-readable engine name.
    fn name(&self) -> &'static str;
}

/// Blanket helper: compute forces for a set of system indices, predicting the
/// i-particles on the host side.
pub fn compute_for_indices<E: ForceEngine + ?Sized>(
    engine: &mut E,
    sys: &ParticleSystem,
    t: f64,
    indices: &[usize],
    out: &mut Vec<ForceResult>,
) -> Vec<IParticle> {
    let ips: Vec<IParticle> = indices
        .iter()
        .map(|&i| {
            let (pos, vel) = sys.predict(i, t);
            IParticle { index: i, pos, vel }
        })
        .collect();
    out.clear();
    out.resize(ips.len(), ForceResult::default());
    engine.compute(t, &ips, out);
    ips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::DirectEngine;
    use crate::vec3::Vec3;

    #[test]
    fn compute_for_indices_predicts_i_particles() {
        let mut sys = ParticleSystem::new(0.0, 0.0);
        sys.push(Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0), 1.0);
        sys.push(Vec3::new(10.0, 0.0, 0.0), Vec3::zero(), 1.0);
        let mut e = DirectEngine::new();
        e.load(&sys);
        let mut out = Vec::new();
        // At t = 2 particle 0 has drifted to x = 2 (pure velocity, no acc).
        let ips = compute_for_indices(&mut e, &sys, 2.0, &[0], &mut out);
        assert_eq!(ips[0].pos, Vec3::new(2.0, 0.0, 0.0));
        // Distance to particle 1 is 8 → acc = 1/64.
        assert!((out[0].acc.x - 1.0 / 64.0).abs() < 1e-15);
    }
}
