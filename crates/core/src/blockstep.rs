//! The block individual-timestep machinery (paper §3, §4.2; McMillan 1986,
//! Makino 1991).
//!
//! Timesteps are forced to powers of two and particle times are kept
//! commensurate with their steps, so that at every moment a whole *block* of
//! particles shares the same update time and can be integrated in parallel —
//! the property that makes the GRAPE pipelines (and any parallel hardware)
//! usable at all with individual timesteps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Round `dt` down to the nearest power of two, clamped to
/// `[dt_min, dt_max]`. `dt_max` and `dt_min` must themselves be powers of
/// two.
#[inline]
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(dt > 0)` also catches NaN
pub fn quantize_dt(dt: f64, dt_min: f64, dt_max: f64) -> f64 {
    debug_assert!(dt_min > 0.0 && dt_max >= dt_min);
    if !(dt > 0.0) {
        // NaN or non-positive desired step: take the floor of the range.
        return dt_min;
    }
    if dt >= dt_max {
        return dt_max;
    }
    // Largest power of two ≤ dt: exact via exponent extraction.
    let q = 2.0f64.powi(dt.log2().floor() as i32);
    // log2/floor can land one octave high for values just below a power of
    // two due to rounding; fix up deterministically.
    let q = if q > dt { q * 0.5 } else { q };
    q.clamp(dt_min, dt_max)
}

/// Decompose a finite non-zero float as `|x| = m · 2^e` with `m` odd.
///
/// This is the exact integer view of a binary float that tick arithmetic
/// needs: `m` carries every significant bit, `e` the position of the lowest
/// set bit. Subnormals decompose the same way (their implicit leading bit is
/// zero, not one).
#[inline]
fn odd_mantissa_exp(x: f64) -> (u64, i64) {
    debug_assert!(x.is_finite() && x != 0.0);
    let bits = x.abs().to_bits();
    let raw_exp = (bits >> 52) & 0x7ff;
    let frac = bits & ((1u64 << 52) - 1);
    let (m, e) = if raw_exp == 0 {
        (frac, -1074i64) // subnormal: no implicit bit
    } else {
        (frac | (1u64 << 52), raw_exp as i64 - 1075)
    };
    let tz = m.trailing_zeros();
    (m >> tz, e + i64::from(tz))
}

/// True if time `t` is an integer multiple of `dt`, computed **exactly** via
/// mantissa/exponent arithmetic.
///
/// The obvious `(t / dt).fract() == 0.0` is wrong once `t/dt ≥ 2^53`: every
/// float of that magnitude is integer-valued, so the division rounds to an
/// integer and `fract()` vanishes no matter what the true ratio was. With
/// `dt_min = 2^-40` that magnitude is reached by `t ≥ 2^13` against a
/// dt_min-scale divisor — inside the paper's integration span. Writing
/// `t = mt · 2^et` and `dt = md · 2^ed` with odd `mt`, `md`, the ratio is an
/// integer iff `md` divides `mt` and `et ≥ ed`; both tests are exact in u64.
#[inline]
pub fn is_commensurate(t: f64, dt: f64) -> bool {
    if dt == 0.0 || !t.is_finite() || !dt.is_finite() {
        return false;
    }
    if t == 0.0 {
        return true;
    }
    let (mt, et) = odd_mantissa_exp(t);
    let (md, ed) = odd_mantissa_exp(dt);
    et >= ed && mt % md == 0
}

/// Given the step `dt_old` just completed at new time `t_new` and the desired
/// step `dt_des` from the timestep criterion, choose the next block step:
///
/// * shrink freely (halving preserves commensurability),
/// * grow at most ×2, and only when `t_new` is commensurate with the doubled
///   step (the McMillan rule),
/// * clamp to `[dt_min, dt_max]`.
#[inline]
pub fn next_block_dt(dt_old: f64, dt_des: f64, t_new: f64, dt_min: f64, dt_max: f64) -> f64 {
    if dt_des < dt_old {
        return quantize_dt(dt_des, dt_min, dt_max.min(dt_old));
    }
    if dt_des >= 2.0 * dt_old && dt_old < dt_max && is_commensurate(t_new, 2.0 * dt_old) {
        return (2.0 * dt_old).min(dt_max);
    }
    dt_old.clamp(dt_min, dt_max)
}

/// Total-ordering wrapper so event times can live in a heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Event queue over particle update times.
///
/// Every particle has exactly one pending event (its next update time
/// `time[i] + dt[i]`). A block step pops *all* events sharing the minimum
/// time — that set is the active block the paper integrates in parallel on
/// the GRAPE pipelines.
#[derive(Debug, Default, Clone)]
pub struct BlockScheduler {
    heap: BinaryHeap<Reverse<(OrdF64, usize)>>,
}

impl BlockScheduler {
    /// Empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from per-particle next-update times.
    pub fn from_times(next_times: &[f64]) -> Self {
        let mut s = Self::new();
        for (i, &t) in next_times.iter().enumerate() {
            s.push(i, t);
        }
        s
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule (or reschedule after an update) particle `i` at time `t`.
    pub fn push(&mut self, i: usize, t: f64) {
        self.heap.push(Reverse((OrdF64(t), i)));
    }

    /// The earliest pending update time.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse((t, _))| t.0)
    }

    /// Pop the full block of particles due at the minimum time. Returns the
    /// block time and the particle indices (ascending). The caller must push
    /// each popped particle back with its new next-update time.
    pub fn pop_block(&mut self, out: &mut Vec<usize>) -> Option<f64> {
        out.clear();
        let Reverse((t0, i0)) = self.heap.pop()?;
        out.push(i0);
        while let Some(&Reverse((t, _))) = self.heap.peek() {
            if t != t0 {
                break;
            }
            let Reverse((_, i)) = self.heap.pop().unwrap();
            out.push(i);
        }
        out.sort_unstable();
        Some(t0.0)
    }
}

/// One rung of the tick-bucket ring: all pending events whose tick shares
/// this bucket's trailing-zero count. Under the commensurate power-of-two
/// contract they all share a *single* tick (see [`TickScheduler`]), recorded
/// here together with the f64 time exactly as it was pushed.
#[derive(Debug, Clone, Default)]
struct TickBucket {
    tick: u64,
    time: f64,
    items: Vec<usize>,
}

/// Integer tick-bucket event queue — the O(block) replacement for the
/// float-keyed [`BlockScheduler`] heap.
///
/// # Tick representation
///
/// Every particle time and step the integrator produces is a power-of-two
/// multiple of `dt_min`, so each event time is represented exactly as a
/// `u64` tick `t / dt_min` (a power-of-two division: exponent shift, no
/// rounding). Events live in a ring of 64 buckets keyed by
/// `trailing_zeros(tick)` — the event's rung in the block-step hierarchy.
///
/// # Why one bucket holds exactly one tick
///
/// A pending event of a particle with step `2^r` ticks sits at a tick that
/// is a multiple of `2^r` (commensurability) inside the half-open window
/// `(T, T + 2^r]`, where `T` is the last popped block tick — its owner was
/// last corrected at or before `T` and is not yet due. Its bucket index
/// `b = trailing_zeros(tick) ≥ r`, and a window of length `2^r ≤ 2^b`
/// contains at most one multiple of `2^b`. Hence all events that land in
/// bucket `b` share one tick, pushes are O(1), and [`Self::pop_block`] is a
/// 64-bucket min-scan plus a drain of the winning bucket — no comparisons
/// against float keys, no heap, O(block) amortized.
///
/// # Equivalence with the heap scheduler
///
/// For tick counts below 2^53 the map `t ↔ tick` is a strictly monotone
/// bijection on multiples of `dt_min`, so the minimum tick is the minimum
/// time, the popped set is exactly the heap's popped set, and both sort the
/// block ascending — the emitted `(time, block)` sequence is identical, and
/// therefore so is every downstream trajectory bit. The f64 time returned
/// is the value the caller pushed, never a back-conversion.
///
/// Pushes that violate the contract (times that are not commensurate
/// multiples of `dt_min`) spill into an overflow list that the pop scan
/// also consults, so the queue degrades gracefully instead of reordering
/// events; the integrator never exercises that path.
#[derive(Debug, Clone)]
pub struct TickScheduler {
    /// 1 / dt_min — a power of two, so `t * inv_dt_min` is exact.
    inv_dt_min: f64,
    buckets: Vec<TickBucket>,
    /// Bit `b` set ⇔ `buckets[b]` is non-empty.
    occupied: u64,
    /// Out-of-contract events: (tick, pushed time, index).
    overflow: Vec<(u64, f64, usize)>,
    /// Scratch bitmap over particle indices (bit `i` set ⇔ `i` is in the
    /// block being drained): emitting set bits in word order yields the
    /// ascending block without an O(b log b) sort. Always all-zero between
    /// [`Self::pop_block`] calls.
    block_bits: Vec<u64>,
    /// Out-of-contract duplicate indices seen while draining one block
    /// (a particle pushed twice at the same time); forces the sort
    /// fallback so the emitted multiset still matches the heap's.
    dup_scratch: Vec<usize>,
    len: usize,
}

const TICK_BUCKETS: usize = 64;

impl TickScheduler {
    /// Empty scheduler for a schedule quantized to `dt_min` (must be a
    /// positive power of two).
    pub fn new(dt_min: f64) -> Self {
        assert!(
            dt_min > 0.0 && dt_min.is_finite() && odd_mantissa_exp(dt_min).0 == 1,
            "dt_min = {dt_min} must be a positive power of two"
        );
        Self {
            inv_dt_min: 1.0 / dt_min,
            buckets: vec![TickBucket::default(); TICK_BUCKETS],
            occupied: 0,
            overflow: Vec::new(),
            block_bits: Vec::new(),
            dup_scratch: Vec::new(),
            len: 0,
        }
    }

    /// Build from per-particle next-update times.
    pub fn from_times(next_times: &[f64], dt_min: f64) -> Self {
        let mut s = Self::new(dt_min);
        for (i, &t) in next_times.iter().enumerate() {
            s.push(i, t);
        }
        s
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn tick_of(&self, t: f64) -> u64 {
        let ticks = t * self.inv_dt_min;
        debug_assert!(
            ticks >= 0.0 && ticks.fract() == 0.0,
            "time {t} is not a non-negative multiple of dt_min"
        );
        ticks as u64 // saturating on overflow/NaN: deterministic
    }

    /// Schedule (or reschedule after an update) particle `i` at time `t`.
    // grape6-lint: hot
    pub fn push(&mut self, i: usize, t: f64) {
        let tick = self.tick_of(t);
        let b = (tick.trailing_zeros() as usize).min(TICK_BUCKETS - 1);
        let bucket = &mut self.buckets[b];
        if bucket.items.is_empty() {
            bucket.tick = tick;
            bucket.time = t;
            bucket.items.push(i);
            self.occupied |= 1 << b;
        } else if bucket.tick == tick {
            bucket.items.push(i);
        } else {
            // Out-of-contract push; spill rather than corrupt the bucket.
            self.overflow.push((tick, t, i));
        }
        self.len += 1;
    }

    /// Minimum pending (tick, time) over buckets and overflow.
    #[inline]
    fn peek_min(&self) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        let mut mask = self.occupied;
        while mask != 0 {
            let b = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let bucket = &self.buckets[b];
            if best.is_none_or(|(t, _)| bucket.tick < t) {
                best = Some((bucket.tick, bucket.time));
            }
        }
        for &(tick, time, _) in &self.overflow {
            if best.is_none_or(|(t, _)| tick < t) {
                best = Some((tick, time));
            }
        }
        best
    }

    /// The earliest pending update time.
    pub fn peek_time(&self) -> Option<f64> {
        self.peek_min().map(|(_, t)| t)
    }

    /// Mark index `i` in the block bitmap. An already-set bit is an
    /// out-of-contract duplicate (one particle pushed twice at one time);
    /// it is parked in `dup_scratch` so [`Self::pop_block`] can fall back
    /// to a sort and still emit the heap scheduler's exact multiset.
    #[inline]
    fn mark(&mut self, i: usize) {
        let w = i >> 6;
        if w >= self.block_bits.len() {
            // Grows to max-seen-index/64 words once (16 KiB at N = 2^20),
            // then never again — not a steady-state allocation.
            self.block_bits.resize(w + 1, 0);
        }
        let bit = 1u64 << (i & 63);
        if self.block_bits[w] & bit != 0 {
            self.dup_scratch.push(i);
        } else {
            self.block_bits[w] |= bit;
        }
    }

    /// Pop the full block of particles due at the minimum time. Returns the
    /// block time and the particle indices (ascending) — the same set, order
    /// and f64 time the heap scheduler would produce. The caller must push
    /// each popped particle back with its new next-update time.
    ///
    /// Ascending order comes from a scratch bitmap over particle indices,
    /// emitted in word order: O(block + touched words), no comparison sort
    /// — the sort the heap pays per pop is exactly the O(b log b) term this
    /// scheduler removes from the large-N host budget.
    // grape6-lint: hot
    pub fn pop_block(&mut self, out: &mut Vec<usize>) -> Option<f64> {
        out.clear();
        let (tick0, t0) = self.peek_min()?;
        let mut drained = 0usize;
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        // Under the contract exactly one bucket holds tick0; scanning all of
        // them (plus overflow) keeps out-of-contract pushes heap-equivalent.
        let mut mask = self.occupied;
        while mask != 0 {
            let b = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if self.buckets[b].tick != tick0 {
                continue;
            }
            let mut items = std::mem::take(&mut self.buckets[b].items);
            for &i in &items {
                self.mark(i);
                lo = lo.min(i >> 6);
                hi = hi.max(i >> 6);
            }
            drained += items.len();
            items.clear();
            self.buckets[b].items = items; // hand the capacity back
            self.occupied &= !(1 << b);
        }
        if !self.overflow.is_empty() {
            let mut spill = std::mem::take(&mut self.overflow);
            spill.retain(|&(tick, _, i)| {
                if tick == tick0 {
                    self.mark(i);
                    lo = lo.min(i >> 6);
                    hi = hi.max(i >> 6);
                    drained += 1;
                    false
                } else {
                    true
                }
            });
            self.overflow = spill;
        }
        if lo <= hi {
            for w in lo..=hi {
                let mut word = self.block_bits[w];
                self.block_bits[w] = 0;
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    out.push((w << 6) | b);
                }
            }
        }
        if !self.dup_scratch.is_empty() {
            // Out-of-contract duplicates: sort the combined multiset so the
            // emitted block still matches the heap scheduler bit for bit.
            out.append(&mut self.dup_scratch);
            out.sort_unstable();
        }
        self.len -= drained;
        Some(t0)
    }
}

/// Which event-queue implementation the integrator schedules blocks with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Integer tick buckets (default): O(block) pops, no float keys.
    TickBucket,
    /// The original `BinaryHeap<Reverse<(OrdF64, usize)>>` reference.
    Heap,
}

impl SchedulerKind {
    /// Stable lowercase name (CLI / bench / report vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Self::TickBucket => "tick",
            Self::Heap => "heap",
        }
    }

    /// Parse the vocabulary accepted on the command line.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tick" | "tick-bucket" | "bucket" => Some(Self::TickBucket),
            "heap" => Some(Self::Heap),
            _ => None,
        }
    }
}

/// The integrator-facing event queue: either scheduler behind one API.
///
/// Both variants emit bitwise-identical `(time, block)` sequences on
/// commensurate power-of-two schedules (see [`TickScheduler`]), so the
/// choice can never change trajectory bits — a property pinned by the
/// differential proptest below, `tests/scheduler_determinism.rs`, and the
/// `sched/tick-vs-heap` conformance check.
#[derive(Debug, Clone)]
pub enum EventQueue {
    /// Tick-bucket scheduler.
    Tick(TickScheduler),
    /// Binary-heap scheduler.
    Heap(BlockScheduler),
}

impl EventQueue {
    /// Empty queue of the given kind; `dt_min` is the tick quantum.
    pub fn new(kind: SchedulerKind, dt_min: f64) -> Self {
        match kind {
            SchedulerKind::TickBucket => Self::Tick(TickScheduler::new(dt_min)),
            SchedulerKind::Heap => Self::Heap(BlockScheduler::new()),
        }
    }

    /// Which implementation this queue uses.
    pub fn kind(&self) -> SchedulerKind {
        match self {
            Self::Tick(_) => SchedulerKind::TickBucket,
            Self::Heap(_) => SchedulerKind::Heap,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            Self::Tick(s) => s.len(),
            Self::Heap(s) => s.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule (or reschedule after an update) particle `i` at time `t`.
    #[inline]
    pub fn push(&mut self, i: usize, t: f64) {
        match self {
            Self::Tick(s) => s.push(i, t),
            Self::Heap(s) => s.push(i, t),
        }
    }

    /// The earliest pending update time.
    pub fn peek_time(&self) -> Option<f64> {
        match self {
            Self::Tick(s) => s.peek_time(),
            Self::Heap(s) => s.peek_time(),
        }
    }

    /// Pop the block due at the minimum time (see [`TickScheduler::pop_block`]).
    #[inline]
    pub fn pop_block(&mut self, out: &mut Vec<usize>) -> Option<f64> {
        match self {
            Self::Tick(s) => s.pop_block(out),
            Self::Heap(s) => s.pop_block(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_rounds_down_to_power_of_two() {
        assert_eq!(quantize_dt(0.3, 1e-10, 1.0), 0.25);
        assert_eq!(quantize_dt(0.25, 1e-10, 1.0), 0.25);
        assert_eq!(quantize_dt(0.9, 1e-10, 1.0), 0.5);
        assert_eq!(quantize_dt(1.0 / 1024.0 * 1.5, 1e-10, 1.0), 1.0 / 1024.0);
    }

    #[test]
    fn quantize_clamps_to_range() {
        assert_eq!(quantize_dt(100.0, 1e-10, 0.125), 0.125);
        assert_eq!(quantize_dt(1e-30, 1e-10, 1.0), 1e-10);
        assert_eq!(quantize_dt(f64::INFINITY, 1e-10, 0.5), 0.5);
    }

    #[test]
    fn quantize_handles_degenerate_input() {
        assert_eq!(quantize_dt(f64::NAN, 0.25, 1.0), 0.25);
        assert_eq!(quantize_dt(0.0, 0.25, 1.0), 0.25);
        assert_eq!(quantize_dt(-1.0, 0.25, 1.0), 0.25);
    }

    #[test]
    fn quantize_result_is_power_of_two() {
        let dt_min = 2.0f64.powi(-40);
        for x in [0.7, 0.3e-3, 1.9e-6, 0.501, 0.4999, 3.0e-9] {
            let q = quantize_dt(x, dt_min, 1.0);
            assert!(q <= x);
            assert_eq!(q.log2().fract(), 0.0, "{q} not a power of two");
            assert!(2.0 * q > x, "{q} not the largest power of two ≤ {x}");
        }
    }

    #[test]
    fn commensurability_basic() {
        assert!(is_commensurate(0.0, 0.25));
        assert!(is_commensurate(0.75, 0.25));
        assert!(!is_commensurate(0.75, 0.5));
        assert!(is_commensurate(1.0, 0.5));
        assert!(!is_commensurate(1.0, 0.0));
    }

    #[test]
    fn commensurability_exact_over_many_steps() {
        // Accumulate 2⁻¹³ ten thousand times: binary-exact, so every
        // intermediate time must remain commensurate.
        let dt = 2.0f64.powi(-13);
        let mut t = 0.0;
        for _ in 0..10_000 {
            t += dt;
            assert!(is_commensurate(t, dt));
        }
    }

    #[test]
    fn next_dt_shrinks_freely() {
        let dt = next_block_dt(0.25, 0.03, 0.75, 1e-10, 1.0);
        assert_eq!(dt, 0.015625); // 2^-6 ≤ 0.03
    }

    #[test]
    fn next_dt_grows_only_when_commensurate() {
        // t_new = 0.75 is NOT a multiple of 0.5, so the step must stay 0.25.
        assert_eq!(next_block_dt(0.25, 10.0, 0.75, 1e-10, 1.0), 0.25);
        // t_new = 0.5 IS a multiple of 0.5 → allowed to double.
        assert_eq!(next_block_dt(0.25, 10.0, 0.5, 1e-10, 1.0), 0.5);
    }

    #[test]
    fn next_dt_grows_at_most_twofold() {
        assert_eq!(next_block_dt(0.25, 100.0, 1.0, 1e-10, 8.0), 0.5);
    }

    #[test]
    fn next_dt_respects_dt_max() {
        assert_eq!(next_block_dt(0.5, 100.0, 1.0, 1e-10, 0.5), 0.5);
    }

    #[test]
    fn scheduler_pops_whole_block() {
        let mut s = BlockScheduler::new();
        s.push(0, 1.0);
        s.push(1, 0.5);
        s.push(2, 0.5);
        s.push(3, 2.0);
        let mut block = Vec::new();
        let t = s.pop_block(&mut block).unwrap();
        assert_eq!(t, 0.5);
        assert_eq!(block, vec![1, 2]);
        let t = s.pop_block(&mut block).unwrap();
        assert_eq!(t, 1.0);
        assert_eq!(block, vec![0]);
    }

    #[test]
    fn scheduler_roundtrip_preserves_count() {
        let mut s = BlockScheduler::from_times(&[0.25, 0.5, 0.25, 1.0]);
        assert_eq!(s.len(), 4);
        let mut block = Vec::new();
        s.pop_block(&mut block).unwrap();
        assert_eq!(s.len(), 2);
        for &i in &block {
            s.push(i, 2.0);
        }
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn scheduler_empty_behaviour() {
        let mut s = BlockScheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.peek_time(), None);
        let mut block = Vec::new();
        assert_eq!(s.pop_block(&mut block), None);
    }

    #[test]
    fn scheduler_times_monotone_nondecreasing() {
        let mut s = BlockScheduler::from_times(&[0.125, 0.5, 0.125, 0.25, 0.25, 1.0]);
        let mut block = Vec::new();
        let mut last = f64::NEG_INFINITY;
        while let Some(t) = s.pop_block(&mut block) {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn commensurability_exact_beyond_2_53_ratio() {
        // Regression for the old `(t / dt).fract() == 0.0` implementation:
        // every float ≥ 2^53 is integer-valued, so once the *ratio* reaches
        // that magnitude the division rounds to an integer and fract()
        // vanishes regardless of the true remainder. With dt built on the
        // default dt_min = 2^-40 grid the bad regime starts at t ≈ 2^15.
        let dt_min = 2.0f64.powi(-40);
        // t/dt = 2^55/3 ≈ 1.2e16 ≥ 2^53 — NOT an integer multiple.
        let t = 2.0f64.powi(15);
        let dt = 3.0 * dt_min;
        assert!((t / dt).fract() == 0.0, "ratio must be in the fract-blind regime");
        assert!(!is_commensurate(t, dt), "2^55/3 is not an integer");
        // Same magnitude, genuinely commensurate: multiples of dt_min stay true.
        assert!(is_commensurate(t, dt_min));
        // The finest representable grid point at this magnitude (2^15 + 2^-37)
        // still resolves exactly against finer and coarser rungs.
        let t_odd = t + 2.0f64.powi(-37);
        assert!(t_odd > t, "grid point must be representable");
        assert!(is_commensurate(t_odd, 2.0f64.powi(-37)));
        assert!(!is_commensurate(t_odd, 2.0f64.powi(-36)));
        // And the power-of-two ladder is exact at any magnitude.
        assert!(is_commensurate(2.0f64.powi(30), dt_min));
    }

    #[test]
    fn commensurability_degenerate_inputs() {
        assert!(!is_commensurate(f64::INFINITY, 0.25));
        assert!(!is_commensurate(f64::NAN, 0.25));
        assert!(!is_commensurate(1.0, f64::NAN));
        assert!(is_commensurate(0.0, 0.25));
        assert!(is_commensurate(-0.75, 0.25));
        assert!(!is_commensurate(-0.75, 0.5));
    }

    const DT_MIN: f64 = 0.015625; // 2^-6 keeps test schedules readable

    #[test]
    fn tick_scheduler_pops_whole_block() {
        let mut s = TickScheduler::new(DT_MIN);
        s.push(0, 1.0);
        s.push(1, 0.5);
        s.push(2, 0.5);
        s.push(3, 2.0);
        let mut block = Vec::new();
        let t = s.pop_block(&mut block).unwrap();
        assert_eq!(t, 0.5);
        assert_eq!(block, vec![1, 2]);
        let t = s.pop_block(&mut block).unwrap();
        assert_eq!(t, 1.0);
        assert_eq!(block, vec![0]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn tick_scheduler_empty_behaviour() {
        let mut s = TickScheduler::new(DT_MIN);
        assert!(s.is_empty());
        assert_eq!(s.peek_time(), None);
        let mut block = Vec::new();
        assert_eq!(s.pop_block(&mut block), None);
    }

    #[test]
    fn tick_scheduler_handles_time_zero() {
        // tick 0 has 64 trailing zeros; the bucket index clamps to 63.
        let mut s = TickScheduler::new(DT_MIN);
        s.push(5, 0.0);
        s.push(1, DT_MIN);
        let mut block = Vec::new();
        assert_eq!(s.pop_block(&mut block), Some(0.0));
        assert_eq!(block, vec![5]);
        assert_eq!(s.pop_block(&mut block), Some(DT_MIN));
        assert_eq!(block, vec![1]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn tick_scheduler_rejects_non_power_of_two_quantum() {
        let _ = TickScheduler::new(0.3);
    }

    #[test]
    fn tick_scheduler_block_is_ascending_from_any_push_order() {
        // The bitmap emission must sort what arrives unsorted (pushes land
        // in correction order, which is ascending per block step but
        // arbitrary across the rung hierarchy).
        let mut s = TickScheduler::new(DT_MIN);
        for &i in &[9, 2, 40, 0, 77, 3, 64, 63] {
            s.push(i, 0.5);
        }
        let mut block = Vec::new();
        assert_eq!(s.pop_block(&mut block), Some(0.5));
        assert_eq!(block, vec![0, 2, 3, 9, 40, 63, 64, 77]);
        assert!(s.is_empty());
    }

    #[test]
    fn tick_scheduler_duplicate_pushes_match_heap_multiset() {
        // Out-of-contract double push: both schedulers must emit the same
        // sorted multiset (the tick scheduler falls back to a sort).
        let mut heap = BlockScheduler::new();
        let mut tick = TickScheduler::new(DT_MIN);
        for &(i, t) in &[(4, 0.25), (1, 0.25), (4, 0.25), (7, 0.5)] {
            heap.push(i, t);
            tick.push(i, t);
        }
        let (mut bh, mut bt) = (Vec::new(), Vec::new());
        assert_eq!(heap.pop_block(&mut bh), tick.pop_block(&mut bt));
        assert_eq!(bh, vec![1, 4, 4]);
        assert_eq!(bh, bt);
        assert_eq!(heap.len(), tick.len());
    }

    /// Drive both schedulers through the same schedule and demand identical
    /// (time-bits, block) sequences.
    fn assert_schedulers_agree(times: &[f64], dt_min: f64, rounds: usize) {
        let mut heap = BlockScheduler::from_times(times);
        let mut tick = TickScheduler::from_times(times, dt_min);
        let (mut bh, mut bt) = (Vec::new(), Vec::new());
        for round in 0..rounds {
            assert_eq!(heap.len(), tick.len(), "round {round}");
            assert_eq!(
                heap.peek_time().map(f64::to_bits),
                tick.peek_time().map(f64::to_bits),
                "round {round} peek"
            );
            let (th, tt) = (heap.pop_block(&mut bh), tick.pop_block(&mut bt));
            assert_eq!(th.map(f64::to_bits), tt.map(f64::to_bits), "round {round} time");
            assert_eq!(bh, bt, "round {round} block");
            let Some(t) = th else { break };
            // Re-push each popped particle with a power-of-two step that is
            // commensurate with the block time (the integrator's contract).
            for &i in &bh {
                let mut step = dt_min * 2.0f64.powi((i % 5) as i32);
                while !is_commensurate(t, step) {
                    step *= 0.5;
                }
                heap.push(i, t + step);
                tick.push(i, t + step);
            }
        }
    }

    #[test]
    fn tick_and_heap_emit_identical_sequences() {
        let dt_min = 2.0f64.powi(-10);
        let times: Vec<f64> = (0..37).map(|i| dt_min * 2.0f64.powi(i % 6)).collect();
        assert_schedulers_agree(&times, dt_min, 500);
    }

    #[test]
    fn tick_and_heap_agree_far_from_t_zero() {
        // Resume-style start: events clustered just above a large base time.
        let dt_min = 2.0f64.powi(-40);
        let base = 12.0f64;
        let times: Vec<f64> = (0..24).map(|i| base + dt_min * 2.0f64.powi(i % 8)).collect();
        assert_schedulers_agree(&times, dt_min, 300);
    }

    mod sched_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// Differential proptest over random power-of-two schedules: the
            /// tick-bucket and heap schedulers must emit identical
            /// (time, block) sequences, bit for bit.
            #[test]
            fn tick_matches_heap_on_random_pow2_schedules(
                exps in proptest::collection::vec(0u32..12, 1..40),
                base_exp in 0u32..20,
                rounds in 1usize..200,
            ) {
                let dt_min = 2.0f64.powi(-12);
                let base = dt_min * 2.0f64.powi(base_exp as i32);
                let times: Vec<f64> = exps
                    .iter()
                    .map(|&e| base + dt_min * 2.0f64.powi(e as i32))
                    .collect();
                assert_schedulers_agree(&times, dt_min, rounds);
            }
        }
    }
}
