//! The block individual-timestep machinery (paper §3, §4.2; McMillan 1986,
//! Makino 1991).
//!
//! Timesteps are forced to powers of two and particle times are kept
//! commensurate with their steps, so that at every moment a whole *block* of
//! particles shares the same update time and can be integrated in parallel —
//! the property that makes the GRAPE pipelines (and any parallel hardware)
//! usable at all with individual timesteps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Round `dt` down to the nearest power of two, clamped to
/// `[dt_min, dt_max]`. `dt_max` and `dt_min` must themselves be powers of
/// two.
#[inline]
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(dt > 0)` also catches NaN
pub fn quantize_dt(dt: f64, dt_min: f64, dt_max: f64) -> f64 {
    debug_assert!(dt_min > 0.0 && dt_max >= dt_min);
    if !(dt > 0.0) {
        // NaN or non-positive desired step: take the floor of the range.
        return dt_min;
    }
    if dt >= dt_max {
        return dt_max;
    }
    // Largest power of two ≤ dt: exact via exponent extraction.
    let q = 2.0f64.powi(dt.log2().floor() as i32);
    // log2/floor can land one octave high for values just below a power of
    // two due to rounding; fix up deterministically.
    let q = if q > dt { q * 0.5 } else { q };
    q.clamp(dt_min, dt_max)
}

/// True if time `t` is an integer multiple of `dt` (exact in binary floating
/// point for power-of-two `dt` and `t` built from such steps).
#[inline]
pub fn is_commensurate(t: f64, dt: f64) -> bool {
    if dt == 0.0 {
        return false;
    }
    (t / dt).fract() == 0.0
}

/// Given the step `dt_old` just completed at new time `t_new` and the desired
/// step `dt_des` from the timestep criterion, choose the next block step:
///
/// * shrink freely (halving preserves commensurability),
/// * grow at most ×2, and only when `t_new` is commensurate with the doubled
///   step (the McMillan rule),
/// * clamp to `[dt_min, dt_max]`.
#[inline]
pub fn next_block_dt(dt_old: f64, dt_des: f64, t_new: f64, dt_min: f64, dt_max: f64) -> f64 {
    if dt_des < dt_old {
        return quantize_dt(dt_des, dt_min, dt_max.min(dt_old));
    }
    if dt_des >= 2.0 * dt_old && dt_old < dt_max && is_commensurate(t_new, 2.0 * dt_old) {
        return (2.0 * dt_old).min(dt_max);
    }
    dt_old.clamp(dt_min, dt_max)
}

/// Total-ordering wrapper so event times can live in a heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Event queue over particle update times.
///
/// Every particle has exactly one pending event (its next update time
/// `time[i] + dt[i]`). A block step pops *all* events sharing the minimum
/// time — that set is the active block the paper integrates in parallel on
/// the GRAPE pipelines.
#[derive(Debug, Default, Clone)]
pub struct BlockScheduler {
    heap: BinaryHeap<Reverse<(OrdF64, usize)>>,
}

impl BlockScheduler {
    /// Empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from per-particle next-update times.
    pub fn from_times(next_times: &[f64]) -> Self {
        let mut s = Self::new();
        for (i, &t) in next_times.iter().enumerate() {
            s.push(i, t);
        }
        s
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule (or reschedule after an update) particle `i` at time `t`.
    pub fn push(&mut self, i: usize, t: f64) {
        self.heap.push(Reverse((OrdF64(t), i)));
    }

    /// The earliest pending update time.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse((t, _))| t.0)
    }

    /// Pop the full block of particles due at the minimum time. Returns the
    /// block time and the particle indices (ascending). The caller must push
    /// each popped particle back with its new next-update time.
    pub fn pop_block(&mut self, out: &mut Vec<usize>) -> Option<f64> {
        out.clear();
        let Reverse((t0, i0)) = self.heap.pop()?;
        out.push(i0);
        while let Some(&Reverse((t, _))) = self.heap.peek() {
            if t != t0 {
                break;
            }
            let Reverse((_, i)) = self.heap.pop().unwrap();
            out.push(i);
        }
        out.sort_unstable();
        Some(t0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_rounds_down_to_power_of_two() {
        assert_eq!(quantize_dt(0.3, 1e-10, 1.0), 0.25);
        assert_eq!(quantize_dt(0.25, 1e-10, 1.0), 0.25);
        assert_eq!(quantize_dt(0.9, 1e-10, 1.0), 0.5);
        assert_eq!(quantize_dt(1.0 / 1024.0 * 1.5, 1e-10, 1.0), 1.0 / 1024.0);
    }

    #[test]
    fn quantize_clamps_to_range() {
        assert_eq!(quantize_dt(100.0, 1e-10, 0.125), 0.125);
        assert_eq!(quantize_dt(1e-30, 1e-10, 1.0), 1e-10);
        assert_eq!(quantize_dt(f64::INFINITY, 1e-10, 0.5), 0.5);
    }

    #[test]
    fn quantize_handles_degenerate_input() {
        assert_eq!(quantize_dt(f64::NAN, 0.25, 1.0), 0.25);
        assert_eq!(quantize_dt(0.0, 0.25, 1.0), 0.25);
        assert_eq!(quantize_dt(-1.0, 0.25, 1.0), 0.25);
    }

    #[test]
    fn quantize_result_is_power_of_two() {
        let dt_min = 2.0f64.powi(-40);
        for x in [0.7, 0.3e-3, 1.9e-6, 0.501, 0.4999, 3.0e-9] {
            let q = quantize_dt(x, dt_min, 1.0);
            assert!(q <= x);
            assert_eq!(q.log2().fract(), 0.0, "{q} not a power of two");
            assert!(2.0 * q > x, "{q} not the largest power of two ≤ {x}");
        }
    }

    #[test]
    fn commensurability_basic() {
        assert!(is_commensurate(0.0, 0.25));
        assert!(is_commensurate(0.75, 0.25));
        assert!(!is_commensurate(0.75, 0.5));
        assert!(is_commensurate(1.0, 0.5));
        assert!(!is_commensurate(1.0, 0.0));
    }

    #[test]
    fn commensurability_exact_over_many_steps() {
        // Accumulate 2⁻¹³ ten thousand times: binary-exact, so every
        // intermediate time must remain commensurate.
        let dt = 2.0f64.powi(-13);
        let mut t = 0.0;
        for _ in 0..10_000 {
            t += dt;
            assert!(is_commensurate(t, dt));
        }
    }

    #[test]
    fn next_dt_shrinks_freely() {
        let dt = next_block_dt(0.25, 0.03, 0.75, 1e-10, 1.0);
        assert_eq!(dt, 0.015625); // 2^-6 ≤ 0.03
    }

    #[test]
    fn next_dt_grows_only_when_commensurate() {
        // t_new = 0.75 is NOT a multiple of 0.5, so the step must stay 0.25.
        assert_eq!(next_block_dt(0.25, 10.0, 0.75, 1e-10, 1.0), 0.25);
        // t_new = 0.5 IS a multiple of 0.5 → allowed to double.
        assert_eq!(next_block_dt(0.25, 10.0, 0.5, 1e-10, 1.0), 0.5);
    }

    #[test]
    fn next_dt_grows_at_most_twofold() {
        assert_eq!(next_block_dt(0.25, 100.0, 1.0, 1e-10, 8.0), 0.5);
    }

    #[test]
    fn next_dt_respects_dt_max() {
        assert_eq!(next_block_dt(0.5, 100.0, 1.0, 1e-10, 0.5), 0.5);
    }

    #[test]
    fn scheduler_pops_whole_block() {
        let mut s = BlockScheduler::new();
        s.push(0, 1.0);
        s.push(1, 0.5);
        s.push(2, 0.5);
        s.push(3, 2.0);
        let mut block = Vec::new();
        let t = s.pop_block(&mut block).unwrap();
        assert_eq!(t, 0.5);
        assert_eq!(block, vec![1, 2]);
        let t = s.pop_block(&mut block).unwrap();
        assert_eq!(t, 1.0);
        assert_eq!(block, vec![0]);
    }

    #[test]
    fn scheduler_roundtrip_preserves_count() {
        let mut s = BlockScheduler::from_times(&[0.25, 0.5, 0.25, 1.0]);
        assert_eq!(s.len(), 4);
        let mut block = Vec::new();
        s.pop_block(&mut block).unwrap();
        assert_eq!(s.len(), 2);
        for &i in &block {
            s.push(i, 2.0);
        }
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn scheduler_empty_behaviour() {
        let mut s = BlockScheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.peek_time(), None);
        let mut block = Vec::new();
        assert_eq!(s.pop_block(&mut block), None);
    }

    #[test]
    fn scheduler_times_monotone_nondecreasing() {
        let mut s = BlockScheduler::from_times(&[0.125, 0.5, 0.125, 0.25, 0.25, 1.0]);
        let mut block = Vec::new();
        let mut last = f64::NEG_INFINITY;
        while let Some(t) = s.pop_block(&mut block) {
            assert!(t >= last);
            last = t;
        }
    }
}
