//! System of units used by the paper (§2).
//!
//! The Astronomical Unit, the Solar mass, and the gravitational constant are
//! all unity. In these *heliocentric units* one year is 2π time units, so the
//! orbital period of a circular orbit of radius `a` AU is `2π a^(3/2)`.

/// Gravitational constant (unity by construction).
pub const G: f64 = 1.0;

/// Solar mass in simulation units (unity by construction).
pub const M_SUN: f64 = 1.0;

/// One year expressed in simulation time units (= 2π).
pub const YEAR: f64 = std::f64::consts::TAU;

/// One Earth mass in Solar masses.
pub const M_EARTH: f64 = 3.003e-6;

/// Conversion: simulation time units → years.
#[inline]
pub fn time_to_years(t: f64) -> f64 {
    t / YEAR
}

/// Conversion: years → simulation time units.
#[inline]
pub fn years_to_time(y: f64) -> f64 {
    y * YEAR
}

/// Circular orbital period at semi-major axis `a` (AU) around mass `m_central`.
#[inline]
pub fn orbital_period(a: f64, m_central: f64) -> f64 {
    std::f64::consts::TAU * (a * a * a / (G * m_central)).sqrt()
}

/// Circular (Keplerian) orbital speed at radius `r` around mass `m_central`.
#[inline]
pub fn circular_speed(r: f64, m_central: f64) -> f64 {
    (G * m_central / r).sqrt()
}

/// Keplerian angular frequency Ω at radius `r`.
#[inline]
pub fn kepler_omega(r: f64, m_central: f64) -> f64 {
    (G * m_central / (r * r * r)).sqrt()
}

/// Hill radius of a body of mass `m` on a circular orbit of radius `a`
/// around a central mass `m_central`: `a (m / 3 m_central)^{1/3}`.
///
/// The paper softens all interactions with ε = 0.008 AU, "two orders of
/// magnitude smaller than the Hill radius of the protoplanets".
#[inline]
pub fn hill_radius(a: f64, m: f64, m_central: f64) -> f64 {
    a * (m / (3.0 * m_central)).cbrt()
}

/// Mutual Hill radius of two bodies with masses `m1`, `m2` at semi-major axes
/// `a1`, `a2`.
#[inline]
pub fn mutual_hill_radius(a1: f64, m1: f64, a2: f64, m2: f64, m_central: f64) -> f64 {
    0.5 * (a1 + a2) * ((m1 + m2) / (3.0 * m_central)).cbrt()
}

/// Two-body escape speed from separation `r` for total mass `m`.
#[inline]
pub fn escape_speed(r: f64, m: f64) -> f64 {
    (2.0 * G * m / r).sqrt()
}

/// One AU in kilometres.
pub const AU_KM: f64 = 1.495_978_707e8;

/// The unit of velocity (AU per time unit) in km/s: the Earth's orbital
/// speed, ≈ 29.78 km/s.
pub const VELOCITY_KMS: f64 = 29.784_69;

/// Convert a simulation velocity to km/s.
#[inline]
pub fn velocity_to_kms(v: f64) -> f64 {
    v * VELOCITY_KMS
}

/// Convert a simulation mass (M_sun) to kilograms.
#[inline]
pub fn mass_to_kg(m: f64) -> f64 {
    m * 1.988_92e30
}

/// Convert a simulation length (AU) to kilometres.
#[inline]
pub fn length_to_km(x: f64) -> f64 {
    x * AU_KM
}

/// Parameters of the paper's production configuration (§2, §6), used as the
/// reference workload across examples, tests and benches.
pub mod paper {
    /// Number of planetesimals in the headline run.
    pub const N_PLANETESIMALS: usize = 1_799_998;
    /// Number of protoplanets.
    pub const N_PROTOPLANETS: usize = 2;
    /// Inner edge of the planetesimal ring (AU).
    pub const RING_INNER: f64 = 15.0;
    /// Outer edge of the planetesimal ring (AU).
    pub const RING_OUTER: f64 = 35.0;
    /// Semi-major axis of proto-Uranus (AU).
    pub const A_PROTO_URANUS: f64 = 20.0;
    /// Semi-major axis of proto-Neptune (AU).
    pub const A_PROTO_NEPTUNE: f64 = 30.0;
    /// Plummer softening length (AU) applied to all interactions.
    pub const SOFTENING: f64 = 0.008;
    /// Exponent of the planetesimal mass distribution N(m) dm ∝ m^-2.5.
    pub const MASS_EXPONENT: f64 = -2.5;
    /// Exponent of the surface mass density Σ ∝ r^-1.5.
    pub const SIGMA_EXPONENT: f64 = -1.5;
    /// Protoplanet mass (M_sun). The provided paper text lost the value to
    /// OCR; 3×10⁻⁵ M_sun (≈10 M_earth icy core) satisfies every constraint
    /// the text retains (see DESIGN.md §3).
    pub const M_PROTOPLANET: f64 = 3.0e-5;
    /// Lower cutoff of the planetesimal mass function (M_sun). Chosen so the
    /// total ring mass matches the Hayashi (1981) nebula the paper cites:
    /// the icy 15–35 AU annulus holds ≈ 29 M_earth (see
    /// `grape6_disk::nebula`), and the m^-2.5 law with hi/lo = 100 has mean
    /// ≈ 2.7·lo, so lo ≈ 1.8×10⁻¹¹ gives 1.8 M × mean ≈ 29 M_earth.
    pub const M_PLANETESIMAL_LO: f64 = 1.8e-11;
    /// Upper cutoff of the planetesimal mass function (M_sun).
    pub const M_PLANETESIMAL_HI: f64 = 1.8e-9;
    /// Gordon Bell convention: flops charged per pairwise force (38) plus its
    /// time derivative (19) = 57 (§5.2).
    pub const FLOPS_PER_INTERACTION: u64 = 57;
    /// Reported sustained performance (Tflops) of the production run.
    pub const ACHIEVED_TFLOPS: f64 = 29.5;
    /// Theoretical peak (Tflops) of the 2048-chip configuration.
    pub const PEAK_TFLOPS: f64 = 63.4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn year_is_two_pi() {
        assert!((YEAR - std::f64::consts::TAU).abs() < 1e-15);
        assert!((time_to_years(YEAR) - 1.0).abs() < 1e-15);
        assert!((years_to_time(1.0) - YEAR).abs() < 1e-15);
    }

    #[test]
    fn period_at_1_au_is_one_year() {
        assert!((orbital_period(1.0, 1.0) - YEAR).abs() < 1e-12);
    }

    #[test]
    fn period_scales_as_a_three_halves() {
        // Kepler's third law: P(4 AU) = 8 years.
        assert!((orbital_period(4.0, 1.0) / orbital_period(1.0, 1.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn outer_region_period_order_100_years() {
        // §3: "the orbital period of protoplanets and planetesimals is of the
        // order of 100 years".
        let p20 = time_to_years(orbital_period(paper::A_PROTO_URANUS, 1.0));
        let p30 = time_to_years(orbital_period(paper::A_PROTO_NEPTUNE, 1.0));
        assert!(p20 > 80.0 && p20 < 100.0, "P(20 AU) = {p20} yr");
        assert!(p30 > 150.0 && p30 < 170.0, "P(30 AU) = {p30} yr");
    }

    #[test]
    fn circular_speed_at_1_au() {
        // v = 1 in these units at 1 AU (≈ 29.8 km/s physically).
        assert!((circular_speed(1.0, 1.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn omega_consistent_with_period() {
        let r = 17.3;
        assert!((kepler_omega(r, 1.0) * orbital_period(r, 1.0) - YEAR).abs() < 1e-12);
    }

    #[test]
    fn softening_two_orders_below_hill_radius() {
        // §2's consistency claim, which pins down the protoplanet mass scale.
        let rh_u = hill_radius(paper::A_PROTO_URANUS, paper::M_PROTOPLANET, 1.0);
        let rh_n = hill_radius(paper::A_PROTO_NEPTUNE, paper::M_PROTOPLANET, 1.0);
        assert!(rh_u / paper::SOFTENING > 50.0, "r_H(U)/ε = {}", rh_u / paper::SOFTENING);
        assert!(rh_n / paper::SOFTENING > 75.0, "r_H(N)/ε = {}", rh_n / paper::SOFTENING);
        assert!(rh_n / paper::SOFTENING < 300.0);
    }

    #[test]
    fn mutual_hill_radius_reduces_to_single() {
        let a = 20.0;
        let m = 1e-5;
        let single = hill_radius(a, m, 1.0);
        let mutual = mutual_hill_radius(a, m / 2.0, a, m / 2.0, 1.0);
        assert!((single - mutual).abs() < 1e-12);
    }

    #[test]
    fn escape_speed_matches_energy_argument() {
        // (1/2) v_esc² = G m / r.
        let v = escape_speed(2.0, 3.0);
        assert!((0.5 * v * v - G * 3.0 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn physical_conversions_are_consistent() {
        // v_circ(1 AU) = 1 unit = 2π AU/yr ≈ 29.78 km/s.
        let kms = velocity_to_kms(circular_speed(1.0, 1.0));
        assert!((kms - 29.78).abs() < 0.05, "1 AU circular speed = {kms} km/s");
        // AU/yr from first principles: AU_KM / seconds-per-year / (1/2π).
        let seconds_per_year = 365.25 * 86_400.0;
        let derived = AU_KM / seconds_per_year * YEAR;
        assert!((derived - VELOCITY_KMS).abs() < 0.05, "derived {derived}");
        // An Earth mass in kg.
        let me_kg = mass_to_kg(M_EARTH);
        assert!((me_kg / 5.972e24 - 1.0).abs() < 0.01, "M_earth = {me_kg} kg");
        assert_eq!(length_to_km(1.0), AU_KM);
    }

    #[test]
    fn paper_mass_budget_is_hayashi_scale() {
        // Mean of the m^-2.5 power law between the cutoffs, times N, should be
        // of order 100 Earth masses (DESIGN.md §3).
        let (lo, hi) = (paper::M_PLANETESIMAL_LO, paper::M_PLANETESIMAL_HI);
        // <m> = ∫ m·m^-2.5 / ∫ m^-2.5 over [lo, hi]
        let num = (lo.powf(-0.5) - hi.powf(-0.5)) / 0.5;
        let den = (lo.powf(-1.5) - hi.powf(-1.5)) / 1.5;
        let mean = num / den;
        let total = mean * paper::N_PLANETESIMALS as f64;
        let earth_masses = total / M_EARTH;
        // Hayashi 15–35 AU icy annulus ≈ 29 M_earth.
        assert!(earth_masses > 15.0 && earth_masses < 60.0, "disk = {earth_masses} M_earth");
    }
}
