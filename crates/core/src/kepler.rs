//! Keplerian two-body machinery: orbital elements ↔ Cartesian state, and a
//! robust Kepler-equation solver.
//!
//! The disk generator places planetesimals by sampling orbital elements
//! (paper §2); the analysis code recovers elements from integrated states to
//! measure eccentricity/inclination evolution and scattering.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Classical orbital elements about a central mass (heliocentric).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Elements {
    /// Semi-major axis (AU). Negative for hyperbolic orbits.
    pub a: f64,
    /// Eccentricity.
    pub e: f64,
    /// Inclination (rad).
    pub inc: f64,
    /// Longitude of ascending node Ω (rad).
    pub node: f64,
    /// Argument of pericenter ω (rad).
    pub peri: f64,
    /// Mean anomaly M (rad).
    pub mean_anomaly: f64,
}

impl Elements {
    /// A circular, planar orbit of radius `a` at mean anomaly `m`.
    pub fn circular(a: f64, m: f64) -> Self {
        Self { a, e: 0.0, inc: 0.0, node: 0.0, peri: 0.0, mean_anomaly: m }
    }

    /// Pericenter distance `a (1 − e)`.
    pub fn pericenter(&self) -> f64 {
        self.a * (1.0 - self.e)
    }

    /// Apocenter distance `a (1 + e)`.
    pub fn apocenter(&self) -> f64 {
        self.a * (1.0 + self.e)
    }

    /// True when the orbit is bound (elliptic).
    pub fn is_bound(&self) -> bool {
        self.a > 0.0 && self.e < 1.0
    }
}

/// Solve Kepler's equation `M = E − e sin E` for the eccentric anomaly `E`
/// by Newton iteration with a bisection safeguard. `m` may be any real
/// number; `0 ≤ e < 1`.
pub fn solve_kepler(m: f64, e: f64) -> f64 {
    assert!((0.0..1.0).contains(&e), "solve_kepler requires 0 ≤ e < 1, got {e}");
    // Reduce M to (-π, π] — E then lies in the same revolution.
    let two_pi = std::f64::consts::TAU;
    let m_red = m - (m / two_pi).round() * two_pi;
    // Starter: M itself at low e; π·sign(M) near e → 1 where Newton from M
    // can overshoot (Danby's prescription).
    let mut ecc = if e > 0.8 {
        if m_red >= 0.0 {
            std::f64::consts::PI
        } else {
            -std::f64::consts::PI
        }
    } else {
        m_red
    };
    for _ in 0..64 {
        let f = ecc - e * ecc.sin() - m_red;
        let fp = 1.0 - e * ecc.cos();
        let step = f / fp;
        ecc -= step;
        if step.abs() < 1e-14 {
            break;
        }
    }
    ecc + (m - m_red)
}

/// Convert orbital elements to a heliocentric Cartesian state for central
/// mass `gm` (G·M in simulation units).
pub fn elements_to_state(el: &Elements, gm: f64) -> (Vec3, Vec3) {
    assert!(el.a > 0.0 && el.e < 1.0, "elements_to_state requires a bound orbit");
    let ecc_anom = solve_kepler(el.mean_anomaly, el.e);
    let (sin_e, cos_e) = ecc_anom.sin_cos();
    let b_over_a = (1.0 - el.e * el.e).sqrt();
    // Perifocal coordinates.
    let x = el.a * (cos_e - el.e);
    let y = el.a * b_over_a * sin_e;
    let r = el.a * (1.0 - el.e * cos_e);
    let n = (gm / (el.a * el.a * el.a)).sqrt(); // mean motion
    let vx = -el.a * el.a * n * sin_e / r;
    let vy = el.a * el.a * n * b_over_a * cos_e / r;
    // Rotate by ω (in-plane), i (about x), Ω (about z).
    let (sw, cw) = el.peri.sin_cos();
    let (si, ci) = el.inc.sin_cos();
    let (so, co) = el.node.sin_cos();
    let rot = |px: f64, py: f64| -> Vec3 {
        let x1 = cw * px - sw * py;
        let y1 = sw * px + cw * py;
        let y2 = ci * y1;
        let z2 = si * y1;
        Vec3::new(co * x1 - so * y2, so * x1 + co * y2, z2)
    };
    (rot(x, y), rot(vx, vy))
}

/// Recover orbital elements from a heliocentric Cartesian state.
pub fn state_to_elements(pos: Vec3, vel: Vec3, gm: f64) -> Elements {
    let r = pos.norm();
    let v2 = vel.norm2();
    let h = pos.cross(vel);
    let hn = h.norm();
    let energy = 0.5 * v2 - gm / r;
    let a = -gm / (2.0 * energy);
    // Eccentricity vector.
    let evec = (pos * (v2 - gm / r) - vel * pos.dot(vel)) / gm;
    let e = evec.norm();
    let inc = (h.z / hn).clamp(-1.0, 1.0).acos();
    // Node vector.
    let nvec = Vec3::new(-h.y, h.x, 0.0);
    let nn = nvec.norm();
    let node = if nn > 1e-300 {
        let mut o = (nvec.x / nn).clamp(-1.0, 1.0).acos();
        if nvec.y < 0.0 {
            o = std::f64::consts::TAU - o;
        }
        o
    } else {
        0.0
    };
    let peri = if nn > 1e-300 && e > 1e-300 {
        let mut w = (nvec.dot(evec) / (nn * e)).clamp(-1.0, 1.0).acos();
        if evec.z < 0.0 {
            w = std::f64::consts::TAU - w;
        }
        w
    } else if e > 1e-300 {
        // Planar orbit: measure ω from +x.
        let mut w = (evec.x / e).clamp(-1.0, 1.0).acos();
        if evec.y < 0.0 {
            w = std::f64::consts::TAU - w;
        }
        w
    } else {
        0.0
    };
    // True → eccentric → mean anomaly (bound case).
    let mean_anomaly = if a > 0.0 && e < 1.0 {
        let cos_nu = if e > 1e-300 { (evec.dot(pos) / (e * r)).clamp(-1.0, 1.0) } else { 1.0 };
        let mut nu = cos_nu.acos();
        if pos.dot(vel) < 0.0 {
            nu = std::f64::consts::TAU - nu;
        }
        if e <= 1e-300 {
            // Circular: mean anomaly = angle from reference direction.
            nu = if nn > 1e-300 {
                let mut u = (nvec.dot(pos) / (nn * r)).clamp(-1.0, 1.0).acos();
                if pos.z < 0.0 {
                    u = std::f64::consts::TAU - u;
                }
                u
            } else {
                let mut u = (pos.x / r).clamp(-1.0, 1.0).acos();
                if pos.y < 0.0 {
                    u = std::f64::consts::TAU - u;
                }
                u
            };
            nu
        } else {
            let ecc_anom = 2.0
                * ((1.0 - e).sqrt() * (nu / 2.0).sin()).atan2((1.0 + e).sqrt() * (nu / 2.0).cos());
            let m = ecc_anom - e * ecc_anom.sin();
            m.rem_euclid(std::f64::consts::TAU)
        }
    } else {
        0.0
    };
    Elements { a, e, inc, node, peri, mean_anomaly }
}

/// Specific orbital energy of a heliocentric state (negative = bound).
#[inline]
pub fn specific_energy(pos: Vec3, vel: Vec3, gm: f64) -> f64 {
    0.5 * vel.norm2() - gm / pos.norm()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kepler_equation_zero_eccentricity() {
        for m in [-2.0, 0.0, 0.5, 3.0, 9.0] {
            assert!((solve_kepler(m, 0.0) - m).abs() < 1e-14);
        }
    }

    #[test]
    fn kepler_solution_satisfies_equation() {
        for &e in &[0.01, 0.3, 0.7, 0.95, 0.999] {
            for k in 0..50 {
                let m = -6.0 + 0.25 * k as f64;
                let ecc = solve_kepler(m, e);
                assert!(
                    (ecc - e * ecc.sin() - m).abs() < 1e-11,
                    "e={e} M={m}: residual {}",
                    (ecc - e * ecc.sin() - m).abs()
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn kepler_rejects_hyperbolic_eccentricity() {
        solve_kepler(1.0, 1.5);
    }

    #[test]
    fn circular_orbit_state() {
        let el = Elements::circular(20.0, 0.0);
        let (p, v) = elements_to_state(&el, 1.0);
        assert!((p - Vec3::new(20.0, 0.0, 0.0)).norm() < 1e-12);
        assert!((v.norm() - crate::units::circular_speed(20.0, 1.0)).abs() < 1e-12);
        assert!(v.y > 0.0); // prograde
    }

    #[test]
    fn elements_roundtrip_generic_orbit() {
        let el = Elements { a: 25.0, e: 0.23, inc: 0.1, node: 1.2, peri: 2.7, mean_anomaly: 0.9 };
        let (p, v) = elements_to_state(&el, 1.0);
        let back = state_to_elements(p, v, 1.0);
        assert!((back.a - el.a).abs() < 1e-9, "a {}", back.a);
        assert!((back.e - el.e).abs() < 1e-10, "e {}", back.e);
        assert!((back.inc - el.inc).abs() < 1e-10, "inc {}", back.inc);
        assert!((back.node - el.node).abs() < 1e-9, "node {}", back.node);
        assert!((back.peri - el.peri).abs() < 1e-8, "peri {}", back.peri);
        assert!((back.mean_anomaly - el.mean_anomaly).abs() < 1e-8, "M {}", back.mean_anomaly);
    }

    #[test]
    fn elements_roundtrip_near_circular_planar() {
        let el = Elements { a: 20.0, e: 1e-4, inc: 1e-5, node: 0.3, peri: 0.4, mean_anomaly: 2.0 };
        let (p, v) = elements_to_state(&el, 1.0);
        let back = state_to_elements(p, v, 1.0);
        assert!((back.a - el.a).abs() < 1e-8);
        assert!((back.e - el.e).abs() < 1e-9);
        assert!((back.inc - el.inc).abs() < 1e-9);
    }

    #[test]
    fn energy_determines_semi_major_axis() {
        let el = Elements { a: 30.0, e: 0.4, inc: 0.2, node: 0.0, peri: 0.0, mean_anomaly: 1.0 };
        let (p, v) = elements_to_state(&el, 1.0);
        let eps = specific_energy(p, v, 1.0);
        assert!((eps + 1.0 / (2.0 * 30.0)).abs() < 1e-12);
    }

    #[test]
    fn pericenter_apocenter() {
        let el = Elements { a: 10.0, e: 0.5, inc: 0.0, node: 0.0, peri: 0.0, mean_anomaly: 0.0 };
        assert_eq!(el.pericenter(), 5.0);
        assert_eq!(el.apocenter(), 15.0);
        assert!(el.is_bound());
    }

    #[test]
    fn radius_bounds_respected_over_orbit() {
        let el = Elements { a: 20.0, e: 0.3, inc: 0.15, node: 0.5, peri: 1.0, mean_anomaly: 0.0 };
        for k in 0..32 {
            let mut e2 = el;
            e2.mean_anomaly = k as f64 * std::f64::consts::TAU / 32.0;
            let (p, _) = elements_to_state(&e2, 1.0);
            let r = p.norm();
            assert!(r >= el.pericenter() - 1e-9 && r <= el.apocenter() + 1e-9);
        }
    }

    #[test]
    fn angular_momentum_matches_vis_viva() {
        let el = Elements { a: 15.0, e: 0.6, inc: 0.0, node: 0.0, peri: 0.0, mean_anomaly: 0.7 };
        let (p, v) = elements_to_state(&el, 1.0);
        let h = p.cross(v).norm();
        let expected = (1.0 * el.a * (1.0 - el.e * el.e)).sqrt();
        assert!((h - expected).abs() < 1e-12);
    }

    #[test]
    fn hyperbolic_state_detected_as_unbound() {
        // Radial escape speed ×2.
        let pos = Vec3::new(10.0, 0.0, 0.0);
        let vel = Vec3::new(1.0, 0.5, 0.0);
        let el = state_to_elements(pos, vel, 1.0);
        assert!(el.a < 0.0);
        assert!(!el.is_bound());
        assert!(specific_energy(pos, vel, 1.0) > 0.0);
    }
}
