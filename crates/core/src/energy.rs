//! Conserved-quantity diagnostics: energy and angular momentum.
//!
//! Energies use each particle's *current individual state*; for strict
//! conservation checks, synchronize the system first (all particles at a
//! common time) or evaluate at block boundaries where the active set was
//! just corrected.

use crate::central::central_potential;
use crate::particle::ParticleSystem;
use crate::vec3::Vec3;
use rayon::prelude::*;

/// Kinetic energy ½ Σ m v².
pub fn kinetic_energy(sys: &ParticleSystem) -> f64 {
    sys.vel.iter().zip(&sys.mass).map(|(&v, &m)| 0.5 * m * v.norm2()).sum()
}

/// Softened pairwise potential energy −Σ_{i<j} m_i m_j / √(r² + ε²).
pub fn pairwise_potential_energy(sys: &ParticleSystem) -> f64 {
    let n = sys.len();
    let eps2 = sys.softening * sys.softening;
    (0..n)
        .into_par_iter()
        .map(|i| {
            let mut acc = 0.0;
            for j in (i + 1)..n {
                let r2 = sys.pos[i].distance2(sys.pos[j]) + eps2;
                acc -= sys.mass[i] * sys.mass[j] / r2.sqrt();
            }
            acc
        })
        .sum()
}

/// Potential energy of all particles in the central (Solar) field.
pub fn central_potential_energy(sys: &ParticleSystem) -> f64 {
    if sys.central_mass == 0.0 {
        return 0.0;
    }
    sys.pos.iter().zip(&sys.mass).map(|(&p, &m)| m * central_potential(sys.central_mass, p)).sum()
}

/// Total energy: kinetic + pairwise + central.
pub fn total_energy(sys: &ParticleSystem) -> f64 {
    kinetic_energy(sys) + pairwise_potential_energy(sys) + central_potential_energy(sys)
}

/// Total angular momentum Σ m (r × v) about the origin (the Sun).
pub fn angular_momentum(sys: &ParticleSystem) -> Vec3 {
    sys.pos.iter().zip(&sys.vel).zip(&sys.mass).map(|((&p, &v), &m)| p.cross(v) * m).sum()
}

/// Total energy with every particle first predicted to the common time `t`.
///
/// Under individual timesteps the raw arrays hold states at *different*
/// times; measuring energy on them mixes epochs and can dwarf the true
/// integration error. This predicts all particles to `t` (interpolation
/// error is at the scheme's order, far below the drift being measured).
pub fn synchronized_total_energy(sys: &ParticleSystem, t: f64) -> f64 {
    let mut synced = sys.clone();
    for i in 0..sys.len() {
        let (p, v) = sys.predict(i, t);
        synced.pos[i] = p;
        synced.vel[i] = v;
    }
    total_energy(&synced)
}

/// Angular momentum with every particle predicted to the common time `t`.
pub fn synchronized_angular_momentum(sys: &ParticleSystem, t: f64) -> Vec3 {
    let mut l = Vec3::zero();
    for i in 0..sys.len() {
        let (p, v) = sys.predict(i, t);
        l += p.cross(v) * sys.mass[i];
    }
    l
}

/// Energy bookkeeping for drift monitoring over a run.
#[derive(Debug, Clone, Copy)]
pub struct EnergyLedger {
    /// Energy at the reference epoch.
    pub e0: f64,
    /// |L| at the reference epoch.
    pub l0: f64,
}

impl EnergyLedger {
    /// Open a ledger at the system's current state.
    pub fn open(sys: &ParticleSystem) -> Self {
        Self { e0: total_energy(sys), l0: angular_momentum(sys).norm() }
    }

    /// Relative energy drift |ΔE / E₀| at the current state.
    pub fn relative_energy_error(&self, sys: &ParticleSystem) -> f64 {
        let e = total_energy(sys);
        if self.e0 == 0.0 {
            (e - self.e0).abs()
        } else {
            ((e - self.e0) / self.e0).abs()
        }
    }

    /// Relative angular-momentum drift.
    pub fn relative_l_error(&self, sys: &ParticleSystem) -> f64 {
        let l = angular_momentum(sys).norm();
        if self.l0 == 0.0 {
            (l - self.l0).abs()
        } else {
            ((l - self.l0) / self.l0).abs()
        }
    }

    /// Relative energy drift measured on states synchronized to time `t`
    /// (the honest measurement under individual timesteps; see
    /// [`synchronized_total_energy`]).
    pub fn synchronized_energy_error(&self, sys: &ParticleSystem, t: f64) -> f64 {
        let e = synchronized_total_energy(sys, t);
        if self.e0 == 0.0 {
            (e - self.e0).abs()
        } else {
            ((e - self.e0) / self.e0).abs()
        }
    }

    /// Relative angular-momentum drift on synchronized states.
    pub fn synchronized_l_error(&self, sys: &ParticleSystem, t: f64) -> f64 {
        let l = synchronized_angular_momentum(sys, t).norm();
        if self.l0 == 0.0 {
            (l - self.l0).abs()
        } else {
            ((l - self.l0) / self.l0).abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinetic_energy_of_single_particle() {
        let mut s = ParticleSystem::new(0.0, 0.0);
        s.push(Vec3::zero(), Vec3::new(3.0, 4.0, 0.0), 2.0);
        assert!((kinetic_energy(&s) - 25.0).abs() < 1e-15); // ½·2·25
    }

    #[test]
    fn pairwise_potential_of_unit_pair() {
        let mut s = ParticleSystem::new(0.0, 0.0);
        s.push(Vec3::zero(), Vec3::zero(), 1.0);
        s.push(Vec3::new(2.0, 0.0, 0.0), Vec3::zero(), 1.0);
        assert!((pairwise_potential_energy(&s) + 0.5).abs() < 1e-15);
    }

    #[test]
    fn softening_weakens_potential() {
        let mut s = ParticleSystem::new(0.0, 0.0);
        s.push(Vec3::zero(), Vec3::zero(), 1.0);
        s.push(Vec3::new(1.0, 0.0, 0.0), Vec3::zero(), 1.0);
        let hard = pairwise_potential_energy(&s);
        s.softening = 1.0;
        let soft = pairwise_potential_energy(&s);
        assert!(soft > hard); // less negative
        assert!((soft + 1.0 / 2.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn central_energy_zero_without_central_mass() {
        let mut s = ParticleSystem::new(0.0, 0.0);
        s.push(Vec3::new(1.0, 0.0, 0.0), Vec3::zero(), 1.0);
        assert_eq!(central_potential_energy(&s), 0.0);
        s.central_mass = 1.0;
        assert!((central_potential_energy(&s) + 1.0).abs() < 1e-15);
    }

    #[test]
    fn circular_heliocentric_energy_is_minus_half_gm_over_r() {
        let mut s = ParticleSystem::new(0.0, 1.0);
        let r = 20.0;
        s.push(
            Vec3::new(r, 0.0, 0.0),
            Vec3::new(0.0, crate::units::circular_speed(r, 1.0), 0.0),
            1.0,
        );
        assert!((total_energy(&s) + 0.5 / r).abs() < 1e-15);
    }

    #[test]
    fn angular_momentum_of_circular_orbit() {
        let mut s = ParticleSystem::new(0.0, 1.0);
        let r = 4.0;
        let v = crate::units::circular_speed(r, 1.0);
        s.push(Vec3::new(r, 0.0, 0.0), Vec3::new(0.0, v, 0.0), 2.0);
        let l = angular_momentum(&s);
        assert!((l.z - 2.0 * r * v).abs() < 1e-14);
        assert_eq!(l.x, 0.0);
        assert_eq!(l.y, 0.0);
    }

    #[test]
    fn synchronized_energy_matches_plain_when_synced() {
        let mut s = ParticleSystem::new(0.0, 1.0);
        s.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 1e-3);
        s.push(Vec3::new(-2.0, 0.0, 0.0), Vec3::new(0.0, -0.7, 0.0), 1e-3);
        assert_eq!(synchronized_total_energy(&s, 0.0), total_energy(&s));
    }

    #[test]
    fn synchronized_energy_corrects_stale_states() {
        // One particle stored at an older time: plain energy mixes epochs,
        // synchronized energy agrees with the prediction at t.
        let mut s = ParticleSystem::new(0.0, 1.0);
        s.push(Vec3::new(10.0, 0.0, 0.0), Vec3::new(0.1, 0.0, 0.0), 0.0);
        s.t = 2.0;
        s.time[0] = 0.0; // stale by 2 time units; drifts to x = 10.2
        let e_sync = synchronized_total_energy(&s, 2.0);
        let expect = -1.0 / 10.2; // massless particle in central field, KE scaled by m = 0
        assert!((e_sync - 0.0 * expect).abs() < 1e-15 || e_sync.abs() < 1e-15);
        // With mass:
        s.mass[0] = 1.0;
        let e_sync = synchronized_total_energy(&s, 2.0);
        assert!((e_sync - (0.5 * 0.01 - 1.0 / 10.2)).abs() < 1e-12);
        assert!((total_energy(&s) - (0.5 * 0.01 - 0.1)).abs() < 1e-12); // stale x = 10
    }

    #[test]
    fn ledger_reports_zero_drift_initially() {
        let mut s = ParticleSystem::new(0.0, 1.0);
        s.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 1.0);
        let ledger = EnergyLedger::open(&s);
        assert_eq!(ledger.relative_energy_error(&s), 0.0);
        assert_eq!(ledger.relative_l_error(&s), 0.0);
    }

    #[test]
    fn ledger_detects_perturbation() {
        let mut s = ParticleSystem::new(0.0, 1.0);
        s.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 1.0);
        let ledger = EnergyLedger::open(&s);
        s.vel[0] *= 1.1;
        assert!(ledger.relative_energy_error(&s) > 0.01);
    }
}
