//! Particle storage in structure-of-arrays layout.
//!
//! Each particle carries its own time `time[i]` (the instant at which
//! `pos/vel/acc/jerk` are exact) and its own timestep `dt[i]`, as required by
//! the block individual-timestep algorithm (paper §3, McMillan 1986,
//! Makino 1991). The SoA layout keeps the force kernel's j-particle sweep
//! contiguous, which is what the GRAPE memory units provide in hardware.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// The N-body system state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParticleSystem {
    /// Positions at each particle's individual time.
    pub pos: Vec<Vec3>,
    /// Velocities at each particle's individual time.
    pub vel: Vec<Vec3>,
    /// Accelerations at each particle's individual time.
    pub acc: Vec<Vec3>,
    /// Jerks (da/dt) at each particle's individual time.
    pub jerk: Vec<Vec3>,
    /// Masses.
    pub mass: Vec<f64>,
    /// Individual times.
    pub time: Vec<f64>,
    /// Individual timesteps (powers of two once scheduled).
    pub dt: Vec<f64>,
    /// Softened pairwise potential at the particle (set by full force passes).
    pub pot: Vec<f64>,
    /// Stable external identifiers (survive any reordering).
    pub id: Vec<u64>,
    /// Plummer softening length ε applied to every pairwise interaction.
    pub softening: f64,
    /// Mass of the central body treated as an external potential
    /// (the Sun in the paper; 0 disables the external field).
    pub central_mass: f64,
    /// Global system time: the time of the most recent block step.
    pub t: f64,
}

impl ParticleSystem {
    /// An empty system with the given softening and central mass.
    pub fn new(softening: f64, central_mass: f64) -> Self {
        Self { softening, central_mass, ..Default::default() }
    }

    /// Number of particles.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True if the system holds no particles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Append a particle with position, velocity and mass; dynamical state
    /// (acc/jerk/dt) is zeroed until the integrator initializes it.
    pub fn push(&mut self, pos: Vec3, vel: Vec3, mass: f64) -> usize {
        let idx = self.len();
        self.pos.push(pos);
        self.vel.push(vel);
        self.acc.push(Vec3::zero());
        self.jerk.push(Vec3::zero());
        self.mass.push(mass);
        self.time.push(self.t);
        self.dt.push(0.0);
        self.pot.push(0.0);
        self.id.push(idx as u64);
        idx
    }

    /// Append a particle with an explicit external id.
    pub fn push_with_id(&mut self, pos: Vec3, vel: Vec3, mass: f64, id: u64) -> usize {
        let idx = self.push(pos, vel, mass);
        self.id[idx] = id;
        idx
    }

    /// Total mass of all particles (excluding the central body).
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Centre of mass of the particles (excluding the central body).
    pub fn center_of_mass(&self) -> Vec3 {
        let m = self.total_mass();
        if m == 0.0 {
            return Vec3::zero();
        }
        self.pos.iter().zip(&self.mass).map(|(&p, &mi)| p * mi).sum::<Vec3>() / m
    }

    /// Centre-of-mass velocity of the particles.
    pub fn com_velocity(&self) -> Vec3 {
        let m = self.total_mass();
        if m == 0.0 {
            return Vec3::zero();
        }
        self.vel.iter().zip(&self.mass).map(|(&v, &mi)| v * mi).sum::<Vec3>() / m
    }

    /// Predict the phase-space state of particle `i` at time `t` with the
    /// Hermite predictor polynomial (position to 3rd order, velocity to 2nd).
    ///
    /// This is exactly what the GRAPE-6 on-chip predictor pipeline evaluates
    /// for j-particles (paper §4.2, Fig 9); on the host it is used for
    /// i-particles.
    #[inline]
    pub fn predict(&self, i: usize, t: f64) -> (Vec3, Vec3) {
        let dt = t - self.time[i];
        let dt2 = dt * dt;
        let p = self.pos[i]
            + self.vel[i] * dt
            + self.acc[i] * (dt2 / 2.0)
            + self.jerk[i] * (dt2 * dt / 6.0);
        let v = self.vel[i] + self.acc[i] * dt + self.jerk[i] * (dt2 / 2.0);
        (p, v)
    }

    /// Check structural invariants; used by tests and debug assertions.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x >= 0)` also catches NaN
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        for (name, l) in [
            ("vel", self.vel.len()),
            ("acc", self.acc.len()),
            ("jerk", self.jerk.len()),
            ("mass", self.mass.len()),
            ("time", self.time.len()),
            ("dt", self.dt.len()),
            ("pot", self.pot.len()),
            ("id", self.id.len()),
        ] {
            if l != n {
                return Err(format!("array {name} has length {l}, expected {n}"));
            }
        }
        for i in 0..n {
            if !self.pos[i].is_finite() || !self.vel[i].is_finite() {
                return Err(format!("particle {i} has non-finite state"));
            }
            if !(self.mass[i] >= 0.0) {
                return Err(format!("particle {i} has negative/NaN mass {}", self.mass[i]));
            }
            if self.time[i] > self.t + 1e-12 {
                return Err(format!(
                    "particle {i} time {} is ahead of system time {}",
                    self.time[i], self.t
                ));
            }
        }
        if !(self.softening >= 0.0) {
            return Err(format!("negative softening {}", self.softening));
        }
        Ok(())
    }
}

/// An *i-particle*: the predicted state of an active particle, shipped to the
/// force engine (host → GRAPE direction in the real machine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IParticle {
    /// Index of the particle in the [`ParticleSystem`].
    pub index: usize,
    /// Predicted position at the current block time.
    pub pos: Vec3,
    /// Predicted velocity at the current block time.
    pub vel: Vec3,
}

/// Nearest-neighbour report for one i-particle. The real GRAPE-6 pipelines
/// tracked this alongside the force — it is what made collision/accretion
/// detection affordable in planetesimal runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the nearest j-particle (self excluded).
    pub index: usize,
    /// Squared (unsoftened) distance to it.
    pub r2: f64,
}

/// Force-engine output for one i-particle (GRAPE → host direction).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ForceResult {
    /// Acceleration from all j-particles (softened pairwise gravity).
    pub acc: Vec3,
    /// Jerk (time derivative of the acceleration).
    pub jerk: Vec3,
    /// Softened potential (negative; excludes the self term).
    pub pot: f64,
    /// Nearest neighbour, when the engine tracks it (GRAPE-6 and the CPU
    /// reference do; the tree baseline does not).
    pub nn: Option<Neighbor>,
}

impl ForceResult {
    /// Fold the partial result of a disjoint j-range into this one: sums
    /// add, the nearest neighbour keeps the strictly closer candidate (so a
    /// tie resolves to the earlier partial). Partials must be merged in
    /// ascending j-chunk order for the floating-point sums to be bit-stable.
    #[inline]
    pub fn merge(&mut self, other: &Self) {
        self.acc += other.acc;
        self.jerk += other.jerk;
        self.pot += other.pot;
        if let Some(nb) = other.nn {
            if self.nn.is_none_or(|t| nb.r2 < t.r2) {
                self.nn = Some(nb);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_body() -> ParticleSystem {
        let mut s = ParticleSystem::new(0.0, 0.0);
        s.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0), 1.0);
        s.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, -0.5, 0.0), 1.0);
        s
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let s = two_body();
        assert_eq!(s.len(), 2);
        assert_eq!(s.id, vec![0, 1]);
    }

    #[test]
    fn push_with_id_keeps_external_id() {
        let mut s = ParticleSystem::new(0.0, 0.0);
        s.push_with_id(Vec3::zero(), Vec3::zero(), 1.0, 42);
        assert_eq!(s.id[0], 42);
    }

    #[test]
    fn total_mass_and_com() {
        let s = two_body();
        assert_eq!(s.total_mass(), 2.0);
        assert_eq!(s.center_of_mass(), Vec3::zero());
        assert_eq!(s.com_velocity(), Vec3::zero());
    }

    #[test]
    fn com_weights_by_mass() {
        let mut s = ParticleSystem::new(0.0, 0.0);
        s.push(Vec3::new(0.0, 0.0, 0.0), Vec3::zero(), 3.0);
        s.push(Vec3::new(4.0, 0.0, 0.0), Vec3::zero(), 1.0);
        assert_eq!(s.center_of_mass(), Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn empty_system_com_is_zero() {
        let s = ParticleSystem::new(0.0, 0.0);
        assert!(s.is_empty());
        assert_eq!(s.center_of_mass(), Vec3::zero());
        assert_eq!(s.com_velocity(), Vec3::zero());
    }

    #[test]
    fn predict_at_own_time_is_identity() {
        let mut s = two_body();
        s.acc[0] = Vec3::new(0.1, 0.2, 0.3);
        s.jerk[0] = Vec3::new(-0.1, 0.0, 0.4);
        let (p, v) = s.predict(0, s.time[0]);
        assert_eq!(p, s.pos[0]);
        assert_eq!(v, s.vel[0]);
    }

    #[test]
    fn predict_matches_taylor_series() {
        let mut s = ParticleSystem::new(0.0, 0.0);
        s.push(Vec3::new(1.0, 2.0, 3.0), Vec3::new(0.5, 0.0, -0.5), 1.0);
        s.acc[0] = Vec3::new(0.0, 1.0, 0.0);
        s.jerk[0] = Vec3::new(6.0, 0.0, 0.0);
        let dt = 0.5;
        let (p, v) = s.predict(0, dt);
        // x + v t + a t²/2 + j t³/6
        let px = 1.0 + 0.5 * dt + 0.0 + 6.0 * dt * dt * dt / 6.0;
        let py = 2.0 + 0.0 + 1.0 * dt * dt / 2.0;
        assert!((p.x - px).abs() < 1e-15);
        assert!((p.y - py).abs() < 1e-15);
        assert!((p.z - (3.0 - 0.5 * dt)).abs() < 1e-15);
        assert!((v.x - (0.5 + 6.0 * dt * dt / 2.0)).abs() < 1e-15);
        assert!((v.y - dt).abs() < 1e-15);
    }

    #[test]
    fn validate_accepts_fresh_system() {
        assert!(two_body().validate().is_ok());
    }

    #[test]
    fn validate_rejects_nan_position() {
        let mut s = two_body();
        s.pos[1].x = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_negative_mass() {
        let mut s = two_body();
        s.mass[0] = -1.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_particle_ahead_of_system_time() {
        let mut s = two_body();
        s.time[0] = 1.0; // system t is still 0
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_ragged_arrays() {
        let mut s = two_body();
        s.mass.pop();
        assert!(s.validate().is_err());
    }
}
