//! AoSoA SIMD-blocked force tiles — the lane layer of the hot j-sweep.
//!
//! GRAPE-6 reached its throughput by having each physical force pipeline
//! serve eight *virtual multiple pipelines*: one j-particle stream broadcast
//! to a fixed-width bank of i-particle register sets (paper §5.2). This
//! module is the host-side analogue: a [`LaneTile`] packs `W` i-particles
//! into structure-of-arrays lanes (`W` ∈ {4, 8}, the AoSoA tile), and the
//! inner j-sweep broadcasts one j-particle to all `W` lanes per iteration.
//! Every per-lane operation is a straight-line `f64` add/mul/div/sqrt or a
//! select over a fixed-width array, which the autovectorizer lowers to
//! packed SIMD on x86-64 (2 lanes on SSE2, 4 on AVX2) without any `unsafe`
//! or `core::arch` intrinsics — the crate stays `forbid(unsafe_code)`.
//!
//! # Determinism contract (why lane width cannot change bits)
//!
//! Lanes run over **i-particles only**; the j-loop is never split or
//! reordered by the lane structure. Each i-particle's accumulator therefore
//! sees exactly the same contributions in exactly the same ascending-j
//! order as the scalar reference kernel, and every lane operation
//! (IEEE-754 add, mul, div, sqrt — all correctly rounded on every target)
//! computes the identical expression tree. Hence the output bits are
//! identical for scalar, `W = 4` and `W = 8` — a property pinned by
//! `tests/lane_determinism.rs` and the conformance runner's `lanes/*`
//! checks. No FMA contraction is used or permitted (rustc does not contract
//! `a * b + c` across `f64` expressions).
//!
//! # Remainder-lane rule
//!
//! A block whose i-count is not a multiple of `W` ends in a ragged tile.
//! The tail tile is padded to full width by **replicating lane 0** (same
//! position, velocity and self-skip index); the padding lanes compute real,
//! finite values (no NaN/subnormal slow paths) and are simply never stored.
//! Only `LaneTile::store`'s first `out.len()` lanes are read back, so the
//! padding cannot influence any result bit.

use crate::particle::{ForceResult, IParticle, Neighbor};
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Runtime-selected lane width of the blocked force kernels.
///
/// `Scalar` keeps the original (pre-AoSoA) kernels as the bitwise reference;
/// `W4`/`W8` select the 4- and 8-wide AoSoA tiles. All three produce
/// bit-identical results — the width only changes instruction scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaneWidth {
    /// The scalar reference kernels (one i-particle at a time in the small
    /// path, the legacy 4-wide AoS unroll in the large path).
    Scalar,
    /// 4-wide AoSoA tiles (one AVX2 register of f64 per lane array).
    W4,
    /// 8-wide AoSoA tiles (two AVX2 registers / one AVX-512 per array).
    W8,
}

impl Default for LaneWidth {
    /// The production default: 8-wide tiles.
    fn default() -> Self {
        LaneWidth::W8
    }
}

impl LaneWidth {
    /// Number of i-particles per tile (1 for the scalar reference).
    pub const fn width(self) -> usize {
        match self {
            LaneWidth::Scalar => 1,
            LaneWidth::W4 => 4,
            LaneWidth::W8 => 8,
        }
    }

    /// All selectable widths, scalar reference first.
    pub const ALL: [LaneWidth; 3] = [LaneWidth::Scalar, LaneWidth::W4, LaneWidth::W8];

    /// Parse a CLI/env spelling: `"scalar"`, `"4"`, or `"8"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scalar" | "1" => Ok(LaneWidth::Scalar),
            "4" | "w4" => Ok(LaneWidth::W4),
            "8" | "w8" => Ok(LaneWidth::W8),
            other => Err(format!("unknown lane width `{other}` (expected scalar, 4 or 8)")),
        }
    }

    /// Stable identifier used in reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            LaneWidth::Scalar => "scalar",
            LaneWidth::W4 => "w4",
            LaneWidth::W8 => "w8",
        }
    }
}

impl std::fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Sentinel for "no self-index to skip" / "no neighbour seen yet".
const NONE: u64 = u64::MAX;

/// An AoSoA tile: `W` i-particles in structure-of-arrays lanes, together
/// with their running force accumulators and nearest-neighbour registers.
///
/// The field arrays are the software equivalent of the chip's `W` virtual
/// pipeline register sets; one j-particle is broadcast to all of them per
/// [`LaneTile::interact`] call.
#[derive(Debug, Clone)]
pub struct LaneTile<const W: usize> {
    /// i-particle positions (lanes).
    px: [f64; W],
    py: [f64; W],
    pz: [f64; W],
    /// i-particle velocities (lanes).
    vx: [f64; W],
    vy: [f64; W],
    vz: [f64; W],
    /// j-index whose interaction this lane must skip (its own slot), or
    /// [`NONE`].
    skip: [u64; W],
    /// Acceleration accumulators.
    ax: [f64; W],
    ay: [f64; W],
    az: [f64; W],
    /// Jerk accumulators.
    jx: [f64; W],
    jy: [f64; W],
    jz: [f64; W],
    /// Potential accumulators.
    pot: [f64; W],
    /// Nearest-neighbour squared distance (valid only when `nn_j != NONE`).
    nn_r2: [f64; W],
    /// Nearest-neighbour j-index, [`NONE`] until the first candidate.
    nn_j: [u64; W],
}

impl<const W: usize> LaneTile<W> {
    /// Build a tile from up to `W` i-particles, seeding the accumulators
    /// from `prior` (the running [`ForceResult`]s of an outer j-tile loop).
    /// Ragged tails (`ips.len() < W`) are padded by replicating lane 0 (see
    /// the module-level remainder-lane rule).
    #[inline]
    pub fn load(ips: &[IParticle], prior: &[ForceResult]) -> Self {
        assert!(!ips.is_empty() && ips.len() <= W);
        assert_eq!(ips.len(), prior.len());
        let mut t = Self {
            px: [0.0; W],
            py: [0.0; W],
            pz: [0.0; W],
            vx: [0.0; W],
            vy: [0.0; W],
            vz: [0.0; W],
            skip: [NONE; W],
            ax: [0.0; W],
            ay: [0.0; W],
            az: [0.0; W],
            jx: [0.0; W],
            jy: [0.0; W],
            jz: [0.0; W],
            pot: [0.0; W],
            nn_r2: [f64::INFINITY; W],
            nn_j: [NONE; W],
        };
        for k in 0..W {
            // Padding lanes replicate lane 0: real, finite arithmetic whose
            // results are discarded by `store`.
            let (ip, o) = if k < ips.len() { (&ips[k], &prior[k]) } else { (&ips[0], &prior[0]) };
            t.px[k] = ip.pos.x;
            t.py[k] = ip.pos.y;
            t.pz[k] = ip.pos.z;
            t.vx[k] = ip.vel.x;
            t.vy[k] = ip.vel.y;
            t.vz[k] = ip.vel.z;
            t.skip[k] = ip.index as u64;
            t.ax[k] = o.acc.x;
            t.ay[k] = o.acc.y;
            t.az[k] = o.acc.z;
            t.jx[k] = o.jerk.x;
            t.jy[k] = o.jerk.y;
            t.jz[k] = o.jerk.z;
            t.pot[k] = o.pot;
            if let Some(nb) = o.nn {
                t.nn_r2[k] = nb.r2;
                t.nn_j[k] = nb.index as u64;
            }
        }
        t
    }

    /// Broadcast one predicted j-particle to all lanes and accumulate its
    /// force, jerk, potential and nearest-neighbour candidacy.
    ///
    /// Per lane this computes exactly the expression tree of
    /// [`crate::force::pair_force_jerk`] (same association order), with the
    /// self-interaction excluded by a select instead of a branch: masked
    /// lanes keep their previous accumulator bits untouched, which is
    /// bitwise identical to the scalar kernel's `continue`.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    // grape6-lint: hot
    pub fn interact(&mut self, j: usize, pj: Vec3, vj: Vec3, mj: f64, eps2: f64) {
        let j64 = j as u64;
        for k in 0..W {
            let dx = pj.x - self.px[k];
            let dy = pj.y - self.py[k];
            let dz = pj.z - self.pz[k];
            let dvx = vj.x - self.vx[k];
            let dvy = vj.y - self.vy[k];
            let dvz = vj.z - self.vz[k];
            // Same association order as Vec3::norm2: (x² + y²) + z².
            let r2 = dx * dx + dy * dy + dz * dz;
            let active = self.skip[k] != j64;
            // Nearest neighbour: unconditionally take the first non-skipped
            // candidate (matches `Option::is_none_or`), then strict `<`.
            let take = active & ((self.nn_j[k] == NONE) | (r2 < self.nn_r2[k]));
            self.nn_r2[k] = if take { r2 } else { self.nn_r2[k] };
            self.nn_j[k] = if take { j64 } else { self.nn_j[k] };
            // pair_force_jerk, lane-local, identical association order.
            let r2e = r2 + eps2;
            let rinv = 1.0 / r2e.sqrt();
            let rinv2 = rinv * rinv;
            let mr3inv = mj * rinv2 * rinv;
            let rv = dx * dvx + dy * dvy + dz * dvz;
            let alpha = 3.0 * rv * rinv2;
            let nax = self.ax[k] + dx * mr3inv;
            let nay = self.ay[k] + dy * mr3inv;
            let naz = self.az[k] + dz * mr3inv;
            let njx = self.jx[k] + (dvx - dx * alpha) * mr3inv;
            let njy = self.jy[k] + (dvy - dy * alpha) * mr3inv;
            let njz = self.jz[k] + (dvz - dz * alpha) * mr3inv;
            let npot = self.pot[k] + -mj * rinv;
            self.ax[k] = if active { nax } else { self.ax[k] };
            self.ay[k] = if active { nay } else { self.ay[k] };
            self.az[k] = if active { naz } else { self.az[k] };
            self.jx[k] = if active { njx } else { self.jx[k] };
            self.jy[k] = if active { njy } else { self.jy[k] };
            self.jz[k] = if active { njz } else { self.jz[k] };
            self.pot[k] = if active { npot } else { self.pot[k] };
        }
    }

    /// Write the first `out.len()` lanes back; padding lanes are dropped.
    #[inline]
    pub fn store(&self, out: &mut [ForceResult]) {
        debug_assert!(out.len() <= W);
        for (k, o) in out.iter_mut().enumerate() {
            o.acc = Vec3::new(self.ax[k], self.ay[k], self.az[k]);
            o.jerk = Vec3::new(self.jx[k], self.jy[k], self.jz[k]);
            o.pot = self.pot[k];
            o.nn = if self.nn_j[k] == NONE {
                None
            } else {
                Some(Neighbor { index: self.nn_j[k] as usize, r2: self.nn_r2[k] })
            };
        }
    }
}

/// Sweep the j-range `jlo..jhi` for up to `W` i-particles through an AoSoA
/// tile, continuing the accumulation already present in `os`. The lane-width
/// counterpart of the scalar `sweep_tile` in `crate::force`.
#[inline]
#[allow(clippy::too_many_arguments)]
// grape6-lint: hot
pub fn sweep_tile_lanes<const W: usize>(
    os: &mut [ForceResult],
    ips: &[IParticle],
    jlo: usize,
    jhi: usize,
    ppos: &[Vec3],
    pvel: &[Vec3],
    jmass: &[f64],
    eps2: f64,
) {
    let mut tile = LaneTile::<W>::load(ips, os);
    for j in jlo..jhi {
        tile.interact(j, ppos[j], pvel[j], jmass[j], eps2);
    }
    tile.store(os);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::pair_force_jerk;

    fn jset(n: usize) -> (Vec<Vec3>, Vec<Vec3>, Vec<f64>) {
        let mut seed = 99u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut pos = Vec::new();
        let mut vel = Vec::new();
        let mut mass = Vec::new();
        for _ in 0..n {
            pos.push(Vec3::new(rng() * 30.0, rng() * 30.0, rng()));
            vel.push(Vec3::new(rng(), rng(), rng()));
            mass.push(1e-9 * (1.0 + rng().abs()));
        }
        (pos, vel, mass)
    }

    fn scalar_reference(
        ip: &IParticle,
        jlo: usize,
        jhi: usize,
        pos: &[Vec3],
        vel: &[Vec3],
        mass: &[f64],
        eps2: f64,
    ) -> ForceResult {
        let mut r = ForceResult::default();
        for j in jlo..jhi {
            if j == ip.index {
                continue;
            }
            let dx = pos[j] - ip.pos;
            let r2 = dx.norm2();
            if r.nn.is_none_or(|nb| r2 < nb.r2) {
                r.nn = Some(Neighbor { index: j, r2 });
            }
            let (a, jk, p) = pair_force_jerk(dx, vel[j] - ip.vel, mass[j], eps2);
            r.acc += a;
            r.jerk += jk;
            r.pot += p;
        }
        r
    }

    fn assert_tile_matches_scalar<const W: usize>(b: usize) {
        let (pos, vel, mass) = jset(37);
        let eps2 = 0.008 * 0.008;
        let ips: Vec<IParticle> =
            (0..b).map(|i| IParticle { index: i, pos: pos[i], vel: vel[i] }).collect();
        let mut out = vec![ForceResult::default(); b];
        // Two j-segments to exercise accumulator reload between tiles.
        sweep_tile_lanes::<W>(&mut out, &ips, 0, 20, &pos, &vel, &mass, eps2);
        sweep_tile_lanes::<W>(&mut out, &ips, 20, 37, &pos, &vel, &mass, eps2);
        for (k, ip) in ips.iter().enumerate() {
            let want = scalar_reference(ip, 0, 37, &pos, &vel, &mass, eps2);
            assert_eq!(out[k].acc, want.acc, "W={W} b={b} lane {k} acc");
            assert_eq!(out[k].jerk, want.jerk, "W={W} b={b} lane {k} jerk");
            assert_eq!(out[k].pot.to_bits(), want.pot.to_bits(), "W={W} b={b} lane {k} pot");
            assert_eq!(out[k].nn.map(|n| n.index), want.nn.map(|n| n.index));
            assert_eq!(out[k].nn.map(|n| n.r2.to_bits()), want.nn.map(|n| n.r2.to_bits()));
        }
    }

    #[test]
    fn full_tiles_match_scalar_bitwise() {
        assert_tile_matches_scalar::<4>(4);
        assert_tile_matches_scalar::<8>(8);
    }

    #[test]
    fn ragged_tiles_match_scalar_bitwise() {
        // Every remainder count 1..W−1 for both widths.
        for b in 1..4 {
            assert_tile_matches_scalar::<4>(b);
        }
        for b in 1..8 {
            assert_tile_matches_scalar::<8>(b);
        }
    }

    #[test]
    fn self_interaction_is_skipped_like_scalar() {
        // i-particles that are also j-particles: the skip select must keep
        // accumulator bits untouched and exclude self from the neighbour.
        let (pos, vel, mass) = jset(9);
        let ips: Vec<IParticle> =
            (0..3).map(|i| IParticle { index: i, pos: pos[i], vel: vel[i] }).collect();
        let mut out = vec![ForceResult::default(); 3];
        sweep_tile_lanes::<4>(&mut out, &ips, 0, 9, &pos, &vel, &mass, 1e-4);
        for (k, ip) in ips.iter().enumerate() {
            assert_ne!(out[k].nn.unwrap().index, ip.index);
            let want = scalar_reference(ip, 0, 9, &pos, &vel, &mass, 1e-4);
            assert_eq!(out[k].acc, want.acc);
        }
    }

    #[test]
    fn lane_width_parse_and_labels() {
        assert_eq!(LaneWidth::parse("scalar").unwrap(), LaneWidth::Scalar);
        assert_eq!(LaneWidth::parse("4").unwrap(), LaneWidth::W4);
        assert_eq!(LaneWidth::parse("w8").unwrap(), LaneWidth::W8);
        assert!(LaneWidth::parse("16").is_err());
        assert_eq!(LaneWidth::W4.width(), 4);
        assert_eq!(LaneWidth::Scalar.width(), 1);
        assert_eq!(LaneWidth::W8.label(), "w8");
        assert_eq!(LaneWidth::default(), LaneWidth::W8);
    }
}
