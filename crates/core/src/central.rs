//! The Sun as an external potential field (paper §2).
//!
//! "All gravitational interactions (except for the Solar gravity, which is
//! treated as an external potential field) is softened" — the central force
//! is evaluated on the host, unsoftened, and added to the engine's pairwise
//! result before the Hermite correction.

use crate::vec3::Vec3;

/// Acceleration and jerk of the central `1/r` field of mass `gm` on a body at
/// position `pos` with velocity `vel` (relative to the central mass at the
/// origin).
#[inline]
pub fn central_acc_jerk(gm: f64, pos: Vec3, vel: Vec3) -> (Vec3, Vec3) {
    let r2 = pos.norm2();
    let rinv = 1.0 / r2.sqrt();
    let rinv2 = rinv * rinv;
    let mr3inv = gm * rinv2 * rinv;
    let alpha = 3.0 * pos.dot(vel) * rinv2;
    let acc = -pos * mr3inv;
    let jerk = -(vel - pos * alpha) * mr3inv;
    (acc, jerk)
}

/// Potential of the central field at `pos`.
#[inline]
pub fn central_potential(gm: f64, pos: Vec3) -> f64 {
    -gm / pos.norm()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_toward_origin() {
        let (a, _) = central_acc_jerk(1.0, Vec3::new(2.0, 0.0, 0.0), Vec3::zero());
        assert!(a.x < 0.0);
        assert!((a.x + 0.25).abs() < 1e-15);
        assert_eq!(a.y, 0.0);
    }

    #[test]
    fn circular_orbit_has_centripetal_balance() {
        // v² / r = GM / r² for a circular orbit.
        let r = 20.0;
        let v = (1.0f64 / r).sqrt();
        let (a, _) = central_acc_jerk(1.0, Vec3::new(r, 0.0, 0.0), Vec3::new(0.0, v, 0.0));
        assert!((a.norm() - v * v / r).abs() < 1e-15);
    }

    #[test]
    fn jerk_matches_finite_difference() {
        let pos = Vec3::new(1.0, 2.0, -0.5);
        let vel = Vec3::new(0.3, -0.1, 0.2);
        let h = 1e-7;
        let (_, jerk) = central_acc_jerk(1.0, pos, vel);
        let (ap, _) = central_acc_jerk(1.0, pos + vel * h, vel);
        let (am, _) = central_acc_jerk(1.0, pos - vel * h, vel);
        let fd = (ap - am) / (2.0 * h);
        assert!((jerk - fd).norm() < 1e-6 * jerk.norm().max(1.0));
    }

    #[test]
    fn potential_energy_gradient_is_force() {
        let pos = Vec3::new(3.0, -1.0, 2.0);
        let h = 1e-6;
        let (a, _) = central_acc_jerk(1.0, pos, Vec3::zero());
        for axis in 0..3 {
            let mut pp = pos;
            let mut pm = pos;
            pp[axis] += h;
            pm[axis] -= h;
            let grad = (central_potential(1.0, pp) - central_potential(1.0, pm)) / (2.0 * h);
            assert!((a[axis] + grad).abs() < 1e-8, "axis {axis}");
        }
    }
}
