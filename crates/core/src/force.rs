//! Direct-summation gravity: the pairwise force/jerk kernel and a CPU
//! reference engine.
//!
//! The kernel evaluates exactly what one GRAPE-6 force pipeline evaluates per
//! clock cycle (paper §5.2): the softened pairwise acceleration, its time
//! derivative (jerk), and the softened potential. By the Gordon Bell
//! convention the paper adopts, this costs 38 + 19 = 57 floating-point
//! operations per interaction.

use crate::lanes::{sweep_tile_lanes, LaneTile, LaneWidth};
use crate::particle::{ForceResult, IParticle, Neighbor, ParticleSystem};
use crate::sweep::{chunked_jsweep, j_chunk_size, SMALL_BLOCK_MAX};
use crate::vec3::Vec3;
use rayon::prelude::*;

/// Flops charged per pairwise interaction (38 for the force, 19 for the
/// jerk), following the convention of recent Gordon Bell prize applications
/// cited in paper §5.2.
pub const FLOPS_PER_INTERACTION: u64 = 57;

/// j-particles per cache tile of the blocked large-block kernel. 1024
/// predicted j-particles (pos + vel + mass ≈ 56 B each) stay resident in L2
/// while every i-particle of the block sweeps them — the software analogue
/// of the hardware broadcasting one j-particle to all pipelines.
const J_TILE: usize = 1024;

/// Sweep one j-tile for `W` i-particles at once (GRAPE's virtual multiple
/// pipelines: one j-stream feeding `W` accumulator sets). Each i-particle's
/// accumulation order is still ascending j, so the result bits are identical
/// to a scalar per-i sweep — the unroll only changes instruction scheduling.
#[inline]
#[allow(clippy::too_many_arguments)]
// grape6-lint: hot
fn sweep_tile<const W: usize>(
    os: &mut [ForceResult],
    ips: &[IParticle],
    jlo: usize,
    jhi: usize,
    ppos: &[Vec3],
    pvel: &[Vec3],
    jmass: &[f64],
    eps2: f64,
) {
    debug_assert_eq!(os.len(), W);
    debug_assert_eq!(ips.len(), W);
    let mut acc = [Vec3::zero(); W];
    let mut jerk = [Vec3::zero(); W];
    let mut pot = [0.0f64; W];
    let mut nn = [None::<Neighbor>; W];
    for k in 0..W {
        (acc[k], jerk[k], pot[k], nn[k]) = (os[k].acc, os[k].jerk, os[k].pot, os[k].nn);
    }
    for j in jlo..jhi {
        let pj = ppos[j];
        let vj = pvel[j];
        let mj = jmass[j];
        for k in 0..W {
            let ip = &ips[k];
            if j == ip.index {
                continue;
            }
            let dx = pj - ip.pos;
            let r2 = dx.norm2();
            if nn[k].is_none_or(|nb| r2 < nb.r2) {
                nn[k] = Some(Neighbor { index: j, r2 });
            }
            let (a, jk, p) = pair_force_jerk(dx, vj - ip.vel, mj, eps2);
            acc[k] += a;
            jerk[k] += jk;
            pot[k] += p;
        }
    }
    for k in 0..W {
        os[k] = ForceResult { acc: acc[k], jerk: jerk[k], pot: pot[k], nn: nn[k] };
    }
}

/// Cache-blocked sweep of all j-particles for one i-chunk: j in L2-sized
/// tiles (outer), i-particles four at a time (inner), remainder scalar.
// grape6-lint: hot
fn tiled_block_sweep(
    os: &mut [ForceResult],
    ips: &[IParticle],
    ppos: &[Vec3],
    pvel: &[Vec3],
    jmass: &[f64],
    eps2: f64,
) {
    for o in os.iter_mut() {
        *o = ForceResult::default();
    }
    let n = ppos.len();
    let mut jlo = 0;
    while jlo < n {
        let jhi = (jlo + J_TILE).min(n);
        let mut k = 0;
        while k + 4 <= ips.len() {
            sweep_tile::<4>(&mut os[k..k + 4], &ips[k..k + 4], jlo, jhi, ppos, pvel, jmass, eps2);
            k += 4;
        }
        match ips.len() - k {
            1 => sweep_tile::<1>(&mut os[k..], &ips[k..], jlo, jhi, ppos, pvel, jmass, eps2),
            2 => sweep_tile::<2>(&mut os[k..], &ips[k..], jlo, jhi, ppos, pvel, jmass, eps2),
            3 => sweep_tile::<3>(&mut os[k..], &ips[k..], jlo, jhi, ppos, pvel, jmass, eps2),
            _ => {}
        }
        jlo = jhi;
    }
}

/// Cache-blocked sweep of all j-particles for one i-chunk through the AoSoA
/// lane kernel: j in L2-sized tiles (outer), i-particles in `W`-wide
/// [`LaneTile`]s (inner); a ragged tail is padded inside the tile (see the
/// remainder-lane rule in [`crate::lanes`]). Bitwise identical to
/// [`tiled_block_sweep`] because lanes only span i-particles.
// grape6-lint: hot
fn tiled_block_sweep_lanes<const W: usize>(
    os: &mut [ForceResult],
    ips: &[IParticle],
    ppos: &[Vec3],
    pvel: &[Vec3],
    jmass: &[f64],
    eps2: f64,
) {
    for o in os.iter_mut() {
        *o = ForceResult::default();
    }
    let n = ppos.len();
    let mut jlo = 0;
    while jlo < n {
        let jhi = (jlo + J_TILE).min(n);
        for (rs, is) in os.chunks_mut(W).zip(ips.chunks(W)) {
            sweep_tile_lanes::<W>(rs, is, jlo, jhi, ppos, pvel, jmass, eps2);
        }
        jlo = jhi;
    }
}

/// One j-chunk of the small-block sweep through the AoSoA lane kernel:
/// groups of `W` i-particles share a [`LaneTile`], and each group predicts
/// the chunk's j-particles on the fly with the same Taylor expression as the
/// scalar fused sweep (prediction is a pure function of `(j, t)`, so
/// re-evaluating it per group cannot change any bit).
#[inline]
#[allow(clippy::too_many_arguments)]
// grape6-lint: hot
fn small_fill_lanes<const W: usize>(
    js: std::ops::Range<usize>,
    row: &mut [ForceResult],
    ips: &[IParticle],
    t: f64,
    jpos: &[Vec3],
    jvel: &[Vec3],
    jacc: &[Vec3],
    jjerk: &[Vec3],
    jmass: &[f64],
    jtime: &[f64],
    eps2: f64,
) {
    for (rs, is) in row.chunks_mut(W).zip(ips.chunks(W)) {
        let mut tile = LaneTile::<W>::load(is, rs);
        for j in js.clone() {
            let dt = t - jtime[j];
            let dt2 = dt * dt;
            let pp = jpos[j] + jvel[j] * dt + jacc[j] * (dt2 / 2.0) + jjerk[j] * (dt2 * dt / 6.0);
            let pv = jvel[j] + jacc[j] * dt + jjerk[j] * (dt2 / 2.0);
            tile.interact(j, pp, pv, jmass[j], eps2);
        }
        tile.store(rs);
    }
}

/// Pairwise softened force contribution of a source of mass `mj` at relative
/// position `dx = x_j − x_i` and relative velocity `dv = v_j − v_i`.
///
/// Returns `(acc, jerk, pot)` where
/// `acc  = mj dx / (r² + ε²)^{3/2}`,
/// `jerk = mj [dv − 3 (dx·dv)/(r²+ε²) dx] / (r² + ε²)^{3/2}`,
/// `pot  = −mj / (r² + ε²)^{1/2}`.
///
/// A self-interaction (`dx = dv = 0`) with ε > 0 contributes zero force and
/// jerk but `−mj/ε` of potential; this mirrors the hardware, which does not
/// skip the self term and leaves the potential correction to the host.
#[inline(always)]
// grape6-lint: hot
pub fn pair_force_jerk(dx: Vec3, dv: Vec3, mj: f64, eps2: f64) -> (Vec3, Vec3, f64) {
    let r2 = dx.norm2() + eps2;
    let rinv = 1.0 / r2.sqrt();
    let rinv2 = rinv * rinv;
    let mr3inv = mj * rinv2 * rinv;
    let alpha = 3.0 * dx.dot(dv) * rinv2;
    let acc = dx * mr3inv;
    let jerk = (dv - dx * alpha) * mr3inv;
    (acc, jerk, -mj * rinv)
}

/// Sum the forces on one i-particle over a slice of j-particles, skipping the
/// j-particle whose slot equals `skip` (usize::MAX to disable skipping).
#[inline]
// grape6-lint: hot
pub fn accumulate_on(
    ipos: Vec3,
    ivel: Vec3,
    jpos: &[Vec3],
    jvel: &[Vec3],
    jmass: &[f64],
    eps2: f64,
    skip: usize,
) -> ForceResult {
    debug_assert_eq!(jpos.len(), jvel.len());
    debug_assert_eq!(jpos.len(), jmass.len());
    let mut acc = Vec3::zero();
    let mut jerk = Vec3::zero();
    let mut pot = 0.0;
    for j in 0..jpos.len() {
        if j == skip {
            continue;
        }
        let (a, jk, p) = pair_force_jerk(jpos[j] - ipos, jvel[j] - ivel, jmass[j], eps2);
        acc += a;
        jerk += jk;
        pot += p;
    }
    ForceResult { acc, jerk, pot, nn: None }
}

/// Like [`accumulate_on`], but also tracks the nearest neighbour (by
/// unsoftened distance), as the GRAPE-6 pipelines do in hardware.
#[inline]
// grape6-lint: hot
pub fn accumulate_with_nn(
    ipos: Vec3,
    ivel: Vec3,
    jpos: &[Vec3],
    jvel: &[Vec3],
    jmass: &[f64],
    eps2: f64,
    skip: usize,
) -> ForceResult {
    let mut acc = Vec3::zero();
    let mut jerk = Vec3::zero();
    let mut pot = 0.0;
    let mut nn: Option<crate::particle::Neighbor> = None;
    for j in 0..jpos.len() {
        if j == skip {
            continue;
        }
        let dx = jpos[j] - ipos;
        let r2 = dx.norm2();
        if nn.is_none_or(|n| r2 < n.r2) {
            nn = Some(crate::particle::Neighbor { index: j, r2 });
        }
        let (a, jk, p) = pair_force_jerk(dx, jvel[j] - ivel, jmass[j], eps2);
        acc += a;
        jerk += jk;
        pot += p;
    }
    ForceResult { acc, jerk, pot, nn }
}

/// j-particles per parallel chunk of the full-system prediction sweep.
/// Large enough to amortize work-item scheduling at paper-scale N, small
/// enough that a handful of chunks still load-balance a small host.
const PREDICT_CHUNK: usize = 4096;

/// CPU reference force engine: direct summation over a mirrored j-particle
/// store with on-the-fly Hermite prediction — the software equivalent of the
/// GRAPE memory unit + predictor pipeline + force pipelines.
#[derive(Debug, Default, Clone)]
pub struct DirectEngine {
    /// j-particle mirror: state at each particle's individual time.
    jpos: Vec<Vec3>,
    jvel: Vec<Vec3>,
    jacc: Vec<Vec3>,
    jjerk: Vec<Vec3>,
    jmass: Vec<f64>,
    jtime: Vec<f64>,
    /// Predicted j state: persistent scratch sized by `load`, refreshed in
    /// place by `predict_all` on each large-block `compute` call.
    ppos: Vec<Vec3>,
    pvel: Vec<Vec3>,
    /// Per-chunk partial rows of the small-block sweep (capacity reused).
    partials: Vec<ForceResult>,
    eps2: f64,
    /// Width of the AoSoA force kernels (all widths are bit-identical).
    lane_width: LaneWidth,
    interactions: u64,
    force_calls: u64,
}

impl DirectEngine {
    /// Create an engine; j-memory is filled by [`crate::engine::ForceEngine::load`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an engine with an explicit kernel lane width.
    pub fn with_lane_width(lanes: LaneWidth) -> Self {
        Self { lane_width: lanes, ..Self::default() }
    }

    /// Select the kernel lane width (bitwise-neutral; any time is safe).
    pub fn set_lane_width(&mut self, lanes: LaneWidth) {
        self.lane_width = lanes;
    }

    /// The currently selected kernel lane width.
    pub fn lane_width(&self) -> LaneWidth {
        self.lane_width
    }

    /// Number of j-particles currently resident.
    pub fn n_j(&self) -> usize {
        self.jpos.len()
    }

    /// Refresh the persistent prediction scratch (`ppos`/`pvel`, sized once
    /// by `load`) to time `t`. Position and velocity are fused in one pass
    /// per j-particle, and the sweep runs in fixed-size chunks rather than
    /// per-element work items — at paper-scale N this is the dominant O(N)
    /// host cost of a large block, so it must neither allocate nor resize.
    /// Chunking is bitwise-neutral: each prediction is a pure function of
    /// `(j, t)`.
    // grape6-lint: hot
    fn predict_all(&mut self, t: f64) {
        let n = self.jpos.len();
        debug_assert_eq!(self.ppos.len(), n, "prediction scratch is sized by load()");
        debug_assert_eq!(self.pvel.len(), n, "prediction scratch is sized by load()");
        let (jpos, jvel, jacc, jjerk, jtime) =
            (&self.jpos, &self.jvel, &self.jacc, &self.jjerk, &self.jtime);
        self.ppos
            .par_chunks_mut(PREDICT_CHUNK)
            .zip(self.pvel.par_chunks_mut(PREDICT_CHUNK))
            .enumerate()
            .for_each(|(c, (pps, pvs))| {
                let base = c * PREDICT_CHUNK;
                for (k, (pp, pv)) in pps.iter_mut().zip(pvs).enumerate() {
                    let j = base + k;
                    let dt = t - jtime[j];
                    let dt2 = dt * dt;
                    *pp = jpos[j]
                        + jvel[j] * dt
                        + jacc[j] * (dt2 / 2.0)
                        + jjerk[j] * (dt2 * dt / 6.0);
                    *pv = jvel[j] + jacc[j] * dt + jjerk[j] * (dt2 / 2.0);
                }
            });
    }
}

impl crate::engine::ForceEngine for DirectEngine {
    fn load(&mut self, sys: &ParticleSystem) {
        self.jpos = sys.pos.clone();
        self.jvel = sys.vel.clone();
        self.jacc = sys.acc.clone();
        self.jjerk = sys.jerk.clone();
        self.jmass = sys.mass.clone();
        self.jtime = sys.time.clone();
        // Size the persistent prediction scratch once here so the per-block
        // `predict_all` sweep never touches the allocator (capacity is
        // retained across reloads).
        self.ppos.resize(sys.len(), Vec3::zero());
        self.pvel.resize(sys.len(), Vec3::zero());
        self.eps2 = sys.softening * sys.softening;
    }

    fn update_j(&mut self, sys: &ParticleSystem, indices: &[usize]) {
        for &i in indices {
            self.jpos[i] = sys.pos[i];
            self.jvel[i] = sys.vel[i];
            self.jacc[i] = sys.acc[i];
            self.jjerk[i] = sys.jerk[i];
            self.jmass[i] = sys.mass[i];
            self.jtime[i] = sys.time[i];
        }
    }

    // grape6-lint: hot
    fn compute(&mut self, t: f64, ips: &[IParticle], out: &mut [ForceResult]) {
        assert_eq!(ips.len(), out.len());
        let b = ips.len();
        let n = self.jpos.len();
        // Hardware convention: every i-particle interacts with every resident
        // j-particle (the self term contributes nothing to force/jerk).
        self.interactions += (b as u64) * (n as u64);
        self.force_calls += 1;
        if b == 0 {
            return;
        }
        if b > SMALL_BLOCK_MAX {
            // Enough i-particles to fill the pool: predict once, then sweep
            // i-chunks in parallel through the cache-blocked, 4-wide kernel.
            // Per-i results are pure functions of (i, all j), so the i-chunk
            // size may follow the thread count without affecting bits.
            self.predict_all(t);
            let (ppos, pvel, jmass, eps2) = (&self.ppos, &self.pvel, &self.jmass, self.eps2);
            let threads = rayon::current_num_threads().max(1);
            // i-chunks align to the tile width (bitwise-neutral: per-i
            // results never depend on how the block is split).
            let w = self.lane_width.width().max(4);
            let ic = b.div_ceil(w * threads).next_multiple_of(w);
            let lanes = self.lane_width;
            out.par_chunks_mut(ic).zip(ips.par_chunks(ic)).for_each(|(os, is)| match lanes {
                LaneWidth::Scalar => tiled_block_sweep(os, is, ppos, pvel, jmass, eps2),
                LaneWidth::W4 => tiled_block_sweep_lanes::<4>(os, is, ppos, pvel, jmass, eps2),
                LaneWidth::W8 => tiled_block_sweep_lanes::<8>(os, is, ppos, pvel, jmass, eps2),
            });
        } else {
            // Few i-particles (the common small-block case): parallelize the
            // j-sweep instead, reducing partial sums like the GRAPE hardware
            // reduction tree. Prediction is fused into the sweep — each chunk
            // predicts its own j-range on the fly with the same Taylor
            // expression as `predict_all`, so the bits match while the
            // separate predict pass (and its memory round-trip) disappears.
            let jc = j_chunk_size(n);
            let Self { jpos, jvel, jacc, jjerk, jmass, jtime, partials, eps2, lane_width, .. } =
                self;
            let eps2 = *eps2;
            match *lane_width {
                LaneWidth::Scalar => chunked_jsweep(
                    n,
                    jc,
                    partials,
                    out,
                    |js, row| {
                        for j in js {
                            let dt = t - jtime[j];
                            let dt2 = dt * dt;
                            let pp = jpos[j]
                                + jvel[j] * dt
                                + jacc[j] * (dt2 / 2.0)
                                + jjerk[j] * (dt2 * dt / 6.0);
                            let pv = jvel[j] + jacc[j] * dt + jjerk[j] * (dt2 / 2.0);
                            for (r, ip) in row.iter_mut().zip(ips) {
                                if j == ip.index {
                                    continue;
                                }
                                let dx = pp - ip.pos;
                                let r2 = dx.norm2();
                                if r.nn.is_none_or(|nb| r2 < nb.r2) {
                                    r.nn = Some(Neighbor { index: j, r2 });
                                }
                                let (a, jk, p) = pair_force_jerk(dx, pv - ip.vel, jmass[j], eps2);
                                r.acc += a;
                                r.jerk += jk;
                                r.pot += p;
                            }
                        }
                    },
                    ForceResult::merge,
                ),
                LaneWidth::W4 => chunked_jsweep(
                    n,
                    jc,
                    partials,
                    out,
                    |js, row| {
                        small_fill_lanes::<4>(
                            js, row, ips, t, jpos, jvel, jacc, jjerk, jmass, jtime, eps2,
                        )
                    },
                    ForceResult::merge,
                ),
                LaneWidth::W8 => chunked_jsweep(
                    n,
                    jc,
                    partials,
                    out,
                    |js, row| {
                        small_fill_lanes::<8>(
                            js, row, ips, t, jpos, jvel, jacc, jjerk, jmass, jtime, eps2,
                        )
                    },
                    ForceResult::merge,
                ),
            }
        }
    }

    fn interaction_count(&self) -> u64 {
        self.interactions
    }

    fn reset_counters(&mut self) {
        self.interactions = 0;
        self.force_calls = 0;
    }

    fn checkpoint_state(&self) -> Vec<u8> {
        let mut state = Vec::with_capacity(16);
        state.extend_from_slice(&self.interactions.to_le_bytes());
        state.extend_from_slice(&self.force_calls.to_le_bytes());
        state
    }

    fn restore_checkpoint_state(&mut self, state: &[u8]) -> Result<(), String> {
        if state.len() != 16 {
            return Err(format!(
                "direct-cpu checkpoint state: expected 16 bytes, got {}",
                state.len()
            ));
        }
        self.interactions = u64::from_le_bytes(state[0..8].try_into().unwrap());
        self.force_calls = u64::from_le_bytes(state[8..16].try_into().unwrap());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "direct-cpu"
    }
}

impl DirectEngine {
    /// Number of `compute` calls since the last counter reset.
    pub fn force_calls(&self) -> u64 {
        self.force_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ForceEngine;

    #[test]
    fn pair_force_points_toward_source() {
        let (a, _, p) = pair_force_jerk(Vec3::new(2.0, 0.0, 0.0), Vec3::zero(), 1.0, 0.0);
        assert!(a.x > 0.0 && a.y == 0.0 && a.z == 0.0);
        assert!((a.x - 0.25).abs() < 1e-15); // m/r² = 1/4
        assert!((p + 0.5).abs() < 1e-15); // -m/r = -1/2
    }

    #[test]
    fn pair_force_inverse_square() {
        let (a1, _, _) = pair_force_jerk(Vec3::new(1.0, 0.0, 0.0), Vec3::zero(), 1.0, 0.0);
        let (a2, _, _) = pair_force_jerk(Vec3::new(2.0, 0.0, 0.0), Vec3::zero(), 1.0, 0.0);
        assert!((a1.x / a2.x - 4.0).abs() < 1e-12);
    }

    #[test]
    fn softening_caps_close_approach() {
        let eps2 = 0.01;
        let (a, _, _) = pair_force_jerk(Vec3::new(1e-9, 0.0, 0.0), Vec3::zero(), 1.0, eps2);
        // |a| ≈ m dx / ε³ → tiny, not divergent.
        assert!(a.norm() < 1e-5);
    }

    #[test]
    fn self_interaction_is_neutral_with_softening() {
        let (a, j, p) = pair_force_jerk(Vec3::zero(), Vec3::zero(), 2.0, 0.04);
        assert_eq!(a, Vec3::zero());
        assert_eq!(j, Vec3::zero());
        assert!((p + 2.0 / 0.2).abs() < 1e-12); // -m/ε
    }

    #[test]
    fn jerk_matches_finite_difference_of_force() {
        // Move the pair along their relative velocity and difference the force.
        let dx = Vec3::new(1.0, 0.5, -0.3);
        let dv = Vec3::new(-0.2, 0.1, 0.05);
        let m = 1.7;
        let eps2 = 0.01;
        let h = 1e-6;
        let (_, jerk, _) = pair_force_jerk(dx, dv, m, eps2);
        let (ap, _, _) = pair_force_jerk(dx + dv * h, dv, m, eps2);
        let (am, _, _) = pair_force_jerk(dx - dv * h, dv, m, eps2);
        let fd = (ap - am) / (2.0 * h);
        assert!((jerk - fd).norm() < 1e-7 * jerk.norm().max(1.0), "jerk {jerk:?} vs fd {fd:?}");
    }

    #[test]
    fn accumulate_skips_requested_slot() {
        let jp = vec![Vec3::zero(), Vec3::new(1.0, 0.0, 0.0)];
        let jv = vec![Vec3::zero(); 2];
        let jm = vec![1.0, 1.0];
        let with_skip = accumulate_on(Vec3::zero(), Vec3::zero(), &jp, &jv, &jm, 0.0, 0);
        // Only the j=1 particle contributes.
        assert!((with_skip.acc.x - 1.0).abs() < 1e-15);
        assert!((with_skip.pot + 1.0).abs() < 1e-15);
    }

    fn engine_for(sys: &ParticleSystem) -> DirectEngine {
        let mut e = DirectEngine::new();
        e.load(sys);
        e
    }

    #[test]
    fn newton_third_law_for_equal_mass_pair() {
        let mut sys = ParticleSystem::new(0.0, 0.0);
        sys.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 2.0);
        sys.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, -1.0, 0.0), 2.0);
        let mut e = engine_for(&sys);
        let ips: Vec<IParticle> =
            (0..2).map(|i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect();
        let mut out = vec![ForceResult::default(); 2];
        e.compute(0.0, &ips, &mut out);
        // m a_0 = -m a_1
        assert!((out[0].acc + out[1].acc).norm() < 1e-14);
        assert!((out[0].jerk + out[1].jerk).norm() < 1e-14);
    }

    #[test]
    fn interaction_counter_uses_hardware_convention() {
        let mut sys = ParticleSystem::new(0.01, 0.0);
        for k in 0..5 {
            sys.push(Vec3::new(k as f64, 0.0, 0.0), Vec3::zero(), 1.0);
        }
        let mut e = engine_for(&sys);
        let ips: Vec<IParticle> =
            (0..3).map(|i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect();
        let mut out = vec![ForceResult::default(); 3];
        e.compute(0.0, &ips, &mut out);
        assert_eq!(e.interaction_count(), 3 * 5);
        e.reset_counters();
        assert_eq!(e.interaction_count(), 0);
    }

    #[test]
    fn small_and_large_block_paths_agree() {
        let mut sys = ParticleSystem::new(0.001, 0.0);
        let mut seed = 12345u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 0..64 {
            sys.push(
                Vec3::new(rng(), rng(), rng()),
                Vec3::new(rng(), rng(), rng()),
                0.01 + rng().abs(),
            );
        }
        let mut e = engine_for(&sys);
        let make_ips = |idx: &[usize]| -> Vec<IParticle> {
            idx.iter().map(|&i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect()
        };
        // Large block (> SMALL_BLOCK_MAX → tiled per-i parallel path)
        let idx: Vec<usize> = (0..SMALL_BLOCK_MAX + 4).collect();
        let ips_large = make_ips(&idx);
        let mut out_large = vec![ForceResult::default(); idx.len()];
        e.compute(0.0, &ips_large, &mut out_large);
        // Small blocks (fused j-chunk path), one i-particle at a time
        for (k, &i) in idx.iter().enumerate() {
            let ips = make_ips(&[i]);
            let mut out = vec![ForceResult::default(); 1];
            e.compute(0.0, &ips, &mut out);
            assert!((out[0].acc - out_large[k].acc).norm() < 1e-13);
            assert!((out[0].jerk - out_large[k].jerk).norm() < 1e-13);
            assert!((out[0].pot - out_large[k].pot).abs() < 1e-12);
            assert_eq!(out[0].nn.map(|nb| nb.index), out_large[k].nn.map(|nb| nb.index));
        }
    }

    #[test]
    fn lane_widths_bit_identical_on_both_paths() {
        // Scalar / W4 / W8 engines must agree bit for bit on the small-block
        // (j-parallel) and large-block (i-parallel tiled) paths, including
        // ragged blocks not divisible by either lane width.
        let mut sys = ParticleSystem::new(0.003, 0.0);
        let mut seed = 777u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 0..61 {
            sys.push(
                Vec3::new(rng() * 20.0, rng() * 20.0, rng()),
                Vec3::new(rng(), rng(), rng()),
                1e-8 * (1.0 + rng().abs()),
            );
        }
        let force = |lanes: crate::lanes::LaneWidth, b: usize| {
            let mut e = DirectEngine::with_lane_width(lanes);
            e.load(&sys);
            let ips: Vec<IParticle> =
                (0..b).map(|i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect();
            let mut out = vec![ForceResult::default(); b];
            e.compute(0.0, &ips, &mut out);
            out
        };
        for b in [1usize, 3, 7, 13, 16, 17, 21, 40, 61] {
            let reference = force(crate::lanes::LaneWidth::Scalar, b);
            for lanes in [crate::lanes::LaneWidth::W4, crate::lanes::LaneWidth::W8] {
                let got = force(lanes, b);
                for (k, (g, r)) in got.iter().zip(&reference).enumerate() {
                    assert_eq!(g.acc, r.acc, "{lanes} b={b} k={k} acc");
                    assert_eq!(g.jerk, r.jerk, "{lanes} b={b} k={k} jerk");
                    assert_eq!(g.pot.to_bits(), r.pot.to_bits(), "{lanes} b={b} k={k} pot");
                    assert_eq!(
                        g.nn.map(|nb| (nb.index, nb.r2.to_bits())),
                        r.nn.map(|nb| (nb.index, nb.r2.to_bits())),
                        "{lanes} b={b} k={k} nn"
                    );
                }
            }
        }
    }

    #[test]
    fn update_j_refreshes_mirror() {
        let mut sys = ParticleSystem::new(0.0, 0.0);
        sys.push(Vec3::zero(), Vec3::zero(), 1.0);
        sys.push(Vec3::new(1.0, 0.0, 0.0), Vec3::zero(), 1.0);
        let mut e = engine_for(&sys);
        sys.pos[1] = Vec3::new(2.0, 0.0, 0.0);
        e.update_j(&sys, &[1]);
        let ips = [IParticle { index: 0, pos: sys.pos[0], vel: sys.vel[0] }];
        let mut out = [ForceResult::default()];
        e.compute(0.0, &ips, &mut out);
        assert!((out[0].acc.x - 0.25).abs() < 1e-15); // 1/2²
    }
}
