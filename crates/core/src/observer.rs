//! Host-side step observation: the seam through which wall-clock telemetry
//! watches the integrator without the integrator depending on any clock.
//!
//! This mirrors, for the *host CPU*, what `grape6_hw::HardwareClock` does
//! for the *modeled machine*: the integrator announces phase boundaries and
//! counter increments; an observer (e.g. `grape6_sim::Telemetry`) turns them
//! into wall times and rates. The null observer `()` makes every hook a
//! no-op that monomorphizes away, so the uninstrumented hot path costs
//! nothing.

/// The host-side phases of one block step (plus I/O done by drivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostPhase {
    /// Popping the due block from (and pushing steps back into) the
    /// event schedule.
    Schedule,
    /// Predicting i-particles on the host.
    Predict,
    /// The force-engine call (GRAPE round-trip or CPU summation).
    Force,
    /// The Hermite corrector sweep, including timestep requantization.
    Correct,
    /// Writing corrected particles back to engine j-memory.
    JUpdate,
    /// Snapshot/diagnostic output (driver-level, outside `step`).
    Io,
    /// Serializing a restartable checkpoint (driver-level, outside `step`).
    Checkpoint,
}

impl HostPhase {
    /// All phases, in reporting order.
    pub const ALL: [HostPhase; 7] = [
        HostPhase::Schedule,
        HostPhase::Predict,
        HostPhase::Force,
        HostPhase::Correct,
        HostPhase::JUpdate,
        HostPhase::Io,
        HostPhase::Checkpoint,
    ];

    /// Stable dense index (for array-backed accumulators).
    pub fn index(self) -> usize {
        match self {
            HostPhase::Schedule => 0,
            HostPhase::Predict => 1,
            HostPhase::Force => 2,
            HostPhase::Correct => 3,
            HostPhase::JUpdate => 4,
            HostPhase::Io => 5,
            HostPhase::Checkpoint => 6,
        }
    }

    /// Stable snake_case name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            HostPhase::Schedule => "schedule",
            HostPhase::Predict => "predict",
            HostPhase::Force => "force",
            HostPhase::Correct => "correct",
            HostPhase::JUpdate => "j_update",
            HostPhase::Io => "io",
            HostPhase::Checkpoint => "checkpoint",
        }
    }
}

/// Receiver for integrator progress events.
///
/// Every method has an empty default body; `()` implements the trait with
/// all defaults and is the zero-cost "telemetry off" choice. Phase spans
/// are properly nested and never overlap for a given observer.
pub trait StepObserver {
    /// A phase span opens.
    fn phase_begin(&mut self, _phase: HostPhase) {}

    /// The most recently opened phase span closes.
    fn phase_end(&mut self, _phase: HostPhase) {}

    /// One block step completed with `_n_active` particles integrated and
    /// `_interactions` pairwise interactions evaluated by the engine.
    fn block_step(&mut self, _n_active: usize, _interactions: u64) {}

    /// Initialization completed: `_n` particles primed, costing
    /// `_interactions` engine interactions (counted separately from block
    /// steps so block-step rates stay meaningful).
    fn init_step(&mut self, _n: usize, _interactions: u64) {}

    /// `_bytes` additional bytes crossed the modeled host↔hardware wire.
    fn wire_transfer(&mut self, _bytes: u64) {}
}

/// The null observer: all hooks are no-ops.
impl StepObserver for () {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_index_matches_all_order() {
        for (k, p) in HostPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), k);
        }
    }

    #[test]
    fn phase_names_are_unique_and_snake_case() {
        let names: Vec<&str> = HostPhase::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn null_observer_accepts_all_events() {
        let mut obs = ();
        obs.phase_begin(HostPhase::Force);
        obs.phase_end(HostPhase::Force);
        obs.block_step(10, 100);
        obs.init_step(5, 25);
        obs.wire_transfer(64);
    }
}
