//! Minimal 3-vector used throughout the simulation.
//!
//! The integrator works in double precision; the GRAPE-6 hardware simulator
//! converts to its own fixed-point / short-mantissa formats at the boundary
//! (see the `grape6-hw` crate). Keeping the vector type local (rather than
//! pulling in a linear-algebra crate) keeps the hot loops transparent to the
//! optimizer and the dependency set inside the sanctioned list.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-vector of `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

/// The zero vector.
pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

impl Vec3 {
    /// Create a vector from components.
    #[inline(always)]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    #[inline(always)]
    pub const fn zero() -> Self {
        ZERO
    }

    /// All components set to `v`.
    #[inline(always)]
    pub const fn splat(v: f64) -> Self {
        Self::new(v, v, v)
    }

    /// Dot product.
    #[inline(always)]
    pub fn dot(self, rhs: Self) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline(always)]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline(always)]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline(always)]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Unit vector in the direction of `self`. Returns zero for the zero vector.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n > 0.0 {
            self / n
        } else {
            ZERO
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        Self::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        Self::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Self::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Distance to another point.
    #[inline(always)]
    pub fn distance(self, rhs: Self) -> f64 {
        (self - rhs).norm()
    }

    /// Squared distance to another point.
    #[inline(always)]
    pub fn distance2(self, rhs: Self) -> f64 {
        (self - rhs).norm2()
    }

    /// Apply a function to every component.
    #[inline]
    pub fn map(self, f: impl Fn(f64) -> f64) -> Self {
        Self::new(f(self.x), f(self.y), f(self.z))
    }

    /// Components as an array.
    #[inline]
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Build from an array.
    #[inline]
    pub const fn from_array(a: [f64; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }

    /// Cylindrical radius sqrt(x² + y²) — the disk lives in the x-y plane.
    #[inline]
    pub fn cylindrical_r(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Azimuthal angle in the x-y plane, in (-π, π].
    #[inline]
    pub fn azimuth(self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl Add for Vec3 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.x += rhs.x;
        self.y += rhs.y;
        self.z += rhs.z;
    }
}

impl Sub for Vec3 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.x -= rhs.x;
        self.y -= rhs.y;
        self.z -= rhs.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline(always)]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.x *= rhs;
        self.y *= rhs;
        self.z *= rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: f64) {
        self.x /= rhs;
        self.y /= rhs;
        self.z /= rhs;
    }
}

impl Neg for Vec3 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ZERO, |acc, v| acc + v)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Self::from_array(a)
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3::new(x, y, z)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = v(1.0, 2.0, 3.0);
        let b = v(-4.0, 0.5, 9.0);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(v(1.0, 0.0, 0.0).dot(v(0.0, 1.0, 0.0)), 0.0);
    }

    #[test]
    fn cross_right_handed() {
        assert_eq!(v(1.0, 0.0, 0.0).cross(v(0.0, 1.0, 0.0)), v(0.0, 0.0, 1.0));
        assert_eq!(v(0.0, 1.0, 0.0).cross(v(0.0, 0.0, 1.0)), v(1.0, 0.0, 0.0));
    }

    #[test]
    fn cross_anticommutes() {
        let a = v(1.0, 2.0, 3.0);
        let b = v(4.0, 5.0, 6.0);
        assert_eq!(a.cross(b), -(b.cross(a)));
    }

    #[test]
    fn norm_pythagorean() {
        assert_eq!(v(3.0, 4.0, 0.0).norm(), 5.0);
        assert_eq!(v(3.0, 4.0, 0.0).norm2(), 25.0);
    }

    #[test]
    fn normalized_has_unit_length() {
        let n = v(1.0, -2.0, 2.5).normalized();
        assert!((n.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(ZERO.normalized(), ZERO);
    }

    #[test]
    fn scalar_mul_commutes() {
        let a = v(1.0, 2.0, 3.0);
        assert_eq!(2.0 * a, a * 2.0);
    }

    #[test]
    fn div_by_scalar() {
        assert_eq!(v(2.0, 4.0, 6.0) / 2.0, v(1.0, 2.0, 3.0));
    }

    #[test]
    fn indexing_matches_fields() {
        let a = v(7.0, 8.0, 9.0);
        assert_eq!(a[0], 7.0);
        assert_eq!(a[1], 8.0);
        assert_eq!(a[2], 9.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = v(0.0, 0.0, 0.0)[3];
    }

    #[test]
    fn index_mut_writes_fields() {
        let mut a = ZERO;
        a[0] = 1.0;
        a[1] = 2.0;
        a[2] = 3.0;
        assert_eq!(a, v(1.0, 2.0, 3.0));
    }

    #[test]
    fn sum_of_vectors() {
        let s: Vec3 = [v(1.0, 0.0, 0.0), v(0.0, 2.0, 0.0), v(0.0, 0.0, 3.0)].into_iter().sum();
        assert_eq!(s, v(1.0, 2.0, 3.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = v(1.0, 5.0, -2.0);
        let b = v(3.0, 4.0, -1.0);
        assert_eq!(a.min(b), v(1.0, 4.0, -2.0));
        assert_eq!(a.max(b), v(3.0, 5.0, -1.0));
    }

    #[test]
    fn array_roundtrip() {
        let a = v(1.5, 2.5, 3.5);
        assert_eq!(Vec3::from_array(a.to_array()), a);
        let b: [f64; 3] = a.into();
        assert_eq!(Vec3::from(b), a);
    }

    #[test]
    fn cylindrical_r_in_plane() {
        assert!((v(3.0, 4.0, 100.0).cylindrical_r() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn azimuth_quadrants() {
        assert!((v(1.0, 1.0, 0.0).azimuth() - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
        assert!((v(-1.0, 0.0, 0.0).azimuth() - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = v(1.0, 2.0, 3.0);
        let b = v(-1.0, 0.0, 5.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert!((a.distance2(b) - a.distance(b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(v(1.0, 2.0, 3.0).is_finite());
        assert!(!v(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!v(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn map_applies_per_component() {
        assert_eq!(v(1.0, -2.0, 3.0).map(|c| c * c), v(1.0, 4.0, 9.0));
    }

    #[test]
    fn neg_flips_all() {
        assert_eq!(-v(1.0, -2.0, 3.0), v(-1.0, 2.0, -3.0));
    }

    #[test]
    fn abs_and_max_component() {
        assert_eq!(v(-3.0, 2.0, -5.0).abs(), v(3.0, 2.0, 5.0));
        assert_eq!(v(-3.0, 2.0, -5.0).abs().max_component(), 5.0);
    }
}
