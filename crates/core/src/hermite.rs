//! The 4th-order Hermite predictor/corrector scheme (Makino & Aarseth 1992)
//! and the Aarseth adaptive timestep criterion.
//!
//! GRAPE-6 was designed around this integrator: the pipelines return both the
//! force and its analytic time derivative (jerk), which is what lets a
//! 4th-order scheme run with a single force evaluation per step.

use crate::vec3::Vec3;

/// Result of one Hermite correction: the corrected state and the implied
/// higher derivatives at the *end* of the step (used for the next timestep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corrected {
    /// Corrected position at t + dt.
    pub pos: Vec3,
    /// Corrected velocity at t + dt.
    pub vel: Vec3,
    /// Second derivative of the acceleration (snap) at t + dt.
    pub snap: Vec3,
    /// Third derivative of the acceleration (crackle) at t + dt.
    pub crackle: Vec3,
}

/// Hermite predictor: extrapolate `(pos, vel)` over `dt` using acceleration
/// and jerk.
#[inline]
pub fn predict(pos: Vec3, vel: Vec3, acc: Vec3, jerk: Vec3, dt: f64) -> (Vec3, Vec3) {
    let dt2 = dt * dt;
    let p = pos + vel * dt + acc * (dt2 / 2.0) + jerk * (dt2 * dt / 6.0);
    let v = vel + acc * dt + jerk * (dt2 / 2.0);
    (p, v)
}

/// Hermite corrector.
///
/// Given the predicted state `(pos_p, vel_p)` at `t + dt`, the old
/// derivatives `(acc0, jerk0)` at `t`, and the new derivatives
/// `(acc1, jerk1)` evaluated at the predicted state, form the interpolating
/// polynomial's 2nd and 3rd acceleration derivatives and apply the
/// 4th/5th-order position/velocity corrections.
#[inline]
pub fn correct(
    pos_p: Vec3,
    vel_p: Vec3,
    acc0: Vec3,
    jerk0: Vec3,
    acc1: Vec3,
    jerk1: Vec3,
    dt: f64,
) -> Corrected {
    let dt2 = dt * dt;
    let dt3 = dt2 * dt;
    // Derivatives at the *start* of the interval:
    let snap0 = ((acc1 - acc0) * 6.0 - (jerk0 * 4.0 + jerk1 * 2.0) * dt) / dt2;
    let crackle0 = ((acc0 - acc1) * 12.0 + (jerk0 + jerk1) * 6.0 * dt) / dt3;
    let vel = vel_p + snap0 * (dt3 / 6.0) + crackle0 * (dt3 * dt / 24.0);
    let pos = pos_p + snap0 * (dt3 * dt / 24.0) + crackle0 * (dt3 * dt2 / 120.0);
    // Shift the derivatives to the end of the interval for the timestep
    // criterion (crackle is constant for a cubic interpolant).
    let snap1 = snap0 + crackle0 * dt;
    Corrected { pos, vel, snap: snap1, crackle: crackle0 }
}

/// The generalized Aarseth timestep criterion:
///
/// `dt = sqrt( η · (|a||a⁽²⁾| + |j|²) / (|j||a⁽³⁾| + |a⁽²⁾|²) )`.
///
/// Returns `f64::INFINITY` when the denominator vanishes (e.g. an unperturbed
/// particle); callers clamp against `dt_max`.
#[inline]
pub fn aarseth_dt(acc: Vec3, jerk: Vec3, snap: Vec3, crackle: Vec3, eta: f64) -> f64 {
    let a = acc.norm();
    let j = jerk.norm();
    let s = snap.norm();
    let c = crackle.norm();
    let num = a * s + j * j;
    let den = j * c + s * s;
    if den == 0.0 {
        if num == 0.0 {
            return f64::INFINITY;
        }
        return f64::INFINITY;
    }
    (eta * num / den).sqrt()
}

/// Startup timestep before higher derivatives are known:
/// `dt = η_s |a| / |j|`.
#[inline]
pub fn initial_dt(acc: Vec3, jerk: Vec3, eta_s: f64) -> f64 {
    let a = acc.norm();
    let j = jerk.norm();
    if j == 0.0 {
        return f64::INFINITY;
    }
    eta_s * a / j
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A particle in a quadratic force field a(t) known in closed form lets
    /// us check order of accuracy exactly.
    fn polynomial_truth(t: f64) -> (Vec3, Vec3, Vec3, Vec3) {
        // a(t) = (1 + 2t + 3t², ...), x(0)=0, v(0)=0
        let ax = 1.0 + 2.0 * t + 3.0 * t * t;
        let jx = 2.0 + 6.0 * t;
        let vx = t + t * t + t * t * t;
        let xx = t * t / 2.0 + t * t * t / 3.0 + t * t * t * t / 4.0;
        (
            Vec3::new(xx, 0.0, 0.0),
            Vec3::new(vx, 0.0, 0.0),
            Vec3::new(ax, 0.0, 0.0),
            Vec3::new(jx, 0.0, 0.0),
        )
    }

    #[test]
    fn corrector_is_exact_for_quadratic_acceleration() {
        // A cubic Hermite interpolant reproduces a quadratic a(t) exactly, so
        // position (integrated twice) is exact too.
        let dt = 0.37;
        let (x0, v0, a0, j0) = polynomial_truth(0.0);
        let (x1, v1, a1, j1) = polynomial_truth(dt);
        let (xp, vp) = predict(x0, v0, a0, j0, dt);
        let c = correct(xp, vp, a0, j0, a1, j1, dt);
        assert!((c.pos - x1).norm() < 1e-14, "pos err {}", (c.pos - x1).norm());
        assert!((c.vel - v1).norm() < 1e-14, "vel err {}", (c.vel - v1).norm());
        // snap at end = 6 + ... for our polynomial: a'' = 6 (constant)
        assert!((c.snap - Vec3::new(6.0, 0.0, 0.0)).norm() < 1e-10);
        assert!(c.crackle.norm() < 1e-9);
    }

    #[test]
    fn predictor_is_third_order_taylor() {
        let dt = 0.1;
        let (p, v) = predict(
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(6.0, 0.0, 0.0),
            dt,
        );
        assert!((p.x - (1.0 + dt * dt * dt)).abs() < 1e-15);
        assert!((p.y - dt).abs() < 1e-15);
        assert!((p.z - dt * dt).abs() < 1e-15);
        assert!((v.x - 3.0 * dt * dt).abs() < 1e-15);
        assert!((v.z - 2.0 * dt).abs() < 1e-15);
    }

    #[test]
    fn corrector_converges_at_fourth_order() {
        // Integrate a Kepler-like 1/r² problem over one step at two
        // resolutions; the position error must drop by ≈ 2⁵ (local error
        // O(dt⁵)).
        fn acc_jerk(x: Vec3, v: Vec3) -> (Vec3, Vec3) {
            crate::central::central_acc_jerk(1.0, x, v)
        }
        fn one_step(x0: Vec3, v0: Vec3, dt: f64) -> (Vec3, Vec3) {
            let (a0, j0) = acc_jerk(x0, v0);
            let (xp, vp) = predict(x0, v0, a0, j0, dt);
            let (a1, j1) = acc_jerk(xp, vp);
            let c = correct(xp, vp, a0, j0, a1, j1, dt);
            (c.pos, c.vel)
        }
        // Truth by many tiny steps.
        fn reference(x0: Vec3, v0: Vec3, t: f64, n: usize) -> Vec3 {
            let mut x = x0;
            let mut v = v0;
            let h = t / n as f64;
            for _ in 0..n {
                let (nx, nv) = one_step(x, v, h);
                x = nx;
                v = nv;
            }
            x
        }
        let x0 = Vec3::new(1.0, 0.0, 0.0);
        let v0 = Vec3::new(0.0, 1.0, 0.0); // circular orbit
        let t = 0.2;
        let truth = reference(x0, v0, t, 65536);
        // Compare 4 steps vs 8 steps (inside the asymptotic regime but well
        // above roundoff).
        let e1 = (reference(x0, v0, t, 4) - truth).norm();
        let e2 = (reference(x0, v0, t, 8) - truth).norm();
        let order = (e1 / e2).log2();
        assert!(order > 3.5, "observed order {order} (e1={e1:.3e}, e2={e2:.3e})");
        assert!(order < 4.5, "observed order {order} suspiciously high");
    }

    #[test]
    fn aarseth_dt_scales_with_sqrt_eta() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let j = Vec3::new(0.0, 2.0, 0.0);
        let s = Vec3::new(0.0, 0.0, 3.0);
        let c = Vec3::new(1.0, 1.0, 1.0);
        let d1 = aarseth_dt(a, j, s, c, 0.01);
        let d2 = aarseth_dt(a, j, s, c, 0.04);
        assert!((d2 / d1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn aarseth_dt_dimensional_consistency() {
        // Scaling all derivatives as successive powers of 1/τ must return dt ∝ τ.
        let tau = 0.5;
        let base = (
            Vec3::new(1.0, 0.2, -0.3),
            Vec3::new(0.4, -1.0, 0.6),
            Vec3::new(-0.7, 0.1, 0.9),
            Vec3::new(0.3, 0.3, -0.2),
        );
        let d1 = aarseth_dt(base.0, base.1, base.2, base.3, 0.02);
        let d2 = aarseth_dt(
            base.0,
            base.1 / tau,
            base.2 / (tau * tau),
            base.3 / (tau * tau * tau),
            0.02,
        );
        assert!((d2 / d1 - tau).abs() < 1e-12);
    }

    #[test]
    fn degenerate_derivatives_give_infinite_dt() {
        assert!(
            aarseth_dt(Vec3::zero(), Vec3::zero(), Vec3::zero(), Vec3::zero(), 0.02).is_infinite()
        );
        assert!(initial_dt(Vec3::new(1.0, 0.0, 0.0), Vec3::zero(), 0.01).is_infinite());
    }

    #[test]
    fn initial_dt_is_eta_a_over_j() {
        let dt = initial_dt(Vec3::new(2.0, 0.0, 0.0), Vec3::new(0.0, 4.0, 0.0), 0.01);
        assert!((dt - 0.005).abs() < 1e-15);
    }
}
