//! Chunked, deterministic j-parallel sweep — the shared reduction skeleton
//! for small i-blocks.
//!
//! When a block step activates only a handful of i-particles, parallelizing
//! over them starves the pool; the win is splitting the *j*-sweep, exactly
//! as the GRAPE-6 reduction tree combined partial forces from pipelines that
//! each saw a slice of j-space. [`chunked_jsweep`] runs one `fill` call per
//! fixed-size j-chunk (each producing a partial result per i-particle) and
//! combines the partials **in ascending chunk order**.
//!
//! Determinism contract: the chunk size must depend only on the j-count
//! (use [`j_chunk_size`]), never on the thread count — then the partials and
//! their combination order are identical for any `RAYON_NUM_THREADS`, and so
//! are the output bits.

use rayon::prelude::*;

/// Block sizes up to this many i-particles take the j-parallel sweep; larger
/// blocks parallelize over i-particles instead.
pub const SMALL_BLOCK_MAX: usize = 16;

/// j-chunk size for the small-block sweep: a function of the j-count only
/// (≈64 chunks, bounded), **never** of the thread count, so chunk boundaries
/// — and therefore reduction order and output bits — are identical for any
/// `RAYON_NUM_THREADS`.
#[inline]
pub fn j_chunk_size(n_j: usize) -> usize {
    n_j.div_ceil(64).clamp(64, 8192)
}

/// Sweep `0..n_j` in fixed chunks of `chunk`, calling `fill(j_range, row)`
/// once per chunk with a zeroed row of `out.len()` partials, then fold the
/// rows into `out` with `combine`, in ascending chunk order.
///
/// `scratch` holds the per-chunk partial rows between calls so steady-state
/// sweeps allocate nothing (capacity is retained).
// grape6-lint: hot
pub fn chunked_jsweep<R, F>(
    n_j: usize,
    chunk: usize,
    scratch: &mut Vec<R>,
    out: &mut [R],
    fill: F,
    combine: impl Fn(&mut R, &R),
) where
    R: Default + Clone + Send,
    F: Fn(std::ops::Range<usize>, &mut [R]) + Sync + Send,
{
    let b = out.len();
    for o in out.iter_mut() {
        *o = R::default();
    }
    if n_j == 0 || b == 0 {
        return;
    }
    let n_chunks = n_j.div_ceil(chunk);
    scratch.clear();
    scratch.resize(n_chunks * b, R::default());
    scratch.par_chunks_mut(b).enumerate().for_each(|(c, row)| {
        let lo = c * chunk;
        fill(lo..(lo + chunk).min(n_j), row);
    });
    for row in scratch.chunks(b) {
        for (o, p) in out.iter_mut().zip(row) {
            combine(o, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_ignores_thread_count() {
        for n in [0usize, 1, 63, 64, 1000, 5000, 1 << 20] {
            let a = rayon::with_num_threads(1, || j_chunk_size(n));
            let b = rayon::with_num_threads(7, || j_chunk_size(n));
            assert_eq!(a, b, "n = {n}");
            assert!(a >= 64);
        }
    }

    #[test]
    fn sweep_partitions_the_j_range_exactly_once() {
        // Summing j itself catches both gaps and double counting.
        let n_j = 1000usize;
        let mut scratch = Vec::new();
        let mut out = vec![0u64; 3];
        chunked_jsweep(
            n_j,
            64,
            &mut scratch,
            &mut out,
            |js, row| {
                for j in js {
                    for r in row.iter_mut() {
                        *r += j as u64;
                    }
                }
            },
            |a, b| *a += b,
        );
        let expect = (n_j as u64 - 1) * n_j as u64 / 2;
        assert_eq!(out, vec![expect; 3]);
    }

    #[test]
    fn sweep_bits_invariant_across_thread_counts() {
        // Floating sums with wild magnitude spread: reorder changes bits.
        let n_j = 4096usize;
        let run = |t: usize| {
            rayon::with_num_threads(t, || {
                let mut scratch = Vec::new();
                let mut out = vec![0.0f64; 2];
                chunked_jsweep(
                    n_j,
                    j_chunk_size(n_j),
                    &mut scratch,
                    &mut out,
                    |js, row| {
                        for j in js {
                            let x = (1.0 + j as f64) * 10f64.powi((j % 37) as i32 - 18);
                            row[0] += x;
                            row[1] += 1.0 / x;
                        }
                    },
                    |a, b| *a += b,
                );
                (out[0].to_bits(), out[1].to_bits())
            })
        };
        let reference = run(1);
        for t in [2usize, 3, 8] {
            assert_eq!(run(t), reference, "threads = {t}");
        }
    }

    #[test]
    fn empty_inputs_zero_the_output() {
        let mut scratch = vec![1.0f64; 8];
        let mut out = vec![7.0f64; 2];
        chunked_jsweep(0, 64, &mut scratch, &mut out, |_, _| {}, |a, b| *a += b);
        assert_eq!(out, vec![0.0; 2]);
    }
}
