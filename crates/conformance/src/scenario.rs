//! Deterministic seeded scenario generation.
//!
//! Every scenario is a pure function of its seed: the same seed produces the
//! same particle set, bit for bit, on every machine (the `rand` shim is a
//! fixed xoshiro256** and all arithmetic is plain f64). Scenarios serialize
//! to JSON (Rust's shortest-roundtrip float formatting makes the round trip
//! exact), which is what the shrinker writes and the corpus replays.

use grape6_core::particle::ParticleSystem;
use grape6_core::vec3::Vec3;
use grape6_disk::DiskBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Families of stress scenarios, cycled by seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// A slice of the paper's Uranus-Neptune planetesimal disk.
    DiskSlice,
    /// Masses spanning seven orders of magnitude in one shell.
    ExtremeMassRatio,
    /// Pairs separated by less than the softening length.
    NearCollision,
    /// Ring lattices at power-of-two radii → commensurate block times.
    CommensurateBlocks,
    /// One to four particles: the degenerate small-block paths.
    TinyN,
    /// Positions and masses spread over the whole fixed-point range.
    WideRange,
}

impl ScenarioKind {
    /// The kind assigned to a seed (cycles through all six).
    pub fn for_seed(seed: u64) -> Self {
        match seed % 6 {
            0 => Self::DiskSlice,
            1 => Self::ExtremeMassRatio,
            2 => Self::NearCollision,
            3 => Self::CommensurateBlocks,
            4 => Self::TinyN,
            _ => Self::WideRange,
        }
    }
}

/// A self-contained conformance scenario: the particle system plus the run
/// parameters the differential checks use.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name (kind + seed, or the shrinker's repro tag).
    pub name: String,
    /// Generating seed (0 for hand-written or minimized scenarios).
    pub seed: u64,
    /// Stress family.
    pub kind: ScenarioKind,
    /// The particle set (positions/velocities/masses; dynamical state
    /// zeroed — the runner initializes it where a check needs it).
    pub sys: ParticleSystem,
    /// Largest block timestep (power of two) for trajectory checks.
    pub dt_max: f64,
    /// Number of block steps the trajectory checks advance.
    pub steps: usize,
}

impl Scenario {
    /// Number of particles.
    pub fn len(&self) -> usize {
        self.sys.len()
    }

    /// True if the scenario holds no particles.
    pub fn is_empty(&self) -> bool {
        self.sys.is_empty()
    }
}

fn unit_vec(rng: &mut StdRng) -> Vec3 {
    // Rejection-free: z uniform in [-1,1], azimuth uniform.
    let z = rng.gen_range(-1.0..1.0);
    let th = rng.gen_range(0.0..std::f64::consts::TAU);
    let s = (1.0 - z * z).max(0.0).sqrt();
    Vec3::new(s * th.cos(), s * th.sin(), z)
}

fn disk_slice(rng: &mut StdRng, seed: u64) -> ParticleSystem {
    let n = 24 + rng.gen_range(0.0..136.0) as usize;
    let builder = DiskBuilder::paper(n).with_seed(seed.wrapping_mul(31).wrapping_add(7));
    if rng.gen_bool(0.5) {
        builder.without_protoplanets().build()
    } else {
        builder.build()
    }
}

fn extreme_mass_ratio(rng: &mut StdRng) -> ParticleSystem {
    let n = 8 + rng.gen_range(0.0..56.0) as usize;
    let mut sys = ParticleSystem::new(0.008, 1.0);
    for _ in 0..n {
        let r = rng.gen_range(10.0..40.0);
        let pos = unit_vec(rng) * r;
        let v = grape6_core::units::circular_speed(r, 1.0);
        let vel = unit_vec(rng) * (v * rng.gen_range(0.5..1.5));
        // Log-uniform masses: protoplanet (3e-5) down to dust (1e-12).
        let mass = 10.0f64.powf(rng.gen_range(-12.0..-4.5));
        sys.push(pos, vel, mass);
    }
    sys
}

fn near_collision(rng: &mut StdRng) -> ParticleSystem {
    let eps = 0.008;
    let mut sys = ParticleSystem::new(eps, 1.0);
    let pairs = 2 + rng.gen_range(0.0..10.0) as usize;
    for _ in 0..pairs {
        let r = rng.gen_range(15.0..35.0);
        let center = unit_vec(rng) * r;
        let v = grape6_core::units::circular_speed(r, 1.0);
        let vel = unit_vec(rng) * v;
        // Separation down to 1% of the softening length: the fixed-point
        // subtraction must stay exact where f64 would cancel.
        let sep = unit_vec(rng) * (eps * rng.gen_range(0.01..1.5) / 2.0);
        let dv = unit_vec(rng) * (v * rng.gen_range(0.0..0.02));
        let m = 10.0f64.powf(rng.gen_range(-9.0..-6.0));
        sys.push(center + sep, vel + dv, m);
        sys.push(center - sep, vel - dv, m);
    }
    sys
}

fn commensurate_blocks(rng: &mut StdRng) -> ParticleSystem {
    let mut sys = ParticleSystem::new(0.008, 1.0);
    let rings = 2 + rng.gen_range(0.0..3.0) as usize;
    let per_ring = 4 + rng.gen_range(0.0..20.0) as usize;
    for k in 0..rings {
        // Power-of-two radii → orbital accelerations (and hence Hermite
        // timesteps) land on commensurate power-of-two blocks.
        let r = 8.0 * 2.0f64.powi(k as i32);
        let v = grape6_core::units::circular_speed(r, 1.0);
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        for p in 0..per_ring {
            let th = phase + p as f64 * std::f64::consts::TAU / per_ring as f64;
            sys.push(
                Vec3::new(r * th.cos(), r * th.sin(), 0.0),
                Vec3::new(-v * th.sin(), v * th.cos(), 0.0),
                10.0f64.powf(rng.gen_range(-10.0..-7.0)),
            );
        }
    }
    sys
}

fn tiny_n(rng: &mut StdRng) -> ParticleSystem {
    let n = 1 + rng.gen_range(0.0..4.0) as usize;
    let mut sys = ParticleSystem::new(0.008, 1.0);
    for _ in 0..n {
        let pos = unit_vec(rng) * rng.gen_range(5.0..40.0);
        let vel = unit_vec(rng) * rng.gen_range(0.0..0.3);
        sys.push(pos, vel, 10.0f64.powf(rng.gen_range(-10.0..-5.0)));
    }
    sys
}

fn wide_range(rng: &mut StdRng) -> ParticleSystem {
    let n = 16 + rng.gen_range(0.0..64.0) as usize;
    let mut sys = ParticleSystem::new(0.008, 1.0);
    for _ in 0..n {
        // Radii from 0.01 AU to ~300 AU: most of the ±512 AU fixed-point
        // range, so quantization is exercised at both extremes.
        let r = 10.0f64.powf(rng.gen_range(-2.0..2.5));
        let pos = unit_vec(rng) * r;
        let vel = unit_vec(rng) * rng.gen_range(0.0..2.0);
        sys.push(pos, vel, 10.0f64.powf(rng.gen_range(-12.0..-4.0)));
    }
    sys
}

/// Generate the scenario for `seed`. Pure: same seed, same bits.
pub fn generate(seed: u64) -> Scenario {
    let kind = ScenarioKind::for_seed(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let sys = match kind {
        ScenarioKind::DiskSlice => disk_slice(&mut rng, seed),
        ScenarioKind::ExtremeMassRatio => extreme_mass_ratio(&mut rng),
        ScenarioKind::NearCollision => near_collision(&mut rng),
        ScenarioKind::CommensurateBlocks => commensurate_blocks(&mut rng),
        ScenarioKind::TinyN => tiny_n(&mut rng),
        ScenarioKind::WideRange => wide_range(&mut rng),
    };
    let dt_max = 2.0f64.powi(rng.gen_range(-4.0..4.0) as i32);
    let steps = 4 + rng.gen_range(0.0..9.0) as usize;
    Scenario { name: format!("{kind:?}-{seed:04}"), seed, kind, sys, dt_max, steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..12 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.len(), b.len(), "seed {seed}");
            for i in 0..a.len() {
                assert_eq!(a.sys.pos[i], b.sys.pos[i]);
                assert_eq!(a.sys.vel[i], b.sys.vel[i]);
                assert_eq!(a.sys.mass[i], b.sys.mass[i]);
            }
            assert_eq!(a.dt_max, b.dt_max);
        }
    }

    #[test]
    fn every_kind_appears_and_validates() {
        let mut seen = [false; 6];
        for seed in 0..12 {
            let sc = generate(seed);
            seen[seed as usize % 6] = true;
            assert!(!sc.is_empty(), "seed {seed} generated an empty system");
            assert!(sc.sys.softening > 0.0);
            assert!(sc.dt_max > 0.0 && sc.dt_max.log2().fract() == 0.0);
            sc.sys.validate().expect("generated system must validate");
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn json_round_trip_is_exact() {
        let sc = generate(3);
        let json = serde_json::to_string(&sc).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), sc.len());
        for i in 0..sc.len() {
            assert_eq!(back.sys.pos[i], sc.sys.pos[i], "pos {i} not bit-exact after JSON");
            assert_eq!(back.sys.vel[i], sc.sys.vel[i]);
            assert_eq!(back.sys.mass[i], sc.sys.mass[i]);
        }
        assert_eq!(back.kind, sc.kind);
        assert_eq!(back.dt_max, sc.dt_max);
    }
}
