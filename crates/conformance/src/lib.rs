//! # grape6-conformance
//!
//! Differential conformance harness for the GRAPE-6 force engines.
//!
//! The paper's whole argument rests on the reduced-precision pipelines
//! (§5.2: 64-bit fixed-point positions, short-mantissa floats, wide
//! fixed-point accumulation) being "good enough" for the Hermite block-
//! timestep integrator. This crate turns that claim into a fuzzable
//! contract:
//!
//! * [`scenario`] — a deterministic seeded generator of stressy particle
//!   sets (extreme mass ratios, near-collisions inside the softening
//!   length, commensurate block times, tiny and large N, disk slices via
//!   `grape6-disk`), each serializable to JSON;
//! * [`oracle`] — per-particle force/jerk/potential tolerances derived
//!   from the *actual* bit widths in `grape6_hw::format` (half-ulp
//!   pipeline rounding, fixed-point position quantization, accumulator
//!   quanta), not from hand-tuned epsilons;
//! * [`runner`] — drives the same scenario through `DirectEngine`,
//!   `Grape6Engine` (hardware and exact arithmetic), `NodeEngine`,
//!   `ClusterEngine` and `FaultTolerantEngine`, comparing forces against
//!   the oracle and requiring **bitwise** equality wherever the
//!   determinism contract promises it (routed-vs-flat, cluster-vs-flat,
//!   FT-vs-plain, thread counts, small-vs-large block paths);
//! * [`metamorphic`] — invariants checked per scenario: particle
//!   permutation, 90° frame rotation, translation, power-of-two mass
//!   rescaling, `RAYON_NUM_THREADS` invariance;
//! * [`mod@shrink`] — a greedy minimizer that drops particles and rounds
//!   values while a failure reproduces, writing repro JSON for the
//!   checked-in `conformance/corpus/` regression suite;
//! * [`broken`] — an intentionally broken kernel (dev-only flag) proving
//!   the harness catches and minimizes real bugs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broken;
pub mod corpus;
pub mod metamorphic;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use oracle::{Oracle, Tolerances};
pub use runner::{run_check, run_scenario, CheckFailure, ALL_CHECKS};
pub use scenario::{generate, Scenario, ScenarioKind};
pub use shrink::shrink;
