//! The precision oracle: engine-agreement tolerances derived from the bit
//! widths in `grape6_hw::format`, not from hand-tuned epsilons.
//!
//! For every i-particle the oracle walks the same pairs the engines sum and
//! accumulates an error *budget* with one term per hardware error source:
//!
//! * **pipeline rounding** — every rounded stage of
//!   `grape6_hw::pipeline::pipeline_interaction` (dx, dv, r², 1/r, 1/r²,
//!   m/r³ twice, r·v, α, acc, jerk, pot ≈ a dozen stages) perturbs a pair
//!   relatively by at most [`grape6_hw::format::rel_half_ulp`] of the
//!   pipeline mantissa; `K_PIPE` bounds the stage count with slack;
//! * **position quantization** — fixed-point encoding moves each coordinate
//!   by at most [`grape6_hw::format::FixedPointFormat::half_ulp`], which
//!   propagates into a pair force through the force gradient (≤ 3·a/r̃ per
//!   unit of displacement, r̃ the softened distance);
//! * **prediction rounding** — at t > 0 the hardware predictor evaluates
//!   its Taylor polynomial in pipeline precision, so each predicted
//!   position/velocity carries a relative half-ulp of the polynomial terms;
//! * **accumulation quanta** — the wide fixed-point accumulator rounds each
//!   of the ~N partial forces to the grid of
//!   [`grape6_hw::format::accum_quantum`];
//! * **reference reordering** — the f64 reference itself is only exact to
//!   its own summation order; `(n+8)·2⁻⁵³` per pair covers any reordering;
//! * **self-interaction leak** — the chip predicts a particle's own j-copy
//!   in short floats while the host predicts the i-side in f64; the softened
//!   self-pair then leaks `m·Δx/ε³` of force instead of cancelling (zero at
//!   t = 0, where both sides encode identical bits).
//!
//! A global `SAFETY` factor absorbs the slack between these per-term upper
//! bounds and the exact worst case. The oracle's job is discrimination, not
//! tightness: real hardware-arithmetic error sits just below the budget
//! while a genuinely broken kernel (a dropped pair, a wrong exponent)
//! overshoots it by many orders of magnitude.

use grape6_core::particle::ParticleSystem;
use grape6_hw::format::{accum_quantum, rel_half_ulp};
use grape6_hw::FixedPointFormat;

/// Rounded-stage bound of one pipeline interaction (with slack; the actual
/// sequence in `pipeline_interaction` rounds ~12 scalar stages).
pub const K_PIPE: f64 = 16.0;

/// Global slack between per-term upper bounds and the exact worst case.
pub const SAFETY: f64 = 8.0;

/// Leading coefficient of the multipole-truncation bound (the quadrupole
/// term of a worst-case mass distribution inside an accepted cell).
pub const K_TREE: f64 = 3.0;

/// Per-particle absolute tolerances on the engine outputs.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// On `|acc_a − acc_b|` (vector norm).
    pub acc: Vec<f64>,
    /// On `|jerk_a − jerk_b|` (vector norm).
    pub jerk: Vec<f64>,
    /// On `|pot_a − pot_b|`.
    pub pot: Vec<f64>,
}

/// What is being compared, and therefore which error sources apply.
#[derive(Debug, Clone, Copy)]
pub struct Oracle {
    /// Pipeline mantissa bits of the lower-precision side (53 = exact f64).
    pub mantissa_bits: u32,
    /// Include fixed-point position quantization and accumulator quanta
    /// (true when a hardware engine is on either side).
    pub quantized: bool,
    /// Additional absolute position uncertainty per coordinate (used by the
    /// translation invariant, where the frame shift re-rounds positions).
    pub extra_dpos: f64,
    /// Per-pair relative slack factor in units of `rel_half_ulp`.
    pub pipeline_k: f64,
    /// Barnes-Hut opening angle θ of the approximate side (0 = exact
    /// summation on both sides: no far-field truncation term).
    pub theta: f64,
}

impl Oracle {
    /// Hardware engine vs f64 reference, given the pipeline mantissa width.
    pub fn hardware(mantissa_bits: u32) -> Self {
        Self { mantissa_bits, quantized: true, extra_dpos: 0.0, pipeline_k: K_PIPE, theta: 0.0 }
    }

    /// f64 engine vs f64 engine where only the summation order differs
    /// (permutation, small-vs-large block path). `n` is the pair count.
    pub fn reorder(n: usize) -> Self {
        Self {
            mantissa_bits: 53,
            quantized: false,
            extra_dpos: 0.0,
            pipeline_k: (n + 8) as f64,
            theta: 0.0,
        }
    }

    /// Tree-walking f64 engine with opening angle `theta` vs the f64 direct
    /// reference: the reorder budget plus the multipole acceptance-criterion
    /// truncation bound on every pair. At `theta = 0` this *is*
    /// [`Oracle::reorder`] — the budget collapses to summation-order slack,
    /// matching the bitwise-anchor contract.
    pub fn tree(theta: f64, n: usize) -> Self {
        assert!(theta >= 0.0, "opening angle must be non-negative");
        Self { theta, ..Self::reorder(n) }
    }

    /// Compute per-particle tolerances for comparing engine outputs on
    /// `sys`'s particles predicted to time `t` (pass `sys.t` for the
    /// unpredicted case).
    pub fn tolerances(&self, sys: &ParticleSystem, t: f64) -> Tolerances {
        let n = sys.len();
        let eps2 = sys.softening * sys.softening;
        let u = rel_half_ulp(self.mantissa_bits);
        let fmt = FixedPointFormat::default();
        // Per-coordinate quantization, doubled for the two particles of a
        // pair, √3 for three coordinates.
        let quant = if self.quantized { 2.0 * 3.0f64.sqrt() * fmt.half_ulp() } else { 0.0 };
        let q = if self.quantized { accum_quantum() } else { 0.0 };
        // f64 reference reordering slack, always present.
        let uref = (n + 8) as f64 * rel_half_ulp(53);

        // Predicted state and per-particle prediction scale: the magnitude
        // of the predictor polynomial's moving terms, whose rounding in
        // pipeline precision displaces predicted positions/velocities.
        let mut ppos = Vec::with_capacity(n);
        let mut pvel = Vec::with_capacity(n);
        let mut dpos = Vec::with_capacity(n);
        let mut dvel = Vec::with_capacity(n);
        for j in 0..n {
            let (p, v) = sys.predict(j, t);
            ppos.push(p);
            pvel.push(v);
            let dt = (t - sys.time[j]).abs();
            let travel = sys.vel[j].norm() * dt
                + sys.acc[j].norm() * dt * dt / 2.0
                + sys.jerk[j].norm() * dt * dt * dt / 6.0;
            let vchange = sys.acc[j].norm() * dt + sys.jerk[j].norm() * dt * dt / 2.0;
            // Positions ride in 54-bit fixed point, so only the predictor
            // *increment* is rounded at pipeline precision; velocities live
            // in short-mantissa words, so theirs includes the base value.
            dpos.push(u * travel + quant + uref * p.norm() + self.extra_dpos);
            dvel.push(u * (vchange + v.norm()));
        }

        // Multipole truncation (tree engines only): a cell of size s is
        // accepted at COM distance d when s < θ·d; its bodies then lie
        // within β·d of the COM with β ≤ √3·θ (up to √3·s/2 from the cell
        // centre, plus as much again for the centre-to-COM offset). The
        // dipole term vanishes about the COM, so the worst-case *relative*
        // force error per accepted pair is the quadrupole bound
        // K_TREE·β²/(1−β)³ — with the denominator clamped because for
        // θ ≳ 1/√3 the worst-case geometry is unbounded (the budget stays a
        // budget; a walk that bad would fail the θ = 0 bitwise anchor and
        // the counter checks long before this term saves it).
        let tree_rel = if self.theta > 0.0 {
            let beta = 3.0f64.sqrt() * self.theta;
            let denom = (1.0 - beta).max(0.2);
            K_TREE * beta * beta / (denom * denom * denom)
        } else {
            0.0
        };
        // A cell's velocity moment is truncated by the same criterion, so
        // the system-wide predicted-velocity spread stands in for any
        // cell's internal spread in the jerk budget.
        let vspread = if self.theta > 0.0 {
            2.0 * pvel.iter().fold(0.0f64, |m, v| m.max(v.norm()))
        } else {
            0.0
        };

        let mut tol = Tolerances {
            acc: Vec::with_capacity(n),
            jerk: Vec::with_capacity(n),
            pot: Vec::with_capacity(n),
        };
        for i in 0..n {
            let mut acc_b = 0.0;
            let mut jerk_b = 0.0;
            let mut pot_b = 0.0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let dx = ppos[j] - ppos[i];
                let dv = pvel[j] - pvel[i];
                let re = (dx.norm2() + eps2).sqrt().max(f64::MIN_POSITIVE);
                let m = sys.mass[j];
                let a = m / (re * re);
                let p = m / re;
                // Jerk magnitude bound: |dv − 3(d̂x·dv)d̂x|·m/r̃³ ≤ 4m|dv|/r̃³.
                let jb = 4.0 * m * dv.norm() / (re * re * re);
                let dp = dpos[i] + dpos[j];
                let dvl = dvel[i] + dvel[j];
                acc_b += a * (self.pipeline_k * u + uref) + 3.0 * a * dp / re;
                jerk_b += jb * (self.pipeline_k * u + uref)
                    + 3.0 * m * dvl / (re * re * re)
                    + 4.0 * jb * dp / re
                    + 12.0 * m * dv.norm() * dp / (re * re * re * re);
                pot_b += p * (self.pipeline_k * u + uref) + p * dp / re;
                if tree_rel > 0.0 {
                    acc_b += tree_rel * a;
                    jerk_b += tree_rel * (jb + 3.0 * m * (dv.norm() + vspread) / (re * re * re));
                    pot_b += tree_rel * p;
                }
            }
            // Accumulator quanta: one half-step per partial, per component.
            let aq = (n as f64 + 2.0) * q * 3.0f64.sqrt();
            acc_b += aq;
            jerk_b += aq;
            pot_b += (n as f64 + 2.0) * q;
            // Self-potential correction residual: the pipeline's −m/ε self
            // term and the host's +m/ε correction round differently.
            if sys.softening > 0.0 {
                pot_b += self.pipeline_k * u * sys.mass[i] / sys.softening;
            }
            // Self-interaction leak (the hardware's best-known artifact): at
            // t > 0 the chip's short-float prediction of a particle's own
            // j-copy disagrees with the host's f64-predicted i-position by
            // dpos[i], so the softened self-pair leaks |m·Δx|/ε³ of force
            // and ~4m|Δv|/ε³ of jerk instead of cancelling exactly.
            if self.quantized && sys.softening > 0.0 {
                let e3 = sys.softening * sys.softening * sys.softening;
                acc_b += sys.mass[i] * dpos[i] / e3;
                jerk_b += 4.0 * sys.mass[i] * dvel[i] / e3;
                pot_b += sys.mass[i] * dpos[i] * dpos[i] / e3;
            }
            tol.acc.push(SAFETY * acc_b);
            tol.jerk.push(SAFETY * jerk_b);
            tol.pot.push(SAFETY * pot_b);
        }
        tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::vec3::Vec3;

    fn pair() -> ParticleSystem {
        let mut sys = ParticleSystem::new(0.008, 1.0);
        sys.push(Vec3::new(20.0, 0.0, 0.0), Vec3::new(0.0, 0.2, 0.0), 1e-6);
        sys.push(Vec3::new(20.1, 0.0, 0.0), Vec3::new(0.0, 0.19, 0.0), 2e-6);
        sys
    }

    #[test]
    fn hardware_oracle_scales_with_mantissa() {
        let sys = pair();
        let t24 = Oracle::hardware(24).tolerances(&sys, 0.0);
        let t53 = Oracle::hardware(53).tolerances(&sys, 0.0);
        // 24-bit pipelines must be allowed vastly more error than exact
        // arithmetic (where only quantization terms remain).
        assert!(t24.acc[0] > 1e3 * t53.acc[0], "24-bit {} vs 53-bit {}", t24.acc[0], t53.acc[0]);
        assert!(t24.acc[0] > 0.0 && t24.acc[0].is_finite());
    }

    #[test]
    fn tolerance_is_far_below_the_signal() {
        // The oracle must discriminate: the allowed error on a pair force
        // stays orders of magnitude below the force itself.
        let sys = pair();
        let tol = Oracle::hardware(24).tolerances(&sys, 0.0);
        let a = 2e-6 / (0.1f64 * 0.1); // partner's m/r²
        assert!(tol.acc[0] < 1e-3 * a, "tolerance {} vs signal {a}", tol.acc[0]);
    }

    #[test]
    fn reorder_oracle_is_tiny() {
        let sys = pair();
        let tol = Oracle::reorder(sys.len()).tolerances(&sys, 0.0);
        let a = 2e-6 / (0.1f64 * 0.1);
        assert!(tol.acc[0] < 1e-10 * a, "reorder tolerance {} too loose", tol.acc[0]);
    }

    #[test]
    fn tree_oracle_at_theta_zero_is_the_reorder_oracle() {
        // The bitwise-anchor contract in budget form: no opening angle, no
        // truncation term — only summation-order slack remains.
        let sys = pair();
        let t0 = Oracle::tree(0.0, sys.len()).tolerances(&sys, 0.0);
        let re = Oracle::reorder(sys.len()).tolerances(&sys, 0.0);
        assert_eq!(t0.acc, re.acc);
        assert_eq!(t0.jerk, re.jerk);
        assert_eq!(t0.pot, re.pot);
    }

    #[test]
    fn tree_budget_grows_with_theta_and_dwarfs_reorder() {
        let sys = pair();
        let re = Oracle::reorder(sys.len()).tolerances(&sys, 0.0);
        let mut prev = re.acc[0];
        for theta in [0.3, 0.5, 0.75] {
            let t = Oracle::tree(theta, sys.len()).tolerances(&sys, 0.0);
            assert!(
                t.acc[0] > prev,
                "budget must grow monotonically: θ={theta} gives {} after {prev}",
                t.acc[0]
            );
            assert!(t.acc[0] > 1e6 * re.acc[0], "truncation term must dominate reorder slack");
            assert!(t.jerk[0] > re.jerk[0] && t.pot[0] > re.pot[0]);
            assert!(t.acc[0].is_finite() && t.jerk[0].is_finite() && t.pot[0].is_finite());
            prev = t.acc[0];
        }
    }
}
