//! Greedy minimization of failing scenarios.
//!
//! Given a scenario and the name of a check it fails, the shrinker applies
//! reductions one at a time, keeping each only if the *same* check still
//! fails on the reduced scenario:
//!
//! 1. **particle dropping** — remove particles one by one, to a fixpoint;
//! 2. **value rounding** — truncate position/velocity mantissas to 8 then
//!    16 bits (via `grape6_hw::format::round_mantissa`, so the rounding is
//!    the hardware's own round-to-nearest-even);
//! 3. **axis flattening** — zero the z coordinates;
//! 4. **mass snapping** — snap masses to the nearest power of two.
//!
//! The result is a small, human-readable repro (near-minimal particle
//! count, short decimal literals) that serializes to compact JSON for the
//! corpus.

use crate::runner::run_check;
use crate::scenario::Scenario;
use grape6_core::particle::ParticleSystem;
use grape6_core::vec3::Vec3;
use grape6_hw::format::round_vec;

fn drop_particle(sc: &Scenario, victim: usize) -> Scenario {
    let src = &sc.sys;
    let mut sys = ParticleSystem::new(src.softening, src.central_mass);
    sys.t = src.t;
    for i in 0..src.len() {
        if i == victim {
            continue;
        }
        let k = sys.push(src.pos[i], src.vel[i], src.mass[i]);
        sys.acc[k] = src.acc[i];
        sys.jerk[k] = src.jerk[i];
        sys.time[k] = src.time[i];
        sys.dt[k] = src.dt[i];
        sys.id[k] = src.id[i];
    }
    Scenario { sys, ..sc.clone() }
}

/// Apply `f` to the system; keep the mutation only if `check` still fails.
fn try_mutation(cur: &mut Scenario, check: &str, f: impl FnOnce(&mut ParticleSystem)) -> bool {
    let mut cand = cur.clone();
    f(&mut cand.sys);
    if run_check(&cand, check).is_some() {
        *cur = cand;
        true
    } else {
        false
    }
}

/// Minimize a scenario that fails `check`. The input must actually fail
/// (the caller observed it); the output is guaranteed to still fail the
/// same check.
pub fn shrink(sc: &Scenario, check: &str) -> Scenario {
    let mut cur = sc.clone();
    debug_assert!(run_check(&cur, check).is_some(), "shrink() called on a passing scenario");

    // Pass 1: drop particles to a fixpoint. Scanning from the back keeps
    // indices of untried particles stable after a successful drop.
    loop {
        let mut progress = false;
        let mut i = cur.len();
        while i > 0 && cur.len() > 1 {
            i -= 1;
            let cand = drop_particle(&cur, i);
            if run_check(&cand, check).is_some() {
                cur = cand;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }

    // Pass 2: coarsen coordinates — fewer significant bits means shorter
    // JSON literals and a more legible repro.
    for bits in [8u32, 16] {
        for i in 0..cur.len() {
            try_mutation(&mut cur, check, |sys| {
                sys.pos[i] = round_vec(sys.pos[i], bits);
                sys.vel[i] = round_vec(sys.vel[i], bits);
            });
        }
    }

    // Pass 3: flatten to the z = 0 plane where the failure allows.
    for i in 0..cur.len() {
        try_mutation(&mut cur, check, |sys| {
            sys.pos[i] = Vec3::new(sys.pos[i].x, sys.pos[i].y, 0.0);
            sys.vel[i] = Vec3::new(sys.vel[i].x, sys.vel[i].y, 0.0);
        });
    }

    // Pass 4: snap masses to powers of two.
    for i in 0..cur.len() {
        try_mutation(&mut cur, check, |sys| {
            let m = sys.mass[i];
            if m > 0.0 {
                sys.mass[i] = 2.0f64.powi(m.log2().round() as i32);
            }
        });
    }

    cur.name = format!("min-{}", sc.name);
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::generate;

    #[test]
    fn broken_kernel_shrinks_to_two_particles() {
        // The dropped-pair bug needs exactly two particles to show.
        let sc = generate(0); // DiskSlice, dozens of particles
        assert!(sc.len() > 2);
        assert!(run_check(&sc, "broken/dropped-pair").is_some());
        let min = shrink(&sc, "broken/dropped-pair");
        assert!(min.len() <= 8, "minimized repro has {} particles, want ≤ 8", min.len());
        assert!(run_check(&min, "broken/dropped-pair").is_some(), "repro no longer fails");
    }
}
