//! The differential runner: one scenario, every engine, every invariant.
//!
//! Checks come in three strengths:
//!
//! * **oracle** — engines of different arithmetic (hardware vs f64) must
//!   agree within the [`crate::oracle`] budget;
//! * **bitwise** — wherever the determinism contract promises identical
//!   bits (routed node vs flat engine, cluster vs flat, fault-tolerant vs
//!   plain, thread counts, small-vs-large block paths, and the bitwise
//!   metamorphic invariants), the comparison is on the raw `f64` bits;
//! * **trajectory** — whole block-timestep integrations must stay bitwise
//!   locked where promised (FT-vs-plain, thread counts).
//!
//! Every check is addressable by name so the shrinker can re-run exactly
//! the failing property while it minimizes a scenario.

use crate::broken::BrokenEngine;
use crate::metamorphic;
use crate::oracle::{Oracle, Tolerances, SAFETY};
use crate::scenario::Scenario;
use grape6_core::blockstep::SchedulerKind;
use grape6_core::engine::ForceEngine;
use grape6_core::force::DirectEngine;
use grape6_core::integrator::{BlockHermite, HermiteConfig};
use grape6_core::lanes::LaneWidth;
use grape6_core::particle::{ForceResult, IParticle, ParticleSystem};
use grape6_core::vec3::Vec3;
use grape6_hw::format::accum_quantum;
use grape6_hw::{
    ClusterEngine, FaultPlan, FaultTolerantEngine, Grape6Config, Grape6Engine, NodeEngine,
};
use grape6_sim::Simulation;
use grape6_tree::HybridTreeEngine;

/// One failed check on one scenario.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// Name of the failed check (an entry of [`ALL_CHECKS`]).
    pub check: String,
    /// Human-readable description of the first violation found.
    pub detail: String,
}

/// Every check the runner knows, in execution order.
pub const ALL_CHECKS: &[&str] = &[
    "diff/exact-vs-direct",
    "diff/grape6-vs-direct",
    "diff/node-vs-grape6",
    "diff/cluster-vs-grape6",
    "diff/ft-vs-grape6",
    "diff/predicted-grape6-vs-direct",
    "diff/updatej-node-vs-grape6",
    "block/grape6-small-vs-large",
    "block/direct-small-vs-large",
    "meta/permutation-direct",
    "meta/permutation-grape6",
    "meta/rotation-direct",
    "meta/rotation-grape6",
    "meta/translation-direct",
    "meta/translation-grape6",
    "meta/mass-rescale-direct",
    "meta/mass-rescale-grape6",
    "meta/threads-direct",
    "meta/threads-grape6",
    "lanes/direct",
    "lanes/grape6",
    "lanes/traj-direct",
    "traj/ft-vs-grape6",
    "traj/threads-grape6",
    "sched/tick-vs-heap",
    "hybrid/theta0-bitwise-vs-direct",
    "hybrid/predicted-theta0-vs-direct",
    "hybrid/theta-budget",
    "hybrid/counters-reproducible",
];

fn all_ips(sys: &ParticleSystem) -> Vec<IParticle> {
    (0..sys.len()).map(|i| IParticle { index: i, pos: sys.pos[i], vel: sys.vel[i] }).collect()
}

fn forces<E: ForceEngine>(engine: &mut E, sys: &ParticleSystem, t: f64) -> Vec<ForceResult> {
    engine.load(sys);
    let ips = all_ips(sys);
    let mut out = vec![ForceResult::default(); ips.len()];
    engine.compute(t, &ips, &mut out);
    out
}

fn vbits(v: Vec3) -> [u64; 3] {
    [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()]
}

/// Bitwise comparison of two result sets. `nn`: 0 = ignore the neighbour
/// report, 1 = compare neighbour distance bits only (partition-order ties
/// may pick a different index), 2 = compare index and distance.
fn cmp_bitwise(a: &[ForceResult], b: &[ForceResult], nn: u8) -> Option<String> {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if vbits(x.acc) != vbits(y.acc) {
            return Some(format!("particle {i}: acc bits differ ({:?} vs {:?})", x.acc, y.acc));
        }
        if vbits(x.jerk) != vbits(y.jerk) {
            return Some(format!("particle {i}: jerk bits differ ({:?} vs {:?})", x.jerk, y.jerk));
        }
        if x.pot.to_bits() != y.pot.to_bits() {
            return Some(format!("particle {i}: pot bits differ ({} vs {})", x.pot, y.pot));
        }
        if nn >= 1 {
            let (ra, rb) = (x.nn.map(|n| n.r2.to_bits()), y.nn.map(|n| n.r2.to_bits()));
            if ra != rb {
                return Some(format!("particle {i}: nn distance bits differ"));
            }
        }
        if nn >= 2 && x.nn.map(|n| n.index) != y.nn.map(|n| n.index) {
            return Some(format!("particle {i}: nn index differs"));
        }
    }
    None
}

/// Oracle comparison: `a` within the per-particle tolerance of `b`.
fn cmp_oracle(a: &[ForceResult], b: &[ForceResult], tol: &Tolerances) -> Option<String> {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let da = (x.acc - y.acc).norm();
        if !da.is_finite() || da > tol.acc[i] {
            return Some(format!(
                "particle {i}: |Δacc| = {da:e} exceeds oracle {:e} (|acc| = {:e})",
                tol.acc[i],
                y.acc.norm()
            ));
        }
        let dj = (x.jerk - y.jerk).norm();
        if !dj.is_finite() || dj > tol.jerk[i] {
            return Some(format!(
                "particle {i}: |Δjerk| = {dj:e} exceeds oracle {:e} (|jerk| = {:e})",
                tol.jerk[i],
                y.jerk.norm()
            ));
        }
        let dp = (x.pot - y.pot).abs();
        if !dp.is_finite() || dp > tol.pot[i] {
            return Some(format!(
                "particle {i}: |Δpot| = {dp:e} exceeds oracle {:e} (pot = {:e})",
                tol.pot[i], y.pot
            ));
        }
    }
    None
}

fn grape6() -> Grape6Engine {
    Grape6Engine::new(Grape6Config::sc2002())
}

fn grape6_exact() -> Grape6Engine {
    Grape6Engine::new(Grape6Config::sc2002_exact())
}

/// Initialize a copy of the scenario's system with the f64 reference engine
/// (accelerations, jerks, individual timesteps, schedule) and advance it a
/// couple of block steps so particle times are staggered.
fn initialized_system(sc: &Scenario, advance: usize) -> (ParticleSystem, f64) {
    let mut sys = sc.sys.clone();
    let cfg = HermiteConfig { dt_max: sc.dt_max, ..HermiteConfig::default() };
    let mut direct = DirectEngine::new();
    let mut integ = BlockHermite::new(cfg);
    integ.initialize(&mut sys, &mut direct);
    for _ in 0..advance {
        integ.step(&mut sys, &mut direct);
    }
    let t = integ.next_time().unwrap_or(sys.t);
    (sys, t)
}

/// A mid-scale near-field radius for a scenario: a tenth of the bounding
/// cube's diagonal, so the hybrid checks exercise both the direct near path
/// and the tree far path on every scenario geometry.
fn near_radius(sys: &ParticleSystem) -> f64 {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in &sys.pos {
        for (k, v) in [p.x, p.y, p.z].into_iter().enumerate() {
            lo[k] = lo[k].min(v);
            hi[k] = hi[k].max(v);
        }
    }
    let d2: f64 = (0..3).map(|k| (hi[k] - lo[k]) * (hi[k] - lo[k])).sum();
    (0.1 * d2.sqrt()).max(1e-9)
}

fn predicted_ips(sys: &ParticleSystem, t: f64) -> Vec<IParticle> {
    (0..sys.len())
        .map(|i| {
            let (pos, vel) = sys.predict(i, t);
            IParticle { index: i, pos, vel }
        })
        .collect()
}

/// Compute forces block-by-block (blocks of `block` i-particles) on a
/// freshly loaded engine, concatenating the per-block results.
fn forces_blocked<E: ForceEngine>(
    engine: &mut E,
    sys: &ParticleSystem,
    t: f64,
    block: usize,
) -> Vec<ForceResult> {
    engine.load(sys);
    let ips = all_ips(sys);
    let mut out = vec![ForceResult::default(); ips.len()];
    for (is, os) in ips.chunks(block).zip(out.chunks_mut(block)) {
        engine.compute(t, is, os);
    }
    out
}

fn run_trajectory<E: ForceEngine>(sc: &Scenario, engine: E) -> ParticleSystem {
    let cfg = HermiteConfig { dt_max: sc.dt_max, ..HermiteConfig::default() };
    let mut sim = Simulation::new(sc.sys.clone(), cfg, engine);
    for _ in 0..sc.steps {
        sim.step();
    }
    sim.sys
}

fn run_trajectory_sched<E: ForceEngine>(
    sc: &Scenario,
    engine: E,
    scheduler: SchedulerKind,
) -> ParticleSystem {
    let cfg = HermiteConfig { dt_max: sc.dt_max, ..HermiteConfig::default() };
    let mut sim = Simulation::new_ext(sc.sys.clone(), cfg, engine, scheduler, false);
    for _ in 0..sc.steps {
        sim.step();
    }
    sim.sys
}

fn cmp_system_bits(a: &ParticleSystem, b: &ParticleSystem) -> Option<String> {
    if a.t.to_bits() != b.t.to_bits() {
        return Some(format!("system time differs: {} vs {}", a.t, b.t));
    }
    for i in 0..a.len() {
        for (what, x, y) in [
            ("pos", a.pos[i], b.pos[i]),
            ("vel", a.vel[i], b.vel[i]),
            ("acc", a.acc[i], b.acc[i]),
            ("jerk", a.jerk[i], b.jerk[i]),
        ] {
            if vbits(x) != vbits(y) {
                return Some(format!("particle {i}: {what} bits diverged ({x:?} vs {y:?})"));
            }
        }
        if a.time[i].to_bits() != b.time[i].to_bits() || a.dt[i].to_bits() != b.dt[i].to_bits() {
            return Some(format!("particle {i}: schedule diverged"));
        }
    }
    None
}

/// Run a single named check on a scenario. Returns `None` on pass, or a
/// description of the first violation. Unknown names panic (the shrinker
/// and CLI only pass names from [`ALL_CHECKS`] or `"broken/dropped-pair"`).
pub fn run_check(sc: &Scenario, check: &str) -> Option<String> {
    let sys = &sc.sys;
    let t0 = sys.t;
    match check {
        "diff/exact-vs-direct" => {
            let reference = forces(&mut DirectEngine::new(), sys, t0);
            let hw = forces(&mut grape6_exact(), sys, t0);
            cmp_oracle(&hw, &reference, &Oracle::hardware(53).tolerances(sys, t0))
        }
        "diff/grape6-vs-direct" => {
            let reference = forces(&mut DirectEngine::new(), sys, t0);
            let hw = forces(&mut grape6(), sys, t0);
            cmp_oracle(&hw, &reference, &Oracle::hardware(24).tolerances(sys, t0))
        }
        "diff/node-vs-grape6" => {
            // The routed readout carries no neighbour registers (nn: None),
            // so the bitwise contract covers forces only.
            let flat = forces(&mut grape6(), sys, t0);
            let routed = forces(&mut NodeEngine::production(), sys, t0);
            cmp_bitwise(&routed, &flat, 0)
        }
        "diff/cluster-vs-grape6" => {
            let flat = forces(&mut grape6(), sys, t0);
            let cluster = forces(&mut ClusterEngine::production(), sys, t0);
            cmp_bitwise(&cluster, &flat, 0)
        }
        "diff/ft-vs-grape6" => {
            let flat = forces(&mut grape6(), sys, t0);
            let ft = forces(
                &mut FaultTolerantEngine::new(Grape6Config::sc2002(), &FaultPlan::empty()),
                sys,
                t0,
            );
            cmp_bitwise(&ft, &flat, 2)
        }
        "diff/predicted-grape6-vs-direct" => {
            // Initialized system, a couple of block steps in: particle times
            // are staggered and the hardware predictor pipelines are live.
            let (isys, t) = initialized_system(sc, 2);
            let ips = predicted_ips(&isys, t);
            let mut out_d = vec![ForceResult::default(); ips.len()];
            let mut out_h = vec![ForceResult::default(); ips.len()];
            let mut d = DirectEngine::new();
            d.load(&isys);
            d.compute(t, &ips, &mut out_d);
            let mut h = grape6();
            h.load(&isys);
            h.compute(t, &ips, &mut out_h);
            cmp_oracle(&out_h, &out_d, &Oracle::hardware(24).tolerances(&isys, t))
        }
        "diff/updatej-node-vs-grape6" => {
            // Perturb a few particles and write them back: the routed node
            // and the cluster exchange network must track the flat engine
            // bit for bit through update_j.
            let (mut isys, t) = initialized_system(sc, 1);
            let mut flat = grape6();
            let mut node = NodeEngine::production();
            let mut cluster = ClusterEngine::production();
            flat.load(&isys);
            node.load(&isys);
            cluster.load(&isys);
            let n = isys.len();
            let mut idx: Vec<usize> = [0, n / 3, (2 * n) / 3].into_iter().collect();
            idx.dedup();
            for &i in &idx {
                isys.pos[i] += Vec3::new(1e-3, -2e-3, 5e-4);
                isys.vel[i] *= 1.0009765625; // 1 + 2⁻¹⁰
                isys.time[i] = t;
            }
            flat.update_j(&isys, &idx);
            node.update_j(&isys, &idx);
            cluster.update_j(&isys, &idx);
            let ips = predicted_ips(&isys, t);
            let mut out_f = vec![ForceResult::default(); n];
            let mut out_n = vec![ForceResult::default(); n];
            let mut out_c = vec![ForceResult::default(); n];
            flat.compute(t, &ips, &mut out_f);
            node.compute(t, &ips, &mut out_n);
            cluster.compute(t, &ips, &mut out_c);
            cmp_bitwise(&out_n, &out_f, 0)
                .map(|d| format!("node: {d}"))
                .or_else(|| cmp_bitwise(&out_c, &out_f, 0).map(|d| format!("cluster: {d}")))
        }
        "block/grape6-small-vs-large" => {
            // The chunked j-parallel small-block path must read out the
            // exact bits of the flat large-block sweep.
            let full = forces(&mut grape6(), sys, t0);
            let blocked = forces_blocked(&mut grape6(), sys, t0, 5);
            cmp_bitwise(&blocked, &full, 2)
        }
        "block/direct-small-vs-large" => {
            // The f64 reference reorders its summation between paths; the
            // reorder budget applies.
            let full = forces(&mut DirectEngine::new(), sys, t0);
            let blocked = forces_blocked(&mut DirectEngine::new(), sys, t0, 5);
            cmp_oracle(&blocked, &full, &Oracle::reorder(sys.len()).tolerances(sys, t0))
        }
        "meta/permutation-direct" | "meta/permutation-grape6" => {
            let hw = check.ends_with("grape6");
            let (psys, perm) = metamorphic::permute(sys);
            let (base, permuted) = if hw {
                (forces(&mut grape6(), sys, t0), forces(&mut grape6(), &psys, t0))
            } else {
                (
                    forces(&mut DirectEngine::new(), sys, t0),
                    forces(&mut DirectEngine::new(), &psys, t0),
                )
            };
            // Map the permuted outputs back into original particle order.
            let mut mapped = vec![ForceResult::default(); base.len()];
            for (k, &old) in perm.iter().enumerate() {
                mapped[old] = permuted[k];
            }
            if hw {
                // Fixed-point accumulation is associative and commutative:
                // identical bits. Neighbour index legitimately changes under
                // renumbering; the distance bits must survive.
                cmp_bitwise(&mapped, &base, 1)
            } else {
                cmp_oracle(&mapped, &base, &Oracle::reorder(sys.len()).tolerances(sys, t0))
            }
        }
        "meta/rotation-direct" | "meta/rotation-grape6" => {
            let hw = check.ends_with("grape6");
            let rsys = metamorphic::rotate_z90(sys);
            let (base, rotated) = if hw {
                (forces(&mut grape6(), sys, t0), forces(&mut grape6(), &rsys, t0))
            } else {
                (
                    forces(&mut DirectEngine::new(), sys, t0),
                    forces(&mut DirectEngine::new(), &rsys, t0),
                )
            };
            // Quarter-turn equivariance is exact in both engine families:
            // compare rotate(F(x)) against F(rotate(x)) bit for bit — up to
            // the sign of exact zeros, which rot90's negation flips while
            // engine accumulators (seeded with +0.0) never produce −0.0.
            let unsign = |v: Vec3| Vec3::new(v.x + 0.0, v.y + 0.0, v.z + 0.0);
            let expect: Vec<ForceResult> = base
                .iter()
                .map(|r| ForceResult {
                    acc: unsign(metamorphic::rot90(r.acc)),
                    jerk: unsign(metamorphic::rot90(r.jerk)),
                    pot: r.pot,
                    nn: r.nn,
                })
                .collect();
            let rotated: Vec<ForceResult> = rotated
                .into_iter()
                .map(|r| ForceResult { acc: unsign(r.acc), jerk: unsign(r.jerk), ..r })
                .collect();
            cmp_bitwise(&rotated, &expect, 2)
        }
        "meta/translation-direct" | "meta/translation-grape6" => {
            let hw = check.ends_with("grape6");
            let d = Vec3::new(3.0, -1.5, 0.75);
            let tsys = metamorphic::translate(sys, d);
            let (base, shifted) = if hw {
                (forces(&mut grape6(), sys, t0), forces(&mut grape6(), &tsys, t0))
            } else {
                (
                    forces(&mut DirectEngine::new(), sys, t0),
                    forces(&mut DirectEngine::new(), &tsys, t0),
                )
            };
            // The shift re-rounds every coordinate (f64 and fixed point):
            // budget an extra ulp-of-largest-coordinate of position noise.
            let maxc = sys
                .pos
                .iter()
                .map(|p| p.x.abs().max(p.y.abs()).max(p.z.abs()))
                .fold(0.0f64, f64::max);
            let extra = 8.0 * 2.0f64.powi(-53) * (maxc + d.norm());
            let mut oracle = if hw { Oracle::hardware(24) } else { Oracle::reorder(sys.len()) };
            oracle.extra_dpos = extra;
            cmp_oracle(&shifted, &base, &oracle.tolerances(sys, t0))
        }
        "meta/mass-rescale-direct" => {
            // ×4 is exact in every f64 multiply and commutes with rounding:
            // the reference must scale bit for bit.
            let ssys = metamorphic::rescale_mass(sys, 4.0);
            let base = forces(&mut DirectEngine::new(), sys, t0);
            let scaled = forces(&mut DirectEngine::new(), &ssys, t0);
            let expect: Vec<ForceResult> = base
                .iter()
                .map(|r| ForceResult {
                    acc: r.acc * 4.0,
                    jerk: r.jerk * 4.0,
                    pot: r.pot * 4.0,
                    nn: r.nn,
                })
                .collect();
            cmp_bitwise(&scaled, &expect, 2)
        }
        "meta/mass-rescale-grape6" => {
            // The pipeline commutes with ×4 exactly, but the wide
            // accumulator quantizes on a fixed absolute grid: allow a few
            // quanta (at the ×4 scale) per accumulated partial.
            let ssys = metamorphic::rescale_mass(sys, 4.0);
            let base = forces(&mut grape6(), sys, t0);
            let scaled = forces(&mut grape6(), &ssys, t0);
            let n = sys.len() as f64;
            let tol = SAFETY * (n + 2.0) * 4.0 * accum_quantum() * 3.0f64.sqrt();
            for (i, (s, b)) in scaled.iter().zip(&base).enumerate() {
                let da = (s.acc - b.acc * 4.0).norm();
                let dj = (s.jerk - b.jerk * 4.0).norm();
                let dp = (s.pot - b.pot * 4.0).abs();
                if da > tol || dj > tol || dp > tol {
                    return Some(format!(
                        "particle {i}: ×4 rescale drifted beyond accumulator quanta \
                         (Δacc {da:e}, Δjerk {dj:e}, Δpot {dp:e}, allowed {tol:e})"
                    ));
                }
            }
            None
        }
        "meta/threads-direct" | "meta/threads-grape6" => {
            let hw = check.ends_with("grape6");
            let run = |threads: usize| {
                rayon::with_num_threads(threads, || {
                    if hw {
                        forces(&mut grape6(), sys, t0)
                    } else {
                        forces(&mut DirectEngine::new(), sys, t0)
                    }
                })
            };
            let reference = run(1);
            for threads in [2usize, 4] {
                if let Some(d) = cmp_bitwise(&run(threads), &reference, 2) {
                    return Some(format!("threads = {threads}: {d}"));
                }
            }
            None
        }
        "lanes/direct" | "lanes/grape6" => {
            // The lane-width axis: the scalar reference kernel, the 4-wide
            // and the 8-wide AoSoA tiles must produce identical bits on both
            // the large-block (whole system) and small-block (blocked-by-5,
            // including ragged remainders) paths.
            let hw = check.ends_with("grape6");
            let with = |lanes: LaneWidth| {
                if hw {
                    let mut full =
                        Grape6Engine::new(Grape6Config { lanes, ..Grape6Config::sc2002() });
                    let mut blocked =
                        Grape6Engine::new(Grape6Config { lanes, ..Grape6Config::sc2002() });
                    (forces(&mut full, sys, t0), forces_blocked(&mut blocked, sys, t0, 5))
                } else {
                    (
                        forces(&mut DirectEngine::with_lane_width(lanes), sys, t0),
                        forces_blocked(&mut DirectEngine::with_lane_width(lanes), sys, t0, 5),
                    )
                }
            };
            let (ref_full, ref_blocked) = with(LaneWidth::Scalar);
            for lanes in [LaneWidth::W4, LaneWidth::W8] {
                let (full, blocked) = with(lanes);
                if let Some(d) = cmp_bitwise(&full, &ref_full, 2) {
                    return Some(format!("lanes = {lanes}, full block: {d}"));
                }
                if let Some(d) = cmp_bitwise(&blocked, &ref_blocked, 2) {
                    return Some(format!("lanes = {lanes}, blocked(5): {d}"));
                }
            }
            None
        }
        "lanes/traj-direct" => {
            // Whole block-timestep integrations must stay bitwise locked
            // across lane widths, exactly like the thread-count axis.
            let scalar = run_trajectory(sc, DirectEngine::with_lane_width(LaneWidth::Scalar));
            for lanes in [LaneWidth::W4, LaneWidth::W8] {
                let got = run_trajectory(sc, DirectEngine::with_lane_width(lanes));
                if let Some(d) = cmp_system_bits(&got, &scalar) {
                    return Some(format!("lanes = {lanes}: {d}"));
                }
            }
            None
        }
        "traj/ft-vs-grape6" => {
            // Whole integrations: the DMR fault-tolerant wrapper on a
            // fault-free plan must deliver the plain engine's trajectory
            // bit for bit.
            let plain = run_trajectory(sc, grape6());
            let ft = run_trajectory(
                sc,
                FaultTolerantEngine::new(Grape6Config::sc2002(), &FaultPlan::empty()),
            );
            cmp_system_bits(&ft, &plain)
        }
        "traj/threads-grape6" => {
            let one = rayon::with_num_threads(1, || run_trajectory(sc, grape6()));
            let four = rayon::with_num_threads(4, || run_trajectory(sc, grape6()));
            cmp_system_bits(&four, &one)
        }
        "sched/tick-vs-heap" => {
            // Whole integrations: the tick-bucket scheduler must reproduce
            // the heap reference's (time, block) sequence exactly, and hence
            // the whole trajectory bit for bit — on both engine families.
            let heap_d = run_trajectory_sched(sc, DirectEngine::new(), SchedulerKind::Heap);
            let tick_d = run_trajectory_sched(sc, DirectEngine::new(), SchedulerKind::TickBucket);
            if let Some(d) = cmp_system_bits(&tick_d, &heap_d) {
                return Some(format!("direct: {d}"));
            }
            let heap_g = run_trajectory_sched(sc, grape6(), SchedulerKind::Heap);
            let tick_g = run_trajectory_sched(sc, grape6(), SchedulerKind::TickBucket);
            cmp_system_bits(&tick_g, &heap_g).map(|d| format!("grape6: {d}"))
        }
        "hybrid/theta0-bitwise-vs-direct" => {
            // The anchor: θ = 0 never accepts a cell and an infinite
            // neighbour radius keeps every body in the near field, so the
            // hybrid must reproduce the f64 direct reference bit for bit —
            // on both the large-block sweep and the chunked small-block
            // path (blocked by 5), which round differently from each other.
            let full_d = forces(&mut DirectEngine::new(), sys, t0);
            let full_h = forces(&mut HybridTreeEngine::direct_equivalent(), sys, t0);
            if let Some(d) = cmp_bitwise(&full_h, &full_d, 2) {
                return Some(format!("full block: {d}"));
            }
            let blocked_d = forces_blocked(&mut DirectEngine::new(), sys, t0, 5);
            let blocked_h = forces_blocked(&mut HybridTreeEngine::direct_equivalent(), sys, t0, 5);
            cmp_bitwise(&blocked_h, &blocked_d, 2).map(|d| format!("blocked(5): {d}"))
        }
        "hybrid/predicted-theta0-vs-direct" => {
            // Same anchor a couple of block steps in: particle times are
            // staggered, so the hybrid's internal j-prediction (which feeds
            // the tree build) is live and must match DirectEngine's.
            let (isys, t) = initialized_system(sc, 2);
            let ips = predicted_ips(&isys, t);
            let mut out_d = vec![ForceResult::default(); ips.len()];
            let mut out_h = vec![ForceResult::default(); ips.len()];
            let mut d = DirectEngine::new();
            d.load(&isys);
            d.compute(t, &ips, &mut out_d);
            let mut h = HybridTreeEngine::direct_equivalent();
            h.load(&isys);
            h.compute(t, &ips, &mut out_h);
            cmp_bitwise(&out_h, &out_d, 2)
        }
        "hybrid/theta-budget" => {
            // Opened-up walks must stay inside the derived multipole
            // acceptance-criterion budget at every production opening angle.
            let reference = forces(&mut DirectEngine::new(), sys, t0);
            let r_near = near_radius(sys);
            for theta in [0.3, 0.5, 0.75] {
                let got = forces(&mut HybridTreeEngine::new(theta, r_near), sys, t0);
                let tol = Oracle::tree(theta, sys.len()).tolerances(sys, t0);
                if let Some(d) = cmp_oracle(&got, &reference, &tol) {
                    return Some(format!("theta = {theta}: {d}"));
                }
            }
            None
        }
        "hybrid/counters-reproducible" => {
            // Near/far walk counters are exact integer work accounting:
            // re-runs and every thread count must agree exactly, and the
            // forces themselves stay bitwise locked.
            let r_near = near_radius(sys);
            let run = |threads: usize| {
                rayon::with_num_threads(threads, || {
                    let mut e = HybridTreeEngine::new(0.5, r_near);
                    let out = forces(&mut e, sys, t0);
                    (out, e.interaction_count(), e.tree_work().expect("hybrid reports tree work"))
                })
            };
            let (ref_out, ref_n, ref_w) = run(1);
            for threads in [1usize, 2, 4, 8] {
                let (out, n, w) = run(threads);
                if n != ref_n || w != ref_w {
                    return Some(format!(
                        "threads = {threads}: counters drifted \
                         ({ref_n} / {ref_w:?} vs {n} / {w:?})"
                    ));
                }
                if let Some(d) = cmp_bitwise(&out, &ref_out, 2) {
                    return Some(format!("threads = {threads}: {d}"));
                }
            }
            None
        }
        "broken/dropped-pair" => {
            // Dev-only: an intentionally broken kernel that drops the last
            // j-particle from every sum. The oracle must flag it.
            let reference = forces(&mut DirectEngine::new(), sys, t0);
            let broken = forces(&mut BrokenEngine::new(), sys, t0);
            cmp_oracle(&broken, &reference, &Oracle::reorder(sys.len()).tolerances(sys, t0))
        }
        other => panic!("unknown conformance check `{other}`"),
    }
}

/// Run every check in [`ALL_CHECKS`] on a scenario, collecting failures.
pub fn run_scenario(sc: &Scenario) -> Vec<CheckFailure> {
    ALL_CHECKS
        .iter()
        .filter_map(|&check| {
            run_check(sc, check).map(|detail| CheckFailure { check: check.to_string(), detail })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::generate;

    #[test]
    fn a_disk_scenario_passes_every_check() {
        let sc = generate(0); // DiskSlice
        let failures = run_scenario(&sc);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn a_tiny_scenario_passes_every_check() {
        let sc = generate(4); // TinyN
        let failures = run_scenario(&sc);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn the_broken_kernel_is_caught() {
        for seed in 0..6 {
            let sc = generate(seed);
            if sc.len() >= 2 {
                assert!(
                    run_check(&sc, "broken/dropped-pair").is_some(),
                    "seed {seed}: dropped-pair kernel escaped the oracle"
                );
            }
        }
    }
}
