//! `grape6-conformance` — seeded differential fuzzing of the force engines.
//!
//! ```text
//! grape6-conformance [--seeds N] [--start-seed K]
//!                    [--corpus DIR] [--failures DIR] [--broken-kernel]
//! ```
//!
//! Replays the checked-in corpus (if present), then runs `N` generated
//! scenarios starting at seed `K` through every differential, block-path,
//! metamorphic and trajectory check. The first failing check of a failing
//! scenario is greedily minimized and the repro JSON is written under the
//! failures directory for triage (CI uploads it as an artifact).
//!
//! Exit status: 0 all green, 1 conformance failure (repro written),
//! 2 usage error or `--broken-kernel` self-test failure.

#![forbid(unsafe_code)]

use grape6_conformance::corpus;
use grape6_conformance::runner::{run_check, run_scenario};
use grape6_conformance::scenario::generate;
use grape6_conformance::shrink::shrink;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seeds: u64,
    start_seed: u64,
    corpus: Option<PathBuf>,
    failures: PathBuf,
    broken_kernel: bool,
}

const USAGE: &str = "usage: grape6-conformance [--seeds N] [--start-seed K] \
                     [--corpus DIR] [--failures DIR] [--broken-kernel]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 16,
        start_seed: 0,
        corpus: default_corpus(),
        failures: PathBuf::from("conformance/failures"),
        broken_kernel: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?;
            }
            "--start-seed" => {
                args.start_seed =
                    value("--start-seed")?.parse().map_err(|e| format!("--start-seed: {e}"))?;
            }
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus")?)),
            "--failures" => args.failures = PathBuf::from(value("--failures")?),
            "--broken-kernel" => args.broken_kernel = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

/// The checked-in corpus, if the binary runs from the workspace root.
fn default_corpus() -> Option<PathBuf> {
    let p = PathBuf::from("conformance/corpus");
    p.is_dir().then_some(p)
}

/// Dev-only self-test: the harness must catch the intentionally broken
/// kernel and minimize the failure to a handful of particles.
fn broken_kernel_selftest(args: &Args) -> ExitCode {
    let check = "broken/dropped-pair";
    for seed in args.start_seed..args.start_seed + args.seeds {
        let sc = generate(seed);
        if sc.len() < 2 {
            continue; // one lone particle cannot expose a dropped pair
        }
        let Some(detail) = run_check(&sc, check) else {
            println!("FAIL  seed {seed}: broken kernel escaped the oracle on {}", sc.name);
            return ExitCode::from(2);
        };
        let min = shrink(&sc, check);
        println!(
            "caught  seed {seed}: {} ({} particles) minimized to {} particles",
            sc.name,
            sc.len(),
            min.len()
        );
        if min.len() > 8 {
            println!("FAIL  minimized repro still has {} particles (want ≤ 8)", min.len());
            return ExitCode::from(2);
        }
        match corpus::write_failure(&args.failures, &min, check, &detail) {
            Ok(path) => println!("        repro written to {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write repro: {e}");
                return ExitCode::from(2);
            }
        }
    }
    println!("broken-kernel self-test passed: every failure caught and minimized");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if args.broken_kernel {
        return broken_kernel_selftest(&args);
    }

    let mut failed = 0usize;
    let mut ran = 0usize;

    // Phase 1: replay the checked-in corpus of minimized repros.
    if let Some(dir) = &args.corpus {
        match corpus::replay_dir(dir) {
            Ok(failures) => {
                let n = failures.len();
                for (path, check, detail) in failures {
                    println!("FAIL  corpus {}: {check}: {detail}", path.display());
                }
                if n > 0 {
                    failed += n;
                } else {
                    println!("corpus {} replayed clean", dir.display());
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // Phase 2: fuzz generated scenarios.
    for seed in args.start_seed..args.start_seed + args.seeds {
        let sc = generate(seed);
        let failures = run_scenario(&sc);
        ran += 1;
        if failures.is_empty() {
            println!("ok    seed {seed:4}  {:28} n={:<4}", sc.name, sc.len());
            continue;
        }
        failed += 1;
        for f in &failures {
            println!("FAIL  seed {seed:4}  {}: {}: {}", sc.name, f.check, f.detail);
        }
        // Minimize the first failure and write the repro for triage.
        let first = &failures[0];
        let min = shrink(&sc, &first.check);
        let detail = run_check(&min, &first.check).unwrap_or_else(|| first.detail.clone());
        match corpus::write_failure(&args.failures, &min, &first.check, &detail) {
            Ok(path) => println!(
                "      minimized to {} particles; repro written to {}",
                min.len(),
                path.display()
            ),
            Err(e) => eprintln!("error: cannot write repro: {e}"),
        }
    }

    println!(
        "{ran} scenarios, {failed} failing ({} checks each)",
        grape6_conformance::ALL_CHECKS.len()
    );
    if failed > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
