//! Reading and writing scenario JSON: the minimized-repro corpus.
//!
//! Minimized failing scenarios are written as pretty JSON. Repros of *fixed*
//! bugs get checked in under `conformance/corpus/` at the workspace root and
//! replayed by the tier-1 test suite (`tests/conformance_corpus.rs`);
//! fresh failures land in a scratch directory for triage (CI uploads them
//! as artifacts). The scenario JSON round-trips f64 values exactly, so a
//! replay sees the same bits the fuzzer saw.

use crate::runner::run_scenario;
use crate::scenario::Scenario;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Serialize a scenario to pretty JSON.
pub fn to_json(sc: &Scenario) -> String {
    serde_json::to_string_pretty(sc).expect("scenario serialization cannot fail")
}

/// Parse a scenario from JSON.
pub fn from_json(s: &str) -> Result<Scenario, String> {
    serde_json::from_str(s).map_err(|e| format!("bad scenario JSON: {e}"))
}

/// Load every `*.json` scenario in a directory, sorted by file name so the
/// replay order is stable.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Scenario)>, String> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let sc = from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, sc));
    }
    Ok(out)
}

/// Write a (minimized) failing scenario plus the check it fails to `dir`,
/// returning the path. The failing check and detail ride along in the file
/// as a leading comment-free JSON sibling (`meta` object) so triage does
/// not need to re-run the fuzzer.
pub fn write_failure(dir: &Path, sc: &Scenario, check: &str, detail: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let slug: String =
        check.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect();
    let path = dir.join(format!("{}-{slug}.json", sc.name));
    let mut json = to_json(sc);
    // Attach the failure report as extra top-level fields; the scenario
    // deserializer ignores unknown keys, so the file replays as-is.
    let tail = format!(
        ",\n  \"failed_check\": {},\n  \"failure_detail\": {}\n}}",
        serde_json::to_string(check).expect("string serialization cannot fail"),
        serde_json::to_string(detail).expect("string serialization cannot fail"),
    );
    match json.rfind('}') {
        Some(pos) => json.replace_range(pos.., &tail),
        None => unreachable!("serialized scenario is a JSON object"),
    }
    fs::write(&path, &json)?;
    Ok(path)
}

/// Replay every scenario in a corpus directory through the full check list.
/// Returns the failures as `(file, check, detail)` triples.
pub fn replay_dir(dir: &Path) -> Result<Vec<(PathBuf, String, String)>, String> {
    let mut failures = Vec::new();
    for (path, sc) in load_dir(dir)? {
        for failure in run_scenario(&sc) {
            failures.push((path.clone(), failure.check, failure.detail));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::generate;

    #[test]
    fn json_survives_a_failure_annotation() {
        let sc = generate(4);
        let dir = std::env::temp_dir().join(format!("g6-conf-corpus-{}", std::process::id()));
        let path = write_failure(&dir, &sc, "diff/grape6-vs-direct", "particle 0: boom")
            .expect("write failure file");
        let text = fs::read_to_string(&path).unwrap();
        let back = from_json(&text).expect("annotated repro still parses as a scenario");
        assert_eq!(back.len(), sc.len());
        assert!(text.contains("failed_check"));
        fs::remove_dir_all(&dir).ok();
    }
}
