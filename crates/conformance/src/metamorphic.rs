//! Metamorphic transformations of a particle system and the bitwise
//! equivariance arguments behind them.
//!
//! Each transform comes with a precise claim about what an engine must
//! produce on the transformed system:
//!
//! * [`permute`] — gravity does not care about storage order. The GRAPE
//!   engines promise **bitwise** invariance (the wide fixed-point
//!   accumulator is exactly associative *and* commutative); the f64
//!   reference only reorders its summation, so it gets the reorder
//!   tolerance.
//! * [`rotate_z90`] — the quarter-turn (x,y,z) → (−y,x,z) permutes and
//!   negates coordinates. IEEE negation is exact, `x·x + y·y + z·z` is
//!   invariant under commuting the first two addends, and every rounding in
//!   both engines (round-to-nearest-even, fixed-point encode) is symmetric
//!   in sign — so this rotation is **bitwise** for *both* engine families.
//! * [`translate`] — shifts re-round positions (f64 and fixed-point), so
//!   translation invariance holds to the oracle tolerance only.
//! * [`rescale_mass`] — scaling all masses by a power of two is exact in
//!   every float multiply, so the f64 reference is **bitwise** equivariant;
//!   the hardware accumulator quantizes on a fixed absolute grid, which
//!   leaves a few quanta per pair.

use grape6_core::particle::ParticleSystem;
use grape6_core::vec3::Vec3;

/// Reverse the particle order. Returns the permuted system and `perm` with
/// `perm[new_index] = old_index`.
pub fn permute(sys: &ParticleSystem) -> (ParticleSystem, Vec<usize>) {
    let n = sys.len();
    let perm: Vec<usize> = (0..n).rev().collect();
    let mut out = ParticleSystem::new(sys.softening, sys.central_mass);
    out.t = sys.t;
    for &old in &perm {
        let k = out.push(sys.pos[old], sys.vel[old], sys.mass[old]);
        out.acc[k] = sys.acc[old];
        out.jerk[k] = sys.jerk[old];
        out.time[k] = sys.time[old];
        out.dt[k] = sys.dt[old];
        out.id[k] = sys.id[old];
    }
    (out, perm)
}

/// Rotate a vector a quarter turn about z: (x,y,z) → (−y,x,z).
pub fn rot90(v: Vec3) -> Vec3 {
    Vec3::new(-v.y, v.x, v.z)
}

/// Rotate the whole system (positions, velocities, accelerations, jerks)
/// a quarter turn about z.
pub fn rotate_z90(sys: &ParticleSystem) -> ParticleSystem {
    let mut out = sys.clone();
    for i in 0..sys.len() {
        out.pos[i] = rot90(sys.pos[i]);
        out.vel[i] = rot90(sys.vel[i]);
        out.acc[i] = rot90(sys.acc[i]);
        out.jerk[i] = rot90(sys.jerk[i]);
    }
    out
}

/// Shift every position by `d`.
pub fn translate(sys: &ParticleSystem, d: Vec3) -> ParticleSystem {
    let mut out = sys.clone();
    for i in 0..sys.len() {
        out.pos[i] = sys.pos[i] + d;
    }
    out
}

/// Scale every particle mass (use a power of two for the bitwise claim).
/// Accelerations and jerks already stored in the system scale with it, so
/// predictor inputs stay consistent.
pub fn rescale_mass(sys: &ParticleSystem, factor: f64) -> ParticleSystem {
    let mut out = sys.clone();
    for i in 0..sys.len() {
        out.mass[i] = sys.mass[i] * factor;
        out.acc[i] = sys.acc[i] * factor;
        out.jerk[i] = sys.jerk[i] * factor;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParticleSystem {
        let mut sys = ParticleSystem::new(0.008, 1.0);
        sys.push(Vec3::new(1.0, 2.0, 3.0), Vec3::new(0.1, -0.2, 0.3), 1e-6);
        sys.push(Vec3::new(-4.0, 5.0, -6.0), Vec3::new(0.0, 0.0, 0.1), 2e-6);
        sys.push(Vec3::new(7.0, -8.0, 9.0), Vec3::new(-0.3, 0.1, 0.0), 3e-6);
        sys
    }

    #[test]
    fn permute_is_an_involution_on_state() {
        let sys = sample();
        let (p, perm) = permute(&sys);
        let (pp, _) = permute(&p);
        for (i, &src) in perm.iter().enumerate() {
            assert_eq!(pp.pos[i], sys.pos[i]);
            assert_eq!(p.pos[i], sys.pos[src]);
            assert_eq!(p.mass[i], sys.mass[src]);
        }
    }

    #[test]
    fn rot90_preserves_norm_bitwise() {
        for v in [Vec3::new(0.1, -2.5, 3.25), Vec3::new(-1e-9, 7.0, 0.0)] {
            // x·x + y·y is commutative in IEEE, so norm² bits survive.
            assert_eq!(rot90(v).norm2().to_bits(), v.norm2().to_bits());
        }
    }

    #[test]
    fn rescale_by_power_of_two_is_exact() {
        let sys = sample();
        let scaled = rescale_mass(&sys, 4.0);
        for i in 0..sys.len() {
            assert_eq!(scaled.mass[i], 4.0 * sys.mass[i]);
            assert_eq!(scaled.mass[i] / 4.0, sys.mass[i]);
        }
    }
}
