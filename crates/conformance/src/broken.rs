//! An intentionally broken force kernel, used (behind the CLI's dev-only
//! `--broken-kernel` flag and in tests) to prove the harness *catches* and
//! *minimizes* real bugs rather than merely passing on correct code.
//!
//! The bug is a classic off-by-one: the j-loop runs to `n − 1`, silently
//! dropping the last j-particle from every sum. On any system with two or
//! more particles this loses an entire pair force, which overshoots the
//! oracle budget by many orders of magnitude — and the shrinker reduces any
//! failing scenario to the minimal two-particle repro.

use grape6_core::engine::ForceEngine;
use grape6_core::force::pair_force_jerk;
use grape6_core::particle::{ForceResult, IParticle, Neighbor, ParticleSystem};
use grape6_core::vec3::Vec3;

/// A direct-summation engine whose j-loop drops the last particle.
#[derive(Debug, Default)]
pub struct BrokenEngine {
    jpos: Vec<Vec3>,
    jvel: Vec<Vec3>,
    jacc: Vec<Vec3>,
    jjerk: Vec<Vec3>,
    jtime: Vec<f64>,
    jmass: Vec<f64>,
    eps2: f64,
    interactions: u64,
}

impl BrokenEngine {
    /// Create an empty broken engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ForceEngine for BrokenEngine {
    fn load(&mut self, sys: &ParticleSystem) {
        self.jpos = sys.pos.clone();
        self.jvel = sys.vel.clone();
        self.jacc = sys.acc.clone();
        self.jjerk = sys.jerk.clone();
        self.jtime = sys.time.clone();
        self.jmass = sys.mass.clone();
        self.eps2 = sys.softening * sys.softening;
    }

    fn update_j(&mut self, sys: &ParticleSystem, indices: &[usize]) {
        for &j in indices {
            self.jpos[j] = sys.pos[j];
            self.jvel[j] = sys.vel[j];
            self.jacc[j] = sys.acc[j];
            self.jjerk[j] = sys.jerk[j];
            self.jtime[j] = sys.time[j];
            self.jmass[j] = sys.mass[j];
        }
    }

    fn compute(&mut self, t: f64, ips: &[IParticle], out: &mut [ForceResult]) {
        // BUG (intentional): `..n - 1` drops the last j-particle.
        let n = self.jpos.len();
        let upper = n.saturating_sub(1);
        for (ip, res) in ips.iter().zip(out.iter_mut()) {
            let mut r = ForceResult::default();
            for j in 0..upper {
                if j == ip.index {
                    continue;
                }
                let dt = t - self.jtime[j];
                let pos = self.jpos[j]
                    + self.jvel[j] * dt
                    + self.jacc[j] * (dt * dt / 2.0)
                    + self.jjerk[j] * (dt * dt * dt / 6.0);
                let vel = self.jvel[j] + self.jacc[j] * dt + self.jjerk[j] * (dt * dt / 2.0);
                let dx = pos - ip.pos;
                let dv = vel - ip.vel;
                let (acc, jerk, pot) = pair_force_jerk(dx, dv, self.jmass[j], self.eps2);
                r.acc += acc;
                r.jerk += jerk;
                r.pot += pot;
                let r2 = dx.norm2();
                if r.nn.is_none_or(|nn| r2 < nn.r2) {
                    r.nn = Some(Neighbor { index: j, r2 });
                }
                self.interactions += 1;
            }
            *res = r;
        }
    }

    fn interaction_count(&self) -> u64 {
        self.interactions
    }

    fn reset_counters(&mut self) {
        self.interactions = 0;
    }

    fn name(&self) -> &'static str {
        "broken-dropped-pair"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_the_last_particle() {
        let mut sys = ParticleSystem::new(0.008, 0.0);
        sys.push(Vec3::new(10.0, 0.0, 0.0), Vec3::zero(), 1e-6);
        sys.push(Vec3::new(-10.0, 0.0, 0.0), Vec3::zero(), 1e-6);
        let mut engine = BrokenEngine::new();
        engine.load(&sys);
        let ips = vec![IParticle { index: 0, pos: sys.pos[0], vel: sys.vel[0] }];
        let mut out = vec![ForceResult::default()];
        engine.compute(0.0, &ips, &mut out);
        // Particle 0's only partner is the last j-particle — which the bug
        // drops, so the force comes back exactly zero.
        assert_eq!(out[0].acc.norm(), 0.0);
        assert_eq!(out[0].pot, 0.0);
    }
}
