//! Property-based tests on the simulation-layer invariants.

use grape6_core::observer::StepObserver;
use grape6_core::particle::{Neighbor, ParticleSystem};
use grape6_core::vec3::Vec3;
use grape6_hw::{HardwareClock, StepBreakdown};
use grape6_sim::accretion::{try_merge, AccretionLog, RadiusModel};
use grape6_sim::{BlockSizeHistogram, Telemetry, TimestepHistogram};
use proptest::prelude::*;

fn two_body_system(x1: Vec3, v1: Vec3, m1: f64, x2: Vec3, v2: Vec3, m2: f64) -> ParticleSystem {
    let mut sys = ParticleSystem::new(0.001, 1.0);
    sys.push(x1, v1, m1);
    sys.push(x2, v2, m2);
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merging_conserves_mass_and_momentum(
        x in 10.0..40.0f64,
        dy in -1e-4..1e-4f64,
        v1 in -0.3..0.3f64,
        v2 in -0.3..0.3f64,
        m1 in 1e-10..1e-6f64,
        m2 in 1e-10..1e-6f64,
    ) {
        let mut sys = two_body_system(
            Vec3::new(x, 0.0, 0.0),
            Vec3::new(0.0, v1, 0.0),
            m1,
            Vec3::new(x, dy, 1e-5),
            Vec3::new(0.0, v2, 0.0),
            m2,
        );
        let p0 = sys.pos[0] * m1 + sys.pos[1] * m2;
        let mv0 = sys.vel[0] * m1 + sys.vel[1] * m2;
        let model = RadiusModel::icy_inflated(1e4);
        let mut log = AccretionLog::default();
        let nn = Neighbor { index: 1, r2: sys.pos[0].distance2(sys.pos[1]) };
        if let Some(ev) = try_merge(&mut sys, 0, nn, &model, &mut log) {
            let s = ev.survivor;
            prop_assert!((sys.mass[s] - (m1 + m2)).abs() <= 1e-15 * (m1 + m2));
            prop_assert!((sys.pos[s] * sys.mass[s] - p0).norm() <= 1e-12 * p0.norm().max(1e-300));
            prop_assert!((sys.vel[s] * sys.mass[s] - mv0).norm() <= 1e-12 * mv0.norm().max(1e-300));
            prop_assert_eq!(sys.mass[ev.absorbed], 0.0);
        }
    }

    #[test]
    fn merge_never_fires_beyond_collision_distance(
        sep_factor in 1.01..100.0f64,
        m1 in 1e-10..1e-6f64,
        m2 in 1e-10..1e-6f64,
        inflation in 1.0..100.0f64,
    ) {
        let model = RadiusModel::icy_inflated(inflation);
        let d_coll = model.collision_distance(m1, m2);
        let sep = d_coll * sep_factor;
        let mut sys = two_body_system(
            Vec3::new(20.0, 0.0, 0.0),
            Vec3::zero(),
            m1,
            Vec3::new(20.0 + sep, 0.0, 0.0),
            Vec3::zero(),
            m2,
        );
        let mut log = AccretionLog::default();
        let nn = Neighbor { index: 1, r2: sep * sep };
        prop_assert!(try_merge(&mut sys, 0, nn, &model, &mut log).is_none());
    }

    #[test]
    fn collision_distance_is_symmetric_and_monotone(
        m1 in 1e-12..1e-5f64,
        m2 in 1e-12..1e-5f64,
        f in 1.0..1000.0f64,
    ) {
        let model = RadiusModel::icy_inflated(f);
        prop_assert_eq!(model.collision_distance(m1, m2), model.collision_distance(m2, m1));
        prop_assert!(model.collision_distance(m1 * 8.0, m2) > model.collision_distance(m1, m2));
        prop_assert!((model.radius(8.0 * m1) / model.radius(m1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn block_histogram_mean_is_exact(ns in prop::collection::vec(1usize..10_000, 1..100)) {
        let mut h = BlockSizeHistogram::new();
        for &n in &ns {
            h.record(n);
        }
        let expect = ns.iter().sum::<usize>() as f64 / ns.len() as f64;
        prop_assert!((h.mean() - expect).abs() < 1e-9);
        prop_assert_eq!(h.blocks, ns.len() as u64);
    }

    #[test]
    fn timestep_histogram_total_counts_positive_steps(
        rungs in prop::collection::vec(-30i32..3, 1..64),
    ) {
        let mut sys = ParticleSystem::new(0.0, 0.0);
        for &r in &rungs {
            let i = sys.push(Vec3::zero(), Vec3::zero(), 1.0);
            sys.dt[i] = 2.0f64.powi(r);
        }
        let h = TimestepHistogram::from_system(&sys);
        prop_assert_eq!(h.total(), rungs.len());
        let span = (rungs.iter().max().unwrap() - rungs.iter().min().unwrap()) as f64;
        prop_assert!((h.dynamic_range().log2() - span).abs() < 1e-9);
    }

    #[test]
    fn timestep_histogram_rungs_sorted_with_exact_counts(
        rungs in prop::collection::vec(-30i32..3, 1..64),
    ) {
        let mut sys = ParticleSystem::new(0.0, 0.0);
        for &r in &rungs {
            let i = sys.push(Vec3::zero(), Vec3::zero(), 1.0);
            sys.dt[i] = 2.0f64.powi(r);
        }
        let h = TimestepHistogram::from_system(&sys);
        // Rungs strictly ascending: the histogram is a sorted map.
        for w in h.rungs.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "rungs out of order: {:?}", h.rungs);
        }
        // Per-rung counts sum to the particle count...
        let count_sum: usize = h.rungs.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(count_sum, rungs.len());
        // ...and each rung's count matches a direct tally of the input.
        for &(r, c) in &h.rungs {
            let expect = rungs.iter().filter(|&&x| x == r).count();
            prop_assert_eq!(c, expect, "rung {} count", r);
        }
        // dynamic_range == 2^(hi - lo) exactly (powers of two are exact in f64).
        let hi = h.rungs.last().unwrap().0;
        let lo = h.rungs.first().unwrap().0;
        prop_assert_eq!(h.dynamic_range(), 2.0f64.powi(hi - lo));
    }

    #[test]
    fn hardware_clock_accumulation_is_order_independent(
        costs in prop::collection::vec((0.0..1e-2f64, 0.0..1e-3f64, 0.0..1e-3f64), 1..32),
        by in 0usize..32,
    ) {
        let steps: Vec<StepBreakdown> = costs
            .iter()
            .map(|&(pipeline, host, send_i)| StepBreakdown {
                pipeline,
                host,
                send_i,
                ..Default::default()
            })
            .collect();
        let mut forward = HardwareClock::new();
        for s in &steps {
            forward.charge(s);
        }
        // Charge the same steps rotated by an arbitrary offset.
        let k = by % steps.len();
        let mut rotated = HardwareClock::new();
        for s in steps[k..].iter().chain(steps[..k].iter()) {
            rotated.charge(s);
        }
        // Step counts are exact; accumulated seconds agree to f64 roundoff
        // (addition is not associative, so demand 1e-12 relative, not bits).
        prop_assert_eq!(forward.steps, rotated.steps);
        let scale = forward.seconds().abs().max(1e-300);
        prop_assert!((forward.seconds() - rotated.seconds()).abs() / scale < 1e-12);
    }

    #[test]
    fn telemetry_counter_accumulation_is_order_independent(
        events in prop::collection::vec((1usize..1000, 0u64..1_000_000, 0u64..100_000), 1..32),
        by in 0usize..32,
    ) {
        let feed = |tele: &mut Telemetry, evs: &[(usize, u64, u64)]| {
            for &(n_active, interactions, bytes) in evs {
                tele.block_step(n_active, interactions);
                tele.wire_transfer(bytes);
            }
        };
        let mut forward = Telemetry::new();
        feed(&mut forward, &events);
        let k = by % events.len();
        let mut rot: Vec<(usize, u64, u64)> = events[k..].to_vec();
        rot.extend_from_slice(&events[..k]);
        let mut rotated = Telemetry::new();
        feed(&mut rotated, &rot);
        // Integer counters must agree bit-for-bit in any order.
        prop_assert_eq!(forward.block_steps(), rotated.block_steps());
        prop_assert_eq!(forward.particle_steps(), rotated.particle_steps());
        prop_assert_eq!(forward.interactions(), rotated.interactions());
        prop_assert_eq!(forward.wire_bytes(), rotated.wire_bytes());
        // And merging two halves reproduces the sequential feed exactly.
        let (a, b) = events.split_at(events.len() / 2);
        let mut left = Telemetry::new();
        feed(&mut left, a);
        let mut right = Telemetry::new();
        feed(&mut right, b);
        left.merge(&right);
        prop_assert_eq!(left.interactions(), forward.interactions());
        prop_assert_eq!(left.particle_steps(), forward.particle_steps());
        prop_assert_eq!(left.wire_bytes(), forward.wire_bytes());
    }
}
