//! # grape6-sim
//!
//! The top-level simulation driver: wires the planetesimal disk
//! (`grape6-disk`), the block-timestep Hermite integrator (`grape6-core`)
//! and a force engine (CPU reference, GRAPE-6 simulator from `grape6-hw`, or
//! the Barnes-Hut baseline) into runnable experiments, with diagnostics,
//! run statistics and snapshot I/O.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
pub mod accretion;
pub mod checkpoint;
pub mod encounters;
pub mod ensemble;
pub mod io;
pub mod simulation;
pub mod stats;
pub mod telemetry;

pub use accretion::{AccretionLog, MergerEvent, RadiusModel};
pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, load_checkpoint, run_to_with_checkpoints,
    save_checkpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use encounters::{Encounter, EncounterLog};
pub use ensemble::{run_ensemble, EnsembleMember};
pub use io::{
    load_auto, load_binary_snapshot, load_snapshot, save_auto, save_binary_snapshot,
    save_diagnostics_csv, save_snapshot, Snapshot,
};
pub use simulation::{DiagnosticRow, Simulation};
pub use stats::{BlockSizeHistogram, TimestepHistogram};
pub use telemetry::{PhaseCalls, PhaseSeconds, Telemetry, TelemetryReport};
