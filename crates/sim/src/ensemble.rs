//! Parallel ensembles over machine partitions.
//!
//! Paper §4.3: the network-board modes let the machine run "as single
//! entity, as two units, and as four separate units", and the 2-D host grid
//! can be divided "to any rectangular submatrix (down to single node) and
//! use each of them to run separate programs". The scientific use is
//! ensembles: independent realizations of the disk (different seeds) running
//! concurrently on the partitions.
//!
//! This module runs one worker thread per partition (crossbeam scoped
//! threads; results gathered under a parking_lot mutex) and pairs naturally
//! with [`grape6_hw::MachineGeometry::partition`] via the
//! `grape6-hw` crate.

use parking_lot::Mutex;

/// One member's result.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleMember<T> {
    /// The seed this member ran with.
    pub seed: u64,
    /// Whatever the runner returned.
    pub value: T,
}

/// Run `runner(seed)` for every seed, `parallelism` at a time, returning
/// results ordered by seed. `runner` typically builds a
/// [`crate::Simulation`] on a partitioned machine and returns its summary.
pub fn run_ensemble<T, F>(seeds: &[u64], parallelism: usize, runner: F) -> Vec<EnsembleMember<T>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(parallelism >= 1, "need at least one partition");
    let results: Mutex<Vec<EnsembleMember<T>>> = Mutex::new(Vec::with_capacity(seeds.len()));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..parallelism.min(seeds.len().max(1)) {
            scope.spawn(|_| loop {
                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if k >= seeds.len() {
                    break;
                }
                let seed = seeds[k];
                let value = runner(seed);
                results.lock().push(EnsembleMember { seed, value });
            });
        }
    })
    .expect("ensemble worker panicked");
    let mut out = results.into_inner();
    out.sort_by_key(|m| m.seed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use grape6_core::force::DirectEngine;
    use grape6_core::integrator::HermiteConfig;
    use grape6_disk::DiskBuilder;

    #[test]
    fn ensemble_covers_all_seeds_in_order() {
        let seeds: Vec<u64> = (0..17).collect();
        let out = run_ensemble(&seeds, 4, |s| s * s);
        assert_eq!(out.len(), 17);
        for (k, m) in out.iter().enumerate() {
            assert_eq!(m.seed, k as u64);
            assert_eq!(m.value, (k * k) as u64);
        }
    }

    #[test]
    fn ensemble_with_single_worker_matches_parallel() {
        let seeds = [3u64, 1, 4, 1, 5];
        let serial = run_ensemble(&seeds, 1, |s| s + 10);
        let parallel = run_ensemble(&seeds, 4, |s| s + 10);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn ensemble_of_simulations_is_deterministic_per_seed() {
        let seeds = [11u64, 22, 33, 44];
        let run = |seed: u64| {
            let sys = DiskBuilder::paper(48).with_seed(seed).build();
            let cfg = HermiteConfig { dt_max: 8.0, ..HermiteConfig::default() };
            let mut sim = Simulation::new(sys, cfg, DirectEngine::new());
            sim.run_to(1.0, 0.0);
            (sim.stats().block_steps, sim.sys.pos[0])
        };
        let a = run_ensemble(&seeds, 4, run);
        let b = run_ensemble(&seeds, 2, run);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.value.0, y.value.0);
            assert_eq!(x.value.1, y.value.1);
        }
        // Different seeds genuinely differ.
        assert_ne!(a[0].value.1, a[1].value.1);
    }

    #[test]
    fn empty_seed_list_is_fine() {
        let out = run_ensemble::<u64, _>(&[], 4, |s| s);
        assert!(out.is_empty());
    }
}
