//! Checkpoint/restart: serialize a running [`Simulation`] so a killed run
//! can resume **bit-identically** where it left off.
//!
//! ## Why bit-identical resume is even possible
//!
//! The integrator's event schedule is a pure function of the per-particle
//! `time[i] + dt[i]` the corrector left behind, so it is rebuilt exactly by
//! [`BlockHermite::resume_from`]. The GRAPE engines' j-memory is likewise a
//! pure function of the particle state (each j-entry is the fixed-point
//! encoding of the owning particle as of its last correction), so
//! `engine.load(&sys)` reproduces it bit-for-bit; only the engines' opaque
//! *counters* (interactions, wire bytes, modeled clock, fault statistics)
//! travel in the checkpoint, via [`ForceEngine::checkpoint_state`].
//!
//! ## The `G6CK` v2 container
//!
//! Little-endian throughout:
//!
//! | section | contents |
//! |---|---|
//! | header | magic `G6CK`, `u32` version |
//! | system header | `u64` particle count + 3×`f64` (`t`, softening, central mass) |
//! | system body | `u32`-length-prefixed chunks of whole particle records, `u32` 0 sentinel |
//! | integrator | 4×`f64` [`HermiteConfig`] + 3×`u64` [`RunStats`] |
//! | ledger | 2×`f64` (`e0`, `l0` reference invariants) |
//! | block histogram | `u32` bin count + bins + blocks + particle steps |
//! | telemetry | flag byte + `u32`-length-prefixed opaque state |
//! | engine | `u32`-length-prefixed name + `u32`-length-prefixed opaque state |
//!
//! Each body chunk holds [`CHECKPOINT_CHUNK_PARTICLES`] records (the last
//! chunk holds the remainder) in the `G6SN` per-particle layout
//! ([`crate::io::BINARY_PARTICLE_BYTES`] each). Chunking is what lets
//! [`save_checkpoint`] *stream* a paper-scale system to disk with O(chunk)
//! peak memory instead of materializing the ~250 MB body of a 1.8 M-particle
//! run in RAM first. The reader accepts any chunking whose lengths are whole
//! multiples of the record size.
//!
//! The **v1** container (which embedded a single `u64`-length-prefixed
//! `G6SN` snapshot as its system section) is still decoded; only the writer
//! moved to v2. `tests/checkpoint_golden.rs` pins both directions with
//! golden files.
//!
//! Diagnostics rows and the accretion/encounter logs are **not**
//! checkpointed: they are append-only observational byproducts that do not
//! feed back into the dynamics, so a resumed run continues producing correct
//! rows from the resume point onward.

use crate::io::BINARY_PARTICLE_BYTES;
use crate::simulation::Simulation;
use crate::stats::BlockSizeHistogram;
use crate::telemetry::Telemetry;
use grape6_core::energy::EnergyLedger;
use grape6_core::engine::ForceEngine;
use grape6_core::integrator::{BlockHermite, HermiteConfig, RunStats};
use grape6_core::observer::{HostPhase, StepObserver};
use grape6_core::particle::ParticleSystem;
use std::io::Write;
use std::path::Path;

/// Magic bytes of the checkpoint container.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"G6CK";
/// Version of the checkpoint container format.
pub const CHECKPOINT_VERSION: u32 = 2;
/// Particle records per streamed body chunk (~1.1 MB of payload): large
/// enough that chunk framing is noise, small enough that the writer's
/// resident buffer stays far below the body size at paper-scale N.
pub const CHECKPOINT_CHUNK_PARTICLES: usize = 8192;

fn bad(m: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, m.into())
}

/// Everything after the system body: integrator, ledger, histogram,
/// telemetry and engine sections. Identical in v1 and v2, and small — safe
/// to materialize even at paper-scale N.
fn encode_tail<E: ForceEngine>(sim: &Simulation<E>) -> Vec<u8> {
    use bytes::BufMut;
    let tel_state = sim.telemetry.as_ref().map(|t| t.checkpoint_state());
    let engine_state = sim.engine.checkpoint_state();
    let name = sim.engine.name().as_bytes();
    let mut buf: Vec<u8> = Vec::with_capacity(engine_state.len() + 256);
    let cfg = sim.integrator.config;
    buf.put_f64_le(cfg.eta);
    buf.put_f64_le(cfg.eta_start);
    buf.put_f64_le(cfg.dt_max);
    buf.put_f64_le(cfg.dt_min);
    let stats = sim.integrator.stats();
    buf.put_u64_le(stats.block_steps);
    buf.put_u64_le(stats.particle_steps);
    buf.put_u64_le(stats.interactions);
    buf.put_f64_le(sim.ledger.e0);
    buf.put_f64_le(sim.ledger.l0);
    buf.put_u32_le(sim.block_hist.bins.len() as u32);
    for &b in &sim.block_hist.bins {
        buf.put_u64_le(b);
    }
    buf.put_u64_le(sim.block_hist.blocks);
    buf.put_u64_le(sim.block_hist.particle_steps);
    match &tel_state {
        Some(state) => {
            buf.put_u8(1);
            buf.put_u32_le(state.len() as u32);
            buf.put_slice(state);
        }
        None => buf.put_u8(0),
    }
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name);
    buf.put_u32_le(engine_state.len() as u32);
    buf.put_slice(&engine_state);
    buf
}

/// Stream a running simulation into `w` as a `G6CK` v2 container.
///
/// The particle body goes out in [`CHECKPOINT_CHUNK_PARTICLES`]-record
/// chunks through one reused buffer, so peak encoder memory is O(chunk)
/// regardless of N — this is the path the paper-scale runs take (via
/// [`save_checkpoint`] / [`checkpoint_now`]).
///
/// The telemetry state captured here deliberately does **not** include the
/// cost of writing this checkpoint itself: checkpoint I/O is charged to the
/// run that pays it, so an interrupted-and-resumed run reports the same
/// counters as an uninterrupted one. (The open `Checkpoint` span under
/// which [`checkpoint_now`] calls this is not serialized.)
pub fn write_checkpoint<E: ForceEngine, W: Write>(
    sim: &Simulation<E>,
    w: &mut W,
) -> std::io::Result<()> {
    let sys = &sim.sys;
    w.write_all(CHECKPOINT_MAGIC)?;
    w.write_all(&CHECKPOINT_VERSION.to_le_bytes())?;
    w.write_all(&(sys.len() as u64).to_le_bytes())?;
    w.write_all(&sys.t.to_le_bytes())?;
    w.write_all(&sys.softening.to_le_bytes())?;
    w.write_all(&sys.central_mass.to_le_bytes())?;
    let mut chunk: Vec<u8> = Vec::new();
    let mut start = 0;
    while start < sys.len() {
        let end = (start + CHECKPOINT_CHUNK_PARTICLES).min(sys.len());
        chunk.clear();
        crate::io::encode_particle_range(sys, start..end, &mut chunk);
        w.write_all(&(chunk.len() as u32).to_le_bytes())?;
        w.write_all(&chunk)?;
        start = end;
    }
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&encode_tail(sim))
}

/// Encode a running simulation into an in-memory `G6CK` v2 container.
///
/// Convenience wrapper over [`write_checkpoint`] for tests and small runs;
/// paper-scale runs should stream with [`save_checkpoint`] instead.
pub fn encode_checkpoint<E: ForceEngine>(sim: &Simulation<E>) -> bytes::Bytes {
    let mut buf: Vec<u8> =
        Vec::with_capacity(64 + sim.sys.len() * BINARY_PARTICLE_BYTES + sim.sys.len() / 16);
    write_checkpoint(sim, &mut buf).expect("in-memory checkpoint write cannot fail");
    bytes::Bytes::from(buf)
}

/// Rebuild a simulation from checkpoint bytes, continuing bit-identically.
///
/// `engine` must be a freshly configured engine of the *same kind* (same
/// [`ForceEngine::name`]) and configuration as the one that wrote the
/// checkpoint; the name is verified, the configuration cannot be and is the
/// caller's responsibility. The engine is reloaded from the particle
/// snapshot and its counters restored from the opaque state section.
pub fn decode_checkpoint<E: ForceEngine>(
    data: bytes::Bytes,
    mut engine: E,
) -> std::io::Result<Simulation<E>> {
    use bytes::Buf;
    let mut buf = data;
    if buf.len() < 16 {
        return Err(bad("truncated checkpoint header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != CHECKPOINT_MAGIC {
        return Err(bad("bad checkpoint magic"));
    }
    let version = buf.get_u32_le();
    let sys: ParticleSystem = match version {
        // v1 embedded a whole length-prefixed G6SN snapshot.
        1 => {
            let snap_len = buf.get_u64_le() as usize;
            if buf.len() < snap_len {
                return Err(bad("truncated system snapshot"));
            }
            let snap = buf.copy_to_bytes(snap_len);
            crate::io::decode_binary_snapshot(snap)?
        }
        2 => decode_chunked_system(&mut buf)?,
        v => return Err(bad(format!("unsupported checkpoint version {v}"))),
    };
    if buf.len() < 4 * 8 + 3 * 8 + 2 * 8 + 4 {
        return Err(bad("truncated integrator section"));
    }
    let config = HermiteConfig {
        eta: buf.get_f64_le(),
        eta_start: buf.get_f64_le(),
        dt_max: buf.get_f64_le(),
        dt_min: buf.get_f64_le(),
    };
    config.validate().map_err(bad)?;
    let stats = RunStats {
        block_steps: buf.get_u64_le(),
        particle_steps: buf.get_u64_le(),
        interactions: buf.get_u64_le(),
    };
    let ledger = EnergyLedger { e0: buf.get_f64_le(), l0: buf.get_f64_le() };
    let n_bins = buf.get_u32_le() as usize;
    if buf.len() < (n_bins + 2) * 8 + 1 {
        return Err(bad("truncated block histogram"));
    }
    let mut block_hist = BlockSizeHistogram::new();
    block_hist.bins = (0..n_bins).map(|_| buf.get_u64_le()).collect();
    block_hist.blocks = buf.get_u64_le();
    block_hist.particle_steps = buf.get_u64_le();
    let telemetry = match buf.get_u8() {
        0 => None,
        1 => {
            if buf.len() < 4 {
                return Err(bad("truncated telemetry section"));
            }
            let len = buf.get_u32_le() as usize;
            if buf.len() < len {
                return Err(bad("truncated telemetry state"));
            }
            let state = buf.copy_to_bytes(len);
            Some(Telemetry::restore_checkpoint_state(&state).map_err(bad)?)
        }
        f => return Err(bad(format!("bad telemetry flag {f}"))),
    };
    if buf.len() < 4 {
        return Err(bad("truncated engine name"));
    }
    let name_len = buf.get_u32_le() as usize;
    if buf.len() < name_len {
        return Err(bad("truncated engine name"));
    }
    let name_bytes = buf.copy_to_bytes(name_len);
    let name = std::str::from_utf8(&name_bytes).map_err(|e| bad(e.to_string()))?;
    if name != engine.name() {
        return Err(bad(format!(
            "checkpoint was written by engine '{name}' but resume got '{}'",
            engine.name()
        )));
    }
    if buf.len() < 4 {
        return Err(bad("truncated engine state"));
    }
    let state_len = buf.get_u32_le() as usize;
    if buf.len() < state_len {
        return Err(bad("truncated engine state"));
    }
    let engine_state = buf.copy_to_bytes(state_len);
    if !buf.is_empty() {
        return Err(bad(format!("{} trailing bytes after engine state", buf.len())));
    }
    // Reload j-memory from the snapshot (bit-exact by construction), *then*
    // overwrite the counters `load` itself charged with the checkpointed
    // ones, so wire-byte accounting resumes where it stopped.
    engine.load(&sys);
    engine.restore_checkpoint_state(&engine_state).map_err(bad)?;
    let integrator = BlockHermite::resume_from(config, &sys, stats);
    Ok(Simulation {
        sys,
        integrator,
        engine,
        ledger,
        block_hist,
        diagnostics: Vec::new(),
        radius_model: None,
        accretion_log: Default::default(),
        encounter_log: None,
        telemetry,
    })
}

/// Decode the v2 system section: header fields, then length-prefixed chunks
/// of whole particle records up to the `u32` 0 sentinel.
fn decode_chunked_system(buf: &mut bytes::Bytes) -> std::io::Result<ParticleSystem> {
    use bytes::Buf;
    if buf.len() < 8 + 3 * 8 {
        return Err(bad("truncated system header"));
    }
    let n = buf.get_u64_le() as usize;
    let t = buf.get_f64_le();
    let softening = buf.get_f64_le();
    let central_mass = buf.get_f64_le();
    let mut sys = ParticleSystem::new(softening, central_mass);
    sys.t = t;
    loop {
        if buf.len() < 4 {
            return Err(bad("truncated body chunk length"));
        }
        let len = buf.get_u32_le() as usize;
        if len == 0 {
            break;
        }
        if !len.is_multiple_of(BINARY_PARTICLE_BYTES) {
            return Err(bad(format!(
                "body chunk length {len} is not a whole number of particle records"
            )));
        }
        if buf.len() < len {
            return Err(bad("truncated body chunk"));
        }
        for _ in 0..len / BINARY_PARTICLE_BYTES {
            crate::io::decode_particle_record(buf, &mut sys);
        }
        if sys.len() > n {
            return Err(bad(format!("body chunks carry more particles than the declared {n}")));
        }
    }
    if sys.len() != n {
        return Err(bad(format!("body chunks carry {} of the declared {n} particles", sys.len())));
    }
    Ok(sys)
}

/// Write a checkpoint of `sim` to `path` (atomically: temp file + rename, so
/// a crash mid-write never clobbers the previous good checkpoint), streaming
/// the particle body in [`CHECKPOINT_CHUNK_PARTICLES`]-record chunks through
/// a buffered writer — the container is never materialized in memory.
pub fn save_checkpoint<E: ForceEngine>(path: &Path, sim: &Simulation<E>) -> std::io::Result<()> {
    let tmp = path.with_extension("ckpt.tmp");
    let f = std::fs::File::create(&tmp)?;
    let mut w = std::io::BufWriter::new(f);
    write_checkpoint(sim, &mut w)?;
    w.flush()?;
    drop(w);
    std::fs::rename(&tmp, path)
}

/// Read a checkpoint from `path` and resume it onto `engine`.
pub fn load_checkpoint<E: ForceEngine>(path: &Path, engine: E) -> std::io::Result<Simulation<E>> {
    let data = std::fs::read(path)?;
    decode_checkpoint(bytes::Bytes::from(data), engine)
}

/// Like [`Simulation::run_to`], but writes a checkpoint to `path` every
/// `every_blocks` block steps (and once more on completion). Checkpoint
/// encode+write time is recorded under the `checkpoint` telemetry phase when
/// telemetry is enabled — but the state *inside* each checkpoint excludes
/// that cost (see [`encode_checkpoint`]).
pub fn run_to_with_checkpoints<E: ForceEngine>(
    sim: &mut Simulation<E>,
    t_end: f64,
    diag_interval: f64,
    every_blocks: u64,
    path: &Path,
) -> std::io::Result<RunStats> {
    let start = sim.stats();
    let every = every_blocks.max(1);
    let mut next_diag = if diag_interval > 0.0 { sim.sys.t + diag_interval } else { f64::INFINITY };
    let mut since_ckpt = 0u64;
    while sim.integrator.next_time().is_some_and(|t| t <= t_end) {
        sim.step();
        if sim.sys.t >= next_diag {
            sim.record_diagnostics();
            next_diag += diag_interval;
        }
        since_ckpt += 1;
        if since_ckpt >= every {
            since_ckpt = 0;
            checkpoint_now(sim, path)?;
        }
    }
    checkpoint_now(sim, path)?;
    let s = sim.stats();
    Ok(RunStats {
        block_steps: s.block_steps - start.block_steps,
        particle_steps: s.particle_steps - start.particle_steps,
        interactions: s.interactions - start.interactions,
    })
}

/// Write one checkpoint immediately, timed under the `checkpoint` phase.
///
/// The whole encode+write streams inside the open `Checkpoint` span. That is
/// still invisible to the checkpointed telemetry state: open spans are not
/// serialized (see [`Telemetry::checkpoint_state`]), so the resumed run
/// starts with zero checkpoint cost, exactly as if the writer had paid for
/// the I/O out of band.
pub fn checkpoint_now<E: ForceEngine>(sim: &mut Simulation<E>, path: &Path) -> std::io::Result<()> {
    if let Some(t) = &mut sim.telemetry {
        t.phase_begin(HostPhase::Checkpoint);
    }
    let res = save_checkpoint(path, sim);
    if let Some(t) = &mut sim.telemetry {
        t.phase_end(HostPhase::Checkpoint);
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::force::DirectEngine;
    use grape6_core::integrator::HermiteConfig;
    use grape6_core::observer::HostPhase;
    use grape6_disk::DiskBuilder;

    fn cfg() -> HermiteConfig {
        HermiteConfig { dt_max: 2.0f64.powi(-2), ..HermiteConfig::default() }
    }

    fn fresh(n: usize, seed: u64) -> Simulation<DirectEngine> {
        Simulation::new(DiskBuilder::paper(n).with_seed(seed).build(), cfg(), DirectEngine::new())
    }

    fn assert_bitwise_equal(a: &ParticleSystem, b: &ParticleSystem) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.t.to_bits(), b.t.to_bits());
        for i in 0..a.len() {
            assert_eq!(a.pos[i], b.pos[i], "pos[{i}]");
            assert_eq!(a.vel[i], b.vel[i], "vel[{i}]");
            assert_eq!(a.acc[i], b.acc[i], "acc[{i}]");
            assert_eq!(a.jerk[i], b.jerk[i], "jerk[{i}]");
            assert_eq!(a.time[i].to_bits(), b.time[i].to_bits(), "time[{i}]");
            assert_eq!(a.dt[i].to_bits(), b.dt[i].to_bits(), "dt[{i}]");
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_to_uninterrupted_run() {
        let mut reference = fresh(48, 11);
        reference.run_to(2.0, 0.0);

        let mut interrupted = fresh(48, 11);
        interrupted.run_to(1.0, 0.0);
        let ckpt = encode_checkpoint(&interrupted);
        drop(interrupted); // the "kill"

        let mut resumed = decode_checkpoint(ckpt, DirectEngine::new()).unwrap();
        resumed.run_to(2.0, 0.0);

        assert_bitwise_equal(&reference.sys, &resumed.sys);
        assert_eq!(reference.stats(), resumed.stats());
        assert_eq!(reference.engine.interaction_count(), resumed.engine.interaction_count());
        assert_eq!(reference.block_hist, resumed.block_hist);
        assert_eq!(reference.ledger.e0.to_bits(), resumed.ledger.e0.to_bits());
    }

    #[test]
    fn checkpoint_file_roundtrip_with_telemetry() {
        let dir = std::env::temp_dir().join("grape6_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.g6ck");
        let sys = DiskBuilder::paper(32).with_seed(3).build();
        let mut sim = Simulation::with_telemetry(sys, cfg(), DirectEngine::new());
        sim.run_to(0.5, 0.0);
        checkpoint_now(&mut sim, &path).unwrap();
        assert!(sim.telemetry.as_ref().unwrap().phase_calls(HostPhase::Checkpoint) >= 1);
        let resumed = load_checkpoint(&path, DirectEngine::new()).unwrap();
        assert_bitwise_equal(&sim.sys, &resumed.sys);
        let t0 = sim.telemetry.as_ref().unwrap();
        let t1 = resumed.telemetry.as_ref().unwrap();
        assert_eq!(t0.block_steps(), t1.block_steps());
        assert_eq!(t0.interactions(), t1.interactions());
        // The checkpoint span itself is charged to the writer, not the state.
        assert_eq!(t1.phase_calls(HostPhase::Checkpoint), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_with_checkpoints_leaves_a_resumable_file() {
        let dir = std::env::temp_dir().join("grape6_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("periodic.g6ck");
        let mut sim = fresh(32, 5);
        run_to_with_checkpoints(&mut sim, 1.0, 0.0, 4, &path).unwrap();
        let resumed = load_checkpoint(&path, DirectEngine::new()).unwrap();
        // Final checkpoint is written on completion, so it matches the end state.
        assert_bitwise_equal(&sim.sys, &resumed.sys);
        assert_eq!(sim.stats(), resumed.stats());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_name_mismatch_rejected() {
        let sim = fresh(16, 7);
        let ckpt = encode_checkpoint(&sim);
        // Tamper the stored engine name so it no longer matches.
        let mut raw = ckpt.to_vec();
        let pat = b"direct-cpu";
        let at = raw.windows(pat.len()).rposition(|w| w == pat).unwrap();
        raw[at..at + pat.len()].copy_from_slice(b"DIRECT-cpu");
        let err = match decode_checkpoint(bytes::Bytes::from(raw), DirectEngine::new()) {
            Err(e) => e,
            Ok(_) => panic!("tampered engine name accepted"),
        };
        assert!(err.to_string().contains("engine"), "{err}");
    }

    #[test]
    fn garbage_and_truncation_rejected() {
        assert!(decode_checkpoint(bytes::Bytes::from_static(b"nope"), DirectEngine::new()).is_err());
        let good = encode_checkpoint(&fresh(16, 7));
        for cut in [3, 15, good.len() / 2, good.len() - 1] {
            let mut raw = good.to_vec();
            raw.truncate(cut);
            assert!(
                decode_checkpoint(bytes::Bytes::from(raw), DirectEngine::new()).is_err(),
                "cut at {cut} should fail"
            );
        }
        let mut trailing = good.to_vec();
        trailing.push(0);
        assert!(decode_checkpoint(bytes::Bytes::from(trailing), DirectEngine::new()).is_err());
    }
}
