//! Run statistics: block-size and timestep histograms (experiment E4 — the
//! paper's §3 "six orders of magnitude" timescale-range claim and §4.2
//! block-size claim are checked against these).

use grape6_core::particle::ParticleSystem;
use serde::{Deserialize, Serialize};

/// Histogram over power-of-two timestep rungs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimestepHistogram {
    /// Map from log2(dt) to particle count, stored sparsely.
    pub rungs: Vec<(i32, usize)>,
}

impl TimestepHistogram {
    /// Bin the current per-particle steps of a system.
    pub fn from_system(sys: &ParticleSystem) -> Self {
        let mut map = std::collections::BTreeMap::new();
        for &dt in &sys.dt {
            if dt > 0.0 {
                let rung = dt.log2().round() as i32;
                *map.entry(rung).or_insert(0usize) += 1;
            }
        }
        Self { rungs: map.into_iter().collect() }
    }

    /// Number of occupied rungs.
    pub fn occupied_rungs(&self) -> usize {
        self.rungs.len()
    }

    /// Ratio between the largest and smallest occupied step (the dynamic
    /// range of timescales, §3).
    pub fn dynamic_range(&self) -> f64 {
        match (self.rungs.first(), self.rungs.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => 2.0f64.powi(hi - lo),
            _ => 1.0,
        }
    }

    /// Orders of magnitude spanned (log10 of the dynamic range).
    pub fn orders_of_magnitude(&self) -> f64 {
        self.dynamic_range().log10()
    }

    /// Total particles binned.
    pub fn total(&self) -> usize {
        self.rungs.iter().map(|&(_, c)| c).sum()
    }
}

/// Histogram of active-block sizes across a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockSizeHistogram {
    /// Counts per log2-size bin: bin k holds blocks with 2^k ≤ n < 2^(k+1).
    pub bins: Vec<u64>,
    /// Total blocks recorded.
    pub blocks: u64,
    /// Total particle-steps recorded.
    pub particle_steps: u64,
}

impl BlockSizeHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a block of `n` active particles.
    pub fn record(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let bin = (usize::BITS - 1 - n.leading_zeros()) as usize;
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
        self.blocks += 1;
        self.particle_steps += n as u64;
    }

    /// Mean block size.
    pub fn mean(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.particle_steps as f64 / self.blocks as f64
        }
    }

    /// Median block size (from the log2 bins; returns the bin's lower edge).
    pub fn median_bin_size(&self) -> usize {
        if self.blocks == 0 {
            return 0;
        }
        let mut seen = 0u64;
        for (k, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen * 2 >= self.blocks {
                return 1usize << k;
            }
        }
        1usize << (self.bins.len().max(1) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::vec3::Vec3;

    #[test]
    fn timestep_histogram_bins_by_rung() {
        let mut sys = ParticleSystem::new(0.0, 0.0);
        for _ in 0..3 {
            sys.push(Vec3::zero(), Vec3::zero(), 1.0);
        }
        sys.dt[0] = 0.25;
        sys.dt[1] = 0.25;
        sys.dt[2] = 2.0f64.powi(-10);
        let h = TimestepHistogram::from_system(&sys);
        assert_eq!(h.occupied_rungs(), 2);
        assert_eq!(h.total(), 3);
        assert_eq!(h.dynamic_range(), 2.0f64.powi(8));
        assert!((h.orders_of_magnitude() - 8.0 * 2.0f64.log10()).abs() < 1e-12);
    }

    #[test]
    fn timestep_histogram_skips_unset_steps() {
        let mut sys = ParticleSystem::new(0.0, 0.0);
        sys.push(Vec3::zero(), Vec3::zero(), 1.0);
        let h = TimestepHistogram::from_system(&sys); // dt = 0 (unset)
        assert_eq!(h.total(), 0);
        assert_eq!(h.dynamic_range(), 1.0);
    }

    #[test]
    fn block_histogram_statistics() {
        let mut h = BlockSizeHistogram::new();
        for n in [1usize, 1, 2, 3, 4, 8, 100] {
            h.record(n);
        }
        h.record(0); // ignored
        assert_eq!(h.blocks, 7);
        assert_eq!(h.particle_steps, 119);
        assert!((h.mean() - 17.0).abs() < 1e-12);
        // bins: 1→2 blocks (k=0), 2..3→2 (k=1), 4..8→2 (k=2,3), 100→k=6
        assert_eq!(h.bins[0], 2);
        assert_eq!(h.bins[1], 2);
        assert_eq!(h.median_bin_size(), 2);
    }

    #[test]
    fn empty_histograms_are_safe() {
        let h = BlockSizeHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.median_bin_size(), 0);
    }
}
