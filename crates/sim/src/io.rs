//! Snapshot and diagnostic I/O (JSON; buffered, per the performance guide).

use crate::simulation::DiagnosticRow;
use grape6_core::particle::ParticleSystem;
use serde::{Deserialize, Serialize};
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// A self-describing snapshot file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Schema version.
    pub version: u32,
    /// Simulation time of the snapshot.
    pub t: f64,
    /// The particle system.
    pub system: ParticleSystem,
}

/// Current snapshot schema version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Write a snapshot to `path` as JSON.
pub fn save_snapshot(path: &Path, sys: &ParticleSystem) -> std::io::Result<()> {
    let snap = Snapshot { version: SNAPSHOT_VERSION, t: sys.t, system: sys.clone() };
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    serde_json::to_writer(&mut w, &snap)?;
    w.flush()
}

/// Read a snapshot back.
pub fn load_snapshot(path: &Path) -> std::io::Result<ParticleSystem> {
    let f = std::fs::File::open(path)?;
    let snap: Snapshot = serde_json::from_reader(BufReader::new(f))?;
    if snap.version != SNAPSHOT_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("snapshot version {} (expected {SNAPSHOT_VERSION})", snap.version),
        ));
    }
    Ok(snap.system)
}

/// Magic bytes of the binary snapshot format.
pub const BINARY_MAGIC: &[u8; 4] = b"G6SN";
/// Version of the binary snapshot format.
pub const BINARY_VERSION: u32 = 1;

/// Per-particle payload size in the binary format:
/// pos/vel/acc/jerk (12×f64) + mass/time/dt/pot (4×f64) + id (u64).
pub const BINARY_PARTICLE_BYTES: usize = 12 * 8 + 4 * 8 + 8;

/// Append particle `i`'s binary record — the [`BINARY_PARTICLE_BYTES`]-long
/// body layout shared by the `G6SN` snapshot and the chunked `G6CK` v2
/// checkpoint container.
fn put_particle_record(buf: &mut impl bytes::BufMut, sys: &ParticleSystem, i: usize) {
    for v in [sys.pos[i], sys.vel[i], sys.acc[i], sys.jerk[i]] {
        buf.put_f64_le(v.x);
        buf.put_f64_le(v.y);
        buf.put_f64_le(v.z);
    }
    buf.put_f64_le(sys.mass[i]);
    buf.put_f64_le(sys.time[i]);
    buf.put_f64_le(sys.dt[i]);
    buf.put_f64_le(sys.pot[i]);
    buf.put_u64_le(sys.id[i]);
}

/// Append the binary records of particles `range` to `buf` — one chunk
/// payload of the streamed `G6CK` v2 body.
pub(crate) fn encode_particle_range(
    sys: &ParticleSystem,
    range: std::ops::Range<usize>,
    buf: &mut Vec<u8>,
) {
    buf.reserve(range.len() * BINARY_PARTICLE_BYTES);
    for i in range {
        put_particle_record(buf, sys, i);
    }
}

/// Decode one binary particle record from `buf` onto `sys`. The caller must
/// have verified that at least [`BINARY_PARTICLE_BYTES`] remain.
pub(crate) fn decode_particle_record(buf: &mut bytes::Bytes, sys: &mut ParticleSystem) {
    use bytes::Buf;
    let get_v = |buf: &mut bytes::Bytes| {
        grape6_core::vec3::Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le())
    };
    let pos = get_v(buf);
    let vel = get_v(buf);
    let acc = get_v(buf);
    let jerk = get_v(buf);
    let mass = buf.get_f64_le();
    let time = buf.get_f64_le();
    let dt = buf.get_f64_le();
    let pot = buf.get_f64_le();
    let id = buf.get_u64_le();
    let i = sys.push(pos, vel, mass);
    sys.acc[i] = acc;
    sys.jerk[i] = jerk;
    sys.time[i] = time;
    sys.dt[i] = dt;
    sys.pot[i] = pot;
    sys.id[i] = id;
}

/// Serialize a system to the compact binary snapshot format (lossless f64;
/// ~136 B/particle vs several hundred for JSON — the difference matters at
/// the paper's 1.8 M particles).
pub fn encode_binary_snapshot(sys: &ParticleSystem) -> bytes::Bytes {
    use bytes::BufMut;
    let mut buf = bytes::BytesMut::with_capacity(48 + sys.len() * BINARY_PARTICLE_BYTES);
    buf.put_slice(BINARY_MAGIC);
    buf.put_u32_le(BINARY_VERSION);
    buf.put_u64_le(sys.len() as u64);
    buf.put_f64_le(sys.t);
    buf.put_f64_le(sys.softening);
    buf.put_f64_le(sys.central_mass);
    for i in 0..sys.len() {
        put_particle_record(&mut buf, sys, i);
    }
    buf.freeze()
}

/// Deserialize a binary snapshot.
pub fn decode_binary_snapshot(mut buf: bytes::Bytes) -> std::io::Result<ParticleSystem> {
    use bytes::Buf;
    let err = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    if buf.len() < 40 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != BINARY_MAGIC {
        return Err(err("bad magic"));
    }
    let version = buf.get_u32_le();
    if version != BINARY_VERSION {
        return Err(err(&format!("unsupported binary version {version}")));
    }
    let n = buf.get_u64_le() as usize;
    if buf.len() < 24 + n * BINARY_PARTICLE_BYTES {
        return Err(err("truncated body"));
    }
    let t = buf.get_f64_le();
    let softening = buf.get_f64_le();
    let central_mass = buf.get_f64_le();
    let mut sys = ParticleSystem::new(softening, central_mass);
    sys.t = t;
    for _ in 0..n {
        decode_particle_record(&mut buf, &mut sys);
    }
    Ok(sys)
}

/// Write a binary snapshot to `path`.
pub fn save_binary_snapshot(path: &Path, sys: &ParticleSystem) -> std::io::Result<()> {
    std::fs::write(path, encode_binary_snapshot(sys))
}

/// Read a binary snapshot from `path`.
pub fn load_binary_snapshot(path: &Path) -> std::io::Result<ParticleSystem> {
    let data = std::fs::read(path)?;
    decode_binary_snapshot(bytes::Bytes::from(data))
}

/// Save in a format chosen by extension: `.g6sn` → binary, anything else →
/// JSON.
pub fn save_auto(path: &Path, sys: &ParticleSystem) -> std::io::Result<()> {
    if path.extension().is_some_and(|e| e == "g6sn") {
        save_binary_snapshot(path, sys)
    } else {
        save_snapshot(path, sys)
    }
}

/// Load either format, sniffing the binary magic.
pub fn load_auto(path: &Path) -> std::io::Result<ParticleSystem> {
    let data = std::fs::read(path)?;
    if data.len() >= 4 && &data[..4] == BINARY_MAGIC {
        decode_binary_snapshot(bytes::Bytes::from(data))
    } else {
        let snap: Snapshot = serde_json::from_slice(&data)?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("snapshot version {} (expected {SNAPSHOT_VERSION})", snap.version),
            ));
        }
        Ok(snap.system)
    }
}

/// Write the diagnostic time series as CSV (one row per record).
pub fn save_diagnostics_csv(path: &Path, rows: &[DiagnosticRow]) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "t,energy_error,l_error,block_steps,particle_steps,interactions,mean_block")?;
    for r in rows {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            r.t,
            r.energy_error,
            r.l_error,
            r.block_steps,
            r.particle_steps,
            r.interactions,
            r.mean_block
        )?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_core::vec3::Vec3;

    fn sample_system() -> ParticleSystem {
        let mut sys = ParticleSystem::new(0.008, 1.0);
        sys.push(Vec3::new(20.0, 0.0, 0.0), Vec3::new(0.0, 0.22, 0.0), 3e-5);
        sys.push(Vec3::new(-30.0, 0.0, 0.0), Vec3::new(0.0, -0.18, 0.0), 3e-5);
        sys.t = 12.5;
        sys.time = vec![12.5, 12.5];
        sys
    }

    #[test]
    fn snapshot_roundtrip() {
        let dir = std::env::temp_dir().join("grape6_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let sys = sample_system();
        save_snapshot(&path, &sys).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.pos, sys.pos);
        assert_eq!(back.vel, sys.vel);
        assert_eq!(back.t, 12.5);
        assert_eq!(back.softening, 0.008);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let dir = std::env::temp_dir().join("grape6_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_version.json");
        let snap = Snapshot { version: 999, t: 0.0, system: sample_system() };
        std::fs::write(&path, serde_json::to_string(&snap).unwrap()).unwrap();
        assert!(load_snapshot(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn diagnostics_csv_has_header_and_rows() {
        let dir = std::env::temp_dir().join("grape6_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("diag.csv");
        let rows = vec![DiagnosticRow {
            t: 1.0,
            energy_error: 1e-9,
            l_error: 1e-12,
            block_steps: 10,
            particle_steps: 40,
            interactions: 4000,
            mean_block: 4.0,
        }];
        save_diagnostics_csv(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("t,energy_error"));
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_snapshot(Path::new("/nonexistent/grape6.json")).is_err());
    }

    #[test]
    fn binary_snapshot_roundtrip_is_lossless() {
        let mut sys = sample_system();
        sys.acc[0] = Vec3::new(1e-3, -2e-4, 5e-5);
        sys.jerk[1] = Vec3::new(-1e-6, 0.0, 3e-7);
        sys.dt = vec![0.125, 0.25];
        sys.pot = vec![-1.5e-6, -2.5e-6];
        sys.id = vec![42, 7];
        let bytes = encode_binary_snapshot(&sys);
        assert_eq!(bytes.len(), 40 + 2 * BINARY_PARTICLE_BYTES);
        let back = decode_binary_snapshot(bytes).unwrap();
        assert_eq!(back.pos, sys.pos);
        assert_eq!(back.vel, sys.vel);
        assert_eq!(back.acc, sys.acc);
        assert_eq!(back.jerk, sys.jerk);
        assert_eq!(back.mass, sys.mass);
        assert_eq!(back.time, sys.time);
        assert_eq!(back.dt, sys.dt);
        assert_eq!(back.pot, sys.pot);
        assert_eq!(back.id, sys.id);
        assert_eq!(back.t, sys.t);
        assert_eq!(back.softening, sys.softening);
        assert_eq!(back.central_mass, sys.central_mass);
    }

    #[test]
    fn binary_snapshot_file_roundtrip() {
        let dir = std::env::temp_dir().join("grape6_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.g6sn");
        let sys = sample_system();
        save_binary_snapshot(&path, &sys).unwrap();
        let back = load_binary_snapshot(&path).unwrap();
        assert_eq!(back.pos, sys.pos);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_decoder_rejects_garbage() {
        assert!(decode_binary_snapshot(bytes::Bytes::from_static(b"nope")).is_err());
        assert!(decode_binary_snapshot(bytes::Bytes::from_static(
            b"G6SNxxxxyyyyzzzzwwwwvvvvuuuuttttssss"
        ))
        .is_err());
        // Truncated body: claim 10 particles, provide none.
        let mut sys = sample_system();
        sys.pos.truncate(0);
        let mut good = encode_binary_snapshot(&sample_system()).to_vec();
        good.truncate(40);
        assert!(decode_binary_snapshot(bytes::Bytes::from(good)).is_err());
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        // Realistic state: full-precision doubles, which JSON prints at up
        // to 17 significant digits each.
        let sys = {
            let mut s = ParticleSystem::new(0.008, 1.0);
            let mut x = 0.123456789f64;
            for _ in 0..100 {
                x = (x * 997.13).fract();
                let y = (x * 31.7).fract();
                s.push(
                    Vec3::new(15.0 + 20.0 * x, 35.0 * (y - 0.5), 0.1 * (x - 0.5)),
                    Vec3::new(0.2 * (y - 0.5), 0.2 * (x - 0.5), 0.01 * y),
                    1e-10 * (1.0 + x),
                );
            }
            s
        };
        let bin = encode_binary_snapshot(&sys).len();
        let json = serde_json::to_string(&Snapshot {
            version: SNAPSHOT_VERSION,
            t: sys.t,
            system: sys.clone(),
        })
        .unwrap()
        .len();
        assert!(bin * 7 < json * 5, "binary {bin} not well below json {json}");
    }
}
